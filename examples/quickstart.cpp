// Quickstart: run a small parallel PIC simulation on the simulated CM-5
// and print a per-phase summary.
//
//   ./quickstart --ranks 32 --particles 8192 --iters 100 --policy sar
//
// This is the smallest complete use of the public API: configure a run,
// execute it, inspect the result.
#include <iostream>

#include "pic/simulation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace picpar;

int main(int argc, char** argv) {
  Cli cli("quickstart", "Minimal parallel PIC run on the simulated machine");
  auto ranks = cli.flag<int>("ranks", 32, "simulated processors");
  auto particles = cli.flag<long>("particles", 8192, "global particle count");
  auto iters = cli.flag<int>("iters", 100, "iterations");
  auto policy = cli.flag<std::string>("policy", "sar",
                                      "static | periodic:K | sar");
  auto dist = cli.flag<std::string>("dist", "irregular",
                                    "uniform | irregular | two_stream | ring");
  auto curve = cli.flag<std::string>("curve", "hilbert",
                                     "hilbert | snake | morton | rowmajor");
  cli.parse(argc, argv);

  pic::PicParams params;
  params.grid = mesh::GridDesc(64, 32);
  params.nranks = *ranks;
  params.dist = particles::parse_distribution(*dist);
  params.init.total = static_cast<std::uint64_t>(*particles);
  params.init.drift_ux = 0.1;
  params.init.drift_uy = 0.05;
  params.curve = sfc::parse_curve_kind(*curve);
  params.iterations = *iters;
  params.policy = *policy;
  params.machine = sim::CostModel::cm5();

  std::cout << "Running " << *iters << " iterations of a "
            << params.grid.nx << "x" << params.grid.ny << " PIC simulation, "
            << *particles << " particles on " << *ranks
            << " simulated CM-5 nodes (" << *curve << " indexing, policy "
            << *policy << ")...\n\n";

  const auto r = pic::run_pic(params);

  Table summary({"metric", "value"});
  summary.set_title("Run summary (virtual time)");
  summary.row().add("total time (s)").add(r.total_seconds, 3);
  summary.row().add("computation (s)").add(r.compute_seconds, 3);
  summary.row().add("overhead (s)").add(r.overhead_seconds(), 3);
  summary.row().add("mean iteration (s)").add(r.mean_iter_seconds(), 4);
  summary.row().add("redistributions")
      .add(static_cast<long long>(r.redistributions));
  summary.row().add("redistribution time (s)").add(r.redist_seconds_total, 3);
  summary.row().add("initial distribution (s)")
      .add(r.initial_distribution_seconds, 3);
  summary.row().add("field energy").add(r.field_energy, 4);
  summary.row().add("kinetic energy").add(r.kinetic_energy, 2);
  summary.print(std::cout);

  // Per-phase traffic of rank 0, to show where communication happens.
  std::cout << "\nRank 0 phase summary:\n"
            << r.machine.ranks[0].stats.summary();
  return 0;
}
