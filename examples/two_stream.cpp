// Two-stream instability: a physics demonstration on the electrostatic
// solver. Two counter-propagating beams are unstable; field energy grows
// exponentially out of deposition noise until the beams trap. The example
// prints the field-energy history and verifies growth — evidence the PIC
// core is a real plasma code, not just a communication driver.
#include <cmath>
#include <iostream>

#include "pic/simulation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace picpar;

int main(int argc, char** argv) {
  Cli cli("two_stream", "Two-stream instability (electrostatic mode)");
  auto ranks = cli.flag<int>("ranks", 8, "simulated processors");
  auto particles = cli.flag<long>("particles", 65536, "global particle count");
  auto iters = cli.flag<int>("iters", 180, "iterations");
  auto sample = cli.flag<int>("sample", 15, "energy sample interval");
  cli.parse(argc, argv);

  pic::PicParams params;
  params.grid = mesh::GridDesc(64, 8);
  params.nranks = *ranks;
  params.dist = particles::Distribution::kTwoStream;
  params.init.total = static_cast<std::uint64_t>(*particles);
  params.init.vth = 0.01;
  params.init.omega_p = 0.25;
  params.solver = pic::FieldSolveKind::kPoisson;
  params.policy = "periodic:20";
  params.machine = sim::CostModel::zero();  // physics demo: free comm
  params.iterations = *iters;
  params.sample_energy_every = *sample;

  std::cout << "Running two-stream instability: " << *particles
            << " particles, " << *iters << " iterations on " << *ranks
            << " ranks...\n";
  const auto r = pic::run_pic(params);

  Table table({"iteration", "field energy", "kinetic energy", "log10(E_f)"});
  table.set_title("Two-stream instability: energy history");
  double first = 0.0, peak = 0.0;
  for (const auto& s : r.energy_history) {
    table.row()
        .add(static_cast<long long>(s.iter + 1))
        .add(s.field, 6)
        .add(s.kinetic, 3)
        .add(s.field > 0 ? std::log10(s.field) : -99.0, 2);
    if (first == 0.0) first = s.field;
    peak = std::max(peak, s.field);
  }
  table.print(std::cout);

  std::cout << "\nField energy grew by a factor of " << peak / first
            << " over the run.\n";
  if (peak > 20.0 * first)
    std::cout << "Instability detected: exponential growth of the "
                 "electrostatic mode, as expected for counter-streaming "
                 "beams.\n";
  else
    std::cout << "NOTE: expected >20x growth; try more iterations "
                 "(--iters) or colder beams.\n";
  return 0;
}
