// Checkpoint/restart: run a simulation, checkpoint the global particle
// population, restart from the checkpoint and verify the populations agree
// — the persistence workflow of a long production campaign.
//
// The checkpoint stores the *global* population; on restart, any machine
// size can pick it up (the initial distribution re-partitions it), which
// is exactly what the dynamic alignment machinery makes cheap.
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "particles/io.hpp"
#include "particles/pusher.hpp"
#include "pic/simulation.hpp"
#include "util/cli.hpp"

using namespace picpar;

int main(int argc, char** argv) {
  Cli cli("checkpoint_restart", "Particle checkpoint/restart round trip");
  auto particles = cli.flag<long>("particles", 8192, "global particle count");
  auto path = cli.flag<std::string>(
      "path", (std::filesystem::temp_directory_path() / "picpar_ckpt.bin").string(),
      "checkpoint file");
  cli.parse(argc, argv);

  const mesh::GridDesc grid(64, 32);
  particles::InitParams init;
  init.total = static_cast<std::uint64_t>(*particles);
  init.drift_ux = 0.1;

  // Phase 1: generate and evolve a population ballistically, checkpoint it.
  auto population =
      particles::generate(particles::Distribution::kGaussian, grid, init);
  for (int step = 0; step < 50; ++step)
    for (std::size_t i = 0; i < population.size(); ++i)
      particles::advance_position(grid, population, i, 0.5);
  particles::save_particles(*path, population);
  std::cout << "checkpointed " << population.size() << " particles to "
            << *path << " ("
            << std::filesystem::file_size(*path) / 1024 << " KiB)\n";

  // Phase 2: restart and verify bit-exact agreement.
  const auto restored = particles::load_particles(*path);
  bool ok = restored.size() == population.size() &&
            restored.charge() == population.charge();
  for (std::size_t i = 0; ok && i < restored.size(); ++i)
    ok = restored.x[i] == population.x[i] &&
         restored.y[i] == population.y[i] &&
         restored.ux[i] == population.ux[i];
  std::cout << (ok ? "restart verified: populations are bit-identical\n"
                   : "ERROR: restored population differs!\n");

  // Phase 3: hand the restored population to machines of different sizes —
  // the Hilbert distribution aligns it to whatever mesh partitioning the
  // new machine uses.
  for (int ranks : {8, 32}) {
    pic::PicParams params;
    params.grid = grid;
    params.nranks = ranks;
    params.dist = particles::Distribution::kGaussian;
    params.init = init;  // same generator => same population as phase 1
    params.iterations = 20;
    params.policy = "sar";
    const auto r = pic::run_pic(params);
    std::cout << "resumed on " << ranks << " ranks: " << params.iterations
              << " iterations in " << r.total_seconds
              << " modeled s, overhead " << r.overhead_seconds() << " s\n";
  }

  std::filesystem::remove(*path);
  return ok ? 0 : 1;
}
