// 3-D demonstration: the paper notes the Hilbert scheme "can be
// generalized to n-dimensions". This example partitions a 3-D particle
// cloud by 3-D Hilbert index (Skilling's algorithm) and compares the
// compactness of the resulting subdomains against row-major (x-fastest)
// ordering — the same locality argument as Figs 9-10, one dimension up.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <numeric>
#include <vector>

#include "sfc/skilling.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace picpar;

namespace {

struct Cloud {
  std::vector<double> x, y, z;
};

struct BoxMetrics {
  double mean_half_perimeter = 0.0;  // width+height+depth of bounding boxes
  double worst_aspect = 0.0;
};

BoxMetrics measure(const Cloud& cloud, const std::vector<std::uint64_t>& keys,
                   int parts) {
  const std::size_t n = cloud.x.size();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return keys[a] < keys[b];
  });

  BoxMetrics m;
  for (int part = 0; part < parts; ++part) {
    const std::size_t b = part * n / static_cast<std::size_t>(parts);
    const std::size_t e = (part + 1) * n / static_cast<std::size_t>(parts);
    double lo[3] = {1e300, 1e300, 1e300};
    double hi[3] = {-1e300, -1e300, -1e300};
    for (std::size_t i = b; i < e; ++i) {
      const std::uint32_t idx = order[i];
      const double v[3] = {cloud.x[idx], cloud.y[idx], cloud.z[idx]};
      for (int d = 0; d < 3; ++d) {
        lo[d] = std::min(lo[d], v[d]);
        hi[d] = std::max(hi[d], v[d]);
      }
    }
    const double w = hi[0] - lo[0], h = hi[1] - lo[1], dp = hi[2] - lo[2];
    m.mean_half_perimeter += (w + h + dp) / parts;
    const double longest = std::max({w, h, dp});
    const double shortest = std::max(1e-9, std::min({w, h, dp}));
    m.worst_aspect = std::max(m.worst_aspect, longest / shortest);
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("hilbert3d_cloud",
          "Partition a 3-D particle cloud by 3-D Hilbert index");
  auto count = cli.flag<long>("particles", 100000, "cloud size");
  auto parts = cli.flag<int>("parts", 64, "number of partitions");
  auto bits = cli.flag<int>("bits", 8, "grid resolution bits per dimension");
  cli.parse(argc, argv);

  const double side = static_cast<double>(1u << *bits);
  Rng rng(2024);
  Cloud cloud;
  for (long i = 0; i < *count; ++i) {
    // Two gaussian clusters — an irregular 3-D distribution.
    const bool a = rng.uniform() < 0.6;
    const double cx = a ? 0.3 * side : 0.7 * side;
    cloud.x.push_back(std::clamp(rng.normal(cx, side / 10), 0.0, side - 1));
    cloud.y.push_back(
        std::clamp(rng.normal(side / 2, side / 8), 0.0, side - 1));
    cloud.z.push_back(
        std::clamp(rng.normal(a ? 0.4 * side : 0.6 * side, side / 9), 0.0,
                   side - 1));
  }

  auto cell = [&](double v) {
    return static_cast<std::uint32_t>(
        std::min(v, side - 1));
  };

  std::vector<std::uint64_t> hilbert_keys(cloud.x.size());
  std::vector<std::uint64_t> rowmajor_keys(cloud.x.size());
  for (std::size_t i = 0; i < cloud.x.size(); ++i) {
    const std::vector<std::uint32_t> c{cell(cloud.x[i]), cell(cloud.y[i]),
                                       cell(cloud.z[i])};
    hilbert_keys[i] = sfc::hilbert_nd_index(c, *bits);
    rowmajor_keys[i] =
        (static_cast<std::uint64_t>(c[2]) << (2 * *bits)) |
        (static_cast<std::uint64_t>(c[1]) << *bits) | c[0];
  }

  Table t({"indexing", "mean bbox half-perimeter", "worst aspect ratio"});
  t.set_title("3-D cloud, " + std::to_string(*count) + " particles, " +
              std::to_string(*parts) + " partitions");
  const auto hm = measure(cloud, hilbert_keys, *parts);
  const auto rm = measure(cloud, rowmajor_keys, *parts);
  t.row().add("hilbert-3d").add(hm.mean_half_perimeter, 2).add(hm.worst_aspect, 2);
  t.row().add("rowmajor-3d").add(rm.mean_half_perimeter, 2).add(rm.worst_aspect, 2);
  t.print(std::cout);

  std::cout << "\nHilbert subdomain surface is "
            << 100.0 * (1.0 - hm.mean_half_perimeter / rm.mean_half_perimeter)
            << "% smaller than row-major — less off-processor access in "
               "every dimension, exactly as in 2-D.\n";
  return 0;
}
