// Irregular beam: the paper's stress case. A center-concentrated particle
// blob drifts across the periodic domain; without redistribution the
// Lagrangian particle subdomains decouple from their mesh subdomains and
// communication climbs. This example runs the same physics under three
// policies and prints the per-iteration time series side by side, plus the
// ghost-point footprint — a textual version of Figs 15-17.
#include <iostream>

#include "pic/simulation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace picpar;

int main(int argc, char** argv) {
  Cli cli("irregular_beam",
          "Drifting irregular blob under static/periodic/sar policies");
  auto ranks = cli.flag<int>("ranks", 32, "simulated processors");
  auto particles = cli.flag<long>("particles", 16384, "global particle count");
  auto iters = cli.flag<int>("iters", 300, "iterations");
  auto period = cli.flag<int>("period", 25, "periodic policy interval");
  auto stride = cli.flag<int>("stride", 20, "print every k-th iteration");
  cli.parse(argc, argv);

  auto base = [&] {
    pic::PicParams p;
    p.grid = mesh::GridDesc(128, 64);
    p.nranks = *ranks;
    p.dist = particles::Distribution::kGaussian;
    p.init.total = static_cast<std::uint64_t>(*particles);
    p.init.sigma_fraction = 0.06;
    p.init.drift_ux = 0.15;
    p.init.drift_uy = 0.08;
    p.iterations = *iters;
    p.machine = sim::CostModel::cm5();
    return p;
  }();

  struct Run {
    std::string policy;
    pic::PicResult result;
  };
  std::vector<Run> runs;
  for (const std::string& policy :
       {std::string("static"), "periodic:" + std::to_string(*period),
        std::string("sar")}) {
    auto params = base;
    params.policy = policy;
    std::cout << "running policy " << policy << "...\n";
    runs.push_back({policy, pic::run_pic(params)});
  }

  Table trace({"iter", "static (ms)", "periodic (ms)", "sar (ms)",
               "static ghosts", "sar ghosts"});
  trace.set_title("Per-iteration execution time and max ghost points");
  for (int i = 0; i < *iters; i += *stride) {
    const auto idx = static_cast<std::size_t>(i);
    trace.row()
        .add(static_cast<long long>(i))
        .add(1e3 * runs[0].result.iters[idx].exec_seconds, 2)
        .add(1e3 * runs[1].result.iters[idx].exec_seconds, 2)
        .add(1e3 * runs[2].result.iters[idx].exec_seconds, 2)
        .add(static_cast<std::size_t>(runs[0].result.iters[idx].max_ghost_entries))
        .add(static_cast<std::size_t>(runs[2].result.iters[idx].max_ghost_entries));
  }
  trace.print(std::cout);

  Table totals({"policy", "total (s)", "overhead (s)", "redistributions"});
  totals.set_title("Totals");
  for (const auto& run : runs)
    totals.row()
        .add(run.policy)
        .add(run.result.total_seconds, 2)
        .add(run.result.overhead_seconds(), 2)
        .add(static_cast<long long>(run.result.redistributions));
  totals.print(std::cout);

  std::cout << "\nPhysics check (independent of policy): kinetic energy "
            << runs[0].result.kinetic_energy << " / "
            << runs[1].result.kinetic_energy << " / "
            << runs[2].result.kinetic_energy << "\n";
  return 0;
}
