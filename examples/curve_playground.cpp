// Curve playground: visualize how each space-filling curve partitions a
// mesh (Figs 9-10 of the paper) and report the locality metrics that drive
// communication cost. Prints an ASCII owner map — each cell shows the rank
// (mod 36) that owns it under curve-run partitioning.
#include <iostream>

#include "mesh/partition.hpp"
#include "sfc/curve.hpp"
#include "sfc/locality.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace picpar;

namespace {

char rank_glyph(int r) {
  constexpr char glyphs[] = "0123456789abcdefghijklmnopqrstuvwxyz";
  return glyphs[r % 36];
}

void print_owner_map(const mesh::GridPartition& part) {
  const auto& g = part.grid();
  for (std::uint32_t row = 0; row < g.ny; ++row) {
    const std::uint32_t y = g.ny - 1 - row;  // top row printed first
    std::cout << "  ";
    for (std::uint32_t x = 0; x < g.nx; ++x)
      std::cout << rank_glyph(part.owner(g.node_id(x, y)));
    std::cout << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("curve_playground",
          "Show how each indexing scheme partitions a mesh (Figs 9-10)");
  auto nx = cli.flag<int>("nx", 32, "mesh cells in x");
  auto ny = cli.flag<int>("ny", 16, "mesh cells in y");
  auto ranks = cli.flag<int>("ranks", 8, "partitions");
  cli.parse(argc, argv);

  const mesh::GridDesc g(static_cast<std::uint32_t>(*nx),
                         static_cast<std::uint32_t>(*ny));

  Table metrics({"curve", "mean half-perimeter", "mean boundary edges",
                 "worst aspect ratio"});
  metrics.set_title("Locality of curve-run partitions, " +
                    std::to_string(*ranks) + " ranks");

  for (const auto kind :
       {sfc::CurveKind::kRowMajor, sfc::CurveKind::kSnake,
        sfc::CurveKind::kMorton, sfc::CurveKind::kHilbert}) {
    const auto curve = sfc::make_curve(kind, g.nx, g.ny);
    const auto part = mesh::GridPartition::curve(g, *ranks, *curve);
    std::cout << "\n== " << curve->name() << " ==\n";
    print_owner_map(part);

    const auto segs = sfc::measure_partition(*curve, *ranks);
    double worst_aspect = 0.0;
    for (const auto& s : segs)
      worst_aspect = std::max(worst_aspect, s.box.aspect_ratio());
    metrics.row()
        .add(curve->name())
        .add(sfc::mean_half_perimeter(segs), 2)
        .add(sfc::mean_boundary_edges(segs), 2)
        .add(worst_aspect, 2);
  }
  std::cout << '\n';
  metrics.print(std::cout);
  std::cout << "\nLower half-perimeter and boundary edges mean less "
               "scatter/gather communication; Hilbert keeps subdomains "
               "compact in both dimensions.\n";
  return 0;
}
