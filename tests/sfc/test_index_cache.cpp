#include "sfc/index_cache.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sfc/hilbert.hpp"
#include "sfc/simple_curves.hpp"

namespace picpar::sfc {
namespace {

template <typename CurveT>
void expect_cache_matches_curve(std::uint32_t nx, std::uint32_t ny) {
  CurveT curve(nx, ny);
  IndexCache cache(curve, nx, ny);
  ASSERT_EQ(cache.size(), static_cast<std::size_t>(nx) * ny);
  for (std::uint32_t y = 0; y < ny; ++y)
    for (std::uint32_t x = 0; x < nx; ++x) {
      const std::uint64_t cell = static_cast<std::uint64_t>(y) * nx + x;
      EXPECT_EQ(cache[cell], curve.index(x, y))
          << curve.name() << " (" << x << "," << y << ")";
    }
}

TEST(IndexCache, MatchesCurveEverywhere) {
  expect_cache_matches_curve<HilbertCurve>(16, 16);
  expect_cache_matches_curve<HilbertCurve>(8, 32);  // non-square
  expect_cache_matches_curve<SnakeCurve>(16, 16);
  expect_cache_matches_curve<RowMajorCurve>(7, 5);
  expect_cache_matches_curve<MortonCurve>(16, 16);
}

TEST(IndexCache, RejectsDegenerateGrids) {
  HilbertCurve curve(8, 8);
  EXPECT_THROW(IndexCache(curve, 0, 8), std::invalid_argument);
  EXPECT_THROW(IndexCache(curve, 8, 0), std::invalid_argument);
}

}  // namespace
}  // namespace picpar::sfc
