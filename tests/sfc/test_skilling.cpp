#include "sfc/skilling.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

namespace picpar::sfc {
namespace {

struct NdCase {
  int dims;
  int bits;
};

class SkillingNd : public ::testing::TestWithParam<NdCase> {};

TEST_P(SkillingNd, IndexIsBijective) {
  const auto [dims, bits] = GetParam();
  const std::uint64_t side = 1ULL << bits;
  std::uint64_t total = 1;
  for (int i = 0; i < dims; ++i) total *= side;
  std::set<std::uint64_t> seen;
  std::vector<std::uint32_t> coord(static_cast<std::size_t>(dims), 0);
  for (std::uint64_t n = 0; n < total; ++n) {
    std::uint64_t rem = n;
    for (int i = 0; i < dims; ++i) {
      coord[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(rem % side);
      rem /= side;
    }
    seen.insert(hilbert_nd_index(coord, bits));
  }
  EXPECT_EQ(seen.size(), total);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), total - 1);
}

TEST_P(SkillingNd, CoordsInvertsIndex) {
  const auto [dims, bits] = GetParam();
  const std::uint64_t side = 1ULL << bits;
  std::uint64_t total = 1;
  for (int i = 0; i < dims; ++i) total *= side;
  for (std::uint64_t d = 0; d < total; ++d) {
    const auto c = hilbert_nd_coords(d, bits, dims);
    EXPECT_EQ(hilbert_nd_index(c, bits), d) << "d=" << d;
  }
}

TEST_P(SkillingNd, ConsecutiveIndicesAreNeighbors) {
  const auto [dims, bits] = GetParam();
  const std::uint64_t side = 1ULL << bits;
  std::uint64_t total = 1;
  for (int i = 0; i < dims; ++i) total *= side;
  auto prev = hilbert_nd_coords(0, bits, dims);
  for (std::uint64_t d = 1; d < total; ++d) {
    const auto cur = hilbert_nd_coords(d, bits, dims);
    int manhattan = 0;
    for (int i = 0; i < dims; ++i)
      manhattan += std::abs(static_cast<int>(cur[static_cast<std::size_t>(i)]) -
                            static_cast<int>(prev[static_cast<std::size_t>(i)]));
    ASSERT_EQ(manhattan, 1) << "jump at d=" << d;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsBits, SkillingNd,
    ::testing::Values(NdCase{2, 2}, NdCase{2, 4}, NdCase{3, 2}, NdCase{3, 3},
                      NdCase{4, 2}),
    [](const ::testing::TestParamInfo<NdCase>& tpi) {
      return "d" + std::to_string(tpi.param.dims) + "b" +
             std::to_string(tpi.param.bits);
    });

TEST(Skilling, TooManyBitsThrows) {
  EXPECT_THROW(hilbert_nd_index({0, 0, 0}, 22), std::invalid_argument);
  EXPECT_THROW(hilbert_nd_coords(0, 33, 2), std::invalid_argument);
}

TEST(Skilling, TransposeRoundTrip) {
  std::vector<std::uint32_t> x{5, 9, 2};
  auto orig = x;
  axes_to_transpose(x, 4);
  transpose_to_axes(x, 4);
  EXPECT_EQ(x, orig);
}

TEST(Skilling, OriginMapsToZero) {
  EXPECT_EQ(hilbert_nd_index({0, 0}, 5), 0u);
  EXPECT_EQ(hilbert_nd_index({0, 0, 0}, 5), 0u);
}

}  // namespace
}  // namespace picpar::sfc
