#include "sfc/hilbert.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

namespace picpar::sfc {
namespace {

class HilbertOrder : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HilbertOrder, IndexIsBijective) {
  const auto order = GetParam();
  const std::uint64_t side = 1ULL << order;
  std::set<std::uint64_t> seen;
  for (std::uint32_t y = 0; y < side; ++y)
    for (std::uint32_t x = 0; x < side; ++x)
      seen.insert(hilbert2d_index(order, x, y));
  EXPECT_EQ(seen.size(), side * side);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), side * side - 1);
}

TEST_P(HilbertOrder, CoordsInvertsIndex) {
  const auto order = GetParam();
  const std::uint64_t side = 1ULL << order;
  for (std::uint64_t d = 0; d < side * side; ++d) {
    const auto [x, y] = hilbert2d_coords(order, d);
    EXPECT_EQ(hilbert2d_index(order, x, y), d);
  }
}

TEST_P(HilbertOrder, ConsecutiveIndicesAreGridNeighbors) {
  // The defining locality property: the curve visits a unit-step neighbor
  // at every move. Snake has it too, but Hilbert keeps it in both
  // dimensions at every scale.
  const auto order = GetParam();
  const std::uint64_t side = 1ULL << order;
  auto [px, py] = hilbert2d_coords(order, 0);
  for (std::uint64_t d = 1; d < side * side; ++d) {
    const auto [x, y] = hilbert2d_coords(order, d);
    const int manhattan = std::abs(static_cast<int>(x) - static_cast<int>(px)) +
                          std::abs(static_cast<int>(y) - static_cast<int>(py));
    ASSERT_EQ(manhattan, 1) << "jump at d=" << d;
    px = x;
    py = y;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, HilbertOrder, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(HilbertCurve, NonSquareGridUsesEnclosingSquare) {
  HilbertCurve c(128, 64);
  EXPECT_EQ(c.order(), 7u);  // 2^7 = 128 encloses both dims
  // All indices distinct over the actual grid.
  std::set<std::uint64_t> seen;
  for (std::uint32_t y = 0; y < 64; ++y)
    for (std::uint32_t x = 0; x < 128; ++x) seen.insert(c.index(x, y));
  EXPECT_EQ(seen.size(), 128u * 64u);
}

TEST(HilbertCurve, CoordsRoundTripOnRectangular) {
  HilbertCurve c(16, 8);
  for (std::uint32_t y = 0; y < 8; ++y)
    for (std::uint32_t x = 0; x < 16; ++x) {
      const auto [rx, ry] = c.coords(c.index(x, y));
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
}

TEST(HilbertCurve, RejectsZeroDims) {
  EXPECT_THROW(HilbertCurve(0, 4), std::invalid_argument);
  EXPECT_THROW(HilbertCurve(4, 0), std::invalid_argument);
}

TEST(HilbertCurve, KnownOrder1Values) {
  // Order-1 curve visits (0,0) (0,1) (1,1) (1,0).
  EXPECT_EQ(hilbert2d_index(1, 0, 0), 0u);
  EXPECT_EQ(hilbert2d_index(1, 0, 1), 1u);
  EXPECT_EQ(hilbert2d_index(1, 1, 1), 2u);
  EXPECT_EQ(hilbert2d_index(1, 1, 0), 3u);
}

TEST(HilbertCurve, NameReported) {
  HilbertCurve c(8, 8);
  EXPECT_EQ(c.name(), "hilbert");
}

TEST(HilbertCurve, QuadrantLocality) {
  // The first quarter of the order-4 curve stays inside one half of the
  // square — Hilbert's multi-dimensional locality.
  const std::uint32_t order = 4;
  const std::uint64_t side = 1u << order;
  const std::uint64_t quarter = side * side / 4;
  std::uint32_t max_x = 0, max_y = 0;
  for (std::uint64_t d = 0; d < quarter; ++d) {
    const auto [x, y] = hilbert2d_coords(order, d);
    max_x = std::max(max_x, x);
    max_y = std::max(max_y, y);
  }
  EXPECT_LT(max_x, side / 2 + 1);
  EXPECT_LT(max_y, side / 2 + 1);
}

}  // namespace
}  // namespace picpar::sfc
