#include "sfc/simple_curves.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "sfc/curve.hpp"

namespace picpar::sfc {
namespace {

TEST(RowMajor, IndexFormula) {
  RowMajorCurve c(10, 5);
  EXPECT_EQ(c.index(0, 0), 0u);
  EXPECT_EQ(c.index(9, 0), 9u);
  EXPECT_EQ(c.index(0, 1), 10u);
  EXPECT_EQ(c.index(3, 4), 43u);
}

TEST(RowMajor, RoundTrip) {
  RowMajorCurve c(7, 9);
  for (std::uint32_t y = 0; y < 9; ++y)
    for (std::uint32_t x = 0; x < 7; ++x) {
      const auto [rx, ry] = c.coords(c.index(x, y));
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
}

TEST(Snake, AlternatesRowDirection) {
  SnakeCurve c(4, 3);
  EXPECT_EQ(c.index(0, 0), 0u);
  EXPECT_EQ(c.index(3, 0), 3u);
  EXPECT_EQ(c.index(3, 1), 4u);  // second row starts at the right edge
  EXPECT_EQ(c.index(0, 1), 7u);
  EXPECT_EQ(c.index(0, 2), 8u);
}

TEST(Snake, ConsecutiveIndicesAreAlwaysNeighbors) {
  SnakeCurve c(8, 6);
  auto [px, py] = c.coords(0);
  for (std::uint64_t d = 1; d < 48; ++d) {
    const auto [x, y] = c.coords(d);
    const int manhattan = std::abs(static_cast<int>(x) - static_cast<int>(px)) +
                          std::abs(static_cast<int>(y) - static_cast<int>(py));
    ASSERT_EQ(manhattan, 1) << "jump at d=" << d;
    px = x;
    py = y;
  }
}

TEST(Snake, RoundTrip) {
  SnakeCurve c(6, 5);
  for (std::uint32_t y = 0; y < 5; ++y)
    for (std::uint32_t x = 0; x < 6; ++x) {
      const auto [rx, ry] = c.coords(c.index(x, y));
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
}

TEST(Snake, IndexIsDenseBijection) {
  SnakeCurve c(5, 4);
  std::set<std::uint64_t> seen;
  for (std::uint32_t y = 0; y < 4; ++y)
    for (std::uint32_t x = 0; x < 5; ++x) seen.insert(c.index(x, y));
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(*seen.rbegin(), 19u);
}

TEST(Morton, InterleavesBits) {
  MortonCurve c(8, 8);
  EXPECT_EQ(c.index(0, 0), 0u);
  EXPECT_EQ(c.index(1, 0), 1u);
  EXPECT_EQ(c.index(0, 1), 2u);
  EXPECT_EQ(c.index(1, 1), 3u);
  EXPECT_EQ(c.index(2, 0), 4u);
}

TEST(Morton, RoundTripLargeCoords) {
  MortonCurve c(1u << 16, 1u << 16);
  for (std::uint32_t v : {0u, 1u, 255u, 4096u, 65535u}) {
    const auto [x, y] = c.coords(c.index(v, v / 2 + 1));
    EXPECT_EQ(x, v);
    EXPECT_EQ(y, v / 2 + 1);
  }
}

TEST(Factory, MakesEveryKind) {
  for (auto kind : {CurveKind::kRowMajor, CurveKind::kSnake,
                    CurveKind::kMorton, CurveKind::kHilbert}) {
    const auto c = make_curve(kind, 16, 8);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->name(), curve_kind_name(kind));
    EXPECT_EQ(c->nx(), 16u);
    EXPECT_EQ(c->ny(), 8u);
  }
}

TEST(Factory, ParseNamesRoundTrip) {
  EXPECT_EQ(parse_curve_kind("hilbert"), CurveKind::kHilbert);
  EXPECT_EQ(parse_curve_kind("snake"), CurveKind::kSnake);
  EXPECT_EQ(parse_curve_kind("rowmajor"), CurveKind::kRowMajor);
  EXPECT_EQ(parse_curve_kind("morton"), CurveKind::kMorton);
  EXPECT_THROW(parse_curve_kind("zigzag"), std::invalid_argument);
}

class CurveRoundTrip : public ::testing::TestWithParam<CurveKind> {};

TEST_P(CurveRoundTrip, AllCellsInvert) {
  const auto c = make_curve(GetParam(), 12, 20);
  for (std::uint32_t y = 0; y < 20; ++y)
    for (std::uint32_t x = 0; x < 12; ++x) {
      const auto [rx, ry] = c->coords(c->index(x, y));
      ASSERT_EQ(rx, x);
      ASSERT_EQ(ry, y);
    }
}

TEST_P(CurveRoundTrip, IndicesAreDistinct) {
  const auto c = make_curve(GetParam(), 9, 11);
  std::set<std::uint64_t> seen;
  for (std::uint32_t y = 0; y < 11; ++y)
    for (std::uint32_t x = 0; x < 9; ++x) seen.insert(c->index(x, y));
  EXPECT_EQ(seen.size(), 99u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CurveRoundTrip,
                         ::testing::Values(CurveKind::kRowMajor,
                                           CurveKind::kSnake,
                                           CurveKind::kMorton,
                                           CurveKind::kHilbert));

}  // namespace
}  // namespace picpar::sfc
