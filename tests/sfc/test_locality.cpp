// Quantitative locality: the property the paper relies on — curve-order
// segments are compact for Hilbert and long thin strips for snake.
#include "sfc/locality.hpp"

#include <gtest/gtest.h>

#include "sfc/hilbert.hpp"
#include "sfc/simple_curves.hpp"

namespace picpar::sfc {
namespace {

TEST(BoundingBox, SingleCell) {
  const auto b = bounding_box({{3, 4}});
  EXPECT_EQ(b.width(), 1u);
  EXPECT_EQ(b.height(), 1u);
  EXPECT_EQ(b.area(), 1u);
  EXPECT_DOUBLE_EQ(b.aspect_ratio(), 1.0);
}

TEST(BoundingBox, SpansExtremes) {
  const auto b = bounding_box({{1, 2}, {5, 2}, {3, 7}});
  EXPECT_EQ(b.min_x, 1u);
  EXPECT_EQ(b.max_x, 5u);
  EXPECT_EQ(b.min_y, 2u);
  EXPECT_EQ(b.max_y, 7u);
  EXPECT_EQ(b.half_perimeter(), 5u + 6u);
}

TEST(BoundingBox, AspectRatioAtLeastOne) {
  const auto wide = bounding_box({{0, 0}, {9, 0}});
  const auto tall = bounding_box({{0, 0}, {0, 9}});
  EXPECT_DOUBLE_EQ(wide.aspect_ratio(), 10.0);
  EXPECT_DOUBLE_EQ(tall.aspect_ratio(), 10.0);
}

TEST(MeasurePartition, SegmentsCoverAllCells) {
  HilbertCurve c(16, 16);
  const auto segs = measure_partition(c, 8);
  ASSERT_EQ(segs.size(), 8u);
  std::uint64_t total = 0;
  for (const auto& s : segs) total += s.cells;
  EXPECT_EQ(total, 256u);
  for (const auto& s : segs) EXPECT_EQ(s.cells, 32u);
}

TEST(MeasurePartition, RejectsNonPositiveParts) {
  HilbertCurve c(8, 8);
  EXPECT_THROW(measure_partition(c, 0), std::invalid_argument);
}

TEST(MeasurePartition, SinglePartHasOnlyOuterBoundary) {
  // With one part and periodic treatment disabled (grid-edge counts as
  // boundary), boundary edges == grid perimeter cells' outside edges.
  HilbertCurve c(4, 4);
  const auto segs = measure_partition(c, 1);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].boundary_edges, 16u);  // 4 sides x 4 cells
}

struct LocalityCase {
  std::uint32_t nx, ny;
  int parts;
};

class HilbertBeatsSnake : public ::testing::TestWithParam<LocalityCase> {};

TEST_P(HilbertBeatsSnake, MeanHalfPerimeterLower) {
  const auto [nx, ny, parts] = GetParam();
  HilbertCurve h(nx, ny);
  SnakeCurve s(nx, ny);
  const auto hs = measure_partition(h, parts);
  const auto ss = measure_partition(s, parts);
  EXPECT_LT(mean_half_perimeter(hs), mean_half_perimeter(ss))
      << "hilbert should produce more compact segments";
}

TEST_P(HilbertBeatsSnake, BoundaryEdgesLower) {
  const auto [nx, ny, parts] = GetParam();
  HilbertCurve h(nx, ny);
  SnakeCurve s(nx, ny);
  const auto hs = measure_partition(h, parts);
  const auto ss = measure_partition(s, parts);
  EXPECT_LT(mean_boundary_edges(hs), mean_boundary_edges(ss));
}

TEST_P(HilbertBeatsSnake, SnakeSegmentsHaveHighAspect) {
  const auto [nx, ny, parts] = GetParam();
  SnakeCurve s(nx, ny);
  const auto ss = measure_partition(s, parts);
  double worst = 0.0;
  for (const auto& seg : ss) worst = std::max(worst, seg.box.aspect_ratio());
  EXPECT_GT(worst, 4.0) << "snake segments should be thin strips";
}

INSTANTIATE_TEST_SUITE_P(Grids, HilbertBeatsSnake,
                         ::testing::Values(LocalityCase{32, 32, 16},
                                           LocalityCase{64, 32, 32},
                                           LocalityCase{128, 64, 32}),
                         [](const ::testing::TestParamInfo<LocalityCase>& i) {
                           return std::to_string(i.param.nx) + "x" +
                                  std::to_string(i.param.ny) + "p" +
                                  std::to_string(i.param.parts);
                         });

TEST(MeanMetrics, EmptyInputIsZero) {
  EXPECT_DOUBLE_EQ(mean_half_perimeter({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_boundary_edges({}), 0.0);
}

}  // namespace
}  // namespace picpar::sfc
