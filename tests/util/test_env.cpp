#include "util/env.hpp"

#include <gtest/gtest.h>

#include <climits>
#include <cstdlib>

#include "util/log.hpp"

namespace picpar {
namespace {

// setenv/unsetenv are process-global; each test uses its own variable name
// and restores the environment so test order never matters.
class ScopedEnv {
public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

private:
  const char* name_;
};

TEST(ParseIntStrict, AcceptsPlainDecimals) {
  long out = -1;
  EXPECT_TRUE(parse_int_strict("0", LONG_MIN, LONG_MAX, out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(parse_int_strict("42", LONG_MIN, LONG_MAX, out));
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(parse_int_strict("-17", LONG_MIN, LONG_MAX, out));
  EXPECT_EQ(out, -17);
  EXPECT_TRUE(parse_int_strict("+8", LONG_MIN, LONG_MAX, out));
  EXPECT_EQ(out, 8);
}

TEST(ParseIntStrict, RejectsTrailingGarbage) {
  long out = 99;
  EXPECT_FALSE(parse_int_strict("1x", LONG_MIN, LONG_MAX, out));
  EXPECT_FALSE(parse_int_strict("2 ", LONG_MIN, LONG_MAX, out));
  EXPECT_FALSE(parse_int_strict(" 2", LONG_MIN, LONG_MAX, out));
  EXPECT_FALSE(parse_int_strict(" 2 ", LONG_MIN, LONG_MAX, out));
  EXPECT_FALSE(parse_int_strict("3.5", LONG_MIN, LONG_MAX, out));
  EXPECT_FALSE(parse_int_strict("0x10", LONG_MIN, LONG_MAX, out));
  EXPECT_FALSE(parse_int_strict("12,000", LONG_MIN, LONG_MAX, out));
  EXPECT_EQ(out, 99);  // untouched on failure
}

TEST(ParseIntStrict, RejectsEmptyAndSignOnly) {
  long out = 7;
  EXPECT_FALSE(parse_int_strict("", LONG_MIN, LONG_MAX, out));
  EXPECT_FALSE(parse_int_strict(nullptr, LONG_MIN, LONG_MAX, out));
  EXPECT_FALSE(parse_int_strict("-", LONG_MIN, LONG_MAX, out));
  EXPECT_FALSE(parse_int_strict("+", LONG_MIN, LONG_MAX, out));
  EXPECT_EQ(out, 7);
}

TEST(ParseIntStrict, RejectsOutOfRange) {
  long out = 5;
  EXPECT_FALSE(parse_int_strict("101", 0, 100, out));
  EXPECT_FALSE(parse_int_strict("-1", 0, 100, out));
  // Overflows long entirely.
  EXPECT_FALSE(
      parse_int_strict("99999999999999999999999", LONG_MIN, LONG_MAX, out));
  EXPECT_EQ(out, 5);
  EXPECT_TRUE(parse_int_strict("100", 0, 100, out));
  EXPECT_EQ(out, 100);
}

TEST(EnvInt, ParsesWellFormedValue) {
  ScopedEnv e("PICPAR_TEST_INT_OK", "12");
  EXPECT_EQ(env_int("PICPAR_TEST_INT_OK", 3), 12);
}

TEST(EnvInt, UnsetUsesFallback) {
  ::unsetenv("PICPAR_TEST_INT_UNSET");
  EXPECT_EQ(env_int("PICPAR_TEST_INT_UNSET", 3), 3);
}

TEST(EnvInt, TrailingGarbageUsesFallback) {
  ScopedEnv e("PICPAR_TEST_INT_BAD", "1x");
  EXPECT_EQ(env_int("PICPAR_TEST_INT_BAD", 3), 3);
}

TEST(EnvInt, PaddedValueUsesFallback) {
  ScopedEnv e("PICPAR_TEST_INT_PAD", " 2 ");
  EXPECT_EQ(env_int("PICPAR_TEST_INT_PAD", 3), 3);
}

TEST(EnvInt, OutOfIntRangeUsesFallback) {
  ScopedEnv e("PICPAR_TEST_INT_HUGE", "99999999999");
  EXPECT_EQ(env_int("PICPAR_TEST_INT_HUGE", 3), 3);
}

TEST(EnvEnabled, BooleanRule) {
  {
    ScopedEnv e("PICPAR_TEST_BOOL", "1");
    EXPECT_TRUE(env_enabled("PICPAR_TEST_BOOL"));
  }
  {
    ScopedEnv e("PICPAR_TEST_BOOL", "0");
    EXPECT_FALSE(env_enabled("PICPAR_TEST_BOOL"));
  }
  {
    ScopedEnv e("PICPAR_TEST_BOOL", "");
    EXPECT_FALSE(env_enabled("PICPAR_TEST_BOOL"));
  }
  ::unsetenv("PICPAR_TEST_BOOL");
  EXPECT_FALSE(env_enabled("PICPAR_TEST_BOOL"));
}

TEST(ParseLogLevel, StrictRecognizesAllLevelsAndRejectsTypos) {
  LogLevel l = LogLevel::kError;
  EXPECT_TRUE(parse_log_level_strict("error", l));
  EXPECT_EQ(l, LogLevel::kError);
  EXPECT_TRUE(parse_log_level_strict("warn", l));
  EXPECT_EQ(l, LogLevel::kWarn);
  EXPECT_TRUE(parse_log_level_strict("info", l));
  EXPECT_EQ(l, LogLevel::kInfo);
  EXPECT_TRUE(parse_log_level_strict("debug", l));
  EXPECT_EQ(l, LogLevel::kDebug);
  EXPECT_TRUE(parse_log_level_strict("trace", l));
  EXPECT_EQ(l, LogLevel::kTrace);

  l = LogLevel::kDebug;
  EXPECT_FALSE(parse_log_level_strict("inf", l));
  EXPECT_FALSE(parse_log_level_strict("INFO", l));
  EXPECT_FALSE(parse_log_level_strict("", l));
  EXPECT_EQ(l, LogLevel::kDebug);  // untouched on failure

  // Lenient wrapper still maps unknown to kInfo for legacy callers.
  EXPECT_EQ(parse_log_level("nonsense"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
}

}  // namespace
}  // namespace picpar
