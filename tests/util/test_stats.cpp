#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace picpar {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats s;
  const double xs[] = {1.0, 2.0, 4.0, 8.0, 16.0};
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / 5.0;
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= 5.0;
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i < 20 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_EQ(a.count(), 2u);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, RejectsBadArguments) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(5.6);
  h.add(9.9);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 8.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 6.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 8.0);
}

TEST(Histogram, AsciiMentionsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.25);
  const auto s = h.ascii(10);
  EXPECT_NE(s.find("2"), std::string::npos);
  EXPECT_NE(s.find("#"), std::string::npos);
}

TEST(Imbalance, BalancedIsOne) {
  const auto r = imbalance({3.0, 3.0, 3.0});
  EXPECT_DOUBLE_EQ(r.factor(), 1.0);
}

TEST(Imbalance, DetectsSkew) {
  const auto r = imbalance({1.0, 1.0, 10.0});
  EXPECT_DOUBLE_EQ(r.max, 10.0);
  EXPECT_DOUBLE_EQ(r.mean, 4.0);
  EXPECT_DOUBLE_EQ(r.factor(), 2.5);
}

TEST(Imbalance, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(imbalance({}).factor(), 0.0);
}

TEST(Imbalance, CountsOverload) {
  const auto r = imbalance_counts({2, 4, 6});
  EXPECT_DOUBLE_EQ(r.max, 6.0);
  EXPECT_DOUBLE_EQ(r.mean, 4.0);
}

TEST(Percentile, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 9.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 9.0}, 1.0), 9.0);
}

TEST(Percentile, InterpolatesBetweenSamples) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Percentile, EmptyIsZero) { EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0); }

}  // namespace
}  // namespace picpar
