#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace picpar {
namespace {

TEST(Table, HeaderAppearsInAscii) {
  Table t({"alpha", "beta"});
  const auto s = t.ascii();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
}

TEST(Table, CellsRoundTrip) {
  Table t({"a", "b"});
  t.row().add("x").add(std::size_t{42});
  t.row().add(3.14159, 2).add("y");
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cell(0, 0), "x");
  EXPECT_EQ(t.cell(0, 1), "42");
  EXPECT_EQ(t.cell(1, 0), "3.14");
  EXPECT_EQ(t.cell(1, 1), "y");
}

TEST(Table, AddWithoutRowStartsOne) {
  Table t({"a"});
  t.add("implicit");
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cell(0, 0), "implicit");
}

TEST(Table, TitleShownWhenSet) {
  Table t({"a"});
  t.set_title("My Table");
  EXPECT_NE(t.ascii().find("My Table"), std::string::npos);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"h"});
  t.row().add("wide-cell-content");
  const auto s = t.ascii();
  // Every data row line must be at least as wide as the widest cell + frame.
  std::istringstream is(s);
  std::string line;
  std::size_t minw = 1000;
  while (std::getline(is, line))
    if (!line.empty()) minw = std::min(minw, line.size());
  EXPECT_GE(minw, std::string("wide-cell-content").size());
}

TEST(Table, CsvBasic) {
  Table t({"a", "b"});
  t.row().add("1").add("2");
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, CsvQuotesCommasAndQuotes) {
  Table t({"a"});
  t.row().add("x,y");
  t.row().add("he said \"hi\"");
  const auto csv = t.csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, NegativeAndIntegerFormats) {
  Table t({"v"});
  t.row().add(-5);
  t.row().add(static_cast<long long>(1) << 40);
  EXPECT_EQ(t.cell(0, 0), "-5");
  EXPECT_EQ(t.cell(1, 0), std::to_string(1LL << 40));
}

TEST(PrintSeries, EmitsAllPoints) {
  std::ostringstream os;
  print_series(os, "curve", {1.0, 2.0}, {10.0, 20.0});
  const auto s = os.str();
  EXPECT_NE(s.find("# series: curve"), std::string::npos);
  EXPECT_NE(s.find("1 10"), std::string::npos);
  EXPECT_NE(s.find("2 20"), std::string::npos);
}

TEST(PrintSeries, MismatchedLengthsThrow) {
  std::ostringstream os;
  EXPECT_THROW(print_series(os, "bad", {1.0}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace picpar
