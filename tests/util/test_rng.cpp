#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace picpar {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(5);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMomentsMatchStandardNormal) {
  Rng r(13);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalScaleAndShift) {
  Rng r(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.02);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace picpar
