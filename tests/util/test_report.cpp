#include "util/report.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace picpar {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream f(p);
  return std::string(std::istreambuf_iterator<char>(f), {});
}

class ReportIo : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("picpar_report_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(ReportIo, WritesSeriesDatFiles) {
  Report r("fig_test");
  r.add_series("static", {0, 1, 2}, {1.0, 2.0, 4.0});
  r.add_series("periodic", {0, 1, 2}, {1.0, 1.1, 1.2});
  r.write(dir_.string());
  const auto base = dir_ / "fig_test";
  ASSERT_TRUE(fs::exists(base / "static.dat"));
  ASSERT_TRUE(fs::exists(base / "periodic.dat"));
  const auto text = slurp(base / "static.dat");
  EXPECT_NE(text.find("0 1"), std::string::npos);
  EXPECT_NE(text.find("2 4"), std::string::npos);
}

TEST_F(ReportIo, WritesGnuplotScript) {
  Report r("fig_test");
  r.add_series("curve a", {0}, {1});
  r.set_axis_labels("iteration", "seconds");
  r.write(dir_.string());
  const auto gp = slurp(dir_ / "fig_test" / "fig_test.gp");
  EXPECT_NE(gp.find("set xlabel 'iteration'"), std::string::npos);
  EXPECT_NE(gp.find("set ylabel 'seconds'"), std::string::npos);
  EXPECT_NE(gp.find("curve_a.dat"), std::string::npos);
  EXPECT_NE(gp.find("title 'curve a'"), std::string::npos);
}

TEST_F(ReportIo, WritesCsvTables) {
  Report r("tbl");
  Table t({"a", "b"});
  t.row().add("1").add("2");
  r.add_table("results", std::move(t));
  r.write(dir_.string());
  EXPECT_EQ(slurp(dir_ / "tbl" / "results.csv"), "a,b\n1,2\n");
}

TEST_F(ReportIo, SanitizesAwkwardNames) {
  Report r("fig 16: static/periodic");
  r.add_series("p=32 (s)", {0}, {1});
  r.write(dir_.string());
  EXPECT_TRUE(fs::exists(dir_ / "fig_16__static_periodic"));
  EXPECT_TRUE(
      fs::exists(dir_ / "fig_16__static_periodic" / "p_32__s_.dat"));
}

TEST(Report, RejectsMismatchedSeries) {
  Report r("x");
  EXPECT_THROW(r.add_series("bad", {1, 2}, {1}), std::invalid_argument);
}

TEST(Report, RejectsEmptyName) {
  EXPECT_THROW(Report(""), std::invalid_argument);
}

TEST(Report, ScriptWithoutSeriesIsValid) {
  Report r("empty");
  const auto gp = r.gnuplot_script();
  EXPECT_NE(gp.find("(no series)"), std::string::npos);
}

TEST(Report, CountsAreTracked) {
  Report r("c");
  r.add_series("s", {}, {});
  Table t({"h"});
  r.add_table("t", std::move(t));
  EXPECT_EQ(r.series_count(), 1u);
  EXPECT_EQ(r.table_count(), 1u);
}

}  // namespace
}  // namespace picpar
