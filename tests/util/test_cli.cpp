#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace picpar {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return v;
}

TEST(Cli, DefaultsSurviveEmptyParse) {
  Cli cli("t", "test");
  auto n = cli.flag<int>("n", 5, "count");
  auto s = cli.flag<std::string>("name", "abc", "label");
  auto v = argv_of({});
  cli.parse(static_cast<int>(v.size()), v.data());
  EXPECT_EQ(*n, 5);
  EXPECT_EQ(*s, "abc");
}

TEST(Cli, ParsesSeparateValue) {
  Cli cli("t", "test");
  auto n = cli.flag<int>("n", 0, "count");
  auto v = argv_of({"--n", "42"});
  cli.parse(static_cast<int>(v.size()), v.data());
  EXPECT_EQ(*n, 42);
}

TEST(Cli, ParsesEqualsSyntax) {
  Cli cli("t", "test");
  auto d = cli.flag<double>("x", 0.0, "value");
  auto v = argv_of({"--x=2.5"});
  cli.parse(static_cast<int>(v.size()), v.data());
  EXPECT_DOUBLE_EQ(*d, 2.5);
}

TEST(Cli, BoolFlagTakesNoValue) {
  Cli cli("t", "test");
  auto b = cli.flag<bool>("full", false, "run full scale");
  auto v = argv_of({"--full"});
  cli.parse(static_cast<int>(v.size()), v.data());
  EXPECT_TRUE(*b);
}

TEST(Cli, UnknownFlagThrows) {
  Cli cli("t", "test");
  auto v = argv_of({"--bogus"});
  EXPECT_THROW(cli.parse(static_cast<int>(v.size()), v.data()),
               std::runtime_error);
}

TEST(Cli, MissingValueThrows) {
  Cli cli("t", "test");
  auto n = cli.flag<int>("n", 0, "count");
  (void)n;
  auto v = argv_of({"--n"});
  EXPECT_THROW(cli.parse(static_cast<int>(v.size()), v.data()),
               std::runtime_error);
}

TEST(Cli, MalformedNumberThrows) {
  Cli cli("t", "test");
  auto n = cli.flag<int>("n", 0, "count");
  (void)n;
  auto v = argv_of({"--n", "notanumber"});
  EXPECT_THROW(cli.parse(static_cast<int>(v.size()), v.data()),
               std::runtime_error);
}

TEST(Cli, PositionalArgumentThrows) {
  Cli cli("t", "test");
  auto v = argv_of({"stray"});
  EXPECT_THROW(cli.parse(static_cast<int>(v.size()), v.data()),
               std::runtime_error);
}

TEST(Cli, MultipleFlagsAnyOrder) {
  Cli cli("t", "test");
  auto a = cli.flag<int>("a", 0, "");
  auto b = cli.flag<std::string>("b", "", "");
  auto c = cli.flag<bool>("c", false, "");
  auto v = argv_of({"--b", "hello", "--c", "--a=7"});
  cli.parse(static_cast<int>(v.size()), v.data());
  EXPECT_EQ(*a, 7);
  EXPECT_EQ(*b, "hello");
  EXPECT_TRUE(*c);
}

TEST(Cli, UsageListsFlagsAndDefaults) {
  Cli cli("prog", "does things");
  auto n = cli.flag<int>("iters", 200, "iteration count");
  (void)n;
  const auto u = cli.usage();
  EXPECT_NE(u.find("--iters"), std::string::npos);
  EXPECT_NE(u.find("200"), std::string::npos);
  EXPECT_NE(u.find("does things"), std::string::npos);
}

TEST(Cli, LastValueWins) {
  Cli cli("t", "test");
  auto n = cli.flag<int>("n", 0, "");
  auto v = argv_of({"--n", "1", "--n", "2"});
  cli.parse(static_cast<int>(v.size()), v.data());
  EXPECT_EQ(*n, 2);
}

}  // namespace
}  // namespace picpar
