// SparseRankMap: the sorted-vector per-peer map underneath the machine's
// transport state, the ghost-exchange routing table, and the partitioner's
// redistribution send tables. The properties pinned here are the ones the
// bit-identity argument leans on: ascending-rank iteration order, stable
// insert-or-get semantics, clear() keeping capacity, and capacity-based
// memory accounting.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/sparse_rank.hpp"

namespace picpar::util {
namespace {

TEST(SparseRankMap, RefInsertsAndFinds) {
  SparseRankMap<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(3), nullptr);

  m.ref(3) = 30;
  m.ref(1) = 10;
  m.ref(7) = 70;
  EXPECT_EQ(m.size(), 3u);
  ASSERT_NE(m.find(3), nullptr);
  EXPECT_EQ(*m.find(3), 30);
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), 10);
  EXPECT_EQ(m.find(2), nullptr);

  // ref on an existing rank returns the same slot, no duplicate entry.
  m.ref(3) += 5;
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(*m.find(3), 35);
}

TEST(SparseRankMap, IterationAscendsByRank) {
  SparseRankMap<int> m;
  for (const int r : {9, 2, 5, 0, 7}) m.ref(r) = r * 10;
  std::vector<int> order;
  for (const auto& e : m) order.push_back(e.rank);
  EXPECT_EQ(order, (std::vector<int>{0, 2, 5, 7, 9}));
}

TEST(SparseRankMap, EraseRemovesOnlyTarget) {
  SparseRankMap<int> m;
  for (const int r : {1, 4, 6}) m.ref(r) = r;
  EXPECT_TRUE(m.erase(4));
  EXPECT_FALSE(m.erase(4));
  EXPECT_FALSE(m.erase(99));
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.find(4), nullptr);
  ASSERT_NE(m.find(1), nullptr);
  ASSERT_NE(m.find(6), nullptr);
}

TEST(SparseRankMap, ClearKeepsCapacity) {
  SparseRankMap<int> m;
  for (int r = 0; r < 32; ++r) m.ref(r) = r;
  const std::size_t bytes = m.memory_bytes();
  EXPECT_GT(bytes, 0u);
  m.clear();
  EXPECT_TRUE(m.empty());
  // Steady-state reuse must not reallocate: capacity (and the bytes the
  // budget charges for it) persists across clear().
  EXPECT_EQ(m.memory_bytes(), bytes);
  m.ref(5) = 1;
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.memory_bytes(), bytes);
}

TEST(SparseRankMap, ConstFind) {
  SparseRankMap<std::string> m;
  m.ref(2) = "two";
  const auto& cm = m;
  ASSERT_NE(cm.find(2), nullptr);
  EXPECT_EQ(*cm.find(2), "two");
  EXPECT_EQ(cm.find(0), nullptr);
}

TEST(SparseRankMap, MemoryBytesTracksCapacity) {
  SparseRankMap<std::uint64_t> m;
  EXPECT_EQ(m.memory_bytes(), 0u);
  m.ref(0) = 1;
  const auto one = m.memory_bytes();
  EXPECT_GE(one, sizeof(int) + sizeof(std::uint64_t));
  for (int r = 1; r < 100; ++r) m.ref(r) = 1;
  EXPECT_GT(m.memory_bytes(), one);
}

}  // namespace
}  // namespace picpar::util
