// Happens-before analyzer fixtures: seeded races, tag-space violations,
// phase misattribution, floating-point reduction-order sensitivity, the
// OrderInsensitive annotation, clean collectives, and the two-run
// determinism audit.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/audit.hpp"
#include "sim/comm.hpp"

namespace picpar::analysis {
namespace {

using sim::Comm;
using sim::CostModel;
using sim::kAnySource;
using sim::kAnyTag;
using sim::Machine;
using sim::Phase;

/// Two concurrent senders into one wildcard receiver: the canonical
/// message race. Nothing orders rank 1's send against rank 2's.
void racy_program(Comm& c) {
  if (c.rank() == 1 || c.rank() == 2) c.send_value<int>(0, 5, c.rank());
  if (c.rank() == 0) {
    (void)c.recv<int>(kAnySource, 5);
    (void)c.recv<int>(kAnySource, 5);
  }
}

TEST(Analyzer, DetectsSeededMessageRace) {
  Machine m(3, CostModel::zero());
  Analyzer a;
  m.set_observer(&a);
  m.run(racy_program);
  EXPECT_GE(a.count(FindingKind::kMessageRace), 1u);
  EXPECT_EQ(a.count(FindingKind::kTagViolation), 0u);
  EXPECT_EQ(a.count(FindingKind::kPhaseMismatch), 0u);
  ASSERT_FALSE(a.findings().empty());
  const auto& f = a.findings()[0];
  EXPECT_EQ(f.kind, FindingKind::kMessageRace);
  EXPECT_EQ(f.rank, 0);
  // Both senders appear in the provenance, in either role.
  EXPECT_TRUE((f.src == 1 && f.other_src == 2) ||
              (f.src == 2 && f.other_src == 1));
  EXPECT_EQ(f.tag, 5);
  EXPECT_NE(a.report().find("message-race"), std::string::npos);
}

TEST(Analyzer, OrderedSendsAreNotARace) {
  // Rank 2 sends only after hearing from rank 1 via rank 0's relay, so the
  // two sends into the wildcard receives are happens-before ordered.
  Machine m(3, CostModel::zero());
  Analyzer a;
  m.set_observer(&a);
  m.run([](Comm& c) {
    if (c.rank() == 1) c.send_value<int>(0, 5, 1);
    if (c.rank() == 0) {
      (void)c.recv<int>(kAnySource, 5);
      c.send_value<int>(2, 6, 0);  // carries rank 1's send in its clock
      (void)c.recv<int>(kAnySource, 5);
    }
    if (c.rank() == 2) {
      (void)c.recv<int>(0, 6);
      c.send_value<int>(0, 5, 2);
    }
  });
  EXPECT_EQ(a.total(), 0u) << a.report();
}

TEST(Analyzer, SpecificSourceReceivesAreNotARace) {
  // Same traffic as racy_program but with named sources: matching is
  // deterministic, so no race.
  Machine m(3, CostModel::zero());
  Analyzer a;
  m.set_observer(&a);
  m.run([](Comm& c) {
    if (c.rank() == 1 || c.rank() == 2) c.send_value<int>(0, 5, c.rank());
    if (c.rank() == 0) {
      (void)c.recv<int>(1, 5);
      (void)c.recv<int>(2, 5);
    }
  });
  EXPECT_EQ(a.total(), 0u) << a.report();
}

TEST(Analyzer, OrderInsensitiveScopeSuppressesRaceFindings) {
  Machine m(3, CostModel::zero());
  Analyzer a;
  m.set_observer(&a);
  m.run([](Comm& c) {
    if (c.rank() == 1 || c.rank() == 2) c.send_value<int>(0, 5, c.rank());
    if (c.rank() == 0) {
      Comm::OrderInsensitive scope(c);  // results keyed by source
      int src = kAnySource;
      (void)c.recv<int>(kAnySource, 5, &src);
      (void)c.recv<int>(kAnySource, 5, &src);
    }
  });
  EXPECT_EQ(a.total(), 0u) << a.report();
}

TEST(Analyzer, FlagsFloatingPointReductionOrder) {
  // Wildcard receives of floating-point payloads feeding an accumulation:
  // the race is classified as reduction-order sensitivity.
  Machine m(3, CostModel::zero());
  Analyzer a;
  m.set_observer(&a);
  m.run([](Comm& c) {
    if (c.rank() == 1 || c.rank() == 2)
      c.send_value<double>(0, 7, 0.1 * c.rank());
    if (c.rank() == 0) {
      double acc = 0.0;
      acc += c.recv_value<double>(kAnySource, 7);
      acc += c.recv_value<double>(kAnySource, 7);
      (void)acc;
    }
  });
  EXPECT_GE(a.count(FindingKind::kReductionOrder), 1u);
  EXPECT_EQ(a.count(FindingKind::kMessageRace), 0u);
  EXPECT_NE(a.report().find("floating-point"), std::string::npos);
}

TEST(Analyzer, FlagsReservedTagUse) {
  Machine m(2, CostModel::zero());
  m.set_strict_tags(false);  // record findings instead of throwing
  Analyzer a;
  m.set_observer(&a);
  m.run([](Comm& c) {
    if (c.rank() == 0) c.send_value<int>(1, -7, 42);
    if (c.rank() == 1) (void)c.recv<int>(0, kAnyTag);
  });
  // Send-side (reserved tag) and receive-side (stolen message) both fire.
  EXPECT_GE(a.count(FindingKind::kTagViolation), 2u);
  EXPECT_NE(a.report().find("reserved tag"), std::string::npos);
  EXPECT_NE(a.report().find("stolen"), std::string::npos);
}

TEST(Analyzer, FlagsWildcardReceiveThatCanStealCollectiveTraffic) {
  // A retransmit-channel message is pending while user code posts a
  // wildcard-tag receive: the next such receive could consume it.
  Machine m(2, CostModel::zero());
  m.set_strict_tags(false);
  Analyzer a;
  m.set_observer(&a);
  m.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send_value<int>(1, Comm::kTagRetransmit, 1);
      c.send_value<int>(1, 3, 2);
      (void)c.recv_value<int>(1, 9);  // keep rank 0 alive until 1 is done
    }
    if (c.rank() == 1) {
      (void)c.recv<int>(kAnySource, kAnyTag);  // matches FIFO head
      (void)c.recv<int>(kAnySource, kAnyTag);
      c.send_value<int>(0, 9, 0);
    }
  });
  EXPECT_GE(a.count(FindingKind::kTagViolation), 1u) << a.report();
}

TEST(Analyzer, FlagsPhaseMisattribution) {
  // Sender charges the message to scatter; the receiver books it under
  // gather — the per-phase traffic tables disagree.
  Machine m(2, CostModel::zero());
  Analyzer a;
  m.set_observer(&a);
  m.run([](Comm& c) {
    if (c.rank() == 0) {
      c.set_phase(Phase::kScatter);
      c.send_value<int>(1, 4, 1);
    }
    if (c.rank() == 1) {
      c.set_phase(Phase::kGather);
      (void)c.recv<int>(0, 4);
    }
  });
  EXPECT_EQ(a.count(FindingKind::kPhaseMismatch), 1u);
  const auto& f = a.findings().at(0);
  EXPECT_EQ(f.phase, Phase::kGather);
  EXPECT_EQ(f.other_phase, Phase::kScatter);
}

TEST(Analyzer, CleanCollectivesProduceZeroFindings) {
  // Every collective in the library, including all_to_many's internal
  // wildcard receives, is race-free by construction; the analyzer must not
  // cry wolf on any of it.
  const int p = 7;
  Machine m(p, CostModel::cm5());
  Analyzer a;
  m.set_observer(&a);
  m.run([](Comm& c) {
    const int p2 = c.size();
    c.barrier();
    const auto b = c.bcast_value<int>(c.rank() == 2 ? 99 : 0, 2);
    EXPECT_EQ(b, 99);
    const auto s = c.allreduce_sum<long>(c.rank());
    EXPECT_EQ(s, static_cast<long>(p2) * (p2 - 1) / 2);
    (void)c.exscan_sum<int>(1);
    const auto g = c.allgather(c.rank());
    EXPECT_EQ(static_cast<int>(g.size()), p2);
    std::vector<std::vector<int>> out(static_cast<std::size_t>(p2));
    for (int d = 0; d < p2; ++d)
      if ((c.rank() + d) % 2 == 0)
        out[static_cast<std::size_t>(d)] = {c.rank(), d};
    (void)c.all_to_many(std::move(out));
    c.barrier();
  });
  EXPECT_EQ(a.total(), 0u) << a.report();
  EXPECT_GT(a.events(), 0u);
}

TEST(Analyzer, ObserverDoesNotPerturbVirtualTime) {
  // Attaching the analyzer must not change the simulated execution: the
  // happens-before layer rides on real time, not virtual time.
  const auto program = [](Comm& c) {
    const int next = (c.rank() + 1) % c.size();
    c.send_value<int>(next, 1, c.rank());
    (void)c.recv<int>((c.rank() + c.size() - 1) % c.size(), 1);
    (void)c.allreduce_sum<int>(1);
  };
  Machine plain(5, CostModel::cm5());
  const auto base = plain.run(program);
  Machine observed(5, CostModel::cm5());
  Analyzer a;
  observed.set_observer(&a);
  const auto got = observed.run(program);
  ASSERT_EQ(base.ranks.size(), got.ranks.size());
  for (std::size_t r = 0; r < base.ranks.size(); ++r)
    EXPECT_EQ(base.ranks[r].clock, got.ranks[r].clock) << "rank " << r;
  EXPECT_EQ(a.total(), 0u);
}

TEST(Analyzer, FindingsAreDeduplicatedAndCapped) {
  Analyzer::Options opt;
  opt.max_findings = 1;
  Machine m(3, CostModel::zero());
  Analyzer a(opt);
  m.set_observer(&a);
  for (int i = 0; i < 3; ++i) m.run(racy_program);
  EXPECT_GE(a.total(), 3u);                 // every detection counted
  EXPECT_EQ(a.findings().size(), 1u);       // stored once
  EXPECT_NE(a.report().find("deduplicated"), std::string::npos);
  a.clear_findings();
  EXPECT_EQ(a.total(), 0u);
  EXPECT_TRUE(a.findings().empty());
}

TEST(Audit, DeterministicProgramPasses) {
  Machine m(4, CostModel::cm5());
  const auto res = audit_determinism(m, [](Comm& c) {
    const int next = (c.rank() + 1) % c.size();
    c.send_value<int>(next, 2, c.rank());
    (void)c.recv<int>(kAnySource, 2);
    (void)c.allreduce_sum<int>(c.rank());
  });
  EXPECT_TRUE(res.deterministic()) << res.summary();
  EXPECT_EQ(res.fingerprint_first, res.fingerprint_second);
  EXPECT_EQ(res.events_first, res.events_second);
  EXPECT_GT(res.events_first, 0u);
  EXPECT_NE(res.summary().find("PASS"), std::string::npos);
}

TEST(Audit, CatchesHiddenStateSteeringCommunication) {
  // The program's traffic depends on state that survives between runs —
  // exactly the class of bug (leaked caches, pointer-keyed iteration) the
  // fingerprint diff exists to catch.
  Machine m(2, CostModel::cm5());
  int generation = 0;
  const auto res = audit_determinism(
      m,
      [&generation](Comm& c) {
        const int msgs = 1 + generation;
        if (c.rank() == 0)
          for (int k = 0; k < msgs; ++k) c.send_value<int>(1, 3, k);
        if (c.rank() == 1)
          for (int k = 0; k < msgs; ++k) (void)c.recv<int>(0, 3);
      },
      [&generation] { ++generation; });
  EXPECT_FALSE(res.deterministic()) << res.summary();
  EXPECT_NE(res.events_first, res.events_second);
  EXPECT_NE(res.summary().find("FAIL"), std::string::npos);
}

TEST(Audit, RestoresPreviousObserver) {
  Machine m(2, CostModel::zero());
  Analyzer outer;
  m.set_observer(&outer);
  (void)audit_determinism(m, [](Comm& c) {
    if (c.rank() == 0) c.send_value<int>(1, 1, 0);
    if (c.rank() == 1) (void)c.recv<int>(0, 1);
  });
  EXPECT_EQ(m.observer(), &outer);
}

TEST(Audit, EnvFlagParsing) {
  // Only presence with a non-"0" value opts in.
  ASSERT_EQ(unsetenv("PICPAR_ANALYZE"), 0);
  EXPECT_FALSE(analyzer_env_enabled());
  ASSERT_EQ(setenv("PICPAR_ANALYZE", "0", 1), 0);
  EXPECT_FALSE(analyzer_env_enabled());
  ASSERT_EQ(setenv("PICPAR_ANALYZE", "1", 1), 0);
  EXPECT_TRUE(analyzer_env_enabled());
  ASSERT_EQ(setenv("PICPAR_ANALYZE", "", 1), 0);
  EXPECT_FALSE(analyzer_env_enabled());
  ASSERT_EQ(unsetenv("PICPAR_ANALYZE"), 0);
}

}  // namespace
}  // namespace picpar::analysis
