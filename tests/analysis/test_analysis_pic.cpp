// The analyzer against the real PIC pipeline: the full scatter / field /
// gather / push / redistribute machinery must come out clean (no races, no
// tag or phase violations), the happens-before fingerprint must be stable,
// and the two-run determinism audit must pass. These are the negative
// fixtures proving the production communication patterns race-free — and
// the tripwire that catches a future refactoring that breaks them.
#include <gtest/gtest.h>

#include <cstdlib>

#include "pic/simulation.hpp"

namespace picpar::pic {
namespace {

PicParams tiny_params() {
  PicParams p;
  p.grid = mesh::GridDesc(24, 12);
  p.nranks = 6;
  p.dist = particles::Distribution::kGaussian;
  p.init.total = 1024;
  p.init.drift_ux = 0.1;
  p.iterations = 8;
  p.policy = "periodic:3";  // exercise redistribution under the analyzer
  p.machine = sim::CostModel::cm5();
  return p;
}

TEST(AnalysisPic, DisabledByDefault) {
  const auto r = run_pic(tiny_params());
  EXPECT_EQ(r.analysis_findings, -1);
  EXPECT_TRUE(r.analysis_report.empty());
  EXPECT_EQ(r.hb_fingerprint, 0u);
  EXPECT_EQ(r.determinism_audit, -1);
}

TEST(AnalysisPic, FullPipelineIsClean) {
  auto p = tiny_params();
  p.analyze.enabled = true;
  const auto r = run_pic(p);
  EXPECT_EQ(r.analysis_findings, 0) << r.analysis_report;
  EXPECT_TRUE(r.analysis_report.empty());
  EXPECT_NE(r.hb_fingerprint, 0u);
  EXPECT_EQ(r.determinism_audit, -1);  // audit not requested
}

TEST(AnalysisPic, AnalyzerDoesNotChangeTheSimulation) {
  auto p = tiny_params();
  const auto base = run_pic(p);
  p.analyze.enabled = true;
  const auto observed = run_pic(p);
  EXPECT_EQ(observed.total_seconds, base.total_seconds);
  EXPECT_EQ(observed.kinetic_energy, base.kinetic_energy);
  EXPECT_EQ(observed.field_energy, base.field_energy);
  EXPECT_EQ(observed.redistributions, base.redistributions);
}

TEST(AnalysisPic, FingerprintIsReproducible) {
  auto p = tiny_params();
  p.analyze.enabled = true;
  const auto a = run_pic(p);
  const auto b = run_pic(p);
  EXPECT_EQ(a.hb_fingerprint, b.hb_fingerprint);
  // A different workload communicates differently.
  p.init.total = 512;
  const auto c = run_pic(p);
  EXPECT_NE(a.hb_fingerprint, c.hb_fingerprint);
}

TEST(AnalysisPic, DeterminismAuditPasses) {
  auto p = tiny_params();
  p.iterations = 5;
  p.analyze.audit_determinism = true;
  const auto r = run_pic(p);
  EXPECT_EQ(r.determinism_audit, 1);
  EXPECT_EQ(r.analysis_findings, 0) << r.analysis_report;
}

TEST(AnalysisPic, SarPolicyWithFaultsIsCleanToo) {
  // Faulty transport (jitter + duplicates + reordering) changes timing and
  // delivery, but the recovered program must still be analyzer-clean: the
  // transport hides all of it below the message interface.
  auto p = tiny_params();
  p.policy = "sar";
  p.analyze.enabled = true;
  p.faults.latency_jitter_prob = 0.05;
  p.faults.latency_jitter_max_seconds = 1e-4;
  p.faults.duplicate_prob = 0.02;
  p.faults.reorder_prob = 0.02;
  const auto r = run_pic(p);
  EXPECT_EQ(r.analysis_findings, 0) << r.analysis_report;
}

TEST(AnalysisPic, EnvVarEnablesAnalyzerWithoutConfig) {
  ASSERT_EQ(setenv("PICPAR_ANALYZE", "1", 1), 0);
  const auto r = run_pic(tiny_params());
  ASSERT_EQ(unsetenv("PICPAR_ANALYZE"), 0);
  EXPECT_EQ(r.analysis_findings, 0) << r.analysis_report;
  EXPECT_NE(r.hb_fingerprint, 0u);
}

}  // namespace
}  // namespace picpar::pic
