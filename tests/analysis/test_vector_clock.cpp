// Vector-clock algebra: tick/merge semantics, the happens-before partial
// order, concurrency as incomparability, and hashing stability.
#include <gtest/gtest.h>

#include "analysis/vector_clock.hpp"

namespace picpar::analysis {
namespace {

TEST(VectorClock, StartsAtZero) {
  VectorClock c(4);
  EXPECT_EQ(c.size(), 4);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(c[r], 0u);
  EXPECT_TRUE(VectorClock().empty());
  EXPECT_FALSE(c.empty());
}

TEST(VectorClock, TickAdvancesOnlyOwnComponent) {
  VectorClock c(3);
  c.tick(1);
  c.tick(1);
  c.tick(2);
  EXPECT_EQ(c[0], 0u);
  EXPECT_EQ(c[1], 2u);
  EXPECT_EQ(c[2], 1u);
}

TEST(VectorClock, MergeIsComponentwiseMax) {
  VectorClock a(3), b(3);
  a.tick(0);
  a.tick(0);
  b.tick(1);
  b.tick(2);
  a.merge(b);
  EXPECT_EQ(a[0], 2u);
  EXPECT_EQ(a[1], 1u);
  EXPECT_EQ(a[2], 1u);
}

TEST(VectorClock, MergeRejectsSizeMismatch) {
  VectorClock a(3), b(2);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(VectorClock, HappensBeforeIsStrict) {
  VectorClock a(2), b(2);
  a.tick(0);            // a = [1 0]
  b = a;
  b.tick(1);            // b = [1 1]
  EXPECT_TRUE(a.happens_before(b));
  EXPECT_FALSE(b.happens_before(a));
  EXPECT_FALSE(a.happens_before(a));  // irreflexive
  EXPECT_FALSE(a.concurrent(b));
}

TEST(VectorClock, IncomparableClocksAreConcurrent) {
  VectorClock a(2), b(2);
  a.tick(0);  // [1 0]
  b.tick(1);  // [0 1]
  EXPECT_FALSE(a.happens_before(b));
  EXPECT_FALSE(b.happens_before(a));
  EXPECT_TRUE(a.concurrent(b));
  EXPECT_TRUE(b.concurrent(a));
}

TEST(VectorClock, EqualClocksAreNeitherOrderedNorConcurrent) {
  VectorClock a(2), b(2);
  a.tick(0);
  b.tick(0);
  EXPECT_FALSE(a.happens_before(b));
  EXPECT_FALSE(a.concurrent(b));
}

TEST(VectorClock, MessagePassingEstablishesOrder) {
  // The textbook scenario: send on rank 0, receive-with-merge on rank 1.
  // The send happens-before every later rank-1 event; an independent rank-2
  // event stays concurrent with all of it.
  VectorClock r0(3), r1(3), r2(3);
  r0.tick(0);                       // send event, clock rides the message
  const VectorClock msg = r0;
  r1.merge(msg);
  r1.tick(1);                       // receive event
  r2.tick(2);                       // unrelated local event
  EXPECT_TRUE(msg.happens_before(r1));
  EXPECT_TRUE(msg.concurrent(r2));
  EXPECT_TRUE(r1.concurrent(r2));
}

TEST(VectorClock, HashDistinguishesAndIsStable) {
  VectorClock a(3), b(3);
  a.tick(0);
  b.tick(1);
  EXPECT_NE(a.hash(), b.hash());
  const auto h = a.hash();
  EXPECT_EQ(a.hash(), h);
  VectorClock c(3);
  c.tick(0);
  EXPECT_EQ(c.hash(), h);
}

TEST(VectorClock, StrFormat) {
  VectorClock a(3);
  a.tick(1);
  a.tick(1);
  a.tick(2);
  EXPECT_EQ(a.str(), "[0 2 1]");
}

}  // namespace
}  // namespace picpar::analysis
