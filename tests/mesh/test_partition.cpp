#include "mesh/partition.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sfc/hilbert.hpp"
#include "sfc/simple_curves.hpp"

namespace picpar::mesh {
namespace {

void expect_valid_partition(const GridPartition& p) {
  // Every node owned exactly once; nodes_of and owner agree.
  std::set<std::uint64_t> seen;
  for (int r = 0; r < p.nranks(); ++r) {
    for (const auto id : p.nodes_of(r)) {
      EXPECT_EQ(p.owner(id), r);
      EXPECT_TRUE(seen.insert(id).second) << "node " << id << " owned twice";
    }
  }
  EXPECT_EQ(seen.size(), p.grid().nodes());
}

TEST(BlockPartition, CoversGridExactly) {
  GridDesc g(16, 8);
  const auto p = GridPartition::block(g, 4, 2);
  expect_valid_partition(p);
  EXPECT_EQ(p.nranks(), 8);
  for (int r = 0; r < 8; ++r) EXPECT_EQ(p.count_of(r), 16u);
}

TEST(BlockPartition, UnevenDimsStayNearlyBalanced) {
  GridDesc g(10, 7);
  const auto p = GridPartition::block(g, 3, 2);
  expect_valid_partition(p);
  // 10x7 into 3x2 blocks: widest block is 4x4=16 vs mean 70/6.
  EXPECT_LT(p.imbalance(), 1.5);
}

TEST(BlockPartition, BlocksAreRectangles) {
  GridDesc g(8, 8);
  const auto p = GridPartition::block(g, 2, 2);
  // Rank 0 block must be the lower-left 4x4.
  for (std::uint32_t y = 0; y < 4; ++y)
    for (std::uint32_t x = 0; x < 4; ++x)
      EXPECT_EQ(p.owner(g.node_id(x, y)), 0);
  EXPECT_EQ(p.owner(g.node_id(4, 0)), 1);
  EXPECT_EQ(p.owner(g.node_id(0, 4)), 2);
}

TEST(BlockPartition, RejectsBadRankGrid) {
  GridDesc g(8, 8);
  EXPECT_THROW(GridPartition::block(g, 0, 2), std::invalid_argument);
}

TEST(BlockAutoPartition, PicksFactorization) {
  GridDesc g(128, 64);
  const auto p = GridPartition::block_auto(g, 32);
  expect_valid_partition(p);
  EXPECT_EQ(p.nranks(), 32);
  EXPECT_LT(p.imbalance(), 1.05);
}

TEST(BlockAutoPartition, PrimeRankCountStillWorks) {
  GridDesc g(21, 13);
  const auto p = GridPartition::block_auto(g, 7);
  expect_valid_partition(p);
}

class CurvePartition : public ::testing::TestWithParam<sfc::CurveKind> {};

TEST_P(CurvePartition, CoversGridAndBalances) {
  GridDesc g(32, 16);
  const auto curve = sfc::make_curve(GetParam(), 32, 16);
  const auto p = GridPartition::curve(g, 8, *curve);
  expect_valid_partition(p);
  for (int r = 0; r < 8; ++r) EXPECT_EQ(p.count_of(r), 64u);
}

TEST_P(CurvePartition, RunsAreContiguousInCurveOrder) {
  GridDesc g(16, 16);
  const auto curve = sfc::make_curve(GetParam(), 16, 16);
  const auto p = GridPartition::curve(g, 4, *curve);
  // Walking cells in curve order, the owner must be non-decreasing.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> order;  // (key, id)
  for (std::uint64_t id = 0; id < g.nodes(); ++id)
    order.emplace_back(curve->index(g.node_x(id), g.node_y(id)), id);
  std::sort(order.begin(), order.end());
  int prev = 0;
  for (const auto& [key, id] : order) {
    const int o = p.owner(id);
    EXPECT_GE(o, prev);
    prev = o;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, CurvePartition,
                         ::testing::Values(sfc::CurveKind::kHilbert,
                                           sfc::CurveKind::kSnake,
                                           sfc::CurveKind::kRowMajor));

TEST(CurvePartitionChecks, DimMismatchThrows) {
  GridDesc g(16, 16);
  sfc::HilbertCurve wrong(8, 8);
  EXPECT_THROW(GridPartition::curve(g, 4, wrong), std::invalid_argument);
}

TEST(CurvePartitionChecks, UnevenCountsDifferByAtMostOne) {
  GridDesc g(10, 10);
  sfc::SnakeCurve c(10, 10);
  const auto p = GridPartition::curve(g, 7, c);
  std::size_t lo = 1000, hi = 0;
  for (int r = 0; r < 7; ++r) {
    lo = std::min(lo, p.count_of(r));
    hi = std::max(hi, p.count_of(r));
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(GridPartitionMeta, MethodNames) {
  GridDesc g(8, 8);
  sfc::HilbertCurve h(8, 8);
  EXPECT_EQ(GridPartition::block(g, 2, 2).method(), "block");
  EXPECT_EQ(GridPartition::curve(g, 4, h).method(), "curve:hilbert");
}

}  // namespace
}  // namespace picpar::mesh
