#include "mesh/grid.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace picpar::mesh {
namespace {

TEST(GridDesc, DefaultPhysicalSizeIsUnitCells) {
  GridDesc g(8, 4);
  EXPECT_DOUBLE_EQ(g.lx, 8.0);
  EXPECT_DOUBLE_EQ(g.ly, 4.0);
  EXPECT_DOUBLE_EQ(g.dx(), 1.0);
  EXPECT_DOUBLE_EQ(g.dy(), 1.0);
}

TEST(GridDesc, ExplicitPhysicalSize) {
  GridDesc g(10, 10, 2.0, 4.0);
  EXPECT_DOUBLE_EQ(g.dx(), 0.2);
  EXPECT_DOUBLE_EQ(g.dy(), 0.4);
}

TEST(GridDesc, RejectsZeroDims) {
  EXPECT_THROW(GridDesc(0, 4), std::invalid_argument);
  EXPECT_THROW(GridDesc(4, 0), std::invalid_argument);
}

TEST(GridDesc, NodeIdRoundTrip) {
  GridDesc g(7, 5);
  for (std::uint32_t y = 0; y < 5; ++y)
    for (std::uint32_t x = 0; x < 7; ++x) {
      const auto id = g.node_id(x, y);
      EXPECT_EQ(g.node_x(id), x);
      EXPECT_EQ(g.node_y(id), y);
    }
}

TEST(GridDesc, PeriodicNeighbors) {
  GridDesc g(4, 3);
  const auto id = g.node_id(0, 0);
  EXPECT_EQ(g.east(id), g.node_id(1, 0));
  EXPECT_EQ(g.west(id), g.node_id(3, 0));   // wraps
  EXPECT_EQ(g.north(id), g.node_id(0, 1));
  EXPECT_EQ(g.south(id), g.node_id(0, 2));  // wraps
}

TEST(GridDesc, NeighborsAreInvolutions) {
  GridDesc g(6, 4);
  for (std::uint64_t id = 0; id < g.nodes(); ++id) {
    EXPECT_EQ(g.west(g.east(id)), id);
    EXPECT_EQ(g.south(g.north(id)), id);
  }
}

TEST(GridDesc, WrapPositionsIntoDomain) {
  GridDesc g(10, 10);
  EXPECT_DOUBLE_EQ(g.wrap_x(-0.5), 9.5);
  EXPECT_DOUBLE_EQ(g.wrap_x(10.5), 0.5);
  EXPECT_DOUBLE_EQ(g.wrap_y(25.0), 5.0);
  EXPECT_DOUBLE_EQ(g.wrap_x(3.0), 3.0);
}

TEST(GridDesc, WrapBoundaryLandsInside) {
  GridDesc g(4, 4);
  const double x = g.wrap_x(4.0);
  EXPECT_GE(x, 0.0);
  EXPECT_LT(x, 4.0);
}

TEST(GridDesc, CellOfMapsPositions) {
  GridDesc g(4, 4, 8.0, 8.0);  // dx = dy = 2
  EXPECT_EQ(g.cell_of(0.1, 0.1), g.node_id(0, 0));
  EXPECT_EQ(g.cell_of(2.1, 0.1), g.node_id(1, 0));
  EXPECT_EQ(g.cell_of(7.9, 7.9), g.node_id(3, 3));
}

TEST(GridDesc, CellOfClampsAtUpperEdge) {
  GridDesc g(4, 4);
  // A position exactly at the domain edge (possible after wrap rounding)
  // must still map to a valid cell.
  const auto id = g.cell_of(std::nextafter(4.0, 0.0), std::nextafter(4.0, 0.0));
  EXPECT_LT(id, g.cells());
}

TEST(GridDesc, CountsAreConsistent) {
  GridDesc g(12, 9);
  EXPECT_EQ(g.nodes(), 108u);
  EXPECT_EQ(g.cells(), 108u);
}

}  // namespace
}  // namespace picpar::mesh
