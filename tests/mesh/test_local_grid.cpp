#include "mesh/local_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sfc/hilbert.hpp"
#include "sfc/simple_curves.hpp"

namespace picpar::mesh {
namespace {

GridPartition make_block(const GridDesc& g, int p) {
  return GridPartition::block_auto(g, p);
}
GridPartition make_hilbert(const GridDesc& g, int p) {
  sfc::HilbertCurve c(g.nx, g.ny);
  return GridPartition::curve(g, p, c);
}
GridPartition make_snake(const GridDesc& g, int p) {
  sfc::SnakeCurve c(g.nx, g.ny);
  return GridPartition::curve(g, p, c);
}

class LocalGridDecomp
    : public ::testing::TestWithParam<GridPartition (*)(const GridDesc&, int)> {
};

TEST_P(LocalGridDecomp, LocalIndexingIsConsistent) {
  GridDesc g(16, 12);
  const auto part = GetParam()(g, 6);
  for (int r = 0; r < 6; ++r) {
    LocalGrid lg(part, r);
    EXPECT_EQ(lg.owned(), part.count_of(r));
    for (std::size_t l = 0; l < lg.total(); ++l)
      EXPECT_EQ(lg.local_of(lg.gid_of(l)), l);
    for (std::size_t l = 0; l < lg.owned(); ++l)
      EXPECT_TRUE(lg.owns(lg.gid_of(l)));
  }
}

TEST_P(LocalGridDecomp, StencilMatchesGlobalNeighbors) {
  GridDesc g(12, 12);
  const auto part = GetParam()(g, 4);
  for (int r = 0; r < 4; ++r) {
    LocalGrid lg(part, r);
    for (std::size_t l = 0; l < lg.owned(); ++l) {
      const auto id = lg.gid_of(l);
      EXPECT_EQ(lg.gid_of(lg.east(l)), g.east(id));
      EXPECT_EQ(lg.gid_of(lg.west(l)), g.west(id));
      EXPECT_EQ(lg.gid_of(lg.north(l)), g.north(id));
      EXPECT_EQ(lg.gid_of(lg.south(l)), g.south(id));
    }
  }
}

TEST_P(LocalGridDecomp, HaloPeersAreSymmetric) {
  GridDesc g(20, 10);
  const auto part = GetParam()(g, 5);
  std::vector<LocalGrid> grids;
  for (int r = 0; r < 5; ++r) grids.emplace_back(part, r);
  for (int a = 0; a < 5; ++a) {
    for (const auto& peer : grids[static_cast<std::size_t>(a)].halo_peers()) {
      // Find the reciprocal peer entry on the other side.
      const auto& other = grids[static_cast<std::size_t>(peer.rank)];
      const auto it = std::find_if(
          other.halo_peers().begin(), other.halo_peers().end(),
          [a](const LocalGrid::HaloPeer& p) { return p.rank == a; });
      ASSERT_NE(it, other.halo_peers().end());
      EXPECT_EQ(peer.recv.size(), it->send.size());
      EXPECT_EQ(peer.send.size(), it->recv.size());
      // And the global ids line up element-wise.
      for (std::size_t i = 0; i < peer.recv.size(); ++i)
        EXPECT_EQ(grids[static_cast<std::size_t>(a)].gid_of(peer.recv[i]),
                  other.gid_of(it->send[i]));
    }
  }
}

TEST_P(LocalGridDecomp, GhostsAreExactlyStencilNonOwned) {
  GridDesc g(16, 8);
  const auto part = GetParam()(g, 4);
  for (int r = 0; r < 4; ++r) {
    LocalGrid lg(part, r);
    std::set<std::uint64_t> expected;
    for (const auto id : part.nodes_of(r))
      for (const auto nb : {g.east(id), g.west(id), g.north(id), g.south(id)})
        if (part.owner(nb) != r) expected.insert(nb);
    EXPECT_EQ(lg.ghosts(), expected.size());
    for (std::size_t l = lg.owned(); l < lg.total(); ++l)
      EXPECT_TRUE(expected.count(lg.gid_of(l)));
  }
}

INSTANTIATE_TEST_SUITE_P(Decomps, LocalGridDecomp,
                         ::testing::Values(&make_block, &make_hilbert,
                                           &make_snake));

TEST(HaloExchange, GhostsReceiveOwnersValues) {
  GridDesc g(16, 16);
  sfc::HilbertCurve c(16, 16);
  const auto part = GridPartition::curve(g, 4, c);
  sim::Machine m(4, sim::CostModel::zero());
  m.run([&](sim::Comm& comm) {
    LocalGrid lg(part, comm.rank());
    auto field = lg.make_field();
    // Owned values encode the global id; ghosts start poisoned.
    for (std::size_t l = 0; l < lg.owned(); ++l)
      field[l] = static_cast<double>(lg.gid_of(l)) + 0.25;
    for (std::size_t l = lg.owned(); l < lg.total(); ++l) field[l] = -1.0;
    lg.halo_exchange(comm, {&field});
    for (std::size_t l = lg.owned(); l < lg.total(); ++l)
      EXPECT_DOUBLE_EQ(field[l], static_cast<double>(lg.gid_of(l)) + 0.25);
  });
}

TEST(HaloExchange, MultipleFieldsInOneMessage) {
  GridDesc g(8, 8);
  const auto part = GridPartition::block(g, 2, 2);
  sim::Machine m(4, sim::CostModel::zero());
  m.run([&](sim::Comm& comm) {
    LocalGrid lg(part, comm.rank());
    auto a = lg.make_field();
    auto b = lg.make_field();
    for (std::size_t l = 0; l < lg.owned(); ++l) {
      a[l] = static_cast<double>(lg.gid_of(l));
      b[l] = -static_cast<double>(lg.gid_of(l));
    }
    const auto before = comm.stats().total().msgs_sent;
    lg.halo_exchange(comm, {&a, &b});
    const auto sent = comm.stats().total().msgs_sent - before;
    EXPECT_EQ(sent, lg.halo_peers().size());  // coalesced: one per peer
    for (std::size_t l = lg.owned(); l < lg.total(); ++l) {
      EXPECT_DOUBLE_EQ(a[l], static_cast<double>(lg.gid_of(l)));
      EXPECT_DOUBLE_EQ(b[l], -static_cast<double>(lg.gid_of(l)));
    }
  });
}

TEST(HaloExchange, WrongFieldSizeThrows) {
  GridDesc g(8, 8);
  const auto part = GridPartition::block(g, 2, 2);
  sim::Machine m(4, sim::CostModel::zero());
  EXPECT_THROW(m.run([&](sim::Comm& comm) {
                 LocalGrid lg(part, comm.rank());
                 std::vector<double> bad(3, 0.0);
                 lg.halo_exchange(comm, {&bad});
               }),
               std::invalid_argument);
}

TEST(LocalGrid, SingleRankOwnsEverythingNoGhosts) {
  GridDesc g(8, 8);
  const auto part = GridPartition::block(g, 1, 1);
  LocalGrid lg(part, 0);
  EXPECT_EQ(lg.owned(), 64u);
  EXPECT_EQ(lg.ghosts(), 0u);
  EXPECT_TRUE(lg.halo_peers().empty());
}

}  // namespace
}  // namespace picpar::mesh
