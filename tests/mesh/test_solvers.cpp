// Field-solver correctness on the partitioned mesh.
#include <gtest/gtest.h>

#include <cmath>

#include "mesh/maxwell.hpp"
#include "mesh/poisson.hpp"
#include "sfc/hilbert.hpp"

namespace picpar::mesh {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Maxwell, RejectsBadTimeStep) {
  GridDesc g(8, 8);
  const auto part = GridPartition::block(g, 1, 1);
  LocalGrid lg(part, 0);
  EXPECT_THROW(MaxwellSolver(lg, 0.0), std::invalid_argument);
  EXPECT_THROW(MaxwellSolver(lg, 10.0), std::invalid_argument);
}

TEST(Maxwell, ZeroFieldsStayZero) {
  GridDesc g(16, 16);
  const auto part = GridPartition::block(g, 2, 2);
  sim::Machine m(4, sim::CostModel::zero());
  m.run([&](sim::Comm& comm) {
    LocalGrid lg(part, comm.rank());
    FieldState f(lg);
    MaxwellSolver solver(lg, MaxwellSolver::max_dt(g));
    for (int i = 0; i < 10; ++i) solver.step(comm, f);
    EXPECT_DOUBLE_EQ(f.energy(lg), 0.0);
  });
}

TEST(Maxwell, UniformFieldIsSteadyWithoutSources) {
  GridDesc g(16, 8);
  const auto part = GridPartition::block(g, 2, 2);
  sim::Machine m(4, sim::CostModel::zero());
  m.run([&](sim::Comm& comm) {
    LocalGrid lg(part, comm.rank());
    FieldState f(lg);
    std::fill(f.ez.begin(), f.ez.end(), 1.0);
    std::fill(f.bx.begin(), f.bx.end(), -2.0);
    MaxwellSolver solver(lg, MaxwellSolver::max_dt(g));
    for (int i = 0; i < 20; ++i) solver.step(comm, f);
    // Spatially uniform fields have zero curl: nothing may change.
    for (std::size_t l = 0; l < lg.owned(); ++l) {
      EXPECT_NEAR(f.ez[l], 1.0, 1e-12);
      EXPECT_NEAR(f.bx[l], -2.0, 1e-12);
    }
  });
}

TEST(Maxwell, PlaneWaveEnergyApproxConserved) {
  GridDesc g(32, 32);
  const auto part = GridPartition::block(g, 2, 2);
  sim::Machine m(4, sim::CostModel::zero());
  std::vector<double> energy(2, 0.0);
  m.run([&](sim::Comm& comm) {
    LocalGrid lg(part, comm.rank());
    FieldState f(lg);
    // Ez/By plane wave along x: Ez = sin(kx), By = -sin(kx).
    const double k = 2.0 * kPi / g.lx;
    for (std::size_t l = 0; l < lg.owned(); ++l) {
      const double x = static_cast<double>(g.node_x(lg.gid_of(l))) * g.dx();
      f.ez[l] = std::sin(k * x);
      f.by[l] = -std::sin(k * x);
    }
    const double e0 = comm.allreduce_sum(f.energy(lg));
    MaxwellSolver solver(lg, 0.5 * MaxwellSolver::max_dt(g));
    for (int i = 0; i < 50; ++i) solver.step(comm, f);
    const double e1 = comm.allreduce_sum(f.energy(lg));
    if (comm.rank() == 0) {
      energy[0] = e0;
      energy[1] = e1;
    }
  });
  EXPECT_GT(energy[0], 0.0);
  EXPECT_NEAR(energy[1], energy[0], 0.05 * energy[0]);
}

TEST(Maxwell, IdenticalAcrossDecompositions) {
  // The same initial fields must evolve identically whether the mesh is
  // block- or curve-partitioned (physics independent of distribution).
  GridDesc g(16, 16);
  auto run_with = [&](const GridPartition& part, int nranks) {
    sim::Machine m(nranks, sim::CostModel::zero());
    std::vector<double> ez_global(g.nodes(), 0.0);
    m.run([&](sim::Comm& comm) {
      LocalGrid lg(part, comm.rank());
      FieldState f(lg);
      for (std::size_t l = 0; l < lg.owned(); ++l) {
        const auto id = lg.gid_of(l);
        f.ez[l] = std::sin(0.3 * static_cast<double>(g.node_x(id))) +
                  0.5 * std::cos(0.7 * static_cast<double>(g.node_y(id)));
      }
      MaxwellSolver solver(lg, 0.4);
      for (int i = 0; i < 10; ++i) solver.step(comm, f);
      for (std::size_t l = 0; l < lg.owned(); ++l)
        ez_global[static_cast<std::size_t>(lg.gid_of(l))] = f.ez[l];
    });
    return ez_global;
  };
  sfc::HilbertCurve c(16, 16);
  const auto a = run_with(GridPartition::block(g, 2, 2), 4);
  const auto b = run_with(GridPartition::curve(g, 8, c), 8);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Poisson, SinusoidalChargeRecoversAnalyticPotential) {
  // laplacian(phi) = -rho with rho = sin(kx)  =>  phi = sin(kx)/k^2
  // (second-order finite differences: compare against the discrete k).
  GridDesc g(16, 8);
  const auto part = GridPartition::block(g, 4, 1);
  sim::Machine m(4, sim::CostModel::zero());
  m.run([&](sim::Comm& comm) {
    LocalGrid lg(part, comm.rank());
    const double k = 2.0 * kPi / g.lx;
    auto rho = lg.make_field();
    for (std::size_t l = 0; l < lg.owned(); ++l) {
      const double x = static_cast<double>(g.node_x(lg.gid_of(l))) * g.dx();
      rho[l] = std::sin(k * x);
    }
    PoissonSolver solver(lg, 4000, 1e-10, 20);
    auto phi = lg.make_field();
    const auto res = solver.solve(comm, rho, phi);
    EXPECT_LT(res.residual, 1e-8);
    // Discrete eigenvalue of the 3-point laplacian for mode k.
    const double kd2 = 2.0 * (1.0 - std::cos(k * g.dx())) / (g.dx() * g.dx());
    for (std::size_t l = 0; l < lg.owned(); ++l) {
      const double x = static_cast<double>(g.node_x(lg.gid_of(l))) * g.dx();
      EXPECT_NEAR(phi[l], std::sin(k * x) / kd2, 1e-5);
    }
  });
}

TEST(Poisson, GradientOfLinearInX) {
  GridDesc g(32, 4);
  const auto part = GridPartition::block(g, 2, 1);
  sim::Machine m(2, sim::CostModel::zero());
  m.run([&](sim::Comm& comm) {
    LocalGrid lg(part, comm.rank());
    const double k = 2.0 * kPi / g.lx;
    auto phi = lg.make_field();
    for (std::size_t l = 0; l < lg.total(); ++l) {
      const double x = static_cast<double>(g.node_x(lg.gid_of(l))) * g.dx();
      phi[l] = std::cos(k * x);
    }
    auto ex = lg.make_field();
    auto ey = lg.make_field();
    PoissonSolver solver(lg);
    solver.gradient(phi, ex, ey);
    // E = -d(phi)/dx = k sin(kx) with central-difference accuracy.
    for (std::size_t l = 0; l < lg.owned(); ++l) {
      const double x = static_cast<double>(g.node_x(lg.gid_of(l))) * g.dx();
      EXPECT_NEAR(ex[l], k * std::sin(k * x), 0.01);
      EXPECT_NEAR(ey[l], 0.0, 1e-12);
    }
  });
}

TEST(Poisson, MeanOfRhoIsRemoved) {
  // A constant rho has no periodic solution; the solver must subtract the
  // mean and return phi == const (zero up to iteration transients).
  GridDesc g(8, 8);
  const auto part = GridPartition::block(g, 1, 1);
  sim::Machine m(1, sim::CostModel::zero());
  m.run([&](sim::Comm& comm) {
    LocalGrid lg(part, comm.rank());
    auto rho = lg.make_field();
    std::fill(rho.begin(), rho.end(), 5.0);
    PoissonSolver solver(lg, 500, 1e-12, 10);
    auto phi = lg.make_field();
    const auto res = solver.solve(comm, rho, phi);
    EXPECT_LT(res.residual, 1e-10);
  });
}

TEST(Poisson, RejectsBadConfig) {
  GridDesc g(8, 8);
  const auto part = GridPartition::block(g, 1, 1);
  LocalGrid lg(part, 0);
  EXPECT_THROW(PoissonSolver(lg, 0), std::invalid_argument);
  EXPECT_THROW(PoissonSolver(lg, 10, 1e-6, 0), std::invalid_argument);
}

TEST(FieldState, EnergyOfKnownField) {
  GridDesc g(4, 4);
  const auto part = GridPartition::block(g, 1, 1);
  LocalGrid lg(part, 0);
  FieldState f(lg);
  std::fill(f.ex.begin(), f.ex.end(), 2.0);  // E^2 = 4 on 16 unit cells
  EXPECT_DOUBLE_EQ(f.energy(lg), 0.5 * 4.0 * 16.0);
}

TEST(FieldState, ClearSourcesZeroesOnlySources) {
  GridDesc g(4, 4);
  const auto part = GridPartition::block(g, 1, 1);
  LocalGrid lg(part, 0);
  FieldState f(lg);
  std::fill(f.jx.begin(), f.jx.end(), 1.0);
  std::fill(f.rho.begin(), f.rho.end(), 1.0);
  std::fill(f.ex.begin(), f.ex.end(), 3.0);
  f.clear_sources();
  EXPECT_DOUBLE_EQ(f.jx[0], 0.0);
  EXPECT_DOUBLE_EQ(f.rho[0], 0.0);
  EXPECT_DOUBLE_EQ(f.ex[0], 3.0);
}

}  // namespace
}  // namespace picpar::mesh
