#include "particles/particle_array.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace picpar::particles {
namespace {

ParticleRec rec(double x, std::uint64_t key) {
  ParticleRec r;
  r.x = x;
  r.y = 2 * x;
  r.ux = 0.1;
  r.key = key;
  return r;
}

TEST(ParticleArray, RejectsNonPositiveMass) {
  EXPECT_THROW(ParticleArray(-1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ParticleArray(-1.0, -2.0), std::invalid_argument);
}

TEST(ParticleArray, PushBackAndRecRoundTrip) {
  ParticleArray p(-1.0, 1.0);
  ParticleRec r{1.0, 2.0, 0.1, 0.2, 0.3, 77};
  p.push_back(r);
  ASSERT_EQ(p.size(), 1u);
  const auto got = p.rec(0);
  EXPECT_EQ(got.x, r.x);
  EXPECT_EQ(got.y, r.y);
  EXPECT_EQ(got.ux, r.ux);
  EXPECT_EQ(got.uy, r.uy);
  EXPECT_EQ(got.uz, r.uz);
  EXPECT_EQ(got.key, r.key);
}

TEST(ParticleArray, SetOverwrites) {
  ParticleArray p(-1.0, 1.0);
  p.push_back(rec(1.0, 1));
  p.set(0, rec(9.0, 9));
  EXPECT_EQ(p.x[0], 9.0);
  EXPECT_EQ(p.key[0], 9u);
}

TEST(ParticleArray, SwapRemoveMiddle) {
  ParticleArray p(-1.0, 1.0);
  for (int i = 0; i < 4; ++i) p.push_back(rec(i, static_cast<std::uint64_t>(i)));
  p.swap_remove(1);
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.key[1], 3u);  // last element swapped in
}

TEST(ParticleArray, SwapRemoveLast) {
  ParticleArray p(-1.0, 1.0);
  p.push_back(rec(0, 0));
  p.push_back(rec(1, 1));
  p.swap_remove(1);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.key[0], 0u);
}

TEST(ParticleArray, ClearEmpties) {
  ParticleArray p(-1.0, 1.0);
  p.push_back(rec(0, 0));
  p.clear();
  EXPECT_TRUE(p.empty());
}

TEST(ParticleArray, ApplyPermutationReordersAllArrays) {
  ParticleArray p(-1.0, 1.0);
  for (int i = 0; i < 4; ++i) p.push_back(rec(i, static_cast<std::uint64_t>(10 - i)));
  p.apply_permutation({3, 2, 1, 0});
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(p.x[static_cast<std::size_t>(i)], 3.0 - i);
    EXPECT_EQ(p.key[static_cast<std::size_t>(i)],
              static_cast<std::uint64_t>(7 + i));
    EXPECT_EQ(p.y[static_cast<std::size_t>(i)], 2.0 * (3 - i));
  }
}

TEST(ParticleArray, ApplyPermutationSizeMismatchThrows) {
  ParticleArray p(-1.0, 1.0);
  p.push_back(rec(0, 0));
  EXPECT_THROW(p.apply_permutation({0, 1}), std::invalid_argument);
}

TEST(ParticleArray, GammaOfRestParticleIsOne) {
  ParticleArray p(-1.0, 1.0);
  p.push_back(ParticleRec{});
  EXPECT_DOUBLE_EQ(p.gamma(0), 1.0);
}

TEST(ParticleArray, GammaMatchesFormula) {
  ParticleArray p(-1.0, 1.0);
  ParticleRec r;
  r.ux = 3.0;
  r.uy = 4.0;
  p.push_back(r);
  EXPECT_DOUBLE_EQ(p.gamma(0), std::sqrt(26.0));
}

TEST(ParticleArray, KineticEnergySumsGammaMinusOne) {
  ParticleArray p(-1.0, 2.0);  // mass 2
  ParticleRec r;
  r.ux = 3.0;
  r.uy = 4.0;  // gamma = sqrt(26)
  p.push_back(r);
  p.push_back(ParticleRec{});  // at rest, contributes 0
  EXPECT_DOUBLE_EQ(p.kinetic_energy(), 2.0 * (std::sqrt(26.0) - 1.0));
}

TEST(ParticleArray, ReserveDoesNotChangeSize) {
  ParticleArray p(-1.0, 1.0);
  p.reserve(100);
  EXPECT_TRUE(p.empty());
}

TEST(ParticleRec, IsTightlyPacked) {
  EXPECT_EQ(sizeof(ParticleRec), 48u);
}

}  // namespace
}  // namespace picpar::particles
