#include "particles/io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "particles/init.hpp"

namespace picpar::particles {
namespace {

namespace fs = std::filesystem;

class ParticleIo : public ::testing::Test {
protected:
  void SetUp() override {
    path_ = (fs::temp_directory_path() /
             ("picpar_io_test_" + std::to_string(::getpid()) + ".bin"))
                .string();
    fs::remove(path_);
  }
  void TearDown() override { fs::remove(path_); }
  std::string path_;
};

TEST_F(ParticleIo, RoundTripsPopulation) {
  mesh::GridDesc g(32, 32);
  InitParams params;
  params.total = 500;
  const auto original = generate(Distribution::kGaussian, g, params);

  save_particles(path_, original);
  const auto loaded = load_particles(path_);

  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.charge(), original.charge());
  EXPECT_EQ(loaded.mass(), original.mass());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.x[i], original.x[i]);
    EXPECT_EQ(loaded.y[i], original.y[i]);
    EXPECT_EQ(loaded.ux[i], original.ux[i]);
    EXPECT_EQ(loaded.uy[i], original.uy[i]);
    EXPECT_EQ(loaded.uz[i], original.uz[i]);
    EXPECT_EQ(loaded.key[i], original.key[i]);
  }
}

TEST_F(ParticleIo, RoundTripsEmptyArray) {
  ParticleArray p(-2.5, 3.0);
  save_particles(path_, p);
  const auto loaded = load_particles(path_);
  EXPECT_TRUE(loaded.empty());
  EXPECT_EQ(loaded.charge(), -2.5);
  EXPECT_EQ(loaded.mass(), 3.0);
}

TEST_F(ParticleIo, MissingFileThrows) {
  EXPECT_THROW(load_particles("/nonexistent/dir/x.bin"), std::runtime_error);
}

TEST_F(ParticleIo, BadMagicThrows) {
  std::ofstream f(path_, std::ios::binary);
  const char garbage[64] = "this is not a particle checkpoint at all";
  f.write(garbage, sizeof(garbage));
  f.close();
  EXPECT_THROW(load_particles(path_), std::runtime_error);
}

TEST_F(ParticleIo, TruncatedPayloadThrows) {
  ParticleArray p(-1.0, 1.0);
  for (int i = 0; i < 10; ++i) p.push_back(ParticleRec{});
  save_particles(path_, p);
  // Chop off the last record.
  const auto size = fs::file_size(path_);
  fs::resize_file(path_, size - 10);
  EXPECT_THROW(load_particles(path_), std::runtime_error);
}

TEST_F(ParticleIo, OverwritesExistingFile) {
  ParticleArray small(-1.0, 1.0);
  small.push_back(ParticleRec{});
  ParticleArray big(-1.0, 1.0);
  for (int i = 0; i < 100; ++i) big.push_back(ParticleRec{});
  save_particles(path_, big);
  save_particles(path_, small);
  EXPECT_EQ(load_particles(path_).size(), 1u);
}

}  // namespace
}  // namespace picpar::particles
