#include "particles/io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "particles/init.hpp"

namespace picpar::particles {
namespace {

namespace fs = std::filesystem;

class ParticleIo : public ::testing::Test {
protected:
  void SetUp() override {
    path_ = (fs::temp_directory_path() /
             ("picpar_io_test_" + std::to_string(::getpid()) + ".bin"))
                .string();
    fs::remove(path_);
  }
  void TearDown() override { fs::remove(path_); }
  std::string path_;
};

TEST_F(ParticleIo, RoundTripsPopulation) {
  mesh::GridDesc g(32, 32);
  InitParams params;
  params.total = 500;
  const auto original = generate(Distribution::kGaussian, g, params);

  save_particles(path_, original);
  const auto loaded = load_particles(path_);

  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.charge(), original.charge());
  EXPECT_EQ(loaded.mass(), original.mass());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.x[i], original.x[i]);
    EXPECT_EQ(loaded.y[i], original.y[i]);
    EXPECT_EQ(loaded.ux[i], original.ux[i]);
    EXPECT_EQ(loaded.uy[i], original.uy[i]);
    EXPECT_EQ(loaded.uz[i], original.uz[i]);
    EXPECT_EQ(loaded.key[i], original.key[i]);
  }
}

TEST_F(ParticleIo, RoundTripsEmptyArray) {
  ParticleArray p(-2.5, 3.0);
  save_particles(path_, p);
  const auto loaded = load_particles(path_);
  EXPECT_TRUE(loaded.empty());
  EXPECT_EQ(loaded.charge(), -2.5);
  EXPECT_EQ(loaded.mass(), 3.0);
}

TEST_F(ParticleIo, MissingFileThrows) {
  EXPECT_THROW(load_particles("/nonexistent/dir/x.bin"), std::runtime_error);
}

TEST_F(ParticleIo, BadMagicThrows) {
  std::ofstream f(path_, std::ios::binary);
  const char garbage[64] = "this is not a particle checkpoint at all";
  f.write(garbage, sizeof(garbage));
  f.close();
  EXPECT_THROW(load_particles(path_), std::runtime_error);
}

TEST_F(ParticleIo, TruncatedPayloadThrows) {
  ParticleArray p(-1.0, 1.0);
  for (int i = 0; i < 10; ++i) p.push_back(ParticleRec{});
  save_particles(path_, p);
  // Chop off the last record.
  const auto size = fs::file_size(path_);
  fs::resize_file(path_, size - 10);
  EXPECT_THROW(load_particles(path_), std::runtime_error);
}

TEST_F(ParticleIo, FlippedByteFailsChecksum) {
  mesh::GridDesc g(32, 32);
  InitParams params;
  params.total = 64;
  save_particles(path_, generate(Distribution::kUniform, g, params));

  // Flip one payload byte in the middle of the records; the length is
  // untouched, so only the CRC trailer can catch this.
  const auto size = fs::file_size(path_);
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(size / 2));
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x10);
  f.seekp(static_cast<std::streamoff>(size / 2));
  f.write(&b, 1);
  f.close();

  EXPECT_THROW(load_particles(path_), std::runtime_error);
}

TEST_F(ParticleIo, MissingTrailerThrows) {
  ParticleArray p(-1.0, 1.0);
  for (int i = 0; i < 4; ++i) p.push_back(ParticleRec{});
  save_particles(path_, p);
  // Chop exactly the 4-byte CRC trailer: records are intact but a v2 file
  // without its checksum must be rejected, not silently accepted.
  fs::resize_file(path_, fs::file_size(path_) - 4);
  EXPECT_THROW(load_particles(path_), std::runtime_error);
}

TEST_F(ParticleIo, LoadsVersion1FilesWithoutTrailer) {
  // Hand-write a v1 file (pre-CRC format): header with version 1, records,
  // no trailer. Loaders must stay backward compatible.
  struct V1Header {
    std::uint64_t magic = 0x70696370617274ULL;
    std::uint32_t version = 1;
    std::uint32_t reserved = 0;
    std::uint64_t count = 2;
    double charge = -1.5;
    double mass = 2.0;
  } h;
  ParticleRec recs[2];
  recs[0] = {1.0, 2.0, 0.1, 0.2, 0.3, 42};
  recs[1] = {3.0, 4.0, 0.4, 0.5, 0.6, 99};
  std::ofstream f(path_, std::ios::binary);
  f.write(reinterpret_cast<const char*>(&h), sizeof(h));
  f.write(reinterpret_cast<const char*>(recs), sizeof(recs));
  f.close();

  const auto loaded = load_particles(path_);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.charge(), -1.5);
  EXPECT_EQ(loaded.mass(), 2.0);
  EXPECT_EQ(loaded.x[0], 1.0);
  EXPECT_EQ(loaded.key[1], 99u);
}

TEST_F(ParticleIo, TornWritesNeverPartiallyLoad) {
  // A fail-stop crash mid-write leaves an arbitrary prefix of the file.
  // Sweep every truncation point: a torn checkpoint must always throw —
  // load_particles may never return an array with fewer records than the
  // header promised, and never a v2 payload unprotected by its trailer.
  mesh::GridDesc g(32, 32);
  InitParams params;
  params.total = 16;
  save_particles(path_, generate(Distribution::kUniform, g, params));
  const auto full = fs::file_size(path_);

  const auto torn = path_ + ".torn";
  std::vector<char> bytes(full);
  std::ifstream in(path_, std::ios::binary);
  in.read(bytes.data(), static_cast<std::streamsize>(full));
  in.close();
  for (std::uintmax_t cut = 0; cut < full; ++cut) {
    std::ofstream out(torn, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_THROW(load_particles(torn), std::runtime_error)
        << "prefix of " << cut << "/" << full << " bytes loaded";
  }
  fs::remove(torn);
}

TEST_F(ParticleIo, OversizedCountFieldThrows) {
  // Corrupt the header's record count to a huge value: the loader must
  // reject the file (short read / checksum), not attempt the allocation of
  // a billion records it can never fill.
  mesh::GridDesc g(32, 32);
  InitParams params;
  params.total = 8;
  save_particles(path_, generate(Distribution::kUniform, g, params));

  // Header layout: magic (8) + version (4) + reserved (4) + count (8).
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  const std::uint64_t huge = 1ULL << 30;
  f.seekp(16);
  f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  f.close();
  EXPECT_THROW(load_particles(path_), std::runtime_error);
}

// Local CRC-32 (IEEE) mirror of the writer's, for hand-crafting files.
std::uint32_t crc32_ieee(const char* data, std::size_t n) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc ^= static_cast<unsigned char>(data[i]);
    for (int k = 0; k < 8; ++k)
      crc = (crc & 1u) ? 0xEDB88320u ^ (crc >> 1) : crc >> 1;
  }
  return crc ^ 0xFFFFFFFFu;
}

TEST_F(ParticleIo, RoundTripsMultiSpeciesPopulation) {
  // v3: species table + per-record species column (encoded in the key's
  // low bits) must survive the round trip exactly.
  ParticleArray p(std::vector<Species>{{-1.0, 1.0}, {2.0, 1836.0}});
  for (std::uint64_t i = 0; i < 64; ++i) {
    ParticleRec r;
    r.x = 0.5 * static_cast<double>(i);
    r.y = 0.25 * static_cast<double>(i);
    r.ux = 0.01;
    r.key = i * 2 + (i % 2);  // cell i, species i % 2
    p.push_back(r);
  }
  save_particles(path_, p);
  const auto loaded = load_particles(path_);
  ASSERT_EQ(loaded.size(), p.size());
  ASSERT_EQ(loaded.nspecies(), 2u);
  EXPECT_EQ(loaded.species()[0].charge, -1.0);
  EXPECT_EQ(loaded.species()[1].charge, 2.0);
  EXPECT_EQ(loaded.species()[1].mass, 1836.0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(loaded.key[i], p.key[i]);
    EXPECT_EQ(loaded.species_of(i), i % 2);
    EXPECT_EQ(loaded.charge_of(i), i % 2 ? 2.0 : -1.0);
  }
}

TEST_F(ParticleIo, LoadsVersion2SingleSpeciesFiles) {
  // Hand-write a v2 file (single species, CRC, no species block/column):
  // pre-multi-species checkpoints must keep loading.
  struct V2Header {
    std::uint64_t magic = 0x70696370617274ULL;
    std::uint32_t version = 2;
    std::uint32_t reserved = 0;
    std::uint64_t count = 2;
    double charge = -1.5;
    double mass = 2.0;
  } h;
  ParticleRec recs[2];
  recs[0] = {1.0, 2.0, 0.1, 0.2, 0.3, 42};
  recs[1] = {3.0, 4.0, 0.4, 0.5, 0.6, 99};
  std::vector<char> bytes(sizeof(h) + sizeof(recs));
  std::memcpy(bytes.data(), &h, sizeof(h));
  std::memcpy(bytes.data() + sizeof(h), recs, sizeof(recs));
  const std::uint32_t crc = crc32_ieee(bytes.data(), bytes.size());
  std::ofstream f(path_, std::ios::binary);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  f.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  f.close();

  const auto loaded = load_particles(path_);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.nspecies(), 1u);
  EXPECT_EQ(loaded.charge(), -1.5);
  EXPECT_EQ(loaded.mass(), 2.0);
  EXPECT_EQ(loaded.key[0], 42u);
  EXPECT_EQ(loaded.key[1], 99u);
}

TEST_F(ParticleIo, SpeciesColumnKeyMismatchThrows) {
  // Flip one species-column byte and repair the CRC: the only guard left is
  // the loader's cross-check of column vs key % nspecies, which must fire.
  ParticleArray p(std::vector<Species>{{-1.0, 1.0}, {1.0, 4.0}});
  for (std::uint64_t i = 0; i < 8; ++i) {
    ParticleRec r;
    r.key = i * 2;  // all species 0
    p.push_back(r);
  }
  save_particles(path_, p);

  std::vector<char> bytes(fs::file_size(path_));
  std::ifstream in(path_, std::ios::binary);
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  in.close();
  // Layout: header (40) + nspecies (4) + species table (2*16) + records
  // (8*48) + column (8) + crc (4).
  const std::size_t column_off = 40 + 4 + 2 * 16 + 8 * 48;
  bytes[column_off + 3] = 1;  // claim species 1; key still encodes 0
  const std::uint32_t crc = crc32_ieee(bytes.data(), bytes.size() - 4);
  std::memcpy(bytes.data() + bytes.size() - 4, &crc, 4);
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  EXPECT_THROW(load_particles(path_), std::runtime_error);
}

TEST_F(ParticleIo, BadSpeciesCountThrows) {
  ParticleArray p(std::vector<Species>{{-1.0, 1.0}, {1.0, 4.0}});
  p.push_back(ParticleRec{});
  save_particles(path_, p);
  // Corrupt the v3 species count (right after the 40-byte header): zero and
  // absurd values must be rejected before any count-driven allocation.
  for (const std::uint32_t bad : {0u, 300u, 0xFFFFFFFFu}) {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    f.write(reinterpret_cast<const char*>(&bad), sizeof(bad));
    f.close();
    EXPECT_THROW(load_particles(path_), std::runtime_error) << bad;
  }
}

TEST_F(ParticleIo, TornMultiSpeciesWritesNeverPartiallyLoad) {
  // The v1/v2/v3 format detector must stay fail-stop on every prefix of a
  // multi-species file too (the species table adds new torn positions).
  ParticleArray p(std::vector<Species>{{-1.0, 1.0}, {1.0, 4.0}});
  for (std::uint64_t i = 0; i < 16; ++i) {
    ParticleRec r;
    r.key = i * 2 + (i % 2);
    p.push_back(r);
  }
  save_particles(path_, p);
  const auto full = fs::file_size(path_);
  std::vector<char> bytes(full);
  std::ifstream in(path_, std::ios::binary);
  in.read(bytes.data(), static_cast<std::streamsize>(full));
  in.close();
  const auto torn = path_ + ".torn";
  for (std::uintmax_t cut = 0; cut < full; ++cut) {
    std::ofstream out(torn, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_THROW(load_particles(torn), std::runtime_error)
        << "prefix of " << cut << "/" << full << " bytes loaded";
  }
  fs::remove(torn);
}

TEST_F(ParticleIo, OverwritesExistingFile) {
  ParticleArray small(-1.0, 1.0);
  small.push_back(ParticleRec{});
  ParticleArray big(-1.0, 1.0);
  for (int i = 0; i < 100; ++i) big.push_back(ParticleRec{});
  save_particles(path_, big);
  save_particles(path_, small);
  EXPECT_EQ(load_particles(path_).size(), 1u);
}

}  // namespace
}  // namespace picpar::particles
