#include "particles/pusher.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace picpar::particles {
namespace {

TEST(BorisKick, PureElectricFieldAccelerates) {
  LocalFields f;
  f.ex = 1.0;
  double ux = 0.0, uy = 0.0, uz = 0.0;
  boris_kick(-1.0, 1.0, 0.1, f, ux, uy, uz);
  // du = q E dt for the full step (two half kicks, no rotation).
  EXPECT_NEAR(ux, -0.1, 1e-12);
  EXPECT_DOUBLE_EQ(uy, 0.0);
  EXPECT_DOUBLE_EQ(uz, 0.0);
}

TEST(BorisKick, MagneticFieldPreservesMomentumMagnitude) {
  LocalFields f;
  f.bz = 2.0;
  double ux = 0.3, uy = 0.0, uz = 0.1;
  const double u0 = std::sqrt(ux * ux + uy * uy + uz * uz);
  for (int i = 0; i < 1000; ++i) boris_kick(-1.0, 1.0, 0.05, f, ux, uy, uz);
  const double u1 = std::sqrt(ux * ux + uy * uy + uz * uz);
  EXPECT_NEAR(u1, u0, 1e-12) << "pure rotation must conserve |u| exactly";
}

TEST(BorisKick, GyrationFrequencyMatchesAnalytic) {
  // Non-relativistic limit: omega_c = qB/m. Track the rotation angle of u
  // over one step and compare with 2*atan(omega_c dt / 2) (Boris rotation).
  LocalFields f;
  f.bz = 1.0;
  const double dt = 0.1;
  double ux = 0.01, uy = 0.0, uz = 0.0;  // tiny => gamma ~ 1
  boris_kick(1.0, 1.0, dt, f, ux, uy, uz);
  const double angle = std::atan2(uy, ux);
  const double expected = -2.0 * std::atan(0.5 * dt);  // q>0, Bz>0: clockwise
  EXPECT_NEAR(angle, expected, 1e-5);  // |u|=0.01 shifts gamma by ~5e-5
}

TEST(BorisKick, ExBDriftVelocity) {
  // Crossed fields E = (0.01, 0, 0), B = (0, 0, 1): guiding center drifts
  // at v_d = E x B / B^2 = (0, -0.01, 0). Average velocity over many
  // gyro-periods approaches the drift.
  LocalFields f;
  f.ex = 0.01;
  f.bz = 1.0;
  double ux = 0.0, uy = 0.0, uz = 0.0;
  const double dt = 0.05;
  double sum_vy = 0.0;
  const int steps = 20000;
  for (int i = 0; i < steps; ++i) {
    boris_kick(-1.0, 1.0, dt, f, ux, uy, uz);
    const double gamma = std::sqrt(1.0 + ux * ux + uy * uy + uz * uz);
    sum_vy += uy / gamma;
  }
  EXPECT_NEAR(sum_vy / steps, -0.01, 1e-3);
}

TEST(BorisKick, RelativisticSpeedStaysBelowC) {
  LocalFields f;
  f.ex = 100.0;
  double ux = 0.0, uy = 0.0, uz = 0.0;
  for (int i = 0; i < 100; ++i) boris_kick(-1.0, 1.0, 0.1, f, ux, uy, uz);
  const double gamma = std::sqrt(1.0 + ux * ux + uy * uy + uz * uz);
  const double v = std::abs(ux) / gamma;
  EXPECT_LT(v, 1.0);
  EXPECT_GT(gamma, 10.0);  // strongly relativistic by now
}

TEST(BorisKick, ZeroFieldsAreNoOp) {
  LocalFields f;
  double ux = 0.4, uy = -0.2, uz = 0.1;
  boris_kick(-1.0, 1.0, 0.1, f, ux, uy, uz);
  EXPECT_DOUBLE_EQ(ux, 0.4);
  EXPECT_DOUBLE_EQ(uy, -0.2);
  EXPECT_DOUBLE_EQ(uz, 0.1);
}

TEST(AdvancePosition, MovesByVelocityOverGamma) {
  mesh::GridDesc g(10, 10);
  ParticleArray p(-1.0, 1.0);
  ParticleRec r;
  r.x = 5.0;
  r.y = 5.0;
  r.ux = 3.0;  // gamma = sqrt(10), vx = 3/sqrt(10)
  p.push_back(r);
  advance_position(g, p, 0, 1.0);
  EXPECT_NEAR(p.x[0], 5.0 + 3.0 / std::sqrt(10.0), 1e-12);
  EXPECT_DOUBLE_EQ(p.y[0], 5.0);
}

TEST(AdvancePosition, WrapsPeriodically) {
  mesh::GridDesc g(10, 10);
  ParticleArray p(-1.0, 1.0);
  ParticleRec r;
  r.x = 9.9;
  r.y = 0.05;
  r.ux = 10.0;   // v ~ 0.995
  r.uy = -10.0;  // v ~ -0.995 (same gamma)
  p.push_back(r);
  advance_position(g, p, 0, 1.0);
  EXPECT_GE(p.x[0], 0.0);
  EXPECT_LT(p.x[0], 10.0);
  EXPECT_GE(p.y[0], 0.0);
  EXPECT_LT(p.y[0], 10.0);
}

TEST(LeapfrogKick, MatchesQEdtOverM) {
  double ux = 0.1, uy = 0.2;
  leapfrog_kick(-2.0, 4.0, 0.5, 1.0, -1.0, ux, uy);
  EXPECT_DOUBLE_EQ(ux, 0.1 - 2.0 * 0.5 / 4.0);
  EXPECT_DOUBLE_EQ(uy, 0.2 + 2.0 * 0.5 / 4.0);
}

}  // namespace
}  // namespace picpar::particles
