#include "particles/init.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace picpar::particles {
namespace {

mesh::GridDesc grid() { return mesh::GridDesc(64, 64); }

InitParams base(std::uint64_t n) {
  InitParams p;
  p.total = n;
  return p;
}

TEST(Init, GeneratesRequestedCount) {
  const auto p = generate(Distribution::kUniform, grid(), base(1000));
  EXPECT_EQ(p.size(), 1000u);
}

TEST(Init, DeterministicForSeed) {
  auto a = generate(Distribution::kGaussian, grid(), base(500));
  auto b = generate(Distribution::kGaussian, grid(), base(500));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.x[i], b.x[i]);
    EXPECT_EQ(a.ux[i], b.ux[i]);
  }
}

TEST(Init, DifferentSeedsDiffer) {
  auto pa = base(100);
  auto pb = base(100);
  pb.seed = 999;
  auto a = generate(Distribution::kUniform, grid(), pa);
  auto b = generate(Distribution::kUniform, grid(), pb);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a.x[i] == b.x[i]) ++same;
  EXPECT_LT(same, 5);
}

TEST(Init, AllPositionsInsideDomain) {
  for (auto d : {Distribution::kUniform, Distribution::kGaussian,
                 Distribution::kTwoStream, Distribution::kRing}) {
    const auto p = generate(d, grid(), base(2000));
    for (std::size_t i = 0; i < p.size(); ++i) {
      EXPECT_GE(p.x[i], 0.0);
      EXPECT_LT(p.x[i], 64.0);
      EXPECT_GE(p.y[i], 0.0);
      EXPECT_LT(p.y[i], 64.0);
    }
  }
}

TEST(Init, GaussianConcentratedInCenter) {
  auto params = base(20000);
  params.sigma_fraction = 0.08;
  const auto p = generate(Distribution::kGaussian, grid(), params);
  // >80% of particles within 3 sigma of the center in x.
  const double sigma = 0.08 * 64.0;
  std::size_t inside = 0;
  for (std::size_t i = 0; i < p.size(); ++i)
    if (std::abs(p.x[i] - 32.0) < 3.0 * sigma) ++inside;
  EXPECT_GT(static_cast<double>(inside) / static_cast<double>(p.size()), 0.8);
}

TEST(Init, UniformSpreadsOverDomain) {
  const auto p = generate(Distribution::kUniform, grid(), base(20000));
  // Quadrant counts within 10% of each other.
  std::size_t q[4] = {0, 0, 0, 0};
  for (std::size_t i = 0; i < p.size(); ++i) {
    const int qi = (p.x[i] < 32.0 ? 0 : 1) + (p.y[i] < 32.0 ? 0 : 2);
    ++q[qi];
  }
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(static_cast<double>(q[i]), 5000.0, 500.0);
}

TEST(Init, DriftShiftsMeanMomentum) {
  auto params = base(10000);
  params.drift_ux = 0.5;
  params.drift_uy = -0.25;
  const auto p = generate(Distribution::kUniform, grid(), params);
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    mx += p.ux[i];
    my += p.uy[i];
  }
  EXPECT_NEAR(mx / static_cast<double>(p.size()), 0.5, 0.01);
  EXPECT_NEAR(my / static_cast<double>(p.size()), -0.25, 0.01);
}

TEST(Init, TwoStreamHasCounterPropagatingBeams) {
  const auto p = generate(Distribution::kTwoStream, grid(), base(1000));
  double even = 0.0, odd = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i)
    (i % 2 == 0 ? even : odd) += p.ux[i];
  EXPECT_GT(even / 500.0, 0.1);
  EXPECT_LT(odd / 500.0, -0.1);
}

TEST(Init, RingAvoidsCenter) {
  auto params = base(5000);
  params.vth = 0.0;
  const auto p = generate(Distribution::kRing, grid(), params);
  std::size_t near_center = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double r = std::hypot(p.x[i] - 32.0, p.y[i] - 32.0);
    if (r < 4.0) ++near_center;
  }
  EXPECT_LT(near_center, p.size() / 50);
}

TEST(Init, MacroChargeRealizesPlasmaFrequency) {
  const auto g = grid();
  const std::uint64_t n = 4096;
  const double q = macro_charge(g, n, 1.0, 0.3);
  const double n0 = static_cast<double>(n) / (g.lx * g.ly);
  // omega_p^2 = n0 q^2 / m  (charge density rho = n0*q, each carrier q).
  EXPECT_NEAR(std::sqrt(n0 * q * q / 1.0), 0.3, 1e-12);
}

TEST(Init, OmegaPSetsSpeciesCharge) {
  auto params = base(1000);
  params.omega_p = 0.3;
  const auto p = generate(Distribution::kUniform, grid(), params);
  EXPECT_NEAR(p.charge(), -macro_charge(grid(), 1000, 1.0, 0.3), 1e-15);
}

TEST(Init, OmegaPZeroKeepsExplicitCharge) {
  auto params = base(10);
  params.omega_p = 0.0;
  const auto p = generate(Distribution::kUniform, grid(), params, -7.5, 2.0);
  EXPECT_DOUBLE_EQ(p.charge(), -7.5);
  EXPECT_DOUBLE_EQ(p.mass(), 2.0);
}

TEST(Init, ParseNames) {
  EXPECT_EQ(parse_distribution("uniform"), Distribution::kUniform);
  EXPECT_EQ(parse_distribution("gaussian"), Distribution::kGaussian);
  EXPECT_EQ(parse_distribution("irregular"), Distribution::kGaussian);
  EXPECT_EQ(parse_distribution("two_stream"), Distribution::kTwoStream);
  EXPECT_EQ(parse_distribution("ring"), Distribution::kRing);
  EXPECT_THROW(parse_distribution("blob"), std::invalid_argument);
}

TEST(Init, DistributionNamesRoundTrip) {
  EXPECT_STREQ(distribution_name(Distribution::kUniform), "uniform");
  EXPECT_STREQ(distribution_name(Distribution::kGaussian), "gaussian");
}

TEST(Init, MacroChargeRejectsZeroTotal) {
  EXPECT_THROW(macro_charge(grid(), 0, 1.0, 0.1), std::invalid_argument);
}

}  // namespace
}  // namespace picpar::particles
