// The Section 4 analytic model and its relation to the simulator.
#include <gtest/gtest.h>

#include "pic/model.hpp"
#include "pic/simulation.hpp"

namespace picpar::pic {
namespace {

ModelInputs inputs() {
  ModelInputs in;
  in.particles = 32768;
  in.grid_points = 128 * 64;
  in.nranks = 32;
  in.machine = sim::CostModel::cm5();
  return in;
}

TEST(Section4Model, GhostBoundIsMinOfTwoTerms) {
  auto in = inputs();
  // m/p = 256, 4n/p = 4096 -> u = 256.
  EXPECT_DOUBLE_EQ(ghost_point_bound(in), 256.0);
  in.particles = 256;  // 4n/p = 32 < m/p
  EXPECT_DOUBLE_EQ(ghost_point_bound(in), 32.0);
}

TEST(Section4Model, BoundsArePositiveAndOrdered) {
  const auto in = inputs();
  const auto b = phase_bounds(in);
  EXPECT_GT(b.scatter, 0.0);
  EXPECT_GT(b.field_solve, 0.0);
  EXPECT_GT(b.gather, 0.0);
  EXPECT_GT(b.push, 0.0);
  EXPECT_DOUBLE_EQ(b.iteration(),
                   b.scatter + b.field_solve + b.gather + b.push);
}

TEST(Section4Model, AlignedEstimateBelowWorstCase) {
  const auto in = inputs();
  const auto worst = phase_bounds(in);
  const auto aligned = aligned_phase_estimate(in);
  EXPECT_LT(aligned.scatter, worst.scatter);
  EXPECT_LT(aligned.gather, worst.gather);
  EXPECT_DOUBLE_EQ(aligned.push, worst.push) << "push has no communication";
  EXPECT_LE(aligned.iteration(), worst.iteration());
}

TEST(Section4Model, ScatterBoundMatchesFormula) {
  auto in = inputs();
  in.costs = PhaseCosts{};
  const auto b = phase_bounds(in);
  const double p = 32, n_p = 1024, u = 256;
  const double mu = in.machine.mu + in.machine.recv_copy_mu;
  const double expected = 4.0 * n_p * in.costs.scatter_per_vertex *
                              in.machine.delta +
                          (p - 1.0) * in.machine.tau + u * 8.0 * mu;
  EXPECT_DOUBLE_EQ(b.scatter, expected);
}

TEST(Section4Model, RejectsZeroRanks) {
  auto in = inputs();
  in.nranks = 0;
  EXPECT_THROW(phase_bounds(in), std::invalid_argument);
  EXPECT_THROW(aligned_phase_estimate(in), std::invalid_argument);
}

TEST(Section4Model, InputsFromParams) {
  PicParams p;
  p.grid = mesh::GridDesc(64, 32);
  p.nranks = 8;
  p.init.total = 4096;
  const auto in = model_inputs(p);
  EXPECT_EQ(in.particles, 4096u);
  EXPECT_EQ(in.grid_points, 2048u);
  EXPECT_EQ(in.nranks, 8);
}

TEST(Section4Model, SimulationRespectsWorstCaseBound) {
  // Measured per-iteration time must not exceed the analytic upper bound
  // (small slack for the diagnostics allreduce the bound doesn't know
  // about).
  PicParams p;
  p.grid = mesh::GridDesc(64, 32);
  p.nranks = 8;
  p.dist = particles::Distribution::kGaussian;
  p.init.total = 8192;
  p.init.drift_ux = 0.15;
  p.iterations = 60;
  p.policy = "static";  // worst case for communication growth
  p.machine = sim::CostModel::cm5();
  const auto bound = phase_bounds(model_inputs(p)).iteration();
  const auto r = run_pic(p);
  for (const auto& it : r.iters)
    EXPECT_LE(it.exec_seconds, bound * 1.10)
        << "iteration " << it.iter << " exceeded the Section 4 bound";
}

TEST(Section4Model, AlignedRunsNearAlignedEstimate) {
  // With a uniform distribution and frequent redistribution, measured
  // iterations should be within a factor ~2 of the aligned estimate.
  PicParams p;
  p.grid = mesh::GridDesc(64, 32);
  p.nranks = 8;
  p.dist = particles::Distribution::kUniform;
  p.init.total = 8192;
  p.iterations = 20;
  p.policy = "periodic:5";
  p.machine = sim::CostModel::cm5();
  const auto aligned = aligned_phase_estimate(model_inputs(p)).iteration();
  const auto r = run_pic(p);
  double median;
  {
    std::vector<double> t;
    for (const auto& it : r.iters)
      if (!it.redistributed) t.push_back(it.exec_seconds);
    std::sort(t.begin(), t.end());
    median = t[t.size() / 2];
  }
  EXPECT_GT(median, 0.5 * aligned);
  EXPECT_LT(median, 2.5 * aligned);
}

}  // namespace
}  // namespace picpar::pic
