// Fail-stop crash recovery in the PIC driver: shrink-to-survivors restart
// from the shared checkpoint store, particle conservation across the
// membership change, determinism of the whole recovery trajectory (same
// seed, sequential vs parallel), analyzer cleanliness through recovery, and
// the PICPAR_CRASH_* configuration surface.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "pic/simulation.hpp"

namespace picpar::pic {
namespace {

/// These tests assert exact crash counts and bit-identical trajectories, so
/// they must not inherit PICPAR_CRASH_* from the environment (the CI chaos
/// job runs the suite with injection armed). Clear the variables for the
/// test body and restore them afterwards.
class CrashRecovery : public ::testing::Test {
protected:
  void SetUp() override {
    for (const char* k :
         {"PICPAR_CRASH_RANKS", "PICPAR_CRASH_PROB", "PICPAR_CRASH_MAX_T",
          "PICPAR_CRASH_LEASE"}) {
      const char* v = ::getenv(k);
      saved_.emplace_back(
          k, v ? std::optional<std::string>(v) : std::nullopt);
      ::unsetenv(k);
    }
  }
  void TearDown() override {
    for (const auto& [k, v] : saved_) {
      if (v)
        ::setenv(k.c_str(), v->c_str(), 1);
      else
        ::unsetenv(k.c_str());
    }
  }

private:
  std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
};

PicParams base_params() {
  PicParams p;
  p.grid = mesh::GridDesc(32, 16);
  p.nranks = 8;
  p.dist = particles::Distribution::kGaussian;
  p.init.total = 2048;
  p.init.drift_ux = 0.12;
  p.init.drift_uy = 0.07;
  p.iterations = 20;
  p.policy = "periodic:5";
  p.machine = sim::CostModel::cm5();
  p.validate.checkpoint_every = 4;
  return p;
}

/// Virtual makespan of the crash-free run — crash times are placed as
/// fractions of it so the scenarios stay meaningful if costs change.
double clean_makespan(PicParams p) {
  p.faults = sim::FaultConfig{};
  return run_pic(p).total_seconds;
}

void expect_same_result(const PicResult& a, const PicResult& b) {
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.kinetic_energy, b.kinetic_energy);
  EXPECT_EQ(a.field_energy, b.field_energy);
  EXPECT_EQ(a.total_charge, b.total_charge);
  EXPECT_EQ(a.final_particles, b.final_particles);
  EXPECT_EQ(a.crash_count, b.crash_count);
  EXPECT_EQ(a.crash_recoveries, b.crash_recoveries);
  EXPECT_EQ(a.final_ranks, b.final_ranks);
  EXPECT_EQ(a.mttr_seconds_total, b.mttr_seconds_total);
  EXPECT_EQ(a.crash_lost_particles, b.crash_lost_particles);
  EXPECT_EQ(a.crash_restored_particles, b.crash_restored_particles);
  EXPECT_EQ(a.final_imbalance, b.final_imbalance);
  ASSERT_EQ(a.iters.size(), b.iters.size());
  for (std::size_t i = 0; i < a.iters.size(); ++i) {
    EXPECT_EQ(a.iters[i].exec_seconds, b.iters[i].exec_seconds) << "iter " << i;
    EXPECT_EQ(a.iters[i].loop_seconds, b.iters[i].loop_seconds) << "iter " << i;
    EXPECT_EQ(a.iters[i].crash_recovered, b.iters[i].crash_recovered);
  }
  ASSERT_EQ(a.machine.crashes.size(), b.machine.crashes.size());
  for (std::size_t i = 0; i < a.machine.crashes.size(); ++i) {
    EXPECT_EQ(a.machine.crashes[i].rank, b.machine.crashes[i].rank);
    EXPECT_EQ(a.machine.crashes[i].vtime, b.machine.crashes[i].vtime);
  }
}

TEST_F(CrashRecovery, SingleCrashCompletesAndConservesParticles) {
  auto p = base_params();
  const double T = clean_makespan(p);
  p.faults.crash_schedule = {{3, 0.45 * T}};
  const auto r = run_pic(p);

  EXPECT_EQ(r.crash_count, 1);
  EXPECT_EQ(r.final_ranks, p.nranks - 1);
  EXPECT_GE(r.crash_recoveries, 1);
  EXPECT_GT(r.mttr_seconds_total, 0.0);
  // Everything in the committed checkpoint was restored: the dead rank's
  // subdomain came back from the store, so the population is conserved.
  EXPECT_EQ(r.final_particles, r.initial_particles);
  EXPECT_EQ(r.crash_restored_particles, r.crash_lost_particles);
  EXPECT_GT(r.crash_restored_particles, 0u);
  // The resume iteration is flagged in the per-iteration records.
  bool flagged = false;
  for (const auto& it : r.iters) flagged = flagged || it.crash_recovered;
  EXPECT_TRUE(flagged);
  // Post-recovery balance is sane: max/mean over survivors stays below the
  // survivor count (the degenerate all-on-one-rank bound).
  EXPECT_GE(r.final_imbalance, 1.0);
  EXPECT_LT(r.final_imbalance, static_cast<double>(r.final_ranks));
}

TEST_F(CrashRecovery, SameSeedSameTrajectory) {
  auto p = base_params();
  const double T = clean_makespan(p);
  p.faults.crash_schedule = {{5, 0.35 * T}};
  const auto a = run_pic(p);
  const auto b = run_pic(p);
  EXPECT_EQ(a.crash_count, 1);
  expect_same_result(a, b);
}

TEST_F(CrashRecovery, SequentialAndParallelAreBitIdentical) {
  auto p = base_params();
  const double T = clean_makespan(p);
  p.faults.crash_schedule = {{2, 0.5 * T}};
  p.trace.enabled = true;  // compare the exported artifacts too

  const auto seq = run_pic(p);
  p.exec.parallel = true;
  const auto par = run_pic(p);

  EXPECT_EQ(seq.crash_count, 1);
  expect_same_result(seq, par);
  EXPECT_EQ(seq.metrics_json, par.metrics_json);
  EXPECT_EQ(seq.metrics_csv, par.metrics_csv);
  EXPECT_EQ(seq.timeline_csv, par.timeline_csv);
}

TEST_F(CrashRecovery, CascadeOfTwoCrashes) {
  auto p = base_params();
  const double T = clean_makespan(p);
  p.faults.crash_schedule = {{1, 0.3 * T}, {6, 0.6 * T}};
  const auto r = run_pic(p);

  EXPECT_EQ(r.crash_count, 2);
  EXPECT_EQ(r.final_ranks, p.nranks - 2);
  EXPECT_GE(r.crash_recoveries, 2);
  EXPECT_EQ(r.final_particles, r.initial_particles);
  EXPECT_EQ(r.crash_restored_particles, r.crash_lost_particles);
}

TEST_F(CrashRecovery, CrashBeforeFirstCommitReinitializes) {
  // A crash so early that no checkpoint has committed: survivors restart
  // from the (deterministically regenerated) initial conditions on the
  // shrunken group and still finish with a full population.
  auto p = base_params();
  p.faults.crash_schedule = {{0, 1e-9}};
  const auto r = run_pic(p);

  EXPECT_EQ(r.crash_count, 1);
  EXPECT_EQ(r.final_ranks, p.nranks - 1);
  EXPECT_GE(r.crash_recoveries, 1);
  EXPECT_EQ(r.final_particles, r.initial_particles);
  // Nothing was in the store yet, so nothing was "restored" from it.
  EXPECT_EQ(r.crash_restored_particles, 0u);
  ASSERT_FALSE(r.iters.empty());
}

TEST_F(CrashRecovery, ArmedButUnfiredScheduleIsDeterministic) {
  // A schedule the run never reaches exercises the checkpoint-store path
  // (commit barriers) without a crash; the result must be reproducible and
  // crash-free.
  auto p = base_params();
  p.faults.crash_schedule = {{1, 1e9}};
  const auto a = run_pic(p);
  const auto b = run_pic(p);
  EXPECT_EQ(a.crash_count, 0);
  EXPECT_EQ(a.crash_recoveries, 0);
  EXPECT_EQ(a.final_ranks, p.nranks);
  EXPECT_EQ(a.mttr_seconds_total, 0.0);
  expect_same_result(a, b);
}

TEST_F(CrashRecovery, AnalyzerAndAuditStayCleanThroughRecovery) {
  auto p = base_params();
  const double T = clean_makespan(p);
  p.faults.crash_schedule = {{4, 0.4 * T}};
  p.analyze.enabled = true;
  p.analyze.audit_determinism = true;
  const auto r = run_pic(p);

  EXPECT_EQ(r.crash_count, 1);
  EXPECT_GE(r.crash_recoveries, 1);
  // Epoch-tagged matching: the membership change must not surface as false
  // races, and the double-run audit must reproduce the recovery exactly.
  EXPECT_EQ(r.analysis_findings, 0) << r.analysis_report;
  EXPECT_EQ(r.determinism_audit, 1);
}

TEST_F(CrashRecovery, MetricsReportRecoveryAndMemoryPeak) {
  auto p = base_params();
  const double T = clean_makespan(p);
  p.faults.crash_schedule = {{3, 0.45 * T}};
  p.trace.enabled = true;
  const auto r = run_pic(p);

  ASSERT_TRUE(r.traced);
  EXPECT_NE(r.metrics_json.find("recovery.count"), std::string::npos);
  EXPECT_NE(r.metrics_json.find("recovery.mttr_seconds_total"),
            std::string::npos);
  EXPECT_NE(r.metrics_json.find("recovery.restored_particles"),
            std::string::npos);
  EXPECT_NE(r.metrics_json.find("fault.crashes"), std::string::npos);
  EXPECT_NE(r.metrics_json.find("mem.peak_bytes"), std::string::npos);
}

TEST_F(CrashRecovery, CrashFreeMetricsOmitRecoverySeries) {
  // The recovery/crash series are folded into the metrics only when they
  // fired: a clean traced run's snapshot stays byte-compatible with the
  // pre-crash-support format.
  auto p = base_params();
  p.trace.enabled = true;
  const auto r = run_pic(p);
  EXPECT_EQ(r.metrics_json.find("recovery."), std::string::npos);
  EXPECT_EQ(r.metrics_json.find("fault.crashes"), std::string::npos);
}

TEST_F(CrashRecovery, ParseCrashScheduleSpec) {
  const auto s = parse_crash_schedule("2@0.5,5@1.25");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].rank, 2);
  EXPECT_EQ(s[0].vtime, 0.5);
  EXPECT_EQ(s[1].rank, 5);
  EXPECT_EQ(s[1].vtime, 1.25);
  EXPECT_TRUE(parse_crash_schedule("").empty());
  EXPECT_THROW(parse_crash_schedule("3"), std::invalid_argument);
  EXPECT_THROW(parse_crash_schedule("@1.0"), std::invalid_argument);
  EXPECT_THROW(parse_crash_schedule("2@"), std::invalid_argument);
  EXPECT_THROW(parse_crash_schedule("x@1.0"), std::invalid_argument);
  EXPECT_THROW(parse_crash_schedule("2@abc"), std::invalid_argument);
  EXPECT_THROW(parse_crash_schedule("-1@0.5"), std::invalid_argument);
}

TEST_F(CrashRecovery, EnvOverridesFoldIntoConfig) {
  ::setenv("PICPAR_CRASH_RANKS", "1@0.125", 1);
  ::setenv("PICPAR_CRASH_PROB", "0.25", 1);
  ::setenv("PICPAR_CRASH_MAX_T", "2.5", 1);
  ::setenv("PICPAR_CRASH_LEASE", "0.01", 1);
  sim::FaultConfig cfg;
  apply_crash_env(cfg);
  ::unsetenv("PICPAR_CRASH_RANKS");
  ::unsetenv("PICPAR_CRASH_PROB");
  ::unsetenv("PICPAR_CRASH_MAX_T");
  ::unsetenv("PICPAR_CRASH_LEASE");

  ASSERT_EQ(cfg.crash_schedule.size(), 1u);
  EXPECT_EQ(cfg.crash_schedule[0].rank, 1);
  EXPECT_EQ(cfg.crash_schedule[0].vtime, 0.125);
  EXPECT_EQ(cfg.crash_prob, 0.25);
  EXPECT_EQ(cfg.crash_vtime_max, 2.5);
  EXPECT_EQ(cfg.crash_lease_seconds, 0.01);
  EXPECT_TRUE(cfg.any_crash_faults());

  // Unset variables leave the config untouched.
  sim::FaultConfig untouched;
  apply_crash_env(untouched);
  EXPECT_TRUE(untouched.crash_schedule.empty());
  EXPECT_EQ(untouched.crash_prob, 0.0);
}

}  // namespace
}  // namespace picpar::pic
