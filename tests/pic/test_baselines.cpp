// The two baseline parallelizations from Section 3, checked for the
// qualitative properties Table 1 attributes to them.
#include <gtest/gtest.h>

#include "pic/eulerian.hpp"
#include "pic/replicated.hpp"
#include "pic/simulation.hpp"
#include "util/stats.hpp"

namespace picpar::pic {
namespace {

PicParams params(particles::Distribution dist, int nranks) {
  PicParams p;
  p.grid = mesh::GridDesc(32, 16);
  p.nranks = nranks;
  p.dist = dist;
  p.init.total = 2048;
  p.init.drift_ux = 0.1;
  p.iterations = 10;
  p.machine = sim::CostModel::cm5();
  return p;
}

TEST(Replicated, CompletesWithSamePhysicsAsMain) {
  auto p = params(particles::Distribution::kUniform, 4);
  const auto rep = run_replicated(p);
  p.policy = "static";
  const auto main = run_pic(p);
  ASSERT_EQ(rep.iters.size(), 10u);
  EXPECT_NEAR(rep.kinetic_energy, main.kinetic_energy,
              1e-6 * main.kinetic_energy);
  EXPECT_NEAR(rep.field_energy, main.field_energy,
              1e-5 * std::max(1.0, main.field_energy));
}

TEST(Replicated, GlobalOperationsDominateAtScale) {
  // Fixed problem, growing machine: the replicated baseline's overhead
  // (global sums over the full mesh) must grow with p while the
  // distributed version's per-rank mesh share shrinks.
  const auto small = run_replicated(params(particles::Distribution::kUniform, 4));
  const auto large = run_replicated(params(particles::Distribution::kUniform, 16));
  EXPECT_GT(large.overhead_seconds(), small.overhead_seconds());
}

TEST(Replicated, OverheadWorseThanIndependentPartitioning) {
  auto p = params(particles::Distribution::kUniform, 16);
  const auto rep = run_replicated(p);
  p.policy = "periodic:5";
  const auto main = run_pic(p);
  EXPECT_GT(rep.overhead_seconds(), main.overhead_seconds())
      << "replicated-grid global ops should cost more than ghost exchange";
}

TEST(Replicated, ComputeStaysBalanced) {
  // Direct Lagrangian: equal particle counts -> balanced compute.
  const auto r = run_replicated(params(particles::Distribution::kGaussian, 8));
  std::vector<double> compute;
  for (const auto& rank : r.machine.ranks)
    compute.push_back(rank.stats.total().compute_seconds);
  EXPECT_LT(imbalance(compute).factor(), 1.2);
}

TEST(Eulerian, UniformDistributionIsRoughlyBalanced) {
  const auto counts =
      eulerian_particle_counts(params(particles::Distribution::kUniform, 8));
  EXPECT_LT(imbalance_counts(counts).factor(), 1.4);
}

TEST(Eulerian, IrregularDistributionIsSeverelyImbalanced) {
  const auto counts =
      eulerian_particle_counts(params(particles::Distribution::kGaussian, 8));
  EXPECT_GT(imbalance_counts(counts).factor(), 2.0)
      << "center-concentrated blob must overload the central ranks";
}

TEST(Eulerian, ImbalanceShowsUpInComputeTime) {
  const auto r = run_eulerian(params(particles::Distribution::kGaussian, 8));
  std::vector<double> compute;
  for (const auto& rank : r.machine.ranks)
    compute.push_back(rank.stats.total().compute_seconds);
  EXPECT_GT(imbalance(compute).factor(), 1.8);
}

TEST(Eulerian, SlowerThanLagrangianOnIrregularInput) {
  auto p = params(particles::Distribution::kGaussian, 8);
  p.iterations = 15;
  const auto eul = run_eulerian(p);
  p.policy = "periodic:5";
  const auto main = run_pic(p);
  EXPECT_GT(eul.total_seconds, main.total_seconds)
      << "load imbalance must dominate the Eulerian baseline";
}

TEST(Eulerian, ParticleCountConservedUnderMigration) {
  auto p = params(particles::Distribution::kUniform, 8);
  p.init.drift_ux = 0.3;  // strong drift => lots of migration
  p.iterations = 20;
  const auto r = run_eulerian(p);
  // kinetic_energy sums over final particles; if particles were lost the
  // energy would drop far below the main simulation's.
  p.policy = "static";
  const auto main = run_pic(p);
  EXPECT_NEAR(r.kinetic_energy, main.kinetic_energy,
              1e-5 * main.kinetic_energy);
}

TEST(Eulerian, PhysicsMatchesMainSimulation) {
  auto p = params(particles::Distribution::kUniform, 4);
  const auto eul = run_eulerian(p);
  p.policy = "periodic:3";
  const auto main = run_pic(p);
  EXPECT_NEAR(eul.kinetic_energy, main.kinetic_energy,
              1e-6 * main.kinetic_energy);
}

TEST(Baselines, RejectEmptyPopulations) {
  auto p = params(particles::Distribution::kUniform, 4);
  p.init.total = 0;
  EXPECT_THROW(run_replicated(p), std::invalid_argument);
  EXPECT_THROW(run_eulerian(p), std::invalid_argument);
}

}  // namespace
}  // namespace picpar::pic
