// End-to-end invariants of the independent-partitioning Lagrangian PIC.
#include "pic/simulation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace picpar::pic {
namespace {

PicParams small_params() {
  PicParams p;
  p.grid = mesh::GridDesc(32, 16);
  p.nranks = 8;
  p.dist = particles::Distribution::kGaussian;
  p.init.total = 2048;
  p.init.drift_ux = 0.12;
  p.init.drift_uy = 0.07;
  p.iterations = 20;
  p.policy = "periodic:5";
  p.machine = sim::CostModel::cm5();
  return p;
}

TEST(RunPic, CompletesAndReportsEveryIteration) {
  const auto r = run_pic(small_params());
  EXPECT_EQ(r.iters.size(), 20u);
  EXPECT_GT(r.total_seconds, 0.0);
  EXPECT_GT(r.compute_seconds, 0.0);
  EXPECT_GE(r.overhead_seconds(), 0.0);
  for (const auto& it : r.iters) EXPECT_GT(it.exec_seconds, 0.0);
}

TEST(RunPic, ChargeIsConservedExactly) {
  auto p = small_params();
  const auto r = run_pic(p);
  // Total deposited charge == N * q (CIC weights sum to 1 per particle).
  const double q = particles::macro_charge(p.grid, p.init.total, 1.0,
                                           p.init.omega_p);
  EXPECT_NEAR(r.total_charge, -q * static_cast<double>(p.init.total),
              1e-9 * q * static_cast<double>(p.init.total));
}

TEST(RunPic, PeriodicPolicyRedistributesOnSchedule) {
  auto p = small_params();
  p.policy = "periodic:5";
  const auto r = run_pic(p);
  EXPECT_EQ(r.redistributions, 4);
  EXPECT_TRUE(r.iters[4].redistributed);
  EXPECT_TRUE(r.iters[9].redistributed);
  EXPECT_FALSE(r.iters[3].redistributed);
}

TEST(RunPic, StaticPolicyNeverRedistributes) {
  auto p = small_params();
  p.policy = "static";
  const auto r = run_pic(p);
  EXPECT_EQ(r.redistributions, 0);
}

TEST(RunPic, DeterministicAcrossRuns) {
  const auto a = run_pic(small_params());
  const auto b = run_pic(small_params());
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.kinetic_energy, b.kinetic_energy);
  EXPECT_EQ(a.field_energy, b.field_energy);
  for (std::size_t i = 0; i < a.iters.size(); ++i)
    EXPECT_EQ(a.iters[i].exec_seconds, b.iters[i].exec_seconds);
}

TEST(RunPic, PhysicsIndependentOfPolicy) {
  // Redistribution changes who computes, not what is computed: energies
  // must agree across policies up to floating-point summation order.
  auto p = small_params();
  p.policy = "static";
  const auto a = run_pic(p);
  p.policy = "periodic:3";
  const auto b = run_pic(p);
  p.policy = "sar";
  const auto c = run_pic(p);
  EXPECT_NEAR(b.kinetic_energy, a.kinetic_energy, 1e-6 * a.kinetic_energy);
  EXPECT_NEAR(c.kinetic_energy, a.kinetic_energy, 1e-6 * a.kinetic_energy);
  EXPECT_NEAR(b.field_energy, a.field_energy,
              1e-6 * std::max(1.0, a.field_energy));
}

TEST(RunPic, PhysicsIndependentOfCurveAndDecomp) {
  auto p = small_params();
  p.curve = sfc::CurveKind::kHilbert;
  p.grid_decomp = GridDecomp::kCurve;
  const auto a = run_pic(p);
  p.curve = sfc::CurveKind::kSnake;
  const auto b = run_pic(p);
  p.grid_decomp = GridDecomp::kBlock;
  const auto c = run_pic(p);
  EXPECT_NEAR(b.kinetic_energy, a.kinetic_energy, 1e-6 * a.kinetic_energy);
  EXPECT_NEAR(c.kinetic_energy, a.kinetic_energy, 1e-6 * a.kinetic_energy);
}

TEST(RunPic, PhysicsIndependentOfMachineModel) {
  // Virtual time must not feed back into the physics.
  auto p = small_params();
  const auto a = run_pic(p);
  p.machine = sim::CostModel::zero();
  const auto b = run_pic(p);
  EXPECT_EQ(a.kinetic_energy, b.kinetic_energy);
  EXPECT_EQ(a.field_energy, b.field_energy);
}

TEST(RunPic, DedupPoliciesAgree) {
  auto p = small_params();
  p.dedup = core::DedupPolicy::kHash;
  const auto a = run_pic(p);
  p.dedup = core::DedupPolicy::kDirect;
  const auto b = run_pic(p);
  EXPECT_EQ(a.kinetic_energy, b.kinetic_energy);
  EXPECT_EQ(a.total_charge, b.total_charge);
}

TEST(RunPic, SarAdaptsWithoutTuning) {
  auto p = small_params();
  p.iterations = 40;
  p.policy = "sar";
  const auto r = run_pic(p);
  EXPECT_GT(r.redistributions, 0) << "drifting blob must trigger SAR";
  EXPECT_LT(r.redistributions, 40);
}

TEST(RunPic, ScatterTrafficIsRecorded) {
  const auto r = run_pic(small_params());
  bool any = false;
  for (const auto& it : r.iters)
    if (it.scatter_max_sent_bytes > 0) any = true;
  EXPECT_TRUE(any);
  for (const auto& it : r.iters) {
    EXPECT_GE(it.scatter_max_sent_msgs, 1u);
    EXPECT_GE(it.max_ghost_entries, 1u);
  }
}

TEST(RunPic, SingleRankRunsWithoutCommunication) {
  auto p = small_params();
  p.nranks = 1;
  const auto r = run_pic(p);
  EXPECT_EQ(r.iters.size(), 20u);
  for (const auto& it : r.iters) {
    EXPECT_EQ(it.scatter_max_sent_bytes, 0u);
    EXPECT_EQ(it.max_ghost_entries, 0u);
  }
}

TEST(RunPic, PoissonSolverModeRuns) {
  auto p = small_params();
  p.solver = FieldSolveKind::kPoisson;
  p.iterations = 5;
  const auto r = run_pic(p);
  EXPECT_EQ(r.iters.size(), 5u);
  EXPECT_GT(r.kinetic_energy, 0.0);
}

TEST(RunPic, NoSolverModeRuns) {
  auto p = small_params();
  p.solver = FieldSolveKind::kNone;
  p.iterations = 5;
  const auto r = run_pic(p);
  EXPECT_DOUBLE_EQ(r.field_energy, 0.0);
}

TEST(RunPic, RejectsInvalidConfigs) {
  auto p = small_params();
  p.init.total = 0;
  EXPECT_THROW(run_pic(p), std::invalid_argument);
  p = small_params();
  p.iterations = -1;
  EXPECT_THROW(run_pic(p), std::invalid_argument);
}

TEST(ParseHelpers, GridDecompAndSolver) {
  EXPECT_EQ(parse_grid_decomp("block"), GridDecomp::kBlock);
  EXPECT_EQ(parse_grid_decomp("curve"), GridDecomp::kCurve);
  EXPECT_THROW(parse_grid_decomp("diag"), std::invalid_argument);
  EXPECT_EQ(parse_solver("maxwell"), FieldSolveKind::kMaxwell);
  EXPECT_EQ(parse_solver("poisson"), FieldSolveKind::kPoisson);
  EXPECT_EQ(parse_solver("none"), FieldSolveKind::kNone);
  EXPECT_THROW(parse_solver("fft"), std::invalid_argument);
}

}  // namespace
}  // namespace picpar::pic
