// Physical behaviour of the full PIC loop.
#include <gtest/gtest.h>

#include <cmath>

#include "pic/simulation.hpp"

namespace picpar::pic {
namespace {

TEST(Physics, ColdUniformPlasmaStaysQuiet) {
  // Zero temperature, zero drift, uniform density: no net fields should
  // develop beyond deposition noise, and kinetic energy stays tiny.
  PicParams p;
  p.grid = mesh::GridDesc(16, 16);
  p.nranks = 4;
  p.dist = particles::Distribution::kUniform;
  p.init.total = 16 * 16 * 16;  // 16 per cell to keep noise low
  p.init.vth = 0.0;
  p.init.omega_p = 0.1;
  p.iterations = 20;
  p.policy = "static";
  const auto r = run_pic(p);
  EXPECT_LT(r.kinetic_energy, 1.0e-2);
}

TEST(Physics, ThermalEnergyOrderOfMagnitude) {
  PicParams p;
  p.grid = mesh::GridDesc(16, 16);
  p.nranks = 4;
  p.dist = particles::Distribution::kUniform;
  p.init.total = 4096;
  p.init.vth = 0.05;
  p.iterations = 1;
  p.policy = "static";
  const auto r = run_pic(p);
  // Non-relativistic: KE ~ N * 3/2 vth^2 (u ~ v at these speeds).
  const double expected = 4096 * 1.5 * 0.05 * 0.05;
  EXPECT_GT(r.kinetic_energy, 0.5 * expected);
  EXPECT_LT(r.kinetic_energy, 2.0 * expected);
}

TEST(Physics, TotalEnergyBoundedOverRun) {
  PicParams p;
  p.grid = mesh::GridDesc(32, 32);
  p.nranks = 4;
  p.dist = particles::Distribution::kUniform;
  p.init.total = 8192;
  p.init.vth = 0.05;
  p.init.omega_p = 0.15;
  p.iterations = 60;
  p.policy = "periodic:20";
  const auto r = run_pic(p);
  const double e0 = 8192 * 1.5 * 0.05 * 0.05;
  EXPECT_LT(r.kinetic_energy + r.field_energy, 10.0 * e0)
      << "no numerical heating catastrophe over 60 steps";
}

TEST(Physics, DriftingBlobSpreadsGhostFootprint) {
  // Under a static policy, a drifting irregular blob must steadily touch
  // more off-processor grid points (the effect Figs 17-19 plot).
  PicParams p;
  p.grid = mesh::GridDesc(32, 16);
  p.nranks = 8;
  p.dist = particles::Distribution::kGaussian;
  p.init.total = 2048;
  p.init.drift_ux = 0.2;
  p.init.drift_uy = 0.1;
  p.iterations = 60;
  p.policy = "static";
  const auto r = run_pic(p);
  const auto early = r.iters[2].max_ghost_entries;
  const auto late = r.iters[55].max_ghost_entries;
  EXPECT_GT(late, early) << "ghost set must grow without redistribution";
}

TEST(Physics, RedistributionShrinksGhostFootprint) {
  PicParams p;
  p.grid = mesh::GridDesc(32, 16);
  p.nranks = 8;
  p.dist = particles::Distribution::kGaussian;
  p.init.total = 2048;
  p.init.drift_ux = 0.2;
  p.iterations = 60;
  p.policy = "static";
  const auto stat = run_pic(p);
  p.policy = "periodic:10";
  const auto peri = run_pic(p);
  // Compare the tail of the run, where the static case has drifted far.
  auto tail_mean = [](const PicResult& r) {
    double s = 0.0;
    for (std::size_t i = 40; i < 60; ++i)
      s += static_cast<double>(r.iters[i].max_ghost_entries);
    return s / 20.0;
  };
  EXPECT_LT(tail_mean(peri), tail_mean(stat));
}

TEST(Physics, RelativisticParticlesStaySubluminal) {
  PicParams p;
  p.grid = mesh::GridDesc(16, 16);
  p.nranks = 2;
  p.dist = particles::Distribution::kUniform;
  p.init.total = 512;
  p.init.vth = 2.0;  // relativistic momenta
  p.iterations = 10;
  p.policy = "static";
  // Just exercising the path: the run must complete and conserve count.
  const auto r = run_pic(p);
  const double q = particles::macro_charge(p.grid, p.init.total, 1.0,
                                           p.init.omega_p);
  EXPECT_NEAR(r.total_charge, -q * 512.0, 1e-8 * q * 512.0);
}

}  // namespace
}  // namespace picpar::pic
