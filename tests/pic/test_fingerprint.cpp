// PicParams::canonical()/fingerprint() — the content address the sweep
// result cache keys on. The contract under test: every semantically
// meaningful field changes the fingerprint; execution mode and trace sink
// paths do not; environment overrides that change run semantics do; and
// the bytes are process-independent (pinned golden value).
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "pic/config.hpp"

namespace picpar::pic {
namespace {

/// The canonical form folds in PICPAR_CRASH_*, PICPAR_ANALYZE, and
/// PICPAR_TRACE*, so these tests scrub them (the CI chaos job exports
/// crash injection suite-wide) and restore afterwards.
class Fingerprint : public ::testing::Test {
protected:
  void SetUp() override {
    for (const char* k :
         {"PICPAR_CRASH_RANKS", "PICPAR_CRASH_PROB", "PICPAR_CRASH_MAX_T",
          "PICPAR_CRASH_LEASE", "PICPAR_ANALYZE", "PICPAR_TRACE",
          "PICPAR_TRACE_METRICS"}) {
      const char* v = ::getenv(k);
      saved_.emplace_back(k,
                          v ? std::optional<std::string>(v) : std::nullopt);
      ::unsetenv(k);
    }
  }
  void TearDown() override {
    for (const auto& [k, v] : saved_) {
      if (v)
        ::setenv(k.c_str(), v->c_str(), 1);
      else
        ::unsetenv(k.c_str());
    }
  }

private:
  std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
};

PicParams base_params() {
  PicParams p;
  p.grid = mesh::GridDesc(32, 16);
  p.nranks = 8;
  p.init.total = 2000;
  p.iterations = 10;
  return p;
}

TEST_F(Fingerprint, IsStableHexAndMatchesCanonical) {
  const auto p = base_params();
  const std::string fp = p.fingerprint();
  ASSERT_EQ(fp.size(), 16u);
  for (const char c : fp)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << fp;
  EXPECT_EQ(fp, p.fingerprint());
  EXPECT_EQ(p.canonical(), p.canonical());
}

TEST_F(Fingerprint, EverySemanticFieldChangesTheFingerprint) {
  const auto base = base_params();
  const std::string fp0 = base.fingerprint();

  const std::vector<std::pair<const char*, std::function<void(PicParams&)>>>
      mutations = {
          {"grid.nx", [](PicParams& p) { p.grid = mesh::GridDesc(64, 16); }},
          {"grid.ny", [](PicParams& p) { p.grid = mesh::GridDesc(32, 32); }},
          {"nranks", [](PicParams& p) { p.nranks = 16; }},
          {"dist",
           [](PicParams& p) { p.dist = particles::Distribution::kGaussian; }},
          {"scenario", [](PicParams& p) { p.scenario = "weibel"; }},
          {"init.total", [](PicParams& p) { p.init.total = 2001; }},
          {"init.vth", [](PicParams& p) { p.init.vth += 0.01; }},
          {"init.drift_ux", [](PicParams& p) { p.init.drift_ux = 0.2; }},
          {"init.drift_uy", [](PicParams& p) { p.init.drift_uy = 0.2; }},
          {"init.sigma_fraction",
           [](PicParams& p) { p.init.sigma_fraction += 0.01; }},
          {"init.omega_p", [](PicParams& p) { p.init.omega_p = 1.0; }},
          {"init.seed", [](PicParams& p) { p.init.seed += 1; }},
          {"curve",
           [](PicParams& p) { p.curve = sfc::CurveKind::kMorton; }},
          {"grid_decomp",
           [](PicParams& p) { p.grid_decomp = GridDecomp::kBlock; }},
          {"solver",
           [](PicParams& p) { p.solver = FieldSolveKind::kPoisson; }},
          {"iterations", [](PicParams& p) { p.iterations = 11; }},
          {"dt", [](PicParams& p) { p.dt = 0.25; }},
          {"policy", [](PicParams& p) { p.policy = "periodic:5"; }},
          {"dedup",
           [](PicParams& p) { p.dedup = core::DedupPolicy::kHash; }},
          {"partitioner.buckets_per_rank",
           [](PicParams& p) { p.partitioner.buckets_per_rank += 1; }},
          {"partitioner.samples_per_rank",
           [](PicParams& p) { p.partitioner.samples_per_rank += 1; }},
          {"partitioner.ops_per_comparison",
           [](PicParams& p) { p.partitioner.ops_per_comparison += 1.0; }},
          {"partitioner.ops_per_move",
           [](PicParams& p) { p.partitioner.ops_per_move += 1.0; }},
          {"partitioner.balancer",
           [](PicParams& p) { p.partitioner.balancer = "eulerian"; }},
          {"costs.scatter_per_vertex",
           [](PicParams& p) { p.costs.scatter_per_vertex += 1.0; }},
          {"costs.field_per_node",
           [](PicParams& p) { p.costs.field_per_node += 1.0; }},
          {"costs.gather_per_vertex",
           [](PicParams& p) { p.costs.gather_per_vertex += 1.0; }},
          {"costs.push_per_particle",
           [](PicParams& p) { p.costs.push_per_particle += 1.0; }},
          {"machine.tau", [](PicParams& p) { p.machine.tau *= 2.0; }},
          {"machine.mu", [](PicParams& p) { p.machine.mu *= 2.0; }},
          {"machine.delta", [](PicParams& p) { p.machine.delta *= 2.0; }},
          {"machine.recv_copy_mu",
           [](PicParams& p) { p.machine.recv_copy_mu += 1e-9; }},
          {"faults.seed", [](PicParams& p) { p.faults.seed += 1; }},
          {"faults.transient_slow_prob",
           [](PicParams& p) { p.faults.transient_slow_prob = 0.1; }},
          {"faults.transient_slow_factor",
           [](PicParams& p) { p.faults.transient_slow_factor += 1.0; }},
          {"faults.straggler_ranks",
           [](PicParams& p) { p.faults.straggler_ranks = {2}; }},
          {"faults.straggler_factor",
           [](PicParams& p) { p.faults.straggler_factor += 1.0; }},
          {"faults.latency_jitter_prob",
           [](PicParams& p) { p.faults.latency_jitter_prob = 0.1; }},
          {"faults.latency_jitter_max_seconds",
           [](PicParams& p) { p.faults.latency_jitter_max_seconds = 1e-3; }},
          {"faults.corrupt_prob",
           [](PicParams& p) { p.faults.corrupt_prob = 0.05; }},
          {"faults.duplicate_prob",
           [](PicParams& p) { p.faults.duplicate_prob = 0.05; }},
          {"faults.reorder_prob",
           [](PicParams& p) { p.faults.reorder_prob = 0.05; }},
          {"faults.max_retries",
           [](PicParams& p) { p.faults.max_retries += 1; }},
          {"faults.memory_fault_prob",
           [](PicParams& p) { p.faults.memory_fault_prob = 0.01; }},
          {"faults.crash_schedule",
           [](PicParams& p) { p.faults.crash_schedule = {{3, 0.5}}; }},
          {"faults.crash_prob",
           [](PicParams& p) { p.faults.crash_prob = 0.01; }},
          {"faults.crash_vtime_max",
           [](PicParams& p) { p.faults.crash_vtime_max = 2.0; }},
          {"faults.crash_lease_seconds",
           [](PicParams& p) { p.faults.crash_lease_seconds += 0.001; }},
          {"validate.check_every",
           [](PicParams& p) { p.validate.check_every = 1; }},
          {"validate.checkpoint_every",
           [](PicParams& p) { p.validate.checkpoint_every = 5; }},
          {"validate.max_recoveries",
           [](PicParams& p) { p.validate.max_recoveries += 1; }},
          {"validate.invariants.balance_tolerance",
           // Default is 0.0 (check disabled), so add rather than scale.
           [](PicParams& p) { p.validate.invariants.balance_tolerance += 1.5; }},
          {"validate.invariants.balance_slack",
           [](PicParams& p) { p.validate.invariants.balance_slack += 1.0; }},
          {"validate.invariants.energy_factor",
           // Default is 0.0 (check disabled), so add rather than scale.
           [](PicParams& p) { p.validate.invariants.energy_factor += 2.0; }},
          {"validate.invariants.verify_keys",
           [](PicParams& p) {
             p.validate.invariants.verify_keys =
                 !p.validate.invariants.verify_keys;
           }},
          {"validate.invariants.ops_per_particle",
           [](PicParams& p) {
             p.validate.invariants.ops_per_particle += 1.0;
           }},
          {"validate.checkpoint_ops_per_particle",
           [](PicParams& p) {
             p.validate.checkpoint_ops_per_particle += 1.0;
           }},
          {"analyze.enabled",
           [](PicParams& p) { p.analyze.enabled = true; }},
          {"analyze.audit_determinism",
           [](PicParams& p) { p.analyze.audit_determinism = true; }},
          {"analyze.max_findings",
           [](PicParams& p) { p.analyze.max_findings += 1; }},
          {"trace.enabled", [](PicParams& p) { p.trace.enabled = true; }},
          {"trace.flows",
           [](PicParams& p) { p.trace.flows = !p.trace.flows; }},
          {"trace.include_wall",
           [](PicParams& p) { p.trace.include_wall = true; }},
          {"sample_energy_every",
           [](PicParams& p) { p.sample_energy_every = 5; }},
      };

  for (const auto& [field, mutate] : mutations) {
    auto p = base;
    mutate(p);
    EXPECT_NE(p.fingerprint(), fp0)
        << "mutating " << field << " did not change the fingerprint";
  }
}

TEST_F(Fingerprint, ExecutionModeDoesNotChangeTheBytes) {
  // The parallel engine is bit-identical to the sequential scheduler
  // (DESIGN.md), so one cache entry must serve both execution modes.
  const auto base = base_params();
  auto par = base;
  par.exec.parallel = true;
  par.exec.workers = 7;
  EXPECT_EQ(par.canonical(), base.canonical());
  EXPECT_EQ(par.fingerprint(), base.fingerprint());
}

TEST_F(Fingerprint, TracePathsAreSinksNotSemantics) {
  auto by_flag = base_params();
  by_flag.trace.enabled = true;
  auto by_path = base_params();
  by_path.trace.path = "/tmp/some-trace.json";
  auto by_metrics_path = base_params();
  by_metrics_path.trace.metrics_path = "/tmp/some-metrics.json";
  // All three enable tracing; where the files land must not split the
  // cache key.
  EXPECT_EQ(by_flag.fingerprint(), by_path.fingerprint());
  EXPECT_EQ(by_flag.fingerprint(), by_metrics_path.fingerprint());
  EXPECT_NE(by_flag.fingerprint(), base_params().fingerprint());
}

TEST_F(Fingerprint, EnvironmentOverridesFoldIn) {
  const auto base = base_params();
  const std::string fp0 = base.fingerprint();

  ::setenv("PICPAR_CRASH_RANKS", "1@0.8", 1);
  EXPECT_NE(base.fingerprint(), fp0) << "PICPAR_CRASH_RANKS ignored";
  ::unsetenv("PICPAR_CRASH_RANKS");

  ::setenv("PICPAR_ANALYZE", "1", 1);
  EXPECT_NE(base.fingerprint(), fp0) << "PICPAR_ANALYZE ignored";
  ::unsetenv("PICPAR_ANALYZE");

  ::setenv("PICPAR_TRACE", "/tmp/t.json", 1);
  EXPECT_NE(base.fingerprint(), fp0) << "PICPAR_TRACE ignored";
  ::unsetenv("PICPAR_TRACE");

  // Execution-mode variables are excluded by the determinism contract.
  ::setenv("PICPAR_PARALLEL", "1", 1);
  ::setenv("PICPAR_WORKERS", "4", 1);
  EXPECT_EQ(base.fingerprint(), fp0);
  ::unsetenv("PICPAR_PARALLEL");
  ::unsetenv("PICPAR_WORKERS");

  EXPECT_EQ(base.fingerprint(), fp0);
}

TEST_F(Fingerprint, CrashScheduleEntriesPastNranksAreDropped) {
  // run_pic ignores scheduled crashes aimed past the rank count, so they
  // must not split the cache key either.
  const auto base = base_params();
  auto ghost = base;
  ghost.faults.crash_schedule = {{base.nranks + 5, 0.5}};
  EXPECT_EQ(ghost.fingerprint(), base.fingerprint());
  auto real = base;
  real.faults.crash_schedule = {{base.nranks - 1, 0.5}};
  EXPECT_NE(real.fingerprint(), base.fingerprint());
}

TEST_F(Fingerprint, GoldenValueIsProcessIndependent) {
  // Pinned against a fixed configuration: a mismatch means the canonical
  // format changed, which silently invalidates every cached sweep result.
  // If the change is intentional, bump kCanonicalVersion in fingerprint.cpp
  // and re-pin.
  const auto p = base_params();
  EXPECT_EQ(p.fingerprint(), "609f0dfa02739efa");
}

}  // namespace
}  // namespace picpar::pic
