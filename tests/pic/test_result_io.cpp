// PicResult serialization round-trip — the payload format of the sweep
// result cache. A cached result must rehydrate to exactly the bytes it
// serialized from (golden round-trip on a real traced, faulted run), and
// malformed input must throw, never crash or half-parse.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "pic/result_io.hpp"
#include "pic/simulation.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

namespace picpar::pic {
namespace {

PicResult sample_result() {
  PicResult r;
  r.total_seconds = 12.5;
  r.compute_seconds = 10.25;
  r.redistributions = 3;
  r.redist_seconds_total = 0.75;
  r.initial_distribution_seconds = 0.125;
  r.recoveries = 1;
  r.violation_iterations = 2;
  r.initial_particles = 4096;
  r.final_particles = 4096;
  r.crash_count = 1;
  r.crash_recoveries = 1;
  r.final_ranks = 7;
  r.mttr_seconds_total = 0.0625;
  r.crash_lost_particles = 512;
  r.crash_restored_particles = 512;
  r.final_imbalance = 1.0625;
  r.analysis_findings = 0;
  r.hb_fingerprint = 0xdeadbeefcafef00dULL;
  r.determinism_audit = 1;
  r.traced = true;
  r.trace_events = 12345;
  r.field_energy = 17.252240723686292;
  r.kinetic_energy = 9.781755975221214;
  r.total_charge = -1.5;
  r.phase_wall_us = {1.5, 2.5, 0.0, 3.25, 4.0, 5.0};

  IterRecord it;
  it.iter = 0;
  it.exec_seconds = 0.5;
  it.loop_seconds = 0.45;
  it.scatter_max_sent_bytes = 1024;
  it.scatter_max_recv_bytes = 2048;
  it.scatter_max_sent_msgs = 7;
  it.scatter_max_recv_msgs = 9;
  it.max_ghost_entries = 33;
  r.iters.push_back(it);
  it.iter = 1;
  it.redistributed = true;
  it.redist_seconds = 0.07;
  it.redist_particles_moved = 100;
  it.violation_mask = 5;
  it.recovered = true;
  it.crash_recovered = true;
  r.iters.push_back(it);

  r.energy_history.push_back({0, 1.25, 2.5});
  r.energy_history.push_back({5, 1.0 / 3.0, 0.1});

  r.machine.epochs = 2;
  r.machine.crashes.push_back({3, 4.5});
  sim::RankReport rr;
  rr.rank = 0;
  rr.clock = 12.5;
  auto& pc = rr.stats.phase(static_cast<sim::Phase>(0));
  pc.msgs_sent = 10;
  pc.bytes_sent = 1000;
  pc.msgs_recv = 11;
  pc.bytes_recv = 1100;
  pc.comm_seconds = 0.25;
  pc.compute_seconds = 1.75;
  rr.faults.transient_slowdowns = 1;
  rr.faults.crashes = 1;
  sim::LinkStats ls;
  ls.retries = 4;
  ls.dup_discards = 2;
  ls.corruptions_detected = 1;
  rr.links.push_back(ls);
  r.machine.ranks.push_back(rr);
  sim::RankReport r2;
  r2.rank = 1;
  r2.clock = 11.5;
  r2.crashed = true;
  r2.crash_vtime = 4.5;
  r.machine.ranks.push_back(r2);

  r.analysis_report = "finding: none\nall clean\n";
  r.metrics_json = "{\n  \"counters\": {\n  },\n}\n";
  r.metrics_csv = "type,name,value,sum,min,max\n";
  r.timeline_csv = "iter,vtime\n0,0.5\n";
  return r;
}

TEST(ResultIo, HandCraftedRoundTripIsByteExact) {
  const auto r = sample_result();
  const std::string s = serialize_result(r);
  const PicResult back = parse_result(s);
  EXPECT_EQ(serialize_result(back), s);

  // Spot checks across field groups.
  EXPECT_EQ(back.total_seconds, r.total_seconds);
  EXPECT_EQ(back.hb_fingerprint, r.hb_fingerprint);
  EXPECT_EQ(back.phase_wall_us, r.phase_wall_us);
  ASSERT_EQ(back.iters.size(), 2u);
  EXPECT_TRUE(back.iters[1].redistributed);
  EXPECT_EQ(back.iters[1].violation_mask, 5u);
  ASSERT_EQ(back.energy_history.size(), 2u);
  EXPECT_EQ(back.energy_history[1].field, 1.0 / 3.0);
  ASSERT_EQ(back.machine.ranks.size(), 2u);
  EXPECT_EQ(back.machine.ranks[0].links.size(), 1u);
  EXPECT_EQ(back.machine.ranks[0].links[0].retries, 4u);
  EXPECT_TRUE(back.machine.ranks[1].crashed);
  EXPECT_EQ(back.machine.crashes.size(), 1u);
  EXPECT_EQ(back.metrics_json, r.metrics_json);
  EXPECT_EQ(back.timeline_csv, r.timeline_csv);
}

TEST(ResultIo, DefaultResultRoundTrips) {
  const PicResult r;
  const std::string s = serialize_result(r);
  EXPECT_EQ(serialize_result(parse_result(s)), s);
}

TEST(ResultIo, GoldenRoundTripOnRealRun) {
  // A real traced run with energy sampling and wire faults exercises every
  // serialized section with live data, including the exported metrics and
  // timeline blobs a cached sweep rehydrates.
  PicParams p;
  p.grid = mesh::GridDesc(32, 16);
  p.nranks = 8;
  p.dist = particles::Distribution::kGaussian;
  p.init.total = 2000;
  p.init.drift_ux = 0.12;
  p.iterations = 12;
  p.policy = "periodic:4";
  p.trace.enabled = true;
  p.sample_energy_every = 3;
  p.faults.corrupt_prob = 0.02;
  p.faults.duplicate_prob = 0.02;
  p.faults.max_retries = 10;
  const PicResult r = run_pic(p);
  ASSERT_TRUE(r.traced);
  ASSERT_FALSE(r.metrics_json.empty());
  ASSERT_FALSE(r.iters.empty());
  ASSERT_FALSE(r.energy_history.empty());

  const std::string s = serialize_result(r);
  const PicResult back = parse_result(s);
  EXPECT_EQ(serialize_result(back), s);
  EXPECT_EQ(back.total_seconds, r.total_seconds);
  EXPECT_EQ(back.final_particles, r.final_particles);
  EXPECT_EQ(back.metrics_json, r.metrics_json);
  EXPECT_EQ(back.metrics_csv, r.metrics_csv);
  EXPECT_EQ(back.timeline_csv, r.timeline_csv);

  // The rehydrated exports load through the trace-layer counterparts, so a
  // cached result yields working MetricsSnapshot/RedistTimeline objects
  // without re-simulation.
  const auto snap = trace::MetricsSnapshot::from_json(back.metrics_json);
  EXPECT_EQ(snap.to_json(), r.metrics_json);
  EXPECT_EQ(trace::MetricsSnapshot::from_csv(back.metrics_csv).to_csv(),
            r.metrics_csv);
  EXPECT_EQ(trace::RedistTimeline::from_csv(back.timeline_csv).to_csv(),
            r.timeline_csv);
}

TEST(ResultIo, MalformedInputThrows) {
  const std::string s = serialize_result(sample_result());
  EXPECT_THROW(parse_result(""), std::runtime_error);
  EXPECT_THROW(parse_result("picpar-result v0\n"), std::runtime_error);
  EXPECT_THROW(parse_result("garbage"), std::runtime_error);
  // Truncation at any section boundary.
  for (const std::size_t cut :
       {s.size() / 8, s.size() / 2, s.size() - 5, s.size() - 1})
    EXPECT_THROW(parse_result(std::string_view(s).substr(0, cut)),
                 std::runtime_error)
        << "cut at " << cut;
  // Trailing junk after the end marker.
  EXPECT_THROW(parse_result(s + "extra\n"), std::runtime_error);
}

}  // namespace
}  // namespace picpar::pic
