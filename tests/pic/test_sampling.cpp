// Energy-history sampling hook.
#include <gtest/gtest.h>

#include <cmath>

#include "pic/simulation.hpp"

namespace picpar::pic {
namespace {

PicParams params() {
  PicParams p;
  p.grid = mesh::GridDesc(16, 16);
  p.nranks = 4;
  p.dist = particles::Distribution::kUniform;
  p.init.total = 1024;
  p.iterations = 20;
  p.policy = "static";
  p.machine = sim::CostModel::zero();
  return p;
}

TEST(EnergySampling, OffByDefault) {
  const auto r = run_pic(params());
  EXPECT_TRUE(r.energy_history.empty());
}

TEST(EnergySampling, SamplesAtRequestedInterval) {
  auto p = params();
  p.sample_energy_every = 5;
  const auto r = run_pic(p);
  ASSERT_EQ(r.energy_history.size(), 4u);
  EXPECT_EQ(r.energy_history[0].iter, 4);
  EXPECT_EQ(r.energy_history[3].iter, 19);
}

TEST(EnergySampling, FinalSampleMatchesResultTotals) {
  auto p = params();
  p.sample_energy_every = 20;  // one sample, at the last iteration
  const auto r = run_pic(p);
  ASSERT_EQ(r.energy_history.size(), 1u);
  EXPECT_NEAR(r.energy_history[0].kinetic, r.kinetic_energy,
              1e-9 * std::max(1.0, r.kinetic_energy));
  EXPECT_NEAR(r.energy_history[0].field, r.field_energy,
              1e-9 * std::max(1.0, r.field_energy));
}

TEST(EnergySampling, ValuesArePositiveAndFinite) {
  auto p = params();
  p.init.vth = 0.05;
  p.sample_energy_every = 4;
  const auto r = run_pic(p);
  for (const auto& s : r.energy_history) {
    EXPECT_GT(s.kinetic, 0.0);
    EXPECT_GE(s.field, 0.0);
    EXPECT_TRUE(std::isfinite(s.field));
    EXPECT_TRUE(std::isfinite(s.kinetic));
  }
}

TEST(EnergySampling, DoesNotChangePhysics) {
  auto a = params();
  const auto ra = run_pic(a);
  auto b = params();
  b.sample_energy_every = 3;
  const auto rb = run_pic(b);
  EXPECT_EQ(ra.kinetic_energy, rb.kinetic_energy);
  EXPECT_EQ(ra.field_energy, rb.field_energy);
}

}  // namespace
}  // namespace picpar::pic
