// Fault-tolerant PIC runs: validation-only overhead, memory-fault detection
// with checkpoint rollback, transport recovery under wire corruption, and
// determinism of faulty runs.
#include <gtest/gtest.h>

#include "pic/simulation.hpp"

namespace picpar::pic {
namespace {

PicParams base_params() {
  PicParams p;
  p.grid = mesh::GridDesc(32, 16);
  p.nranks = 8;
  p.dist = particles::Distribution::kGaussian;
  p.init.total = 2048;
  p.init.drift_ux = 0.12;
  p.init.drift_uy = 0.07;
  p.iterations = 20;
  p.policy = "periodic:5";
  p.machine = sim::CostModel::cm5();
  return p;
}

void expect_same_result(const PicResult& a, const PicResult& b) {
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.kinetic_energy, b.kinetic_energy);
  EXPECT_EQ(a.field_energy, b.field_energy);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.violation_iterations, b.violation_iterations);
  EXPECT_EQ(a.final_particles, b.final_particles);
  ASSERT_EQ(a.iters.size(), b.iters.size());
  for (std::size_t i = 0; i < a.iters.size(); ++i) {
    EXPECT_EQ(a.iters[i].exec_seconds, b.iters[i].exec_seconds);
    EXPECT_EQ(a.iters[i].violation_mask, b.iters[i].violation_mask);
    EXPECT_EQ(a.iters[i].recovered, b.iters[i].recovered);
  }
}

TEST(Recovery, DisabledSubsystemMatchesPlainRun) {
  // Explicitly default-constructed fault/validation params must change
  // nothing: the subsystem is a zero-overhead abstraction when off.
  auto p = base_params();
  const auto plain = run_pic(p);
  p.faults = sim::FaultConfig{};
  p.validate = ValidationParams{};
  const auto off = run_pic(p);
  expect_same_result(plain, off);
  EXPECT_EQ(off.recoveries, 0);
  EXPECT_EQ(off.violation_iterations, 0);
}

TEST(Recovery, CleanRunPassesValidation) {
  auto p = base_params();
  p.validate.check_every = 1;
  p.validate.checkpoint_every = 5;
  p.validate.invariants.balance_tolerance = 2.0;
  p.validate.invariants.balance_slack = 64.0;
  const auto r = run_pic(p);
  EXPECT_EQ(r.violation_iterations, 0);
  EXPECT_EQ(r.recoveries, 0);
  EXPECT_EQ(r.final_particles, r.initial_particles);
}

TEST(Recovery, MemoryFaultTriggersRollbackAndConservesParticles) {
  auto p = base_params();
  p.iterations = 30;
  p.faults.seed = 99;
  p.faults.memory_fault_prob = 0.05;  // a handful of bit flips over the run
  p.validate.check_every = 1;
  p.validate.checkpoint_every = 1;
  const auto r = run_pic(p);

  // The injected flips must have been seen (position, momentum or key) and
  // at least one must have tripped the checker into a rollback.
  EXPECT_GT(r.machine.faults_total().memory_faults, 0u);
  EXPECT_GT(r.violation_iterations, 0);
  EXPECT_GE(r.recoveries, 1);
  // Rollback restores a full population: nothing lost, nothing duplicated.
  EXPECT_EQ(r.final_particles, r.initial_particles);
  // Recovered iterations are flagged and count as redistributions.
  bool saw_recovered = false;
  for (const auto& it : r.iters) {
    if (it.recovered) {
      saw_recovered = true;
      EXPECT_TRUE(it.redistributed);
      EXPECT_NE(it.violation_mask, 0u);
    }
  }
  EXPECT_TRUE(saw_recovered);
}

TEST(Recovery, WireCorruptionIsRecoveredTransparently) {
  auto p = base_params();
  const auto clean = run_pic(p);
  p.faults.corrupt_prob = 0.05;
  p.faults.max_retries = 20;
  const auto faulty = run_pic(p);

  const auto t = faulty.machine.transport_total();
  const auto f = faulty.machine.faults_total();
  EXPECT_GT(f.corrupted_deliveries, 0u);
  EXPECT_EQ(t.corruptions_detected, f.corrupted_deliveries)
      << "every injected wire corruption must be detected";
  EXPECT_EQ(t.retries, t.corruptions_detected);
  // Recovery is transparent to the application: identical physics, only
  // the virtual clock pays.
  EXPECT_EQ(faulty.kinetic_energy, clean.kinetic_energy);
  EXPECT_EQ(faulty.field_energy, clean.field_energy);
  EXPECT_GT(faulty.total_seconds, clean.total_seconds);
}

TEST(Recovery, FaultyRunsAreDeterministic) {
  auto p = base_params();
  p.faults.seed = 7;
  p.faults.corrupt_prob = 0.03;
  p.faults.duplicate_prob = 0.03;
  p.faults.latency_jitter_prob = 0.1;
  p.faults.latency_jitter_max_seconds = 1e-4;
  p.faults.memory_fault_prob = 0.03;
  p.faults.max_retries = 20;
  p.validate.check_every = 1;
  p.validate.checkpoint_every = 1;
  const auto a = run_pic(p);
  const auto b = run_pic(p);
  expect_same_result(a, b);
}

TEST(Recovery, DifferentSeedsDiverge) {
  auto p = base_params();
  p.faults.memory_fault_prob = 0.2;
  p.validate.check_every = 1;
  p.validate.checkpoint_every = 1;
  p.faults.seed = 1;
  const auto a = run_pic(p);
  p.faults.seed = 2;
  const auto b = run_pic(p);
  // Different fault streams should flip different bits; requiring identical
  // violation patterns would be astronomically unlikely.
  bool differs = a.violation_iterations != b.violation_iterations ||
                 a.total_seconds != b.total_seconds;
  for (std::size_t i = 0; !differs && i < a.iters.size(); ++i)
    differs = a.iters[i].violation_mask != b.iters[i].violation_mask;
  EXPECT_TRUE(differs);
}

TEST(Recovery, StragglerInflatesOverheadNotPhysics) {
  auto p = base_params();
  p.policy = "static";
  const auto clean = run_pic(p);
  p.faults.straggler_ranks = {3};
  p.faults.straggler_factor = 4.0;
  const auto slow = run_pic(p);
  EXPECT_GT(slow.total_seconds, clean.total_seconds);
  EXPECT_EQ(slow.kinetic_energy, clean.kinetic_energy);
  EXPECT_EQ(slow.final_particles, clean.final_particles);
}

TEST(Recovery, RecoveryBudgetIsRespected) {
  auto p = base_params();
  p.iterations = 30;
  p.faults.memory_fault_prob = 0.6;  // violations nearly every iteration
  p.validate.check_every = 1;
  p.validate.checkpoint_every = 1;
  p.validate.max_recoveries = 2;
  const auto r = run_pic(p);
  EXPECT_LE(r.recoveries, 2);
  EXPECT_GT(r.violation_iterations, r.recoveries);
}

}  // namespace
}  // namespace picpar::pic
