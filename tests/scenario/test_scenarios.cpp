// Scenario library (src/scenario): registry contents, injector determinism,
// per-scenario golden metrics, conservation under open boundaries, migrated
// scenarios' equivalence with the legacy dist path, sequential/parallel
// bit-identity for every scenario, and the pluggable balancer policies.
//
// Golden values are pinned from the reference configuration below; the
// engines are bit-deterministic (DESIGN.md §7), so an exact mismatch means
// scenario semantics changed — re-pin only if the change is intentional.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/balancer.hpp"
#include "pic/simulation.hpp"
#include "scenario/scenario.hpp"
#include "sfc/index_cache.hpp"
#include "sfc/simple_curves.hpp"
#include "sim/machine.hpp"

namespace picpar {
namespace {

using particles::ParticleArray;
using particles::ParticleRec;

/// run_pic folds PICPAR_CRASH_*/PICPAR_ANALYZE/PICPAR_TRACE* into the run
/// (the CI chaos job exports crash injection suite-wide), so every test
/// that pins exact results scrubs them and restores afterwards.
class ScenarioRun : public ::testing::Test {
protected:
  void SetUp() override {
    for (const char* k :
         {"PICPAR_CRASH_RANKS", "PICPAR_CRASH_PROB", "PICPAR_CRASH_MAX_T",
          "PICPAR_CRASH_LEASE", "PICPAR_ANALYZE", "PICPAR_TRACE",
          "PICPAR_TRACE_METRICS", "PICPAR_PARALLEL", "PICPAR_WORKERS"}) {
      const char* v = ::getenv(k);
      saved_.emplace_back(k,
                          v ? std::optional<std::string>(v) : std::nullopt);
      ::unsetenv(k);
    }
  }
  void TearDown() override {
    for (const auto& [k, v] : saved_) {
      if (v)
        ::setenv(k.c_str(), v->c_str(), 1);
      else
        ::unsetenv(k.c_str());
    }
  }

private:
  std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
};

/// The reference configuration all goldens in this file are pinned on.
pic::PicParams golden_params(const std::string& scenario) {
  pic::PicParams p;
  p.grid = mesh::GridDesc(32, 16);
  p.nranks = 8;
  p.scenario = scenario;
  p.init.total = 2048;
  p.init.drift_ux = 0.1;
  p.iterations = 12;
  p.policy = "periodic:4";
  return p;
}

// ---------------------------------------------------------------- registry

TEST(ScenarioRegistry, HoldsTheSixScenariosInOrder) {
  const std::vector<std::string> expected = {
      "uniform",          "irregular_beam", "two_stream",
      "weibel",           "beam_into_plasma", "moving_hotspot"};
  EXPECT_EQ(scenario::scenario_names(), expected);
  for (const auto& name : expected) {
    const auto* sc = scenario::find_scenario(name);
    ASSERT_NE(sc, nullptr) << name;
    EXPECT_EQ(sc->name, name);
    EXPECT_FALSE(sc->summary.empty()) << name;
    EXPECT_NE(sc->loadout, nullptr) << name;
    EXPECT_EQ(&scenario::get_scenario(name), sc);
  }
}

TEST(ScenarioRegistry, UnknownNamesAreRejected) {
  EXPECT_EQ(scenario::find_scenario("warp_core"), nullptr);
  EXPECT_THROW(scenario::get_scenario("warp_core"), std::invalid_argument);
  EXPECT_THROW(scenario::get_scenario(""), std::invalid_argument);
}

TEST(ScenarioRegistry, LoadoutsProduceTheRequestedPopulation) {
  const mesh::GridDesc grid(32, 16);
  particles::InitParams init;
  init.total = 1000;
  for (const auto& name : scenario::scenario_names()) {
    const auto& sc = scenario::get_scenario(name);
    const auto p = sc.loadout(grid, init);
    EXPECT_EQ(p.size(), init.total) << name;
    EXPECT_EQ(p.nspecies(), sc.species.size()) << name;
    // Multi-species loadouts seed key = species id (the low bits of the
    // species-in-key encoding); ids must stay inside the table.
    for (std::size_t i = 0; i < p.size(); ++i)
      ASSERT_LT(p.key[i], p.nspecies()) << name;
  }
}

TEST(ScenarioRegistry, MultiSpeciesTablesAreWellFormed) {
  const auto& weibel = scenario::get_scenario("weibel");
  ASSERT_EQ(weibel.species.size(), 2u);
  EXPECT_GT(weibel.species[1].mass, weibel.species[0].mass)
      << "weibel ions must be heavier than its electrons";

  const auto& beam = scenario::get_scenario("beam_into_plasma");
  ASSERT_EQ(beam.species.size(), 2u);
  EXPECT_EQ(beam.boundary, scenario::Boundary::kAbsorbX);
  EXPECT_TRUE(beam.injector.enabled);
  EXPECT_EQ(beam.injector.species, 1);

  // A loadout's species table carries real charges: the weibel pair is a
  // neutral plasma (electron charge < 0 < ion charge).
  const mesh::GridDesc grid(32, 16);
  particles::InitParams init;
  init.total = 512;
  const auto wp = weibel.loadout(grid, init);
  EXPECT_LT(wp.species()[0].charge, 0.0);
  EXPECT_GT(wp.species()[1].charge, 0.0);
}

// ---------------------------------------------------------------- injector

TEST(ScenarioInjector, BatchesAreDeterministicPerIteration) {
  const auto& sc = scenario::get_scenario("beam_into_plasma");
  const mesh::GridDesc grid(32, 16);
  particles::InitParams init;
  init.total = 2048;
  const auto a = scenario::injector_batch(sc, grid, init, 3);
  const auto b = scenario::injector_batch(sc, grid, init, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
    EXPECT_EQ(a[i].ux, b[i].ux);
    EXPECT_EQ(a[i].uy, b[i].uy);
    EXPECT_EQ(a[i].uz, b[i].uz);
    EXPECT_EQ(a[i].key, b[i].key);
  }
  // Different iterations draw from different streams.
  const auto c = scenario::injector_batch(sc, grid, init, 4);
  ASSERT_EQ(c.size(), a.size());
  EXPECT_NE(c.front().x, a.front().x);
}

TEST(ScenarioInjector, BatchMatchesTheSpec) {
  const auto& sc = scenario::get_scenario("beam_into_plasma");
  const mesh::GridDesc grid(32, 16);
  particles::InitParams init;
  init.total = 2048;
  const auto rate = scenario::injector_rate(sc, init.total);
  EXPECT_GE(rate, 1u);
  const auto batch = scenario::injector_batch(sc, grid, init, 0);
  ASSERT_EQ(batch.size(), rate);
  for (const auto& r : batch) {
    // Emitted at the x = 0 edge strip, drifting into the domain, tagged
    // with the injector's species id (the caller finishes the encoding).
    EXPECT_GE(r.x, 0.0);
    EXPECT_LT(r.x, sc.injector.edge_fraction * grid.lx);
    EXPECT_GE(r.y, 0.0);
    EXPECT_LT(r.y, grid.ly);
    EXPECT_GT(r.ux, 0.0);
    EXPECT_EQ(r.key, static_cast<std::uint64_t>(sc.injector.species));
  }
}

TEST(ScenarioInjector, DisabledInjectorEmitsNothing) {
  const auto& sc = scenario::get_scenario("uniform");
  EXPECT_EQ(scenario::injector_rate(sc, 100000), 0u);
  const mesh::GridDesc grid(32, 16);
  particles::InitParams init;
  init.total = 2048;
  EXPECT_TRUE(scenario::injector_batch(sc, grid, init, 0).empty());
}

// ------------------------------------------------------------------ golden

struct GoldenRow {
  const char* scenario;
  std::uint64_t final_particles;
  std::uint64_t emitted;
  std::uint64_t absorbed;
  double kinetic_energy;
  double field_energy;
};

TEST_F(ScenarioRun, GoldenMetricsPerScenario) {
  // Pinned from the reference configuration (grid 32x16, 8 ranks, 2048
  // particles, 12 iterations, periodic:4, Hilbert). Exact equality: these
  // runs are bit-deterministic.
  const GoldenRow rows[] = {
      {"uniform", 2048, 0, 0, 7.2737573734453793, 10.369026060201929},
      {"irregular_beam", 2048, 0, 0, 8.1636000717653694, 9.5699722724070586},
      {"two_stream", 2048, 0, 0, 45.063213855838413, 12.341271680836153},
      {"weibel", 2048, 0, 0, 35.98982843861419, 0.70866133798696407},
      {"beam_into_plasma", 2040, 48, 56, 24.651169857100268,
       17.859587706440383},
      {"moving_hotspot", 2048, 0, 0, 7.5731547354402968, 10.383951158735632},
  };
  for (const auto& row : rows) {
    SCOPED_TRACE(row.scenario);
    const auto r = pic::run_pic(golden_params(row.scenario));
    EXPECT_EQ(r.initial_particles, 2048u);
    EXPECT_EQ(r.final_particles, row.final_particles);
    EXPECT_EQ(r.emitted_particles, row.emitted);
    EXPECT_EQ(r.absorbed_particles, row.absorbed);
    EXPECT_EQ(r.kinetic_energy, row.kinetic_energy);
    EXPECT_EQ(r.field_energy, row.field_energy);
    // The Lagrangian balancer equalizes counts exactly.
    EXPECT_EQ(r.final_imbalance, 1.0);
    EXPECT_EQ(r.iters.size(), 12u);
  }
}

TEST_F(ScenarioRun, InjectionConservesParticles) {
  const auto p = golden_params("beam_into_plasma");
  const auto r = pic::run_pic(p);
  // Charge/particle conservation under open boundaries: every particle is
  // accounted for as initial + emitted - absorbed.
  EXPECT_EQ(r.initial_particles + r.emitted_particles - r.absorbed_particles,
            r.final_particles);
  const auto& sc = scenario::get_scenario("beam_into_plasma");
  EXPECT_EQ(r.emitted_particles,
            scenario::injector_rate(sc, p.init.total) *
                static_cast<std::uint64_t>(p.iterations));
  EXPECT_GT(r.absorbed_particles, 0u)
      << "the absorbing +x boundary must see the drifting beam";
}

TEST_F(ScenarioRun, FieldSeedAndDriverActuallyActOnTheRun) {
  // weibel minus its B seed and moving_hotspot minus its driver would be
  // other scenarios entirely; cheapest check that the hooks fire: their
  // results differ from the plain uniform run's at identical init.
  const auto hotspot = pic::run_pic(golden_params("moving_hotspot"));
  const auto uniform = pic::run_pic(golden_params("uniform"));
  EXPECT_NE(hotspot.kinetic_energy, uniform.kinetic_energy);
  EXPECT_NE(hotspot.field_energy, uniform.field_energy);
}

// --------------------------------------------------------------- migration

TEST_F(ScenarioRun, MigratedScenariosMatchTheLegacyDistPath) {
  // The three migrated scenarios delegate to the same generators the legacy
  // dist field selects, with every hook disabled — the results must be
  // bit-identical, so existing goldens survive the migration.
  const std::pair<const char*, particles::Distribution> pairs[] = {
      {"uniform", particles::Distribution::kUniform},
      {"irregular_beam", particles::Distribution::kGaussian},
      {"two_stream", particles::Distribution::kTwoStream},
  };
  for (const auto& [name, dist] : pairs) {
    SCOPED_TRACE(name);
    const auto via_scenario = pic::run_pic(golden_params(name));
    auto legacy = golden_params(name);
    legacy.scenario.clear();
    legacy.dist = dist;
    const auto via_dist = pic::run_pic(legacy);
    EXPECT_EQ(via_scenario.total_seconds, via_dist.total_seconds);
    EXPECT_EQ(via_scenario.compute_seconds, via_dist.compute_seconds);
    EXPECT_EQ(via_scenario.kinetic_energy, via_dist.kinetic_energy);
    EXPECT_EQ(via_scenario.field_energy, via_dist.field_energy);
    EXPECT_EQ(via_scenario.total_charge, via_dist.total_charge);
    EXPECT_EQ(via_scenario.final_particles, via_dist.final_particles);
    EXPECT_EQ(via_scenario.redistributions, via_dist.redistributions);
  }
}

// ------------------------------------------------------------------- modes

void expect_identical_runs(const pic::PicResult& a, const pic::PicResult& b) {
  ASSERT_EQ(a.iters.size(), b.iters.size());
  for (std::size_t i = 0; i < a.iters.size(); ++i) {
    EXPECT_EQ(a.iters[i].exec_seconds, b.iters[i].exec_seconds);
    EXPECT_EQ(a.iters[i].redistributed, b.iters[i].redistributed);
    EXPECT_EQ(a.iters[i].scatter_max_sent_bytes,
              b.iters[i].scatter_max_sent_bytes);
  }
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.compute_seconds, b.compute_seconds);
  EXPECT_EQ(a.kinetic_energy, b.kinetic_energy);
  EXPECT_EQ(a.field_energy, b.field_energy);
  EXPECT_EQ(a.total_charge, b.total_charge);
  EXPECT_EQ(a.initial_particles, b.initial_particles);
  EXPECT_EQ(a.final_particles, b.final_particles);
  EXPECT_EQ(a.emitted_particles, b.emitted_particles);
  EXPECT_EQ(a.absorbed_particles, b.absorbed_particles);
  EXPECT_EQ(a.final_imbalance, b.final_imbalance);
}

TEST_F(ScenarioRun, EveryScenarioIsBitIdenticalSequentialVsParallel) {
  for (const auto& name : scenario::scenario_names()) {
    SCOPED_TRACE(name);
    auto p = golden_params(name);
    const auto seq = pic::run_pic(p);
    p.exec.parallel = true;
    p.exec.workers = 4;
    const auto par = pic::run_pic(p);
    expect_identical_runs(seq, par);
  }
}

// --------------------------------------------------------------- balancers

TEST(ScenarioBalancer, FactoryParsesSpecs) {
  EXPECT_EQ(core::make_balancer("")->name(), "lagrange");
  EXPECT_EQ(core::make_balancer("lagrange")->name(), "lagrange");
  EXPECT_TRUE(core::make_balancer("lagrange")->lagrangian());
  EXPECT_EQ(core::make_balancer("eulerian")->name(), "eulerian");
  EXPECT_FALSE(core::make_balancer("eulerian")->lagrangian());
  EXPECT_EQ(core::make_balancer("sfcweight")->name(), "sfcweight");
  EXPECT_EQ(core::make_balancer("sfcweight:2.5")->name(), "sfcweight:2.5");
  EXPECT_THROW(core::make_balancer("zoltan"), std::invalid_argument);
  EXPECT_THROW(core::make_balancer("sfcweight:x"), std::invalid_argument);
  EXPECT_THROW(core::make_balancer("sfcweight:-1"), std::invalid_argument);
  EXPECT_THROW(core::make_balancer("sfcweight:0"), std::invalid_argument);
}

TEST(ScenarioBalancer, LagrangianNeverComputesBounds) {
  core::LagrangianBalancer b;
  sim::Machine m(2, sim::CostModel::zero());
  m.run([&](sim::Comm& c) {
    ParticleArray p(-1.0, 1.0);
    sfc::RowMajorCurve curve(4, 4);
    sfc::IndexCache cells(curve, 4, 4);
    core::SortWork w;
    EXPECT_THROW(b.compute_bounds(c, p, cells, w), std::logic_error);
  });
}

TEST(ScenarioBalancer, WeightedBoundsAreCellAlignedAndRankIdentical) {
  // Two species (stride 2) on a 4x4 row-major grid, population piled onto
  // the first cells: bounds must land on cell edges (low bits = stride-1),
  // be non-decreasing, end at the max key, and agree across ranks.
  constexpr int kRanks = 4;
  core::EulerianBalancer bal;
  std::vector<std::vector<std::uint64_t>> per_rank(kRanks);
  sim::Machine m(kRanks, sim::CostModel::zero());
  m.run([&](sim::Comm& c) {
    ParticleArray p(std::vector<particles::Species>{{-1.0, 1.0}, {1.0, 4.0}});
    // 8 particles per rank, all on cells 0..3, alternating species.
    for (std::uint64_t i = 0; i < 8; ++i) {
      ParticleRec r;
      r.key = (i % 4) * 2 + (i % 2);
      p.push_back(r);
    }
    sfc::RowMajorCurve curve(4, 4);
    sfc::IndexCache cells(curve, 4, 4);
    core::SortWork w;
    per_rank[static_cast<std::size_t>(c.rank())] =
        bal.compute_bounds(c, p, cells, w);
  });
  const auto& bounds = per_rank[0];
  ASSERT_EQ(bounds.size(), static_cast<std::size_t>(kRanks));
  for (int r = 1; r < kRanks; ++r) EXPECT_EQ(per_rank[r], bounds);
  for (std::size_t r = 0; r + 1 < bounds.size(); ++r) {
    EXPECT_LE(bounds[r], bounds[r + 1]);
    EXPECT_EQ(bounds[r] % 2, 1u) << "bound " << r << " not cell-aligned";
  }
  EXPECT_EQ(bounds.back(), std::numeric_limits<std::uint64_t>::max());
}

TEST_F(ScenarioRun, WeightedBalancersRunConserveAndStayDeterministic) {
  for (const char* spec : {"eulerian", "sfcweight", "sfcweight:4"}) {
    SCOPED_TRACE(spec);
    auto p = golden_params("");
    p.scenario.clear();
    p.dist = particles::Distribution::kGaussian;
    p.partitioner.balancer = spec;
    const auto seq = pic::run_pic(p);
    EXPECT_EQ(seq.final_particles, 2048u);
    EXPECT_EQ(seq.iters.size(), 12u);
    // Cell-aligned bounds trade exact count balance for alignment; the
    // blob's central cells bound how uneven the split can get.
    EXPECT_GE(seq.final_imbalance, 1.0);
    EXPECT_LT(seq.final_imbalance, 3.0);
    p.exec.parallel = true;
    p.exec.workers = 4;
    const auto par = pic::run_pic(p);
    expect_identical_runs(seq, par);
  }
}

TEST_F(ScenarioRun, WeightedBalancersComposeWithInjectionScenarios) {
  auto p = golden_params("beam_into_plasma");
  p.partitioner.balancer = "eulerian";
  const auto r = pic::run_pic(p);
  EXPECT_EQ(r.initial_particles + r.emitted_particles - r.absorbed_particles,
            r.final_particles);
}

TEST_F(ScenarioRun, AlphaBiasesTowardCellBalance) {
  // Larger alpha weights mesh cells over particles, so on a concentrated
  // blob the particle-count imbalance must grow with alpha.
  auto run_with = [](const char* spec) {
    auto p = golden_params("");
    p.dist = particles::Distribution::kGaussian;
    p.partitioner.balancer = spec;
    return pic::run_pic(p).final_imbalance;
  };
  EXPECT_LT(run_with("eulerian"), run_with("sfcweight:4"));
}

}  // namespace
}  // namespace picpar
