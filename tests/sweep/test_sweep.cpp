// The sweep driver end to end: fingerprint dedup, cold/warm cache
// behavior (warm rerun performs zero simulations, byte-identical merged
// output), worker-count independence, corrupt-entry recompute, and the
// merge/provenance artifacts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sweep/cache.hpp"
#include "sweep/sweep.hpp"

namespace picpar::sweep {
namespace {

namespace fs = std::filesystem;

/// Sweep results must be predictable here (exact particle counts, no
/// crashes), so scrub the chaos-job environment overrides — they fold
/// into fingerprints and run behavior by design.
class SweepTest : public ::testing::Test {
protected:
  void SetUp() override {
    for (const char* k :
         {"PICPAR_CRASH_RANKS", "PICPAR_CRASH_PROB", "PICPAR_CRASH_MAX_T",
          "PICPAR_CRASH_LEASE", "PICPAR_ANALYZE", "PICPAR_TRACE",
          "PICPAR_TRACE_METRICS"}) {
      const char* v = ::getenv(k);
      saved_.emplace_back(k,
                          v ? std::optional<std::string>(v) : std::nullopt);
      ::unsetenv(k);
    }
    dir_ = (fs::path(::testing::TempDir()) /
            ("picpar_sweep_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    fs::remove_all(dir_);
    for (const auto& [k, v] : saved_) {
      if (v)
        ::setenv(k.c_str(), v->c_str(), 1);
      else
        ::unsetenv(k.c_str());
    }
  }

  std::string dir_;

private:
  std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
};

pic::PicParams tiny_params(std::uint64_t seed) {
  pic::PicParams p;
  p.grid = mesh::GridDesc(16, 8);
  p.nranks = 4;
  p.init.total = 400;
  p.init.seed = seed;
  p.iterations = 5;
  p.policy = "periodic:2";
  return p;
}

std::vector<Job> tiny_jobs() {
  return {{"seed1", tiny_params(1)},
          {"seed2", tiny_params(2)},
          {"seed1-again", tiny_params(1)}};
}

TEST_F(SweepTest, DeduplicatesByFingerprint) {
  SweepOptions opt;  // uncached, serial
  const auto report = run_sweep(tiny_jobs(), opt);
  ASSERT_EQ(report.outcomes.size(), 3u);
  EXPECT_EQ(report.stats.jobs, 3u);
  EXPECT_EQ(report.stats.unique, 2u);
  EXPECT_EQ(report.stats.simulated, 2u);
  EXPECT_EQ(report.stats.hits, 0u);

  EXPECT_EQ(report.outcomes[0].source, Source::kSimulated);
  EXPECT_EQ(report.outcomes[1].source, Source::kSimulated);
  EXPECT_EQ(report.outcomes[2].source, Source::kDedup);
  EXPECT_EQ(report.outcomes[2].fingerprint, report.outcomes[0].fingerprint);
  EXPECT_EQ(report.outcomes[2].result.total_seconds,
            report.outcomes[0].result.total_seconds);
  EXPECT_NE(report.outcomes[1].fingerprint, report.outcomes[0].fingerprint);
  // Real simulations happened.
  EXPECT_GT(report.outcomes[0].result.total_seconds, 0.0);
  EXPECT_EQ(report.outcomes[0].result.final_particles, 400u);
}

TEST_F(SweepTest, WarmCacheRerunPerformsZeroSimulations) {
  SweepOptions opt;
  opt.cache_dir = dir_;
  const auto cold = run_sweep(tiny_jobs(), opt);
  EXPECT_EQ(cold.stats.simulated, 2u);
  EXPECT_EQ(cold.stats.hits, 0u);

  const auto warm = run_sweep(tiny_jobs(), opt);
  EXPECT_EQ(warm.stats.simulated, 0u);
  EXPECT_EQ(warm.stats.hits, 2u);
  EXPECT_EQ(warm.outcomes[0].source, Source::kCache);
  EXPECT_EQ(warm.outcomes[2].source, Source::kDedup);

  // The comparison artifacts are byte-identical cold vs warm; only the
  // provenance CSV differs.
  EXPECT_EQ(comparison_csv(warm), comparison_csv(cold));
  EXPECT_EQ(comparison_json(warm), comparison_json(cold));
  EXPECT_EQ(comparison_table(warm), comparison_table(cold));
  EXPECT_NE(provenance_csv(warm), provenance_csv(cold));
}

TEST_F(SweepTest, WorkerCountNeverChangesTheMergedOutput) {
  std::vector<Job> jobs;
  for (std::uint64_t s = 1; s <= 5; ++s)
    jobs.push_back({"seed" + std::to_string(s), tiny_params(s)});

  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions wide;
  wide.jobs = 4;
  const auto a = run_sweep(jobs, serial);
  const auto b = run_sweep(jobs, wide);
  EXPECT_EQ(comparison_csv(a), comparison_csv(b));
  EXPECT_EQ(comparison_json(a), comparison_json(b));
  EXPECT_EQ(provenance_csv(a), provenance_csv(b));
}

TEST_F(SweepTest, CorruptEntryIsRecomputedAndRewritten) {
  SweepOptions opt;
  opt.cache_dir = dir_;
  const auto cold = run_sweep(tiny_jobs(), opt);

  // Tear one entry behind the cache's back.
  const std::string victim =
      (fs::path(dir_) / (cold.outcomes[0].fingerprint + ".entry")).string();
  {
    std::ofstream f(victim, std::ios::binary | std::ios::trunc);
    f << "picpar-cache v1\ngarbage";
  }

  const auto again = run_sweep(tiny_jobs(), opt);
  EXPECT_EQ(again.stats.corrupt, 1u);
  EXPECT_EQ(again.stats.simulated, 1u);
  EXPECT_EQ(again.stats.hits, 1u);
  EXPECT_TRUE(again.outcomes[0].corrupt_replaced);
  EXPECT_EQ(comparison_csv(again), comparison_csv(cold));

  // The recompute re-sealed the entry: third pass is all hits.
  const auto warm = run_sweep(tiny_jobs(), opt);
  EXPECT_EQ(warm.stats.simulated, 0u);
  EXPECT_EQ(warm.stats.corrupt, 0u);
}

TEST_F(SweepTest, CachedResultRoundTripsFullFidelity) {
  SweepOptions opt;
  opt.cache_dir = dir_;
  auto p = tiny_params(1);
  p.trace.enabled = true;
  p.sample_energy_every = 2;
  const auto cold = run_sweep({{"traced", p}}, opt);
  const auto warm = run_sweep({{"traced", p}}, opt);
  ASSERT_EQ(warm.stats.hits, 1u);

  const auto& a = cold.outcomes[0].result;
  const auto& b = warm.outcomes[0].result;
  EXPECT_EQ(b.total_seconds, a.total_seconds);
  EXPECT_EQ(b.metrics_json, a.metrics_json);
  EXPECT_EQ(b.metrics_csv, a.metrics_csv);
  EXPECT_EQ(b.timeline_csv, a.timeline_csv);
  EXPECT_EQ(b.energy_history.size(), a.energy_history.size());
  ASSERT_EQ(b.machine.ranks.size(), a.machine.ranks.size());
  for (std::size_t i = 0; i < a.machine.ranks.size(); ++i)
    EXPECT_EQ(b.machine.ranks[i].clock, a.machine.ranks[i].clock);
}

TEST_F(SweepTest, MaxEntriesTrimsAfterTheSweep) {
  SweepOptions opt;
  opt.cache_dir = dir_;
  opt.max_entries = 2;
  std::vector<Job> jobs;
  for (std::uint64_t s = 1; s <= 4; ++s)
    jobs.push_back({"seed" + std::to_string(s), tiny_params(s)});
  const auto report = run_sweep(jobs, opt);
  EXPECT_EQ(report.stats.evicted, 2u);
  ResultCache cache(dir_);
  EXPECT_EQ(cache.entries(), 2u);
}

TEST_F(SweepTest, ArtifactShapes) {
  SweepOptions opt;
  const auto report = run_sweep({{"only", tiny_params(1)}}, opt);

  const std::string csv = comparison_csv(report);
  EXPECT_EQ(csv.substr(0, 18), "label,fingerprint,");
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);  // header + row
  EXPECT_NE(csv.find("\nonly,"), std::string::npos);

  const std::string prov = provenance_csv(report);
  EXPECT_EQ(prov, "label,fingerprint,source,corrupt_replaced\nonly," +
                      report.outcomes[0].fingerprint + ",simulated,0\n");

  const std::string json = comparison_json(report);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"label\": \"only\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST_F(SweepTest, EmptyJobListIsANoop) {
  SweepOptions opt;
  opt.cache_dir = dir_;
  const auto report = run_sweep({}, opt);
  EXPECT_TRUE(report.outcomes.empty());
  EXPECT_EQ(report.stats.jobs, 0u);
  EXPECT_EQ(comparison_csv(report),
            comparison_csv(report));  // artifacts still render
}

}  // namespace
}  // namespace picpar::sweep
