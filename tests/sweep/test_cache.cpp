// ResultCache: hit/miss/eviction, torn-write safety (corrupt and truncated
// entries fall back to recompute, never crash), and concurrent writers
// sharing one directory never tearing each other's entries.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "pic/result_io.hpp"
#include "sweep/cache.hpp"

namespace picpar::sweep {
namespace {

namespace fs = std::filesystem;

class CacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("picpar_cache_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

/// Distinct fingerprints for test entries (16 lowercase hex).
std::string fp(unsigned i) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016x", i);
  return std::string(buf, 16);
}

pic::PicResult result_with_total(double total) {
  pic::PicResult r;
  r.total_seconds = total;
  r.final_particles = 1234;
  return r;
}

std::string entry_file(const std::string& dir, const std::string& f) {
  return (fs::path(dir) / (f + ".entry")).string();
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

void spew(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << text;
}

TEST_F(CacheTest, MissThenStoreThenHit) {
  ResultCache cache(dir_);
  pic::PicResult out;
  EXPECT_EQ(cache.load(fp(1), out), CacheLoad::kMiss);
  EXPECT_EQ(cache.entries(), 0u);

  ASSERT_TRUE(cache.store(fp(1), "params=demo\n", result_with_total(2.5)));
  EXPECT_EQ(cache.load(fp(1), out), CacheLoad::kHit);
  EXPECT_EQ(out.total_seconds, 2.5);
  EXPECT_EQ(out.final_particles, 1234u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.params_text(fp(1)), "params=demo\n");
  EXPECT_EQ(cache.fingerprints(), std::vector<std::string>{fp(1)});
}

TEST_F(CacheTest, StoreIsLastWriterWins) {
  ResultCache cache(dir_);
  ASSERT_TRUE(cache.store(fp(1), "p\n", result_with_total(1.0)));
  ASSERT_TRUE(cache.store(fp(1), "p\n", result_with_total(7.0)));
  pic::PicResult out;
  ASSERT_EQ(cache.load(fp(1), out), CacheLoad::kHit);
  EXPECT_EQ(out.total_seconds, 7.0);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST_F(CacheTest, RejectsBadFingerprints) {
  ResultCache cache(dir_);
  pic::PicResult out;
  EXPECT_FALSE(cache.store("short", "p\n", out));
  EXPECT_FALSE(cache.store("../../../etc/passwd", "p\n", out));
  EXPECT_FALSE(cache.store("ABCDEF0123456789", "p\n", out));  // uppercase
}

TEST_F(CacheTest, TruncatedEntryIsCorruptNotCrash) {
  ResultCache cache(dir_);
  ASSERT_TRUE(cache.store(fp(1), "p\n", result_with_total(1.0)));
  const std::string path = entry_file(dir_, fp(1));
  const std::string full = slurp(path);

  // Every truncation point — including mid-seal — must read as corrupt.
  for (const std::size_t cut :
       {std::size_t{0}, full.size() / 4, full.size() / 2, full.size() - 10,
        full.size() - 1}) {
    spew(path, full.substr(0, cut));
    pic::PicResult out;
    EXPECT_EQ(cache.load(fp(1), out), CacheLoad::kCorrupt) << "cut " << cut;
  }
  spew(path, full);
  pic::PicResult out;
  EXPECT_EQ(cache.load(fp(1), out), CacheLoad::kHit);
}

TEST_F(CacheTest, FlippedByteFailsTheSeal) {
  ResultCache cache(dir_);
  ASSERT_TRUE(cache.store(fp(1), "p\n", result_with_total(1.0)));
  const std::string path = entry_file(dir_, fp(1));
  const std::string full = slurp(path);
  for (const std::size_t at :
       {std::size_t{0}, full.size() / 3, full.size() / 2, full.size() - 2}) {
    std::string bad = full;
    bad[at] = bad[at] == 'x' ? 'y' : 'x';
    spew(path, bad);
    pic::PicResult out;
    EXPECT_EQ(cache.load(fp(1), out), CacheLoad::kCorrupt) << "byte " << at;
  }
}

TEST_F(CacheTest, WrongFingerprintEchoIsCorrupt) {
  ResultCache cache(dir_);
  ASSERT_TRUE(cache.store(fp(1), "p\n", result_with_total(1.0)));
  // A validly sealed entry copied under the wrong name must not hit.
  fs::copy_file(entry_file(dir_, fp(1)), entry_file(dir_, fp(2)));
  pic::PicResult out;
  EXPECT_EQ(cache.load(fp(2), out), CacheLoad::kCorrupt);
}

TEST_F(CacheTest, TrimEvictsOldestFirst) {
  ResultCache cache(dir_);
  for (unsigned i = 0; i < 5; ++i)
    ASSERT_TRUE(cache.store(fp(i), "p\n", result_with_total(i)));
  // Pin a strictly increasing mtime order (filesystems may round to the
  // same tick when stores are fast).
  const auto base = fs::last_write_time(entry_file(dir_, fp(0)));
  for (unsigned i = 0; i < 5; ++i)
    fs::last_write_time(entry_file(dir_, fp(i)),
                        base + std::chrono::seconds(i));

  EXPECT_EQ(cache.trim(10), 0u);
  EXPECT_EQ(cache.entries(), 5u);
  EXPECT_EQ(cache.trim(2), 3u);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.fingerprints(), (std::vector<std::string>{fp(3), fp(4)}));
}

TEST_F(CacheTest, TrimTieBreaksByName) {
  ResultCache cache(dir_);
  for (unsigned i = 0; i < 4; ++i)
    ASSERT_TRUE(cache.store(fp(i), "p\n", result_with_total(i)));
  const auto base = fs::last_write_time(entry_file(dir_, fp(0)));
  for (unsigned i = 0; i < 4; ++i)
    fs::last_write_time(entry_file(dir_, fp(i)), base);  // all equal
  EXPECT_EQ(cache.trim(2), 2u);
  EXPECT_EQ(cache.fingerprints(), (std::vector<std::string>{fp(2), fp(3)}));
}

TEST_F(CacheTest, ConcurrentWritersNeverTearEntries) {
  // Hammer a small fingerprint set from several writers while readers
  // poll: every load must be a miss or a sealed hit with one of the
  // written payloads — kCorrupt would mean a reader saw a torn entry.
  ResultCache cache(dir_);
  constexpr unsigned kFps = 4;
  constexpr int kWriters = 4;
  constexpr int kRounds = 25;
  std::atomic<bool> torn{false};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w)
    threads.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round)
        for (unsigned i = 0; i < kFps; ++i)
          cache.store(fp(i), "p\n",
                      result_with_total(static_cast<double>(w * kRounds + round)));
    });
  std::vector<std::thread> readers;
  for (int rd = 0; rd < 2; ++rd)
    readers.emplace_back([&] {
      while (!stop.load()) {
        for (unsigned i = 0; i < kFps; ++i) {
          pic::PicResult out;
          if (cache.load(fp(i), out) == CacheLoad::kCorrupt) torn.store(true);
        }
      }
    });
  for (auto& t : threads) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_FALSE(torn.load());
  EXPECT_EQ(cache.entries(), kFps);
  for (unsigned i = 0; i < kFps; ++i) {
    pic::PicResult out;
    EXPECT_EQ(cache.load(fp(i), out), CacheLoad::kHit);
  }
  // No leftover temp files once all writers are done.
  std::size_t stray = 0;
  for (const auto& e : fs::directory_iterator(dir_))
    if (e.path().extension() != ".entry") ++stray;
  EXPECT_EQ(stray, 0u);
}

TEST_F(CacheTest, UncreatableDirectoryThrows) {
  const std::string file = (fs::path(::testing::TempDir()) /
                            "picpar_cache_blocker").string();
  spew(file, "not a directory");
  EXPECT_THROW(ResultCache inner(file + "/sub"), std::runtime_error);
  fs::remove(file);
}

}  // namespace
}  // namespace picpar::sweep
