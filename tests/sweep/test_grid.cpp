// Grid-file parsing and deterministic cross-product expansion.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sweep/grid.hpp"

namespace picpar::sweep {
namespace {

TEST(SweepGridParse, EmptyTextYieldsDefaults) {
  const SweepGrid g = parse_grid("");
  EXPECT_EQ(g.scenario, std::vector<std::string>{"uniform"});
  EXPECT_EQ(g.mesh, std::vector<std::string>{"128x64"});
  EXPECT_EQ(g.particles, std::vector<std::uint64_t>{20000});
  EXPECT_EQ(g.ranks, std::vector<int>{32});
  EXPECT_EQ(g.curve, std::vector<std::string>{"hilbert"});
  EXPECT_EQ(g.policy, std::vector<std::string>{"sar"});
  EXPECT_EQ(g.seed, std::vector<std::uint64_t>{1});
  EXPECT_EQ(g.iterations, std::vector<int>{60});
}

TEST(SweepGridParse, ParsesAxesCommentsAndWhitespace) {
  const SweepGrid g = parse_grid(
      "# a comment\n"
      "\n"
      "  mesh  =  64x32 , 128x64 \n"
      "policy = static, periodic:10, sar\n"
      "ranks=8,16\r\n"
      "seed = 3\n");
  EXPECT_EQ(g.mesh, (std::vector<std::string>{"64x32", "128x64"}));
  EXPECT_EQ(g.policy,
            (std::vector<std::string>{"static", "periodic:10", "sar"}));
  EXPECT_EQ(g.ranks, (std::vector<int>{8, 16}));
  EXPECT_EQ(g.seed, std::vector<std::uint64_t>{3});
  EXPECT_EQ(g.scenario, std::vector<std::string>{"uniform"});  // untouched
}

TEST(SweepGridParse, RejectsMalformedInput) {
  EXPECT_THROW(parse_grid("mesh 64x32\n"), std::runtime_error);  // no '='
  EXPECT_THROW(parse_grid("wormhole = 1\n"), std::runtime_error);
  EXPECT_THROW(parse_grid("ranks = 8\nranks = 16\n"), std::runtime_error);
  EXPECT_THROW(parse_grid("ranks = 8,,16\n"), std::runtime_error);
  EXPECT_THROW(parse_grid("ranks = \n"), std::runtime_error);
  EXPECT_THROW(parse_grid("ranks = eight\n"), std::runtime_error);
  EXPECT_THROW(parse_grid("particles = -5\n"), std::runtime_error);
}

TEST(SweepGridExpand, CrossProductInDeclaredOrder) {
  SweepGrid g;
  g.scenario = {"uniform", "irregular"};
  g.policy = {"static", "sar"};
  g.seed = {1, 2};
  g.mesh = {"32x16"};
  g.particles = {1000};
  g.ranks = {4};
  g.iterations = {5};
  const auto jobs = expand_grid(g);
  ASSERT_EQ(jobs.size(), 8u);
  // scenario outermost, then policy, seed innermost.
  EXPECT_EQ(jobs[0].label, "uniform/32x16/p1000/r4/hilbert/static/s1/i5");
  EXPECT_EQ(jobs[1].label, "uniform/32x16/p1000/r4/hilbert/static/s2/i5");
  EXPECT_EQ(jobs[2].label, "uniform/32x16/p1000/r4/hilbert/sar/s1/i5");
  EXPECT_EQ(jobs[4].label, "irregular/32x16/p1000/r4/hilbert/static/s1/i5");
  EXPECT_EQ(jobs[7].label, "irregular/32x16/p1000/r4/hilbert/sar/s2/i5");

  const auto& p = jobs[7].params;
  EXPECT_EQ(p.grid.nx, 32u);
  EXPECT_EQ(p.grid.ny, 16u);
  EXPECT_EQ(p.dist, particles::Distribution::kGaussian);
  EXPECT_EQ(p.policy, "sar");
  EXPECT_EQ(p.nranks, 4);
  EXPECT_EQ(p.init.total, 1000u);
  EXPECT_EQ(p.init.seed, 2u);
  EXPECT_EQ(p.iterations, 5);
  // Paper base setup (matches bench::paper_params).
  EXPECT_EQ(p.curve, sfc::CurveKind::kHilbert);
  EXPECT_EQ(p.grid_decomp, pic::GridDecomp::kCurve);
  EXPECT_EQ(p.solver, pic::FieldSolveKind::kMaxwell);
  EXPECT_EQ(p.init.drift_ux, 0.12);
}

TEST(SweepGridExpand, ScenarioAxisAcceptsTheScenarioLibrary) {
  SweepGrid g;
  g.scenario = {"uniform",          "irregular_beam", "two_stream",
                "weibel",           "beam_into_plasma", "moving_hotspot"};
  g.mesh = {"32x16"};
  g.particles = {1000};
  g.ranks = {4};
  g.iterations = {5};
  const auto jobs = expand_grid(g);
  ASSERT_EQ(jobs.size(), 6u);
  // Migrated names keep the legacy dist path (pre-scenario grid points
  // expand to identical PicParams); library scenarios select the scenario
  // path and leave dist alone.
  EXPECT_EQ(jobs[0].params.scenario, "");
  EXPECT_EQ(jobs[0].params.dist, particles::Distribution::kUniform);
  EXPECT_EQ(jobs[1].params.scenario, "");
  EXPECT_EQ(jobs[1].params.dist, particles::Distribution::kGaussian);
  EXPECT_EQ(jobs[2].params.scenario, "");
  EXPECT_EQ(jobs[2].params.dist, particles::Distribution::kTwoStream);
  for (int i = 3; i < 6; ++i) {
    EXPECT_EQ(jobs[i].params.scenario, g.scenario[static_cast<std::size_t>(i)]);
    EXPECT_EQ(jobs[i].params.dist, particles::Distribution::kUniform);
  }
  // Labels keep the axis value, so scenario grid points stay distinct.
  EXPECT_EQ(jobs[3].label, "weibel/32x16/p1000/r4/hilbert/sar/s1/i5");
}

TEST(SweepGridExpand, PolicyAxisComposesDecisionAndBalancer) {
  SweepGrid g;
  g.policy = {"sar", "periodic:10+eulerian", "static+sfcweight:2.5"};
  g.mesh = {"32x16"};
  g.particles = {1000};
  g.ranks = {4};
  g.iterations = {5};
  const auto jobs = expand_grid(g);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].params.policy, "sar");
  EXPECT_EQ(jobs[0].params.partitioner.balancer, "lagrange");
  EXPECT_EQ(jobs[1].params.policy, "periodic:10");
  EXPECT_EQ(jobs[1].params.partitioner.balancer, "eulerian");
  EXPECT_EQ(jobs[2].params.policy, "static");
  EXPECT_EQ(jobs[2].params.partitioner.balancer, "sfcweight:2.5");
  // The composed spec survives into the label verbatim.
  EXPECT_EQ(jobs[1].label,
            "uniform/32x16/p1000/r4/hilbert/periodic:10+eulerian/s1/i5");
  // Decision and balancer halves split the cache key.
  EXPECT_NE(jobs[0].params.fingerprint(), jobs[1].params.fingerprint());
  EXPECT_NE(jobs[1].params.fingerprint(), jobs[2].params.fingerprint());
}

TEST(SweepGridExpand, ExpansionIsDeterministic) {
  SweepGrid g;
  g.curve = {"hilbert", "morton", "snake"};
  g.ranks = {4, 8};
  const auto a = expand_grid(g);
  const auto b = expand_grid(g);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].params.fingerprint(), b[i].params.fingerprint());
  }
}

TEST(SweepGridExpand, RejectsBadValues) {
  for (const char* text :
       {"mesh = 64\n", "mesh = x64\n", "mesh = 64x\n", "scenario = plasma9\n",
        "curve = zigzag\n", "policy = whenever\n", "ranks = 0\n",
        "particles = 0\n", "iterations = 0\n", "policy = sar+zoltan\n",
        "policy = whenever+eulerian\n", "policy = sar+sfcweight:x\n"}) {
    EXPECT_THROW(expand_grid(parse_grid(text)), std::runtime_error)
        << "accepted: " << text;
  }
}

}  // namespace
}  // namespace picpar::sweep
