// Mode equivalence: the parallel engine must produce bit-identical results
// to the sequential reference scheduler — same PicResult (clocks, traffic,
// physics, happens-before fingerprint), same delivery order, same analyzer
// report — on every fixture, including runs with fault injection.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "mode_compare.hpp"
#include "pic/simulation.hpp"
#include "runtime/parallel_engine.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"

namespace picpar {
namespace {

using sim::Comm;
using sim::CostModel;
using sim::FaultConfig;
using sim::Machine;

void expect_pic_identical(const pic::PicResult& a, const pic::PicResult& b) {
  ASSERT_EQ(a.iters.size(), b.iters.size());
  for (std::size_t i = 0; i < a.iters.size(); ++i) {
    SCOPED_TRACE("iter " + std::to_string(i));
    const auto& x = a.iters[i];
    const auto& y = b.iters[i];
    EXPECT_EQ(x.exec_seconds, y.exec_seconds);
    EXPECT_EQ(x.loop_seconds, y.loop_seconds);
    EXPECT_EQ(x.scatter_max_sent_bytes, y.scatter_max_sent_bytes);
    EXPECT_EQ(x.scatter_max_recv_bytes, y.scatter_max_recv_bytes);
    EXPECT_EQ(x.scatter_max_sent_msgs, y.scatter_max_sent_msgs);
    EXPECT_EQ(x.scatter_max_recv_msgs, y.scatter_max_recv_msgs);
    EXPECT_EQ(x.max_ghost_entries, y.max_ghost_entries);
    EXPECT_EQ(x.redistributed, y.redistributed);
    EXPECT_EQ(x.redist_seconds, y.redist_seconds);
    EXPECT_EQ(x.redist_particles_moved, y.redist_particles_moved);
    EXPECT_EQ(x.violation_mask, y.violation_mask);
    EXPECT_EQ(x.recovered, y.recovered);
  }
  ASSERT_EQ(a.energy_history.size(), b.energy_history.size());
  for (std::size_t i = 0; i < a.energy_history.size(); ++i) {
    EXPECT_EQ(a.energy_history[i].field, b.energy_history[i].field);
    EXPECT_EQ(a.energy_history[i].kinetic, b.energy_history[i].kinetic);
  }
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.compute_seconds, b.compute_seconds);
  EXPECT_EQ(a.redistributions, b.redistributions);
  EXPECT_EQ(a.redist_seconds_total, b.redist_seconds_total);
  EXPECT_EQ(a.initial_distribution_seconds, b.initial_distribution_seconds);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.violation_iterations, b.violation_iterations);
  EXPECT_EQ(a.initial_particles, b.initial_particles);
  EXPECT_EQ(a.final_particles, b.final_particles);
  EXPECT_EQ(a.analysis_findings, b.analysis_findings);
  EXPECT_EQ(a.analysis_report, b.analysis_report);
  EXPECT_EQ(a.hb_fingerprint, b.hb_fingerprint);
  EXPECT_EQ(a.field_energy, b.field_energy);
  EXPECT_EQ(a.kinetic_energy, b.kinetic_energy);
  EXPECT_EQ(a.total_charge, b.total_charge);
  picpar::testing::expect_identical(a.machine, b.machine);
}

pic::PicParams small_pic() {
  pic::PicParams p;
  p.grid = mesh::GridDesc{32, 16};
  p.nranks = 8;
  p.init.total = 512;
  p.iterations = 4;
  p.sample_energy_every = 2;
  return p;
}

pic::PicResult run_mode(pic::PicParams p, bool parallel) {
  p.exec.parallel = parallel;
  p.exec.workers = 4;
  return pic::run_pic(p);
}

TEST(ModeEquivalence, PicPipelineCurvesAndPolicies) {
  for (const auto curve : {sfc::CurveKind::kHilbert, sfc::CurveKind::kSnake}) {
    for (const char* policy : {"static", "periodic:2", "sar"}) {
      SCOPED_TRACE(std::string(sfc::curve_kind_name(curve)) + "/" + policy);
      pic::PicParams p = small_pic();
      p.curve = curve;
      p.policy = policy;
      expect_pic_identical(run_mode(p, false), run_mode(p, true));
    }
  }
}

TEST(ModeEquivalence, PicPipelineUnderMessageFaults) {
  pic::PicParams p = small_pic();
  p.policy = "periodic:2";
  p.faults.latency_jitter_prob = 0.3;
  p.faults.latency_jitter_max_seconds = 500e-6;
  p.faults.duplicate_prob = 0.15;
  p.faults.reorder_prob = 0.15;
  p.faults.corrupt_prob = 0.02;
  expect_pic_identical(run_mode(p, false), run_mode(p, true));
}

TEST(ModeEquivalence, PicPipelineWithValidationAndMemoryFaults) {
  pic::PicParams p = small_pic();
  p.policy = "sar";
  p.faults.memory_fault_prob = 0.05;
  p.validate.check_every = 1;
  p.validate.checkpoint_every = 2;
  expect_pic_identical(run_mode(p, false), run_mode(p, true));
}

TEST(ModeEquivalence, PicPipelineWithAnalyzerAttached) {
  pic::PicParams p = small_pic();
  p.analyze.enabled = true;
  const auto seq = run_mode(p, false);
  const auto par = run_mode(p, true);
  ASSERT_GE(seq.analysis_findings, 0);  // analyzer attached
  EXPECT_NE(seq.hb_fingerprint, 0u);
  expect_pic_identical(seq, par);
}

// The PR 2 determinism audit (two runs, fingerprint + event comparison)
// must also pass when both runs execute on the parallel engine.
TEST(ModeEquivalence, DeterminismAuditPassesInParallelMode) {
  pic::PicParams p = small_pic();
  p.analyze.audit_determinism = true;
  const auto par = run_mode(p, true);
  EXPECT_EQ(par.determinism_audit, 1);
}

// Wildcard-receive stress: heavy any-source traffic whose virtual arrival
// order is scrambled by latency jitter. The receiver's observed (src, val)
// sequence — not just aggregate counters — must be identical across modes,
// which fails if the parallel engine ever commits a wildcard match before
// the lower-bound rule proves no earlier message can still arrive.
TEST(ModeEquivalence, WildcardStressObservesIdenticalDeliverySequence) {
  constexpr int kRounds = 20;
  auto make = [] {
    FaultConfig fc;
    fc.latency_jitter_prob = 0.5;
    fc.latency_jitter_max_seconds = 2e-3;  // >> tau: scrambles arrivals
    return new Machine(8, CostModel::cm5(), fc);
  };
  auto run_one = [&](bool parallel) {
    std::vector<std::pair<int, int>> seen;
    auto program = [&seen](Comm& c) {
      const int n = c.size();
      if (c.rank() == 0) {
        for (int i = 0; i < (n - 1) * kRounds; ++i) {
          int src = -1;
          const auto v = c.recv<int>(sim::kAnySource, 1, &src);
          seen.emplace_back(src, v.at(0));
        }
      } else {
        for (int k = 0; k < kRounds; ++k) {
          c.charge_ops(static_cast<std::uint64_t>((c.rank() * 13 + k * 7) % 40));
          c.send_value(0, 1, c.rank() * 1000 + k);
        }
      }
    };
    std::unique_ptr<Machine> m(make());
    if (parallel) runtime::use_parallel(*m, runtime::ParallelConfig{8});
    const auto res = m->run(program);
    return std::make_pair(seen, res);
  };
  const auto [seq_seen, seq_res] = run_one(false);
  const auto [par_seen, par_res] = run_one(true);
  ASSERT_EQ(seq_seen.size(), 7u * kRounds);
  EXPECT_EQ(seq_seen, par_seen);
  picpar::testing::expect_identical(seq_res, par_res);
}

// Same stress with duplicates and reordering: transport dedup decisions
// (which copy is discarded) are part of the deterministic contract.
TEST(ModeEquivalence, WildcardStressUnderDupAndReorder) {
  auto make = [] {
    FaultConfig fc;
    fc.latency_jitter_prob = 0.4;
    fc.latency_jitter_max_seconds = 1e-3;
    fc.duplicate_prob = 0.3;
    fc.reorder_prob = 0.3;
    return new Machine(6, CostModel::cm5(), fc);
  };
  auto program = [](Comm& c) {
    const int n = c.size();
    if (c.rank() == 0) {
      std::uint64_t acc = 0;
      for (int i = 0; i < (n - 1) * 10; ++i) {
        int src = -1;
        const auto v = c.recv<int>(sim::kAnySource, 2, &src);
        acc = acc * 1099511628211ULL + static_cast<std::uint64_t>(src * 65536 + v.at(0));
      }
      // acc folds the delivery order; cross-mode equality is enforced by
      // the clock/stats comparison (delivery order drives the clocks).
      EXPECT_NE(acc, 0u);
    } else {
      for (int k = 0; k < 10; ++k) {
        c.charge_ops(static_cast<std::uint64_t>((c.rank() * 29 + k * 11) % 50));
        c.send_value(0, 2, k);
      }
    }
  };
  picpar::testing::run_both_modes(make, program, 6);
}

// Analyzer equality on a deliberately racy program: the parallel engine
// must report the same findings, the same counts, and the same fingerprint
// as the sequential run.
TEST(ModeEquivalence, AnalyzerReportIsByteIdenticalAcrossModes) {
  auto racy = [](Comm& c) {
    if (c.rank() == 0) {
      (void)c.recv<int>(sim::kAnySource, 5);
      (void)c.recv<int>(sim::kAnySource, 5);
    } else {
      c.charge_ops(static_cast<std::uint64_t>(c.rank() * 3));
      c.send_value(0, 5, c.rank());
    }
  };
  auto run_one = [&](bool parallel) {
    Machine m(3, CostModel::cm5());
    analysis::Analyzer an;
    m.set_observer(&an);
    if (parallel) runtime::use_parallel(m, runtime::ParallelConfig{3});
    (void)m.run(racy);
    return std::make_tuple(an.report(), an.total(), an.fingerprint(),
                           an.events());
  };
  const auto seq = run_one(false);
  const auto par = run_one(true);
  EXPECT_EQ(std::get<0>(seq), std::get<0>(par));
  EXPECT_EQ(std::get<1>(seq), std::get<1>(par));
  EXPECT_EQ(std::get<2>(seq), std::get<2>(par));
  EXPECT_EQ(std::get<3>(seq), std::get<3>(par));
  EXPECT_GT(std::get<1>(seq), 0u);  // the race is actually reported
}

}  // namespace
}  // namespace picpar
