// Parallel execution engine: scheduling, commit safety, stall resolution,
// and configuration. The deeper program-level equivalence fixtures live in
// test_mode_equivalence.cpp; this file exercises the engine mechanics.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "mode_compare.hpp"
#include "runtime/parallel_engine.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"

namespace picpar {
namespace {

using sim::Comm;
using sim::CostModel;
using sim::Machine;
using testing::run_both_modes;

TEST(ParallelEngine, RingExchangeMatchesSequential) {
  auto program = [](Comm& c) {
    const int n = c.size();
    const int next = (c.rank() + 1) % n;
    const int prev = (c.rank() + n - 1) % n;
    for (int round = 0; round < 5; ++round) {
      c.charge_ops(100 + static_cast<std::uint64_t>(c.rank()) * 7);
      std::vector<int> data{c.rank(), round};
      c.send(next, 10 + round, data);
      const auto got = c.recv<int>(prev, 10 + round);
      ASSERT_EQ(got.size(), 2u);
      EXPECT_EQ(got[0], prev);
      EXPECT_EQ(got[1], round);
    }
  };
  run_both_modes([] { return new Machine(8, CostModel::cm5()); }, program);
}

TEST(ParallelEngine, CollectivesMatchSequential) {
  auto program = [](Comm& c) {
    const int r = c.rank();
    c.charge_ops(static_cast<std::uint64_t>(r) * 31 + 5);
    const int sum = c.allreduce_sum(r + 1);
    EXPECT_EQ(sum, c.size() * (c.size() + 1) / 2);
    c.barrier();
    const auto all = c.allgather(r * r);
    ASSERT_EQ(static_cast<int>(all.size()), c.size());
    for (int i = 0; i < c.size(); ++i) EXPECT_EQ(all[i], i * i);
    std::vector<std::vector<int>> out(static_cast<std::size_t>(c.size()));
    for (int d = 0; d < c.size(); ++d)
      if ((r + d) % 3 == 0) out[static_cast<std::size_t>(d)] = {r, d};
    const auto in = c.all_to_many(std::move(out));
    for (int s = 0; s < c.size(); ++s) {
      if ((s + r) % 3 == 0) {
        ASSERT_EQ(in[static_cast<std::size_t>(s)].size(), 2u);
        EXPECT_EQ(in[static_cast<std::size_t>(s)][0], s);
      } else {
        EXPECT_TRUE(in[static_cast<std::size_t>(s)].empty());
      }
    }
  };
  run_both_modes([] { return new Machine(12, CostModel::cm5()); }, program);
}

// Wildcard receives must deliver in virtual-arrival order, not in the
// order worker threads happen to enqueue. Senders are given staggered
// compute delays so their messages' virtual arrivals are a permutation of
// the send order; the receiver asserts the exact permutation.
TEST(ParallelEngine, WildcardDeliversInVirtualTimeOrder) {
  // delay_units[r] for sender rank r (receiver is rank 0). Larger delay =
  // later virtual arrival even if the OS schedules that sender first.
  const std::vector<int> delay_units = {0, 400, 100, 300, 200};
  auto program = [&](Comm& c) {
    const int n = c.size();
    if (c.rank() == 0) {
      std::vector<int> order;
      for (int i = 1; i < n; ++i) {
        int src = -1;
        (void)c.recv<int>(sim::kAnySource, 7, &src);
        order.push_back(src);
      }
      // Expected: ascending virtual arrival = ascending delay.
      EXPECT_EQ(order, (std::vector<int>{2, 4, 3, 1}));
    } else {
      c.charge_ops(static_cast<std::uint64_t>(
          delay_units[static_cast<std::size_t>(c.rank())]));
      c.send_value(0, 7, c.rank());
    }
  };
  for (int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    run_both_modes([] { return new Machine(5, CostModel::cm5()); }, program,
                   workers);
  }
}

// Two senders whose messages arrive at the exact same virtual time: the
// (arrival, src) tie-break must pick the lower source first in both modes.
TEST(ParallelEngine, ArrivalTiesBreakBySourceRank) {
  auto program = [](Comm& c) {
    if (c.rank() == 0) {
      int first = -1, second = -1;
      (void)c.recv<int>(sim::kAnySource, 3, &first);
      (void)c.recv<int>(sim::kAnySource, 3, &second);
      EXPECT_EQ(first, 1);
      EXPECT_EQ(second, 2);
    } else {
      c.send_value(0, 3, c.rank());  // same clock, same size => same arrival
    }
  };
  run_both_modes([] { return new Machine(3, CostModel::cm5()); }, program);
}

// A receive whose candidate is unsafe under the lower-bound rule (a third
// rank's clock stays below the candidate arrival) must stall until global
// quiescence, then force-commit the minimal candidate instead of
// deadlocking. Rank 2's wildcard receive sees rank 0's message, but rank 1
// is parked at clock 0 and could (for all the rule knows) still send
// something earlier — only the stall resolution can break the tie.
TEST(ParallelEngine, StallForceCommitsMinimalCandidate) {
  auto program = [](Comm& c) {
    switch (c.rank()) {
      case 0: {
        c.charge(1.0);  // push arrival far above rank 1's reachable bound
        c.send_value(2, 5, 42);
        const int ack = c.recv_value<int>(2, 6);
        EXPECT_EQ(ack, 42);
        break;
      }
      case 1: {
        const int ack = c.recv_value<int>(2, 6);  // parked at clock 0
        EXPECT_EQ(ack, 42);
        break;
      }
      case 2: {
        int src = -1;
        const auto v = c.recv<int>(sim::kAnySource, 5, &src);
        EXPECT_EQ(src, 0);
        c.send_value(0, 6, v[0]);
        c.send_value(1, 6, v[0]);
        break;
      }
      default:
        break;
    }
  };
  run_both_modes([] { return new Machine(3, CostModel::cm5()); }, program);
}

TEST(ParallelEngine, ManyRanksFewWorkers) {
  auto program = [](Comm& c) {
    const int r = c.rank();
    c.charge_ops(static_cast<std::uint64_t>((r * 37) % 11));
    const int total = c.allreduce_sum(1);
    EXPECT_EQ(total, c.size());
    if (r % 2 == 0 && r + 1 < c.size()) c.send_value(r + 1, 1, r);
    if (r % 2 == 1) {
      EXPECT_EQ(c.recv_value<int>(r - 1, 1), r - 1);
    }
    c.barrier();
  };
  run_both_modes([] { return new Machine(16, CostModel::cm5()); }, program,
                 /*workers=*/2);
}

TEST(ParallelEngine, RepeatedRunsOnOneMachineStayIdentical) {
  auto program = [](Comm& c) {
    const int s = c.allreduce_sum(c.rank());
    EXPECT_EQ(s, c.size() * (c.size() - 1) / 2);
  };
  Machine m(6, CostModel::cm5());
  runtime::use_parallel(m, runtime::ParallelConfig{4});
  const auto first = m.run(program);
  const auto second = m.run(program);
  picpar::testing::expect_identical(first, second);

  // And flipping back to sequential on the same machine still matches.
  m.set_exec_mode(sim::ExecMode::kSequential);
  picpar::testing::expect_identical(first, m.run(program));
}

TEST(ParallelEngine, ParallelModeWithoutEngineThrows) {
  Machine m(2, CostModel::zero());
  m.set_exec_mode(sim::ExecMode::kParallel);
  EXPECT_THROW(m.run([](Comm&) {}), std::logic_error);
}

TEST(ParallelEngine, RankErrorPropagates) {
  Machine m(4, CostModel::cm5());
  runtime::use_parallel(m, runtime::ParallelConfig{2});
  EXPECT_THROW(m.run([](Comm& c) {
    if (c.rank() == 2) throw std::runtime_error("boom");
    if (c.rank() == 3) c.send_value(2, 1, 1);  // unreceived; harmless
  }),
               std::runtime_error);
}

TEST(ParallelEngineConfig, EnvSelection) {
  ASSERT_EQ(unsetenv("PICPAR_PARALLEL"), 0);
  EXPECT_FALSE(runtime::parallel_env_enabled());
  ASSERT_EQ(setenv("PICPAR_PARALLEL", "0", 1), 0);
  EXPECT_FALSE(runtime::parallel_env_enabled());
  ASSERT_EQ(setenv("PICPAR_PARALLEL", "1", 1), 0);
  EXPECT_TRUE(runtime::parallel_env_enabled());

  Machine m(2, CostModel::zero());
  EXPECT_TRUE(runtime::configure_from_env(m));
  EXPECT_EQ(m.exec_mode(), sim::ExecMode::kParallel);
  ASSERT_EQ(unsetenv("PICPAR_PARALLEL"), 0);
  Machine m2(2, CostModel::zero());
  EXPECT_FALSE(runtime::configure_from_env(m2));
  EXPECT_EQ(m2.exec_mode(), sim::ExecMode::kSequential);
}

TEST(ParallelEngineConfig, WorkerResolution) {
  ASSERT_EQ(unsetenv("PICPAR_WORKERS"), 0);
  EXPECT_EQ(runtime::resolve_workers(runtime::ParallelConfig{3}), 3);
  EXPECT_GE(runtime::resolve_workers(runtime::ParallelConfig{0}), 1);
  ASSERT_EQ(setenv("PICPAR_WORKERS", "7", 1), 0);
  EXPECT_EQ(runtime::resolve_workers(runtime::ParallelConfig{3}), 7);
  ASSERT_EQ(unsetenv("PICPAR_WORKERS"), 0);
}

}  // namespace
}  // namespace picpar
