// Helpers for the mode-equivalence suite: run one program under the
// sequential reference scheduler and under the parallel engine, and demand
// bit-identical RunResults. Doubles are compared with ==: the guarantee is
// that both modes execute the *same* arithmetic in the *same* order, not
// that they land within a tolerance.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "runtime/parallel_engine.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"

namespace picpar::testing {

inline void expect_identical(const sim::RunResult& seq,
                             const sim::RunResult& par) {
  ASSERT_EQ(seq.ranks.size(), par.ranks.size());
  for (std::size_t r = 0; r < seq.ranks.size(); ++r) {
    SCOPED_TRACE("rank " + std::to_string(r));
    const auto& a = seq.ranks[r];
    const auto& b = par.ranks[r];
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.clock, b.clock);
    for (int p = 0; p < sim::kNumPhases; ++p) {
      SCOPED_TRACE("phase " + std::to_string(p));
      const auto& pa = a.stats.phase(static_cast<sim::Phase>(p));
      const auto& pb = b.stats.phase(static_cast<sim::Phase>(p));
      EXPECT_EQ(pa.msgs_sent, pb.msgs_sent);
      EXPECT_EQ(pa.bytes_sent, pb.bytes_sent);
      EXPECT_EQ(pa.msgs_recv, pb.msgs_recv);
      EXPECT_EQ(pa.bytes_recv, pb.bytes_recv);
      EXPECT_EQ(pa.comm_seconds, pb.comm_seconds);
      EXPECT_EQ(pa.compute_seconds, pb.compute_seconds);
    }
    EXPECT_EQ(a.faults.transient_slowdowns, b.faults.transient_slowdowns);
    EXPECT_EQ(a.faults.jittered_messages, b.faults.jittered_messages);
    EXPECT_EQ(a.faults.corrupted_deliveries, b.faults.corrupted_deliveries);
    EXPECT_EQ(a.faults.duplicated_messages, b.faults.duplicated_messages);
    EXPECT_EQ(a.faults.reordered_messages, b.faults.reordered_messages);
    EXPECT_EQ(a.faults.memory_faults, b.faults.memory_faults);
    ASSERT_EQ(a.links.size(), b.links.size());
    for (std::size_t s = 0; s < a.links.size(); ++s) {
      EXPECT_EQ(a.links[s].retries, b.links[s].retries);
      EXPECT_EQ(a.links[s].dup_discards, b.links[s].dup_discards);
      EXPECT_EQ(a.links[s].corruptions_detected, b.links[s].corruptions_detected);
    }
  }
}

/// Run `program` on a fresh machine per mode (identical construction via
/// `make`) and require bit-identical results. Returns the sequential result
/// for further assertions.
inline sim::RunResult run_both_modes(
    const std::function<sim::Machine*()>& make,
    const std::function<void(sim::Comm&)>& program, int workers = 4) {
  std::unique_ptr<sim::Machine> seq_m(make());
  const sim::RunResult seq = seq_m->run(program);

  std::unique_ptr<sim::Machine> par_m(make());
  runtime::use_parallel(*par_m, runtime::ParallelConfig{workers});
  const sim::RunResult par = par_m->run(program);

  expect_identical(seq, par);
  return seq;
}

}  // namespace picpar::testing
