// Deadlock detection under the parallel scheduler. The hazard specific to
// threads: a naive detector can scan "everyone blocked" while a worker is
// a few instructions away from enqueueing the send that would unblock the
// system. The engine only evaluates the stall rule under its mutex once
// every rank is parked or finished, so that race cannot happen; these
// fixtures seed both the false-alarm shape and real deadlocks and demand
// the exact sequential behavior (including the structured wait graph).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mode_compare.hpp"
#include "runtime/parallel_engine.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"

namespace picpar {
namespace {

using sim::BlockedInfo;
using sim::Comm;
using sim::CostModel;
using sim::DeadlockError;
using sim::Machine;

std::vector<BlockedInfo> run_expect_deadlock(
    Machine& m, const std::function<void(Comm&)>& program) {
  std::vector<BlockedInfo> blocked;
  try {
    m.run(program);
    ADD_FAILURE() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    blocked = e.blocked();
  }
  std::sort(blocked.begin(), blocked.end(),
            [](const BlockedInfo& a, const BlockedInfo& b) {
              return a.rank < b.rank;
            });
  return blocked;
}

void expect_same_wait_graph(const std::vector<BlockedInfo>& a,
                            const std::vector<BlockedInfo>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("entry " + std::to_string(i));
    EXPECT_EQ(a[i].rank, b[i].rank);
    EXPECT_EQ(a[i].want_src, b[i].want_src);
    EXPECT_EQ(a[i].want_tag, b[i].want_tag);
    EXPECT_EQ(a[i].mailbox_size, b[i].mailbox_size);
  }
}

TEST(ParallelDeadlock, CycleDeadlockMatchesSequential) {
  auto program = [](Comm& c) {
    // Every rank waits on its clockwise neighbor; nobody ever sends.
    (void)c.recv<int>((c.rank() + 1) % c.size(), 9);
  };
  Machine seq(4, CostModel::cm5());
  const auto seq_blocked = run_expect_deadlock(seq, program);
  ASSERT_EQ(seq_blocked.size(), 4u);

  for (int workers : {1, 2, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    Machine par(4, CostModel::cm5());
    runtime::use_parallel(par, runtime::ParallelConfig{workers});
    expect_same_wait_graph(seq_blocked, run_expect_deadlock(par, program));
  }
}

TEST(ParallelDeadlock, PendingMailboxSizesSurviveIntoReport) {
  auto program = [](Comm& c) {
    // Rank 0 parks one unmatched message in rank 1's mailbox before the
    // cycle deadlocks; the wait graph must report it identically.
    if (c.rank() == 0) c.send_value(1, 8, 123);
    (void)c.recv<int>((c.rank() + 1) % c.size(), 9);
  };
  Machine seq(3, CostModel::cm5());
  const auto seq_blocked = run_expect_deadlock(seq, program);
  ASSERT_EQ(seq_blocked.size(), 3u);
  EXPECT_EQ(seq_blocked[1].mailbox_size, 1u);

  Machine par(3, CostModel::cm5());
  runtime::use_parallel(par, runtime::ParallelConfig{3});
  expect_same_wait_graph(seq_blocked, run_expect_deadlock(par, program));
}

// The false-alarm shape: every other rank is already blocked while one
// slow rank is still computing; its eventual send resolves the system. A
// detector that raced the worker would throw here.
TEST(ParallelDeadlock, SlowSenderIsNotADeadlock) {
  auto program = [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 200; ++i) c.charge_ops(50);
      for (int d = 1; d < c.size(); ++d) c.send_value(d, 4, d * 11);
    } else {
      EXPECT_EQ(c.recv_value<int>(0, 4), c.rank() * 11);
    }
  };
  picpar::testing::run_both_modes(
      [] { return new Machine(6, CostModel::cm5()); }, program, 4);
}

// Same shape, but the slow rank exits without sending: deadlock must be
// declared only after it finishes, with the surviving waiters in the
// report — in both modes.
TEST(ParallelDeadlock, SlowFinisherStillYieldsDeadlock) {
  auto program = [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 200; ++i) c.charge_ops(50);
      return;  // never sends
    }
    (void)c.recv<int>(0, 4);
  };
  Machine seq(4, CostModel::cm5());
  const auto seq_blocked = run_expect_deadlock(seq, program);
  ASSERT_EQ(seq_blocked.size(), 3u);

  Machine par(4, CostModel::cm5());
  runtime::use_parallel(par, runtime::ParallelConfig{4});
  expect_same_wait_graph(seq_blocked, run_expect_deadlock(par, program));
}

}  // namespace
}  // namespace picpar
