// Large-p scaling: the machine must stay bit-identical between the
// sequential reference scheduler and the parallel engine at 512 and 1024
// simulated ranks, including through fail-stop crash recovery — the world
// sizes the sparse per-peer transport state exists for. Workloads are
// deliberately small per rank (the point is the rank count, not the work).
#include <gtest/gtest.h>

#include <vector>

#include "mode_compare.hpp"
#include "pic/simulation.hpp"
#include "sim/comm.hpp"
#include "sim/faults.hpp"

namespace picpar {
namespace {

using sim::Comm;
using sim::CostModel;
using sim::FaultConfig;
using sim::Machine;

/// Nearest-neighbor ring plus one allreduce per round: sparse point-to-point
/// traffic with a global synchronization, the PIC loop's communication shape.
void ring_allreduce_rounds(Comm& c, int rounds) {
  const int n = c.size();
  for (int i = 0; i < rounds; ++i) {
    if (n > 1) {
      const int right = (c.rank() + 1) % n;
      const int left = (c.rank() + n - 1) % n;
      c.send(right, 11, std::vector<long>{c.rank() + i});
      (void)c.recv<long>(left, 11);
    }
    (void)c.allreduce_sum<long>(1);
  }
}

TEST(LargeP, BitIdentityAt512) {
  picpar::testing::run_both_modes(
      [] { return new Machine(512, CostModel::cm5()); },
      [](Comm& c) { ring_allreduce_rounds(c, 3); });
}

TEST(LargeP, BitIdentityAt1024) {
  picpar::testing::run_both_modes(
      [] { return new Machine(1024, CostModel::cm5()); },
      [](Comm& c) { ring_allreduce_rounds(c, 2); });
}

TEST(LargeP, CrashRecoveryBitIdentityAt512) {
  // One scheduled crash mid-run; survivors agree on membership and finish
  // on the shrunken group. The whole recovery trajectory — detection
  // times, purged state, post-shrink traffic — must be bit-identical
  // across execution modes.
  const auto make = [] {
    FaultConfig cfg;
    cfg.crash_schedule = {{100, 3e-4}};
    return new Machine(512, CostModel::cm5(), cfg);
  };
  const auto program = [](Comm& c) {
    int done = 0;
    for (;;) {
      try {
        while (done < 3) {
          ring_allreduce_rounds(c, 1);
          ++done;
        }
        return;
      } catch (const sim::PeerFailedError&) {
        (void)c.agree_on_membership();
        done = c.allreduce_min(done);
      }
    }
  };
  const auto run = picpar::testing::run_both_modes(make, program);
  ASSERT_EQ(run.crashes.size(), 1u);
  EXPECT_EQ(run.crashes[0].rank, 100);
}

TEST(LargeP, PicPipelineBitIdentityAt1024) {
  // Full PIC pipeline at 1024 ranks on a small mesh: ~2 cells and ~2
  // particles per rank. Physics and accounting must match exactly between
  // modes; per-rank memory gauges are size-based and deterministic, so
  // they are part of the comparison (via the machine reports).
  pic::PicParams p;
  p.grid = mesh::GridDesc{64, 32};
  p.nranks = 1024;
  p.init.total = 2048;
  p.iterations = 2;
  p.policy = "periodic:1";

  pic::PicParams ps = p;
  ps.exec.parallel = false;
  const auto seq = pic::run_pic(ps);

  pic::PicParams pp = p;
  pp.exec.parallel = true;
  pp.exec.workers = 4;
  const auto par = pic::run_pic(pp);

  EXPECT_EQ(seq.final_particles, par.final_particles);
  EXPECT_EQ(seq.field_energy, par.field_energy);
  EXPECT_EQ(seq.kinetic_energy, par.kinetic_energy);
  EXPECT_EQ(seq.total_charge, par.total_charge);
  EXPECT_EQ(seq.total_seconds, par.total_seconds);
  EXPECT_EQ(seq.redistributions, par.redistributions);
  picpar::testing::expect_identical(seq.machine, par.machine);
}

}  // namespace
}  // namespace picpar
