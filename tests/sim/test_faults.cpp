// Fault injection and transport recovery: determinism, zero-overhead when
// disabled, checksum-detected corruption with retransmit, duplicate
// suppression, ordering guarantees, and deadlock diagnostics.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sim/comm.hpp"
#include "sim/faults.hpp"

namespace picpar::sim {
namespace {

/// Ring exchange with payload verification: each rank streams `count`
/// numbered vectors to its successor and checks the stream it receives from
/// its predecessor, then the group agrees on a sum.
void ring_program(Comm& c, int count) {
  const int p = c.size();
  const int next = (c.rank() + 1) % p;
  const int prev = (c.rank() + p - 1) % p;
  for (int k = 0; k < count; ++k) {
    std::vector<int> payload(8, c.rank() * 1000 + k);
    payload.back() = k;
    c.send(next, 3, payload);
  }
  for (int k = 0; k < count; ++k) {
    const auto got = c.recv<int>(prev, 3);
    ASSERT_EQ(got.size(), 8u);
    EXPECT_EQ(got[0], prev * 1000 + k) << "corrupted or reordered payload";
    EXPECT_EQ(got.back(), k) << "stream out of order";
  }
  const auto sum = c.allreduce_sum<long>(c.rank());
  EXPECT_EQ(sum, static_cast<long>(p) * (p - 1) / 2);
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    EXPECT_EQ(a.ranks[r].clock, b.ranks[r].clock) << "rank " << r;
    const auto ta = a.ranks[r].stats.total();
    const auto tb = b.ranks[r].stats.total();
    EXPECT_EQ(ta.msgs_sent, tb.msgs_sent);
    EXPECT_EQ(ta.bytes_sent, tb.bytes_sent);
    EXPECT_EQ(ta.msgs_recv, tb.msgs_recv);
    EXPECT_EQ(ta.bytes_recv, tb.bytes_recv);
    EXPECT_EQ(ta.comm_seconds, tb.comm_seconds);
    EXPECT_EQ(a.ranks[r].faults.total(), b.ranks[r].faults.total());
  }
}

TEST(Faults, DisabledModelIsBitIdentical) {
  // A default FaultConfig must be indistinguishable from no model at all:
  // same clocks, same traffic, bit for bit.
  const int p = 6;
  Machine plain(p, CostModel::cm5());
  Machine configured(p, CostModel::cm5(), FaultConfig{});
  const auto a = plain.run([](Comm& c) { ring_program(c, 12); });
  const auto b = configured.run([](Comm& c) { ring_program(c, 12); });
  expect_identical(a, b);
  EXPECT_EQ(b.faults_total().total(), 0u);
  EXPECT_EQ(b.transport_total().retries, 0u);
}

TEST(Faults, SameSeedSameRun) {
  FaultConfig cfg;
  cfg.seed = 2026;
  cfg.transient_slow_prob = 0.1;
  cfg.latency_jitter_prob = 0.2;
  cfg.latency_jitter_max_seconds = 1e-3;
  cfg.corrupt_prob = 0.1;
  cfg.duplicate_prob = 0.1;
  cfg.reorder_prob = 0.1;

  Machine m1(5, CostModel::cm5(), cfg);
  Machine m2(5, CostModel::cm5(), cfg);
  const auto a = m1.run([](Comm& c) { ring_program(c, 20); });
  const auto b = m2.run([](Comm& c) { ring_program(c, 20); });
  expect_identical(a, b);
  EXPECT_GT(a.faults_total().total(), 0u);
}

TEST(Faults, RepeatedRunsOnOneMachineStayReproducible) {
  FaultConfig cfg;
  cfg.corrupt_prob = 0.15;
  cfg.duplicate_prob = 0.15;
  Machine m(4, CostModel::cm5(), cfg);
  const auto a = m.run([](Comm& c) { ring_program(c, 15); });
  const auto b = m.run([](Comm& c) { ring_program(c, 15); });
  expect_identical(a, b);
}

TEST(Faults, CorruptionIsDetectedAndRecovered) {
  FaultConfig cfg;
  cfg.corrupt_prob = 0.3;
  cfg.max_retries = 20;  // corruption re-drawn per retry; give headroom
  Machine m(4, CostModel::cm5(), cfg);
  // ring_program asserts every payload arrives intact — recovery must be
  // invisible to the application.
  const auto run = m.run([](Comm& c) { ring_program(c, 30); });

  const auto t = run.transport_total();
  const auto f = run.faults_total();
  EXPECT_GT(f.corrupted_deliveries, 0u) << "fault model never fired";
  EXPECT_EQ(t.corruptions_detected, f.corrupted_deliveries)
      << "every injected corruption must be caught by the checksum";
  EXPECT_EQ(t.retries, t.corruptions_detected);
}

TEST(Faults, RecoveryCostsVirtualTime) {
  const auto program = [](Comm& c) { ring_program(c, 25); };
  Machine clean(4, CostModel::cm5());
  FaultConfig cfg;
  cfg.corrupt_prob = 0.5;
  cfg.max_retries = 20;
  Machine faulty(4, CostModel::cm5(), cfg);
  const auto a = clean.run(program);
  const auto b = faulty.run(program);
  EXPECT_GT(b.makespan(), a.makespan())
      << "retransmits must show up as virtual-time overhead";
}

TEST(Faults, UnrecoverableLinkThrowsTransportError) {
  FaultConfig cfg;
  cfg.corrupt_prob = 1.0;  // every delivery attempt corrupted
  cfg.max_retries = 3;
  Machine m(2, CostModel::cm5(), cfg);
  EXPECT_THROW(m.run([](Comm& c) {
                 if (c.rank() == 0) c.send_value(1, 1, 42);
                 if (c.rank() == 1) (void)c.recv_value<int>(0, 1);
               }),
               TransportError);
}

TEST(Faults, DuplicatesAreDiscarded) {
  FaultConfig cfg;
  cfg.duplicate_prob = 1.0;  // duplicate every message
  Machine m(4, CostModel::cm5(), cfg);
  const auto run = m.run([](Comm& c) { ring_program(c, 20); });
  // Dups of the final message on a flow may sit undrained in the mailbox at
  // program end, so discards can trail injections — never exceed them.
  EXPECT_GT(run.transport_total().dup_discards, 0u);
  EXPECT_LE(run.transport_total().dup_discards,
            run.faults_total().duplicated_messages);
}

TEST(Faults, ReorderingPreservesPerFlowFifo) {
  FaultConfig cfg;
  cfg.reorder_prob = 1.0;
  Machine m(4, CostModel::cm5(), cfg);
  // ring_program's per-stream sequence check is exactly the per-flow FIFO
  // guarantee; interleaving across tags exercises cross-flow overtaking.
  m.run([](Comm& c) {
    const int p = c.size();
    const int next = (c.rank() + 1) % p;
    const int prev = (c.rank() + p - 1) % p;
    for (int k = 0; k < 10; ++k) {
      c.send_value(next, 1, k);        // two interleaved flows to the same
      c.send_value(next, 2, 100 + k);  // destination: tags 1 and 2
    }
    for (int k = 0; k < 10; ++k)
      EXPECT_EQ(c.recv_value<int>(prev, 1), k) << "flow (tag 1) reordered";
    for (int k = 0; k < 10; ++k)
      EXPECT_EQ(c.recv_value<int>(prev, 2), 100 + k)
          << "flow (tag 2) reordered";
  });
}

TEST(Faults, StragglerRaisesMakespan) {
  const auto program = [](Comm& c) {
    for (int i = 0; i < 10; ++i) {
      c.charge(1e-3);
      c.barrier();
    }
  };
  Machine clean(4, CostModel::cm5());
  FaultConfig cfg;
  cfg.straggler_ranks = {2};
  cfg.straggler_factor = 3.0;
  Machine slow(4, CostModel::cm5(), cfg);
  const auto a = clean.run(program);
  const auto b = slow.run(program);
  EXPECT_GT(b.makespan(), a.makespan() * 1.5);
  // Only compute is slowed: rank 2's compute charge triples.
  EXPECT_NEAR(b.ranks[2].stats.total().compute_seconds,
              3.0 * a.ranks[2].stats.total().compute_seconds, 1e-12);
}

TEST(Faults, JitterDelaysButDelivers) {
  FaultConfig cfg;
  cfg.latency_jitter_prob = 1.0;
  cfg.latency_jitter_max_seconds = 1e-3;
  Machine m(4, CostModel::cm5(), cfg);
  const auto run = m.run([](Comm& c) { ring_program(c, 10); });
  EXPECT_GT(run.faults_total().jittered_messages, 0u);
}

TEST(FaultCounters, ModelCountsDrawsPerRankAndSumsTotals) {
  FaultConfig cfg;
  cfg.duplicate_prob = 1.0;
  cfg.reorder_prob = 1.0;
  FaultModel model(cfg, 3);
  for (int k = 0; k < 5; ++k) EXPECT_TRUE(model.should_duplicate(0));
  for (int k = 0; k < 3; ++k) EXPECT_TRUE(model.should_reorder(1));
  EXPECT_EQ(model.counters(0).duplicated_messages, 5u);
  EXPECT_EQ(model.counters(0).reordered_messages, 0u);
  EXPECT_EQ(model.counters(1).reordered_messages, 3u);
  EXPECT_EQ(model.counters(2).total(), 0u);
  const auto t = model.total_counters();
  EXPECT_EQ(t.duplicated_messages, 5u);
  EXPECT_EQ(t.reordered_messages, 3u);
  EXPECT_EQ(t.total(), 8u);
  model.reset();
  EXPECT_EQ(model.total_counters().total(), 0u);
}

TEST(FaultCounters, SummaryNamesOnlyFiringKinds) {
  FaultCounters c;
  EXPECT_EQ(c.summary(), "clean");
  c.duplicated_messages = 4;
  c.reordered_messages = 2;
  const auto s = c.summary();
  EXPECT_NE(s.find("duplicated=4"), std::string::npos) << s;
  EXPECT_NE(s.find("reordered=2"), std::string::npos) << s;
  EXPECT_EQ(s.find("jittered"), std::string::npos) << s;
}

TEST(FaultCounters, DuplicationIsChargedToTheSender) {
  // Injection counters live on the rank that drew them: a one-way stream
  // books every duplicate on the sender, while the receiver's LinkStats
  // record the discards it performed.
  FaultConfig cfg;
  cfg.duplicate_prob = 1.0;
  Machine m(2, CostModel::cm5(), cfg);
  const auto run = m.run([](Comm& c) {
    const int n = 12;
    if (c.rank() == 0)
      for (int k = 0; k < n; ++k) c.send_value(1, 1, k);
    if (c.rank() == 1) {
      for (int k = 0; k < n; ++k) EXPECT_EQ(c.recv_value<int>(0, 1), k);
    }
  });
  EXPECT_EQ(run.ranks[0].faults.duplicated_messages, 12u);
  EXPECT_EQ(run.ranks[1].faults.duplicated_messages, 0u);
  // Dups are discarded while scanning for later matches; the dup of the
  // final message has no later receive to flush it.
  EXPECT_EQ(run.ranks[1].transport_total().dup_discards, 11u);
  EXPECT_EQ(run.ranks[0].transport_total().dup_discards, 0u);
}

TEST(FaultCounters, ReorderCounterCountsDrawsNotOvertakes) {
  // A single-flow stream cannot actually be reordered (per-flow FIFO), but
  // the model still draws and counts the injection attempt. The counter is
  // "reorder events injected", LinkStats/payload order tell what happened.
  FaultConfig cfg;
  cfg.reorder_prob = 1.0;
  Machine m(2, CostModel::cm5(), cfg);
  const auto run = m.run([](Comm& c) {
    const int n = 8;
    if (c.rank() == 0)
      for (int k = 0; k < n; ++k) c.send_value(1, 1, k);
    if (c.rank() == 1) {
      for (int k = 0; k < n; ++k)
        EXPECT_EQ(c.recv_value<int>(0, 1), k) << "single flow must stay FIFO";
    }
  });
  EXPECT_GT(run.ranks[0].faults.reordered_messages, 0u);
  EXPECT_EQ(run.ranks[1].faults.reordered_messages, 0u);
}

TEST(FaultCounters, AggregateMatchesPerRankSum) {
  FaultConfig cfg;
  cfg.duplicate_prob = 0.5;
  cfg.reorder_prob = 0.5;
  cfg.latency_jitter_prob = 0.5;
  cfg.latency_jitter_max_seconds = 1e-4;
  Machine m(4, CostModel::cm5(), cfg);
  const auto run = m.run([](Comm& c) { ring_program(c, 10); });
  FaultCounters sum;
  for (const auto& r : run.ranks) sum += r.faults;
  const auto t = run.faults_total();
  EXPECT_EQ(t.duplicated_messages, sum.duplicated_messages);
  EXPECT_EQ(t.reordered_messages, sum.reordered_messages);
  EXPECT_EQ(t.jittered_messages, sum.jittered_messages);
  EXPECT_EQ(t.total(), sum.total());
  EXPECT_GT(t.total(), 0u);
  EXPECT_EQ(t.summary(), sum.summary());
}

TEST(Faults, Fnv1aDetectsSingleBitFlips) {
  std::vector<std::byte> buf(64);
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<std::byte>(i * 7 + 1);
  const auto ref = fnv1a(buf.data(), buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      buf[i] ^= static_cast<std::byte>(1u << b);
      EXPECT_NE(fnv1a(buf.data(), buf.size()), ref)
          << "missed flip at byte " << i << " bit " << b;
      buf[i] ^= static_cast<std::byte>(1u << b);
    }
  }
  EXPECT_EQ(fnv1a(buf.data(), buf.size()), ref);
}

TEST(DeadlockDiagnostics, ReportsBlockedRanksAndWaitGraph) {
  Machine m(3, CostModel::cm5());
  try {
    m.run([](Comm& c) {
      // Rank 0 finishes; 1 and 2 each wait on a message that never comes.
      if (c.rank() == 1) (void)c.recv_value<int>(2, 7);
      if (c.rank() == 2) (void)c.recv_value<int>(1, 9);
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 2"), std::string::npos) << what;
    EXPECT_NE(what.find("tag=7"), std::string::npos) << what;
    EXPECT_NE(what.find("tag=9"), std::string::npos) << what;

    ASSERT_EQ(e.blocked().size(), 2u);
    const auto& b1 = e.blocked()[0];
    const auto& b2 = e.blocked()[1];
    EXPECT_EQ(b1.rank, 1);
    EXPECT_EQ(b1.want_src, 2);
    EXPECT_EQ(b1.want_tag, 7);
    EXPECT_EQ(b2.rank, 2);
    EXPECT_EQ(b2.want_src, 1);
    EXPECT_EQ(b2.want_tag, 9);
  }
}

}  // namespace
}  // namespace picpar::sim
