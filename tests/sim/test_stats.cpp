// Traffic accounting and phase attribution.
#include <gtest/gtest.h>

#include "sim/comm.hpp"

namespace picpar::sim {
namespace {

TEST(CommStats, CountsMessagesAndBytes) {
  Machine m(2, CostModel::zero());
  auto res = m.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::uint8_t> payload(64, 0);
      c.send(1, 1, payload);
      c.send(1, 2, payload);
    } else {
      (void)c.recv<std::uint8_t>(0, 1);
      (void)c.recv<std::uint8_t>(0, 2);
    }
  });
  const auto s0 = res.ranks[0].stats.total();
  const auto s1 = res.ranks[1].stats.total();
  EXPECT_EQ(s0.msgs_sent, 2u);
  EXPECT_EQ(s0.bytes_sent, 128u);
  EXPECT_EQ(s1.msgs_recv, 2u);
  EXPECT_EQ(s1.bytes_recv, 128u);
}

TEST(CommStats, PhaseAttribution) {
  Machine m(2, CostModel::zero());
  auto res = m.run([](Comm& c) {
    c.set_phase(Phase::kScatter);
    if (c.rank() == 0) c.send_value(1, 1, 7);
    if (c.rank() == 1) (void)c.recv_value<int>(0, 1);
    c.set_phase(Phase::kGather);
    if (c.rank() == 1) c.send_value(0, 2, 8);
    if (c.rank() == 0) (void)c.recv_value<int>(1, 2);
  });
  const auto& st0 = res.ranks[0].stats;
  EXPECT_EQ(st0.phase(Phase::kScatter).msgs_sent, 1u);
  EXPECT_EQ(st0.phase(Phase::kGather).msgs_recv, 1u);
  EXPECT_EQ(st0.phase(Phase::kScatter).msgs_recv, 0u);
}

TEST(CommStats, ComputeAttribution) {
  Machine m(1, CostModel::zero());
  auto res = m.run([](Comm& c) {
    c.set_phase(Phase::kPush);
    c.charge(0.25);
    c.set_phase(Phase::kFieldSolve);
    c.charge(0.5);
  });
  const auto& st = res.ranks[0].stats;
  EXPECT_DOUBLE_EQ(st.phase(Phase::kPush).compute_seconds, 0.25);
  EXPECT_DOUBLE_EQ(st.phase(Phase::kFieldSolve).compute_seconds, 0.5);
  EXPECT_DOUBLE_EQ(st.total().compute_seconds, 0.75);
}

TEST(CommStats, DiffIsolatesInterval) {
  Machine m(2, CostModel::zero());
  m.run([](Comm& c) {
    c.set_phase(Phase::kScatter);
    if (c.rank() == 0) {
      c.send_value(1, 1, 1);
      const auto snapshot = c.stats();
      c.send_value(1, 1, 2);
      c.send_value(1, 1, 3);
      const auto d = c.stats().diff(snapshot).phase(Phase::kScatter);
      EXPECT_EQ(d.msgs_sent, 2u);
    } else {
      for (int i = 0; i < 3; ++i) (void)c.recv_value<int>(0, 1);
    }
  });
}

TEST(CommStats, DiffSeparatesPhasesAndSides) {
  // Snapshot diffing is how run_pic books per-iteration, per-phase traffic
  // (Figs 18-19): the diff must keep phases and send/recv sides apart and
  // leave untouched phases at zero.
  Machine m(2, CostModel::zero());
  m.run([](Comm& c) {
    const auto snapshot = c.stats();
    c.set_phase(Phase::kScatter);
    if (c.rank() == 0) {
      c.send(1, 1, std::vector<std::uint8_t>(48, 0));
      c.set_phase(Phase::kGather);
      c.send(1, 2, std::vector<std::uint8_t>(16, 0));
      const auto d = c.stats().diff(snapshot);
      EXPECT_EQ(d.phase(Phase::kScatter).msgs_sent, 1u);
      EXPECT_EQ(d.phase(Phase::kScatter).bytes_sent, 48u);
      EXPECT_EQ(d.phase(Phase::kGather).msgs_sent, 1u);
      EXPECT_EQ(d.phase(Phase::kGather).bytes_sent, 16u);
      EXPECT_EQ(d.phase(Phase::kScatter).msgs_recv, 0u);
      EXPECT_EQ(d.phase(Phase::kPush).msgs_sent, 0u);
      EXPECT_EQ(d.total().bytes_sent, 64u);
      EXPECT_EQ(d.total().bytes_recv, 0u);
    } else {
      (void)c.recv<std::uint8_t>(0, 1);
      c.set_phase(Phase::kGather);
      (void)c.recv<std::uint8_t>(0, 2);
      const auto d = c.stats().diff(snapshot);
      EXPECT_EQ(d.phase(Phase::kScatter).msgs_recv, 1u);
      EXPECT_EQ(d.phase(Phase::kGather).msgs_recv, 1u);
      EXPECT_EQ(d.total().msgs_sent, 0u);
    }
  });
}

TEST(CommStats, DiffOfIdenticalSnapshotsIsZero) {
  Machine m(1, CostModel::zero());
  m.run([](Comm& c) {
    c.set_phase(Phase::kPush);
    c.charge(1.0);
    const auto snapshot = c.stats();
    const auto d = c.stats().diff(snapshot);
    for (const Phase p : {Phase::kOther, Phase::kScatter, Phase::kFieldSolve,
                          Phase::kGather, Phase::kPush, Phase::kRedistribute}) {
      EXPECT_EQ(d.phase(p).msgs_sent, 0u);
      EXPECT_EQ(d.phase(p).bytes_recv, 0u);
      EXPECT_DOUBLE_EQ(d.phase(p).compute_seconds, 0.0);
      EXPECT_DOUBLE_EQ(d.phase(p).comm_seconds, 0.0);
    }
  });
}

TEST(CommStats, DiffCapturesComputeAndCommSeconds) {
  CostModel cm = CostModel::zero();
  cm.tau = 1e-3;
  Machine m(2, cm);
  m.run([](Comm& c) {
    if (c.rank() != 0) {
      (void)c.recv_value<int>(0, 1);
      return;
    }
    c.set_phase(Phase::kFieldSolve);
    c.charge(0.5);
    const auto snapshot = c.stats();
    c.charge(0.25);
    c.send_value(1, 1, 0);
    const auto d = c.stats().diff(snapshot).phase(Phase::kFieldSolve);
    EXPECT_DOUBLE_EQ(d.compute_seconds, 0.25);  // pre-snapshot 0.5 excluded
    EXPECT_DOUBLE_EQ(d.comm_seconds, 1e-3);
  });
}

TEST(CommStats, SummaryListsActivePhases) {
  CommStats s;
  s.phase(Phase::kScatter).msgs_sent = 3;
  s.phase(Phase::kScatter).bytes_sent = 300;
  const auto text = s.summary();
  EXPECT_NE(text.find("scatter"), std::string::npos);
  EXPECT_EQ(text.find("gather"), std::string::npos);
}

TEST(CommStats, PhaseNames) {
  EXPECT_STREQ(phase_name(Phase::kScatter), "scatter");
  EXPECT_STREQ(phase_name(Phase::kFieldSolve), "field_solve");
  EXPECT_STREQ(phase_name(Phase::kGather), "gather");
  EXPECT_STREQ(phase_name(Phase::kPush), "push");
  EXPECT_STREQ(phase_name(Phase::kRedistribute), "redistribute");
  EXPECT_STREQ(phase_name(Phase::kOther), "other");
}

TEST(CommStats, CommSecondsAccumulateOnSender) {
  CostModel cm = CostModel::zero();
  cm.tau = 1e-3;
  Machine m(2, cm);
  auto res = m.run([](Comm& c) {
    if (c.rank() == 0) c.send_value(1, 1, 0);
    if (c.rank() == 1) (void)c.recv_value<int>(0, 1);
  });
  EXPECT_DOUBLE_EQ(res.ranks[0].stats.total().comm_seconds, 1e-3);
}

TEST(CommStats, WaitTimeCountedAsCommOnReceiver) {
  CostModel cm = CostModel::zero();
  Machine m(2, cm);
  auto res = m.run([](Comm& c) {
    if (c.rank() == 0) {
      c.charge(2.0);
      c.send_value(1, 1, 0);
    } else {
      (void)c.recv_value<int>(0, 1);  // waits until virtual t=2.0
    }
  });
  EXPECT_DOUBLE_EQ(res.ranks[1].stats.total().comm_seconds, 2.0);
  EXPECT_DOUBLE_EQ(res.ranks[1].clock, 2.0);
}

}  // namespace
}  // namespace picpar::sim
