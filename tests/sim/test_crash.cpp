// Fail-stop rank crashes: scheduled and probabilistic crash injection,
// virtual-time lease detection, shrink-to-survivors membership agreement,
// crashed-peer deadlock diagnostics, and bit-identical determinism of the
// whole recovery trajectory across seeds and execution modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "runtime/parallel_engine.hpp"
#include "sim/comm.hpp"
#include "sim/faults.hpp"

namespace picpar::sim {
namespace {

/// What one rank saw during a resilient run, for cross-run comparison.
struct RankTrace {
  std::vector<MembershipView> views;
  long last_sum = -1;
  int rounds_done = 0;
};

/// Iterated neighbor exchange + allreduce that survives fail-stop crashes:
/// on PeerFailedError the survivors agree on membership, resynchronize the
/// round counter (survivors throw from different rounds; pre-agreement
/// messages are purged with the old epoch) and continue on the shrunken
/// group. Crashed ranks simply stop — RankCrashed is not a std::exception
/// and unwinds straight through the catch below.
void resilient_rounds(Comm& c, int rounds, RankTrace& tr) {
  int r = 0;
  for (;;) {
    try {
      while (r < rounds) {
        const int p = c.size();
        if (p > 1) {
          const int next = (c.rank() + 1) % p;
          const int prev = (c.rank() + p - 1) % p;
          c.send(next, 5, std::vector<int>{c.world_rank(), r});
          const auto got = c.recv<int>(prev, 5);
          ASSERT_EQ(got.size(), 2u);
          EXPECT_EQ(got[1], r) << "round desynchronized after recovery";
        }
        tr.last_sum = c.allreduce_sum<long>(c.world_rank());
        ++r;
        tr.rounds_done = r;
      }
      return;
    } catch (const PeerFailedError& e) {
      EXPECT_FALSE(e.failed().empty());
      const MembershipView v = c.agree_on_membership();
      tr.views.push_back(v);
      r = c.allreduce_min(r);
    }
  }
}

TEST(Crash, ScheduledCrashStopsRankAndSurvivorsFinish) {
  const int p = 4;
  FaultConfig cfg;
  cfg.crash_schedule = {{2, 1e-4}};
  Machine m(p, CostModel::cm5(), cfg);
  std::vector<RankTrace> traces(p);
  const auto run =
      m.run([&](Comm& c) { resilient_rounds(c, 10, traces[c.world_rank()]); });

  ASSERT_EQ(run.crashes.size(), 1u);
  EXPECT_EQ(run.crashes[0].rank, 2);
  EXPECT_GE(run.crashes[0].vtime, 1e-4);
  EXPECT_EQ(run.epochs, 1);
  EXPECT_TRUE(run.ranks[2].crashed);
  EXPECT_FALSE(run.ranks[0].crashed);

  // Every survivor finished all rounds; the final allreduce ran on the
  // shrunken group (world ranks 0+1+3 = 4).
  for (int r : {0, 1, 3}) {
    EXPECT_EQ(traces[r].rounds_done, 10) << "rank " << r;
    EXPECT_EQ(traces[r].last_sum, 4) << "rank " << r;
    ASSERT_EQ(traces[r].views.size(), 1u) << "rank " << r;
    const auto& v = traces[r].views[0];
    EXPECT_EQ(v.epoch, 1);
    EXPECT_EQ(v.survivors, (std::vector<int>{0, 1, 3}));
    ASSERT_EQ(v.failed.size(), 1u);
    EXPECT_EQ(v.failed[0].rank, 2);
  }
  // All survivors agreed on one identical view (same resume vtime).
  EXPECT_EQ(traces[0].views[0].vtime, traces[1].views[0].vtime);
  EXPECT_EQ(traces[0].views[0].vtime, traces[3].views[0].vtime);
}

TEST(Crash, DetectionRespectsTheLease) {
  // Survivors may not declare the peer dead before crash time + lease: the
  // agreed resume time must sit past the lease expiry, and detection is
  // charged as virtual time (a heartbeat timeout, not a free oracle).
  const int p = 3;
  const double lease = 0.25;
  FaultConfig cfg;
  cfg.crash_schedule = {{1, 1e-4}};
  cfg.crash_lease_seconds = lease;
  Machine m(p, CostModel::cm5(), cfg);
  std::vector<RankTrace> traces(p);
  const auto run =
      m.run([&](Comm& c) { resilient_rounds(c, 5, traces[c.world_rank()]); });

  ASSERT_EQ(run.crashes.size(), 1u);
  const double crash_t = run.crashes[0].vtime;
  for (int r : {0, 2}) {
    ASSERT_EQ(traces[r].views.size(), 1u);
    EXPECT_GE(traces[r].views[0].vtime, crash_t + lease) << "rank " << r;
    EXPECT_GE(run.ranks[r].clock, crash_t + lease) << "rank " << r;
  }
}

TEST(Crash, CascadeShrinksTwice) {
  // Two crashes far enough apart that the group shrinks in two separate
  // membership epochs; the final allreduce runs on the last two survivors.
  const int p = 4;
  FaultConfig cfg;
  cfg.crash_schedule = {{1, 1e-4}, {3, 0.5}};
  cfg.crash_lease_seconds = 1e-3;
  Machine m(p, CostModel::cm5(), cfg);
  std::vector<RankTrace> traces(p);
  const auto run =
      m.run([&](Comm& c) { resilient_rounds(c, 2000, traces[c.world_rank()]); });

  ASSERT_EQ(run.crashes.size(), 2u);
  EXPECT_EQ(run.epochs, 2);
  for (int r : {0, 2}) {
    ASSERT_EQ(traces[r].views.size(), 2u) << "rank " << r;
    EXPECT_EQ(traces[r].views[1].survivors, (std::vector<int>{0, 2}));
    EXPECT_EQ(traces[r].rounds_done, 2000);
    EXPECT_EQ(traces[r].last_sum, 2);  // world ranks 0 + 2
  }
}

TEST(Crash, DeadlockReportNamesCrashedPeer) {
  // A survivor that keeps waiting on a dead peer after acknowledging the
  // crash (never calling agree_on_membership) is a deadlock — and the
  // diagnostics must say the peer CRASHED, not show an opaque cycle.
  const int p = 3;
  FaultConfig cfg;
  cfg.crash_schedule = {{0, 1e-4}};
  Machine m(p, CostModel::cm5(), cfg);
  try {
    m.run([&](Comm& c) {
      if (c.world_rank() == 0) {
        for (;;) c.charge_ops(1 << 20);  // runs into its crash point
      }
      try {
        c.recv<int>(0, 7);
      } catch (const PeerFailedError&) {
      }
      c.recv<int>(0, 7);  // crash already acked: this can never complete
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("CRASHED"), std::string::npos);
    bool saw_crashed_wait = false;
    for (const auto& b : e.blocked())
      if (b.want_src == 0 && b.want_src_crashed) saw_crashed_wait = true;
    EXPECT_TRUE(saw_crashed_wait)
        << "blocked info must flag the wait-on-crashed-peer edge";
  }
}

TEST(Crash, CrashCountersAppearInSummary) {
  FaultConfig cfg;
  cfg.crash_schedule = {{1, 1e-4}};
  Machine m(3, CostModel::cm5(), cfg);
  std::vector<RankTrace> traces(3);
  const auto run =
      m.run([&](Comm& c) { resilient_rounds(c, 5, traces[c.world_rank()]); });
  const auto f = run.faults_total();
  EXPECT_EQ(f.crashes, 1u);
  EXPECT_NE(f.summary().find("crashes=1"), std::string::npos);
  EXPECT_EQ(run.ranks[1].faults.crashes, 1u);
}

void expect_same_result(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].rank, b.crashes[i].rank);
    EXPECT_EQ(a.crashes[i].vtime, b.crashes[i].vtime);
  }
  EXPECT_EQ(a.epochs, b.epochs);
  for (std::size_t r = 0; r < a.ranks.size(); ++r) {
    EXPECT_EQ(a.ranks[r].clock, b.ranks[r].clock) << "rank " << r;
    EXPECT_EQ(a.ranks[r].crashed, b.ranks[r].crashed) << "rank " << r;
    const auto ta = a.ranks[r].stats.total();
    const auto tb = b.ranks[r].stats.total();
    EXPECT_EQ(ta.msgs_sent, tb.msgs_sent) << "rank " << r;
    EXPECT_EQ(ta.bytes_sent, tb.bytes_sent) << "rank " << r;
    EXPECT_EQ(ta.msgs_recv, tb.msgs_recv) << "rank " << r;
  }
}

void expect_same_traces(const std::vector<RankTrace>& a,
                        const std::vector<RankTrace>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].last_sum, b[r].last_sum) << "rank " << r;
    EXPECT_EQ(a[r].rounds_done, b[r].rounds_done) << "rank " << r;
    ASSERT_EQ(a[r].views.size(), b[r].views.size()) << "rank " << r;
    for (std::size_t v = 0; v < a[r].views.size(); ++v) {
      EXPECT_EQ(a[r].views[v].epoch, b[r].views[v].epoch);
      EXPECT_EQ(a[r].views[v].vtime, b[r].views[v].vtime);
      EXPECT_EQ(a[r].views[v].survivors, b[r].views[v].survivors);
    }
  }
}

TEST(Crash, ProbabilisticCrashesAreSeedDeterministic) {
  FaultConfig cfg;
  cfg.seed = 1;  // draws exactly two crashers at p=5, prob=0.5
  cfg.crash_prob = 0.5;
  cfg.crash_vtime_max = 0.02;  // within ~200 rounds of cm5-cost exchange
  const int p = 5;

  std::vector<RankTrace> ta(p), tb(p);
  Machine m1(p, CostModel::cm5(), cfg);
  Machine m2(p, CostModel::cm5(), cfg);
  const auto a =
      m1.run([&](Comm& c) { resilient_rounds(c, 200, ta[c.world_rank()]); });
  const auto b =
      m2.run([&](Comm& c) { resilient_rounds(c, 200, tb[c.world_rank()]); });
  EXPECT_GT(a.crashes.size(), 0u) << "seed 1 should produce >= 1 crash";
  expect_same_result(a, b);
  expect_same_traces(ta, tb);
}

TEST(Crash, SequentialAndParallelRecoveryAreBitIdentical) {
  FaultConfig cfg;
  cfg.crash_schedule = {{2, 1e-3}, {0, 0.05}};
  const int p = 4;

  std::vector<RankTrace> ts(p), tp(p);
  Machine seq(p, CostModel::cm5(), cfg);
  const auto a =
      seq.run([&](Comm& c) { resilient_rounds(c, 500, ts[c.world_rank()]); });

  Machine par(p, CostModel::cm5(), cfg);
  runtime::use_parallel(par);
  const auto b =
      par.run([&](Comm& c) { resilient_rounds(c, 500, tp[c.world_rank()]); });

  ASSERT_EQ(a.crashes.size(), 2u);
  expect_same_result(a, b);
  expect_same_traces(ts, tp);
}

TEST(Crash, FarFutureCrashNeverFires) {
  // A schedule the run never reaches must leave the result identical to a
  // crash-free machine: crash support may not perturb clean executions.
  const int p = 4;
  const auto program = [](Comm& c) {
    RankTrace tr;
    resilient_rounds(c, 20, tr);
  };
  Machine plain(p, CostModel::cm5());
  FaultConfig cfg;
  cfg.crash_schedule = {{1, 1e9}};
  Machine armed(p, CostModel::cm5(), cfg);
  const auto a = plain.run(program);
  const auto b = armed.run(program);
  EXPECT_TRUE(b.crashes.empty());
  EXPECT_EQ(b.epochs, 0);
  expect_same_result(a, b);
}

TEST(Crash, ConfigValidation) {
  FaultConfig bad;
  bad.crash_schedule = {{7, 0.1}};
  EXPECT_THROW(FaultModel(bad, 4), std::invalid_argument);
  bad.crash_schedule = {{-1, 0.1}};
  EXPECT_THROW(FaultModel(bad, 4), std::invalid_argument);
  bad.crash_schedule = {{1, -0.5}};
  EXPECT_THROW(FaultModel(bad, 4), std::invalid_argument);
  FaultConfig neg_lease;
  neg_lease.crash_schedule = {{1, 0.1}};
  neg_lease.crash_lease_seconds = -1.0;
  EXPECT_THROW(FaultModel(neg_lease, 4), std::invalid_argument);
}

}  // namespace
}  // namespace picpar::sim
