#include <gtest/gtest.h>

#include <atomic>

#include "sim/comm.hpp"

namespace picpar::sim {
namespace {

TEST(PointToPoint, SendRecvValue) {
  Machine m(2, CostModel::zero());
  m.run([](Comm& c) {
    if (c.rank() == 0) c.send_value(1, 5, 123);
    if (c.rank() == 1) {
      EXPECT_EQ(c.recv_value<int>(0, 5), 123);
    }
  });
}

TEST(PointToPoint, VectorPayloadRoundTrips) {
  Machine m(2, CostModel::zero());
  m.run([](Comm& c) {
    std::vector<double> data{1.5, -2.5, 3.25};
    if (c.rank() == 0) c.send(1, 1, data);
    if (c.rank() == 1) {
      EXPECT_EQ(c.recv<double>(0, 1), data);
    }
  });
}

TEST(PointToPoint, EmptyMessageDelivered) {
  Machine m(2, CostModel::zero());
  m.run([](Comm& c) {
    if (c.rank() == 0) c.send(1, 1, std::vector<int>{});
    if (c.rank() == 1) {
      EXPECT_TRUE(c.recv<int>(0, 1).empty());
    }
  });
}

TEST(PointToPoint, FifoOrderPerSenderAndTag) {
  Machine m(2, CostModel::zero());
  m.run([](Comm& c) {
    if (c.rank() == 0)
      for (int i = 0; i < 10; ++i) c.send_value(1, 3, i);
    if (c.rank() == 1) {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(c.recv_value<int>(0, 3), i);
    }
  });
}

TEST(PointToPoint, TagMatchingSkipsOtherTags) {
  Machine m(2, CostModel::zero());
  m.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send_value(1, 7, 70);
      c.send_value(1, 8, 80);
    }
    if (c.rank() == 1) {
      EXPECT_EQ(c.recv_value<int>(0, 8), 80);  // later message, earlier tag 8
      EXPECT_EQ(c.recv_value<int>(0, 7), 70);
    }
  });
}

TEST(PointToPoint, AnySourceReportsActualSender) {
  Machine m(3, CostModel::zero());
  m.run([](Comm& c) {
    if (c.rank() != 0) c.send_value(0, 1, c.rank());
    if (c.rank() == 0) {
      int seen = 0;
      for (int i = 0; i < 2; ++i) {
        int src = -1;
        auto v = c.recv<int>(kAnySource, 1, &src);
        EXPECT_EQ(v[0], src);
        seen += src;
      }
      EXPECT_EQ(seen, 3);  // ranks 1 and 2
    }
  });
}

TEST(PointToPoint, AnyTagMatchesFirstAvailable) {
  Machine m(2, CostModel::zero());
  m.run([](Comm& c) {
    if (c.rank() == 0) c.send_value(1, 99, 1);
    if (c.rank() == 1) {
      auto msg = c.recv_msg(0, kAnyTag);
      EXPECT_EQ(msg.tag, 99);
    }
  });
}

TEST(PointToPoint, IprobeSeesPendingMessage) {
  Machine m(2, CostModel::zero());
  m.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send_value(1, 4, 0);
      c.send_value(1, 0, 1);  // rank 1 waits on this to sequence the probe
    }
    if (c.rank() == 1) {
      (void)c.recv_value<int>(0, 0);
      EXPECT_TRUE(c.iprobe(0, 4));
      EXPECT_FALSE(c.iprobe(0, 5));
      (void)c.recv_value<int>(0, 4);
      EXPECT_FALSE(c.iprobe(0, 4));
    }
  });
}

TEST(PointToPoint, SelfSendIsDeliverable) {
  Machine m(1, CostModel::zero());
  m.run([](Comm& c) {
    c.send_value(0, 1, 42);
    EXPECT_EQ(c.recv_value<int>(0, 1), 42);
  });
}

TEST(PointToPoint, BadDestinationThrows) {
  Machine m(2, CostModel::zero());
  EXPECT_THROW(m.run([](Comm& c) { c.send_value(5, 1, 0); }),
               std::out_of_range);
}

TEST(TagSpace, UserSendOnReservedTagThrows) {
  // Negative tags are the collectives' channel; letting user traffic onto
  // them can steal protocol messages. The invariant is checked, not just
  // documented.
  Machine m(2, CostModel::zero());
  EXPECT_THROW(
      m.run([](Comm& c) {
        if (c.rank() == 0) c.send_value(1, -3, 0);  // throws before enqueue
      }),
      std::invalid_argument);
}

TEST(TagSpace, UserExplicitReceiveOnReservedTagThrows) {
  Machine m(2, CostModel::zero());
  EXPECT_THROW(m.run([](Comm& c) {
                 if (c.rank() == 1) (void)c.recv<int>(0, -200);
               }),
               std::invalid_argument);
}

TEST(TagSpace, WildcardTagReceiveIsAllowed) {
  // kAnyTag is negative but is the wildcard, not a reserved channel.
  Machine m(2, CostModel::zero());
  m.run([](Comm& c) {
    if (c.rank() == 0) c.send_value(1, 0, 7);
    if (c.rank() == 1) {
      EXPECT_EQ(c.recv_value<int>(kAnySource, kAnyTag), 7);
    }
  });
}

TEST(TagSpace, CollectivesMayUseReservedTagsInternally) {
  // The strict check exempts traffic inside a collective scope; every
  // collective keeps working under the default strict machine.
  Machine m(4, CostModel::zero());
  m.run([](Comm& c) {
    c.barrier();
    EXPECT_EQ(c.allreduce_sum<int>(1), c.size());
    EXPECT_EQ(c.bcast_value<int>(c.rank() == 0 ? 5 : 0, 0), 5);
  });
}

TEST(TagSpace, StrictCheckCanBeTradedForAnalysis) {
  // set_strict_tags(false) downgrades the throw so the analyzer can record
  // the violation with provenance instead (see tests/analysis).
  Machine m(2, CostModel::zero());
  m.set_strict_tags(false);
  m.run([](Comm& c) {
    if (c.rank() == 0) c.send_value(1, -3, 9);
    if (c.rank() == 1) {
      EXPECT_EQ(c.recv_value<int>(0, kAnyTag), 9);
    }
  });
}

TEST(Machine, DeadlockDetected) {
  Machine m(2, CostModel::zero());
  EXPECT_THROW(m.run([](Comm& c) { (void)c.recv_msg(); }), DeadlockError);
}

TEST(Machine, PartialDeadlockDetected) {
  // Rank 0 finishes; rank 1 waits forever.
  Machine m(2, CostModel::zero());
  EXPECT_THROW(m.run([](Comm& c) {
                 if (c.rank() == 1) (void)c.recv_msg(0, 1);
               }),
               DeadlockError);
}

TEST(Machine, RankExceptionPropagates) {
  Machine m(4, CostModel::zero());
  EXPECT_THROW(m.run([](Comm& c) {
                 if (c.rank() == 2) throw std::runtime_error("boom");
               }),
               std::runtime_error);
}

TEST(Machine, ZeroRanksRejected) {
  EXPECT_THROW(Machine(0, CostModel::zero()), std::invalid_argument);
}

TEST(Machine, ReusableForSequentialRuns) {
  Machine m(3, CostModel::zero());
  for (int round = 0; round < 3; ++round) {
    auto res = m.run([](Comm& c) { c.barrier(); });
    EXPECT_EQ(res.ranks.size(), 3u);
  }
}

TEST(Machine, RunReturnsPerRankReports) {
  Machine m(4, CostModel::zero());
  auto res = m.run([](Comm& c) { c.charge(1.0 * (c.rank() + 1)); });
  ASSERT_EQ(res.ranks.size(), 4u);
  EXPECT_DOUBLE_EQ(res.makespan(), 4.0);
  EXPECT_DOUBLE_EQ(res.max_compute(), 4.0);
  EXPECT_DOUBLE_EQ(res.overhead(), 0.0);
}

TEST(Machine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Machine m(8, CostModel::cm5());
    auto res = m.run([](Comm& c) {
      for (int i = 0; i < 5; ++i) {
        auto v = c.allgather<int>(c.rank() * i);
        c.charge_ops(static_cast<std::uint64_t>(v[0] + 10));
        c.barrier();
      }
    });
    return res.makespan();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace picpar::sim
