// Per-rank transport state must be sparse: a rank that exchanges with k
// peers holds O(k) sequence/link/dedup state regardless of the world size.
// These tests pin the invariant directly through the machine's accounting
// accessors (rank_transport_bytes / rank_transport_peers) — the regression
// they guard is the dense per-rank `vector(nranks)` layout, whose footprint
// scales O(p) per rank and O(p^2) per machine, and which kept dead-rank
// slots alive after shrink-to-survivors recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/comm.hpp"
#include "sim/faults.hpp"

namespace picpar::sim {
namespace {

/// A few rounds of nearest-neighbor ring exchange: each rank touches
/// exactly two peers (send right, receive left), no collectives.
void ring_rounds(Comm& c, int rounds) {
  const int n = c.size();
  if (n == 1) return;
  const int right = (c.rank() + 1) % n;
  const int left = (c.rank() + n - 1) % n;
  for (int i = 0; i < rounds; ++i) {
    c.send(right, 5, std::vector<int>{c.rank(), i});
    (void)c.recv<int>(left, 5);
  }
}

struct RingFootprint {
  std::size_t max_bytes = 0;
  std::size_t max_peers = 0;
};

RingFootprint ring_footprint(int p) {
  Machine m(p, CostModel::zero());
  m.run([](Comm& c) { ring_rounds(c, 3); });
  RingFootprint fp;
  for (int r = 0; r < p; ++r) {
    fp.max_bytes = std::max(fp.max_bytes, m.rank_transport_bytes(r));
    fp.max_peers = std::max(fp.max_peers, m.rank_transport_peers(r));
  }
  return fp;
}

TEST(TransportState, RingTouchesOnePeerAtAnyWorldSize) {
  const auto fp8 = ring_footprint(8);
  const auto fp64 = ring_footprint(64);
  const auto fp256 = ring_footprint(256);

  // Only the send side keeps persistent per-peer state (the outgoing
  // sequence counter); a fault-free receive consumes its message and
  // retains nothing. One send-to peer — never more, at any p.
  EXPECT_EQ(fp8.max_peers, 1u);
  EXPECT_EQ(fp64.max_peers, 1u);
  EXPECT_EQ(fp256.max_peers, 1u);

  // The footprint is a function of the communication pattern, not the
  // world size: every rank runs the identical ring pattern, so the
  // per-rank bytes are exactly equal across machine sizes. A dense layout
  // scales them with p.
  EXPECT_GT(fp8.max_bytes, 0u);
  EXPECT_EQ(fp8.max_bytes, fp64.max_bytes);
  EXPECT_EQ(fp8.max_bytes, fp256.max_bytes);
}

TEST(TransportState, UntouchedRanksHoldNoTransportState) {
  // Only ranks 0 and 1 talk; everyone else stays idle. Idle ranks must pin
  // zero transport bytes — the dense layout charged them O(p) each.
  const int p = 32;
  Machine m(p, CostModel::zero());
  m.run([](Comm& c) {
    if (c.rank() == 0) c.send(1, 9, std::vector<int>{42});
    if (c.rank() == 1) (void)c.recv<int>(0, 9);
  });
  for (int r = 2; r < p; ++r) {
    EXPECT_EQ(m.rank_transport_bytes(r), 0u) << "rank " << r;
    EXPECT_EQ(m.rank_transport_peers(r), 0u) << "rank " << r;
  }
  EXPECT_EQ(m.rank_transport_peers(0), 1u);
  // The receiver holds no persistent per-peer state in a fault-free run:
  // dedup sets are only materialized under duplicate injection.
  EXPECT_EQ(m.rank_transport_peers(1), 0u);
  EXPECT_EQ(m.rank_transport_bytes(1), 0u);
}

/// Ring exchange that rides through fail-stop crashes: on PeerFailedError
/// the survivors agree on membership and continue on the shrunken ring.
/// The per-round allreduce spans the whole group, so every survivor is
/// guaranteed to observe the failure and reach the agreement round.
void resilient_ring(Comm& c, int rounds) {
  int done = 0;
  for (;;) {
    try {
      while (done < rounds) {
        ring_rounds(c, 1);
        (void)c.allreduce_sum<long>(1);
        ++done;
      }
      return;
    } catch (const PeerFailedError&) {
      (void)c.agree_on_membership();
      done = c.allreduce_min(done);
    }
  }
}

TEST(TransportState, CrashRecoveryStaysSparseAndDeterministic) {
  // World of 48 with duplicate-injection (so the seen_seq dedup sets are
  // exercised) and one mid-run crash. After shrink-to-survivors recovery,
  // per-rank transport state must stay O(touched peers): ring neighbors
  // before and after the shrink, the collectives' O(log p) tree partners,
  // and the acked crash record — nowhere near the 47 peers a dense (or
  // stale, never-purged) table would report.
  const int p = 48;
  const auto run_once = [&](std::vector<std::size_t>& bytes,
                            std::vector<std::size_t>& peers) {
    FaultConfig cfg;
    cfg.seed = 7;
    cfg.duplicate_prob = 0.2;
    cfg.crash_schedule = {{5, 2e-4}};
    Machine m(p, CostModel::cm5(), cfg);
    const auto run = m.run([](Comm& c) { resilient_ring(c, 6); });
    ASSERT_EQ(run.crashes.size(), 1u);
    for (int r = 0; r < p; ++r) {
      bytes.push_back(m.rank_transport_bytes(r));
      peers.push_back(m.rank_transport_peers(r));
    }
  };

  std::vector<std::size_t> bytes1, peers1, bytes2, peers2;
  run_once(bytes1, peers1);
  run_once(bytes2, peers2);

  // The recovery trajectory — including the membership-epoch purge of the
  // dead rank's sequence state — is deterministic, so the accounting is
  // bit-identical across runs.
  EXPECT_EQ(bytes1, bytes2);
  EXPECT_EQ(peers1, peers2);

  const std::size_t max_peers = *std::max_element(peers1.begin(), peers1.end());
  EXPECT_LE(max_peers, 16u) << "transport state grew toward world size";
  EXPECT_GT(max_peers, 0u);
}

}  // namespace
}  // namespace picpar::sim
