// Collectives, parameterized over machine sizes including non-powers of two.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <utility>

#include "sim/comm.hpp"

namespace picpar::sim {
namespace {

class Collectives : public ::testing::TestWithParam<int> {
protected:
  int p() const { return GetParam(); }
  Machine machine() { return Machine(p(), CostModel::zero()); }
};

TEST_P(Collectives, BarrierCompletes) {
  auto m = machine();
  m.run([](Comm& c) {
    for (int i = 0; i < 3; ++i) c.barrier();
  });
}

TEST_P(Collectives, BcastFromEveryRoot) {
  auto m = machine();
  for (int root = 0; root < p(); ++root) {
    m.run([root](Comm& c) {
      std::vector<int> data;
      if (c.rank() == root) data = {root, root * 2, root * 3};
      else data = {0, 0, 0};
      data = c.bcast(std::move(data), root);
      EXPECT_EQ(data, (std::vector<int>{root, root * 2, root * 3}));
    });
  }
}

TEST_P(Collectives, BcastValue) {
  auto m = machine();
  m.run([](Comm& c) {
    const double v = c.bcast_value(c.rank() == 0 ? 3.5 : 0.0, 0);
    EXPECT_DOUBLE_EQ(v, 3.5);
  });
}

TEST_P(Collectives, AllreduceSum) {
  auto m = machine();
  const int n = p();
  m.run([n](Comm& c) {
    EXPECT_EQ(c.allreduce_sum<long>(c.rank() + 1),
              static_cast<long>(n) * (n + 1) / 2);
  });
}

TEST_P(Collectives, AllreduceMaxMin) {
  auto m = machine();
  const int n = p();
  m.run([n](Comm& c) {
    EXPECT_EQ(c.allreduce_max<int>(c.rank()), n - 1);
    EXPECT_EQ(c.allreduce_min<int>(c.rank() + 10), 10);
  });
}

TEST_P(Collectives, AllreduceVectorElementwise) {
  auto m = machine();
  const int n = p();
  m.run([n](Comm& c) {
    std::vector<double> v{1.0, static_cast<double>(c.rank())};
    v = c.allreduce(std::move(v), [](double a, double b) { return a + b; });
    EXPECT_DOUBLE_EQ(v[0], n);
    EXPECT_DOUBLE_EQ(v[1], n * (n - 1) / 2.0);
  });
}

TEST_P(Collectives, AllgatherOrderedByRank) {
  auto m = machine();
  const int n = p();
  m.run([n](Comm& c) {
    const auto v = c.allgather<int>(c.rank() * 10);
    ASSERT_EQ(static_cast<int>(v.size()), n);
    for (int r = 0; r < n; ++r) EXPECT_EQ(v[static_cast<std::size_t>(r)], r * 10);
  });
}

TEST_P(Collectives, AllgathervVariableBlocks) {
  auto m = machine();
  const int n = p();
  m.run([n](Comm& c) {
    // Rank r contributes r+1 copies of r.
    std::vector<int> mine(static_cast<std::size_t>(c.rank() + 1), c.rank());
    std::vector<std::size_t> offsets;
    const auto cat = c.allgatherv(mine, &offsets);
    ASSERT_EQ(static_cast<int>(cat.size()), n * (n + 1) / 2);
    ASSERT_EQ(static_cast<int>(offsets.size()), n);
    for (int r = 0; r < n; ++r) {
      for (int k = 0; k <= r; ++k)
        EXPECT_EQ(cat[offsets[static_cast<std::size_t>(r)] +
                      static_cast<std::size_t>(k)],
                  r);
    }
  });
}

TEST_P(Collectives, AllgathervWithEmptyBlocks) {
  auto m = machine();
  m.run([](Comm& c) {
    std::vector<double> mine;
    if (c.rank() % 2 == 0) mine = {static_cast<double>(c.rank())};
    std::vector<std::size_t> offsets;
    const auto cat = c.allgatherv(mine, &offsets);
    std::size_t expect = 0;
    for (int r = 0; r < c.size(); ++r)
      if (r % 2 == 0) ++expect;
    EXPECT_EQ(cat.size(), expect);
  });
}

TEST_P(Collectives, ExscanSum) {
  auto m = machine();
  m.run([](Comm& c) {
    EXPECT_EQ(c.exscan_sum<int>(2), 2 * c.rank());
  });
}

TEST_P(Collectives, AllToManyFullExchange) {
  auto m = machine();
  const int n = p();
  m.run([n](Comm& c) {
    std::vector<std::vector<int>> send(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d)
      send[static_cast<std::size_t>(d)] = {c.rank() * 1000 + d};
    auto recv = c.all_to_many(std::move(send));
    ASSERT_EQ(static_cast<int>(recv.size()), n);
    for (int s = 0; s < n; ++s) {
      ASSERT_EQ(recv[static_cast<std::size_t>(s)].size(), 1u);
      EXPECT_EQ(recv[static_cast<std::size_t>(s)][0], s * 1000 + c.rank());
    }
  });
}

TEST_P(Collectives, AllToManySparsePattern) {
  auto m = machine();
  const int n = p();
  m.run([n](Comm& c) {
    // Send only to rank (self+1)%p, three elements.
    std::vector<std::vector<long>> send(static_cast<std::size_t>(n));
    const int dst = (c.rank() + 1) % n;
    send[static_cast<std::size_t>(dst)] = {1, 2, 3};
    auto recv = c.all_to_many(std::move(send));
    const int src = (c.rank() - 1 + n) % n;
    for (int s = 0; s < n; ++s) {
      if (s == src) {
        EXPECT_EQ(recv[static_cast<std::size_t>(s)],
                  (std::vector<long>{1, 2, 3}));
      } else if (s != c.rank() || src != c.rank()) {
        EXPECT_TRUE(s == src || recv[static_cast<std::size_t>(s)].empty());
      }
    }
  });
}

TEST_P(Collectives, AllToManyAllEmpty) {
  auto m = machine();
  const int n = p();
  m.run([n](Comm& c) {
    std::vector<std::vector<int>> send(static_cast<std::size_t>(n));
    auto recv = c.all_to_many(std::move(send));
    for (const auto& b : recv) EXPECT_TRUE(b.empty());
  });
}

TEST_P(Collectives, AllToManyPairsMatchesDense) {
  // The dense overload delegates to the sparse one, so equivalence here is
  // the contract that every pre-sparsification caller still gets the exact
  // exchange it got before: same payloads, same source attribution.
  auto m = machine();
  const int n = p();
  m.run([n](Comm& c) {
    // Every rank sends to its ring neighbors and to rank 0, skipping one
    // destination class so some buffers are empty in the dense form.
    auto payload = [&](int src, int dst) {
      return std::vector<int>{src * 1000 + dst, dst};
    };
    std::vector<std::vector<int>> dense(static_cast<std::size_t>(n));
    std::vector<std::pair<int, std::vector<int>>> pairs;
    // Deliberately unsorted destination order for the sparse form.
    for (const int d : {0, (c.rank() + 1) % n, (c.rank() + n - 1) % n}) {
      if (!dense[static_cast<std::size_t>(d)].empty()) continue;
      dense[static_cast<std::size_t>(d)] = payload(c.rank(), d);
      pairs.emplace_back(d, payload(c.rank(), d));
    }
    std::reverse(pairs.begin(), pairs.end());
    const auto dense_recv = c.all_to_many(std::move(dense));
    const auto sparse_recv = c.all_to_many(std::move(pairs));
    // Sparse result expanded to dense shape must match exactly.
    std::vector<std::vector<int>> expanded(static_cast<std::size_t>(n));
    int prev_src = -1;
    for (const auto& [src, buf] : sparse_recv) {
      EXPECT_GT(src, prev_src) << "sources must ascend";
      prev_src = src;
      EXPECT_FALSE(buf.empty()) << "empty deliveries must be dropped";
      expanded[static_cast<std::size_t>(src)] = buf;
    }
    EXPECT_EQ(expanded, dense_recv);
  });
}

TEST_P(Collectives, AllToManyPairsValidation) {
  auto m = machine();
  EXPECT_THROW(m.run([](Comm& c) {
                 std::vector<std::pair<int, std::vector<int>>> send;
                 send.emplace_back(c.size(), std::vector<int>{1});
                 (void)c.all_to_many(std::move(send));
               }),
               std::invalid_argument);
  auto m2 = machine();
  EXPECT_THROW(m2.run([](Comm& c) {
                 std::vector<std::pair<int, std::vector<int>>> send;
                 send.emplace_back(0, std::vector<int>{1});
                 send.emplace_back(0, std::vector<int>{2});
                 (void)c.all_to_many(std::move(send));
               }),
               std::invalid_argument);
}

TEST_P(Collectives, AllToManyWrongSizeThrows) {
  auto m = machine();
  EXPECT_THROW(m.run([](Comm& c) {
                 std::vector<std::vector<int>> send(
                     static_cast<std::size_t>(c.size()) + 1);
                 (void)c.all_to_many(std::move(send));
               }),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, Collectives,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 32),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace picpar::sim
