// Virtual-time accounting under the two-level cost model.
#include <gtest/gtest.h>

#include "sim/comm.hpp"

namespace picpar::sim {
namespace {

TEST(Clocks, ChargeAdvancesClock) {
  Machine m(1, CostModel::zero());
  m.run([](Comm& c) {
    EXPECT_DOUBLE_EQ(c.clock(), 0.0);
    c.charge(1.5);
    EXPECT_DOUBLE_EQ(c.clock(), 1.5);
  });
}

TEST(Clocks, ChargeOpsUsesDelta) {
  CostModel cm = CostModel::zero();
  cm.delta = 2e-6;
  Machine m(1, cm);
  m.run([](Comm& c) {
    c.charge_ops(1000);
    EXPECT_DOUBLE_EQ(c.clock(), 2e-3);
  });
}

TEST(Clocks, SenderPaysTauPlusBytesMu) {
  CostModel cm = CostModel::zero();
  cm.tau = 1e-3;
  cm.mu = 1e-6;
  Machine m(2, cm);
  auto res = m.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::uint8_t> payload(100, 1);
      c.send(1, 1, payload);
      EXPECT_DOUBLE_EQ(c.clock(), 1e-3 + 100e-6);
    } else {
      (void)c.recv<std::uint8_t>(0, 1);
    }
  });
  EXPECT_DOUBLE_EQ(res.ranks[0].clock, 1e-3 + 100e-6);
}

TEST(Clocks, ReceiverAdvancesToArrival) {
  CostModel cm = CostModel::zero();
  cm.tau = 1e-3;
  Machine m(2, cm);
  m.run([](Comm& c) {
    if (c.rank() == 0) {
      c.charge(5.0);             // sender far ahead
      c.send_value(1, 1, 0);     // arrival at 5.0 + tau
    } else {
      (void)c.recv_value<int>(0, 1);
      EXPECT_DOUBLE_EQ(c.clock(), 5.0 + 1e-3);
    }
  });
}

TEST(Clocks, ReceiverAheadKeepsOwnClock) {
  CostModel cm = CostModel::zero();
  cm.tau = 1e-3;
  Machine m(2, cm);
  m.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send_value(1, 1, 0);  // arrival ~1e-3
    } else {
      c.charge(10.0);  // receiver way ahead
      (void)c.recv_value<int>(0, 1);
      EXPECT_DOUBLE_EQ(c.clock(), 10.0);
    }
  });
}

TEST(Clocks, RecvCopyMuChargesReceiver) {
  CostModel cm = CostModel::zero();
  cm.recv_copy_mu = 1e-6;
  Machine m(2, cm);
  m.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::uint8_t> payload(1000, 0);
      c.send(1, 1, payload);
    } else {
      (void)c.recv<std::uint8_t>(0, 1);
      EXPECT_DOUBLE_EQ(c.clock(), 1000e-6);
    }
  });
}

TEST(Clocks, MessageCostHelper) {
  CostModel cm;
  cm.tau = 2.0;
  cm.mu = 0.5;
  EXPECT_DOUBLE_EQ(cm.message_cost(10), 2.0 + 5.0);
}

TEST(Clocks, ZeroModelMakesFreeCommunication) {
  Machine m(4, CostModel::zero());
  auto res = m.run([](Comm& c) {
    c.barrier();
    (void)c.allreduce_sum<int>(1);
  });
  EXPECT_DOUBLE_EQ(res.makespan(), 0.0);
}

TEST(Clocks, Cm5PresetHasPositiveConstants) {
  const auto cm = CostModel::cm5();
  EXPECT_GT(cm.tau, 0.0);
  EXPECT_GT(cm.mu, 0.0);
  EXPECT_GT(cm.delta, 0.0);
}

TEST(Clocks, ModernClusterFasterThanCm5) {
  const auto cm5 = CostModel::cm5();
  const auto mod = CostModel::modern_cluster();
  EXPECT_LT(mod.tau, cm5.tau);
  EXPECT_LT(mod.mu, cm5.mu);
  EXPECT_LT(mod.delta, cm5.delta);
}

TEST(Clocks, BarrierSynchronizesLaggards) {
  CostModel cm = CostModel::zero();
  cm.tau = 1e-3;
  Machine m(4, cm);
  auto res = m.run([](Comm& c) {
    if (c.rank() == 2) c.charge(1.0);
    c.barrier();
    // After the barrier everyone's clock must be >= the slowest entrant.
    EXPECT_GE(c.clock(), 1.0);
  });
  EXPECT_GE(res.makespan(), 1.0);
}

TEST(Clocks, MakespanIsMaxClock) {
  Machine m(3, CostModel::zero());
  auto res = m.run([](Comm& c) { c.charge(static_cast<double>(c.rank())); });
  EXPECT_DOUBLE_EQ(res.makespan(), 2.0);
}

}  // namespace
}  // namespace picpar::sim
