// Randomized stress tests of the simulated machine: arbitrary sparse
// communication patterns checked against directly computed expectations.
#include <gtest/gtest.h>

#include <map>

#include "sim/comm.hpp"
#include "sim/faults.hpp"
#include "util/rng.hpp"

namespace picpar::sim {
namespace {

struct FuzzCase {
  int ranks;
  std::uint64_t seed;
};

class AllToManyFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(AllToManyFuzz, MatchesReferenceExchange) {
  const auto [ranks, seed] = GetParam();
  // Deterministically generate the full traffic matrix up front so every
  // rank (and the checker) sees the same expectation.
  picpar::Rng pattern(seed);
  std::vector<std::vector<std::vector<int>>> traffic(
      static_cast<std::size_t>(ranks));
  for (int s = 0; s < ranks; ++s) {
    traffic[static_cast<std::size_t>(s)].resize(static_cast<std::size_t>(ranks));
    for (int d = 0; d < ranks; ++d) {
      const auto len = pattern.below(5);  // 0..4 elements, often empty
      for (std::uint64_t k = 0; k < len; ++k)
        traffic[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)]
            .push_back(static_cast<int>(s * 10000 + d * 100 + static_cast<int>(k)));
    }
  }

  Machine m(ranks, CostModel::zero());
  m.run([&](Comm& c) {
    auto send = traffic[static_cast<std::size_t>(c.rank())];
    auto recv = c.all_to_many(std::move(send));
    for (int s = 0; s < ranks; ++s) {
      EXPECT_EQ(recv[static_cast<std::size_t>(s)],
                traffic[static_cast<std::size_t>(s)]
                       [static_cast<std::size_t>(c.rank())])
          << "rank " << c.rank() << " from " << s;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, AllToManyFuzz,
    ::testing::Values(FuzzCase{2, 1}, FuzzCase{3, 2}, FuzzCase{5, 3},
                      FuzzCase{8, 4}, FuzzCase{13, 5}, FuzzCase{16, 6}),
    [](const ::testing::TestParamInfo<FuzzCase>& i) {
      return "p" + std::to_string(i.param.ranks) + "s" +
             std::to_string(i.param.seed);
    });

class FaultyFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FaultyFuzz, AllToManySurvivesActiveFaultModel) {
  // Same reference exchange as AllToManyFuzz, but over a fabric that
  // jitters, duplicates, reorders and corrupts. The transport must hide
  // all of it: every payload arrives exactly once, bit-identical.
  const auto [ranks, seed] = GetParam();
  picpar::Rng pattern(seed);
  std::vector<std::vector<std::vector<int>>> traffic(
      static_cast<std::size_t>(ranks));
  for (int s = 0; s < ranks; ++s) {
    traffic[static_cast<std::size_t>(s)].resize(static_cast<std::size_t>(ranks));
    for (int d = 0; d < ranks; ++d) {
      const auto len = pattern.below(5);
      for (std::uint64_t k = 0; k < len; ++k)
        traffic[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)]
            .push_back(static_cast<int>(s * 10000 + d * 100 + static_cast<int>(k)));
    }
  }

  FaultConfig cfg;
  cfg.seed = seed * 1000 + 17;
  cfg.latency_jitter_prob = 0.5;
  cfg.latency_jitter_max_seconds = 1e-4;
  cfg.duplicate_prob = 0.3;
  cfg.reorder_prob = 0.3;
  cfg.corrupt_prob = 0.1;
  cfg.max_retries = 20;
  Machine m(ranks, CostModel::cm5(), cfg);
  const auto run = m.run([&](Comm& c) {
    // Two rounds back to back: leftover duplicates from round one must not
    // bleed into round two's matching.
    for (int round = 0; round < 2; ++round) {
      auto send = traffic[static_cast<std::size_t>(c.rank())];
      auto recv = c.all_to_many(std::move(send));
      for (int s = 0; s < ranks; ++s) {
        EXPECT_EQ(recv[static_cast<std::size_t>(s)],
                  traffic[static_cast<std::size_t>(s)]
                         [static_cast<std::size_t>(c.rank())])
            << "round " << round << " rank " << c.rank() << " from " << s;
      }
    }
  });
  EXPECT_GT(run.faults_total().total(), 0u) << "fault model never fired";
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, FaultyFuzz,
    ::testing::Values(FuzzCase{2, 11}, FuzzCase{3, 12}, FuzzCase{5, 13},
                      FuzzCase{8, 14}, FuzzCase{13, 15}),
    [](const ::testing::TestParamInfo<FuzzCase>& i) {
      return "p" + std::to_string(i.param.ranks) + "s" +
             std::to_string(i.param.seed);
    });

TEST(P2pFuzz, RandomPairwiseStreamsStayOrdered) {
  // Every rank sends a random-length numbered stream to every other rank;
  // receivers must see each stream complete and in order.
  const int ranks = 6;
  Machine m(ranks, CostModel::zero());
  m.run([&](Comm& c) {
    picpar::Rng rng(100 + static_cast<std::uint64_t>(c.rank()));
    std::vector<int> lens(static_cast<std::size_t>(ranks));
    // Sender decides lengths; receiver learns them via a header message.
    for (int d = 0; d < ranks; ++d) {
      if (d == c.rank()) continue;
      const int len = static_cast<int>(rng.below(20));
      c.send_value(d, 1, len);
      for (int k = 0; k < len; ++k) c.send_value(d, 2, c.rank() * 1000 + k);
    }
    for (int s = 0; s < ranks; ++s) {
      if (s == c.rank()) continue;
      const int len = c.recv_value<int>(s, 1);
      for (int k = 0; k < len; ++k)
        EXPECT_EQ(c.recv_value<int>(s, 2), s * 1000 + k);
    }
    (void)lens;
  });
}

TEST(CollectiveFuzz, RepeatedMixedCollectivesStayConsistent) {
  const int ranks = 7;
  Machine m(ranks, CostModel::cm5());
  m.run([&](Comm& c) {
    picpar::Rng rng(7);  // same stream on every rank
    for (int round = 0; round < 25; ++round) {
      switch (rng.below(5)) {
        case 0:
          c.barrier();
          break;
        case 1: {
          const int root = static_cast<int>(rng.below(ranks));
          const auto v = c.bcast_value(c.rank() == root ? round : -1, root);
          ASSERT_EQ(v, round);
          break;
        }
        case 2: {
          const auto sum = c.allreduce_sum<long>(c.rank() + round);
          ASSERT_EQ(sum, static_cast<long>(ranks) * round +
                             ranks * (ranks - 1) / 2);
          break;
        }
        case 3: {
          std::vector<int> mine(static_cast<std::size_t>(c.rank() % 3), c.rank());
          const auto cat = c.allgatherv(mine);
          std::size_t expect = 0;
          for (int r = 0; r < ranks; ++r) expect += static_cast<std::size_t>(r % 3);
          ASSERT_EQ(cat.size(), expect);
          break;
        }
        case 4: {
          const auto ex = c.exscan_sum<int>(1);
          ASSERT_EQ(ex, c.rank());
          break;
        }
      }
    }
  });
}

TEST(ClockFuzz, VirtualTimeIsMonotonicPerRank) {
  const int ranks = 5;
  Machine m(ranks, CostModel::cm5());
  m.run([&](Comm& c) {
    // The branch choice must be uniform across ranks (barrier is a
    // collective); only the charge amount may differ per rank.
    picpar::Rng branch(50);
    picpar::Rng amount(60 + static_cast<std::uint64_t>(c.rank()));
    double last = c.clock();
    for (int i = 0; i < 50; ++i) {
      if (branch.below(2) == 0) {
        c.charge(1e-6 * static_cast<double>(amount.below(100)));
      } else {
        c.barrier();
      }
      ASSERT_GE(c.clock(), last);
      last = c.clock();
    }
  });
}

}  // namespace
}  // namespace picpar::sim
