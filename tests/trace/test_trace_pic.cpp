// End-to-end tracing through pic::run_pic: PicResult trace fields, the
// redistribution timeline, env-var enablement, the zero-cost-when-off
// contract, and byte-identical exports across execution modes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "pic/simulation.hpp"
#include "trace/tracer.hpp"

namespace picpar {
namespace {

namespace fs = std::filesystem;

pic::PicParams small_pic() {
  pic::PicParams p;
  p.grid = mesh::GridDesc{32, 16};
  p.nranks = 8;
  p.init.total = 512;
  p.iterations = 4;
  p.policy = "periodic:2";
  return p;
}

std::string slurp(const fs::path& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

TEST(TracePic, DisabledRunHasNoTraceArtifacts) {
  const auto r = pic::run_pic(small_pic());
  EXPECT_FALSE(r.traced);
  EXPECT_EQ(r.trace_events, 0u);
  EXPECT_TRUE(r.metrics_json.empty());
  EXPECT_TRUE(r.timeline_csv.empty());
}

TEST(TracePic, TracingDoesNotPerturbVirtualResults) {
  auto p = small_pic();
  const auto off = pic::run_pic(p);
  p.trace.enabled = true;
  const auto on = pic::run_pic(p);

  EXPECT_TRUE(on.traced);
  EXPECT_GT(on.trace_events, 0u);
  EXPECT_EQ(on.total_seconds, off.total_seconds);
  EXPECT_EQ(on.compute_seconds, off.compute_seconds);
  EXPECT_EQ(on.redistributions, off.redistributions);
  ASSERT_EQ(on.iters.size(), off.iters.size());
  for (std::size_t i = 0; i < on.iters.size(); ++i) {
    EXPECT_EQ(on.iters[i].exec_seconds, off.iters[i].exec_seconds);
    EXPECT_EQ(on.iters[i].loop_seconds, off.iters[i].loop_seconds);
  }
}

TEST(TracePic, TimelineReproducesPerIterationRedistributionData) {
  auto p = small_pic();
  p.trace.enabled = true;
  const auto r = pic::run_pic(p);

  // Header + one row per iteration.
  std::istringstream lines(r.timeline_csv);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header.rfind("iter,vtime,loop_seconds,redistributed", 0), 0u);
  int rows = 0, redists = 0;
  std::string line;
  while (std::getline(lines, line)) {
    // Columns: iter,vtime,loop_seconds,redistributed,...
    std::istringstream cols(line);
    std::string iter, vtime, loop, redist;
    std::getline(cols, iter, ',');
    std::getline(cols, vtime, ',');
    std::getline(cols, loop, ',');
    std::getline(cols, redist, ',');
    EXPECT_EQ(iter, std::to_string(rows));
    EXPECT_GT(std::stod(loop), 0.0);
    if (redist == "1") ++redists;
    // Per-rank particle counts (last nranks columns) sum to the total.
    std::vector<std::string> rest;
    std::string c;
    while (std::getline(cols, c, ',')) rest.push_back(c);
    ASSERT_GE(rest.size(), static_cast<std::size_t>(p.nranks));
    std::uint64_t total = 0;
    for (std::size_t k = rest.size() - static_cast<std::size_t>(p.nranks);
         k < rest.size(); ++k)
      total += std::stoull(rest[k]);
    EXPECT_EQ(total, 512u);
    ++rows;
  }
  EXPECT_EQ(rows, p.iterations);
  EXPECT_EQ(redists, r.redistributions);

  // The metrics snapshot agrees with the aggregate result.
  EXPECT_NE(r.metrics_json.find("\"pic.iterations\": 4"), std::string::npos);
  EXPECT_NE(r.metrics_json.find("\"pic.redistributions\": " +
                                std::to_string(r.redistributions)),
            std::string::npos);
  EXPECT_NE(r.metrics_csv.find("counter,pic.iterations,4"),
            std::string::npos);
}

// The tentpole determinism guarantee at the PIC level: every exported
// virtual-time artifact is byte-identical between sequential and parallel
// execution, including the Chrome-trace file itself.
TEST(TracePic, ExportsByteIdenticalAcrossExecModes) {
  const fs::path dir = fs::temp_directory_path();
  const fs::path seq_trace = dir / "picpar_seq.trace.json";
  const fs::path par_trace = dir / "picpar_par.trace.json";

  auto p = small_pic();
  p.policy = "sar";
  p.trace.enabled = true;
  p.trace.path = seq_trace.string();
  p.exec.workers = 4;

  p.exec.parallel = false;
  const auto seq = pic::run_pic(p);
  p.exec.parallel = true;
  p.trace.path = par_trace.string();
  const auto par = pic::run_pic(p);

  EXPECT_EQ(seq.metrics_json, par.metrics_json);
  EXPECT_EQ(seq.metrics_csv, par.metrics_csv);
  EXPECT_EQ(seq.timeline_csv, par.timeline_csv);
  EXPECT_EQ(seq.trace_events, par.trace_events);

  const std::string a = slurp(seq_trace);
  const std::string b = slurp(par_trace);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  fs::remove(seq_trace);
  fs::remove(par_trace);
}

TEST(TracePic, EnvVariableEnablesTracing) {
  const fs::path dir = fs::temp_directory_path();
  const fs::path trace_path = dir / "picpar_env.trace.json";
  const fs::path metrics_path = dir / "picpar_env.metrics.json";

  ASSERT_EQ(setenv("PICPAR_TRACE", trace_path.string().c_str(), 1), 0);
  ASSERT_EQ(setenv("PICPAR_TRACE_METRICS", metrics_path.string().c_str(), 1),
            0);
  const auto r = pic::run_pic(small_pic());
  ASSERT_EQ(unsetenv("PICPAR_TRACE"), 0);
  ASSERT_EQ(unsetenv("PICPAR_TRACE_METRICS"), 0);

  EXPECT_TRUE(r.traced);
  EXPECT_TRUE(fs::exists(trace_path));
  EXPECT_TRUE(fs::exists(metrics_path));
  const std::string trace_json = slurp(trace_path);
  EXPECT_NE(trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_json.find("pic.redist"), std::string::npos);
  EXPECT_EQ(slurp(metrics_path), r.metrics_json);
  fs::remove(trace_path);
  fs::remove(metrics_path);
}

TEST(TracePic, EnvValueZeroStaysDisabled) {
  ASSERT_EQ(setenv("PICPAR_TRACE", "0", 1), 0);
  const auto r = pic::run_pic(small_pic());
  ASSERT_EQ(unsetenv("PICPAR_TRACE"), 0);
  EXPECT_FALSE(r.traced);
  EXPECT_EQ(trace::trace_env_path(), nullptr);
}

TEST(TracePic, TracerCoexistsWithAnalyzer) {
  auto p = small_pic();
  p.trace.enabled = true;
  p.analyze.enabled = true;
  const auto r = pic::run_pic(p);
  EXPECT_TRUE(r.traced);
  EXPECT_GT(r.trace_events, 0u);
  EXPECT_EQ(r.analysis_findings, 0);
  EXPECT_NE(r.hb_fingerprint, 0u);
}

}  // namespace
}  // namespace picpar
