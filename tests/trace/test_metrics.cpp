#include "trace/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace picpar::trace {
namespace {

TEST(Histogram, Log2BucketPlacement) {
  Histogram h;
  h.observe(0);     // bucket 0: values <= 1
  h.observe(1);     // bucket 0
  h.observe(2);     // bucket 1: (1, 2]
  h.observe(3);     // bucket 2: (2, 4]
  h.observe(4);     // bucket 2
  h.observe(1024);  // bucket 10: (512, 1024]

  ASSERT_EQ(h.buckets.size(), kHistogramBuckets);
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[10], 1u);
  EXPECT_EQ(h.count, 6u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 1024u);
  EXPECT_DOUBLE_EQ(h.sum, 1034.0);
}

TEST(Histogram, ExtremeValuesStayInRange) {
  Histogram h;
  h.observe(~std::uint64_t{0});
  EXPECT_EQ(h.buckets[64], 1u);
  EXPECT_EQ(h.max, ~std::uint64_t{0});
}

// Every bucket's "le_2^k" label must be an exact inclusive upper bound:
// bucket 0 covers {0, 1}; bucket k = 1..64 covers (2^(k-1), 2^k].
// Regression for three historical off-by-ones: value 0 and 1 sharing a
// bucket, exact powers of two landing one bucket high (bit_width(2^k) is
// k+1), and the top bucket overflowing past index 64 for values >= 2^63.
TEST(Histogram, EveryBucketBoundaryIsExact) {
  for (std::size_t k = 0; k < kHistogramBuckets; ++k) {
    const std::uint64_t hi =
        k >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << k);
    const std::uint64_t lo = k == 0 ? 0 : (std::uint64_t{1} << (k - 1)) + 1;

    Histogram h;
    h.observe(lo);  // lowest value of bucket k
    h.observe(hi);  // highest value of bucket k
    ASSERT_EQ(h.buckets.size(), kHistogramBuckets);
    EXPECT_EQ(h.buckets[k], 2u) << "bucket " << k << " lo=" << lo
                                << " hi=" << hi;
    for (std::size_t j = 0; j < kHistogramBuckets; ++j)
      if (j != k) EXPECT_EQ(h.buckets[j], 0u) << "bucket " << j << " vs " << k;

    // One past the top of bucket k belongs to bucket k+1.
    if (k >= 1 && k < 64) {
      Histogram above;
      above.observe(hi + 1);
      EXPECT_EQ(above.buckets[k + 1], 1u) << "value " << hi + 1;
    }
  }
}

TEST(MetricsRegistry, CountersGaugesAccumulate) {
  MetricsRegistry reg;
  reg.add("a.count");
  reg.add("a.count", 4);
  reg.set("b.gauge", 1.5);
  reg.set("b.gauge", 2.5);  // gauges overwrite

  const MetricsSnapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].first, "a.count");
  EXPECT_EQ(s.counters[0].second, 5u);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(s.gauges[0].second, 2.5);
}

TEST(MetricsRegistry, SnapshotIsInsertionOrderIndependent) {
  MetricsRegistry a;
  a.add("z", 1);
  a.add("m", 2);
  a.add("a", 3);
  a.set("g2", 0.25);
  a.set("g1", 0.5);
  a.observe("h", 7);

  MetricsRegistry b;
  b.observe("h", 7);
  b.set("g1", 0.5);
  b.add("a", 3);
  b.set("g2", 0.25);
  b.add("m", 2);
  b.add("z", 1);

  EXPECT_EQ(a.snapshot().to_json(), b.snapshot().to_json());
  EXPECT_EQ(a.snapshot().to_csv(), b.snapshot().to_csv());
  // Keys come out sorted.
  const auto s = a.snapshot();
  EXPECT_EQ(s.counters[0].first, "a");
  EXPECT_EQ(s.counters[2].first, "z");
  EXPECT_EQ(s.gauges[0].first, "g1");
}

TEST(MetricsSnapshot, JsonShape) {
  MetricsRegistry reg;
  reg.add("c", 2);
  reg.set("g", 0.5);
  reg.observe("h", 3);
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"g\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"le_2^2\":1"), std::string::npos);
  // Balanced braces (cheap structural sanity; CI parses it for real).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(MetricsSnapshot, CsvShape) {
  MetricsRegistry reg;
  reg.add("c", 2);
  reg.observe("h", 3);
  const std::string csv = reg.snapshot().to_csv();
  EXPECT_EQ(csv.rfind("type,name,value,sum,min,max\n", 0), 0u);
  EXPECT_NE(csv.find("counter,c,2,,,\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,1,3,3,3\n"), std::string::npos);
  EXPECT_NE(csv.find("bucket,h/le_2^2,1,,,\n"), std::string::npos);
}

TEST(MetricsRegistry, ClearEmptiesEverything) {
  MetricsRegistry reg;
  reg.add("c");
  reg.set("g", 1.0);
  reg.observe("h", 1);
  EXPECT_FALSE(reg.empty());
  reg.clear();
  EXPECT_TRUE(reg.empty());
  const auto s = reg.snapshot();
  EXPECT_TRUE(s.counters.empty());
  EXPECT_TRUE(s.gauges.empty());
  EXPECT_TRUE(s.histograms.empty());
}

}  // namespace
}  // namespace picpar::trace
