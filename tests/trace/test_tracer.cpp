// Tracer behavior on bare machines: span construction, flow matching,
// marks, caps, chaining with the analyzer, and byte-identical exports
// between the sequential and parallel execution engines.
#include "trace/tracer.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "analysis/analyzer.hpp"
#include "runtime/parallel_engine.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "trace/chrome_trace.hpp"

namespace picpar::trace {
namespace {

using sim::Comm;
using sim::CostModel;
using sim::Machine;
using sim::Phase;

TEST(Tracer, SpansFollowPhaseChangesAndCloseAtFinalClock) {
  Machine m(2, CostModel::cm5());
  Tracer tracer;
  m.set_observer(&tracer);
  const auto run = m.run([](Comm& c) {
    c.set_phase(Phase::kScatter);
    c.charge(1e-3);
    c.set_phase(Phase::kPush);
    c.charge(2e-3);
    c.set_phase(Phase::kOther);
  });

  const TraceData& d = tracer.data();
  ASSERT_EQ(d.nranks, 2);
  // Per rank: kOther head, kScatter, kPush, kOther tail = 4 spans.
  ASSERT_EQ(d.spans.size(), 8u);
  for (int r = 0; r < 2; ++r) {
    const Span* s = &d.spans[static_cast<std::size_t>(r) * 4];
    EXPECT_EQ(s[0].phase, Phase::kOther);
    EXPECT_EQ(s[0].t0, 0.0);
    EXPECT_EQ(s[1].phase, Phase::kScatter);
    EXPECT_DOUBLE_EQ(s[1].t1 - s[1].t0, 1e-3);
    EXPECT_EQ(s[2].phase, Phase::kPush);
    EXPECT_DOUBLE_EQ(s[2].t1 - s[2].t0, 2e-3);
    EXPECT_EQ(s[3].phase, Phase::kOther);
    // The tail span always closes at the rank's final clock.
    EXPECT_EQ(s[3].t1, run.ranks[static_cast<std::size_t>(r)].clock);
    // Spans tile the timeline with no gaps.
    for (int k = 1; k < 4; ++k) EXPECT_EQ(s[k].t0, s[k - 1].t1);
  }
  // Three actual phase changes per rank and nothing else: the machine
  // only fires on changes, never on redundant set_phase calls.
  EXPECT_EQ(tracer.events(), 6u);
}

TEST(Tracer, FlowsMatchSendsToReceivesByLinkSeq) {
  Machine m(3, CostModel::cm5());
  Tracer tracer;
  m.set_observer(&tracer);
  m.run([](Comm& c) {
    c.set_phase(Phase::kScatter);
    if (c.rank() == 0) {
      c.send_value(1, 7, 1.0);
      c.send_value(1, 7, 2.0);
      c.send_value(2, 9, 3.0);
    } else {
      (void)c.recv<double>(0);
      if (c.rank() == 1) (void)c.recv<double>(0);
    }
  });

  const TraceData& d = tracer.data();
  ASSERT_EQ(d.flows.size(), 3u);
  // Receiver-major merge order: rank 1's flows first (seq 0 then 1).
  EXPECT_EQ(d.flows[0].src, 0);
  EXPECT_EQ(d.flows[0].dst, 1);
  EXPECT_EQ(d.flows[0].seq, 0u);
  EXPECT_EQ(d.flows[0].tag, 7);
  EXPECT_EQ(d.flows[0].bytes, sizeof(double));
  EXPECT_EQ(d.flows[1].seq, 1u);
  EXPECT_EQ(d.flows[2].dst, 2);
  EXPECT_EQ(d.flows[2].tag, 9);
  for (const Flow& f : d.flows) {
    EXPECT_EQ(f.send_phase, Phase::kScatter);
    EXPECT_EQ(f.recv_phase, Phase::kScatter);
    EXPECT_LE(f.t_send, f.t_recv);
    EXPECT_FALSE(f.collective);
  }
  EXPECT_EQ(d.unreceived_msgs, 0u);
}

TEST(Tracer, UnreceivedMessagesAreCounted) {
  Machine m(2, CostModel::cm5());
  Tracer tracer;
  m.set_observer(&tracer);
  m.run([](Comm& c) {
    if (c.rank() == 0) c.send_value(1, 1, 42);
  });
  EXPECT_EQ(tracer.data().flows.size(), 0u);
  EXPECT_EQ(tracer.data().unreceived_msgs, 1u);
}

TEST(Tracer, MarksCarryPayloadAndRespectCaps) {
  Machine m(2, CostModel::cm5());
  Tracer::Options opt;
  opt.max_marks_per_rank = 2;
  Tracer tracer(opt);
  m.set_observer(&tracer);
  m.run([](Comm& c) {
    if (c.rank() == 0)
      for (int i = 0; i < 5; ++i) c.mark("test.mark", i, i * 0.5);
  });

  const TraceData& d = tracer.data();
  ASSERT_EQ(d.marks.size(), 2u);
  EXPECT_EQ(d.marks[0].name, "test.mark");
  EXPECT_EQ(d.marks[0].rank, 0);
  EXPECT_EQ(d.marks[1].iter, 1);
  EXPECT_DOUBLE_EQ(d.marks[1].value, 0.5);
  EXPECT_EQ(d.dropped_marks, 3u);
}

TEST(Tracer, TransportRetriesAppearAsMarks) {
  sim::FaultConfig fc;
  fc.seed = 99;
  fc.corrupt_prob = 0.4;
  Machine m(2, CostModel::cm5(), fc);
  Tracer tracer;
  m.set_observer(&tracer);
  const auto run = m.run([](Comm& c) {
    if (c.rank() == 0)
      for (int i = 0; i < 40; ++i) c.send_value(1, 1, i);
    else
      for (int i = 0; i < 40; ++i) (void)c.recv<int>(0);
  });

  std::uint64_t retry_marks = 0;
  for (const Mark& mk : tracer.data().marks)
    if (mk.name == kMarkTransportRetry) {
      ++retry_marks;
      EXPECT_EQ(mk.rank, 1);   // receiver-side recovery
      EXPECT_EQ(mk.iter, 0);   // iter slot carries the source rank
      EXPECT_GT(mk.value, 0.0);
    }
  const auto total = run.transport_total();
  EXPECT_GT(total.retries, 0u);
  EXPECT_EQ(retry_marks, total.retries);
}

TEST(Tracer, FlowsOffStillTracesSpansAndMarks) {
  Machine m(2, CostModel::cm5());
  Tracer::Options opt;
  opt.flows = false;
  Tracer tracer(opt);
  m.set_observer(&tracer);
  m.run([](Comm& c) {
    c.set_phase(Phase::kGather);
    if (c.rank() == 0) {
      c.send_value(1, 1, 1);
      c.mark("test.mark");
    } else {
      (void)c.recv<int>(0);
    }
  });
  EXPECT_TRUE(tracer.data().flows.empty());
  EXPECT_EQ(tracer.data().spans.size(), 4u);  // head + tail per rank
  ASSERT_EQ(tracer.data().marks.size(), 1u);
}

TEST(Tracer, ChainsWithAnalyzerThroughObserverChain) {
  Machine m(2, CostModel::cm5());
  analysis::Analyzer analyzer;
  Tracer tracer;
  sim::ObserverChain chain;
  chain.add(&analyzer);
  chain.add(&tracer);
  m.set_observer(&chain);
  m.run([](Comm& c) {
    c.set_phase(Phase::kScatter);
    if (c.rank() == 0)
      c.send_value(1, 1, 1.0);
    else
      (void)c.recv<double>(0, 1);
  });
  EXPECT_GT(analyzer.events(), 0u);
  EXPECT_GT(tracer.events(), 0u);
  EXPECT_EQ(tracer.data().flows.size(), 1u);
  EXPECT_EQ(analyzer.total(), 0u);
}

TEST(Tracer, SecondRunResetsState) {
  Machine m(2, CostModel::cm5());
  Tracer tracer;
  m.set_observer(&tracer);
  const auto program = [](Comm& c) {
    if (c.rank() == 0)
      c.send_value(1, 1, 1);
    else
      (void)c.recv<int>(0);
  };
  m.run(program);
  const auto first = to_chrome_json(tracer.data());
  m.run(program);
  EXPECT_EQ(to_chrome_json(tracer.data()), first);
  EXPECT_EQ(tracer.data().flows.size(), 1u);
}

// The determinism contract: the virtual-time trace and every export
// derived from it are byte-identical between the sequential reference
// scheduler and the parallel engine.
TEST(TracerModeEquivalence, ExportsAreByteIdentical) {
  const auto program = [](Comm& c) {
    c.set_phase(Phase::kScatter);
    const int p = c.size();
    // All-to-all with wildcard receives: schedule-sensitive if anything
    // in the trace depended on physical arrival order.
    for (int d = 0; d < p; ++d)
      if (d != c.rank()) c.send_value(d, 3, c.rank());
    double acc = 0.0;
    {
      Comm::OrderInsensitive scope(c);
      for (int i = 0; i < p - 1; ++i) {
        auto v = c.recv<int>();
        acc += v[0];
      }
    }
    c.set_phase(Phase::kOther);
    c.mark("test.acc", 0, acc);
    c.charge(1e-4);
  };

  const auto run_traced = [&](bool parallel) {
    Machine m(6, CostModel::cm5());
    if (parallel) runtime::use_parallel(m, runtime::ParallelConfig{4});
    auto tracer = std::make_unique<Tracer>();
    m.set_observer(tracer.get());
    m.run(program);
    return tracer;
  };

  const auto seq = run_traced(false);
  const auto par = run_traced(true);
  EXPECT_EQ(to_chrome_json(seq->data(), {}, &seq->timeline()),
            to_chrome_json(par->data(), {}, &par->timeline()));
  EXPECT_EQ(seq->metrics().snapshot().to_json(),
            par->metrics().snapshot().to_json());
  EXPECT_EQ(seq->metrics().snapshot().to_csv(),
            par->metrics().snapshot().to_csv());
  EXPECT_EQ(seq->timeline().to_csv(), par->timeline().to_csv());
  EXPECT_EQ(seq->events(), par->events());
}

TEST(ChromeTrace, EmitsExpectedEventKinds) {
  Machine m(2, CostModel::cm5());
  Tracer tracer;
  m.set_observer(&tracer);
  m.run([](Comm& c) {
    c.set_phase(Phase::kScatter);
    if (c.rank() == 0) {
      c.send_value(1, 1, 1.0);
      c.mark(kMarkRedistDecision, 0, 1.0);
    } else {
      (void)c.recv<double>(0);
    }
  });
  const std::string json = to_chrome_json(tracer.data());
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // spans
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);  // flow start
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);  // flow end
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // metadata
  EXPECT_NE(json.find("\"name\":\"scatter\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"g\""), std::string::npos);  // global instant
  // Wall-clock fields stay out unless asked for.
  EXPECT_EQ(json.find("wall_us"), std::string::npos);
  ChromeTraceOptions with_wall;
  with_wall.include_wall = true;
  EXPECT_NE(to_chrome_json(tracer.data(), with_wall).find("wall_us"),
            std::string::npos);
}

}  // namespace
}  // namespace picpar::trace
