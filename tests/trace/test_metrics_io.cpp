// Load counterparts to the deterministic metrics/timeline exporters:
// from_json/from_csv must invert to_json/to_csv byte-exactly (so cached
// sweep results rehydrate without re-simulation) and reject anything that
// is not exporter output.
#include <gtest/gtest.h>

#include <stdexcept>

#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

namespace picpar::trace {
namespace {

MetricsSnapshot sample_snapshot() {
  MetricsRegistry reg;
  reg.add("msgs_sent", 42);
  reg.add("redistributions", 3);
  reg.set("final_imbalance", 1.25);
  reg.set("mean_iter_seconds", 0.0123456789012345);
  reg.observe("msg_bytes", 1);
  reg.observe("msg_bytes", 100);
  reg.observe("msg_bytes", 65536);
  reg.observe("ghost_entries", 7);
  return reg.snapshot();
}

TEST(MetricsIo, JsonRoundTripIsByteExact) {
  const auto snap = sample_snapshot();
  const std::string json = snap.to_json();
  const auto loaded = MetricsSnapshot::from_json(json);
  EXPECT_EQ(loaded.to_json(), json);
  EXPECT_EQ(loaded.counters.size(), 2u);
  EXPECT_EQ(loaded.gauges.size(), 2u);
  EXPECT_EQ(loaded.histograms.size(), 2u);
  EXPECT_EQ(loaded.counters[0].second, 42u);
  EXPECT_EQ(loaded.gauges[0].second, 1.25);
}

TEST(MetricsIo, CsvRoundTripIsByteExact) {
  const auto snap = sample_snapshot();
  const std::string csv = snap.to_csv();
  const auto loaded = MetricsSnapshot::from_csv(csv);
  EXPECT_EQ(loaded.to_csv(), csv);
  // CSV and JSON loaders agree on the content.
  EXPECT_EQ(loaded.to_json(), snap.to_json());
}

TEST(MetricsIo, EmptySnapshotRoundTrips) {
  const MetricsSnapshot empty;
  EXPECT_EQ(MetricsSnapshot::from_json(empty.to_json()).to_json(),
            empty.to_json());
  EXPECT_EQ(MetricsSnapshot::from_csv(empty.to_csv()).to_csv(),
            empty.to_csv());
}

TEST(MetricsIo, HistogramExtremesRoundTrip) {
  MetricsRegistry reg;
  reg.observe("extremes", 0);
  reg.observe("extremes", std::uint64_t{1} << 63);
  const auto snap = reg.snapshot();
  EXPECT_EQ(MetricsSnapshot::from_json(snap.to_json()).to_json(),
            snap.to_json());
  EXPECT_EQ(MetricsSnapshot::from_csv(snap.to_csv()).to_csv(),
            snap.to_csv());
}

TEST(MetricsIo, MalformedJsonThrows) {
  EXPECT_THROW(MetricsSnapshot::from_json(""), std::runtime_error);
  EXPECT_THROW(MetricsSnapshot::from_json("{}"), std::runtime_error);
  EXPECT_THROW(MetricsSnapshot::from_json("not json at all"),
               std::runtime_error);
  const std::string json = sample_snapshot().to_json();
  // Truncation anywhere must be detected, never silently accepted.
  EXPECT_THROW(MetricsSnapshot::from_json(
                   std::string_view(json).substr(0, json.size() / 2)),
               std::runtime_error);
}

TEST(MetricsIo, MalformedCsvThrows) {
  EXPECT_THROW(MetricsSnapshot::from_csv(""), std::runtime_error);
  EXPECT_THROW(MetricsSnapshot::from_csv("type,name,value\n"),
               std::runtime_error);
  EXPECT_THROW(
      MetricsSnapshot::from_csv("type,name,value,sum,min,max\nbogus,x,1,,,\n"),
      std::runtime_error);
  const std::string csv = sample_snapshot().to_csv();
  EXPECT_THROW(MetricsSnapshot::from_csv(
                   std::string_view(csv).substr(0, csv.size() - 3)),
               std::runtime_error);
}

RedistTimeline sample_timeline() {
  RedistTimeline t;
  t.nranks = 3;
  IterSample a;
  a.iter = 0;
  a.vtime = 0.125;
  a.loop_seconds = 0.5;
  a.particles = {100, 120, 80};
  IterSample b;
  b.iter = 1;
  b.vtime = 0.6789012345;
  b.loop_seconds = 0.51;
  b.redistributed = true;
  b.redist_seconds = 0.07;
  b.moved = 45;
  b.violation = true;
  b.recovered = true;
  b.particles = {101, 99, 100};
  t.iters = {a, b};
  return t;
}

TEST(TimelineIo, CsvRoundTripIsByteExact) {
  const auto t = sample_timeline();
  const std::string csv = t.to_csv();
  const auto loaded = RedistTimeline::from_csv(csv);
  EXPECT_EQ(loaded.to_csv(), csv);
  ASSERT_EQ(loaded.nranks, 3);
  ASSERT_EQ(loaded.iters.size(), 2u);
  EXPECT_EQ(loaded.iters[1].moved, 45u);
  EXPECT_TRUE(loaded.iters[1].redistributed);
  EXPECT_EQ(loaded.iters[0].particles,
            (std::vector<std::uint64_t>{100, 120, 80}));
}

TEST(TimelineIo, EmptyTimelineRoundTrips) {
  RedistTimeline t;
  t.nranks = 2;
  const std::string csv = t.to_csv();
  EXPECT_EQ(RedistTimeline::from_csv(csv).to_csv(), csv);
}

TEST(TimelineIo, MalformedCsvThrows) {
  EXPECT_THROW(RedistTimeline::from_csv(""), std::runtime_error);
  EXPECT_THROW(RedistTimeline::from_csv("iter,vtime\n"), std::runtime_error);
  const std::string csv = sample_timeline().to_csv();
  EXPECT_THROW(RedistTimeline::from_csv(
                   std::string_view(csv).substr(0, csv.size() - 2)),
               std::runtime_error);
  // A row with the wrong rank-column count is a structural error.
  EXPECT_THROW(RedistTimeline::from_csv(csv + "2,1,1,0,0,0,0,0,1,5,5\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace picpar::trace
