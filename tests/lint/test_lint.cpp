// Drives the picpar-lint binary over the fixtures in
// tests/lint/fixtures/ and asserts the exact finding set.
//
// Expectations live in the fixtures themselves: a `// LINT: <check-id>`
// marker on a line means the tool must report exactly those checks on
// that line; a fixture without markers must come back clean. The runner
// therefore never hardcodes line numbers and survives fixture edits.
//
// Compile-time configuration (set by tests/CMakeLists.txt):
//   PICPAR_LINT_BIN       absolute path to the picpar-lint executable
//   PICPAR_LINT_FIXTURES  absolute path to tests/lint/fixtures
//   PICPAR_SOURCE_ROOT    absolute path to the repo checkout
//   PICPAR_BUILD_DIR      absolute path to the build tree
//                         (compile_commands.json lives here)

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <unistd.h>
#include <vector>

namespace {

namespace fs = std::filesystem;

using FindingKey = std::tuple<std::string, int, std::string>;  // file,line,check

struct LintRun {
  int exit_code = -1;
  std::string out;  // combined stdout+stderr, verbatim
  std::set<FindingKey> findings;
  long reported = -1;    // N from the "N finding(s), M suppressed" summary
  long suppressed = -1;  // M from the summary
};

std::string quoted(const std::string& s) {
  // Paths in this test tree never contain single quotes.
  return "'" + s + "'";
}

// Parses "file:line:col: [check] message" into a finding key.
bool parse_finding(const std::string& line, FindingKey* out) {
  size_t c1 = line.find(':');
  if (c1 == std::string::npos || c1 == 0) return false;
  size_t c2 = line.find(':', c1 + 1);
  size_t c3 = c2 == std::string::npos ? std::string::npos
                                      : line.find(':', c2 + 1);
  if (c3 == std::string::npos) return false;
  if (line.compare(c3, 3, ": [") != 0) return false;
  size_t close = line.find(']', c3 + 3);
  if (close == std::string::npos) return false;
  int ln = 0;
  try {
    ln = std::stoi(line.substr(c1 + 1, c2 - c1 - 1));
  } catch (...) {
    return false;
  }
  *out = {line.substr(0, c1), ln, line.substr(c3 + 3, close - c3 - 3)};
  return true;
}

LintRun run_command(const std::string& cmd) {
  LintRun r;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (!pipe) {
    r.out = "popen failed for: " + cmd;
    return r;
  }
  char buf[4096];
  while (size_t n = fread(buf, 1, sizeof buf, pipe)) r.out.append(buf, n);
  int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);

  std::istringstream lines(r.out);
  std::string line;
  while (std::getline(lines, line)) {
    FindingKey key;
    if (parse_finding(line, &key)) {
      r.findings.insert(key);
      continue;
    }
    long n = 0, m = 0;
    if (std::sscanf(line.c_str(), "picpar-lint: %ld finding(s), %ld suppressed",
                    &n, &m) == 2) {
      r.reported = n;
      r.suppressed = m;
    }
  }
  return r;
}

LintRun run_fixture(const std::string& name, const std::string& extra = "") {
  const std::string cmd = quoted(PICPAR_LINT_BIN) + " --src-root " +
                          quoted(PICPAR_LINT_FIXTURES) + " --all-dirs " +
                          extra + (extra.empty() ? "" : " ") +
                          quoted(std::string(PICPAR_LINT_FIXTURES) + "/" +
                                 name) +
                          " -- -std=c++17";
  return run_command(cmd);
}

// Collects the `// LINT: <check-id>...` markers of a fixture.
std::set<FindingKey> expected_of(const std::string& name) {
  std::set<FindingKey> expected;
  std::ifstream in(std::string(PICPAR_LINT_FIXTURES) + "/" + name);
  EXPECT_TRUE(in.good()) << "cannot read fixture " << name;
  std::string line;
  int ln = 0;
  while (std::getline(in, line)) {
    ++ln;
    size_t at = line.find("// LINT:");
    if (at == std::string::npos) continue;
    std::istringstream ids(line.substr(at + 8));
    std::string id;
    while (ids >> id) expected.insert({name, ln, id});
  }
  return expected;
}

class FixtureTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FixtureTest, FindingsMatchMarkers) {
  const std::string name = GetParam();
  const std::set<FindingKey> expected = expected_of(name);
  const LintRun r = run_fixture(name);
  ASSERT_NE(r.exit_code, 2) << "fixture failed to parse:\n" << r.out;
  EXPECT_EQ(r.findings, expected) << r.out;
  EXPECT_EQ(r.reported, static_cast<long>(expected.size())) << r.out;
  EXPECT_EQ(r.exit_code, expected.empty() ? 0 : 1) << r.out;
}

INSTANTIATE_TEST_SUITE_P(
    Lint, FixtureTest,
    ::testing::Values("unordered_escape_pos.cpp", "unordered_escape_neg.cpp",
                      "wall_clock_pos.cpp", "wall_clock_neg.cpp",
                      "pointer_order_pos.cpp", "pointer_order_neg.cpp",
                      "tag_discipline_pos.cpp", "tag_discipline_neg.cpp",
                      "float_reduction_pos.cpp", "float_reduction_neg.cpp"),
    [](const ::testing::TestParamInfo<const char*>& param_info) {
      std::string name;
      for (const char* p = param_info.param; *p; ++p)
        name += std::isalnum(static_cast<unsigned char>(*p)) ? *p : '_';
      return name;
    });

TEST(LintSuppression, AllowMarkersSuppressEveryFinding) {
  const LintRun r = run_fixture("allow_suppression.cpp");
  ASSERT_NE(r.exit_code, 2) << r.out;
  EXPECT_TRUE(r.findings.empty()) << r.out;
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_EQ(r.suppressed, 4) << r.out;
}

TEST(LintDeterminism, RepeatedRunsAreByteIdentical) {
  const LintRun a = run_fixture("pointer_order_pos.cpp");
  const LintRun b = run_fixture("pointer_order_pos.cpp");
  ASSERT_NE(a.exit_code, 2) << a.out;
  EXPECT_EQ(a.out, b.out);
  EXPECT_EQ(a.exit_code, b.exit_code);
}

TEST(LintJson, ReportMatchesTextOutput) {
  const std::string json_path =
      (fs::temp_directory_path() /
       ("picpar_lint_" + std::to_string(::getpid()) + ".json"))
          .string();
  const LintRun r =
      run_fixture("pointer_order_pos.cpp", "--json " + quoted(json_path));
  ASSERT_NE(r.exit_code, 2) << r.out;

  std::ifstream in(json_path);
  ASSERT_TRUE(in.good()) << "no JSON report at " << json_path;
  std::stringstream body;
  body << in.rdbuf();
  const std::string json = body.str();
  fs::remove(json_path);

  EXPECT_NE(json.find("\"findings\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("\"check\": \"pointer-ordering\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"suppressed\": 0"), std::string::npos) << json;
  // Every text finding appears in the JSON report and vice versa.
  EXPECT_EQ(static_cast<long>(r.findings.size()), r.reported);
  for (const FindingKey& k : r.findings)
    EXPECT_NE(json.find("\"line\": " + std::to_string(std::get<1>(k))),
              std::string::npos)
        << json;
}

// The shipped tree must be clean: every real finding in src/ has been
// fixed or carries a reviewed allow annotation. Runs the tool exactly
// the way CI does, off this build's compile_commands.json.
TEST(LintSrcTree, ShippedSourcesAreClean) {
  const std::string src = std::string(PICPAR_SOURCE_ROOT) + "/src";
  std::vector<std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(src))
    if (entry.is_regular_file() && entry.path().extension() == ".cpp")
      files.push_back(entry.path().string());
  ASSERT_FALSE(files.empty());
  std::sort(files.begin(), files.end());

  std::string cmd = quoted(PICPAR_LINT_BIN) + " --src-root " + quoted(src) +
                    " -p " + quoted(PICPAR_BUILD_DIR);
  for (const std::string& f : files) cmd += " " + quoted(f);
  const LintRun r = run_command(cmd);
  ASSERT_NE(r.exit_code, 2) << "src/ failed to parse:\n" << r.out;
  EXPECT_TRUE(r.findings.empty()) << r.out;
  EXPECT_EQ(r.exit_code, 0) << r.out;
  // The tree carries reviewed allow() annotations; they must register.
  EXPECT_GT(r.suppressed, 0) << r.out;
}

}  // namespace
