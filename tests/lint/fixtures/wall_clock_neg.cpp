// Negative fixture: the wall-clock choke point itself, plus legitimate
// chrono arithmetic that never touches a clock. picpar-lint must stay
// silent.
#include <chrono>

namespace picpar {
namespace util {

// The one sanctioned reader of wall time: a function named wall_clock is
// exempt from the check by construction.
unsigned long long wall_clock() {
  return static_cast<unsigned long long>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace util
}  // namespace picpar

// Durations are pure arithmetic; only clock reads are nondeterministic.
long long timeout_ns(int ms) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::milliseconds(ms))
      .count();
}

// Seeded PRNGs are fine; only std::random_device / std::rand are ambient.
unsigned lcg_next(unsigned state) { return state * 1664525u + 1013904223u; }
