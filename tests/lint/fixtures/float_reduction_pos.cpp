// Positive fixture: floating-point accumulation whose result depends on
// summation order, with no OrderInsensitive scope and no annotation.
#include <cstddef>
#include <vector>

double total_energy(const std::vector<double>& e) {
  double sum = 0.0;
  for (double v : e) sum += v;  // LINT: float-reduction-order
  return sum;
}

struct Moments {
  double mass = 0.0;
  double weight = 1.0;
};

Moments gather_moments(const std::vector<double>& w) {
  Moments m;
  for (std::size_t i = 0; i < w.size(); ++i) {
    m.mass += w[i];        // LINT: float-reduction-order
    m.weight *= 1.0 + w[i];  // LINT: float-reduction-order
  }
  return m;
}

// Nested loops: the accumulator lives outside the innermost loop.
double grid_total(const std::vector<std::vector<double>>& rows) {
  double total = 0.0;
  for (const auto& row : rows) {
    for (double v : row) {
      total += v;  // LINT: float-reduction-order
    }
  }
  return total;
}
