// Negative fixture: legal tag usage — non-negative user tags, the
// wildcard sentinels, and reserved tags from inside a CollectiveScope.
// picpar-lint must stay silent.
#include <vector>

namespace picpar {
namespace sim {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

class Comm {
 public:
  class CollectiveScope {
   public:
    explicit CollectiveScope(Comm&) {}
  };
  void send(int dst, int tag, const std::vector<int>& data);
  std::vector<int> recv(int src, int tag);
};

constexpr int kTagReduce = -300;

void user_traffic(Comm& c, const std::vector<int>& v) {
  c.send(1, 42, v);             // non-negative user tag
  (void)c.recv(0, kAnyTag);     // wildcard sentinel is negative by design
  (void)c.recv(kAnySource, 7);  // wildcard source, positive tag
}

// A collective implementation holds a CollectiveScope; reserved tags are
// its channel.
void reduce_step(Comm& c, const std::vector<int>& v) {
  Comm::CollectiveScope scope(c);
  c.send(1, kTagReduce, v);
  (void)c.recv(0, kTagReduce);
}

}  // namespace sim
}  // namespace picpar
