// Positive fixture: wall time and ambient randomness outside the
// util::wall_clock() choke point.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace picpar {
namespace util {
unsigned long long wall_clock();
}
}  // namespace picpar

double sample_elapsed() {
  auto t0 = std::chrono::steady_clock::now();  // LINT: wall-clock-in-sim
  auto t1 = std::chrono::steady_clock::now();  // LINT: wall-clock-in-sim
  return std::chrono::duration<double>(t1 - t0).count();
}

double ambient_jitter() {
  return static_cast<double>(std::rand());  // LINT: wall-clock-in-sim
}

long unix_stamp() {
  return static_cast<long>(::time(nullptr));  // LINT: wall-clock-in-sim
}

unsigned hardware_seed() {
  std::random_device dev;  // LINT: wall-clock-in-sim
  return dev();
}

// Even the sanctioned choke point may only be consumed from src/trace.
unsigned long long sim_side_peek() {
  return picpar::util::wall_clock();  // LINT: wall-clock-in-sim
}
