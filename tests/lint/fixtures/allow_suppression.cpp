// Suppression fixture: every construct here would be flagged, and every
// one carries an allow marker — the tool must report zero findings and
// exactly four suppressed sites. Mirrors src/util/lint.hpp's grammar.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#define PICPAR_LINT_ALLOW(checks)

struct Node {
  int id = 0;
};

// picpar-lint: allow(pointer-ordering) keys never ordered across runs
std::map<Node*, int> g_weights;

std::string export_sorted(const std::unordered_map<int, int>& m) {
  std::string out;
  // picpar-lint: allow(unordered-iteration-escape) caller re-sorts rows
  for (const auto& kv : m) out += std::to_string(kv.first) + "\n";
  return out;
}

double annotated_sum(const std::vector<double>& w) {
  double sum = 0.0;  // picpar-lint: allow(float-reduction-order) fixed order
  for (double v : w) sum += v;
  return sum;
}

double macro_marked_sum(const std::vector<double>& w) {
  PICPAR_LINT_ALLOW(float-reduction-order);
  double sum = 0.0;
  for (double v : w) sum += v;
  return sum;
}
