// Positive fixture: user traffic on the collectives' reserved negative
// tag channel. The mock mirrors the shape of picpar::sim::Comm (the
// check matches the unqualified class name and the parameter named
// `tag`).
#include <vector>

namespace picpar {
namespace sim {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

class Comm {
 public:
  class CollectiveScope {
   public:
    explicit CollectiveScope(Comm&) {}
  };
  void send(int dst, int tag, const std::vector<int>& data);
  std::vector<int> recv(int src, int tag);
};

constexpr int kTagReduce = -300;

void leak_literal(Comm& c, const std::vector<int>& v) {
  c.send(1, -7, v);  // LINT: tag-discipline
}

void leak_reserved_constant(Comm& c, const std::vector<int>& v) {
  c.send(1, kTagReduce, v);  // LINT: tag-discipline
}

std::vector<int> leak_computed(Comm& c, int base) {
  return c.recv(0, -(base + 1));  // LINT: tag-discipline
}

}  // namespace sim
}  // namespace picpar
