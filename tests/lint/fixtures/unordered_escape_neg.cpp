// Negative fixture: unordered containers used in ways that cannot leak
// hash iteration order into an export. picpar-lint must stay silent.
#include <string>
#include <unordered_map>
#include <unordered_set>

// Iteration is hash-ordered, but the result is an order-insensitive
// aggregate in a function that reaches no serialization sink.
int accumulate_values(const std::unordered_map<int, int>& m) {
  int total = 0;
  for (const auto& kv : m) total += kv.second;
  return total;
}

// Membership-only use inside an exporting function: no iteration at all.
std::string export_flag(const std::unordered_set<int>& s, int key) {
  return s.count(key) != 0 ? "y" : "n";
}

// Point lookups do not observe iteration order either.
int lookup(const std::unordered_map<int, int>& m, int key) {
  auto it = m.find(key);
  return it == m.end() ? 0 : it->second;
}
