// Negative fixture: floating-point updates in loops that are not
// order-sensitive reductions, plus a reduction under an
// OrderInsensitive scope. picpar-lint must stay silent.
#include <cstddef>
#include <vector>

namespace picpar {
namespace sim {

class Comm {};

class OrderInsensitive {
 public:
  explicit OrderInsensitive(Comm&) {}
};

}  // namespace sim
}  // namespace picpar

// The accumulator is re-declared every iteration: no carried order.
double last_scaled(const std::vector<double>& w) {
  double out = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    double local = w[i];
    local += 1.0;
    out = local;
  }
  return out;
}

// Indexed element updates scatter into distinct slots, not one scalar.
void deposit(std::vector<double>& field, const std::vector<double>& w) {
  for (std::size_t i = 0; i < w.size(); ++i) field[i] += w[i];
}

// A reduction inside an OrderInsensitive scope is declared order-safe.
double guarded_sum(picpar::sim::Comm& comm, const std::vector<double>& w) {
  picpar::sim::OrderInsensitive guard(comm);
  double sum = 0.0;
  for (double v : w) sum += v;
  return sum;
}

// Integer accumulation is exact and commutative: fine.
long count_all(const std::vector<int>& v) {
  long n = 0;
  for (int x : v) n += x;
  return n;
}
