// Positive fixture: orderings and hashes derived from run-to-run
// pointer addresses.
#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

struct Node {
  int id = 0;
};

std::map<Node*, int> g_weights;      // LINT: pointer-ordering
std::set<const Node*> g_seen;        // LINT: pointer-ordering

bool address_before(const Node* a, const Node* b) {
  return a < b;  // LINT: pointer-ordering
}

std::uint64_t address_hash(const Node* n) {
  return reinterpret_cast<std::uint64_t>(n);  // LINT: pointer-ordering
}

void sort_by_address(std::vector<Node*>& v) {
  std::sort(v.begin(), v.end());  // LINT: pointer-ordering
}
