// Positive fixture: hash-order iteration that escapes into serialization.
// `// LINT: <check-id>` marks every line picpar-lint must flag.
#include <string>
#include <unordered_map>
#include <unordered_set>

// Sink by name: the function itself exports.
std::string export_counts(const std::unordered_map<int, int>& m) {
  std::string out;
  for (const auto& kv : m)  // LINT: unordered-iteration-escape
    out += std::to_string(kv.first) + ",";
  return out;
}

// Sink by call: the function hands its result to a writer (the extern
// declaration has no body; the callee's name alone marks the sink).
void append_csv(const std::string& row);

std::string collect(const std::unordered_set<int>& s) {
  std::string out;
  for (int v : s)  // LINT: unordered-iteration-escape
    out += std::to_string(v);
  append_csv(out);
  return out;
}

// Explicit begin()/end() iteration is the same escape ("print" in the
// name makes this function a sink).
int print_first(const std::unordered_map<int, int>& m) {
  auto it = m.begin();  // LINT: unordered-iteration-escape
  return it == m.end() ? -1 : it->first;  // LINT: unordered-iteration-escape
}
