// Negative fixture: pointers stored, compared for equality, or ordered
// through stable fields — never by address. picpar-lint must stay silent.
#include <algorithm>
#include <map>
#include <vector>

struct Node {
  int id = 0;
};

// Pointer VALUES are fine; only pointer KEYS order by address.
std::map<int, Node*> g_by_id;

// Ordering through a stable field, not the address.
bool id_before(const Node* a, const Node* b) { return a->id < b->id; }

// Explicit field-based comparator: deterministic sort over pointers.
void sort_by_id(std::vector<Node*>& v) {
  std::sort(v.begin(), v.end(), id_before);
}

// Equality of pointers is identity, not order: fine.
bool same_node(const Node* a, const Node* b) { return a == b; }

// Sorting values (not pointers) with the default comparator: fine.
void sort_ids(std::vector<int>& v) { std::sort(v.begin(), v.end()); }
