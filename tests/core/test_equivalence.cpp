// Property tests: the incremental redistribution and the full distribution
// are interchangeable — starting from the same particle state, both must
// end with (a) the identical global multiset of particles, (b) a globally
// sorted, exactly balanced arrangement. Their rank *boundaries* may differ
// (splitters vs inherited bounds); their correctness may not.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/indexing.hpp"
#include "core/load_balance.hpp"
#include "core/partitioner.hpp"
#include "sfc/curve.hpp"
#include "sfc/hilbert.hpp"
#include "util/rng.hpp"

namespace picpar::core {
namespace {

using particles::ParticleArray;
using particles::ParticleRec;

struct Case {
  int ranks;
  sfc::CurveKind curve;
  std::uint64_t seed;
};

/// Gather every rank's particles into one global sorted list of
/// (key, x, y) triples for multiset comparison.
std::vector<std::tuple<std::uint64_t, double, double>> global_snapshot(
    sim::Comm& c, const ParticleArray& mine) {
  std::vector<double> flat;
  for (std::size_t i = 0; i < mine.size(); ++i) {
    flat.push_back(static_cast<double>(mine.key[i]));
    flat.push_back(mine.x[i]);
    flat.push_back(mine.y[i]);
  }
  const auto all = c.allgatherv(flat);
  std::vector<std::tuple<std::uint64_t, double, double>> out;
  for (std::size_t i = 0; i + 2 < all.size(); i += 3)
    out.emplace_back(static_cast<std::uint64_t>(all[i]), all[i + 1],
                     all[i + 2]);
  std::sort(out.begin(), out.end());
  return out;
}

class RedistEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(RedistEquivalence, SameMultisetSortedAndBalanced) {
  const auto [ranks, curve_kind, seed] = GetParam();
  const mesh::GridDesc grid(64, 32);
  const auto curve = sfc::make_curve(curve_kind, 64, 32);
  const std::uint64_t total = 96ull * static_cast<std::uint64_t>(ranks);

  sim::Machine m(ranks, sim::CostModel::zero());
  m.run([&, ranks = ranks, seed = seed](sim::Comm& c) {
    // Build a deterministic population, strided over ranks.
    picpar::Rng rng(seed);
    ParticleArray mine(-1.0, 1.0);
    for (std::uint64_t i = 0; i < total; ++i) {
      ParticleRec r;
      r.x = rng.uniform(0.0, 64.0);
      r.y = rng.uniform(0.0, 32.0);
      if (static_cast<int>(i % static_cast<std::uint64_t>(ranks)) == c.rank())
        mine.push_back(r);
    }

    ParticlePartitioner part(*curve, grid);
    part.assign_keys(c, mine);
    part.distribute(c, mine);

    // Drift + rekey, snapshot the state.
    picpar::Rng drift(seed * 31 + static_cast<std::uint64_t>(c.rank()));
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine.x[i] = grid.wrap_x(mine.x[i] + drift.normal());
      mine.y[i] = grid.wrap_y(mine.y[i] + drift.normal());
    }
    part.assign_keys(c, mine);
    const auto before = global_snapshot(c, mine);

    auto copy = mine;
    ParticlePartitioner fresh(*curve, grid);

    // Path A: incremental; Path B: full distribute on the copy.
    part.redistribute(c, mine);
    fresh.distribute(c, copy);

    // Both sorted and balanced.
    EXPECT_TRUE(is_sorted_by_key(mine));
    EXPECT_TRUE(is_sorted_by_key(copy));
    EXPECT_EQ(mine.size(), balanced_count(total, ranks, c.rank()));
    EXPECT_EQ(copy.size(), balanced_count(total, ranks, c.rank()));

    // Both preserve the global multiset.
    EXPECT_EQ(global_snapshot(c, mine), before);
    EXPECT_EQ(global_snapshot(c, copy), before);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RedistEquivalence,
    ::testing::Values(Case{2, sfc::CurveKind::kHilbert, 1},
                      Case{4, sfc::CurveKind::kHilbert, 2},
                      Case{8, sfc::CurveKind::kHilbert, 3},
                      Case{4, sfc::CurveKind::kSnake, 4},
                      Case{8, sfc::CurveKind::kSnake, 5},
                      Case{4, sfc::CurveKind::kMorton, 6},
                      Case{3, sfc::CurveKind::kHilbert, 7},
                      Case{5, sfc::CurveKind::kRowMajor, 8}),
    [](const ::testing::TestParamInfo<Case>& i) {
      return "p" + std::to_string(i.param.ranks) +
             sfc::curve_kind_name(i.param.curve) + "s" +
             std::to_string(i.param.seed);
    });

TEST(RedistStress, ManyRoundsOfHeavyDrift) {
  // Violent motion: every particle teleports each round. The incremental
  // path must degrade gracefully (everything lands in the off-processor
  // category) and stay correct.
  const int ranks = 6;
  const mesh::GridDesc grid(32, 32);
  const sfc::HilbertCurve curve(32, 32);
  const std::uint64_t total = 600;
  sim::Machine m(ranks, sim::CostModel::zero());
  m.run([&](sim::Comm& c) {
    picpar::Rng rng(99 + static_cast<std::uint64_t>(c.rank()));
    ParticleArray mine(-1.0, 1.0);
    for (std::uint64_t i = 0; i < total / ranks; ++i) {
      ParticleRec r;
      r.x = rng.uniform(0.0, 32.0);
      r.y = rng.uniform(0.0, 32.0);
      mine.push_back(r);
    }
    ParticlePartitioner part(curve, grid);
    part.assign_keys(c, mine);
    part.distribute(c, mine);
    for (int round = 0; round < 8; ++round) {
      for (std::size_t i = 0; i < mine.size(); ++i) {
        mine.x[i] = rng.uniform(0.0, 32.0);
        mine.y[i] = rng.uniform(0.0, 32.0);
      }
      part.assign_keys(c, mine);
      part.redistribute(c, mine);
      ASSERT_TRUE(is_sorted_by_key(mine));
      ASSERT_EQ(c.allreduce_sum<std::uint64_t>(mine.size()), total);
    }
  });
}

}  // namespace
}  // namespace picpar::core
