// InvariantChecker: each invariant fires on exactly the corruption it
// guards against, the verdict is a collective, and a clean population
// passes everything.
#include "core/invariants.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <memory>

#include "core/indexing.hpp"
#include "core/partitioner.hpp"
#include "particles/init.hpp"
#include "sim/comm.hpp"

namespace picpar::core {
namespace {

using particles::ParticleArray;
using sim::Comm;
using sim::CostModel;
using sim::Machine;

struct Fixture {
  mesh::GridDesc grid{32, 32};
  std::unique_ptr<sfc::Curve> curve =
      sfc::make_curve(sfc::CurveKind::kHilbert, 32, 32);
  ParticleArray population;

  explicit Fixture(std::uint64_t total = 400) : population(-1.0, 1.0) {
    particles::InitParams ip;
    ip.total = total;
    population = particles::generate(particles::Distribution::kGaussian, grid,
                                     ip);
    for (std::size_t i = 0; i < population.size(); ++i)
      population.key[i] =
          key_of(*curve, grid, population.x[i], population.y[i]);
  }

  /// Run `mutate(rank, local slice)` then check on `ranks` ranks; returns
  /// the mask every rank agreed on.
  std::uint32_t check_with(
      int ranks, InvariantConfig cfg,
      const std::function<void(int, ParticleArray&)>& mutate,
      bool pass_bounds = false) {
    std::uint32_t mask = 0;
    Machine m(ranks, CostModel::zero());
    m.run([&](Comm& c) {
      ParticleArray mine(population.charge(), population.mass());
      PartitionerConfig pcfg;
      ParticlePartitioner partitioner(*curve, grid, pcfg);
      const auto total = population.size();
      const auto r = static_cast<std::size_t>(c.rank());
      const auto p = static_cast<std::size_t>(ranks);
      for (std::size_t i = r * total / p; i < (r + 1) * total / p; ++i)
        mine.push_back(population.rec(i));
      partitioner.assign_keys(c, mine);
      partitioner.distribute(c, mine);

      InvariantChecker checker(*curve, grid, cfg);
      checker.set_reference_count(static_cast<std::uint64_t>(total));
      mutate(c.rank(), mine);
      const auto rep = checker.check(
          c, mine, 0, pass_bounds ? &partitioner.rank_upper_bounds() : nullptr);
      // Collective verdict: every rank must report the identical mask.
      const auto min_mask = c.allreduce_min<std::uint32_t>(rep.mask);
      const auto max_mask = c.allreduce_max<std::uint32_t>(rep.mask);
      EXPECT_EQ(min_mask, max_mask);
      if (c.rank() == 0) mask = rep.mask;
    });
    return mask;
  }
};

TEST(Invariants, CleanPopulationPasses) {
  Fixture fx;
  InvariantConfig cfg;
  cfg.balance_tolerance = 1.5;
  const auto mask = fx.check_with(4, cfg, [](int, ParticleArray&) {}, true);
  EXPECT_EQ(mask, 0u);
}

TEST(Invariants, LostParticleFiresCount) {
  Fixture fx;
  const auto mask = fx.check_with(4, {}, [](int rank, ParticleArray& p) {
    if (rank == 2 && !p.empty()) p.swap_remove(p.size() - 1);
  });
  EXPECT_TRUE(mask & static_cast<std::uint32_t>(Invariant::kCount));
}

TEST(Invariants, NanMomentumFiresFinite) {
  Fixture fx;
  const auto mask = fx.check_with(3, {}, [](int rank, ParticleArray& p) {
    if (rank == 1 && !p.empty())
      p.ux[0] = std::numeric_limits<double>::quiet_NaN();
  });
  EXPECT_TRUE(mask & static_cast<std::uint32_t>(Invariant::kFinite));
}

TEST(Invariants, EscapedPositionFiresDomain) {
  Fixture fx;
  const auto mask = fx.check_with(3, {}, [&](int rank, ParticleArray& p) {
    if (rank == 0 && !p.empty()) p.x[0] = fx.grid.lx * 2.5;
  });
  EXPECT_TRUE(mask & static_cast<std::uint32_t>(Invariant::kDomain));
}

TEST(Invariants, StaleKeyFiresKey) {
  Fixture fx;
  const auto mask = fx.check_with(3, {}, [](int rank, ParticleArray& p) {
    if (rank == 2 && !p.empty()) p.key[0] ^= 0x40;
  });
  EXPECT_TRUE(mask & static_cast<std::uint32_t>(Invariant::kKey));
}

TEST(Invariants, KeyCheckCanBeDisabled) {
  Fixture fx;
  InvariantConfig cfg;
  cfg.verify_keys = false;
  // Without bounds no order check runs either, so a corrupt key must pass.
  const auto mask = fx.check_with(3, cfg, [](int rank, ParticleArray& p) {
    if (rank == 2 && !p.empty()) p.key[0] ^= 0x40;
  });
  EXPECT_EQ(mask, 0u);
}

TEST(Invariants, OutOfOrderKeysFireSorted) {
  Fixture fx;
  InvariantConfig cfg;
  cfg.verify_keys = false;  // isolate the order check from the key check
  const auto mask = fx.check_with(
      3, cfg,
      [](int rank, ParticleArray& p) {
        if (rank == 1 && p.size() >= 2) std::swap(p.key[0], p.key[p.size() - 1]);
      },
      true);
  EXPECT_TRUE(mask & static_cast<std::uint32_t>(Invariant::kSorted));
}

TEST(Invariants, GrossImbalanceFiresBalance) {
  Fixture fx;
  InvariantConfig cfg;
  cfg.balance_tolerance = 1.5;
  cfg.balance_slack = 4.0;
  const auto mask = fx.check_with(4, cfg, [&](int rank, ParticleArray& p) {
    // Rank 3 hoards extra copies: count conservation is broken too, but
    // balance must fire on its own bit.
    if (rank == 3)
      for (int k = 0; k < 600; ++k) p.push_back(fx.population.rec(0));
  });
  EXPECT_TRUE(mask & static_cast<std::uint32_t>(Invariant::kBalance));
  EXPECT_TRUE(mask & static_cast<std::uint32_t>(Invariant::kCount));
}

TEST(Invariants, EnergyDriftFiresAgainstReference) {
  Fixture fx;
  InvariantConfig cfg;
  cfg.energy_factor = 2.0;
  Machine m(2, CostModel::zero());
  std::uint32_t second_mask = 0;
  m.run([&](Comm& c) {
    InvariantChecker checker(*fx.curve, fx.grid, cfg);
    ParticleArray empty(-1.0, 1.0);
    // First call adopts the reference; a 10x jump on the second must fire.
    const auto first = checker.check(c, empty, 0, nullptr, 1.0);
    EXPECT_EQ(first.mask, 0u);
    const auto second = checker.check(c, empty, 1, nullptr, 10.0);
    if (c.rank() == 0) second_mask = second.mask;
  });
  EXPECT_TRUE(second_mask & static_cast<std::uint32_t>(Invariant::kEnergy));
}

TEST(Invariants, ViolationDetailsNameTheProblem) {
  Fixture fx;
  Machine m(1, CostModel::zero());
  m.run([&](Comm& c) {
    InvariantChecker checker(*fx.curve, fx.grid, {});
    checker.set_reference_count(3);
    ParticleArray p(-1.0, 1.0);
    p.push_back(fx.population.rec(0));
    p.ux[0] = std::numeric_limits<double>::infinity();
    const auto rep = checker.check(c, p, 7, nullptr);
    ASSERT_FALSE(rep.ok());
    ASSERT_FALSE(rep.violations.empty());
    bool saw_finite = false;
    for (const auto& v : rep.violations) {
      EXPECT_EQ(v.iter, 7);
      if (v.kind == Invariant::kFinite) {
        saw_finite = true;
        EXPECT_NE(v.detail.find("non-finite"), std::string::npos);
      }
    }
    EXPECT_TRUE(saw_finite);
    EXPECT_TRUE(rep.has(Invariant::kCount));  // 1 != reference 3
  });
}

TEST(Invariants, NamesAreStable) {
  EXPECT_STREQ(invariant_name(Invariant::kCount), "count");
  EXPECT_STREQ(invariant_name(Invariant::kSorted), "sorted");
  EXPECT_STREQ(invariant_name(Invariant::kEnergy), "energy");
}

}  // namespace
}  // namespace picpar::core
