#include "core/load_balance.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace picpar::core {
namespace {

using particles::ParticleArray;
using particles::ParticleRec;

TEST(BalancedCount, SplitsExactly) {
  // Sum of balanced counts equals total; counts differ by at most 1.
  for (std::uint64_t total : {0ull, 1ull, 7ull, 100ull, 1001ull}) {
    for (int p : {1, 2, 3, 7, 32}) {
      std::uint64_t sum = 0, lo = ~0ull, hi = 0;
      for (int r = 0; r < p; ++r) {
        const auto c = balanced_count(total, p, r);
        sum += c;
        lo = std::min(lo, c);
        hi = std::max(hi, c);
      }
      EXPECT_EQ(sum, total);
      EXPECT_LE(hi - lo, 1u);
    }
  }
}

class BalanceRanks : public ::testing::TestWithParam<int> {};

TEST_P(BalanceRanks, EqualizesSkewedCounts) {
  const int p = GetParam();
  sim::Machine m(p, sim::CostModel::zero());
  m.run([p](sim::Comm& c) {
    // Rank r starts with (r+1)^2 particles carrying increasing keys so the
    // global order is total.
    ParticleArray mine(-1.0, 1.0);
    std::uint64_t base = 0;
    for (int r = 0; r < c.rank(); ++r)
      base += static_cast<std::uint64_t>((r + 1) * (r + 1));
    const auto n = static_cast<std::uint64_t>((c.rank() + 1) * (c.rank() + 1));
    for (std::uint64_t i = 0; i < n; ++i) {
      ParticleRec rec;
      rec.key = base + i;
      mine.push_back(rec);
    }
    std::uint64_t total = 0;
    for (int r = 0; r < p; ++r)
      total += static_cast<std::uint64_t>((r + 1) * (r + 1));

    order_maintaining_balance(c, mine);

    EXPECT_EQ(mine.size(), balanced_count(total, p, c.rank()));
    // Order preserved: keys are exactly the contiguous global range.
    const std::uint64_t start =
        static_cast<std::uint64_t>(c.rank()) * total /
        static_cast<std::uint64_t>(p);
    for (std::size_t i = 0; i < mine.size(); ++i)
      EXPECT_EQ(mine.key[i], start + i);
  });
}

TEST_P(BalanceRanks, AlreadyBalancedMovesNothing) {
  const int p = GetParam();
  sim::Machine m(p, sim::CostModel::zero());
  m.run([](sim::Comm& c) {
    ParticleArray mine(-1.0, 1.0);
    for (int i = 0; i < 10; ++i) {
      ParticleRec rec;
      rec.key = static_cast<std::uint64_t>(c.rank() * 10 + i);
      mine.push_back(rec);
    }
    const auto rep = order_maintaining_balance(c, mine);
    EXPECT_EQ(rep.sent, 0u);
    EXPECT_EQ(rep.received, 0u);
    EXPECT_EQ(mine.size(), 10u);
  });
}

TEST_P(BalanceRanks, AllParticlesOnOneRank) {
  const int p = GetParam();
  sim::Machine m(p, sim::CostModel::zero());
  m.run([p](sim::Comm& c) {
    ParticleArray mine(-1.0, 1.0);
    const std::uint64_t total = static_cast<std::uint64_t>(p) * 4;
    if (c.rank() == 0)
      for (std::uint64_t i = 0; i < total; ++i) {
        ParticleRec rec;
        rec.key = i;
        mine.push_back(rec);
      }
    order_maintaining_balance(c, mine);
    EXPECT_EQ(mine.size(), 4u);
    EXPECT_EQ(mine.key[0], static_cast<std::uint64_t>(c.rank()) * 4);
  });
}

TEST_P(BalanceRanks, EmptyGlobalPopulation) {
  const int p = GetParam();
  sim::Machine m(p, sim::CostModel::zero());
  m.run([](sim::Comm& c) {
    ParticleArray mine(-1.0, 1.0);
    order_maintaining_balance(c, mine);
    EXPECT_TRUE(mine.empty());
  });
}

TEST_P(BalanceRanks, FewerParticlesThanRanks) {
  const int p = GetParam();
  sim::Machine m(p, sim::CostModel::zero());
  m.run([p](sim::Comm& c) {
    ParticleArray mine(-1.0, 1.0);
    // 3 particles total, all initially on the last rank.
    if (c.rank() == p - 1)
      for (std::uint64_t i = 0; i < 3; ++i) {
        ParticleRec rec;
        rec.key = i;
        mine.push_back(rec);
      }
    order_maintaining_balance(c, mine);
    const auto total = c.allreduce_sum<std::uint64_t>(mine.size());
    EXPECT_EQ(total, 3u);
    EXPECT_EQ(mine.size(), balanced_count(3, p, c.rank()));
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, BalanceRanks, ::testing::Values(1, 2, 3, 5, 8, 16));

TEST(Balance, PreservesParticlePayloads) {
  sim::Machine m(4, sim::CostModel::zero());
  m.run([](sim::Comm& c) {
    ParticleArray mine(-1.0, 1.0);
    if (c.rank() == 2) {
      for (std::uint64_t i = 0; i < 8; ++i) {
        ParticleRec rec;
        rec.key = i;
        rec.x = 100.0 + static_cast<double>(i);
        rec.ux = -static_cast<double>(i);
        mine.push_back(rec);
      }
    }
    order_maintaining_balance(c, mine);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_DOUBLE_EQ(mine.x[i], 100.0 + static_cast<double>(mine.key[i]));
      EXPECT_DOUBLE_EQ(mine.ux[i], -static_cast<double>(mine.key[i]));
    }
  });
}

}  // namespace
}  // namespace picpar::core
