#include "core/partitioner.hpp"

#include <gtest/gtest.h>

#include "core/indexing.hpp"
#include "core/load_balance.hpp"
#include "sfc/hilbert.hpp"
#include "sfc/simple_curves.hpp"
#include "util/rng.hpp"

namespace picpar::core {
namespace {

using particles::ParticleArray;
using particles::ParticleRec;

mesh::GridDesc grid() { return mesh::GridDesc(32, 32); }

/// Seed each rank with an arbitrary chunk of a deterministic population.
ParticleArray scatter_population(int rank, int nranks, std::uint64_t total,
                                 std::uint64_t seed = 4242) {
  picpar::Rng rng(seed);
  ParticleArray mine(-1.0, 1.0);
  for (std::uint64_t i = 0; i < total; ++i) {
    ParticleRec r;
    r.x = rng.uniform(0.0, 32.0);
    r.y = rng.uniform(0.0, 32.0);
    r.ux = rng.normal() * 0.05;
    r.uy = rng.normal() * 0.05;
    if (static_cast<int>(i % static_cast<std::uint64_t>(nranks)) == rank)
      mine.push_back(r);
  }
  return mine;
}

void expect_globally_sorted_and_balanced(sim::Comm& c, ParticleArray& p,
                                         std::uint64_t total) {
  EXPECT_TRUE(is_sorted_by_key(p));
  EXPECT_EQ(p.size(), balanced_count(total, c.size(), c.rank()));
  // Rank boundaries respect the global order.
  const std::uint64_t my_min = p.empty() ? 0 : p.key.front();
  const std::uint64_t my_max = p.empty() ? 0 : p.key.back();
  const auto mins = c.allgather(my_min);
  const auto maxs = c.allgather(my_max);
  for (int r = 0; r + 1 < c.size(); ++r)
    EXPECT_LE(maxs[static_cast<std::size_t>(r)],
              mins[static_cast<std::size_t>(r + 1)]);
}

class PartitionerRanks : public ::testing::TestWithParam<int> {};

TEST_P(PartitionerRanks, DistributeSortsAndBalances) {
  const int p = GetParam();
  const std::uint64_t total = 64ull * static_cast<std::uint64_t>(p);
  sfc::HilbertCurve curve(32, 32);
  sim::Machine m(p, sim::CostModel::zero());
  m.run([&](sim::Comm& c) {
    auto mine = scatter_population(c.rank(), p, total);
    ParticlePartitioner part(curve, grid());
    part.assign_keys(c, mine);
    const auto rep = part.distribute(c, mine);
    EXPECT_FALSE(rep.incremental);
    expect_globally_sorted_and_balanced(c, mine, total);
  });
}

TEST_P(PartitionerRanks, RedistributeFallsBackWithoutState) {
  const int p = GetParam();
  sfc::HilbertCurve curve(32, 32);
  sim::Machine m(p, sim::CostModel::zero());
  m.run([&](sim::Comm& c) {
    auto mine = scatter_population(c.rank(), p, 64ull * p);
    ParticlePartitioner part(curve, grid());
    part.assign_keys(c, mine);
    const auto rep = part.redistribute(c, mine);
    EXPECT_FALSE(rep.incremental) << "first call must do a full distribute";
    EXPECT_TRUE(part.has_state());
  });
}

TEST_P(PartitionerRanks, RedistributeAfterPerturbationRestoresInvariants) {
  const int p = GetParam();
  const std::uint64_t total = 128ull * static_cast<std::uint64_t>(p);
  sfc::HilbertCurve curve(32, 32);
  const auto g = grid();
  sim::Machine m(p, sim::CostModel::zero());
  m.run([&](sim::Comm& c) {
    auto mine = scatter_population(c.rank(), p, total);
    ParticlePartitioner part(curve, g);
    part.assign_keys(c, mine);
    part.distribute(c, mine);

    // Perturb: move every particle a little, recompute keys.
    picpar::Rng rng(static_cast<std::uint64_t>(c.rank()) + 1);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine.x[i] = g.wrap_x(mine.x[i] + rng.normal() * 0.8);
      mine.y[i] = g.wrap_y(mine.y[i] + rng.normal() * 0.8);
    }
    part.assign_keys(c, mine);

    const auto rep = part.redistribute(c, mine);
    EXPECT_TRUE(rep.incremental);
    expect_globally_sorted_and_balanced(c, mine, total);
  });
}

TEST_P(PartitionerRanks, IncrementalMovesFewerThanFullResort) {
  // The headline claim behind Fig 11: after small motion, the incremental
  // path does less sorting work than a from-scratch distribute.
  const int p = GetParam();
  if (p < 2) GTEST_SKIP() << "needs real partitioning";
  const std::uint64_t total = 1024ull * static_cast<std::uint64_t>(p);
  sfc::HilbertCurve curve(32, 32);
  const auto g = grid();
  sim::Machine m(p, sim::CostModel::zero());
  m.run([&](sim::Comm& c) {
    auto mine = scatter_population(c.rank(), p, total);
    ParticlePartitioner inc(curve, g);
    inc.assign_keys(c, mine);
    inc.distribute(c, mine);

    picpar::Rng rng(static_cast<std::uint64_t>(c.rank()) + 77);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine.x[i] = g.wrap_x(mine.x[i] + rng.normal() * 0.2);
      mine.y[i] = g.wrap_y(mine.y[i] + rng.normal() * 0.2);
    }
    inc.assign_keys(c, mine);

    auto copy = mine;  // identical perturbed state for the full resort
    ParticlePartitioner full(curve, g);
    const auto rep_inc = inc.redistribute(c, mine);
    const auto rep_full = full.distribute(c, copy);

    EXPECT_LT(rep_inc.work.total_ops(), rep_full.work.total_ops())
        << "incremental sorting should exploit near-sortedness";
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, PartitionerRanks,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(Partitioner, RepeatedRedistributionsStayConsistent) {
  const int p = 8;
  const std::uint64_t total = 1024;
  sfc::HilbertCurve curve(32, 32);
  const auto g = grid();
  sim::Machine m(p, sim::CostModel::zero());
  m.run([&](sim::Comm& c) {
    auto mine = scatter_population(c.rank(), p, total);
    ParticlePartitioner part(curve, g);
    part.assign_keys(c, mine);
    part.distribute(c, mine);
    picpar::Rng rng(static_cast<std::uint64_t>(c.rank()) * 13 + 5);
    for (int round = 0; round < 5; ++round) {
      for (std::size_t i = 0; i < mine.size(); ++i) {
        mine.x[i] = g.wrap_x(mine.x[i] + rng.normal());
        mine.y[i] = g.wrap_y(mine.y[i] + rng.normal());
      }
      part.assign_keys(c, mine);
      part.redistribute(c, mine);
      EXPECT_TRUE(is_sorted_by_key(mine));
      const auto n = c.allreduce_sum<std::uint64_t>(mine.size());
      EXPECT_EQ(n, total) << "no particles lost or duplicated";
    }
  });
}

/// Redistributing an already-balanced, already-sorted population must be a
/// true no-op: nothing is sent, nothing is moved locally, and the particle
/// arrays come back byte-identical (FP summation order downstream depends
/// on it). Exercised under two curves since key layouts differ.
///
/// Keys here are made distinct (one particle per cell): when a duplicated
/// key straddles a rank boundary, the bound (taken from the lower rank's
/// max key) classifies the upper rank's copies as off-processor and the
/// balance step returns them — correct, but not a no-op. Distinct boundary
/// keys are the precondition for the settled fast path.
void expect_redistribute_idempotent(const sfc::Curve& curve) {
  const int p = 8;
  const std::uint64_t total = 1024;  // one particle per 32x32 cell
  const auto g = grid();
  sim::Machine m(p, sim::CostModel::zero());
  m.run([&](sim::Comm& c) {
    ParticleArray mine(-1.0, 1.0);
    picpar::Rng rng(static_cast<std::uint64_t>(c.rank()) + 9);
    for (std::uint64_t i = 0; i < total; ++i) {
      if (static_cast<int>(i % static_cast<std::uint64_t>(p)) != c.rank())
        continue;
      ParticleRec r;
      r.x = static_cast<double>(i % 32) + 0.5;
      r.y = static_cast<double>(i / 32) + 0.5;
      r.ux = rng.normal() * 0.05;
      r.uy = rng.normal() * 0.05;
      mine.push_back(r);
    }
    ParticlePartitioner part(curve, g);
    part.assign_keys(c, mine);
    part.distribute(c, mine);

    // Snapshot the post-distribute state bit-for-bit.
    const auto x = mine.x, y = mine.y, ux = mine.ux, uy = mine.uy;
    const auto key = mine.key;

    // Keys unchanged (no motion) -> redistribute must detect "settled".
    const auto rep = part.redistribute(c, mine);
    EXPECT_TRUE(rep.incremental);
    EXPECT_EQ(rep.sent_particles, 0u);
    EXPECT_EQ(rep.work.moves, 0u) << "no local reshuffling on a no-op";

    ASSERT_EQ(mine.size(), key.size());
    EXPECT_EQ(mine.key, key);
    EXPECT_EQ(mine.x, x);
    EXPECT_EQ(mine.y, y);
    EXPECT_EQ(mine.ux, ux);
    EXPECT_EQ(mine.uy, uy);
    expect_globally_sorted_and_balanced(c, mine, total);
  });
}

TEST(Partitioner, RedistributeIsIdempotentHilbert) {
  expect_redistribute_idempotent(sfc::HilbertCurve(32, 32));
}

TEST(Partitioner, RedistributeIsIdempotentSnake) {
  expect_redistribute_idempotent(sfc::SnakeCurve(32, 32));
}

TEST(Partitioner, HighlyIrregularClusterStillBalances) {
  // All particles in one corner cell: keys collide heavily, balance must
  // still split counts evenly.
  const int p = 8;
  sfc::HilbertCurve curve(32, 32);
  const auto g = grid();
  sim::Machine m(p, sim::CostModel::zero());
  m.run([&](sim::Comm& c) {
    ParticleArray mine(-1.0, 1.0);
    for (int i = 0; i < 100; ++i) {
      ParticleRec r;
      r.x = 0.5;
      r.y = 0.5;
      mine.push_back(r);
    }
    ParticlePartitioner part(curve, g);
    part.assign_keys(c, mine);
    part.distribute(c, mine);
    EXPECT_EQ(mine.size(), balanced_count(800, p, c.rank()));
  });
}

TEST(Partitioner, RankUpperBoundsAreNonDecreasing) {
  const int p = 4;
  sfc::HilbertCurve curve(32, 32);
  sim::Machine m(p, sim::CostModel::zero());
  m.run([&](sim::Comm& c) {
    auto mine = scatter_population(c.rank(), p, 512);
    ParticlePartitioner part(curve, grid());
    part.assign_keys(c, mine);
    part.distribute(c, mine);
    const auto& bounds = part.rank_upper_bounds();
    ASSERT_EQ(bounds.size(), 4u);
    for (std::size_t i = 1; i < bounds.size(); ++i)
      EXPECT_LE(bounds[i - 1], bounds[i]);
  });
}

TEST(Partitioner, ConfigValidation) {
  sfc::HilbertCurve curve(8, 8);
  PartitionerConfig bad;
  bad.buckets_per_rank = 0;
  EXPECT_THROW(ParticlePartitioner(curve, mesh::GridDesc(8, 8), bad),
               std::invalid_argument);
}

TEST(Partitioner, ChargesVirtualTimeForWork) {
  sfc::HilbertCurve curve(32, 32);
  sim::CostModel cm = sim::CostModel::zero();
  cm.delta = 1e-6;
  sim::Machine m(4, cm);
  auto res = m.run([&](sim::Comm& c) {
    auto mine = scatter_population(c.rank(), 4, 1024);
    ParticlePartitioner part(curve, grid());
    part.assign_keys(c, mine);
    part.distribute(c, mine);
  });
  EXPECT_GT(res.max_compute(), 0.0) << "sort work must be charged as compute";
}

}  // namespace
}  // namespace picpar::core
