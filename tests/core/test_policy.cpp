#include "core/policy.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace picpar::core {
namespace {

TEST(StaticPolicy, NeverTriggers) {
  StaticPolicy p;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(p.should_redistribute(i, 1e9));
  EXPECT_EQ(p.name(), "static");
}

TEST(PeriodicPolicy, TriggersEveryK) {
  PeriodicPolicy p(5);
  std::vector<int> fired;
  for (int i = 0; i < 20; ++i)
    if (p.should_redistribute(i, 0.0)) fired.push_back(i);
  EXPECT_EQ(fired, (std::vector<int>{4, 9, 14, 19}));
}

TEST(PeriodicPolicy, PeriodOneTriggersAlways) {
  PeriodicPolicy p(1);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(p.should_redistribute(i, 0.0));
}

TEST(PeriodicPolicy, RejectsNonPositivePeriod) {
  EXPECT_THROW(PeriodicPolicy(0), std::invalid_argument);
  EXPECT_THROW(PeriodicPolicy(-3), std::invalid_argument);
}

TEST(PeriodicPolicy, NameIncludesPeriod) {
  EXPECT_EQ(PeriodicPolicy(25).name(), "periodic:25");
}

TEST(SarPolicy, NeverTriggersWithoutCostEstimate) {
  SarPolicy p;
  for (int i = 0; i < 50; ++i)
    EXPECT_FALSE(p.should_redistribute(i, 1.0 + i));  // no notify yet
}

TEST(SarPolicy, ImplementsEquationOne) {
  // (t1 - t0) * (i1 - i0) >= T_redistribution
  SarPolicy p;
  p.notify_redistribution(9, 2.0);  // i0 = 9, T = 2.0
  // First iteration after redistribution establishes t0 = 1.0.
  EXPECT_FALSE(p.should_redistribute(10, 1.0));
  // (1.1 - 1.0) * (11 - 9) = 0.22 < 2.0 -> no.
  EXPECT_FALSE(p.should_redistribute(11, 1.1));
  // (1.15 - 1.0) * (20 - 9) = 1.65 < 2.0 -> no.
  EXPECT_FALSE(p.should_redistribute(20, 1.15));
  // (1.2 - 1.0) * (21 - 9) = 2.4 >= 2.0 -> yes.
  EXPECT_TRUE(p.should_redistribute(21, 1.2));
}

TEST(SarPolicy, FlatIterationTimesNeverTrigger) {
  SarPolicy p;
  p.notify_redistribution(-1, 0.5);
  EXPECT_FALSE(p.should_redistribute(0, 1.0));  // t0
  for (int i = 1; i < 1000; ++i)
    EXPECT_FALSE(p.should_redistribute(i, 1.0)) << "no rise, no remap";
}

TEST(SarPolicy, CheaperRedistributionTriggersSooner) {
  auto first_trigger = [](double redist_cost) {
    SarPolicy p;
    p.notify_redistribution(-1, redist_cost);
    p.should_redistribute(0, 1.0);  // t0
    for (int i = 1; i < 10000; ++i)
      if (p.should_redistribute(i, 1.0 + 0.01 * i)) return i;
    return -1;
  };
  const int cheap = first_trigger(0.1);
  const int costly = first_trigger(10.0);
  ASSERT_NE(cheap, -1);
  ASSERT_NE(costly, -1);
  EXPECT_LT(cheap, costly);
}

TEST(SarPolicy, ResetsBaseAfterRedistribution) {
  SarPolicy p;
  p.notify_redistribution(-1, 1.0);
  p.should_redistribute(0, 1.0);                 // t0 = 1.0
  EXPECT_TRUE(p.should_redistribute(5, 2.0));    // (2-1)*(5-(-1)) = 6 >= 1
  p.notify_redistribution(5, 1.0);
  // New epoch: first call only sets the new t0, even with a huge time.
  EXPECT_FALSE(p.should_redistribute(6, 50.0));
  EXPECT_EQ(p.last_redist_cost(), 1.0);
}

TEST(SarPolicy, NoisyFirstSampleCannotDisableSar) {
  // Regression: if the first post-redistribution iteration is a straggler
  // spike, every later sample sits below it and (t1 - t0) goes negative.
  // The baseline must slide down to the true minimum so real growth still
  // triggers Eq. 1.
  SarPolicy p;
  p.notify_redistribution(-1, 0.5);
  EXPECT_FALSE(p.should_redistribute(0, 9.0));  // spike establishes t0
  EXPECT_FALSE(p.should_redistribute(1, 1.0));  // baseline slides to 1.0
  EXPECT_EQ(p.baseline(), 1.0);
  // Growth from the *minimum*: (1.3 - 1.0) * (4 - (-1)) = 1.5 >= 0.5.
  EXPECT_FALSE(p.should_redistribute(2, 1.0));
  EXPECT_FALSE(p.should_redistribute(3, 1.05));
  EXPECT_TRUE(p.should_redistribute(4, 1.3));
}

TEST(SarPolicy, NonMonotonicTimingsUseMinimumBaseline) {
  // Jittery timings around a flat mean must not fire Eq. 1: the expected
  // saving is measured against the minimum, not the first sample.
  SarPolicy p;
  p.notify_redistribution(-1, 2.0);
  const double noise[] = {1.2, 0.9, 1.1, 0.8, 1.15, 0.95, 1.05, 1.0};
  int iter = 0;
  for (const double t : noise)
    EXPECT_FALSE(p.should_redistribute(iter++, t)) << "iter " << iter;
  EXPECT_EQ(p.baseline(), 0.8);
  // (1.0 - 0.8) * (50 - (-1)) = 10.2 >= 2.0: sustained rise above the
  // minimum still triggers far out.
  EXPECT_TRUE(p.should_redistribute(50, 1.0));
}

TEST(SarPolicy, NegativeAndNanTimingsAreClamped) {
  SarPolicy p;
  p.notify_redistribution(-1, 1.0);
  EXPECT_FALSE(p.should_redistribute(0, -5.0));  // treated as 0.0
  EXPECT_EQ(p.baseline(), 0.0);
  const double nan = std::nan("");
  EXPECT_FALSE(p.should_redistribute(1, nan));  // must not poison state
  EXPECT_EQ(p.baseline(), 0.0);
  // Recovery: growth from the clamped baseline still follows Eq. 1.
  EXPECT_TRUE(p.should_redistribute(2, 0.5));  // (0.5-0)*(2-(-1)) = 1.5 >= 1
}

TEST(SarPolicy, ConfirmationsFilterSingleSpikes) {
  SarPolicy p(2);
  p.notify_redistribution(-1, 0.1);
  EXPECT_FALSE(p.should_redistribute(0, 1.0));  // t0
  // One-iteration spike satisfies Eq. 1 once, then drops back: no trigger.
  EXPECT_FALSE(p.should_redistribute(1, 3.0));
  EXPECT_FALSE(p.should_redistribute(2, 1.0));
  // Sustained rise: second consecutive exceedance fires.
  EXPECT_FALSE(p.should_redistribute(3, 3.0));
  EXPECT_TRUE(p.should_redistribute(4, 3.0));
  EXPECT_EQ(p.name(), "sar:2");
}

TEST(SarPolicy, RejectsNonPositiveConfirmations) {
  EXPECT_THROW(SarPolicy(0), std::invalid_argument);
  EXPECT_THROW(SarPolicy(-1), std::invalid_argument);
}

TEST(ThresholdPolicy, TriggersOnRelativeRise) {
  ThresholdPolicy p(1.5);
  EXPECT_FALSE(p.should_redistribute(0, 1.0));  // establishes t0
  EXPECT_FALSE(p.should_redistribute(1, 1.4));
  EXPECT_TRUE(p.should_redistribute(2, 1.6));
}

TEST(ThresholdPolicy, ResetsBaseAfterNotify) {
  ThresholdPolicy p(1.2);
  EXPECT_FALSE(p.should_redistribute(0, 1.0));
  EXPECT_TRUE(p.should_redistribute(1, 2.0));
  p.notify_redistribution(1, 0.1);
  EXPECT_FALSE(p.should_redistribute(2, 2.0)) << "2.0 is the new baseline";
  EXPECT_FALSE(p.should_redistribute(3, 2.3));
  EXPECT_TRUE(p.should_redistribute(4, 2.5));
}

TEST(ThresholdPolicy, SpikyBaselineSlidesToMinimum) {
  // Regression: a slow first sample used to set the bar permanently high.
  ThresholdPolicy p(1.5);
  EXPECT_FALSE(p.should_redistribute(0, 10.0));  // straggler spike as t0
  EXPECT_FALSE(p.should_redistribute(1, 1.0));   // baseline slides to 1.0
  EXPECT_TRUE(p.should_redistribute(2, 1.6)) << "rise vs the true baseline";
}

TEST(ThresholdPolicy, ClampsNegativeAndNanTimings) {
  ThresholdPolicy p(1.5);
  EXPECT_FALSE(p.should_redistribute(0, 1.0));
  EXPECT_FALSE(p.should_redistribute(1, std::nan("")));
  EXPECT_FALSE(p.should_redistribute(2, -3.0));
  // NaN/negative clamp to 0, which becomes the new minimum baseline; any
  // positive sample is now a relative rise.
  EXPECT_TRUE(p.should_redistribute(3, 0.5));
}

TEST(ThresholdPolicy, ConfirmationsRequireSustainedRise) {
  ThresholdPolicy p(1.5, 3);
  EXPECT_FALSE(p.should_redistribute(0, 1.0));
  EXPECT_FALSE(p.should_redistribute(1, 2.0));  // 1st exceedance
  EXPECT_FALSE(p.should_redistribute(2, 2.0));  // 2nd
  EXPECT_FALSE(p.should_redistribute(3, 1.0));  // relapse resets the count
  EXPECT_FALSE(p.should_redistribute(4, 2.0));
  EXPECT_FALSE(p.should_redistribute(5, 2.0));
  EXPECT_TRUE(p.should_redistribute(6, 2.0));   // 3rd consecutive
  EXPECT_EQ(p.name(), "threshold:1.5:3");
}

TEST(ThresholdPolicy, RejectsFactorsAtOrBelowOne) {
  EXPECT_THROW(ThresholdPolicy(1.0), std::invalid_argument);
  EXPECT_THROW(ThresholdPolicy(0.5), std::invalid_argument);
}

TEST(ThresholdPolicy, NameCarriesFactor) {
  EXPECT_EQ(ThresholdPolicy(1.5).name(), "threshold:1.5");
}

TEST(MakePolicy, ParsesThresholdSpec) {
  EXPECT_EQ(make_policy("threshold:1.25")->name(), "threshold:1.25");
  EXPECT_THROW(make_policy("threshold:0.9"), std::invalid_argument);
}

TEST(MakePolicy, ParsesSpecs) {
  EXPECT_EQ(make_policy("static")->name(), "static");
  EXPECT_EQ(make_policy("sar")->name(), "sar");
  EXPECT_EQ(make_policy("dynamic")->name(), "sar");
  EXPECT_EQ(make_policy("periodic:25")->name(), "periodic:25");
}

TEST(MakePolicy, ParsesConfirmationSpecs) {
  EXPECT_EQ(make_policy("sar:2")->name(), "sar:2");
  EXPECT_EQ(make_policy("sar:1")->name(), "sar");
  EXPECT_EQ(make_policy("threshold:1.5:2")->name(), "threshold:1.5:2");
  EXPECT_THROW(make_policy("sar:0"), std::invalid_argument);
  EXPECT_THROW(make_policy("threshold:1.5:0"), std::invalid_argument);
}

TEST(MakePolicy, RejectsUnknownAndMalformed) {
  EXPECT_THROW(make_policy("sometimes"), std::invalid_argument);
  EXPECT_ANY_THROW(make_policy("periodic:abc"));
  EXPECT_THROW(make_policy("periodic:0"), std::invalid_argument);
}

}  // namespace
}  // namespace picpar::core
