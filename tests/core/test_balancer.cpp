// Weighted-balancer bounds at large p: when the rank count exceeds the
// number of weight-bearing cells, compute_bounds emits *duplicate* bounds
// (consecutive ranks sharing an upper key) — never unsorted ones — and the
// lower_bound ownership rule resolves every key to the first rank holding
// the bound, leaving the later duplicates legitimately empty. This pins the
// empty-rank behavior audited in balancer.cpp's weighted_bounds.
#include "core/balancer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "sfc/hilbert.hpp"
#include "sfc/index_cache.hpp"
#include "sim/comm.hpp"

namespace picpar::core {
namespace {

using particles::ParticleArray;
using particles::ParticleRec;

constexpr std::uint64_t kMaxKey = std::numeric_limits<std::uint64_t>::max();

/// Rank that owns `key` under the partitioner's rule (partitioner.cpp
/// owner_of): first rank whose inclusive upper bound admits the key.
int owner_of(const std::vector<std::uint64_t>& bounds, std::uint64_t key) {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), key);
  if (it == bounds.end()) return static_cast<int>(bounds.size()) - 1;
  return static_cast<int>(it - bounds.begin());
}

/// Run `balancer` collectively on p ranks where only the listed cells are
/// populated (`per_cell` particles each, all held by rank 0); returns the
/// agreed bounds from every rank for cross-rank comparison.
std::vector<std::vector<std::uint64_t>> bounds_on_machine(
    const BalancerPolicy& balancer, int p,
    const std::vector<std::uint64_t>& populated, int per_cell) {
  const sfc::HilbertCurve curve(8, 4);
  const sfc::IndexCache cache(curve, 8, 4);
  std::vector<std::vector<std::uint64_t>> all(static_cast<std::size_t>(p));
  sim::Machine m(p, sim::CostModel::zero());
  m.run([&](sim::Comm& c) {
    ParticleArray mine(-1.0, 1.0);
    if (c.rank() == 0) {
      for (const std::uint64_t cell : populated)
        for (int i = 0; i < per_cell; ++i) {
          ParticleRec rec;
          rec.key = cell;
          mine.push_back(rec);
        }
    }
    SortWork work;
    all[static_cast<std::size_t>(c.rank())] =
        balancer.compute_bounds(c, mine, cache, work);
  });
  return all;
}

TEST(BalancerBounds, MoreRanksThanOccupiedCells) {
  // 64 ranks, 8x4 = 32 cells, only 3 of them populated. Far more ranks
  // than weight: duplicates are forced.
  const int p = 64;
  const EulerianBalancer balancer;  // alpha = 0: particle weight only
  const std::vector<std::uint64_t> populated = {2, 9, 20};
  const auto all = bounds_on_machine(balancer, p, populated, 5);

  // Every rank derived the identical bounds (collective agreement).
  for (int r = 1; r < p; ++r) EXPECT_EQ(all[0], all[static_cast<std::size_t>(r)]);

  const auto& b = all[0];
  ASSERT_EQ(b.size(), static_cast<std::size_t>(p));
  // Non-decreasing, never unsorted — the invariant dest_rank relies on.
  for (int r = 1; r < p; ++r) EXPECT_GE(b[r], b[r - 1]) << "rank " << r;
  EXPECT_EQ(b.back(), kMaxKey);
  // With 3 occupied cells and 64 ranks the bounds must repeat.
  EXPECT_TRUE(std::adjacent_find(b.begin(), b.end()) != b.end());

  // Ownership: every populated key resolves to a valid rank, and each
  // duplicate-bound run funnels its keys to its first rank — the later
  // duplicates own empty ranges.
  std::vector<int> count(static_cast<std::size_t>(p), 0);
  for (const std::uint64_t cell : populated) {
    const int o = owner_of(b, cell);
    ASSERT_GE(o, 0);
    ASSERT_LT(o, p);
    count[static_cast<std::size_t>(o)] += 5;
  }
  for (int r = 1; r < p; ++r)
    if (b[r] == b[r - 1])
      EXPECT_EQ(count[static_cast<std::size_t>(r)], 0)
          << "duplicate-bound rank " << r << " must be empty";
  int total = 0;
  for (const int n : count) total += n;
  EXPECT_EQ(total, 15) << "every particle owned exactly once";
}

TEST(BalancerBounds, NoParticlesAtAll) {
  // Zero total weight (eulerian alpha = 0, empty array): the walk cuts
  // every interior bound at the first cell. Degenerate but well-formed —
  // non-decreasing, all keys to rank 0, no crash.
  const int p = 16;
  const EulerianBalancer balancer;
  const auto all = bounds_on_machine(balancer, p, {}, 0);
  const auto& b = all[0];
  ASSERT_EQ(b.size(), static_cast<std::size_t>(p));
  for (int r = 1; r < p; ++r) EXPECT_GE(b[r], b[r - 1]);
  EXPECT_EQ(b.back(), kMaxKey);
  EXPECT_EQ(owner_of(b, 0), 0);
}

TEST(BalancerBounds, SfcWeightSpreadsCellsAcrossEmptyRanks) {
  // With alpha > 0 every real cell carries weight, so up to min(p, cells)
  // ranks receive non-empty ranges even with no particles; ranks beyond
  // the cell count still end as duplicates.
  const int p = 64;  // > 32 cells
  const SfcWeightedBalancer balancer(1.0);
  const auto all = bounds_on_machine(balancer, p, {}, 0);
  const auto& b = all[0];
  ASSERT_EQ(b.size(), static_cast<std::size_t>(p));
  for (int r = 1; r < p; ++r) EXPECT_GE(b[r], b[r - 1]);
  EXPECT_EQ(b.back(), kMaxKey);
  // 32 cells cannot feed 64 distinct ranges: duplicates must exist.
  EXPECT_TRUE(std::adjacent_find(b.begin(), b.end()) != b.end());
  // But more than one rank got a real range (the weight did spread).
  EXPECT_GT(std::set<std::uint64_t>(b.begin(), b.end()).size(), 2u);
}

}  // namespace
}  // namespace picpar::core
