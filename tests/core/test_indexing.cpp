#include "core/indexing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sfc/hilbert.hpp"
#include "sfc/simple_curves.hpp"

namespace picpar::core {
namespace {

TEST(Indexing, KeyEqualsCurveIndexOfCell) {
  mesh::GridDesc g(8, 8);
  sfc::HilbertCurve c(8, 8);
  // Particle in the middle of cell (3, 5).
  EXPECT_EQ(key_of(c, g, 3.5, 5.5), c.index(3, 5));
}

TEST(Indexing, AssignKeysCoversWholeArray) {
  mesh::GridDesc g(16, 16);
  sfc::SnakeCurve c(16, 16);
  particles::ParticleArray p(-1.0, 1.0);
  for (int i = 0; i < 8; ++i) {
    particles::ParticleRec r;
    r.x = i + 0.5;
    r.y = 2.0 * i + 0.5;
    p.push_back(r);
  }
  assign_keys(c, g, p);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(p.key[static_cast<std::size_t>(i)],
              c.index(static_cast<std::uint32_t>(i),
                      static_cast<std::uint32_t>(2 * i)));
}

TEST(Indexing, ParticlesInSameCellShareKey) {
  mesh::GridDesc g(4, 4);
  sfc::HilbertCurve c(4, 4);
  EXPECT_EQ(key_of(c, g, 1.1, 2.1), key_of(c, g, 1.9, 2.9));
  EXPECT_NE(key_of(c, g, 1.1, 2.1), key_of(c, g, 2.1, 2.1));
}

TEST(Indexing, DomainEdgePositionStillValid) {
  mesh::GridDesc g(4, 4);
  sfc::HilbertCurve c(4, 4);
  // Position numerically equal to lx maps to the last cell, not out of range.
  const auto k = key_of(c, g, std::nextafter(4.0, 0.0), 0.5);
  EXPECT_EQ(k, c.index(3, 0));
}

TEST(Indexing, IsSortedByKeyDetectsOrder) {
  particles::ParticleArray p(-1.0, 1.0);
  for (std::uint64_t k : {1ull, 3ull, 3ull, 7ull}) {
    particles::ParticleRec r;
    r.key = k;
    p.push_back(r);
  }
  EXPECT_TRUE(is_sorted_by_key(p));
  p.key[1] = 8;
  EXPECT_FALSE(is_sorted_by_key(p));
}

TEST(Indexing, EmptyArrayIsSorted) {
  particles::ParticleArray p(-1.0, 1.0);
  EXPECT_TRUE(is_sorted_by_key(p));
}

}  // namespace
}  // namespace picpar::core
