#include "core/sort_util.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace picpar::core {
namespace {

using particles::ParticleArray;
using particles::ParticleRec;

ParticleRec rec(std::uint64_t key, double x = 0.0) {
  ParticleRec r;
  r.key = key;
  r.x = x;
  return r;
}

TEST(SortByKey, SortsRandomKeys) {
  ParticleArray p(-1.0, 1.0);
  picpar::Rng rng(1);
  for (int i = 0; i < 500; ++i) p.push_back(rec(rng.below(1000)));
  const auto w = sort_by_key(p);
  for (std::size_t i = 1; i < p.size(); ++i)
    EXPECT_LE(p.key[i - 1], p.key[i]);
  EXPECT_GT(w.comparisons, 0u);
  EXPECT_EQ(w.moves, 500u);
}

TEST(SortByKey, StableForEqualKeys) {
  ParticleArray p(-1.0, 1.0);
  p.push_back(rec(5, 1.0));
  p.push_back(rec(3, 2.0));
  p.push_back(rec(5, 3.0));
  p.push_back(rec(3, 4.0));
  sort_by_key(p);
  EXPECT_EQ(p.x[0], 2.0);
  EXPECT_EQ(p.x[1], 4.0);
  EXPECT_EQ(p.x[2], 1.0);
  EXPECT_EQ(p.x[3], 3.0);
}

TEST(SortByKey, EmptyAndSingleton) {
  ParticleArray p(-1.0, 1.0);
  EXPECT_EQ(sort_by_key(p).comparisons, 0u);
  p.push_back(rec(1));
  sort_by_key(p);
  EXPECT_EQ(p.size(), 1u);
}

TEST(SortRecords, AlreadySortedIsCheap) {
  std::vector<ParticleRec> v;
  for (std::uint64_t i = 0; i < 100; ++i) v.push_back(rec(i));
  const auto w = sort_records(v);
  EXPECT_EQ(w.comparisons, 99u) << "sortedness check only";
  EXPECT_EQ(w.moves, 0u) << "no sorting work on sorted input";
}

TEST(SortRecords, UnsortedPaysFullCost) {
  std::vector<ParticleRec> v;
  for (std::uint64_t i = 0; i < 100; ++i) v.push_back(rec(99 - i));
  const auto w = sort_records(v);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(),
                             [](const ParticleRec& a, const ParticleRec& b) {
                               return a.key < b.key;
                             }));
  EXPECT_GT(w.comparisons, 99u);
  EXPECT_EQ(w.moves, 100u);
}

TEST(SortRecords, EmptyIsNoop) {
  std::vector<ParticleRec> v;
  const auto w = sort_records(v);
  EXPECT_EQ(w.comparisons, 0u);
}

TEST(MergeRuns, TwoInterleavedRuns) {
  std::vector<std::vector<ParticleRec>> runs(2);
  for (std::uint64_t i = 0; i < 10; i += 2) runs[0].push_back(rec(i));
  for (std::uint64_t i = 1; i < 10; i += 2) runs[1].push_back(rec(i));
  ParticleArray p(-1.0, 1.0);
  merge_runs(runs, p);
  ASSERT_EQ(p.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(p.key[i], i);
}

TEST(MergeRuns, ManyRunsWithDuplicates) {
  picpar::Rng rng(7);
  std::vector<std::vector<ParticleRec>> runs(8);
  std::vector<std::uint64_t> all;
  for (auto& run : runs) {
    for (int i = 0; i < 50; ++i) {
      run.push_back(rec(rng.below(64)));
      all.push_back(run.back().key);
    }
    std::sort(run.begin(), run.end(),
              [](const ParticleRec& a, const ParticleRec& b) {
                return a.key < b.key;
              });
  }
  ParticleArray p(-1.0, 1.0);
  merge_runs(runs, p);
  std::sort(all.begin(), all.end());
  ASSERT_EQ(p.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(p.key[i], all[i]);
}

TEST(MergeRuns, EmptyRunsHandled) {
  std::vector<std::vector<ParticleRec>> runs(3);
  runs[1].push_back(rec(4));
  ParticleArray p(-1.0, 1.0);
  merge_runs(runs, p);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.key[0], 4u);
}

TEST(MergeRuns, ReplacesExistingContents) {
  std::vector<std::vector<ParticleRec>> runs(1);
  runs[0].push_back(rec(1));
  ParticleArray p(-1.0, 1.0);
  p.push_back(rec(99));
  merge_runs(runs, p);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.key[0], 1u);
}

TEST(MergeRuns, StableAcrossRunsForEqualKeys) {
  std::vector<std::vector<ParticleRec>> runs(2);
  runs[0].push_back(rec(5, 1.0));
  runs[1].push_back(rec(5, 2.0));
  ParticleArray p(-1.0, 1.0);
  merge_runs(runs, p);
  EXPECT_EQ(p.x[0], 1.0) << "lower run index first on ties";
  EXPECT_EQ(p.x[1], 2.0);
}

TEST(MergeBucketRuns, EquivalentToConcatThenMergeRuns) {
  // Randomized: buckets cover disjoint ascending key ranges (as the
  // partitioner guarantees), incoming overlaps them arbitrarily. The
  // output must match the reference two-run merge_runs exactly, including
  // tie order.
  picpar::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::vector<ParticleRec>> buckets(4);
    std::uint64_t lo = 0;
    for (auto& b : buckets) {
      const std::uint64_t hi = lo + 1 + rng.below(30);
      const auto count = rng.below(25);  // may be empty
      for (std::uint64_t i = 0; i < count; ++i)
        b.push_back(rec(lo + rng.below(hi - lo), static_cast<double>(trial)));
      std::sort(b.begin(), b.end(),
                [](const ParticleRec& a, const ParticleRec& c) {
                  return a.key < c.key;
                });
      lo = hi;
    }
    std::vector<ParticleRec> incoming;
    for (std::uint64_t i = 0, n = rng.below(60); i < n; ++i)
      incoming.push_back(rec(rng.below(lo + 10), -1.0));
    std::sort(incoming.begin(), incoming.end(),
              [](const ParticleRec& a, const ParticleRec& c) {
                return a.key < c.key;
              });

    // Reference: concatenate buckets into run 0 (run 0 wins ties).
    std::vector<std::vector<ParticleRec>> runs(2);
    for (const auto& b : buckets)
      runs[0].insert(runs[0].end(), b.begin(), b.end());
    runs[1] = incoming;
    ParticleArray expect(-1.0, 1.0);
    merge_runs(runs, expect);

    ParticleArray got(-1.0, 1.0);
    const auto w = merge_bucket_runs(buckets, incoming, got);
    ASSERT_EQ(got.size(), expect.size()) << "trial " << trial;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got.key[i], expect.key[i]) << "trial " << trial << " i=" << i;
      EXPECT_EQ(got.x[i], expect.x[i]) << "trial " << trial << " i=" << i;
    }
    EXPECT_EQ(w.moves, got.size()) << "one move per output record";
  }
}

TEST(MergeBucketRuns, BucketSideWinsKeyTies) {
  std::vector<std::vector<ParticleRec>> buckets(2);
  buckets[0].push_back(rec(5, 1.0));
  buckets[1].push_back(rec(9, 2.0));
  std::vector<ParticleRec> incoming{rec(5, -1.0), rec(9, -2.0)};
  ParticleArray p(-1.0, 1.0);
  merge_bucket_runs(buckets, incoming, p);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.x[0], 1.0) << "kept record first on equal keys";
  EXPECT_EQ(p.x[1], -1.0);
  EXPECT_EQ(p.x[2], 2.0);
  EXPECT_EQ(p.x[3], -2.0);
}

TEST(MergeBucketRuns, EmptySidesAndReplacement) {
  std::vector<std::vector<ParticleRec>> buckets(3);  // all empty
  std::vector<ParticleRec> incoming{rec(2), rec(7)};
  ParticleArray p(-1.0, 1.0);
  p.push_back(rec(99));  // stale contents must be replaced
  merge_bucket_runs(buckets, incoming, p);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.key[0], 2u);
  EXPECT_EQ(p.key[1], 7u);

  buckets[1].push_back(rec(3));
  const auto w = merge_bucket_runs(buckets, {}, p);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.key[0], 3u);
  EXPECT_EQ(w.moves, 1u);
  EXPECT_EQ(w.comparisons, 0u) << "no dual-live steps with one side empty";

  merge_bucket_runs({}, {}, p);
  EXPECT_EQ(p.size(), 0u);
}

TEST(SortWork, AccumulatesWithPlusEquals) {
  SortWork a{10, 5}, b{1, 2};
  a += b;
  EXPECT_EQ(a.comparisons, 11u);
  EXPECT_EQ(a.moves, 7u);
  EXPECT_EQ(a.total_ops(), 18u);
}

}  // namespace
}  // namespace picpar::core
