#include "core/ghost_exchange.hpp"

#include <gtest/gtest.h>

#include "sfc/hilbert.hpp"

namespace picpar::core {
namespace {

using mesh::FieldState;
using mesh::GridDesc;
using mesh::GridPartition;
using mesh::LocalGrid;

class GhostPolicies : public ::testing::TestWithParam<DedupPolicy> {};

TEST_P(GhostPolicies, DepositSlotDeduplicates) {
  GridDesc g(8, 8);
  const auto part = GridPartition::block(g, 2, 2);
  LocalGrid lg(part, 0);
  GhostExchange ge(lg, GetParam());
  ge.begin_iteration();
  // Node owned by rank 1.
  const auto gid = g.node_id(7, 0);
  double* a = ge.deposit_slot(gid);
  a[0] += 1.0;
  double* b = ge.deposit_slot(gid);
  b[0] += 2.0;
  EXPECT_EQ(a, b) << "same node must map to the same accumulator";
  EXPECT_EQ(ge.entries(), 1u);
  EXPECT_DOUBLE_EQ(a[0], 3.0);
}

TEST_P(GhostPolicies, EntriesResetEachIteration) {
  GridDesc g(8, 8);
  const auto part = GridPartition::block(g, 2, 2);
  LocalGrid lg(part, 0);
  GhostExchange ge(lg, GetParam());
  ge.begin_iteration();
  ge.deposit_slot(g.node_id(7, 0))[0] = 5.0;
  EXPECT_EQ(ge.entries(), 1u);
  ge.begin_iteration();
  EXPECT_EQ(ge.entries(), 0u);
  // A fresh slot must start zeroed.
  EXPECT_DOUBLE_EQ(ge.deposit_slot(g.node_id(7, 0))[0], 0.0);
}

TEST_P(GhostPolicies, FlushDeliversSumsToOwner) {
  GridDesc g(8, 8);
  const auto part = GridPartition::block(g, 2, 2);
  const auto policy = GetParam();
  sim::Machine m(4, sim::CostModel::zero());
  m.run([&](sim::Comm& c) {
    LocalGrid lg(part, c.rank());
    FieldState f(lg);
    GhostExchange ge(lg, policy);
    ge.begin_iteration();
    // Every rank deposits 1.0 of rho to node (0, 0), owned by rank 0.
    const auto target = g.node_id(0, 0);
    if (!lg.owns(target)) {
      double* slot = ge.deposit_slot(target);
      slot[3] += 1.0;
    } else {
      f.rho[lg.local_of(target)] += 1.0;
    }
    ge.flush_scatter(c, f);
    if (lg.owns(target)) {
      EXPECT_DOUBLE_EQ(f.rho[lg.local_of(target)], 4.0)
          << "3 remote + 1 local contribution";
    }
  });
}

TEST_P(GhostPolicies, FetchReturnsOwnersFieldValues) {
  GridDesc g(8, 8);
  const auto part = GridPartition::block(g, 2, 2);
  const auto policy = GetParam();
  sim::Machine m(4, sim::CostModel::zero());
  m.run([&](sim::Comm& c) {
    LocalGrid lg(part, c.rank());
    FieldState f(lg);
    // Owner encodes gid into its fields.
    for (std::size_t l = 0; l < lg.owned(); ++l) {
      f.ex[l] = static_cast<double>(lg.gid_of(l));
      f.bz[l] = -static_cast<double>(lg.gid_of(l));
    }
    GhostExchange ge(lg, policy);
    ge.begin_iteration();
    // Each rank asks for a node in every other quadrant's interior.
    std::vector<std::uint64_t> wanted;
    for (auto [x, y] : {std::pair{2u, 2u}, {6u, 2u}, {2u, 6u}, {6u, 6u}}) {
      const auto gid = g.node_id(x, y);
      if (!lg.owns(gid)) {
        ge.deposit_slot(gid);
        wanted.push_back(gid);
      }
    }
    ge.flush_scatter(c, f);
    ge.fetch_fields(c, f);
    for (const auto gid : wanted) {
      const double* s = ge.field_slot(gid);
      ASSERT_NE(s, nullptr);
      EXPECT_DOUBLE_EQ(s[0], static_cast<double>(gid));   // ex
      EXPECT_DOUBLE_EQ(s[5], -static_cast<double>(gid));  // bz
    }
  });
}

TEST_P(GhostPolicies, FieldSlotNullForUntouchedNode) {
  GridDesc g(8, 8);
  const auto part = GridPartition::block(g, 2, 2);
  LocalGrid lg(part, 0);
  GhostExchange ge(lg, GetParam());
  ge.begin_iteration();
  EXPECT_EQ(ge.field_slot(g.node_id(7, 7)), nullptr);
}

TEST_P(GhostPolicies, OneMessagePerDestination) {
  // Communication coalescing: many deposits to one owner, one message.
  GridDesc g(16, 16);
  const auto part = GridPartition::block(g, 2, 1);
  const auto policy = GetParam();
  sim::Machine m(2, sim::CostModel::zero());
  m.run([&](sim::Comm& c) {
    LocalGrid lg(part, c.rank());
    FieldState f(lg);
    GhostExchange ge(lg, policy);
    ge.begin_iteration();
    if (c.rank() == 0) {
      // Deposit to ten distinct nodes all owned by rank 1.
      for (std::uint32_t y = 0; y < 10; ++y)
        ge.deposit_slot(g.node_id(12, y))[3] += 1.0;
    }
    const auto before = c.stats().total().msgs_sent;
    ge.flush_scatter(c, f);
    const auto sent = c.stats().total().msgs_sent - before;
    if (c.rank() == 0) {
      // One data message; the count-table allgather adds log2(2) = 1 more.
      EXPECT_LE(sent, 3u);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Policies, GhostPolicies,
                         ::testing::Values(DedupPolicy::kHash,
                                           DedupPolicy::kDirect),
                         [](const ::testing::TestParamInfo<DedupPolicy>& i) {
                           return dedup_policy_name(i.param);
                         });

TEST(GhostExchange, HashAndDirectProduceIdenticalResults) {
  GridDesc g(8, 8);
  const auto part = GridPartition::block(g, 2, 2);
  auto run_with = [&](DedupPolicy pol) {
    std::vector<double> rho_out(g.nodes(), 0.0);
    sim::Machine m(4, sim::CostModel::zero());
    m.run([&](sim::Comm& c) {
      LocalGrid lg(part, c.rank());
      FieldState f(lg);
      GhostExchange ge(lg, pol);
      ge.begin_iteration();
      for (std::uint64_t gid = 0; gid < g.nodes(); gid += 3) {
        if (lg.owns(gid))
          f.rho[lg.local_of(gid)] += 0.5;
        else
          ge.deposit_slot(gid)[3] += 0.5;
      }
      ge.flush_scatter(c, f);
      for (std::size_t l = 0; l < lg.owned(); ++l)
        rho_out[static_cast<std::size_t>(lg.gid_of(l))] = f.rho[l];
    });
    return rho_out;
  };
  const auto a = run_with(DedupPolicy::kHash);
  const auto b = run_with(DedupPolicy::kDirect);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(GhostExchange, ParsePolicyNames) {
  EXPECT_EQ(parse_dedup_policy("hash"), DedupPolicy::kHash);
  EXPECT_EQ(parse_dedup_policy("direct"), DedupPolicy::kDirect);
  EXPECT_THROW(parse_dedup_policy("bloom"), std::invalid_argument);
}

}  // namespace
}  // namespace picpar::core
