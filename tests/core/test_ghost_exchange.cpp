#include "core/ghost_exchange.hpp"

#include <gtest/gtest.h>

#include <random>

#include "sfc/hilbert.hpp"

namespace picpar::core {
namespace {

using mesh::FieldState;
using mesh::GridDesc;
using mesh::GridPartition;
using mesh::LocalGrid;

class GhostPolicies : public ::testing::TestWithParam<DedupPolicy> {};

TEST_P(GhostPolicies, DepositSlotDeduplicates) {
  GridDesc g(8, 8);
  const auto part = GridPartition::block(g, 2, 2);
  LocalGrid lg(part, 0);
  GhostExchange ge(lg, GetParam());
  ge.begin_iteration();
  // Node owned by rank 1.
  const auto gid = g.node_id(7, 0);
  double* a = ge.deposit_slot(gid);
  a[0] += 1.0;
  double* b = ge.deposit_slot(gid);
  b[0] += 2.0;
  EXPECT_EQ(a, b) << "same node must map to the same accumulator";
  EXPECT_EQ(ge.entries(), 1u);
  EXPECT_DOUBLE_EQ(a[0], 3.0);
}

TEST_P(GhostPolicies, EntriesResetEachIteration) {
  GridDesc g(8, 8);
  const auto part = GridPartition::block(g, 2, 2);
  LocalGrid lg(part, 0);
  GhostExchange ge(lg, GetParam());
  ge.begin_iteration();
  ge.deposit_slot(g.node_id(7, 0))[0] = 5.0;
  EXPECT_EQ(ge.entries(), 1u);
  ge.begin_iteration();
  EXPECT_EQ(ge.entries(), 0u);
  // A fresh slot must start zeroed.
  EXPECT_DOUBLE_EQ(ge.deposit_slot(g.node_id(7, 0))[0], 0.0);
}

TEST_P(GhostPolicies, FlushDeliversSumsToOwner) {
  GridDesc g(8, 8);
  const auto part = GridPartition::block(g, 2, 2);
  const auto policy = GetParam();
  sim::Machine m(4, sim::CostModel::zero());
  m.run([&](sim::Comm& c) {
    LocalGrid lg(part, c.rank());
    FieldState f(lg);
    GhostExchange ge(lg, policy);
    ge.begin_iteration();
    // Every rank deposits 1.0 of rho to node (0, 0), owned by rank 0.
    const auto target = g.node_id(0, 0);
    if (!lg.owns(target)) {
      double* slot = ge.deposit_slot(target);
      slot[3] += 1.0;
    } else {
      f.rho[lg.local_of(target)] += 1.0;
    }
    ge.flush_scatter(c, f);
    if (lg.owns(target)) {
      EXPECT_DOUBLE_EQ(f.rho[lg.local_of(target)], 4.0)
          << "3 remote + 1 local contribution";
    }
  });
}

TEST_P(GhostPolicies, FetchReturnsOwnersFieldValues) {
  GridDesc g(8, 8);
  const auto part = GridPartition::block(g, 2, 2);
  const auto policy = GetParam();
  sim::Machine m(4, sim::CostModel::zero());
  m.run([&](sim::Comm& c) {
    LocalGrid lg(part, c.rank());
    FieldState f(lg);
    // Owner encodes gid into its fields.
    for (std::size_t l = 0; l < lg.owned(); ++l) {
      f.ex[l] = static_cast<double>(lg.gid_of(l));
      f.bz[l] = -static_cast<double>(lg.gid_of(l));
    }
    GhostExchange ge(lg, policy);
    ge.begin_iteration();
    // Each rank asks for a node in every other quadrant's interior.
    std::vector<std::uint64_t> wanted;
    for (auto [x, y] : {std::pair{2u, 2u}, {6u, 2u}, {2u, 6u}, {6u, 6u}}) {
      const auto gid = g.node_id(x, y);
      if (!lg.owns(gid)) {
        ge.deposit_slot(gid);
        wanted.push_back(gid);
      }
    }
    ge.flush_scatter(c, f);
    ge.fetch_fields(c, f);
    for (const auto gid : wanted) {
      const double* s = ge.field_slot(gid);
      ASSERT_NE(s, nullptr);
      EXPECT_DOUBLE_EQ(s[0], static_cast<double>(gid));   // ex
      EXPECT_DOUBLE_EQ(s[5], -static_cast<double>(gid));  // bz
    }
  });
}

TEST_P(GhostPolicies, FieldSlotNullForUntouchedNode) {
  GridDesc g(8, 8);
  const auto part = GridPartition::block(g, 2, 2);
  LocalGrid lg(part, 0);
  GhostExchange ge(lg, GetParam());
  ge.begin_iteration();
  EXPECT_EQ(ge.field_slot(g.node_id(7, 7)), nullptr);
}

TEST_P(GhostPolicies, OneMessagePerDestination) {
  // Communication coalescing: many deposits to one owner, one message.
  GridDesc g(16, 16);
  const auto part = GridPartition::block(g, 2, 1);
  const auto policy = GetParam();
  sim::Machine m(2, sim::CostModel::zero());
  m.run([&](sim::Comm& c) {
    LocalGrid lg(part, c.rank());
    FieldState f(lg);
    GhostExchange ge(lg, policy);
    ge.begin_iteration();
    if (c.rank() == 0) {
      // Deposit to ten distinct nodes all owned by rank 1.
      for (std::uint32_t y = 0; y < 10; ++y)
        ge.deposit_slot(g.node_id(12, y))[3] += 1.0;
    }
    const auto before = c.stats().total().msgs_sent;
    ge.flush_scatter(c, f);
    const auto sent = c.stats().total().msgs_sent - before;
    if (c.rank() == 0) {
      // One data message; the count-table allgather adds log2(2) = 1 more.
      EXPECT_LE(sent, 3u);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Policies, GhostPolicies,
                         ::testing::Values(DedupPolicy::kHash,
                                           DedupPolicy::kDirect),
                         [](const ::testing::TestParamInfo<DedupPolicy>& i) {
                           return dedup_policy_name(i.param);
                         });

TEST(GhostExchange, HashAndDirectProduceIdenticalResults) {
  GridDesc g(8, 8);
  const auto part = GridPartition::block(g, 2, 2);
  auto run_with = [&](DedupPolicy pol) {
    std::vector<double> rho_out(g.nodes(), 0.0);
    sim::Machine m(4, sim::CostModel::zero());
    m.run([&](sim::Comm& c) {
      LocalGrid lg(part, c.rank());
      FieldState f(lg);
      GhostExchange ge(lg, pol);
      ge.begin_iteration();
      for (std::uint64_t gid = 0; gid < g.nodes(); gid += 3) {
        if (lg.owns(gid))
          f.rho[lg.local_of(gid)] += 0.5;
        else
          ge.deposit_slot(gid)[3] += 0.5;
      }
      ge.flush_scatter(c, f);
      for (std::size_t l = 0; l < lg.owned(); ++l)
        rho_out[static_cast<std::size_t>(lg.gid_of(l))] = f.rho[l];
    });
    return rho_out;
  };
  const auto a = run_with(DedupPolicy::kHash);
  const auto b = run_with(DedupPolicy::kDirect);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

// Randomized multi-iteration equivalence (irregular deposit patterns):
// kHash and kDirect must agree on every owner-side sum, every fetched
// field value, and the exact message traffic — the dedup policy is a pure
// lookup-structure choice and must never leak into results or messaging.
// Runs several iterations per seed so the generation-stamped hash reset
// and the kDirect touched-slot reset are both exercised across reuse.
TEST(GhostExchange, RandomizedHashDirectEquivalence) {
  GridDesc g(16, 12);
  const auto part = GridPartition::block(g, 2, 2);
  constexpr int kIters = 4;

  struct Observed {
    std::vector<double> rho;      // owner-side sums, per iteration
    std::vector<double> fetched;  // ghost-side fetched fields
    std::uint64_t msgs_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t msgs_recv = 0;
  };

  for (std::uint64_t seed : {1u, 7u, 1234u}) {
    auto run = [&](DedupPolicy pol) {
      std::vector<Observed> per_rank(4);
      sim::Machine m(4, sim::CostModel::zero());
      m.run([&](sim::Comm& c) {
        Observed& obs = per_rank[static_cast<std::size_t>(c.rank())];
        LocalGrid lg(part, c.rank());
        FieldState f(lg);
        GhostExchange ge(lg, pol);
        std::mt19937_64 rng(seed * 1000003u +
                            static_cast<std::uint64_t>(c.rank()));
        std::uniform_int_distribution<std::uint64_t> pick(0, g.nodes() - 1);
        std::uniform_real_distribution<double> val(-1.0, 1.0);
        for (int it = 0; it < kIters; ++it) {
          ge.begin_iteration();
          std::fill(f.rho.begin(), f.rho.end(), 0.0);
          std::vector<std::uint64_t> ghost_gids;
          const std::uint64_t base = pick(rng);
          for (int k = 0; k < 200; ++k) {
            const std::uint64_t gid =
                (base + static_cast<std::uint64_t>(k % 17)) % g.nodes();
            const double v = val(rng);
            if (lg.owns(gid)) {
              f.rho[lg.local_of(gid)] += v;
            } else {
              ge.deposit_slot(gid)[3] += v;
              ghost_gids.push_back(gid);
            }
          }
          for (int k = 0; k < 40; ++k) {
            const std::uint64_t gid = pick(rng);
            const double v = val(rng);
            if (lg.owns(gid)) {
              f.rho[lg.local_of(gid)] += v;
            } else {
              ge.deposit_slot(gid)[3] += v;
              ghost_gids.push_back(gid);
            }
          }
          for (std::size_t l = 0; l < lg.owned(); ++l)
            f.ex[l] = static_cast<double>(lg.gid_of(l)) + 0.25 * it;
          ge.flush_scatter(c, f);
          ge.fetch_fields(c, f);
          for (std::size_t l = 0; l < lg.owned(); ++l)
            obs.rho.push_back(f.rho[l]);
          for (const auto gid : ghost_gids) {
            const double* s = ge.field_slot(gid);
            obs.fetched.push_back(s ? s[0] : -1e300);
          }
        }
        const auto t = c.stats().total();
        obs.msgs_sent = t.msgs_sent;
        obs.bytes_sent = t.bytes_sent;
        obs.msgs_recv = t.msgs_recv;
      });
      return per_rank;
    };
    const auto a = run(DedupPolicy::kHash);
    const auto b = run(DedupPolicy::kDirect);
    for (int r = 0; r < 4; ++r) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " rank=" + std::to_string(r));
      const auto& x = a[static_cast<std::size_t>(r)];
      const auto& y = b[static_cast<std::size_t>(r)];
      EXPECT_EQ(x.msgs_sent, y.msgs_sent);
      EXPECT_EQ(x.bytes_sent, y.bytes_sent);
      EXPECT_EQ(x.msgs_recv, y.msgs_recv);
      ASSERT_EQ(x.rho.size(), y.rho.size());
      for (std::size_t i = 0; i < x.rho.size(); ++i)
        EXPECT_EQ(x.rho[i], y.rho[i]) << "rho[" << i << "]";
      ASSERT_EQ(x.fetched.size(), y.fetched.size());
      for (std::size_t i = 0; i < x.fetched.size(); ++i)
        EXPECT_EQ(x.fetched[i], y.fetched[i]) << "fetched[" << i << "]";
    }
  }
}

// The hash table's generation-stamped reset plus the routing scratch must
// behave like a cold table on every iteration: entries from iteration k
// must be invisible in iteration k+1 even when the same gids reappear, and
// the table must survive growth (many distinct gids -> several rehashes).
TEST(GhostExchange, HashGenerationResetSurvivesGrowthAndReuse) {
  GridDesc g(64, 64);
  const auto part = GridPartition::block(g, 2, 1);
  LocalGrid lg(part, 0);
  GhostExchange ge(lg, DedupPolicy::kHash);
  for (int it = 0; it < 3; ++it) {
    ge.begin_iteration();
    // >1000 distinct ghost nodes forces repeated growth past the initial
    // table size; interleave duplicates to exercise hit paths mid-growth.
    std::uint32_t created = 0;
    for (std::uint32_t y = 0; y < 60; ++y)
      for (std::uint32_t x = 40; x < 60; ++x) {
        const auto gid = g.node_id(x, y);
        const auto slot = ge.deposit_slot_index(gid);
        const auto again = ge.deposit_slot_index(gid);
        EXPECT_EQ(slot, again);
        ge.deposit_data(slot)[0] += 1.0;
        ++created;
      }
    EXPECT_EQ(ge.entries(), created);
    // Every accumulator holds exactly this iteration's sum — stale slots
    // from the previous iteration must not alias.
    for (std::uint32_t s = 0; s < created; ++s)
      EXPECT_DOUBLE_EQ(ge.deposit_data(s)[0], 1.0) << "slot " << s;
  }
}

// memory_bytes() must charge for the transient message staging too: the
// scatter send tables and gather reply buffers are live at the rank's peak,
// and an earlier version of the accounting missed them (the budget report
// undercounted exactly when the exchange was busiest). Pin the fold-in via
// the high-water mark: flushing a non-empty exchange must raise the
// reported bytes, and the mark never decays across iterations.
TEST(GhostExchange, MemoryBytesCountsStagedMessages) {
  GridDesc g(16, 16);
  const auto part = GridPartition::block(g, 2, 1);
  std::vector<std::size_t> peak(2, 0);
  sim::Machine m(2, sim::CostModel::zero());
  m.run([&](sim::Comm& c) {
    LocalGrid lg(part, c.rank());
    FieldState f(lg);
    GhostExchange ge(lg, DedupPolicy::kHash);
    ge.begin_iteration();
    if (c.rank() == 0) {
      for (std::uint32_t y = 0; y < 10; ++y)
        ge.deposit_slot(g.node_id(12, y))[3] += 1.0;
    }
    const std::size_t before = ge.memory_bytes();
    ge.flush_scatter(c, f);
    const std::size_t after_scatter = ge.memory_bytes();
    if (c.rank() == 0) {
      // The staged (gid, 4 sums) send table is part of the peak footprint.
      EXPECT_GT(after_scatter, before);
    }
    ge.fetch_fields(c, f);
    const std::size_t after_fetch = ge.memory_bytes();
    EXPECT_GE(after_fetch, after_scatter);
    // High-water semantics: a fresh iteration may free per-request scratch,
    // but the message peak persists, so the budget still charges for the
    // staging even before the next flush.
    ge.begin_iteration();
    EXPECT_GT(ge.memory_bytes(), before);
    peak[static_cast<std::size_t>(c.rank())] = after_fetch;
  });
  EXPECT_GT(peak[0], 0u);
  // The owner stages reply buffers in fetch_fields, so it carries a
  // message peak as well.
  EXPECT_GT(peak[1], 0u);
}

TEST(GhostExchange, ParsePolicyNames) {
  EXPECT_EQ(parse_dedup_policy("hash"), DedupPolicy::kHash);
  EXPECT_EQ(parse_dedup_policy("direct"), DedupPolicy::kDirect);
  EXPECT_THROW(parse_dedup_policy("bloom"), std::invalid_argument);
}

}  // namespace
}  // namespace picpar::core
