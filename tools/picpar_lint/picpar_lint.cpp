// picpar-lint — a Clang LibTooling pass that statically enforces the
// determinism and simulation-discipline invariants this repository's
// dynamic checkers (happens-before analyzer, two-run audits, TSan) can only
// catch when a test happens to execute the offending path.
//
// Checks (ids as reported and as accepted by allow markers):
//
//   unordered-iteration-escape  Iteration (range-for or begin()/end()) over
//       std::unordered_{map,set,multimap,multiset} located under
//       src/trace, src/analysis or src/pic, in a function that can reach an
//       export/serialization sink through the TU-local call graph. Hash
//       iteration order is implementation-defined, so letting it feed an
//       export breaks byte-identical trace/metrics output.
//   wall-clock-in-sim  Any use of std::chrono::{system,steady,
//       high_resolution}_clock, ::time(), ::clock(), std::rand/srand or
//       std::random_device outside util::wall_clock() (the project's one
//       choke point), plus any call to util::wall_clock() outside
//       src/trace. Wall time and ambient randomness are the canonical
//       nondeterminism sources.
//   pointer-ordering  std::{map,set,multimap,multiset,unordered_map,
//       unordered_set} keyed on a pointer type, relational comparison
//       (< <= > >=) of two raw pointers, and reinterpret_cast of a pointer
//       to an integer (hashing/ordering by address). Addresses vary run to
//       run, so any order or hash derived from them is nondeterministic.
//   tag-discipline  A constant negative tag (or a unary-minus tag
//       expression) passed to a Comm/Machine send/recv/probe-style method
//       from a function that holds no CollectiveScope. Negative tags are
//       the collectives' reserved channel; user traffic on them bypasses
//       the tag invariants the analyzer relies on.
//   float-reduction-order  A floating-point += / *= in a loop accumulating
//       into a scalar declared outside the innermost loop, under src/core,
//       src/mesh or src/pic, in a function without a Comm::OrderInsensitive
//       scope. FP addition does not commute; every such reduction must
//       either be annotated order-safe or restructured.
//
// Suppression: a finding is dropped when the flagged line, the line above
// it, or the declaration line (or the line above that) of the variable
// involved contains
//     // picpar-lint: allow(<id>[, <id>...])      or
//     PICPAR_LINT_ALLOW(<id>)
// with a matching check id (or `all`). See src/util/lint.hpp.
//
// Output is deterministic: findings are deduplicated across TUs and sorted
// by (file, line, column, check). Text goes to stdout; --json <path>
// additionally writes a machine-readable report. Exit status: 0 clean,
// 1 unsuppressed findings, 2 tool/compile error.
//
// Known approximations (all deliberately conservative and fixture-pinned):
// uninstantiated-template call sites with unresolved callees are skipped;
// sink reachability is per-TU; indirect calls through function pointers or
// std::function are not edges (but a lambda is linked to its enclosing
// function).

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/DeclTemplate.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/AST/Stmt.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/ArgumentsAdjusters.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/FileSystem.h"
#include "llvm/Support/Path.h"
#include "llvm/Support/raw_ostream.h"

using namespace clang;

namespace {

llvm::cl::OptionCategory Cat("picpar-lint options");
llvm::cl::opt<std::string> OptSrcRoot(
    "src-root",
    llvm::cl::desc("Project source root; findings outside it are ignored "
                   "and paths are reported relative to it (default: cwd)"),
    llvm::cl::init(""), llvm::cl::cat(Cat));
llvm::cl::opt<bool> OptAllDirs(
    "all-dirs",
    llvm::cl::desc("Apply directory-scoped checks everywhere (fixtures)"),
    llvm::cl::init(false), llvm::cl::cat(Cat));
llvm::cl::opt<std::string> OptJson(
    "json", llvm::cl::desc("Write a JSON findings report to this path"),
    llvm::cl::init(""), llvm::cl::cat(Cat));

// ---- shared result sink (one process, possibly many TUs) ----

struct Finding {
  std::string file;  // relative to src-root
  unsigned line = 0;
  unsigned col = 0;
  std::string check;
  std::string message;
};

struct Results {
  std::vector<Finding> findings;
  std::set<std::string> dedup;  // file:line:check
  unsigned long suppressed = 0;
};

Results g_results;

bool contains(const std::string& hay, const char* needle) {
  return hay.find(needle) != std::string::npos;
}
bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string lower(std::string s) {
  for (char& c : s)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  return s;
}

// ---- per-TU analysis ----

struct FuncInfo {
  bool sink = false;               // writes/serializes output
  bool collective_scope = false;   // body declares a CollectiveScope
  bool order_insensitive = false;  // body declares an OrderInsensitive
  std::set<const FunctionDecl*> callees;
};

struct Pending {
  Finding f;
  const FunctionDecl* enclosing = nullptr;  // canonical, may be null
  bool needs_sink_reach = false;            // unordered-iteration-escape
  SourceLocation loc;                       // flagged site
  SourceLocation decl_loc;                  // optional second allow site
};

class LintPass : public RecursiveASTVisitor<LintPass> {
 public:
  LintPass(ASTContext& ctx, std::string src_root)
      : ctx_(ctx), sm_(ctx.getSourceManager()), src_root_(std::move(src_root)) {}

  void run() {
    TraverseDecl(ctx_.getTranslationUnitDecl());
    finalize();
  }

  // RecursiveASTVisitor is given lambda bodies through the enclosing
  // function's statement tree; our own statement walker handles them with
  // a fresh frame, so skip the call operator if the visitor surfaces it.
  bool VisitFunctionDecl(FunctionDecl* fd) {
    if (!fd->doesThisDeclarationHaveABody() || fd->isImplicit()) return true;
    if (const auto* md = llvm::dyn_cast<CXXMethodDecl>(fd))
      if (md->getParent()->isLambda()) return true;
    if (!inProject(fd->getBeginLoc())) return true;
    walkFunction(fd->getCanonicalDecl(), fd->getBody());
    return true;
  }

  bool VisitVarDecl(VarDecl* vd) {
    checkDeclType(vd->getType(), vd->getLocation(),
                  enclosingFunctionOf(vd));
    return true;
  }

  bool VisitFieldDecl(FieldDecl* fd) {
    checkDeclType(fd->getType(), fd->getLocation(), nullptr);
    return true;
  }

 private:
  // ---------- file / path helpers ----------

  /// Relative project path of loc, or "" when out of scope (system header,
  /// outside src-root, macro-only).
  std::string relPath(SourceLocation loc) {
    if (loc.isInvalid()) return "";
    SourceLocation e = sm_.getExpansionLoc(loc);
    if (sm_.isInSystemHeader(e)) return "";
    std::string f = std::string(sm_.getFilename(e));
    if (f.empty()) return "";
    llvm::SmallString<256> abs(f);
    llvm::sys::fs::make_absolute(abs);
    llvm::sys::path::remove_dots(abs, /*remove_dot_dot=*/true);
    std::string p(abs.str());
    if (!starts_with(p, (src_root_ + "/").c_str())) return "";
    return p.substr(src_root_.size() + 1);
  }

  bool inProject(SourceLocation loc) { return !relPath(loc).empty(); }

  bool inDirs(const std::string& rel, const char* const* dirs, size_t n) {
    if (OptAllDirs) return true;
    for (size_t i = 0; i < n; ++i)
      if (starts_with(rel, dirs[i])) return true;
    return false;
  }

  // ---------- suppression ----------

  const std::vector<std::string>& fileLines(FileID fid) {
    auto it = line_cache_.find(fid);
    if (it != line_cache_.end()) return it->second;
    std::vector<std::string> lines;
    bool invalid = false;
    llvm::StringRef buf = sm_.getBufferData(fid, &invalid);
    if (!invalid) {
      size_t pos = 0;
      std::string s(buf.str());
      while (pos <= s.size()) {
        size_t nl = s.find('\n', pos);
        if (nl == std::string::npos) {
          lines.push_back(s.substr(pos));
          break;
        }
        lines.push_back(s.substr(pos, nl - pos));
        pos = nl + 1;
      }
    }
    return line_cache_.emplace(fid, std::move(lines)).first->second;
  }

  static bool lineAllows(const std::string& text, const std::string& check) {
    for (const char* marker : {"picpar-lint: allow(", "PICPAR_LINT_ALLOW("}) {
      size_t at = text.find(marker);
      if (at == std::string::npos) continue;
      size_t open = text.find('(', at);
      size_t close = text.find(')', open);
      if (open == std::string::npos || close == std::string::npos) continue;
      std::string list = text.substr(open + 1, close - open - 1);
      size_t pos = 0;
      while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        std::string id = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        // trim
        size_t b = id.find_first_not_of(" \t");
        size_t e = id.find_last_not_of(" \t");
        if (b != std::string::npos) {
          id = id.substr(b, e - b + 1);
          if (id == check || id == "all") return true;
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    }
    return false;
  }

  /// Marker on the flagged line or the line directly above it.
  bool suppressedAt(SourceLocation loc, const std::string& check) {
    if (loc.isInvalid()) return false;
    SourceLocation e = sm_.getExpansionLoc(loc);
    FileID fid = sm_.getFileID(e);
    unsigned line = sm_.getExpansionLineNumber(e);
    const auto& lines = fileLines(fid);
    if (line == 0 || line > lines.size()) return false;
    if (lineAllows(lines[line - 1], check)) return true;
    if (line >= 2 && lineAllows(lines[line - 2], check)) return true;
    return false;
  }

  // ---------- finding emission ----------

  void report(const char* check, SourceLocation loc, std::string message,
              const FunctionDecl* enclosing = nullptr,
              bool needs_sink_reach = false,
              SourceLocation decl_loc = SourceLocation()) {
    std::string rel = relPath(loc);
    if (rel.empty()) return;
    Pending p;
    p.f.file = rel;
    SourceLocation e = sm_.getExpansionLoc(loc);
    p.f.line = sm_.getExpansionLineNumber(e);
    p.f.col = sm_.getExpansionColumnNumber(e);
    p.f.check = check;
    p.f.message = std::move(message);
    p.enclosing = enclosing;
    p.needs_sink_reach = needs_sink_reach;
    p.loc = loc;
    p.decl_loc = decl_loc;
    pending_.push_back(std::move(p));
  }

  // ---------- type classification ----------

  static const ClassTemplateSpecializationDecl* specOf(QualType t) {
    t = t.getNonReferenceType().getCanonicalType();
    if (t->isPointerType()) t = t->getPointeeType().getCanonicalType();
    const CXXRecordDecl* rd = t->getAsCXXRecordDecl();
    return llvm::dyn_cast_or_null<ClassTemplateSpecializationDecl>(rd);
  }

  static bool isUnorderedContainer(QualType t, std::string* name = nullptr) {
    const auto* spec = specOf(t);
    if (!spec) return false;
    std::string qn = spec->getQualifiedNameAsString();
    if (!starts_with(qn, "std::unordered_")) return false;
    if (name) *name = qn;
    return true;
  }

  static bool isAssocContainer(QualType t, std::string* name) {
    const auto* spec = specOf(t);
    if (!spec) return false;
    std::string qn = spec->getQualifiedNameAsString();
    static const char* const kAssoc[] = {
        "std::map",           "std::set",
        "std::multimap",      "std::multiset",
        "std::unordered_map", "std::unordered_set",
        "std::unordered_multimap", "std::unordered_multiset"};
    for (const char* a : kAssoc) {
      if (qn == a) {
        if (spec->getTemplateArgs().size() == 0) return false;
        const TemplateArgument& arg0 = spec->getTemplateArgs()[0];
        if (arg0.getKind() != TemplateArgument::Type) return false;
        QualType key = arg0.getAsType().getCanonicalType();
        if (key->isPointerType() || key->isMemberPointerType()) {
          *name = qn;
          return true;
        }
        return false;
      }
    }
    return false;
  }

  /// Printed-type probe for the wall-clock types (covers time_point<...>
  /// template arguments and typedef chains without TypeLoc gymnastics).
  static bool mentionsWallClockType(QualType t) {
    std::string s = t.getAsString();
    return contains(s, "steady_clock") || contains(s, "system_clock") ||
           contains(s, "high_resolution_clock") ||
           contains(s, "random_device");
  }

  // ---------- decl-type checks (2 & 3, declaration side) ----------

  void checkDeclType(QualType t, SourceLocation loc,
                     const FunctionDecl* enclosing) {
    if (!inProject(loc)) return;
    if (mentionsWallClockType(t)) {
      if (!isWallClockChokePoint(enclosing))
        report("wall-clock-in-sim", loc,
               "declaration uses wall-clock/random type '" + t.getAsString() +
                   "'; route wall time through util::wall_clock()",
               enclosing);
    }
    std::string qn;
    if (isAssocContainer(t, &qn))
      report("pointer-ordering", loc,
             qn + " keyed on a pointer type: iteration/lookup order depends "
                  "on run-to-run addresses",
             enclosing);
  }

  static bool isWallClockChokePoint(const FunctionDecl* fd) {
    return fd && fd->getNameAsString() == "wall_clock";
  }

  const FunctionDecl* enclosingFunctionOf(const Decl* d) {
    const DeclContext* dc = d->getDeclContext();
    while (dc) {
      if (const auto* fd = llvm::dyn_cast<FunctionDecl>(dc))
        return fd->getCanonicalDecl();
      dc = dc->getParent();
    }
    return nullptr;
  }

  // ---------- statement walker (checks 1, 2, 4, 5 + call graph) ----------

  struct Frame {
    const FunctionDecl* fn = nullptr;
    std::vector<const Stmt*> loops;
  };

  void walkFunction(const FunctionDecl* fn, Stmt* body) {
    if (!body) return;
    if (walked_.count(fn)) return;
    walked_.insert(fn);
    FuncInfo& info = funcs_[fn];
    std::string ln = lower(fn->getNameAsString());
    static const char* const kSinkNames[] = {
        "export", "serialize", "to_json", "to_csv", "json", "csv",
        "write",  "dump",      "save",    "print",  "report"};
    for (const char* s : kSinkNames)
      if (contains(ln, s)) info.sink = true;
    if (fn->getOverloadedOperator() == OO_LessLess) info.sink = true;
    Frame frame;
    frame.fn = fn;
    walkStmt(body, frame, info);
  }

  void walkStmt(Stmt* s, Frame& frame, FuncInfo& info) {
    if (!s) return;

    if (auto* lam = llvm::dyn_cast<LambdaExpr>(s)) {
      // A lambda body is its own function frame (its loops do not enclose
      // the outer code and vice versa). Treat "encloses a lambda" as a
      // call edge so sink reachability survives `auto f = [&]{...}; f();`.
      const FunctionDecl* op = lam->getCallOperator();
      if (op) {
        info.callees.insert(op->getCanonicalDecl());
        walkFunction(op->getCanonicalDecl(), lam->getBody());
      }
      // Do not descend: the body was just walked under the lambda's frame;
      // captures carry no statements of their own.
      return;
    }

    bool is_loop = llvm::isa<ForStmt>(s) || llvm::isa<WhileStmt>(s) ||
                   llvm::isa<DoStmt>(s) || llvm::isa<CXXForRangeStmt>(s);
    if (is_loop) frame.loops.push_back(s);

    visitOne(s, frame, info);

    for (Stmt* child : s->children()) walkStmt(child, frame, info);

    if (is_loop) frame.loops.pop_back();
  }

  void visitOne(Stmt* s, Frame& frame, FuncInfo& info) {
    if (auto* ds = llvm::dyn_cast<DeclStmt>(s)) {
      for (Decl* d : ds->decls())
        if (auto* vd = llvm::dyn_cast<VarDecl>(d)) noteScopeVar(vd, info);
      return;
    }
    if (auto* rf = llvm::dyn_cast<CXXForRangeStmt>(s)) {
      checkUnorderedIteration(rf, frame);
      return;
    }
    if (auto* call = llvm::dyn_cast<CallExpr>(s)) {
      handleCall(call, frame, info);
      return;
    }
    if (auto* bin = llvm::dyn_cast<BinaryOperator>(s)) {
      if (auto* ca = llvm::dyn_cast<CompoundAssignOperator>(s)) {
        checkFloatReduction(ca, frame);
        return;
      }
      checkPointerRelational(bin, frame);
      return;
    }
    if (auto* rc = llvm::dyn_cast<CXXReinterpretCastExpr>(s)) {
      QualType from = rc->getSubExpr()->getType().getCanonicalType();
      QualType to = rc->getType().getCanonicalType();
      if (from->isPointerType() && to->isIntegerType())
        report("pointer-ordering", rc->getBeginLoc(),
               "pointer representation converted to integer: hashing or "
               "ordering by address is nondeterministic across runs",
               frame.fn);
      return;
    }
  }

  void noteScopeVar(VarDecl* vd, FuncInfo& info) {
    QualType t = vd->getType().getNonReferenceType().getCanonicalType();
    const CXXRecordDecl* rd = t->getAsCXXRecordDecl();
    if (!rd) return;
    std::string n = rd->getNameAsString();
    if (n == "CollectiveScope") info.collective_scope = true;
    if (n == "OrderInsensitive") info.order_insensitive = true;
  }

  // ---- check 1: unordered-iteration-escape ----

  static const char* const kUnorderedDirs[3];

  void checkUnorderedIteration(CXXForRangeStmt* rf, Frame& frame) {
    const Expr* range = rf->getRangeInit();
    if (!range) return;
    range = range->IgnoreParenImpCasts();
    std::string qn;
    if (!isUnorderedContainer(range->getType(), &qn)) return;
    std::string rel = relPath(rf->getBeginLoc());
    if (rel.empty() || !inDirs(rel, kUnorderedDirs, 3)) return;
    report("unordered-iteration-escape", rf->getBeginLoc(),
           "range-for over " + qn +
               ": hash iteration order is implementation-defined and this "
               "function can reach an export/serialization sink",
           frame.fn, /*needs_sink_reach=*/true, declLocOf(range));
  }

  SourceLocation declLocOf(const Expr* e) {
    e = e->IgnoreParenImpCasts();
    if (const auto* dre = llvm::dyn_cast<DeclRefExpr>(e))
      return dre->getDecl()->getLocation();
    if (const auto* me = llvm::dyn_cast<MemberExpr>(e))
      return me->getMemberDecl()->getLocation();
    return SourceLocation();
  }

  // ---- calls: graph edges, sink detection, checks 1/2/4 ----

  void handleCall(CallExpr* call, Frame& frame, FuncInfo& info) {
    const FunctionDecl* callee = call->getDirectCallee();
    if (callee) {
      info.callees.insert(callee->getCanonicalDecl());
      checkWallClockCall(call, callee, frame);
      checkTagDiscipline(call, callee, frame, info);
      checkUnorderedBeginEnd(call, callee, frame);
      // Calling something that writes/serializes makes the caller a sink,
      // even when the callee is a bodyless extern declaration.
      std::string n = lower(callee->getNameAsString());
      if (n == "fprintf" || n == "fwrite" || n == "printf" || n == "fputs") {
        info.sink = true;
      } else {
        static const char* const kSinkCallees[] = {
            "export", "serialize", "to_json", "to_csv", "json", "csv",
            "write",  "dump",      "save",    "print",  "report"};
        for (const char* sk : kSinkCallees)
          if (contains(n, sk)) info.sink = true;
      }
    }
    if (auto* op = llvm::dyn_cast<CXXOperatorCallExpr>(call)) {
      if (op->getOperator() == OO_LessLess && op->getNumArgs() >= 1) {
        QualType lhs = op->getArg(0)->getType().getCanonicalType();
        std::string ts = lhs.getAsString();
        if (contains(ts, "basic_ostream")) info.sink = true;
      }
    }
    if (callee) checkPointerSort(call, callee, frame);
  }

  // std::sort(v.begin(), v.end()) over a container of pointers with the
  // default comparator orders by address — nondeterministic across runs.
  // A three-argument call (explicit comparator) is left to the relational
  // check to judge.
  void checkPointerSort(CallExpr* call, const FunctionDecl* callee,
                        Frame& frame) {
    std::string qn = callee->getQualifiedNameAsString();
    if (qn != "std::sort" && qn != "std::stable_sort") return;
    if (call->getNumArgs() != 2) return;
    const auto* mc = llvm::dyn_cast<CXXMemberCallExpr>(
        call->getArg(0)->IgnoreParenImpCasts());
    if (!mc) return;
    const FunctionDecl* fd = mc->getMethodDecl();
    if (!fd) return;
    std::string mn = fd->getNameAsString();
    if (mn != "begin" && mn != "cbegin") return;
    const Expr* obj = mc->getImplicitObjectArgument();
    if (!obj) return;
    const auto* spec = specOf(obj->getType());
    if (!spec) return;
    const auto& args = spec->getTemplateArgs();
    if (args.size() == 0 || args[0].getKind() != TemplateArgument::Type) return;
    if (!args[0].getAsType().getCanonicalType()->isPointerType()) return;
    report("pointer-ordering", call->getBeginLoc(),
           "std::sort over raw pointer values with the default comparator "
           "orders by address, which varies run to run",
           frame.fn, /*needs_sink_reach=*/false, declLocOf(obj));
  }

  void checkUnorderedBeginEnd(CallExpr* call, const FunctionDecl* callee,
                              Frame& frame) {
    const auto* mc = llvm::dyn_cast<CXXMemberCallExpr>(call);
    if (!mc) return;
    std::string n = callee->getNameAsString();
    if (n != "begin" && n != "end" && n != "cbegin" && n != "cend") return;
    const Expr* obj = mc->getImplicitObjectArgument();
    if (!obj) return;
    std::string qn;
    if (!isUnorderedContainer(obj->getType(), &qn)) return;
    std::string rel = relPath(call->getBeginLoc());
    if (rel.empty() || !inDirs(rel, kUnorderedDirs, 3)) return;
    report("unordered-iteration-escape", call->getBeginLoc(),
           qn + "::" + n +
               "(): hash iteration order is implementation-defined and this "
               "function can reach an export/serialization sink",
           frame.fn, /*needs_sink_reach=*/true, declLocOf(obj));
  }

  // ---- check 2: wall-clock-in-sim (call side) ----

  void checkWallClockCall(CallExpr* call, const FunctionDecl* callee,
                          Frame& frame) {
    std::string qn = callee->getQualifiedNameAsString();
    bool bad = false;
    if (contains(qn, "chrono") &&
        (contains(qn, "steady_clock::now") ||
         contains(qn, "system_clock::now") ||
         contains(qn, "high_resolution_clock::now")))
      bad = true;
    if (!llvm::isa<CXXMethodDecl>(callee)) {
      std::string n = callee->getNameAsString();
      if (n == "time" || n == "clock" || n == "rand" || n == "srand" ||
          n == "gettimeofday" || n == "timespec_get" || n == "clock_gettime")
        bad = true;
    }
    if (bad && !isWallClockChokePoint(frame.fn)) {
      report("wall-clock-in-sim", call->getBeginLoc(),
             "call to '" + qn +
                 "': wall time / ambient randomness outside the "
                 "util::wall_clock() choke point",
             frame.fn);
      return;
    }
    // The choke point itself may only be consumed by the tracer.
    if (qn == "picpar::util::wall_clock" ||
        (callee->getNameAsString() == "wall_clock" &&
         !llvm::isa<CXXMethodDecl>(callee))) {
      std::string rel = relPath(call->getBeginLoc());
      if (!rel.empty() && !starts_with(rel, "trace/"))
        report("wall-clock-in-sim", call->getBeginLoc(),
               "util::wall_clock() may only be called from src/trace (wall "
               "spans are the sole sanctioned consumer)",
               frame.fn);
    }
  }

  // ---- check 4: tag-discipline ----

  void checkTagDiscipline(CallExpr* call, const FunctionDecl* callee,
                          Frame& frame, FuncInfo& info) {
    const auto* method = llvm::dyn_cast<CXXMethodDecl>(callee);
    if (!method) return;
    std::string cls = method->getParent()->getNameAsString();
    if (cls != "Comm" && cls != "Machine") return;
    // Find the parameter literally named "tag".
    int tag_idx = -1;
    for (unsigned i = 0; i < method->getNumParams(); ++i) {
      if (method->getParamDecl(i)->getNameAsString() == "tag") {
        tag_idx = static_cast<int>(i);
        break;
      }
    }
    if (tag_idx < 0) return;
    unsigned arg_idx = static_cast<unsigned>(tag_idx);
    const auto* mc = llvm::dyn_cast<CXXMemberCallExpr>(call);
    if (!mc || arg_idx >= call->getNumArgs()) return;
    const Expr* arg = call->getArg(arg_idx);
    if (llvm::isa<CXXDefaultArgExpr>(arg)) return;  // kAnyTag default
    const Expr* stripped = arg->IgnoreParenImpCasts();
    // The wildcard sentinels are negative by design and always legal.
    if (const auto* dre = llvm::dyn_cast<DeclRefExpr>(stripped)) {
      std::string n = dre->getDecl()->getNameAsString();
      if (n == "kAnyTag" || n == "kAnySource") return;
    }
    bool negative = false;
    Expr::EvalResult res;
    if (!arg->isValueDependent() && !arg->isTypeDependent() &&
        arg->EvaluateAsInt(res, ctx_)) {
      negative = res.Val.getInt().isNegative();
    } else if (const auto* uo = llvm::dyn_cast<UnaryOperator>(stripped)) {
      negative = uo->getOpcode() == UO_Minus;  // e.g. -(base + k)
    }
    if (!negative) return;
    (void)info;  // CollectiveScope presence is re-checked in finalize()
    report("tag-discipline", call->getBeginLoc(),
           "negative tag passed to " + cls + "::" + method->getNameAsString() +
               " outside a CollectiveScope: reserved tags belong to the "
               "collectives' channel",
           frame.fn);
  }

  // ---- check 3: pointer relational comparison ----

  void checkPointerRelational(BinaryOperator* bin, Frame& frame) {
    BinaryOperatorKind op = bin->getOpcode();
    if (op != BO_LT && op != BO_GT && op != BO_LE && op != BO_GE) return;
    QualType lt = bin->getLHS()->IgnoreParenImpCasts()->getType()
                      .getCanonicalType();
    QualType rt = bin->getRHS()->IgnoreParenImpCasts()->getType()
                      .getCanonicalType();
    if (!lt->isPointerType() || !rt->isPointerType()) return;
    report("pointer-ordering", bin->getOperatorLoc(),
           "relational comparison of raw pointers: address order varies "
           "run to run",
           frame.fn);
  }

  // ---- check 5: float-reduction-order ----

  static const char* const kReductionDirs[3];

  void checkFloatReduction(CompoundAssignOperator* ca, Frame& frame) {
    BinaryOperatorKind op = ca->getOpcode();
    if (op != BO_AddAssign && op != BO_MulAssign) return;
    if (!ca->getLHS()->getType()->isRealFloatingType()) return;
    if (frame.loops.empty()) return;
    std::string rel = relPath(ca->getBeginLoc());
    if (rel.empty() || !inDirs(rel, kReductionDirs, 3)) return;

    // Accumulator: a scalar (possibly member chain) with no subscript or
    // dereference, rooted at a variable declared outside the innermost
    // enclosing loop.
    const Expr* lhs = ca->getLHS()->IgnoreParenImpCasts();
    const VarDecl* base = nullptr;
    while (true) {
      if (const auto* me = llvm::dyn_cast<MemberExpr>(lhs)) {
        lhs = me->getBase()->IgnoreParenImpCasts();
        if (llvm::isa<CXXThisExpr>(lhs)) return;  // member of *this: skip
        continue;
      }
      if (const auto* dre = llvm::dyn_cast<DeclRefExpr>(lhs)) {
        base = llvm::dyn_cast<VarDecl>(dre->getDecl());
        break;
      }
      return;  // subscript, deref, call result, ... — element update
    }
    if (!base) return;

    const Stmt* loop = frame.loops.back();
    SourceLocation dl = sm_.getExpansionLoc(base->getLocation());
    SourceLocation lb = sm_.getExpansionLoc(loop->getBeginLoc());
    SourceLocation le = sm_.getExpansionLoc(loop->getEndLoc());
    bool decl_in_loop = !sm_.isBeforeInTranslationUnit(dl, lb) &&
                        !sm_.isBeforeInTranslationUnit(le, dl);
    if (decl_in_loop) return;

    if (funcs_[frame.fn].order_insensitive) return;
    report("float-reduction-order", ca->getBeginLoc(),
           "floating-point accumulation into '" + base->getNameAsString() +
               "' in a loop: FP addition does not commute; annotate the "
               "reduction order-safe or wrap it in Comm::OrderInsensitive",
           frame.fn, /*needs_sink_reach=*/false, base->getLocation());
  }

  // ---------- finalization: reachability + suppression ----------

  void finalize() {
    // OrderInsensitive scopes are discovered while walking; a reduction
    // flagged before the scope's DeclStmt was seen must be re-checked.
    // (walkStmt visits statements in source order within a function, but a
    // guard declared in an outer block after a nested loop is legal C++.)
    // Fixed point over the call graph for sink reachability.
    std::set<const FunctionDecl*> reaches;
    for (const auto& kv : funcs_)
      if (kv.second.sink) reaches.insert(kv.first);
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& kv : funcs_) {
        if (reaches.count(kv.first)) continue;
        for (const FunctionDecl* c : kv.second.callees) {
          if (reaches.count(c)) {
            reaches.insert(kv.first);
            changed = true;
            break;
          }
        }
      }
    }

    for (const Pending& p : pending_) {
      if (p.needs_sink_reach) {
        // No enclosing function: conservatively keep the finding.
        if (p.enclosing && !reaches.count(p.enclosing)) continue;
      }
      // Scope guards (CollectiveScope / OrderInsensitive) may be declared
      // after the flagged statement was walked; filter on the function's
      // final state rather than mid-walk state.
      if (p.enclosing) {
        auto it = funcs_.find(p.enclosing);
        if (it != funcs_.end()) {
          if (p.f.check == "float-reduction-order" &&
              it->second.order_insensitive)
            continue;
          if (p.f.check == "tag-discipline" && it->second.collective_scope)
            continue;
        }
      }
      if (suppressedAt(p.loc, p.f.check) ||
          (p.decl_loc.isValid() && suppressedAt(p.decl_loc, p.f.check))) {
        // Count each suppressed site once per TU pass; the same header
        // line suppressed in many TUs still reads as one decision.
        std::string key =
            p.f.file + ":" + std::to_string(p.f.line) + ":" + p.f.check;
        if (g_results.dedup.insert("suppressed:" + key).second)
          ++g_results.suppressed;
        continue;
      }
      std::string key =
          p.f.file + ":" + std::to_string(p.f.line) + ":" + p.f.check;
      if (!g_results.dedup.insert(key).second) continue;
      g_results.findings.push_back(p.f);
    }
  }

  ASTContext& ctx_;
  SourceManager& sm_;
  std::string src_root_;
  std::map<const FunctionDecl*, FuncInfo> funcs_;
  std::set<const FunctionDecl*> walked_;
  std::vector<Pending> pending_;
  std::map<FileID, std::vector<std::string>> line_cache_;
};

const char* const LintPass::kUnorderedDirs[3] = {"trace/", "analysis/",
                                                 "pic/"};
const char* const LintPass::kReductionDirs[3] = {"core/", "mesh/", "pic/"};

// ---- frontend plumbing ----

std::string g_src_root_abs;

class LintConsumer : public ASTConsumer {
 public:
  void HandleTranslationUnit(ASTContext& ctx) override {
    LintPass pass(ctx, g_src_root_abs);
    pass.run();
  }
};

class LintAction : public ASTFrontendAction {
 public:
  std::unique_ptr<ASTConsumer> CreateASTConsumer(CompilerInstance&,
                                                 llvm::StringRef) override {
    return std::make_unique<LintConsumer>();
  }
};

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int main(int argc, const char** argv) {
  auto expected =
      tooling::CommonOptionsParser::create(argc, argv, Cat, llvm::cl::OneOrMore);
  if (!expected) {
    llvm::errs() << llvm::toString(expected.takeError()) << "\n";
    return 2;
  }
  tooling::CommonOptionsParser& options = *expected;

  {
    llvm::SmallString<256> root;
    if (OptSrcRoot.empty()) {
      llvm::sys::fs::current_path(root);
    } else {
      root = OptSrcRoot;
      llvm::sys::fs::make_absolute(root);
    }
    llvm::sys::path::remove_dots(root, /*remove_dot_dot=*/true);
    g_src_root_abs = std::string(root.str());
  }

  tooling::ClangTool tool(options.getCompilations(),
                          options.getSourcePathList());
  // Findings are ours; the compiler's own warnings only add noise.
  tool.appendArgumentsAdjuster(tooling::getInsertArgumentAdjuster("-w"));
#ifdef PICPAR_CLANG_RESOURCE_DIR
  // An out-of-tree tool binary cannot derive the builtin-header directory
  // from its own path the way the clang driver does; point it at the
  // resource dir baked in at build time (harmless if it has moved away).
  if (llvm::sys::fs::is_directory(PICPAR_CLANG_RESOURCE_DIR))
    tool.appendArgumentsAdjuster(tooling::getInsertArgumentAdjuster(
        "-resource-dir=" PICPAR_CLANG_RESOURCE_DIR));
#endif

  int build_status = tool.run(
      tooling::newFrontendActionFactory<LintAction>().get());
  if (build_status != 0) {
    llvm::errs() << "picpar-lint: compilation errors; findings may be "
                    "incomplete\n";
    return 2;
  }

  std::sort(g_results.findings.begin(), g_results.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return a.check < b.check;
            });

  for (const Finding& f : g_results.findings)
    llvm::outs() << f.file << ":" << f.line << ":" << f.col << ": [" << f.check
                 << "] " << f.message << "\n";
  llvm::outs() << "picpar-lint: " << g_results.findings.size()
               << " finding(s), " << g_results.suppressed << " suppressed\n";

  if (!OptJson.empty()) {
    std::error_code ec;
    llvm::raw_fd_ostream os(OptJson, ec, llvm::sys::fs::OF_Text);
    if (ec) {
      llvm::errs() << "picpar-lint: cannot write " << OptJson << ": "
                   << ec.message() << "\n";
      return 2;
    }
    os << "{\n  \"findings\": [";
    for (size_t i = 0; i < g_results.findings.size(); ++i) {
      const Finding& f = g_results.findings[i];
      os << (i ? "," : "") << "\n    {\"file\": \"" << jsonEscape(f.file)
         << "\", \"line\": " << f.line << ", \"col\": " << f.col
         << ", \"check\": \"" << jsonEscape(f.check) << "\", \"message\": \""
         << jsonEscape(f.message) << "\"}";
    }
    os << (g_results.findings.empty() ? "" : "\n  ") << "],\n";
    os << "  \"suppressed\": " << g_results.suppressed << "\n}\n";
  }

  return g_results.findings.empty() ? 0 : 1;
}
