// picpar_sweep — run a declarative parameter grid through the sweep
// service (src/sweep) with content-addressed result caching.
//
//   picpar_sweep --grid fig16.grid --cache /tmp/picpar-cache \
//                --jobs 0 --csv fig16.csv
//
// Reads the grid file (see src/sweep/grid.hpp for the format), expands it
// to jobs, runs them through run_sweep, prints the comparison table plus a
// one-line cache summary to stdout, and optionally writes the comparison
// CSV/JSON and the per-job provenance CSV. Rerunning against a warm cache
// performs zero simulations and writes byte-identical comparison files.
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>

#include "sweep/grid.hpp"
#include "sweep/sweep.hpp"
#include "util/cli.hpp"

namespace {

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << text;
  f.flush();
  if (!f.good()) {
    std::cerr << "picpar_sweep: cannot write " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  picpar::Cli cli("picpar_sweep",
                  "Expand a parameter grid and run it through the cached "
                  "sweep service");
  auto grid_path = cli.flag<std::string>("grid", "", "grid file (required)");
  auto cache_dir = cli.flag<std::string>(
      "cache", "", "result cache directory (\"\" = uncached)");
  auto jobs = cli.flag<int>(
      "jobs", 1, "worker threads for cache misses (0 = all host cores)");
  auto csv = cli.flag<std::string>("csv", "", "write comparison CSV here");
  auto json = cli.flag<std::string>("json", "", "write comparison JSON here");
  auto provenance = cli.flag<std::string>(
      "provenance", "", "write per-job cache-provenance CSV here");
  auto max_entries = cli.flag<int>(
      "max-entries", 0, "evict oldest cache entries past this count (0 = keep all)");
  auto quiet = cli.flag<bool>("quiet", false, "suppress the comparison table");

  try {
    cli.parse(argc, argv);
    if (grid_path->empty()) {
      std::cerr << "picpar_sweep: --grid is required\n" << cli.usage();
      return 2;
    }
    std::ifstream f(*grid_path, std::ios::binary);
    if (!f) {
      std::cerr << "picpar_sweep: cannot read " << *grid_path << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << f.rdbuf();

    const auto grid_jobs =
        picpar::sweep::expand_grid(picpar::sweep::parse_grid(buf.str()));
    std::vector<picpar::sweep::Job> sweep_jobs;
    sweep_jobs.reserve(grid_jobs.size());
    for (const auto& gj : grid_jobs)
      sweep_jobs.push_back({gj.label, gj.params});

    picpar::sweep::SweepOptions opt;
    opt.jobs = *jobs;
    opt.cache_dir = *cache_dir;
    opt.max_entries =
        *max_entries > 0 ? static_cast<std::size_t>(*max_entries) : 0;
    const auto report = picpar::sweep::run_sweep(sweep_jobs, opt);

    if (!*quiet) std::cout << picpar::sweep::comparison_table(report);
    const auto& s = report.stats;
    std::cout << "sweep: " << s.jobs << " jobs, " << s.unique << " unique, "
              << s.hits << " cache hits, " << s.simulated << " simulated";
    if (s.corrupt > 0) std::cout << ", " << s.corrupt << " corrupt replaced";
    if (s.evicted > 0) std::cout << ", " << s.evicted << " evicted";
    std::cout << "\n";

    bool ok = true;
    if (!csv->empty())
      ok = write_file(*csv, picpar::sweep::comparison_csv(report)) && ok;
    if (!json->empty())
      ok = write_file(*json, picpar::sweep::comparison_json(report)) && ok;
    if (!provenance->empty())
      ok = write_file(*provenance, picpar::sweep::provenance_csv(report)) && ok;
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "picpar_sweep: " << e.what() << "\n";
    return 2;
  }
}
