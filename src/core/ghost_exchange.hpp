// Ghost grid points (Section 3.2, Figs 7-8).
//
// With independent partitioning a particle's four vertex grid points may be
// owned by other processors. During the scatter phase their contributions
// accumulate locally in a *ghost table* — one entry per distinct
// off-processor grid point, so duplicated accesses are removed — and a
// single coalesced message per destination processor delivers the sums
// (communication coalescing). During the gather phase the same entries are
// reused in the opposite direction: owners return E and B at exactly the
// grid points that were requested in the scatter phase.
//
// Two duplicate-removal policies are implemented, as in the paper:
//   kHash   — a hash table keyed by global node id (memory proportional to
//             the number of ghost points, extra search time);
//   kDirect — a direct-address table over all m grid points (O(1) lookups,
//             memory proportional to m).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mesh/fields.hpp"
#include "mesh/local_grid.hpp"
#include "sim/comm.hpp"

namespace picpar::core {

enum class DedupPolicy { kHash, kDirect };

const char* dedup_policy_name(DedupPolicy p);
DedupPolicy parse_dedup_policy(const std::string& name);

class GhostExchange {
public:
  /// Deposit components per node: jx, jy, jz, rho.
  static constexpr int kDeposit = 4;
  /// Returned field components per node: ex, ey, ez, bx, by, bz.
  static constexpr int kField = 6;

  GhostExchange(const mesh::LocalGrid& lg, DedupPolicy policy);

  DedupPolicy policy() const { return policy_; }

  /// Reset the accumulation table for a new iteration.
  void begin_iteration();

  /// Accumulator slot (kDeposit doubles) for off-processor node `gid`;
  /// creates the entry on first touch. Must not be called for owned nodes.
  double* deposit_slot(std::uint64_t gid);

  /// Number of distinct ghost grid points this iteration.
  std::size_t entries() const { return gids_.size(); }

  /// Scatter flush: one message per destination processor carrying
  /// (gid, 4 sums) records; owners add them into f's source arrays.
  /// Also records, on the owner side, who asked for what — needed by
  /// fetch_fields.
  void flush_scatter(sim::Comm& comm, mesh::FieldState& f);

  /// Gather fetch: owners send (ex..bz) for every node requested in the
  /// scatter flush; afterwards field_slot() serves the ghost values.
  void fetch_fields(sim::Comm& comm, const mesh::FieldState& f);

  /// Field values (kField doubles) previously fetched for node `gid`;
  /// nullptr if the node was never deposited to this iteration.
  const double* field_slot(std::uint64_t gid) const;

private:
  std::uint32_t find_slot(std::uint64_t gid) const;  ///< kNoLocal if absent

  const mesh::LocalGrid* lg_;
  DedupPolicy policy_;

  // Entry storage (slot-indexed).
  std::vector<std::uint64_t> gids_;
  std::vector<double> deposit_;  // kDeposit per slot
  std::vector<double> field_;    // kField per slot

  // Lookup structures (one active per policy).
  std::unordered_map<std::uint64_t, std::uint32_t> hash_;
  std::vector<std::uint32_t> direct_;

  // Scatter-flush routing, reused by fetch_fields.
  std::vector<int> dest_ranks_;                       // ranks I sent to
  std::vector<std::vector<std::uint32_t>> dest_slots_;  // slots per dest
  struct OwnerRequest {
    int src = 0;
    std::vector<std::uint32_t> locals;  // my owned local node indices
  };
  std::vector<OwnerRequest> requests_;  // who asked me for what
};

}  // namespace picpar::core
