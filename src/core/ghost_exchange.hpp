// Ghost grid points (Section 3.2, Figs 7-8).
//
// With independent partitioning a particle's four vertex grid points may be
// owned by other processors. During the scatter phase their contributions
// accumulate locally in a *ghost table* — one entry per distinct
// off-processor grid point, so duplicated accesses are removed — and a
// single coalesced message per destination processor delivers the sums
// (communication coalescing). During the gather phase the same entries are
// reused in the opposite direction: owners return E and B at exactly the
// grid points that were requested in the scatter phase.
//
// Two duplicate-removal policies are implemented, as in the paper:
//   kHash   — a generation-stamped open-addressing hash table keyed by
//             global node id (memory proportional to the number of ghost
//             points, extra search time). The generation stamp makes the
//             per-iteration reset O(1) instead of O(table size); see
//             DESIGN.md §10.
//   kDirect — a direct-address table over all m grid points (O(1) lookups,
//             memory proportional to m). Reset walks only the slots that
//             were touched, so it is proportional to the ghost count, not m.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mesh/fields.hpp"
#include "mesh/local_grid.hpp"
#include "sim/comm.hpp"
#include "util/sparse_rank.hpp"

namespace picpar::core {

enum class DedupPolicy { kHash, kDirect };

const char* dedup_policy_name(DedupPolicy p);
DedupPolicy parse_dedup_policy(const std::string& name);

class GhostExchange {
public:
  /// Deposit components per node: jx, jy, jz, rho.
  static constexpr int kDeposit = 4;
  /// Returned field components per node: ex, ey, ez, bx, by, bz.
  static constexpr int kField = 6;
  /// "No slot" sentinel returned by slot_of.
  static constexpr std::uint32_t kNoSlot = mesh::kNoLocal;

  GhostExchange(const mesh::LocalGrid& lg, DedupPolicy policy);

  DedupPolicy policy() const { return policy_; }

  /// Reset the accumulation table for a new iteration. Cost is proportional
  /// to the previous iteration's ghost count (kDirect) or O(1) (kHash).
  void begin_iteration();

  /// Slot index for off-processor node `gid`; creates the entry on first
  /// touch. Must not be called for owned nodes. Slot indices are stable for
  /// the rest of the iteration (unlike deposit_data pointers, which move
  /// when the table grows) — callers that memoize must store the index.
  std::uint32_t deposit_slot_index(std::uint64_t gid);

  /// Accumulator (kDeposit doubles) for a slot index from deposit_slot_index.
  double* deposit_data(std::uint32_t slot) {
    return &deposit_[static_cast<std::size_t>(slot) * kDeposit];
  }

  /// Accumulator slot (kDeposit doubles) for off-processor node `gid`;
  /// creates the entry on first touch. Must not be called for owned nodes.
  double* deposit_slot(std::uint64_t gid) {
    return deposit_data(deposit_slot_index(gid));
  }

  /// Slot previously created for `gid` this iteration, kNoSlot if absent.
  std::uint32_t slot_of(std::uint64_t gid) const { return find_slot(gid); }

  /// Number of distinct ghost grid points this iteration.
  std::size_t entries() const { return gids_.size(); }

  /// Scatter flush: one message per destination processor carrying
  /// (gid, 4 sums) records; owners add them into f's source arrays.
  /// Also records, on the owner side, who asked for what — needed by
  /// fetch_fields.
  void flush_scatter(sim::Comm& comm, mesh::FieldState& f);

  /// Gather fetch: owners send (ex..bz) for every node requested in the
  /// scatter flush; afterwards field_slot() serves the ghost values.
  void fetch_fields(sim::Comm& comm, const mesh::FieldState& f);

  /// Field values (kField doubles) for a slot index, valid after
  /// fetch_fields.
  const double* field_data(std::uint32_t slot) const {
    return &field_[static_cast<std::size_t>(slot) * kField];
  }

  /// Field values (kField doubles) previously fetched for node `gid`;
  /// nullptr if the node was never deposited to this iteration.
  const double* field_slot(std::uint64_t gid) const;

  /// Resident bytes held by the ghost tables: slot storage, the lookup
  /// structure (hash or direct), the persistent routing scratch, and the
  /// high-water mark of the per-call message staging (send tables built in
  /// flush_scatter, reply buffers in fetch_fields — transient, but a real
  /// part of the rank's peak footprint that an earlier version of this
  /// accounting missed). Capacities, not sizes — this is what the rank's
  /// memory budget pays for, since scratch capacity persists across
  /// iterations.
  std::size_t memory_bytes() const;

private:
  std::uint32_t find_slot(std::uint64_t gid) const;  ///< kNoSlot if absent
  void hash_insert(std::uint64_t gid, std::uint32_t slot);
  void hash_grow();

  const mesh::LocalGrid* lg_;
  DedupPolicy policy_;

  // Entry storage (slot-indexed).
  std::vector<std::uint64_t> gids_;
  std::vector<double> deposit_;  // kDeposit per slot
  std::vector<double> field_;    // kField per slot

  // kHash lookup: open-addressing, linear probing, power-of-two size. An
  // entry is live only when its stamp equals gen_, so begin_iteration
  // resets the whole table by bumping gen_ (uint64 — never wraps).
  struct HashEntry {
    std::uint64_t gid = 0;
    std::uint32_t slot = 0;
    std::uint64_t gen = 0;  // 0 = never written (gen_ starts at 1)
  };
  std::vector<HashEntry> hash_;
  std::size_t hash_mask_ = 0;
  std::uint64_t gen_ = 1;

  // kDirect lookup.
  std::vector<std::uint32_t> direct_;

  // Scatter-flush routing, reused by fetch_fields. Sparse in the owner
  // ranks this rank's ghosts actually touch (its curve neighbors), not the
  // world size; per-owner capacity persists across iterations so
  // steady-state flushes do not reallocate.
  util::SparseRankMap<std::vector<std::uint32_t>> rank_slots_;
  struct OwnerRequest {
    int src = 0;
    std::vector<std::uint32_t> locals;  // my owned local node indices
  };
  std::vector<OwnerRequest> requests_;  // who asked me for what
  /// High-water bytes of the transient per-call message staging (scatter
  /// send tables + gather reply buffers); folded into memory_bytes().
  std::size_t peak_msg_bytes_ = 0;
};

}  // namespace picpar::core
