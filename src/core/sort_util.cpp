#include "core/sort_util.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

namespace picpar::core {

using particles::ParticleArray;
using particles::ParticleRec;

SortWork sort_by_key(ParticleArray& p) {
  SortWork w;
  const std::size_t n = p.size();
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     ++w.comparisons;
                     return p.key[a] < p.key[b];
                   });
  p.apply_permutation(perm);
  w.moves += n;
  return w;
}

SortWork sort_records(std::vector<ParticleRec>& recs) {
  SortWork w;
  bool sorted = true;
  for (std::size_t i = 1; i < recs.size(); ++i) {
    ++w.comparisons;
    if (recs[i].key < recs[i - 1].key) {
      sorted = false;
      break;
    }
  }
  if (sorted) return w;
  std::stable_sort(recs.begin(), recs.end(),
                   [&](const ParticleRec& a, const ParticleRec& b) {
                     ++w.comparisons;
                     return a.key < b.key;
                   });
  w.moves += recs.size();
  return w;
}

SortWork merge_runs(std::vector<std::vector<ParticleRec>>& runs,
                    ParticleArray& p) {
  SortWork w;
  // k-way merge with a small heap over run heads.
  struct Head {
    std::uint64_t key;
    std::uint32_t run;
    std::uint32_t pos;
  };
  auto cmp = [&](const Head& a, const Head& b) {
    ++w.comparisons;
    if (a.key != b.key) return a.key > b.key;
    return a.run > b.run;  // stability across runs
  };
  std::priority_queue<Head, std::vector<Head>, decltype(cmp)> heap(cmp);

  std::size_t total = 0;
  for (std::uint32_t r = 0; r < runs.size(); ++r) {
    total += runs[r].size();
    if (!runs[r].empty()) heap.push({runs[r][0].key, r, 0});
  }

  p.clear();
  p.reserve(total);
  while (!heap.empty()) {
    const Head h = heap.top();
    heap.pop();
    p.push_back(runs[h.run][h.pos]);
    ++w.moves;
    const std::uint32_t next = h.pos + 1;
    if (next < runs[h.run].size())
      heap.push({runs[h.run][next].key, h.run, next});
  }
  return w;
}

SortWork merge_bucket_runs(const std::vector<std::vector<ParticleRec>>& buckets,
                           const std::vector<ParticleRec>& incoming,
                           ParticleArray& p) {
  SortWork w;
  std::size_t total = incoming.size();
  for (const auto& b : buckets) total += b.size();

  p.clear();
  p.reserve(total);

  // Cursor over the virtual concatenation of the buckets.
  std::size_t run = 0, pos = 0;
  const auto skip_empty = [&] {
    while (run < buckets.size() && pos >= buckets[run].size()) {
      ++run;
      pos = 0;
    }
  };
  skip_empty();

  std::size_t j = 0;  // cursor over incoming
  while (run < buckets.size() && j < incoming.size()) {
    ++w.comparisons;
    // Stability: the bucket side wins ties (it is run 0 of the old 2-run
    // heap merge).
    if (incoming[j].key < buckets[run][pos].key) {
      p.push_back(incoming[j++]);
    } else {
      p.push_back(buckets[run][pos++]);
      skip_empty();
    }
    ++w.moves;
  }
  while (run < buckets.size()) {
    for (; pos < buckets[run].size(); ++pos) {
      p.push_back(buckets[run][pos]);
      ++w.moves;
    }
    ++run;
    pos = 0;
  }
  for (; j < incoming.size(); ++j) {
    p.push_back(incoming[j]);
    ++w.moves;
  }
  return w;
}

}  // namespace picpar::core
