#include "core/sort_util.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

namespace picpar::core {

using particles::ParticleArray;
using particles::ParticleRec;

SortWork sort_by_key(ParticleArray& p) {
  SortWork w;
  const std::size_t n = p.size();
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     ++w.comparisons;
                     return p.key[a] < p.key[b];
                   });
  p.apply_permutation(perm);
  w.moves += n;
  return w;
}

SortWork sort_records(std::vector<ParticleRec>& recs) {
  SortWork w;
  bool sorted = true;
  for (std::size_t i = 1; i < recs.size(); ++i) {
    ++w.comparisons;
    if (recs[i].key < recs[i - 1].key) {
      sorted = false;
      break;
    }
  }
  if (sorted) return w;
  std::stable_sort(recs.begin(), recs.end(),
                   [&](const ParticleRec& a, const ParticleRec& b) {
                     ++w.comparisons;
                     return a.key < b.key;
                   });
  w.moves += recs.size();
  return w;
}

SortWork merge_runs(std::vector<std::vector<ParticleRec>>& runs,
                    ParticleArray& p) {
  SortWork w;
  // k-way merge with a small heap over run heads.
  struct Head {
    std::uint64_t key;
    std::uint32_t run;
    std::uint32_t pos;
  };
  auto cmp = [&](const Head& a, const Head& b) {
    ++w.comparisons;
    if (a.key != b.key) return a.key > b.key;
    return a.run > b.run;  // stability across runs
  };
  std::priority_queue<Head, std::vector<Head>, decltype(cmp)> heap(cmp);

  std::size_t total = 0;
  for (std::uint32_t r = 0; r < runs.size(); ++r) {
    total += runs[r].size();
    if (!runs[r].empty()) heap.push({runs[r][0].key, r, 0});
  }

  p.clear();
  p.reserve(total);
  while (!heap.empty()) {
    const Head h = heap.top();
    heap.pop();
    p.push_back(runs[h.run][h.pos]);
    ++w.moves;
    const std::uint32_t next = h.pos + 1;
    if (next < runs[h.run].size())
      heap.push({runs[h.run][next].key, h.run, next});
  }
  return w;
}

}  // namespace picpar::core
