// Order-maintaining load balance (Section 5.1): after a bucketed exchange,
// particle counts across ranks can be uneven; this operation moves whole
// contiguous runs of the globally sorted particle sequence between ranks so
// that counts become equal (+/- 1) *without changing the global order* of
// the concatenated array.
//
// Because global order is (rank, local position) lexicographic and both the
// current and the target ownership ranges are contiguous in global position,
// every rank can compute exactly which slice goes where from the allgathered
// counts alone, and one all-to-many exchange completes the balance.
#pragma once

#include <cstdint>

#include "particles/particle_array.hpp"
#include "sim/comm.hpp"

namespace picpar::core {

struct BalanceReport {
  std::uint64_t sent = 0;      ///< particles this rank sent away
  std::uint64_t received = 0;  ///< particles this rank received
};

/// Equalize particle counts over ranks, preserving global order. The local
/// array must remain in its current (sorted) order; afterwards, rank r owns
/// global positions [r*N/p, (r+1)*N/p).
BalanceReport order_maintaining_balance(sim::Comm& comm,
                                        particles::ParticleArray& p);

/// The target count for `rank` when N particles are spread over p ranks.
std::uint64_t balanced_count(std::uint64_t total, int nranks, int rank);

}  // namespace picpar::core
