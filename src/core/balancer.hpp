// Pluggable balancer policies: how the per-rank key ranges (the partition
// bounds) are computed when particles are (re)distributed.
//
// The paper's scheme is Lagrangian: bounds follow the particles (sample
// sort + order-maintaining balance equalizes counts exactly, and the mesh
// decomposition follows the same curve). The related work contributes two
// Eulerian-flavored alternatives that compute *cell-aligned* bounds from a
// global per-cell weight profile instead:
//
//   EulerianBalancer     particle-weighted Eulerian partitioning (Sauget &
//                        Latu): cut the curve-ordered cell sequence so each
//                        rank carries an equal share of the *particle
//                        count*. Bounds land on cell edges, so a rank's
//                        particles exactly tile a run of whole cells —
//                        field data and particles align, at the price of
//                        count imbalance up to one cell's population.
//
//   SfcWeightedBalancer  weighted-element SFC splitting (Ortwein et al.):
//                        every cell costs alpha (mesh/field work) plus its
//                        particle count (particle work); the curve is cut
//                        into equal-weight runs. alpha = 0 degenerates to
//                        the Eulerian variant; larger alpha biases toward
//                        equal cell counts.
//
// Weighted bounds are computed collectively from an allgathered sparse
// per-cell histogram; every rank walks the same global profile, so all
// ranks derive identical bounds with no further agreement round. This is a
// different axis than the redistribution *decision* policy (core/policy.hpp
// — when to redistribute); the two compose freely, and the sweep grid's
// policy axis accepts "decision+balancer" (e.g. "sar+eulerian").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/sort_util.hpp"
#include "particles/particle_array.hpp"
#include "sfc/index_cache.hpp"
#include "sim/comm.hpp"

namespace picpar::core {

class BalancerPolicy {
public:
  virtual ~BalancerPolicy() = default;

  /// Canonical spec string ("lagrange", "eulerian", "sfcweight:2").
  virtual std::string name() const = 0;

  /// True for the paper's scheme: the partitioner keeps its sample-sort +
  /// order-maintaining-balance pipeline and never calls compute_bounds().
  virtual bool lagrangian() const { return false; }

  /// Collective: compute the inclusive upper key bound of every rank's
  /// range (comm.size() values, non-decreasing, last = max key). Keys use
  /// the species-in-key encoding; bounds returned by weighted balancers are
  /// cell-aligned (bound = cell_curve_index * stride + stride - 1).
  /// `cells` is the cell -> curve-index table: it both sizes the weight
  /// histogram (curve indices need not be dense — Hilbert pads non-square
  /// grids, see IndexCache::max_index) and marks which indices are real
  /// cells, so gap indices never carry mesh weight. Work goes into `work`.
  virtual std::vector<std::uint64_t> compute_bounds(
      sim::Comm& comm, const particles::ParticleArray& p,
      const sfc::IndexCache& cells, SortWork& work) const;
};

class LagrangianBalancer final : public BalancerPolicy {
public:
  std::string name() const override { return "lagrange"; }
  bool lagrangian() const override { return true; }
};

class EulerianBalancer final : public BalancerPolicy {
public:
  std::string name() const override { return "eulerian"; }
  std::vector<std::uint64_t> compute_bounds(sim::Comm& comm,
                                            const particles::ParticleArray& p,
                                            const sfc::IndexCache& cells,
                                            SortWork& work) const override;
};

class SfcWeightedBalancer final : public BalancerPolicy {
public:
  explicit SfcWeightedBalancer(double alpha);
  std::string name() const override;
  std::vector<std::uint64_t> compute_bounds(sim::Comm& comm,
                                            const particles::ParticleArray& p,
                                            const sfc::IndexCache& cells,
                                            SortWork& work) const override;

  double alpha() const { return alpha_; }

private:
  double alpha_;
};

/// Factory: "lagrange" (the paper's scheme, default), "eulerian",
/// "sfcweight" (alpha = 1) or "sfcweight:A" (per-cell weight A > 0).
std::unique_ptr<BalancerPolicy> make_balancer(const std::string& spec);

}  // namespace picpar::core
