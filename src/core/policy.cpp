#include "core/policy.hpp"

#include <stdexcept>

namespace picpar::core {

PeriodicPolicy::PeriodicPolicy(int period) : period_(period) {
  if (period <= 0)
    throw std::invalid_argument("PeriodicPolicy: period must be > 0");
}

bool PeriodicPolicy::should_redistribute(int iter, double) {
  return (iter + 1) % period_ == 0;
}

std::string PeriodicPolicy::name() const {
  return "periodic:" + std::to_string(period_);
}

bool SarPolicy::should_redistribute(int iter, double iter_seconds) {
  if (base_iter_seconds_ < 0.0) {
    // First iteration since the last redistribution defines t0.
    base_iter_seconds_ = iter_seconds;
    return false;
  }
  if (redist_cost_ < 0.0) {
    // No cost estimate yet (initial distribution was not timed as a
    // redistribution): stay conservative until notified once.
    return false;
  }
  const double t0 = base_iter_seconds_;
  const double t1 = iter_seconds;
  const int i0 = last_redist_iter_;
  const double expected_saving =
      (t1 - t0) * static_cast<double>(iter - i0);
  return expected_saving >= redist_cost_;
}

void SarPolicy::notify_redistribution(int iter, double redist_seconds) {
  last_redist_iter_ = iter;
  redist_cost_ = redist_seconds;
  base_iter_seconds_ = -1.0;  // next iteration re-establishes t0
}

ThresholdPolicy::ThresholdPolicy(double factor) : factor_(factor) {
  if (factor <= 1.0)
    throw std::invalid_argument("ThresholdPolicy: factor must be > 1");
}

bool ThresholdPolicy::should_redistribute(int, double iter_seconds) {
  if (base_iter_seconds_ < 0.0) {
    base_iter_seconds_ = iter_seconds;
    return false;
  }
  return iter_seconds > factor_ * base_iter_seconds_;
}

void ThresholdPolicy::notify_redistribution(int, double) {
  base_iter_seconds_ = -1.0;
}

std::string ThresholdPolicy::name() const {
  std::string f = std::to_string(factor_);
  f.erase(f.find_last_not_of('0') + 1);
  if (!f.empty() && f.back() == '.') f.pop_back();
  return "threshold:" + f;
}

std::unique_ptr<RedistributionPolicy> make_policy(const std::string& spec) {
  if (spec == "static") return std::make_unique<StaticPolicy>();
  if (spec == "sar" || spec == "dynamic") return std::make_unique<SarPolicy>();
  if (spec.rfind("periodic:", 0) == 0) {
    const int k = std::stoi(spec.substr(9));
    return std::make_unique<PeriodicPolicy>(k);
  }
  if (spec.rfind("threshold:", 0) == 0) {
    const double f = std::stod(spec.substr(10));
    return std::make_unique<ThresholdPolicy>(f);
  }
  throw std::invalid_argument("unknown policy spec: " + spec);
}

}  // namespace picpar::core
