#include "core/policy.hpp"

#include <stdexcept>

namespace picpar::core {

PeriodicPolicy::PeriodicPolicy(int period) : period_(period) {
  if (period <= 0)
    throw std::invalid_argument("PeriodicPolicy: period must be > 0");
}

bool PeriodicPolicy::should_redistribute(int iter, double) {
  return (iter + 1) % period_ == 0;
}

std::string PeriodicPolicy::name() const {
  return "periodic:" + std::to_string(period_);
}

SarPolicy::SarPolicy(int confirmations) : confirmations_(confirmations) {
  if (confirmations <= 0)
    throw std::invalid_argument("SarPolicy: confirmations must be > 0");
}

bool SarPolicy::should_redistribute(int iter, double iter_seconds) {
  // Fault-induced noise can hand us garbage timings; a negative or NaN
  // sample is treated as zero rather than poisoning the state.
  if (!(iter_seconds >= 0.0)) iter_seconds = 0.0;
  if (base_iter_seconds_ < 0.0) {
    // First iteration since the last redistribution defines t0.
    base_iter_seconds_ = iter_seconds;
    consecutive_ = 0;
    return false;
  }
  // t0 is the *minimum* iteration time since the last redistribution. If
  // the first post-redistribution iteration happened to be slow (straggler
  // hiccup), every later t1 would sit below it and Eq. 1's left side would
  // go negative — silently disabling SAR for the rest of the epoch. Adopt
  // the lower time as the new baseline instead.
  if (iter_seconds < base_iter_seconds_) base_iter_seconds_ = iter_seconds;
  if (redist_cost_ < 0.0) {
    // No cost estimate yet (initial distribution was not timed as a
    // redistribution): stay conservative until notified once.
    return false;
  }
  const double t0 = base_iter_seconds_;
  const double t1 = iter_seconds;
  const int i0 = last_redist_iter_;
  const double expected_saving = (t1 - t0) * static_cast<double>(iter - i0);
  if (expected_saving >= redist_cost_) {
    if (++consecutive_ >= confirmations_) return true;
  } else {
    consecutive_ = 0;
  }
  return false;
}

void SarPolicy::notify_redistribution(int iter, double redist_seconds) {
  last_redist_iter_ = iter;
  redist_cost_ = redist_seconds;
  base_iter_seconds_ = -1.0;  // next iteration re-establishes t0
  consecutive_ = 0;
}

std::string SarPolicy::name() const {
  return confirmations_ == 1 ? "sar" : "sar:" + std::to_string(confirmations_);
}

ThresholdPolicy::ThresholdPolicy(double factor, int confirmations)
    : factor_(factor), confirmations_(confirmations) {
  if (factor <= 1.0)
    throw std::invalid_argument("ThresholdPolicy: factor must be > 1");
  if (confirmations <= 0)
    throw std::invalid_argument("ThresholdPolicy: confirmations must be > 0");
}

bool ThresholdPolicy::should_redistribute(int, double iter_seconds) {
  if (!(iter_seconds >= 0.0)) iter_seconds = 0.0;
  if (base_iter_seconds_ < 0.0) {
    base_iter_seconds_ = iter_seconds;
    consecutive_ = 0;
    return false;
  }
  if (iter_seconds < base_iter_seconds_) base_iter_seconds_ = iter_seconds;
  if (iter_seconds > factor_ * base_iter_seconds_) {
    if (++consecutive_ >= confirmations_) return true;
  } else {
    consecutive_ = 0;
  }
  return false;
}

void ThresholdPolicy::notify_redistribution(int, double) {
  base_iter_seconds_ = -1.0;
  consecutive_ = 0;
}

std::string ThresholdPolicy::name() const {
  std::string f = std::to_string(factor_);
  f.erase(f.find_last_not_of('0') + 1);
  if (!f.empty() && f.back() == '.') f.pop_back();
  std::string n = "threshold:" + f;
  if (confirmations_ != 1) n += ":" + std::to_string(confirmations_);
  return n;
}

std::unique_ptr<RedistributionPolicy> make_policy(const std::string& spec) {
  if (spec == "static") return std::make_unique<StaticPolicy>();
  if (spec == "sar" || spec == "dynamic") return std::make_unique<SarPolicy>();
  if (spec.rfind("sar:", 0) == 0) {
    const int c = std::stoi(spec.substr(4));
    return std::make_unique<SarPolicy>(c);
  }
  if (spec.rfind("periodic:", 0) == 0) {
    const int k = std::stoi(spec.substr(9));
    return std::make_unique<PeriodicPolicy>(k);
  }
  if (spec.rfind("threshold:", 0) == 0) {
    const std::string rest = spec.substr(10);
    const auto colon = rest.find(':');
    const double f = std::stod(rest.substr(0, colon));
    const int c = colon == std::string::npos
                      ? 1
                      : std::stoi(rest.substr(colon + 1));
    return std::make_unique<ThresholdPolicy>(f, c);
  }
  throw std::invalid_argument("unknown policy spec: " + spec);
}

}  // namespace picpar::core
