// Runtime invariant validation for PIC runs.
//
// Checksummed messaging catches what the wire corrupts; this layer catches
// everything the transport cannot see — host memory corruption, logic bugs
// in redistribution, physics blow-ups. The checker runs as a collective
// (all ranks call check() together and agree on the verdict via an
// allreduce of the violation mask), so a detected violation can trigger a
// consistent global recovery: roll back to the last good checkpoint and
// force a redistribution (see pic/simulation.cpp).
//
// Invariants:
//   kCount    global particle count equals the reference count
//   kFinite   every stored particle field is finite
//   kDomain   every position lies inside the periodic domain
//   kKey      every sort key matches the key recomputed from the position
//   kSorted   local keys are non-decreasing and bounded by the rank's
//             partition range (checked right after a redistribution)
//   kBalance  max per-rank count within tolerance of the mean
//   kEnergy   total energy finite and within a factor of the reference
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mesh/grid.hpp"
#include "particles/particle_array.hpp"
#include "sfc/curve.hpp"
#include "sim/comm.hpp"

namespace picpar::core {

enum class Invariant : std::uint32_t {
  kCount = 1u << 0,
  kFinite = 1u << 1,
  kDomain = 1u << 2,
  kKey = 1u << 3,
  kSorted = 1u << 4,
  kBalance = 1u << 5,
  kEnergy = 1u << 6,
};

const char* invariant_name(Invariant inv);

struct InvariantConfig {
  /// Max-over-mean particle-count ratio allowed before kBalance fires;
  /// 0 disables the check.
  double balance_tolerance = 0.0;
  /// Absolute slack added to the balance bound (tolerates granularity on
  /// tiny populations).
  double balance_slack = 16.0;
  /// Total energy may grow to at most this factor of the reference before
  /// kEnergy fires; 0 disables the check.
  double energy_factor = 0.0;
  /// Verify key/position consistency (one curve evaluation per particle).
  bool verify_keys = true;
  /// Abstract ops charged per particle scanned, so validation shows up
  /// honestly in the virtual-time overhead.
  double ops_per_particle = 1.0;
};

struct InvariantViolation {
  Invariant kind = Invariant::kCount;
  int iter = 0;
  double measured = 0.0;  ///< offending value (count, ratio, energy, ...)
  double limit = 0.0;     ///< the bound it broke
  std::string detail;
};

struct InvariantReport {
  /// OR of Invariant bits; identical on every rank after check().
  std::uint32_t mask = 0;
  /// This rank's local violations (details differ per rank by design).
  std::vector<InvariantViolation> violations;

  bool ok() const { return mask == 0; }
  bool has(Invariant inv) const {
    return (mask & static_cast<std::uint32_t>(inv)) != 0;
  }
};

class InvariantChecker {
public:
  InvariantChecker(const sfc::Curve& curve, const mesh::GridDesc& grid,
                   InvariantConfig cfg = {});

  /// Reference values the conservation checks compare against.
  void set_reference_count(std::uint64_t global_count);
  void set_reference_energy(double total_energy);
  std::uint64_t reference_count() const { return ref_count_; }

  /// Collective: every rank passes its local particles; all ranks return
  /// the same mask. `rank_upper_bounds` (may be null) enables the kSorted
  /// partition-range check — pass it on iterations that redistributed.
  /// `local_energy` < 0 skips the energy check for this call.
  InvariantReport check(sim::Comm& comm, const particles::ParticleArray& p,
                        int iter,
                        const std::vector<std::uint64_t>* rank_upper_bounds,
                        double local_energy = -1.0);

private:
  const sfc::Curve* curve_;
  mesh::GridDesc grid_;
  InvariantConfig cfg_;
  bool have_ref_count_ = false;
  std::uint64_t ref_count_ = 0;
  bool have_ref_energy_ = false;
  double ref_energy_ = 0.0;
};

}  // namespace picpar::core
