// Local sorting helpers shared by the distribution algorithms, with
// operation counting so redistribution *work* (not just wall time) can be
// charged to the simulated machine and compared across algorithms (Fig 11).
#pragma once

#include <cstdint>

#include "particles/particle_array.hpp"

namespace picpar::core {

struct SortWork {
  std::uint64_t comparisons = 0;
  std::uint64_t moves = 0;  ///< particle record copies

  SortWork& operator+=(const SortWork& o) {
    comparisons += o.comparisons;
    moves += o.moves;
    return *this;
  }
  std::uint64_t total_ops() const { return comparisons + moves; }
};

/// Sort the whole array by key (stable). Counts comparisons and the
/// permutation moves.
SortWork sort_by_key(particles::ParticleArray& p);

/// Sort records in-place by key; adaptive: verifies sortedness first
/// (n-1 comparisons) and skips the sort when already ordered — this is
/// where the incremental algorithm's advantage on mostly-sorted buckets
/// comes from.
SortWork sort_records(std::vector<particles::ParticleRec>& recs);

/// Merge k sorted runs of records into a ParticleArray (ascending key).
/// Runs must each be sorted; the output replaces p's contents.
SortWork merge_runs(std::vector<std::vector<particles::ParticleRec>>& runs,
                    particles::ParticleArray& p);

/// Hot-path variant for the incremental sort (DESIGN.md §10): merge the
/// concatenation of `buckets` (each sorted, covering disjoint ascending key
/// ranges — so the concatenation is one sorted run) with the sorted
/// `incoming` run, directly into p. Equivalent output to concatenating the
/// buckets and calling merge_runs on the two runs — bucket records win key
/// ties — but with one fewer full copy of the array and no heap: one
/// comparison per step where both runs are live, moves = total records.
SortWork merge_bucket_runs(
    const std::vector<std::vector<particles::ParticleRec>>& buckets,
    const std::vector<particles::ParticleRec>& incoming,
    particles::ParticleArray& p);

}  // namespace picpar::core
