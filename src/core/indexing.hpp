// Particle indexing (Section 5.1, "Particle indexing"): every particle is
// assigned the space-filling-curve index of the cell that encloses it.
// Sorting by this key and cutting the sorted order into p equal runs yields
// the paper's dynamic alignment: particle subdomains that are compact and
// overlap the (identically ordered) mesh subdomains.
#pragma once

#include <cstdint>

#include "mesh/grid.hpp"
#include "particles/particle_array.hpp"
#include "sfc/curve.hpp"
#include "sfc/index_cache.hpp"

namespace picpar::core {

/// Recompute the sort key of every particle from its current position.
/// Costs one cell lookup + one curve evaluation per particle. Multi-species
/// arrays use the species-in-key encoding (key = cell_index * S + species,
/// see particles/particle_array.hpp): the species id is read from the old
/// key and preserved, so keys must carry valid species bits on entry (a
/// freshly generated loadout seeds key = species id).
void assign_keys(const sfc::Curve& curve, const mesh::GridDesc& grid,
                 particles::ParticleArray& p);

/// Same, but through a memoized cell -> index table: one cell lookup + one
/// load per particle (hot-path variant, DESIGN.md §10). Produces exactly
/// the keys of the curve the cache was built from.
void assign_keys(const sfc::IndexCache& cache, const mesh::GridDesc& grid,
                 particles::ParticleArray& p);

/// Recompute the key of a single particle (used after the push phase moves
/// it). Returns the new key.
inline std::uint64_t key_of(const sfc::Curve& curve,
                            const mesh::GridDesc& grid, double x, double y) {
  const std::uint64_t cell = grid.cell_of(x, y);
  return curve.index(grid.node_x(cell), grid.node_y(cell));
}

/// Memoized variant of key_of: a table load instead of a curve walk.
inline std::uint64_t key_of(const sfc::IndexCache& cache,
                            const mesh::GridDesc& grid, double x, double y) {
  return cache[grid.cell_of(x, y)];
}

/// Species-in-key encode: curve index of the enclosing cell scaled by the
/// array's key stride, plus the species id in the low bits. With stride 1
/// (single species) this is exactly key_of.
inline std::uint64_t encode_key(const sfc::IndexCache& cache,
                                const mesh::GridDesc& grid, double x,
                                double y, std::uint64_t stride,
                                std::uint64_t species) {
  return cache[grid.cell_of(x, y)] * stride + species;
}

/// True if the key sequence is non-decreasing.
bool is_sorted_by_key(const particles::ParticleArray& p);

}  // namespace picpar::core
