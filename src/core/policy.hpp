// Redistribution decision policies (Section 5.2).
//
//   StaticPolicy    — never redistribute after the initial distribution.
//   PeriodicPolicy  — redistribute every k iterations.
//   SarPolicy       — the paper's dynamic "Stop-At-Rise" adaptation: with
//     computational load strictly balanced, growth in per-iteration time
//     reflects growing communication; assuming linear growth since the
//     last redistribution at i0 (time t0), redistribution at the current
//     iteration i1 (time t1) is triggered when the expected saving exceeds
//     the expected cost (Eq. 1):
//         (t1 - t0) * (i1 - i0) >= T_redistribution.
//     T_redistribution is the measured cost of the previous redistribution.
#pragma once

#include <memory>
#include <string>

namespace picpar::core {

class RedistributionPolicy {
public:
  virtual ~RedistributionPolicy() = default;

  /// Decide after finishing iteration `iter` (0-based) which took
  /// `iter_seconds` of virtual time.
  virtual bool should_redistribute(int iter, double iter_seconds) = 0;

  /// Report that a redistribution completed after iteration `iter` and
  /// cost `redist_seconds`.
  virtual void notify_redistribution(int iter, double redist_seconds) = 0;

  virtual std::string name() const = 0;
};

class StaticPolicy final : public RedistributionPolicy {
public:
  bool should_redistribute(int, double) override { return false; }
  void notify_redistribution(int, double) override {}
  std::string name() const override { return "static"; }
};

class PeriodicPolicy final : public RedistributionPolicy {
public:
  explicit PeriodicPolicy(int period);
  bool should_redistribute(int iter, double) override;
  void notify_redistribution(int, double) override {}
  std::string name() const override;

private:
  int period_;
};

class SarPolicy final : public RedistributionPolicy {
public:
  /// `confirmations` hardens the rule against fault-induced timing noise:
  /// Eq. 1 must hold on that many consecutive iterations before the policy
  /// fires. 1 (the default) is the paper's behaviour — a single spike can
  /// trigger. Independently of this, the baseline t0 tracks the *minimum*
  /// iteration time seen since the last redistribution, so a noisy
  /// (non-monotonic) first sample can neither disable SAR (negative
  /// t1 - t0 is clamped via the min) nor inflate the trigger threshold.
  explicit SarPolicy(int confirmations = 1);

  bool should_redistribute(int iter, double iter_seconds) override;
  void notify_redistribution(int iter, double redist_seconds) override;
  std::string name() const override;

  double last_redist_cost() const { return redist_cost_; }
  double baseline() const { return base_iter_seconds_; }

private:
  int confirmations_;
  int consecutive_ = 0;
  int last_redist_iter_ = -1;
  double base_iter_seconds_ = -1.0;  ///< t0: min iteration time since redist
  double redist_cost_ = -1.0;        ///< T_redistribution
};

/// Extension beyond the paper: redistribute when the iteration time
/// exceeds `factor` times the post-redistribution baseline t0. Simpler
/// than SAR (no cost model) but needs the factor tuned; included so the
/// ablation bench can compare decision rules.
class ThresholdPolicy final : public RedistributionPolicy {
public:
  /// `confirmations` consecutive exceedances are required before firing
  /// (default 1 = original behaviour). The baseline tracks the minimum
  /// iteration time since the last redistribution, so a spiky first sample
  /// cannot permanently raise the bar.
  explicit ThresholdPolicy(double factor, int confirmations = 1);

  bool should_redistribute(int iter, double iter_seconds) override;
  void notify_redistribution(int iter, double redist_seconds) override;
  std::string name() const override;

private:
  double factor_;
  int confirmations_;
  int consecutive_ = 0;
  double base_iter_seconds_ = -1.0;
};

/// Factory: "static", "periodic:K" (e.g. "periodic:25"), "sar" or "sar:C"
/// (C = confirmations), "threshold:F" or "threshold:F:C"
/// (e.g. "threshold:1.15:2").
std::unique_ptr<RedistributionPolicy> make_policy(const std::string& spec);

}  // namespace picpar::core
