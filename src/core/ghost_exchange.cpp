#include "core/ghost_exchange.hpp"

#include <algorithm>
#include <stdexcept>

namespace picpar::core {

namespace {
constexpr int kGatherTag = 200;

struct DepositRec {
  std::uint64_t gid;
  double v[GhostExchange::kDeposit];
};
static_assert(sizeof(DepositRec) == 8 + 8 * GhostExchange::kDeposit);

// Fibonacci hashing; the multiply spreads entropy into the high bits, the
// xor-fold brings it back down for the low-bit mask.
inline std::size_t hash_gid(std::uint64_t gid) {
  std::uint64_t h = gid * 0x9E3779B97F4A7C15ull;
  h ^= h >> 31;
  return static_cast<std::size_t>(h);
}
}  // namespace

const char* dedup_policy_name(DedupPolicy p) {
  return p == DedupPolicy::kHash ? "hash" : "direct";
}

DedupPolicy parse_dedup_policy(const std::string& name) {
  if (name == "hash") return DedupPolicy::kHash;
  if (name == "direct") return DedupPolicy::kDirect;
  throw std::invalid_argument("unknown dedup policy: " + name);
}

GhostExchange::GhostExchange(const mesh::LocalGrid& lg, DedupPolicy policy)
    : lg_(&lg), policy_(policy) {
  if (policy_ == DedupPolicy::kDirect)
    direct_.assign(static_cast<std::size_t>(lg.grid().nodes()),
                   mesh::kNoLocal);
}

void GhostExchange::begin_iteration() {
  if (policy_ == DedupPolicy::kHash) {
    ++gen_;  // O(1) table reset: stale entries now fail the stamp check
  } else {
    // Reset only the slots touched last iteration, not the whole table.
    for (const auto gid : gids_)
      direct_[static_cast<std::size_t>(gid)] = mesh::kNoLocal;
  }
  gids_.clear();
  deposit_.clear();
  field_.clear();
  for (auto& e : rank_slots_) e.value.clear();
  requests_.clear();
}

std::uint32_t GhostExchange::find_slot(std::uint64_t gid) const {
  if (policy_ == DedupPolicy::kHash) {
    if (hash_.empty()) return kNoSlot;
    std::size_t h = hash_gid(gid) & hash_mask_;
    while (true) {
      const HashEntry& e = hash_[h];
      if (e.gen != gen_) return kNoSlot;  // empty for this generation
      if (e.gid == gid) return e.slot;
      h = (h + 1) & hash_mask_;
    }
  }
  return direct_[static_cast<std::size_t>(gid)];
}

void GhostExchange::hash_grow() {
  const std::size_t ns = std::max<std::size_t>(64, hash_.size() * 2);
  hash_.assign(ns, HashEntry{});
  hash_mask_ = ns - 1;
  // Reinsert the live entries; slot s holds gids_[s].
  for (std::uint32_t s = 0; s < gids_.size(); ++s) {
    std::size_t h = hash_gid(gids_[s]) & hash_mask_;
    while (hash_[h].gen == gen_) h = (h + 1) & hash_mask_;
    hash_[h] = HashEntry{gids_[s], s, gen_};
  }
}

void GhostExchange::hash_insert(std::uint64_t gid, std::uint32_t slot) {
  // Keep load factor under 0.7 so linear probes stay short.
  if ((gids_.size() + 1) * 10 > hash_.size() * 7) hash_grow();
  std::size_t h = hash_gid(gid) & hash_mask_;
  while (hash_[h].gen == gen_) h = (h + 1) & hash_mask_;
  hash_[h] = HashEntry{gid, slot, gen_};
}

std::uint32_t GhostExchange::deposit_slot_index(std::uint64_t gid) {
  std::uint32_t slot = find_slot(gid);
  if (slot == kNoSlot) {
    slot = static_cast<std::uint32_t>(gids_.size());
    if (policy_ == DedupPolicy::kHash)
      hash_insert(gid, slot);
    else
      direct_[static_cast<std::size_t>(gid)] = slot;
    gids_.push_back(gid);
    deposit_.resize(deposit_.size() + kDeposit, 0.0);
  }
  return slot;
}

void GhostExchange::flush_scatter(sim::Comm& comm, mesh::FieldState& f) {
  const auto& part = lg_->partition();

  // Group slots by owner rank; rank_slots_ is a member so per-owner
  // capacity persists across iterations and doubles as the routing table
  // that fetch_fields replays. Sparse: only owners this rank's ghosts
  // touch get an entry, so the table is O(neighbors) at any world size.
  for (auto& e : rank_slots_) e.value.clear();
  for (std::uint32_t s = 0; s < gids_.size(); ++s)
    rank_slots_.ref(part.owner(gids_[s])).push_back(s);

  // Build one coalesced record buffer per touched owner, in ascending rank
  // order (the same message order the dense table produced).
  std::vector<std::pair<int, std::vector<DepositRec>>> send;
  std::size_t staged = 0;
  for (const auto& e : rank_slots_) {
    const auto& slots = e.value;
    if (slots.empty()) continue;
    if (e.rank == comm.rank())
      throw std::logic_error("GhostExchange: deposit to owned node");
    std::vector<DepositRec> buf;
    buf.reserve(slots.size());
    for (const auto s : slots) {
      DepositRec rec;
      rec.gid = gids_[s];
      for (int k = 0; k < kDeposit; ++k)
        rec.v[k] = deposit_[static_cast<std::size_t>(s) * kDeposit + k];
      buf.push_back(rec);
    }
    staged += buf.capacity() * sizeof(DepositRec);
    send.emplace_back(e.rank, std::move(buf));
  }
  staged += send.capacity() * sizeof(send[0]);
  peak_msg_bytes_ = std::max(peak_msg_bytes_, staged);

  auto recv = comm.all_to_many(std::move(send));

  // Owner side: add contributions into the source arrays and remember the
  // request lists for the gather reply. Pairs arrive in ascending source
  // order, matching the dense loop this replaced.
  for (const auto& [src, buf] : recv) {
    if (buf.empty()) continue;
    OwnerRequest req;
    req.src = src;
    req.locals.reserve(buf.size());
    for (const auto& rec : buf) {
      const auto l = lg_->local_of(rec.gid);
      if (l == mesh::kNoLocal || l >= lg_->owned())
        throw std::runtime_error("GhostExchange: received non-owned node");
      f.jx[l] += rec.v[0];
      f.jy[l] += rec.v[1];
      f.jz[l] += rec.v[2];
      f.rho[l] += rec.v[3];
      req.locals.push_back(l);
    }
    requests_.push_back(std::move(req));
  }
}

void GhostExchange::fetch_fields(sim::Comm& comm, const mesh::FieldState& f) {
  // Owner side: reply with field values in request order.
  for (const auto& req : requests_) {
    std::vector<double> buf;
    buf.reserve(req.locals.size() * kField);
    for (const auto l : req.locals) {
      buf.push_back(f.ex[l]);
      buf.push_back(f.ey[l]);
      buf.push_back(f.ez[l]);
      buf.push_back(f.bx[l]);
      buf.push_back(f.by[l]);
      buf.push_back(f.bz[l]);
    }
    peak_msg_bytes_ = std::max(peak_msg_bytes_, buf.capacity() * sizeof(double));
    comm.send(req.src, kGatherTag, buf);
  }

  // Ghost side: receive per touched owner rank (ascending, matching the
  // send order of flush_scatter), store into field_ by slot.
  field_.assign(gids_.size() * kField, 0.0);
  for (const auto& e : rank_slots_) {
    const auto& slots = e.value;
    if (slots.empty()) continue;
    auto buf = comm.recv<double>(e.rank, kGatherTag);
    if (buf.size() != slots.size() * kField)
      throw std::runtime_error("GhostExchange: bad gather reply length");
    for (std::size_t i = 0; i < slots.size(); ++i)
      for (int k = 0; k < kField; ++k)
        field_[static_cast<std::size_t>(slots[i]) * kField +
               static_cast<std::size_t>(k)] = buf[i * kField + static_cast<std::size_t>(k)];
  }
}

const double* GhostExchange::field_slot(std::uint64_t gid) const {
  const auto slot = find_slot(gid);
  if (slot == kNoSlot) return nullptr;
  return &field_[static_cast<std::size_t>(slot) * kField];
}

std::size_t GhostExchange::memory_bytes() const {
  std::size_t bytes = gids_.capacity() * sizeof(std::uint64_t) +
                      deposit_.capacity() * sizeof(double) +
                      field_.capacity() * sizeof(double) +
                      hash_.capacity() * sizeof(HashEntry) +
                      direct_.capacity() * sizeof(std::uint32_t);
  bytes += rank_slots_.memory_bytes();
  for (const auto& e : rank_slots_)
    bytes += e.value.capacity() * sizeof(std::uint32_t);
  bytes += requests_.capacity() * sizeof(OwnerRequest);
  for (const auto& req : requests_)
    bytes += req.locals.capacity() * sizeof(std::uint32_t);
  // Transient message staging at its high-water mark: the earlier
  // accounting summed only the persistent tables and undercounted every
  // flush by the size of the send tables it had just built.
  bytes += peak_msg_bytes_;
  return bytes;
}

}  // namespace picpar::core
