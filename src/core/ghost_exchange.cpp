#include "core/ghost_exchange.hpp"

#include <algorithm>
#include <stdexcept>

namespace picpar::core {

namespace {
constexpr int kGatherTag = 200;

struct DepositRec {
  std::uint64_t gid;
  double v[GhostExchange::kDeposit];
};
static_assert(sizeof(DepositRec) == 8 + 8 * GhostExchange::kDeposit);
}  // namespace

const char* dedup_policy_name(DedupPolicy p) {
  return p == DedupPolicy::kHash ? "hash" : "direct";
}

DedupPolicy parse_dedup_policy(const std::string& name) {
  if (name == "hash") return DedupPolicy::kHash;
  if (name == "direct") return DedupPolicy::kDirect;
  throw std::invalid_argument("unknown dedup policy: " + name);
}

GhostExchange::GhostExchange(const mesh::LocalGrid& lg, DedupPolicy policy)
    : lg_(&lg), policy_(policy) {
  if (policy_ == DedupPolicy::kDirect)
    direct_.assign(static_cast<std::size_t>(lg.grid().nodes()),
                   mesh::kNoLocal);
}

void GhostExchange::begin_iteration() {
  if (policy_ == DedupPolicy::kHash) {
    hash_.clear();
  } else {
    for (const auto gid : gids_)
      direct_[static_cast<std::size_t>(gid)] = mesh::kNoLocal;
  }
  gids_.clear();
  deposit_.clear();
  field_.clear();
  dest_ranks_.clear();
  dest_slots_.clear();
  requests_.clear();
}

std::uint32_t GhostExchange::find_slot(std::uint64_t gid) const {
  if (policy_ == DedupPolicy::kHash) {
    const auto it = hash_.find(gid);
    return it == hash_.end() ? mesh::kNoLocal : it->second;
  }
  return direct_[static_cast<std::size_t>(gid)];
}

double* GhostExchange::deposit_slot(std::uint64_t gid) {
  std::uint32_t slot = find_slot(gid);
  if (slot == mesh::kNoLocal) {
    slot = static_cast<std::uint32_t>(gids_.size());
    gids_.push_back(gid);
    deposit_.resize(deposit_.size() + kDeposit, 0.0);
    if (policy_ == DedupPolicy::kHash)
      hash_.emplace(gid, slot);
    else
      direct_[static_cast<std::size_t>(gid)] = slot;
  }
  return &deposit_[static_cast<std::size_t>(slot) * kDeposit];
}

void GhostExchange::flush_scatter(sim::Comm& comm, mesh::FieldState& f) {
  const auto& part = lg_->partition();
  const int nranks = comm.size();

  // Group slots by owner rank.
  std::vector<std::vector<std::uint32_t>> slots_by_rank(
      static_cast<std::size_t>(nranks));
  for (std::uint32_t s = 0; s < gids_.size(); ++s)
    slots_by_rank[static_cast<std::size_t>(part.owner(gids_[s]))].push_back(s);

  std::vector<std::vector<DepositRec>> send(static_cast<std::size_t>(nranks));
  dest_ranks_.clear();
  dest_slots_.clear();
  for (int r = 0; r < nranks; ++r) {
    auto& slots = slots_by_rank[static_cast<std::size_t>(r)];
    if (slots.empty()) continue;
    if (r == comm.rank())
      throw std::logic_error("GhostExchange: deposit to owned node");
    auto& buf = send[static_cast<std::size_t>(r)];
    buf.reserve(slots.size());
    for (const auto s : slots) {
      DepositRec rec;
      rec.gid = gids_[s];
      for (int k = 0; k < kDeposit; ++k)
        rec.v[k] = deposit_[static_cast<std::size_t>(s) * kDeposit + k];
      buf.push_back(rec);
    }
    dest_ranks_.push_back(r);
    dest_slots_.push_back(std::move(slots));
  }

  auto recv = comm.all_to_many(std::move(send));

  // Owner side: add contributions into the source arrays and remember the
  // request lists for the gather reply.
  for (int src = 0; src < nranks; ++src) {
    const auto& buf = recv[static_cast<std::size_t>(src)];
    if (buf.empty()) continue;
    OwnerRequest req;
    req.src = src;
    req.locals.reserve(buf.size());
    for (const auto& rec : buf) {
      const auto l = lg_->local_of(rec.gid);
      if (l == mesh::kNoLocal || l >= lg_->owned())
        throw std::runtime_error("GhostExchange: received non-owned node");
      f.jx[l] += rec.v[0];
      f.jy[l] += rec.v[1];
      f.jz[l] += rec.v[2];
      f.rho[l] += rec.v[3];
      req.locals.push_back(l);
    }
    requests_.push_back(std::move(req));
  }
}

void GhostExchange::fetch_fields(sim::Comm& comm, const mesh::FieldState& f) {
  // Owner side: reply with field values in request order.
  for (const auto& req : requests_) {
    std::vector<double> buf;
    buf.reserve(req.locals.size() * kField);
    for (const auto l : req.locals) {
      buf.push_back(f.ex[l]);
      buf.push_back(f.ey[l]);
      buf.push_back(f.ez[l]);
      buf.push_back(f.bx[l]);
      buf.push_back(f.by[l]);
      buf.push_back(f.bz[l]);
    }
    comm.send(req.src, kGatherTag, buf);
  }

  // Ghost side: receive per destination rank, store into field_ by slot.
  field_.assign(gids_.size() * kField, 0.0);
  for (std::size_t d = 0; d < dest_ranks_.size(); ++d) {
    auto buf = comm.recv<double>(dest_ranks_[d], kGatherTag);
    const auto& slots = dest_slots_[d];
    if (buf.size() != slots.size() * kField)
      throw std::runtime_error("GhostExchange: bad gather reply length");
    for (std::size_t i = 0; i < slots.size(); ++i)
      for (int k = 0; k < kField; ++k)
        field_[static_cast<std::size_t>(slots[i]) * kField +
               static_cast<std::size_t>(k)] = buf[i * kField + static_cast<std::size_t>(k)];
  }
}

const double* GhostExchange::field_slot(std::uint64_t gid) const {
  const auto slot = find_slot(gid);
  if (slot == mesh::kNoLocal) return nullptr;
  return &field_[static_cast<std::size_t>(slot) * kField];
}

}  // namespace picpar::core
