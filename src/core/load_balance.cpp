#include "core/load_balance.hpp"

#include <algorithm>

namespace picpar::core {

using particles::ParticleArray;
using particles::ParticleRec;

std::uint64_t balanced_count(std::uint64_t total, int nranks, int rank) {
  const auto p = static_cast<std::uint64_t>(nranks);
  const auto r = static_cast<std::uint64_t>(rank);
  return (r + 1) * total / p - r * total / p;
}

BalanceReport order_maintaining_balance(sim::Comm& comm, ParticleArray& p) {
  const int nranks = comm.size();
  const int rank = comm.rank();

  const auto counts = comm.allgather<std::uint64_t>(p.size());
  std::uint64_t total = 0;
  std::uint64_t my_start = 0;
  for (int r = 0; r < nranks; ++r) {
    if (r == rank) my_start = total;
    total += counts[static_cast<std::size_t>(r)];
  }

  // Target ownership: rank r gets global positions [r*N/p, (r+1)*N/p).
  auto target_start = [&](int r) {
    return static_cast<std::uint64_t>(r) * total /
           static_cast<std::uint64_t>(nranks);
  };

  // Slice my contiguous run [my_start, my_start + n) across target owners.
  std::vector<std::vector<ParticleRec>> send(
      static_cast<std::size_t>(nranks));
  const std::uint64_t n = p.size();
  BalanceReport rep;
  if (n > 0) {
    // First target rank owning my_start.
    int dest = nranks - 1;
    for (int r = 0; r < nranks; ++r) {
      if (target_start(r) <= my_start &&
          (r + 1 == nranks || my_start < target_start(r + 1))) {
        dest = r;
        break;
      }
    }
    std::uint64_t i = 0;
    while (i < n) {
      const std::uint64_t dest_end =
          (dest + 1 == nranks) ? total : target_start(dest + 1);
      const std::uint64_t run =
          std::min(n - i, dest_end - (my_start + i));
      auto& buf = send[static_cast<std::size_t>(dest)];
      buf.reserve(buf.size() + run);
      for (std::uint64_t k = 0; k < run; ++k)
        buf.push_back(p.rec(static_cast<std::size_t>(i + k)));
      if (dest != rank) rep.sent += run;
      i += run;
      ++dest;
    }
  }

  auto recv = comm.all_to_many(std::move(send));

  p.clear();
  std::size_t incoming = 0;
  for (const auto& buf : recv) incoming += buf.size();
  p.reserve(incoming);
  for (int src = 0; src < nranks; ++src) {
    for (const auto& r : recv[static_cast<std::size_t>(src)]) p.push_back(r);
    if (src != rank) rep.received += recv[static_cast<std::size_t>(src)].size();
  }
  return rep;
}

}  // namespace picpar::core
