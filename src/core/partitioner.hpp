// Hilbert-index-based particle distribution and redistribution
// (Section 5.1) — the central machinery of the paper.
//
// distribute():   full parallel sample sort of particles by curve key,
//                 followed by order-maintaining load balance. Used for the
//                 initial distribution and as the non-incremental baseline
//                 (Fig 11's "distribution algorithm at each step").
//
// redistribute(): bucket-based incremental sorting (Fig 12). Exploits the
//                 bucket boundaries remembered from the previous sort:
//                 most particles still fall in their previous bucket (the
//                 motion per iteration is incremental), so per-bucket sorts
//                 are cheap (often a no-op sortedness check) and only
//                 particles that crossed a processor boundary travel.
//
// All communication goes through the simulated Comm, so both the work
// (comparisons/moves, charged as compute ops) and the traffic are accounted
// under the paper's machine model.
#pragma once

#include <cstdint>
#include <vector>

#include <memory>

#include "core/balancer.hpp"
#include "core/sort_util.hpp"
#include "mesh/grid.hpp"
#include "particles/particle_array.hpp"
#include "sfc/curve.hpp"
#include "sfc/index_cache.hpp"
#include "sim/comm.hpp"

namespace picpar::core {

struct PartitionerConfig {
  int buckets_per_rank = 16;  ///< L in the paper's Fig 12
  int samples_per_rank = 32;  ///< oversampling for the sample sort
  /// Cost (abstract ops) charged per comparison / per particle move when
  /// translating sort work into virtual compute time.
  double ops_per_comparison = 1.0;
  double ops_per_move = 2.0;
  /// Balancer policy spec (core/balancer.hpp): "lagrange" (the paper's
  /// sample sort + order-maintaining balance), "eulerian" (particle-
  /// weighted cell-aligned cuts) or "sfcweight[:A]" (weighted-element SFC
  /// splitting). Weighted balancers replace the splitter derivation and
  /// skip the exact balance step; bounds stay cell-aligned.
  std::string balancer = "lagrange";
};

struct RedistReport {
  bool incremental = false;
  SortWork work;                    ///< local sorting/merging work
  std::uint64_t sent_particles = 0;  ///< moved to another rank
  double seconds = 0.0;              ///< virtual time this rank spent
};

class ParticlePartitioner {
public:
  ParticlePartitioner(const sfc::Curve& curve, const mesh::GridDesc& grid,
                      PartitionerConfig cfg = {});

  const sfc::Curve& curve() const { return *curve_; }
  const PartitionerConfig& config() const { return cfg_; }

  /// Recompute every particle's key from its position (cell -> curve index).
  void assign_keys(sim::Comm& comm, particles::ParticleArray& p) const;

  /// Full distribution: sample sort + balance. Resets incremental state.
  RedistReport distribute(sim::Comm& comm, particles::ParticleArray& p);

  /// Incremental redistribution; falls back to distribute() when no
  /// previous state exists. Keys must be current (assign_keys or the push
  /// phase's per-particle update).
  RedistReport redistribute(sim::Comm& comm, particles::ParticleArray& p);

  /// Inclusive upper key bound of each rank's range after the last
  /// (re)distribution; empty before the first.
  const std::vector<std::uint64_t>& rank_upper_bounds() const {
    return global_bounds_;
  }

  /// Rank owning `key` under the current bounds: rank r owns keys in
  /// (bounds[r-1], bounds[r]], rank 0 also owns key 0. Requires state from
  /// a prior (re)distribution. Used by the injector to decide, from the
  /// globally agreed batch, which emitted particles are locally kept.
  int owner_of(std::uint64_t key) const;

  const BalancerPolicy& balancer() const { return *balancer_; }

  bool has_state() const { return have_state_; }

  /// Resident bytes held by the redistribution scratch (send buckets,
  /// receive staging) and the bucket-boundary tables. Capacities, not
  /// sizes — scratch capacity persists across iterations by design, so
  /// this is the steady-state memory the partitioner pins per rank.
  std::size_t scratch_bytes() const;

private:
  void charge_work(sim::Comm& comm, const SortWork& w) const;
  void refresh_state(sim::Comm& comm, const particles::ParticleArray& p);
  /// Recompute the local bucket boundaries only (weighted balancers keep
  /// their computed cell-aligned global bounds instead of the data-derived
  /// bounds refresh_state would install).
  void refresh_local_buckets(const particles::ParticleArray& p);
  /// Destination rank for a key under the current global bounds.
  int dest_rank(std::uint64_t key, SortWork& w) const;

  const sfc::Curve* curve_;
  mesh::GridDesc grid_;
  PartitionerConfig cfg_;
  /// Bounds policy (shared so the partitioner stays copyable).
  std::shared_ptr<const BalancerPolicy> balancer_;
  /// Memoized cell -> curve-index table backing assign_keys (DESIGN.md §10).
  sfc::IndexCache key_cache_;

  // Scratch reused across redistributions so steady-state iterations do not
  // reallocate (capacity persists; contents are per-call).
  std::vector<std::vector<particles::ParticleRec>> bucket_scratch_;
  std::vector<particles::ParticleRec> recv_scratch_;

  bool have_state_ = false;
  /// Interior bucket boundary keys of the local sorted array (L-1 values).
  std::vector<std::uint64_t> local_bounds_;
  /// Inclusive upper key of every rank's range (p values, non-decreasing).
  std::vector<std::uint64_t> global_bounds_;
};

}  // namespace picpar::core
