#include "core/partitioner.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/indexing.hpp"
#include "core/load_balance.hpp"
#include "util/sparse_rank.hpp"

namespace picpar::core {

using particles::ParticleArray;
using particles::ParticleRec;

namespace {
constexpr std::uint64_t kMaxKey = std::numeric_limits<std::uint64_t>::max();
}

ParticlePartitioner::ParticlePartitioner(const sfc::Curve& curve,
                                         const mesh::GridDesc& grid,
                                         PartitionerConfig cfg)
    : curve_(&curve),
      grid_(grid),
      cfg_(cfg),
      balancer_(make_balancer(cfg.balancer)),
      key_cache_(curve, grid.nx, grid.ny) {
  if (cfg.buckets_per_rank < 1 || cfg.samples_per_rank < 1)
    throw std::invalid_argument("PartitionerConfig: counts must be >= 1");
}

void ParticlePartitioner::assign_keys(sim::Comm& comm,
                                      ParticleArray& p) const {
  core::assign_keys(key_cache_, grid_, p);
  comm.charge_ops(p.size() * 4);  // cell lookup + curve evaluation
}

void ParticlePartitioner::charge_work(sim::Comm& comm,
                                      const SortWork& w) const {
  const double ops =
      static_cast<double>(w.comparisons) * cfg_.ops_per_comparison +
      static_cast<double>(w.moves) * cfg_.ops_per_move;
  comm.charge(ops * comm.cost().delta);
}

int ParticlePartitioner::owner_of(std::uint64_t key) const {
  // First rank whose inclusive upper bound admits the key; the last rank
  // absorbs anything above all bounds.
  const auto it =
      std::lower_bound(global_bounds_.begin(), global_bounds_.end(), key);
  if (it == global_bounds_.end()) return static_cast<int>(global_bounds_.size()) - 1;
  return static_cast<int>(it - global_bounds_.begin());
}

int ParticlePartitioner::dest_rank(std::uint64_t key, SortWork& w) const {
  w.comparisons += 1 + static_cast<std::uint64_t>(
                           global_bounds_.empty()
                               ? 0
                               : 64 - __builtin_clzll(global_bounds_.size()));
  return owner_of(key);
}

void ParticlePartitioner::refresh_state(sim::Comm& comm,
                                        const ParticleArray& p) {
  const int nranks = comm.size();
  // Upper key of my (sorted) range; empty ranks use 0 and are patched below
  // so bounds stay non-decreasing and identical on every rank.
  const std::uint64_t my_upper = p.empty() ? 0 : p.key[p.size() - 1];
  const auto uppers = comm.allgather<std::uint64_t>(my_upper);
  const auto counts = comm.allgather<std::uint64_t>(p.size());

  global_bounds_.assign(static_cast<std::size_t>(nranks), 0);
  std::uint64_t prev = 0;
  for (int r = 0; r < nranks; ++r) {
    const auto i = static_cast<std::size_t>(r);
    global_bounds_[i] = counts[i] == 0 ? prev : uppers[i];
    prev = global_bounds_[i];
  }

  refresh_local_buckets(p);
}

void ParticlePartitioner::refresh_local_buckets(const ParticleArray& p) {
  // Interior bucket boundaries of the local array: bucket b holds local
  // positions [b*span, (b+1)*span); boundary key b (b = 1..L-1) is the key
  // at position b*span.
  const int L = cfg_.buckets_per_rank;
  local_bounds_.clear();
  if (!p.empty()) {
    for (int b = 1; b < L; ++b) {
      const auto pos = static_cast<std::size_t>(
          static_cast<std::uint64_t>(b) * p.size() /
          static_cast<std::uint64_t>(L));
      local_bounds_.push_back(p.key[pos]);
    }
  }
  have_state_ = true;
}

RedistReport ParticlePartitioner::distribute(sim::Comm& comm,
                                             ParticleArray& p) {
  RedistReport rep;
  rep.incremental = false;
  const double t_begin = comm.clock();
  const int nranks = comm.size();

  // 1. Local sort by key.
  rep.work += sort_by_key(p);

  // Weighted balancers replace steps 2-3 (sampling + splitter derivation)
  // with the collective cell-weight walk, and skip step 6: cell-aligned
  // bounds are the point of the policy, and the order-maintaining balance
  // would shift them back onto arbitrary particle boundaries. The computed
  // bounds are kept (refresh_state would overwrite them with data-derived
  // ones); only the local bucket table is refreshed.
  if (!balancer_->lagrangian()) {
    global_bounds_ = balancer_->compute_bounds(comm, p, key_cache_, rep.work);
    // The local array is key-sorted and the bounds are non-decreasing, so
    // destinations appear in ascending order: the send table is a list of
    // (dest, run) pairs — O(touched destinations), not O(p).
    std::vector<std::pair<int, std::vector<ParticleRec>>> send;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const int d = dest_rank(p.key[i], rep.work);
      if (send.empty() || send.back().first != d) send.emplace_back(d, std::vector<ParticleRec>{});
      send.back().second.push_back(p.rec(i));
      ++rep.work.moves;
      if (d != comm.rank()) ++rep.sent_particles;
    }
    auto recv = comm.all_to_many(std::move(send));
    std::vector<std::vector<ParticleRec>> runs;
    runs.reserve(recv.size());
    for (auto& [src, buf] : recv) runs.push_back(std::move(buf));
    rep.work += merge_runs(runs, p);
    charge_work(comm, rep.work);
    refresh_local_buckets(p);
    rep.seconds = comm.clock() - t_begin;
    return rep;
  }

  // 2. Regular sampling of local keys.
  const int s = cfg_.samples_per_rank;
  std::vector<std::uint64_t> samples;
  samples.reserve(static_cast<std::size_t>(s));
  if (!p.empty()) {
    for (int i = 1; i <= s; ++i) {
      const auto pos = static_cast<std::size_t>(
          static_cast<std::uint64_t>(i) * p.size() /
          static_cast<std::uint64_t>(s + 1));
      samples.push_back(p.key[std::min(pos, p.size() - 1)]);
    }
  }

  // 3. Gather all samples, derive p-1 splitters at regular positions.
  auto all_samples = comm.allgatherv(samples);
  SortWork sample_sort_work;
  {
    std::uint64_t before = all_samples.size();
    std::sort(all_samples.begin(), all_samples.end());
    sample_sort_work.comparisons +=
        before > 1 ? before * 10 : 0;  // ~n log n for the tiny sample set
  }
  rep.work += sample_sort_work;

  // Splitters become inclusive upper bounds: rank r takes keys in
  // (split[r-1], split[r]], last rank unbounded.
  global_bounds_.assign(static_cast<std::size_t>(nranks), kMaxKey);
  if (!all_samples.empty()) {
    for (int r = 0; r + 1 < nranks; ++r) {
      const auto pos = static_cast<std::size_t>(
          static_cast<std::uint64_t>(r + 1) * all_samples.size() /
          static_cast<std::uint64_t>(nranks));
      global_bounds_[static_cast<std::size_t>(r)] =
          all_samples[std::min(pos, all_samples.size() - 1)];
    }
  }
  global_bounds_[static_cast<std::size_t>(nranks - 1)] = kMaxKey;

  // 4. Route particles; the local array is sorted, so each destination
  // receives a contiguous sorted run and destinations appear in ascending
  // order — the send table is sparse in touched destinations.
  std::vector<std::pair<int, std::vector<ParticleRec>>> send;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const int d = dest_rank(p.key[i], rep.work);
    if (send.empty() || send.back().first != d)
      send.emplace_back(d, std::vector<ParticleRec>{});
    send.back().second.push_back(p.rec(i));
    ++rep.work.moves;
    if (d != comm.rank()) ++rep.sent_particles;
  }
  auto recv = comm.all_to_many(std::move(send));

  // 5. Merge the per-source sorted runs (ascending source order; empty
  // sources simply have no run, which leaves the merge unchanged).
  std::vector<std::vector<ParticleRec>> runs;
  runs.reserve(recv.size());
  for (auto& [src, buf] : recv) runs.push_back(std::move(buf));
  rep.work += merge_runs(runs, p);

  // 6. Exact balance, preserving order.
  const auto bal = order_maintaining_balance(comm, p);
  rep.sent_particles += bal.sent;
  rep.work.moves += bal.sent + bal.received;

  charge_work(comm, rep.work);
  refresh_state(comm, p);
  rep.seconds = comm.clock() - t_begin;
  return rep;
}

RedistReport ParticlePartitioner::redistribute(sim::Comm& comm,
                                               ParticleArray& p) {
  if (!have_state_) return distribute(comm, p);

  RedistReport rep;
  rep.incremental = true;
  const double t_begin = comm.clock();
  const int nranks = comm.size();
  const int L = cfg_.buckets_per_rank;

  const bool weighted = !balancer_->lagrangian();
  if (weighted) {
    // Weighted policies recompute the cell-aligned bounds from the current
    // particle profile before classifying: the profile drifted since the
    // last redistribution, and the bounds are a pure function of it.
    global_bounds_ = balancer_->compute_bounds(comm, p, key_cache_, rep.work);
  } else {
    // Fig 12 line 1: refresh the global processor bounds from the previous
    // sorted state (they are already cached; the allgather keeps the
    // communication pattern of the paper's algorithm).
    const auto counts = comm.allgather<std::uint64_t>(p.size());
    (void)counts;
  }

  const std::uint64_t my_lower =
      comm.rank() == 0
          ? 0
          : global_bounds_[static_cast<std::size_t>(comm.rank() - 1)];
  const std::uint64_t my_upper =
      comm.rank() == nranks - 1
          ? kMaxKey
          : global_bounds_[static_cast<std::size_t>(comm.rank())];

  // Adaptive pre-scan (DESIGN.md §10): if every local particle still
  // belongs to this rank and the array is still key-sorted, the whole
  // classify/sort/merge pipeline is a no-op — skip it. The scan stops at
  // the first violation, so a genuinely perturbed array pays only a short
  // prefix. Mirrors sort_records' adaptive sortedness check.
  const std::size_t n = p.size();
  bool settled = true;
  {
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = p.key[i];
      rep.work.comparisons += 3;
      if (key < prev || key > my_upper ||
          (comm.rank() != 0 && key <= my_lower)) {
        settled = false;
        break;
      }
      prev = key;
    }
  }

  // Classify every particle: same positional bucket (cheap membership
  // test), another local bucket (binary search in local bounds), or
  // off-processor (binary search in global bounds). Bucket scratch is a
  // member so steady-state iterations reuse its capacity.
  bucket_scratch_.resize(static_cast<std::size_t>(L));
  for (auto& b : bucket_scratch_) b.clear();
  // Off-processor particles grouped by destination. The drifted array is
  // not key-sorted, so destinations arrive in arbitrary order: accumulate
  // into a sparse per-destination map (O(log k) per particle, k = touched
  // destinations — the handful of curve neighbors, not the world size).
  util::SparseRankMap<std::vector<ParticleRec>> send;

  auto bucket_of = [&](std::uint64_t key, SortWork& w) -> int {
    const auto it =
        std::upper_bound(local_bounds_.begin(), local_bounds_.end(), key);
    w.comparisons += 1 + (local_bounds_.empty() ? 0u : 5u);
    return static_cast<int>(it - local_bounds_.begin());
  };

  if (!settled) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = p.key[i];
      // Rank r owns keys in (bounds[r-1], bounds[r]]; rank 0 also owns key 0.
      rep.work.comparisons += 2;
      const bool local =
          key <= my_upper && (comm.rank() == 0 || key > my_lower);
      if (local) {
        // Positional bucket check first (paper's "same bucket as previous").
        const auto pos_bucket = static_cast<int>(
            n == 0 ? 0
                   : static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(L) /
                         static_cast<std::uint64_t>(n));
        const std::uint64_t b_lo =
            pos_bucket == 0 ? 0 : local_bounds_[static_cast<std::size_t>(pos_bucket - 1)];
        const std::uint64_t b_hi =
            pos_bucket >= static_cast<int>(local_bounds_.size())
                ? kMaxKey
                : local_bounds_[static_cast<std::size_t>(pos_bucket)];
        rep.work.comparisons += 2;
        int b;
        if (key >= b_lo && key < b_hi) {
          b = pos_bucket;  // category 1: same bucket
        } else {
          b = bucket_of(key, rep.work);  // category 2: another local bucket
        }
        bucket_scratch_[static_cast<std::size_t>(b)].push_back(p.rec(i));
        ++rep.work.moves;
      } else {
        // Category 3: off-processor.
        const int d = dest_rank(key, rep.work);
        send.ref(d).push_back(p.rec(i));
        ++rep.work.moves;
        ++rep.sent_particles;
      }
    }
  }

  // Fig 12 line 20: all-to-many exchange of off-processor particles.
  // Always executed (possibly with empty sends) so every rank runs the
  // same collective sequence regardless of its local settled/perturbed
  // state.
  std::vector<std::pair<int, std::vector<ParticleRec>>> send_pairs;
  send_pairs.reserve(send.size());
  for (auto& e : send) send_pairs.emplace_back(e.rank, std::move(e.value));
  auto recv = comm.all_to_many(std::move(send_pairs));

  // Lines 21-24: sort the received list and each bucket, then merge.
  // Buckets cover disjoint ascending key ranges, so sorted buckets
  // concatenate into one sorted run for free; merge_bucket_runs does the
  // final 2-way merge straight out of the buckets (no intermediate
  // concatenated copy, no heap — see DESIGN.md §10). Received pairs
  // concatenate in ascending source order, matching the dense loop.
  recv_scratch_.clear();
  for (auto& [src, r] : recv)
    recv_scratch_.insert(recv_scratch_.end(), r.begin(), r.end());
  rep.work += sort_records(recv_scratch_);

  if (settled) {
    if (!recv_scratch_.empty()) {
      // Local particles are untouched and sorted; merge arrivals into them.
      std::vector<std::vector<ParticleRec>> kept(1);
      kept[0].reserve(n);
      for (std::size_t i = 0; i < n; ++i) kept[0].push_back(p.rec(i));
      rep.work.moves += n;
      rep.work += merge_bucket_runs(kept, recv_scratch_, p);
    }
    // else: true no-op — p is left byte-identical.
  } else {
    for (auto& b : bucket_scratch_) rep.work += sort_records(b);
    rep.work += merge_bucket_runs(bucket_scratch_, recv_scratch_, p);
  }

  if (weighted) {
    // Cell-aligned bounds are authoritative: no exact balance pass, and the
    // computed bounds survive instead of refresh_state's data-derived ones.
    charge_work(comm, rep.work);
    refresh_local_buckets(p);
    rep.seconds = comm.clock() - t_begin;
    return rep;
  }

  // Order-maintaining load balance, then refresh bucket state.
  const auto bal = order_maintaining_balance(comm, p);
  rep.sent_particles += bal.sent;
  rep.work.moves += bal.sent + bal.received;

  charge_work(comm, rep.work);
  refresh_state(comm, p);
  rep.seconds = comm.clock() - t_begin;
  return rep;
}

std::size_t ParticlePartitioner::scratch_bytes() const {
  std::size_t bytes =
      bucket_scratch_.capacity() * sizeof(std::vector<particles::ParticleRec>);
  for (const auto& b : bucket_scratch_)
    bytes += b.capacity() * sizeof(particles::ParticleRec);
  bytes += recv_scratch_.capacity() * sizeof(particles::ParticleRec);
  bytes += local_bounds_.capacity() * sizeof(std::uint64_t);
  bytes += global_bounds_.capacity() * sizeof(std::uint64_t);
  return bytes;
}

}  // namespace picpar::core
