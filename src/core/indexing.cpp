#include "core/indexing.hpp"

namespace picpar::core {

void assign_keys(const sfc::Curve& curve, const mesh::GridDesc& grid,
                 particles::ParticleArray& p) {
  const std::uint64_t stride = p.key_stride();
  if (stride == 1) {
    for (std::size_t i = 0; i < p.size(); ++i)
      p.key[i] = key_of(curve, grid, p.x[i], p.y[i]);
  } else {
    for (std::size_t i = 0; i < p.size(); ++i)
      p.key[i] =
          key_of(curve, grid, p.x[i], p.y[i]) * stride + p.key[i] % stride;
  }
}

void assign_keys(const sfc::IndexCache& cache, const mesh::GridDesc& grid,
                 particles::ParticleArray& p) {
  const std::uint64_t stride = p.key_stride();
  if (stride == 1) {
    for (std::size_t i = 0; i < p.size(); ++i)
      p.key[i] = key_of(cache, grid, p.x[i], p.y[i]);
  } else {
    for (std::size_t i = 0; i < p.size(); ++i)
      p.key[i] =
          key_of(cache, grid, p.x[i], p.y[i]) * stride + p.key[i] % stride;
  }
}

bool is_sorted_by_key(const particles::ParticleArray& p) {
  for (std::size_t i = 1; i < p.size(); ++i)
    if (p.key[i] < p.key[i - 1]) return false;
  return true;
}

}  // namespace picpar::core
