#include "core/balancer.hpp"

#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace picpar::core {

namespace {

constexpr std::uint64_t kMaxKey = std::numeric_limits<std::uint64_t>::max();

/// Shared weighted-SFC splitter: build the global per-cell particle
/// histogram (in curve order — the key's cell component *is* the curve
/// index), then walk it once, cutting after the cell where the cumulative
/// weight alpha * cells_so_far + particles_so_far crosses each rank's equal
/// share. Every rank gathers the same sparse profile and performs the same
/// walk, so the bounds agree without a separate broadcast. Accumulation is
/// commutative uint64 addition, so the result is independent of the order
/// rank blocks arrive in.
std::vector<std::uint64_t> weighted_bounds(sim::Comm& comm,
                                           const particles::ParticleArray& p,
                                           const sfc::IndexCache& cells,
                                           double alpha, SortWork& work) {
  const std::uint64_t stride = p.key_stride();
  const auto nranks = static_cast<std::uint64_t>(comm.size());
  // The histogram spans the curve's index *space*; gap indices (curves pad
  // non-square grids) hold no mesh cell, so only real cells — marked from
  // the cell table — carry the alpha weight.
  const std::uint64_t nspace = cells.max_index() + 1;
  std::vector<std::uint8_t> is_cell(nspace, 0);
  for (std::uint64_t c = 0; c < cells.size(); ++c) is_cell[cells[c]] = 1;

  // Local dense count, compressed to sparse (cell, count) pairs for the
  // gather: a rank's particles are compact on the curve, so most cells are
  // empty from its point of view.
  std::vector<std::uint64_t> local(nspace, 0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    const std::uint64_t cell = p.key[i] / stride;
    if (cell >= nspace)
      throw std::runtime_error("weighted_bounds: key outside the grid");
    ++local[cell];
  }
  std::vector<std::uint64_t> sparse;
  for (std::uint64_t c = 0; c < nspace; ++c)
    if (local[c] != 0) {
      sparse.push_back(c);
      sparse.push_back(local[c]);
    }
  work.comparisons += p.size() + nspace;

  const auto all = comm.allgatherv(sparse);

  std::vector<std::uint64_t> hist(nspace, 0);
  std::uint64_t total_count = 0;
  for (std::size_t i = 0; i + 1 < all.size(); i += 2) {
    hist[all[i]] += all[i + 1];
    total_count += all[i + 1];
  }

  // Equal-share targets in exact integer arithmetic: weight each cell at
  // W = K + count, K = round(alpha) scaled so fractional alphas resolve to
  // a fixed-point per-cell weight. Using 1024ths keeps the walk integral
  // (and therefore trivially deterministic) while supporting alpha < 1.
  const auto kScale = std::uint64_t{1024};
  const auto cell_w =
      static_cast<std::uint64_t>(alpha * static_cast<double>(kScale) + 0.5);
  const std::uint64_t total_w = cells.size() * cell_w + total_count * kScale;

  // Empty-rank audit (large p): the walk below visits cells in ascending
  // curve order and only ever appends cuts at the current cell, so bounds
  // are non-decreasing by construction — never unsorted. When p exceeds the
  // number of weight-bearing cells (or weight is concentrated in few
  // cells), the inner while fires more than once at one cell and emits
  // *duplicate* bounds: consecutive ranks share an upper bound. That is the
  // intended encoding of an empty rank — owner_of/dest_rank resolve a key
  // with lower_bound, which picks the first rank holding the bound, so the
  // later duplicates own empty half-open key ranges and simply receive no
  // particles. The final rank always keeps kMaxKey (cum reaches total_w at
  // the last cell, so every interior cut fires before the loop ends).
  // tests/core/test_balancer.cpp pins this behavior.
  std::vector<std::uint64_t> bounds(nranks, kMaxKey);
  std::uint64_t cum = 0;
  std::uint64_t r = 0;
  for (std::uint64_t c = 0; c < nspace && r + 1 < nranks; ++c) {
    cum += (is_cell[c] ? cell_w : 0) + hist[c] * kScale;
    // Rank r's share ends at the first cell whose cumulative weight reaches
    // (r+1)/nranks of the total. 128-bit products avoid overflow for any
    // realistic population (total_w < 2^53, nranks < 2^16).
    while (r + 1 < nranks &&
           static_cast<unsigned __int128>(cum) * nranks >=
               static_cast<unsigned __int128>(total_w) * (r + 1)) {
      bounds[r] = c * stride + (stride - 1);
      ++r;
    }
  }
  work.comparisons += nspace + nranks;
  return bounds;
}

}  // namespace

std::vector<std::uint64_t> BalancerPolicy::compute_bounds(
    sim::Comm&, const particles::ParticleArray&, const sfc::IndexCache&,
    SortWork&) const {
  throw std::logic_error("compute_bounds called on a Lagrangian balancer");
}

std::vector<std::uint64_t> EulerianBalancer::compute_bounds(
    sim::Comm& comm, const particles::ParticleArray& p,
    const sfc::IndexCache& cells, SortWork& work) const {
  return weighted_bounds(comm, p, cells, 0.0, work);
}

SfcWeightedBalancer::SfcWeightedBalancer(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0))
    throw std::invalid_argument("sfcweight: alpha must be > 0");
}

std::string SfcWeightedBalancer::name() const {
  if (alpha_ == 1.0) return "sfcweight";
  // Trim trailing zeros so "sfcweight:2.500000" round-trips as
  // "sfcweight:2.5" through the fingerprint.
  std::string a = std::to_string(alpha_);
  while (a.size() > 1 && a.back() == '0') a.pop_back();
  if (!a.empty() && a.back() == '.') a.pop_back();
  return "sfcweight:" + a;
}

std::vector<std::uint64_t> SfcWeightedBalancer::compute_bounds(
    sim::Comm& comm, const particles::ParticleArray& p,
    const sfc::IndexCache& cells, SortWork& work) const {
  return weighted_bounds(comm, p, cells, alpha_, work);
}

std::unique_ptr<BalancerPolicy> make_balancer(const std::string& spec) {
  if (spec.empty() || spec == "lagrange" || spec == "lagrangian")
    return std::make_unique<LagrangianBalancer>();
  if (spec == "eulerian") return std::make_unique<EulerianBalancer>();
  if (spec == "sfcweight") return std::make_unique<SfcWeightedBalancer>(1.0);
  if (spec.rfind("sfcweight:", 0) == 0) {
    const std::string arg = spec.substr(10);
    try {
      std::size_t used = 0;
      const double alpha = std::stod(arg, &used);
      if (used != arg.size()) throw std::invalid_argument(arg);
      return std::make_unique<SfcWeightedBalancer>(alpha);
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("make_balancer: bad alpha '" + arg + "'");
    } catch (const std::out_of_range&) {
      throw std::invalid_argument("make_balancer: bad alpha '" + arg + "'");
    }
  }
  throw std::invalid_argument("make_balancer: unknown balancer '" + spec +
                              "'");
}

}  // namespace picpar::core
