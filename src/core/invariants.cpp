#include "core/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/indexing.hpp"

namespace picpar::core {

const char* invariant_name(Invariant inv) {
  switch (inv) {
    case Invariant::kCount: return "count";
    case Invariant::kFinite: return "finite";
    case Invariant::kDomain: return "domain";
    case Invariant::kKey: return "key";
    case Invariant::kSorted: return "sorted";
    case Invariant::kBalance: return "balance";
    case Invariant::kEnergy: return "energy";
  }
  return "?";
}

InvariantChecker::InvariantChecker(const sfc::Curve& curve,
                                   const mesh::GridDesc& grid,
                                   InvariantConfig cfg)
    : curve_(&curve), grid_(grid), cfg_(cfg) {}

void InvariantChecker::set_reference_count(std::uint64_t global_count) {
  have_ref_count_ = true;
  ref_count_ = global_count;
}

void InvariantChecker::set_reference_energy(double total_energy) {
  have_ref_energy_ = true;
  ref_energy_ = total_energy;
}

namespace {

void add_violation(InvariantReport& rep, Invariant kind, int iter,
                   double measured, double limit, std::string detail) {
  rep.mask |= static_cast<std::uint32_t>(kind);
  rep.violations.push_back({kind, iter, measured, limit, std::move(detail)});
}

}  // namespace

InvariantReport InvariantChecker::check(
    sim::Comm& comm, const particles::ParticleArray& p, int iter,
    const std::vector<std::uint64_t>* rank_upper_bounds, double local_energy) {
  InvariantReport rep;
  const std::size_t n = p.size();
  // Species-in-key encoding: the cell component is key / stride (stride 1
  // for single-species arrays, where this degenerates to the plain key).
  const std::uint64_t stride = p.key_stride();

  // ---- local scans ----
  std::size_t bad_finite = 0, bad_domain = 0, bad_key = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool finite = std::isfinite(p.x[i]) && std::isfinite(p.y[i]) &&
                        std::isfinite(p.ux[i]) && std::isfinite(p.uy[i]) &&
                        std::isfinite(p.uz[i]);
    if (!finite) {
      ++bad_finite;
      continue;  // domain/key checks are meaningless on non-finite fields
    }
    if (p.x[i] < 0.0 || p.x[i] >= grid_.lx || p.y[i] < 0.0 ||
        p.y[i] >= grid_.ly) {
      ++bad_domain;
      continue;
    }
    if (cfg_.verify_keys &&
        p.key[i] / stride != key_of(*curve_, grid_, p.x[i], p.y[i]))
      ++bad_key;
  }
  comm.charge_ops(static_cast<std::uint64_t>(
      static_cast<double>(n) * cfg_.ops_per_particle));

  if (bad_finite > 0)
    add_violation(rep, Invariant::kFinite, iter,
                  static_cast<double>(bad_finite), 0.0,
                  std::to_string(bad_finite) + " particle(s) with non-finite fields");
  if (bad_domain > 0)
    add_violation(rep, Invariant::kDomain, iter,
                  static_cast<double>(bad_domain), 0.0,
                  std::to_string(bad_domain) + " particle(s) outside the domain");
  if (bad_key > 0)
    add_violation(rep, Invariant::kKey, iter, static_cast<double>(bad_key),
                  0.0,
                  std::to_string(bad_key) + " stale/corrupt sort key(s)");

  // ---- sorted order within this rank's partition range ----
  if (rank_upper_bounds != nullptr && !rank_upper_bounds->empty()) {
    const int rank = comm.rank();
    bool sorted = true;
    for (std::size_t i = 1; i < n && sorted; ++i)
      sorted = p.key[i - 1] <= p.key[i];
    const std::uint64_t upper =
        (*rank_upper_bounds)[static_cast<std::size_t>(rank)];
    const std::uint64_t lower =
        rank > 0 ? (*rank_upper_bounds)[static_cast<std::size_t>(rank - 1)]
                 : 0;
    bool in_range = true;
    if (n > 0) {
      // Bounds are inclusive upper keys per rank. Keys equal to the
      // previous rank's bound may legally live on either side (ties are
      // split by the order-maintaining balance), so the lower test is >=.
      in_range = p.key[n - 1] <= upper && (rank == 0 || p.key[0] >= lower);
    }
    if (!sorted || !in_range) {
      std::ostringstream os;
      os << (sorted ? "keys outside partition range" : "keys out of order")
         << " on rank " << rank;
      add_violation(rep, Invariant::kSorted, iter, 0.0, 0.0, os.str());
    }
  }

  // ---- collective checks ----
  if (have_ref_count_) {
    const auto total =
        comm.allreduce_sum<std::uint64_t>(static_cast<std::uint64_t>(n));
    if (total != ref_count_)
      add_violation(rep, Invariant::kCount, iter, static_cast<double>(total),
                    static_cast<double>(ref_count_),
                    "global particle count drifted");
  }

  if (cfg_.balance_tolerance > 0.0) {
    const auto max_n =
        comm.allreduce_max<std::uint64_t>(static_cast<std::uint64_t>(n));
    const auto sum_n =
        comm.allreduce_sum<std::uint64_t>(static_cast<std::uint64_t>(n));
    const double mean =
        static_cast<double>(sum_n) / static_cast<double>(comm.size());
    const double bound = cfg_.balance_tolerance * mean + cfg_.balance_slack;
    if (static_cast<double>(max_n) > bound)
      add_violation(rep, Invariant::kBalance, iter,
                    static_cast<double>(max_n), bound,
                    "partition imbalance beyond tolerance");
  }

  if (cfg_.energy_factor > 0.0 && local_energy >= 0.0) {
    const double total = comm.allreduce_sum(local_energy);
    if (!std::isfinite(total)) {
      add_violation(rep, Invariant::kEnergy, iter, total, 0.0,
                    "total energy is non-finite");
    } else if (!have_ref_energy_) {
      set_reference_energy(total);
    } else {
      const double limit =
          cfg_.energy_factor * std::max(ref_energy_, 1e-300);
      if (total > limit)
        add_violation(rep, Invariant::kEnergy, iter, total, limit,
                      "total energy drifted beyond bound");
    }
  }

  // Agree on the verdict so every rank takes the same recovery action.
  rep.mask = comm.allreduce<std::uint32_t>(
      std::vector<std::uint32_t>{rep.mask},
      [](std::uint32_t a, std::uint32_t b) { return a | b; })[0];
  return rep;
}

}  // namespace picpar::core
