// Deterministic fault injection for the simulated machine.
//
// A FaultModel owned by Machine perturbs a run the way a real cluster
// would: per-rank compute slowdowns (transient hiccups and persistent
// stragglers), message latency jitter, message duplication, cross-flow
// reordering, and payload bit-flips on the wire. Every decision is drawn
// from a per-rank seeded RNG stream, so a faulty run is exactly as
// reproducible as a clean one: same config + same seed => identical
// RunResult, fault for fault.
//
// Layering: the Machine consults the model inside do_send/do_recv/charge.
// Wire corruption is always *detected* (FNV-1a checksum over the payload,
// carried in the message envelope) and recovered by the transport's
// retransmit protocol — see machine.cpp. Faults the transport cannot see
// (host memory corruption) are exposed through should_memory_fault() for
// drivers (run_pic) to inject into their own state, where invariant
// validation — not checksums — is the detection layer.
//
// A default-constructed model is disabled and adds zero virtual-time
// overhead: the Machine's fast paths skip every hook.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace picpar::sim {

/// One scheduled fail-stop crash: `rank` stops executing at the first
/// communication or compute boundary at/after `vtime` on its own clock.
struct CrashPoint {
  int rank = -1;
  double vtime = 0.0;
};

struct FaultConfig {
  /// Master seed; per-rank streams are split deterministically from it.
  std::uint64_t seed = 0x5EEDFA17ULL;

  // ---- compute faults ----
  /// Probability that any single compute charge is slowed transiently.
  double transient_slow_prob = 0.0;
  /// Multiplier applied to a transiently slowed charge.
  double transient_slow_factor = 4.0;
  /// Ranks that run persistently slow (e.g. a failing node's neighbors).
  std::vector<int> straggler_ranks;
  /// Multiplier applied to every compute charge on a straggler rank.
  double straggler_factor = 1.0;

  // ---- message faults (recovered by the transport) ----
  /// Probability a sent message picks up extra latency.
  double latency_jitter_prob = 0.0;
  /// Maximum extra latency in seconds, uniform in [0, max).
  double latency_jitter_max_seconds = 0.0;
  /// Probability a delivery attempt arrives with a flipped payload bit.
  /// Detected by checksum; the transport retransmits (each retry draws
  /// corruption again, so the recovery itself degrades under high rates).
  double corrupt_prob = 0.0;
  /// Probability a sent message is delivered twice (same sequence number).
  double duplicate_prob = 0.0;
  /// Probability a sent message overtakes the previously queued message of
  /// a *different* flow (src, tag) in the destination mailbox. Per-flow
  /// FIFO is preserved, as on a real fabric with per-channel ordering.
  double reorder_prob = 0.0;
  /// Retransmit attempts before the transport gives up (TransportError).
  int max_retries = 8;

  // ---- host faults (injected by drivers, not the Machine) ----
  /// Per-rank, per-iteration probability that a driver flips one bit of
  /// its own state (see run_pic); caught by invariant validation.
  double memory_fault_prob = 0.0;

  // ---- fail-stop crashes (detected via virtual-time leases; machine.hpp) ----
  /// Scheduled crashes: each entry fail-stops one rank at its virtual time.
  std::vector<CrashPoint> crash_schedule;
  /// Probabilistic crashes: each rank draws once at reset; with this
  /// probability it crashes at a uniform time in [0, crash_vtime_max).
  double crash_prob = 0.0;
  double crash_vtime_max = 0.0;
  /// Detection lease: survivors declare a peer failed no earlier than its
  /// crash time plus this many virtual seconds (heartbeat-timeout analogue).
  double crash_lease_seconds = 1e-3;

  bool any_compute_faults() const {
    return transient_slow_prob > 0.0 ||
           (straggler_factor != 1.0 && !straggler_ranks.empty());
  }
  bool any_message_faults() const {
    return latency_jitter_prob > 0.0 || corrupt_prob > 0.0 ||
           duplicate_prob > 0.0 || reorder_prob > 0.0;
  }
  bool any_crash_faults() const {
    return !crash_schedule.empty() ||
           (crash_prob > 0.0 && crash_vtime_max > 0.0);
  }
  bool any() const {
    return any_compute_faults() || any_message_faults() ||
           memory_fault_prob > 0.0 || any_crash_faults();
  }
};

/// Per-rank tallies of injected faults (what the model *did*; the
/// transport's LinkStats record what the receiver *saw*).
struct FaultCounters {
  std::uint64_t transient_slowdowns = 0;
  std::uint64_t jittered_messages = 0;
  std::uint64_t corrupted_deliveries = 0;
  std::uint64_t duplicated_messages = 0;
  std::uint64_t reordered_messages = 0;
  std::uint64_t memory_faults = 0;
  std::uint64_t crashes = 0;

  FaultCounters& operator+=(const FaultCounters& rhs);
  std::uint64_t total() const {
    return transient_slowdowns + jittered_messages + corrupted_deliveries +
           duplicated_messages + reordered_messages + memory_faults + crashes;
  }
  /// One-line "kind=count ..." summary of the non-zero tallies ("clean"
  /// when nothing fired) — for logs and test diagnostics.
  std::string summary() const;
};

class FaultModel {
public:
  /// Disabled model: every hook is a constant-false no-op.
  FaultModel() = default;
  FaultModel(FaultConfig cfg, int nranks);

  bool enabled() const { return enabled_; }
  bool message_faults() const { return message_faults_; }
  bool compute_faults() const { return compute_faults_; }
  bool crash_faults() const { return crash_faults_; }
  const FaultConfig& config() const { return cfg_; }

  /// Re-seed every stream and zero the counters (Machine::run calls this so
  /// repeated runs on one Machine stay reproducible).
  void reset();

  // ---- hooks (each draws from the rank's stream and updates counters) ----
  double compute_factor(int rank);
  double latency_jitter(int rank);
  bool should_corrupt_delivery(int rank);
  bool should_duplicate(int rank);
  bool should_reorder(int rank);
  bool should_memory_fault(int rank);

  /// Flip one uniformly chosen bit of `bytes` (no-op on empty payloads).
  void flip_random_bit(int rank, std::byte* bytes, std::size_t n);
  /// Uniform draw in [0, n) from the rank's stream (for driver-side faults).
  std::uint64_t draw_below(int rank, std::uint64_t n);

  /// Pre-drawn fail-stop time for the rank's own clock; +infinity when the
  /// rank never crashes. Fixed at reset() so every execution order sees the
  /// same crash points.
  double crash_time(int rank) const;
  /// Book the crash of `rank` (the Machine calls this once when it fires).
  void count_crash(int rank);

  const FaultCounters& counters(int rank) const;
  FaultCounters total_counters() const;

private:
  struct Stream {
    Rng rng{0};
    FaultCounters counters;
    bool straggler = false;
    /// This rank's fail-stop time (+inf = never crashes).
    double crash_at = 0.0;
  };

  Stream& stream(int rank);

  FaultConfig cfg_{};
  int nranks_ = 0;
  bool enabled_ = false;
  bool message_faults_ = false;
  bool compute_faults_ = false;
  bool crash_faults_ = false;
  std::vector<Stream> streams_;
};

/// FNV-1a 64-bit hash — the transport's payload checksum.
std::uint64_t fnv1a(const std::byte* data, std::size_t n);

}  // namespace picpar::sim
