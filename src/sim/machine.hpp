// A deterministic simulated multicomputer.
//
// Each simulated processor ("rank") runs the same SPMD program on its own
// OS thread, but a global handoff lock guarantees exactly one rank executes
// at a time, in deterministic round-robin order. Communication calls park
// the calling rank when they must wait; sends are buffered and never block.
//
// Time is virtual: every rank owns a clock in seconds that advances through
// explicit compute charges and through the two-level communication model
// (CostModel). A blocking receive advances the receiver clock to
// max(own clock, message arrival time), the standard per-process virtual
// time rule. Wall-clock execution is sequential, so runs are exactly
// reproducible regardless of host load.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/comm_stats.hpp"
#include "sim/cost_model.hpp"
#include "sim/faults.hpp"
#include "sim/message.hpp"
#include "sim/observer.hpp"
#include "util/sparse_rank.hpp"

namespace picpar::runtime {
class ParallelEngine;  // src/runtime: executes ranks on real cores
}

namespace picpar::sim {

class Comm;

/// Execution policy for Machine::run. Sequential is the reference
/// scheduler (one rank at a time, round-robin). Parallel executes ranks
/// concurrently on real cores through an engine installed by the
/// picpar_runtime library; the deterministic matching layer guarantees
/// bit-identical results between the two modes.
enum class ExecMode {
  kSequential,
  kParallel,
};

/// A rank's virtual-time clock. Written only by the owning rank; in
/// parallel mode other ranks read it concurrently to bound the arrival
/// time of messages the owner might still send. Clocks are monotone, so a
/// stale read is a valid (conservative) lower bound — never an unsafe one.
class VirtualClock {
public:
  VirtualClock() = default;
  VirtualClock(const VirtualClock& o) : v_(o.load()) {}
  VirtualClock& operator=(const VirtualClock& o) {
    store(o.load());
    return *this;
  }
  VirtualClock& operator=(double d) {
    store(d);
    return *this;
  }
  VirtualClock& operator+=(double d) {
    store(load() + d);
    return *this;
  }
  operator double() const { return load(); }
  double load() const { return v_.load(std::memory_order_acquire); }
  void store(double d) { v_.store(d, std::memory_order_release); }

private:
  std::atomic<double> v_{0.0};
};

/// One blocked rank in a deadlock: what it was waiting for.
struct BlockedInfo {
  int rank = 0;
  int want_src = kAnySource;
  int want_tag = kAnyTag;
  std::size_t mailbox_size = 0;
  /// The pinned source this rank waits on has fail-stopped: the wait is a
  /// peer failure, not part of a cycle among live ranks.
  bool want_src_crashed = false;
};

/// One fail-stop crash that actually fired: which rank, and the virtual
/// time on its own clock at which it stopped.
struct CrashRecord {
  int rank = -1;
  double vtime = 0.0;
};

/// Internal control flow: thrown out of a rank's program at its fail-stop
/// point and caught only by the execution engines. Deliberately NOT derived
/// from std::exception so no library-level `catch (const std::exception&)`
/// along the unwind path can swallow a crash.
class RankCrashed {
public:
  RankCrashed(int rank, double vtime) : rank_(rank), vtime_(vtime) {}
  int rank() const { return rank_; }
  double vtime() const { return vtime_; }

private:
  int rank_;
  double vtime_;
};

/// Thrown into a survivor blocked on a dead peer once the peer's lease has
/// expired — the ULFM-style "revoked" notification. The survivor's clock is
/// first advanced to the latest lease expiry, so detection costs virtual
/// time like a real heartbeat timeout. Programs that want to continue catch
/// this and call Comm::agree_on_membership().
class PeerFailedError : public std::runtime_error {
public:
  PeerFailedError(const std::string& what, std::vector<CrashRecord> failed,
                  int observer_rank)
      : std::runtime_error(what),
        failed_(std::move(failed)),
        observer_rank_(observer_rank) {}

  /// Crashes newly acknowledged by the observing rank, sorted by rank id.
  const std::vector<CrashRecord>& failed() const { return failed_; }
  int observer_rank() const { return observer_rank_; }

private:
  std::vector<CrashRecord> failed_;
  int observer_rank_ = -1;
};

/// The agreed outcome of one membership change: every survivor receives an
/// identical copy at an identical virtual time, so post-agreement execution
/// is deterministic regardless of who detected the crash first.
struct MembershipView {
  int epoch = 0;      ///< completed agreements this run (starts at 0)
  double vtime = 0.0; ///< agreed clock value every survivor resumes at
  std::vector<int> survivors;       ///< physical ranks, ascending
  std::vector<CrashRecord> failed;  ///< crashes new in this view, by rank
};

/// Thrown by Machine::run when every live rank is blocked in a receive.
/// Carries the per-rank wait graph (who wants what from whom) so callers
/// and tests can diagnose the cycle structurally, not by parsing what().
class DeadlockError : public std::runtime_error {
public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
  DeadlockError(const std::string& what, std::vector<BlockedInfo> blocked)
      : std::runtime_error(what), blocked_(std::move(blocked)) {}

  const std::vector<BlockedInfo>& blocked() const { return blocked_; }

private:
  std::vector<BlockedInfo> blocked_;
};

/// Thrown when the transport exhausts its retransmit budget on one message
/// (every attempt arrived corrupted). Models an unrecoverable link.
class TransportError : public std::runtime_error {
public:
  explicit TransportError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Receive-side transport counters for one link (indexed by source rank).
struct LinkStats {
  std::uint64_t retries = 0;               ///< retransmissions requested
  std::uint64_t dup_discards = 0;          ///< duplicate deliveries dropped
  std::uint64_t corruptions_detected = 0;  ///< checksum mismatches caught
};

struct RankReport {
  int rank = 0;
  double clock = 0.0;   ///< final virtual time
  CommStats stats;
  FaultCounters faults;          ///< faults injected *by* this rank
  std::vector<LinkStats> links;  ///< per-source transport recovery counters
                                 ///< (empty when no fault model is active)
  bool crashed = false;          ///< this rank fail-stopped mid-run
  double crash_vtime = 0.0;

  LinkStats transport_total() const;
};

struct RunResult {
  std::vector<RankReport> ranks;
  /// Fail-stop crashes that fired, sorted by rank id.
  std::vector<CrashRecord> crashes;
  /// Membership agreements completed (the final epoch).
  int epochs = 0;

  /// Virtual makespan: max over ranks of the final clock.
  double makespan() const;
  /// Max over ranks of total compute seconds.
  double max_compute() const;
  /// makespan - max_compute: the paper's "overhead" metric.
  double overhead() const { return makespan() - max_compute(); }

  /// Summed transport recovery counters over all ranks and links.
  LinkStats transport_total() const;
  /// Summed injected-fault counters over all ranks.
  FaultCounters faults_total() const;
};

class Machine;

/// Interface the parallel runtime installs for the duration of a parallel
/// run. Machine's communication entry points delegate here, so blocking,
/// mailbox locking, and wakeups go through the engine's scheduler instead
/// of the sequential handoff protocol. Everything the hooks may touch on
/// the Machine (candidate selection, commit, enqueue) is shared with the
/// sequential path — the engines differ only in who runs when.
class ParallelRuntimeHooks {
public:
  virtual ~ParallelRuntimeHooks() = default;
  virtual void send(Machine& m, int src, int dst, int tag,
                    std::vector<std::byte> payload) = 0;
  virtual Message recv(Machine& m, int rank, int src, int tag,
                       bool fp_payload) = 0;
  virtual bool iprobe(Machine& m, int rank, int src, int tag) = 0;
  /// Park the rank in the membership barrier until the agreement completes
  /// (see Machine::do_agree); returns the agreed view.
  virtual MembershipView agree(Machine& m, int rank) = 0;
};

class Machine {
public:
  Machine(int nranks, CostModel cost);
  Machine(int nranks, CostModel cost, const FaultConfig& faults);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int size() const { return nranks_; }
  const CostModel& cost() const { return cost_; }

  /// Install (or replace) the fault model. Must not be called mid-run.
  void set_fault_model(const FaultConfig& cfg) {
    faults_ = FaultModel(cfg, nranks_);
  }

  /// Attach a passive observer (nullptr detaches). Not owned; must outlive
  /// any run it observes. Off by default: the fast paths then pay a single
  /// pointer test per event and message metadata stays empty, so runs are
  /// bit-identical to a build without the analysis layer.
  void set_observer(MachineObserver* obs) { observer_ = obs; }
  MachineObserver* observer() const { return observer_; }

  /// Tag-space enforcement (default on): user traffic — any send or
  /// explicit-tag receive issued outside a collective — must use tags >= 0;
  /// negative tags are reserved for collective internals and the transport
  /// control channel. Violations throw std::invalid_argument at the call
  /// site. Turn off only to let an attached analyzer *record* violations
  /// as findings instead of faulting the run.
  void set_strict_tags(bool strict) { strict_tags_ = strict; }
  bool strict_tags() const { return strict_tags_; }
  FaultModel& fault_model() { return faults_; }
  const FaultModel& fault_model() const { return faults_; }

  /// Execution policy. Parallel mode additionally needs an engine: link
  /// picpar_runtime and call runtime::use_parallel(machine) (or let
  /// pic::run_pic plumb it). run() throws std::logic_error if parallel
  /// mode is requested with no engine installed.
  void set_exec_mode(ExecMode mode) { exec_mode_ = mode; }
  ExecMode exec_mode() const { return exec_mode_; }

  /// Install the parallel engine entry point (set by picpar_runtime; the
  /// sim library itself has no thread-pool dependency). nullptr uninstalls.
  void set_parallel_runner(
      std::function<RunResult(Machine&, const std::function<void(Comm&)>&)>
          runner) {
    parallel_runner_ = std::move(runner);
  }

  /// Run an SPMD program to completion on all ranks; returns per-rank
  /// clocks and traffic. Throws DeadlockError on global deadlock and
  /// rethrows the first rank exception otherwise. A Machine can run
  /// several programs in sequence; clocks and stats reset between runs.
  RunResult run(const std::function<void(Comm&)>& program);

  /// Bytes of per-peer transport state (sequence counters, dedup sets,
  /// link counters, crash acks) held by one rank — the machine's share of
  /// the per-rank memory budget. Size-based and a pure function of the
  /// messages the rank has sent/consumed, so the value is identical across
  /// execution modes at the same program point. Callable from the owning
  /// rank's thread during a run (reads only rank-owned state).
  std::size_t rank_transport_bytes(int rank) const;
  /// Number of distinct peers with transport state on `rank` (the "touched
  /// peers" count the sparse tables are bounded by).
  std::size_t rank_transport_peers(int rank) const;

private:
  friend class Comm;
  friend class picpar::runtime::ParallelEngine;

  struct RankState {
    int id = 0;
    VirtualClock clock;
    std::deque<Message> mailbox;
    bool done = false;
    bool waiting = false;
    int want_src = kAnySource;
    int want_tag = kAnyTag;
    CommStats stats;
    Phase phase = Phase::kOther;
    /// >0 while executing inside a Comm collective (RAII-maintained); used
    /// for reserved-tag enforcement and analyzer exemptions.
    int collective_depth = 0;
    /// >0 inside a Comm::OrderInsensitive scope: wildcard receives here are
    /// declared order-independent (results keyed by source, commutative
    /// accumulation), so the analyzer must not flag them as races.
    int unordered_depth = 0;
    std::exception_ptr error;
    // ---- transport state, sparse in *touched* peers ----
    // Entries exist only for peers this rank actually exchanged messages
    // with, so per-rank transport state is O(neighbors), not O(p). All four
    // maps iterate in ascending rank order, matching the dense loops they
    // replaced, so delivery order and every export stay bit-identical.
    util::SparseRankMap<std::uint64_t> next_seq;  ///< per-destination sender seq
    /// Per-source seqs already delivered (duplicate suppression). Strictly
    /// membership-only — insert/count, never iterated — so its hash order
    /// can never leak into delivery order or any export.
    // picpar-lint: allow(unordered-iteration-escape) membership-only set
    util::SparseRankMap<std::unordered_set<std::uint64_t>> seen_seq;
    util::SparseRankMap<LinkStats> links;  ///< per-source counters
    // ---- fail-stop crash / membership state (crash faults only) ----
    bool crashed = false;
    double crash_vtime = 0.0;
    /// Per-peer acknowledgement: an entry for rank k exists once this rank
    /// has observed rank k's crash (via PeerFailedError or an agreement).
    util::SparseRankMap<char> acked_peer;
    int epoch = 0;               ///< membership epoch this rank executes in
    bool in_membership = false;  ///< parked in agree_on_membership
    bool membership_ready = false;
  };

  // --- used by Comm (sequential: only the active rank executes; parallel:
  //     delegated to the engine hooks, which serialize mailbox access) ---
  void do_send(int src, int dst, int tag, std::vector<std::byte> payload);
  Message do_recv(int rank, int src, int tag, bool fp_payload = false);
  bool do_iprobe(int rank, int src, int tag);
  MembershipView do_agree(int rank);
  void charge(int rank, double seconds, bool is_compute);
  LinkStats& link_stats(RankState& rs, int src);
  void recover_corruption(int rank, const Message& m);

  // --- fail-stop crash machinery (shared by both engines) ---

  /// Throw RankCrashed once the rank's own clock reaches its pre-drawn
  /// fail-stop time. Called at every communication and compute boundary, so
  /// crash points are rank-local and execution-order independent.
  void check_crash(int rank);
  /// Engine catch handlers call this (under the engine's lock) when a
  /// RankCrashed unwind reaches them.
  void record_crash(int rank, double vtime);
  /// Lease-expiry detection: acknowledge every not-yet-acked crash on the
  /// calling rank, advance its clock past the latest lease, and throw
  /// PeerFailedError. Runs under the engine's serialization.
  [[noreturn]] void throw_peer_failure(int rank);
  /// Lowest blocked rank that has not yet acknowledged every crash; -1 when
  /// none (stall-resolution step between force-commit and deadlock).
  int pick_failure_victim() const;
  /// Complete the membership barrier once every non-done rank is parked in
  /// it: build the agreed view, advance members to the agreed time, purge
  /// stale-epoch mailboxes, and mark members ready. Returns false when the
  /// barrier is not yet full (or nobody is in it).
  bool try_complete_membership();

  /// Set a rank's phase, firing the observer on an actual change. Phase is
  /// rank-owned state, so this needs no cross-rank synchronization.
  void note_phase(int rank, Phase p) {
    RankState& rs = ranks_[static_cast<std::size_t>(rank)];
    if (observer_ && rs.phase != p) {
      PhaseEvent ev;
      ev.rank = rank;
      ev.from = rs.phase;
      ev.to = p;
      ev.vtime = rs.clock.load();
      observer_->on_phase(ev);
    }
    rs.phase = p;
  }

  /// Emit a named instant on a rank. Reads only rank-owned state and never
  /// touches clocks or stats; a complete no-op without an observer.
  void note_mark(int rank, const char* name, std::int64_t iter, double value) {
    if (!observer_) return;
    const RankState& rs = ranks_[static_cast<std::size_t>(rank)];
    MarkEvent ev;
    ev.rank = rank;
    ev.name = name;
    ev.phase = rs.phase;
    ev.vtime = rs.clock.load();
    ev.iter = iter;
    ev.value = value;
    observer_->on_mark(ev);
  }

  // --- deterministic matching layer (shared by both engines) ---

  /// The pending message a receive would commit: minimum key
  /// (arrival, src, seq, dup) over the per-source flow heads (the lowest
  /// (seq, dup) matching message of each source, which preserves per-link
  /// FIFO under arrival jitter).
  struct Candidate {
    int pos = -1;  ///< index into the receiver's mailbox; -1 = none
    double arrival = 0.0;
    int src = -1;
    std::uint64_t seq = 0;
    bool dup = false;
  };

  /// Select (and, when dedup is active, discard already-seen duplicate
  /// heads from) the receiver's minimal matching candidate.
  Candidate find_candidate(int rank, int src, int tag);
  /// Conservative lower-bound-timestamp rule: may the candidate commit now,
  /// i.e. can no live rank still send a message with a smaller key? Always
  /// true for source-pinned receives (link FIFO fixes the order).
  bool commit_safe(int rank, int src_pattern, const Candidate& c) const;
  /// Deliver the candidate: dequeue, advance the receiver clock, run
  /// transport recovery, book stats, fire the observer.
  Message commit_recv(int rank, const Candidate& c, int src, int tag,
                      bool fp_payload);
  /// Whether a parked receive may proceed (candidate exists and is safe,
  /// source-pinned, or force-committed by stall resolution).
  bool recv_deliverable(int rank);
  /// Global stall: every live rank is blocked and nothing is safe. Returns
  /// the receiver owning the globally minimal candidate (to force-commit:
  /// no rank can send until something commits, so the conservative bound is
  /// vacuously resolved in key order), or -1 = true deadlock.
  int stall_pick();

  /// Sender-side half of do_send: charge, stats, envelope, observer,
  /// fault draws. Fills out[0..1] (a duplicated message yields two) and
  /// returns the count; *new_clock receives the sender's post-charge clock,
  /// which the caller publishes only after enqueueing so concurrent
  /// lower-bound reads stay conservative. *reorder_first reports the fault
  /// model's reorder draw for enqueue positioning.
  int build_send(int src, int dst, int tag, std::vector<std::byte> payload,
                 Message out[2], double* new_clock, bool* reorder_first);
  void enqueue_messages(Message out[2], int n, bool reorder_first);

  // --- sequential scheduler ---
  void yield_from(int rank);       ///< hand execution to the next runnable rank
  int pick_next(int from);         ///< -1: none runnable
  bool runnable(RankState& rs);
  bool match(const Message& m, int src, int tag) const;
  void rank_main(int rank, const std::function<void(Comm&)>& program);
  std::string deadlock_report() const;
  std::vector<BlockedInfo> blocked_ranks() const;

  // --- run scaffolding shared with the parallel engine ---
  void reset_run_state();
  RunResult collect_results();
  RunResult run_sequential(const std::function<void(Comm&)>& program);

  int nranks_;
  CostModel cost_;
  FaultModel faults_;
  MachineObserver* observer_ = nullptr;
  bool strict_tags_ = true;
  std::vector<RankState> ranks_;
  // Wait-graph snapshot taken at the moment deadlock is detected (ranks
  // may unwind and flip to done before run() gets to look).
  std::string deadlock_report_str_;
  std::vector<BlockedInfo> deadlock_blocked_;

  struct Sync;                      // mutex/cv bundle (keeps header light)
  std::unique_ptr<Sync> sync_;
  int current_ = -1;                // active rank; -1 = main thread
  int live_ = 0;                    // ranks not yet done
  bool deadlocked_ = false;
  /// Rank allowed to commit its candidate past the safety rule (stall
  /// resolution); -1 = none. Cleared by the rank at commit.
  int force_commit_rank_ = -1;
  /// Blocked rank elected at a stall to observe peer failure; it wakes,
  /// clears the flag and throws PeerFailedError. -1 = none.
  int fail_recv_rank_ = -1;
  int epoch_ = 0;          ///< completed membership agreements this run
  int crashed_count_ = 0;  ///< ranks that have fail-stopped this run
  /// Crashes already published in some MembershipView (index = rank).
  std::vector<char> view_reported_;
  /// The last completed agreement; members copy it on wakeup. Safe as a
  /// single slot: a new agreement cannot complete until every survivor has
  /// consumed the previous one and re-entered the barrier.
  MembershipView pending_view_;
  /// Per-source flow-head scratch for find_candidate: sorted (src, mailbox
  /// position) pairs over the sources present in the scanned mailbox, so
  /// the scratch is O(distinct senders), not O(p). Capacity persists across
  /// calls. Guarded by the engine's serialization (handoff lock or the
  /// parallel engine mutex).
  std::vector<std::pair<int, int>> scratch_heads_;

  ExecMode exec_mode_ = ExecMode::kSequential;
  std::function<RunResult(Machine&, const std::function<void(Comm&)>&)>
      parallel_runner_;
  /// Non-null only while a parallel run is in flight.
  ParallelRuntimeHooks* prt_ = nullptr;
};

}  // namespace picpar::sim
