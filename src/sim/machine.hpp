// A deterministic simulated multicomputer.
//
// Each simulated processor ("rank") runs the same SPMD program on its own
// OS thread, but a global handoff lock guarantees exactly one rank executes
// at a time, in deterministic round-robin order. Communication calls park
// the calling rank when they must wait; sends are buffered and never block.
//
// Time is virtual: every rank owns a clock in seconds that advances through
// explicit compute charges and through the two-level communication model
// (CostModel). A blocking receive advances the receiver clock to
// max(own clock, message arrival time), the standard per-process virtual
// time rule. Wall-clock execution is sequential, so runs are exactly
// reproducible regardless of host load.
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/comm_stats.hpp"
#include "sim/cost_model.hpp"
#include "sim/message.hpp"

namespace picpar::sim {

class Comm;

/// Thrown by Machine::run when every live rank is blocked in a receive.
class DeadlockError : public std::runtime_error {
public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

struct RankReport {
  int rank = 0;
  double clock = 0.0;   ///< final virtual time
  CommStats stats;
};

struct RunResult {
  std::vector<RankReport> ranks;

  /// Virtual makespan: max over ranks of the final clock.
  double makespan() const;
  /// Max over ranks of total compute seconds.
  double max_compute() const;
  /// makespan - max_compute: the paper's "overhead" metric.
  double overhead() const { return makespan() - max_compute(); }
};

class Machine {
public:
  Machine(int nranks, CostModel cost);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int size() const { return nranks_; }
  const CostModel& cost() const { return cost_; }

  /// Run an SPMD program to completion on all ranks; returns per-rank
  /// clocks and traffic. Throws DeadlockError on global deadlock and
  /// rethrows the first rank exception otherwise. A Machine can run
  /// several programs in sequence; clocks and stats reset between runs.
  RunResult run(const std::function<void(Comm&)>& program);

private:
  friend class Comm;

  struct RankState {
    int id = 0;
    double clock = 0.0;
    std::deque<Message> mailbox;
    bool done = false;
    bool waiting = false;
    int want_src = kAnySource;
    int want_tag = kAnyTag;
    CommStats stats;
    Phase phase = Phase::kOther;
    std::exception_ptr error;
  };

  // --- used by Comm (always called while holding the handoff lock
  //     implicitly: only the active rank executes) ---
  void do_send(int src, int dst, int tag, std::vector<std::byte> payload);
  Message do_recv(int rank, int src, int tag);
  bool do_iprobe(int rank, int src, int tag) const;
  void charge(int rank, double seconds, bool is_compute);

  // --- scheduler ---
  void yield_from(int rank);       ///< hand execution to the next runnable rank
  int pick_next(int from) const;   ///< -1: none runnable
  bool runnable(const RankState& rs) const;
  bool match(const Message& m, int src, int tag) const;
  void rank_main(int rank, const std::function<void(Comm&)>& program);
  std::string deadlock_report() const;

  int nranks_;
  CostModel cost_;
  std::vector<RankState> ranks_;

  struct Sync;                      // mutex/cv bundle (keeps header light)
  std::unique_ptr<Sync> sync_;
  int current_ = -1;                // active rank; -1 = main thread
  int live_ = 0;                    // ranks not yet done
  bool deadlocked_ = false;
};

}  // namespace picpar::sim
