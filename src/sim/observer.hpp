// Passive observation hooks for the simulated machine.
//
// A MachineObserver sees every point-to-point event (collectives are built
// from point-to-point messages, so it sees those too) in the exact order
// the deterministic scheduler executes them. The handoff lock guarantees
// only one rank runs at a time, so callbacks are serialized — observers
// need no internal locking.
//
// The observer may stamp metadata onto an outgoing Message (vclock); the
// machine itself never reads those fields, so an installed observer cannot
// change virtual time, matching, or traffic accounting. With no observer
// installed the hooks cost one pointer test per event.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/comm_stats.hpp"
#include "sim/message.hpp"

namespace picpar::sim {

/// Context of one send, captured after the sender was charged.
struct SendEvent {
  int src = 0;
  int dst = 0;
  int tag = 0;
  std::size_t bytes = 0;
  Phase phase = Phase::kOther;  ///< sender's phase at the send
  int collective_depth = 0;     ///< >0: issued from inside a collective
  double vtime = 0.0;           ///< sender clock after the send charge
};

/// Context of one completed (matched) receive.
struct RecvEvent {
  int rank = 0;
  int want_src = kAnySource;  ///< posted source pattern
  int want_tag = kAnyTag;     ///< posted tag pattern
  bool fp_payload = false;    ///< receive was typed as floating point
  bool order_insensitive = false;  ///< annotated via Comm::OrderInsensitive
  Phase phase = Phase::kOther;     ///< receiver's phase at the receive
  int collective_depth = 0;
  double vtime = 0.0;  ///< receiver clock after delivery
};

/// A rank switched simulation phase (Comm::set_phase with a new value).
struct PhaseEvent {
  int rank = 0;
  Phase from = Phase::kOther;
  Phase to = Phase::kOther;
  double vtime = 0.0;  ///< rank clock at the switch
};

/// A named instant emitted by the program (Comm::mark) or the transport
/// layer. Marks never touch clocks, matching, or stats — they exist only
/// for observers, and emitting one is a no-op when no observer is set.
struct MarkEvent {
  int rank = 0;
  const char* name = "";  ///< string literal; observers that buffer must copy
  Phase phase = Phase::kOther;  ///< rank's phase when the mark fired
  double vtime = 0.0;           ///< rank clock when the mark fired
  std::int64_t iter = 0;        ///< caller-defined slot (e.g. PIC iteration)
  double value = 0.0;           ///< caller-defined payload
};

class MachineObserver {
public:
  virtual ~MachineObserver() = default;

  /// A run is starting on `nranks` ranks; per-run state should reset here.
  virtual void on_run_start(int nranks) = 0;

  /// `m` is about to be enqueued at the destination. The observer may write
  /// m.vclock; everything else on the message is read-only by convention.
  virtual void on_send(Message& m, const SendEvent& e) = 0;

  /// `m` was matched and removed from the mailbox; `mailbox` holds the
  /// messages still pending at the receiver (candidates the posted receive
  /// could also have matched are a subset of these).
  virtual void on_recv(const Message& m, const RecvEvent& e,
                       const std::deque<Message>& mailbox) = 0;

  /// Rank `e.rank` changed phase. Fires only on an actual change, never for
  /// a redundant set_phase to the current value. Default: no-op.
  virtual void on_phase(const PhaseEvent& e) { (void)e; }

  /// A named instant fired on `e.rank` (see MarkEvent). Default: no-op.
  virtual void on_mark(const MarkEvent& e) { (void)e; }

  /// The run completed normally (all ranks done, no error, no deadlock);
  /// `mailboxes[r]` is rank r's final mailbox — messages sent but never
  /// received — and `final_clocks[r]` its final virtual time. This is the
  /// quiescence point where an observer that buffers per-rank state merges
  /// it in deterministic rank order; the *set* of leftover messages is
  /// schedule-independent even though their physical queue order is not.
  /// Default: no-op.
  virtual void on_run_end(
      const std::vector<const std::deque<Message>*>& mailboxes,
      const std::vector<double>& final_clocks) {
    (void)mailboxes;
    (void)final_clocks;
  }
};

/// Fans every callback out to several observers in registration order, so
/// more than one (e.g. the analyzer plus the tracer) can watch one run
/// through the machine's single observer slot.
class ObserverChain final : public MachineObserver {
public:
  void add(MachineObserver* obs) {
    if (obs) observers_.push_back(obs);
  }
  bool empty() const { return observers_.empty(); }
  std::size_t size() const { return observers_.size(); }

  void on_run_start(int nranks) override {
    for (auto* o : observers_) o->on_run_start(nranks);
  }
  void on_send(Message& m, const SendEvent& e) override {
    for (auto* o : observers_) o->on_send(m, e);
  }
  void on_recv(const Message& m, const RecvEvent& e,
               const std::deque<Message>& mailbox) override {
    for (auto* o : observers_) o->on_recv(m, e, mailbox);
  }
  void on_phase(const PhaseEvent& e) override {
    for (auto* o : observers_) o->on_phase(e);
  }
  void on_mark(const MarkEvent& e) override {
    for (auto* o : observers_) o->on_mark(e);
  }
  void on_run_end(const std::vector<const std::deque<Message>*>& mailboxes,
                  const std::vector<double>& final_clocks) override {
    for (auto* o : observers_) o->on_run_end(mailboxes, final_clocks);
  }

private:
  std::vector<MachineObserver*> observers_;
};

}  // namespace picpar::sim
