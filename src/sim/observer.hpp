// Passive observation hooks for the simulated machine.
//
// A MachineObserver sees every point-to-point event (collectives are built
// from point-to-point messages, so it sees those too) in the exact order
// the deterministic scheduler executes them. The handoff lock guarantees
// only one rank runs at a time, so callbacks are serialized — observers
// need no internal locking.
//
// The observer may stamp metadata onto an outgoing Message (vclock); the
// machine itself never reads those fields, so an installed observer cannot
// change virtual time, matching, or traffic accounting. With no observer
// installed the hooks cost one pointer test per event.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "sim/comm_stats.hpp"
#include "sim/message.hpp"

namespace picpar::sim {

/// Context of one send, captured after the sender was charged.
struct SendEvent {
  int src = 0;
  int dst = 0;
  int tag = 0;
  std::size_t bytes = 0;
  Phase phase = Phase::kOther;  ///< sender's phase at the send
  int collective_depth = 0;     ///< >0: issued from inside a collective
  double vtime = 0.0;           ///< sender clock after the send charge
};

/// Context of one completed (matched) receive.
struct RecvEvent {
  int rank = 0;
  int want_src = kAnySource;  ///< posted source pattern
  int want_tag = kAnyTag;     ///< posted tag pattern
  bool fp_payload = false;    ///< receive was typed as floating point
  bool order_insensitive = false;  ///< annotated via Comm::OrderInsensitive
  Phase phase = Phase::kOther;     ///< receiver's phase at the receive
  int collective_depth = 0;
  double vtime = 0.0;  ///< receiver clock after delivery
};

class MachineObserver {
public:
  virtual ~MachineObserver() = default;

  /// A run is starting on `nranks` ranks; per-run state should reset here.
  virtual void on_run_start(int nranks) = 0;

  /// `m` is about to be enqueued at the destination. The observer may write
  /// m.vclock; everything else on the message is read-only by convention.
  virtual void on_send(Message& m, const SendEvent& e) = 0;

  /// `m` was matched and removed from the mailbox; `mailbox` holds the
  /// messages still pending at the receiver (candidates the posted receive
  /// could also have matched are a subset of these).
  virtual void on_recv(const Message& m, const RecvEvent& e,
                       const std::deque<Message>& mailbox) = 0;

  /// The run completed normally (all ranks done, no error, no deadlock);
  /// `mailboxes[r]` is rank r's final mailbox — messages sent but never
  /// received. This is the quiescence point where an observer that buffers
  /// per-rank state merges it in deterministic rank order; the *set* of
  /// leftover messages is schedule-independent even though their physical
  /// queue order is not. Default: no-op.
  virtual void on_run_end(
      const std::vector<const std::deque<Message>*>& mailboxes) {
    (void)mailboxes;
  }
};

}  // namespace picpar::sim
