#include "sim/comm_stats.hpp"

#include <sstream>

namespace picpar::sim {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kOther: return "other";
    case Phase::kScatter: return "scatter";
    case Phase::kFieldSolve: return "field_solve";
    case Phase::kGather: return "gather";
    case Phase::kPush: return "push";
    case Phase::kRedistribute: return "redistribute";
  }
  return "?";
}

PhaseCounters PhaseCounters::operator-(const PhaseCounters& rhs) const {
  PhaseCounters r;
  r.msgs_sent = msgs_sent - rhs.msgs_sent;
  r.bytes_sent = bytes_sent - rhs.bytes_sent;
  r.msgs_recv = msgs_recv - rhs.msgs_recv;
  r.bytes_recv = bytes_recv - rhs.bytes_recv;
  r.comm_seconds = comm_seconds - rhs.comm_seconds;
  r.compute_seconds = compute_seconds - rhs.compute_seconds;
  return r;
}

PhaseCounters& PhaseCounters::operator+=(const PhaseCounters& rhs) {
  msgs_sent += rhs.msgs_sent;
  bytes_sent += rhs.bytes_sent;
  msgs_recv += rhs.msgs_recv;
  bytes_recv += rhs.bytes_recv;
  comm_seconds += rhs.comm_seconds;
  compute_seconds += rhs.compute_seconds;
  return *this;
}

PhaseCounters CommStats::total() const {
  PhaseCounters t;
  for (const auto& c : counters_) t += c;
  return t;
}

CommStats CommStats::diff(const CommStats& earlier) const {
  CommStats d;
  for (int i = 0; i < kNumPhases; ++i)
    d.counters_[i] = counters_[i] - earlier.counters_[i];
  return d;
}

std::string CommStats::summary() const {
  std::ostringstream os;
  for (int i = 0; i < kNumPhases; ++i) {
    const auto& c = counters_[i];
    if (c.msgs_sent == 0 && c.msgs_recv == 0 && c.compute_seconds == 0.0)
      continue;
    os << phase_name(static_cast<Phase>(i)) << ": sent " << c.msgs_sent
       << " msgs/" << c.bytes_sent << " B, recv " << c.msgs_recv << " msgs/"
       << c.bytes_recv << " B, comm " << c.comm_seconds << " s, compute "
       << c.compute_seconds << " s\n";
  }
  return os.str();
}

}  // namespace picpar::sim
