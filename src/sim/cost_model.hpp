// The two-level machine model of Section 4 of the paper:
//
//   * a unit of local computation costs delta,
//   * an off-processor message costs a start-up overhead tau plus
//     bytes * mu, independent of distance and congestion.
//
// All virtual time in the simulator derives from these three constants.
#pragma once

namespace picpar::sim {

struct CostModel {
  /// Message start-up overhead in seconds.
  double tau = 100e-6;
  /// Per-byte transfer time in seconds (1/mu is the bandwidth).
  double mu = 0.1e-6;
  /// Per abstract compute operation, in seconds.
  double delta = 0.3e-6;
  /// Optional receive-side copy cost per byte (0 = transfer charged once,
  /// on the sender, as in the paper's model).
  double recv_copy_mu = 0.0;

  /// Thinking Machines CM-5 without vector units (the paper's testbed):
  /// ~33 MHz SPARC nodes, ~80 us message latency, ~20 MB/s raw per side
  /// (CPU-driven CMMD charges both sender and receiver, so effective
  /// point-to-point bandwidth is ~10 MB/s).
  static CostModel cm5() { return CostModel{80e-6, 0.05e-6, 0.45e-6, 0.05e-6}; }

  /// A contemporary commodity cluster: ~2 us latency, ~10 GB/s, ~3 GFLOP/s
  /// scalar. Used by ablation benches to show how the trade-offs shift when
  /// compute gets cheap relative to communication.
  static CostModel modern_cluster() {
    return CostModel{2e-6, 1e-10, 0.3e-9, 0.0};
  }

  /// Free communication and computation — pure-algorithm runs where only
  /// counts (messages, bytes, particle moves) matter.
  static CostModel zero() { return CostModel{0.0, 0.0, 0.0, 0.0}; }

  double message_cost(std::size_t bytes) const {
    return tau + static_cast<double>(bytes) * mu;
  }
};

}  // namespace picpar::sim
