// Per-rank traffic accounting, attributed to PIC phases. The paper reports
// per-phase maxima over ranks (Figs 18-19: max bytes / max messages in the
// scatter phase), so counters are kept per phase and snapshots can be
// diffed across iterations.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace picpar::sim {

enum class Phase : int {
  kOther = 0,
  kScatter,
  kFieldSolve,
  kGather,
  kPush,
  kRedistribute,
};

inline constexpr int kNumPhases = 6;

const char* phase_name(Phase p);

struct PhaseCounters {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_recv = 0;
  std::uint64_t bytes_recv = 0;
  /// Virtual seconds spent in communication calls attributed to this phase.
  double comm_seconds = 0.0;
  /// Virtual seconds of charged computation attributed to this phase.
  double compute_seconds = 0.0;

  PhaseCounters operator-(const PhaseCounters& rhs) const;
  PhaseCounters& operator+=(const PhaseCounters& rhs);
};

class CommStats {
public:
  PhaseCounters& phase(Phase p) { return counters_[static_cast<int>(p)]; }
  const PhaseCounters& phase(Phase p) const {
    return counters_[static_cast<int>(p)];
  }

  PhaseCounters total() const;

  /// Element-wise difference (this - earlier), phase by phase.
  CommStats diff(const CommStats& earlier) const;

  std::string summary() const;

private:
  std::array<PhaseCounters, kNumPhases> counters_{};
};

}  // namespace picpar::sim
