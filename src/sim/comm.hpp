// Per-rank communication handle — the MPI-like API simulated programs use.
//
// Point-to-point sends are buffered and never block; receives block until a
// matching message exists. Collectives are built from point-to-point
// messages (binomial trees and rings), so their virtual-time cost emerges
// from the same two-level model as everything else.
//
// Tag space: user code must use tags >= 0. Negative tags are reserved for
// collectives so they never match user receives. This is a checked
// invariant, not a convention: sends and explicit-tag receives issued
// outside a collective with a negative tag throw std::invalid_argument
// (see Machine::set_strict_tags to trade the throw for analyzer findings).
#pragma once

#include <algorithm>
#include <cstring>
#include <numeric>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/machine.hpp"

namespace picpar::sim {

class Comm {
public:
  Comm(Machine* machine, int rank)
      : machine_(machine), rank_(rank), grank_(rank),
        gsize_(machine->size()) {}

  /// Rank and size are *group-relative*: initially the group is the whole
  /// machine (identity), and after agree_on_membership() it shrinks to the
  /// survivors — rank() is this rank's index among them, and every src/dst
  /// passed to point-to-point calls or assumed by collectives is a group
  /// index. world_rank() is the physical rank, stable across shrinks.
  int rank() const { return grank_; }
  int size() const { return gsize_; }
  int world_rank() const { return rank_; }
  const CostModel& cost() const { return machine_->cost(); }

  /// Physical ranks of the current group, ascending (empty vector = the
  /// identity group over the whole machine, materialized on demand).
  std::vector<int> group() const {
    if (!group_.empty()) return group_;
    std::vector<int> g(static_cast<std::size_t>(gsize_));
    for (int i = 0; i < gsize_; ++i) g[static_cast<std::size_t>(i)] = i;
    return g;
  }

  /// Collective over all live ranks: block until every survivor has entered,
  /// then shrink this Comm's group to the agreed survivor set. Returns the
  /// identical view every survivor receives at the identical virtual time.
  /// Typically called from a PeerFailedError handler to start recovery.
  MembershipView agree_on_membership() {
    const MembershipView v = machine_->do_agree(rank_);
    group_ = v.survivors;
    gsize_ = static_cast<int>(group_.size());
    grank_ = gidx(rank_);
    return v;
  }

  /// Current virtual time of this rank, in seconds.
  double clock() const { return machine_->ranks_[rank_].clock; }

  /// Charge local computation time directly.
  void charge(double seconds) { machine_->charge(rank_, seconds, true); }
  /// Charge n abstract operations at delta each.
  void charge_ops(std::uint64_t n) {
    charge(static_cast<double>(n) * cost().delta);
  }

  /// Attribute subsequent traffic and charges to a PIC phase. An attached
  /// observer sees each actual change as a PhaseEvent.
  void set_phase(Phase p) { machine_->note_phase(rank_, p); }
  Phase phase() const { return machine_->ranks_[rank_].phase; }

  /// Emit a named instant into an attached observer's event stream (e.g. a
  /// redistribution decision, a per-iteration sample). Free when no
  /// observer is installed; never affects clocks, matching, or stats, so a
  /// program may mark unconditionally. `name` must be a string literal (or
  /// otherwise outlive the callback); `iter` and `value` are caller-defined.
  void mark(const char* name, std::int64_t iter = 0, double value = 0.0) {
    machine_->note_mark(rank_, name, iter, value);
  }

  const CommStats& stats() const { return machine_->ranks_[rank_].stats; }

  /// Bytes of per-peer transport state (sequence counters, dedup sets, link
  /// counters, crash acks) the machine holds for this rank. Sparse in the
  /// peers actually touched and deterministic across execution modes, so
  /// programs may fold it into exported metrics.
  std::size_t memory_bytes() const {
    return machine_->rank_transport_bytes(rank_);
  }
  /// Distinct peers with transport state on this rank (what the sparse
  /// tables are bounded by, independent of world size).
  std::size_t transport_peers() const {
    return machine_->rank_transport_peers(rank_);
  }

  /// RAII annotation for user code: wildcard receives inside the scope are
  /// declared order-insensitive — the caller keys results by source (or
  /// accumulates commutatively), so delivery order cannot change the
  /// outcome. The happens-before analyzer suppresses message-race and
  /// reduction-order findings for receives completed under this scope;
  /// everything else (tag checks, phase attribution, clocks) still applies.
  class OrderInsensitive {
  public:
    explicit OrderInsensitive(Comm& c) : comm_(c) {
      ++comm_.machine_->ranks_[comm_.rank_].unordered_depth;
    }
    ~OrderInsensitive() {
      --comm_.machine_->ranks_[comm_.rank_].unordered_depth;
    }
    OrderInsensitive(const OrderInsensitive&) = delete;
    OrderInsensitive& operator=(const OrderInsensitive&) = delete;

  private:
    Comm& comm_;
  };

  /// Fault model active on the underlying machine (disabled by default).
  /// Drivers use it to inject host-side faults into their own state and to
  /// read per-rank injection counters.
  FaultModel& fault_model() { return machine_->faults_; }
  const FaultModel& fault_model() const { return machine_->faults_; }

  // ---- point to point (src/dst are group indices) ----

  void send_bytes(int dst, int tag, std::vector<std::byte> payload) {
    machine_->do_send(rank_, phys(dst), tag, std::move(payload));
  }

  template <typename T>
  void send(int dst, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> buf(data.size_bytes());
    if (!data.empty()) std::memcpy(buf.data(), data.data(), data.size_bytes());
    send_bytes(dst, tag, std::move(buf));
  }

  template <typename T>
  void send(int dst, int tag, const std::vector<T>& data) {
    send(dst, tag, std::span<const T>(data));
  }

  template <typename T>
  void send_value(int dst, int tag, const T& v) {
    send(dst, tag, std::span<const T>(&v, 1));
  }

  /// Blocking receive; returns the raw message (src/tag/payload) with the
  /// source translated to a group index.
  Message recv_msg(int src = kAnySource, int tag = kAnyTag) {
    Message m = machine_->do_recv(
        rank_, src == kAnySource ? kAnySource : phys(src), tag);
    m.src = gidx(m.src);
    return m;
  }

  template <typename T>
  std::vector<T> recv(int src = kAnySource, int tag = kAnyTag,
                      int* actual_src = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    // The element type is surfaced to the analyzer: a wildcard receive of
    // floating-point data feeding an accumulation is how reduction-order
    // sensitivity enters a program.
    Message m =
        machine_->do_recv(rank_, src == kAnySource ? kAnySource : phys(src),
                          tag, std::is_floating_point_v<T>);
    if (actual_src) *actual_src = gidx(m.src);
    if (m.payload.size() % sizeof(T) != 0)
      throw std::runtime_error("recv: payload size not a multiple of sizeof(T)");
    std::vector<T> out(m.payload.size() / sizeof(T));
    if (!out.empty())
      std::memcpy(out.data(), m.payload.data(), m.payload.size());
    return out;
  }

  template <typename T>
  T recv_value(int src = kAnySource, int tag = kAnyTag) {
    auto v = recv<T>(src, tag);
    if (v.size() != 1) throw std::runtime_error("recv_value: expected 1 element");
    return v[0];
  }

  /// Non-blocking probe for a matching message.
  bool iprobe(int src = kAnySource, int tag = kAnyTag) const {
    return machine_->do_iprobe(
        rank_, src == kAnySource ? kAnySource : phys(src), tag);
  }

  // ---- collectives (all ranks must call with matching arguments) ----

  /// Dissemination barrier: ceil(log2 p) rounds of pairwise messages.
  void barrier();

  /// Binomial-tree broadcast from root.
  template <typename T>
  std::vector<T> bcast(std::vector<T> data, int root);

  template <typename T>
  T bcast_value(T v, int root) {
    std::vector<T> d{v};
    return bcast(std::move(d), root)[0];
  }

  /// Binomial-tree reduce to root, then broadcast (element-wise op).
  template <typename T, typename Op>
  std::vector<T> allreduce(std::vector<T> v, Op op);

  template <typename T>
  T allreduce_sum(T v) {
    std::vector<T> d{v};
    return allreduce(std::move(d), [](T a, T b) { return a + b; })[0];
  }
  template <typename T>
  T allreduce_max(T v) {
    std::vector<T> d{v};
    return allreduce(std::move(d), [](T a, T b) { return a > b ? a : b; })[0];
  }
  template <typename T>
  T allreduce_min(T v) {
    std::vector<T> d{v};
    return allreduce(std::move(d), [](T a, T b) { return a < b ? a : b; })[0];
  }

  /// Exclusive prefix sum over ranks (rank 0 gets T{}).
  template <typename T>
  T exscan_sum(T v);

  /// Allgather of one value per rank; result indexed by rank.
  template <typename T>
  std::vector<T> allgather(const T& v);

  /// Allgather of a variable-length block per rank ("global concatenation"
  /// in the paper); result is the concatenation in rank order. offsets[r]
  /// gives the start of rank r's block. Implemented as a binomial-tree
  /// gather to rank 0 followed by a binomial broadcast — O(log p) message
  /// start-ups, matching the CM-5's fast control-network concatenation.
  template <typename T>
  std::vector<T> allgatherv(const std::vector<T>& mine,
                            std::vector<std::size_t>* offsets = nullptr);

private:
  /// allgatherv workhorse on raw bytes. Returns the per-rank blocks.
  std::vector<std::vector<std::byte>> allgatherv_bytes(
      std::vector<std::byte> mine);

public:

  /// The paper's All-to-many exchange (Fig 12): every rank supplies one
  /// buffer per destination (empty allowed); returns one buffer per source.
  /// Only non-empty buffers travel, one message per destination — the
  /// "communication coalescing" optimization of Section 3.2. Receive
  /// counts are agreed with a log(p) allreduce of per-destination message
  /// counts (the sparse equivalent of the paper's "global concatenate the
  /// myId row of table"; concatenating the full p-by-p table, which the
  /// CM-5's control network did in hardware, would cost O(p^2) bytes
  /// through the broadcast root under the point-to-point model).
  template <typename T>
  std::vector<std::vector<T>> all_to_many(std::vector<std::vector<T>> send);

  /// Sparse All-to-many: the same exchange expressed as (destination,
  /// buffer) pairs, so a rank that talks to k neighbors allocates O(k)
  /// instead of one buffer per world rank. Destinations may arrive in any
  /// order (sorted internally; duplicates are an error); empty buffers are
  /// legal and travel nowhere. Returns (source, buffer) pairs in ascending
  /// source order, one per non-empty delivery (the self pair included when
  /// non-empty). Wire-identical to the dense overload — same counts
  /// allreduce, same ascending-destination message sequence — which
  /// delegates here; the only O(p) allocation left is the count vector
  /// inside the collective itself.
  template <typename T>
  std::vector<std::pair<int, std::vector<T>>> all_to_many(
      std::vector<std::pair<int, std::vector<T>>> send);

private:
  /// RAII guard marking execution inside a collective. While a rank's
  /// collective depth is positive, reserved (negative) tags are legal and
  /// the analyzer treats the traffic as verified library internals (e.g.
  /// all_to_many's wildcard receives are source-keyed, hence benign).
  class CollectiveScope {
  public:
    explicit CollectiveScope(Comm& c) : comm_(c) {
      ++comm_.machine_->ranks_[comm_.rank_].collective_depth;
    }
    ~CollectiveScope() {
      --comm_.machine_->ranks_[comm_.rank_].collective_depth;
    }
    CollectiveScope(const CollectiveScope&) = delete;
    CollectiveScope& operator=(const CollectiveScope&) = delete;

  private:
    Comm& comm_;
  };

  // Reserved (negative) tag bases for collectives.
  static constexpr int kTagBarrier = -100;
  static constexpr int kTagBcast = -200;
  static constexpr int kTagReduce = -300;
  static constexpr int kTagGatherRing = -400;
  static constexpr int kTagAllToMany = -500;
  static constexpr int kTagScan = -600;

public:
  /// Reserved control channel for the transport's retransmit protocol
  /// (NACK + redelivery). Control traffic is accounted against the
  /// receiving rank's current phase; see Machine::recover_corruption.
  static constexpr int kTagRetransmit = -900;

private:
  /// Group index -> physical rank (identity while group_ is empty).
  int phys(int g) const {
    if (group_.empty()) return g;
    if (g < 0 || g >= gsize_)
      throw std::out_of_range("comm: group rank " + std::to_string(g) +
                              " outside the current group of " +
                              std::to_string(gsize_));
    return group_[static_cast<std::size_t>(g)];
  }
  /// Physical rank -> group index; -1 when not a member.
  int gidx(int p) const {
    if (group_.empty()) return p;
    const auto it = std::lower_bound(group_.begin(), group_.end(), p);
    if (it == group_.end() || *it != p) return -1;
    return static_cast<int>(it - group_.begin());
  }

  Machine* machine_;
  int rank_;   ///< physical (world) rank; indexes machine state
  /// Survivor group after agree_on_membership(); empty = identity.
  std::vector<int> group_;
  int grank_;  ///< this rank's index within the group
  int gsize_;  ///< group size
};

// ---- collective implementations ----

template <typename T>
std::vector<T> Comm::bcast(std::vector<T> data, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  if (p == 1) return data;
  CollectiveScope scope(*this);
  // Rotate ranks so the tree is rooted at `root` (group indices throughout).
  const int vrank = (rank() - root + p) % p;
  // Walk masks upward to find the level at which we receive from our
  // parent, then forward downward to each child (standard binomial tree).
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int parent = (vrank - mask + root) % p;
      data = recv<T>(parent, kTagBcast);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p) send((vrank + mask + root) % p, kTagBcast, data);
    mask >>= 1;
  }
  return data;
}

template <typename T, typename Op>
std::vector<T> Comm::allreduce(std::vector<T> v, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  if (p == 1) return v;
  CollectiveScope scope(*this);
  // Binomial-tree reduction to group rank 0.
  const int r = rank();
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((r & mask) != 0) {
      send(r & ~mask, kTagReduce, v);
      break;
    }
    const int partner = r | mask;
    if (partner < p) {
      auto other = recv<T>(partner, kTagReduce);
      if (other.size() != v.size())
        throw std::runtime_error("allreduce: mismatched vector lengths");
      for (std::size_t i = 0; i < v.size(); ++i) v[i] = op(v[i], other[i]);
    }
  }
  return bcast(std::move(v), 0);
}

template <typename T>
T Comm::exscan_sum(T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  // Linear chain: rank r sends its inclusive prefix to r+1. O(p) steps but
  // simple and exact; used only in setup paths.
  CollectiveScope scope(*this);
  T prefix{};
  const int r = rank();
  if (r > 0) prefix = recv_value<T>(r - 1, kTagScan);
  if (r + 1 < size()) send_value(r + 1, kTagScan, static_cast<T>(prefix + v));
  return prefix;
}

template <typename T>
std::vector<T> Comm::allgather(const T& v) {
  auto cat = allgatherv(std::vector<T>{v});
  return cat;
}

template <typename T>
std::vector<T> Comm::allgatherv(const std::vector<T>& mine,
                                std::vector<std::size_t>* offsets) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> raw(mine.size() * sizeof(T));
  if (!mine.empty()) std::memcpy(raw.data(), mine.data(), raw.size());
  auto blocks = allgatherv_bytes(std::move(raw));

  const int p = size();
  std::vector<T> out;
  if (offsets) offsets->assign(static_cast<std::size_t>(p), 0);
  std::size_t total_bytes = 0;
  for (const auto& b : blocks) total_bytes += b.size();
  if (total_bytes % sizeof(T) != 0)
    throw std::runtime_error("allgatherv: byte count not multiple of sizeof(T)");
  out.resize(total_bytes / sizeof(T));
  std::size_t pos = 0;
  for (int r = 0; r < p; ++r) {
    const auto& b = blocks[static_cast<std::size_t>(r)];
    if (offsets) (*offsets)[static_cast<std::size_t>(r)] = pos / sizeof(T);
    if (!b.empty())
      std::memcpy(reinterpret_cast<std::byte*>(out.data()) + pos, b.data(),
                  b.size());
    pos += b.size();
  }
  return out;
}

template <typename T>
std::vector<std::vector<T>> Comm::all_to_many(
    std::vector<std::vector<T>> send_bufs) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  if (static_cast<int>(send_bufs.size()) != p)
    throw std::invalid_argument("all_to_many: need one buffer per rank");
  // Delegate to the sparse exchange: non-empty buffers become (dest,
  // buffer) pairs in ascending destination order, which is exactly the
  // dense send order, so the wire traffic is unchanged.
  std::vector<std::pair<int, std::vector<T>>> pairs;
  for (int d = 0; d < p; ++d)
    if (!send_bufs[static_cast<std::size_t>(d)].empty())
      pairs.emplace_back(d, std::move(send_bufs[static_cast<std::size_t>(d)]));
  auto recv_pairs = all_to_many(std::move(pairs));
  std::vector<std::vector<T>> recv_bufs(static_cast<std::size_t>(p));
  for (auto& [src, buf] : recv_pairs)
    recv_bufs[static_cast<std::size_t>(src)] = std::move(buf);
  return recv_bufs;
}

template <typename T>
std::vector<std::pair<int, std::vector<T>>> Comm::all_to_many(
    std::vector<std::pair<int, std::vector<T>>> send_pairs) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = size();
  std::sort(send_pairs.begin(), send_pairs.end(),
            [](const std::pair<int, std::vector<T>>& a,
               const std::pair<int, std::vector<T>>& b) {
              return a.first < b.first;
            });
  for (std::size_t i = 0; i < send_pairs.size(); ++i) {
    const int d = send_pairs[i].first;
    if (d < 0 || d >= p)
      throw std::invalid_argument("all_to_many: destination " +
                                  std::to_string(d) +
                                  " outside the current group");
    if (i > 0 && send_pairs[i - 1].first == d)
      throw std::invalid_argument("all_to_many: duplicate destination " +
                                  std::to_string(d));
  }
  CollectiveScope scope(*this);

  // Agree on receive counts: element d of the allreduced vector is the
  // number of coalesced messages headed for rank d. This count vector is
  // the one deliberately dense O(p) table of the exchange — it lives only
  // for the duration of the collective.
  const int r = rank();
  std::vector<std::uint32_t> incoming(static_cast<std::size_t>(p), 0);
  for (const auto& [d, buf] : send_pairs)
    if (d != r && !buf.empty()) incoming[static_cast<std::size_t>(d)] = 1;
  incoming = allreduce(std::move(incoming),
                       [](std::uint32_t a, std::uint32_t b) { return a + b; });
  const std::uint32_t expected = incoming[static_cast<std::size_t>(r)];

  std::vector<std::pair<int, std::vector<T>>> recv_pairs;
  recv_pairs.reserve(static_cast<std::size_t>(expected) + 1);
  // Local "self-message" costs nothing.
  for (auto& [d, buf] : send_pairs)
    if (d == r && !buf.empty()) recv_pairs.emplace_back(r, std::move(buf));

  // Post all sends (buffered, ascending destination), then receive the
  // promised message count; each source sends at most one message,
  // identified by its origin.
  for (auto& [d, buf] : send_pairs) {
    if (d == r || buf.empty()) continue;
    send(d, kTagAllToMany, buf);
  }
  for (std::uint32_t k = 0; k < expected; ++k) {
    int src = kAnySource;
    auto data = recv<T>(kAnySource, kTagAllToMany, &src);
    recv_pairs.emplace_back(src, std::move(data));
  }
  std::sort(recv_pairs.begin(), recv_pairs.end(),
            [](const std::pair<int, std::vector<T>>& a,
               const std::pair<int, std::vector<T>>& b) {
              return a.first < b.first;
            });
  return recv_pairs;
}

}  // namespace picpar::sim
