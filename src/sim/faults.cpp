#include "sim/faults.hpp"

#include <limits>
#include <stdexcept>
#include <string>

namespace picpar::sim {

std::string FaultCounters::summary() const {
  std::string out;
  const auto add = [&out](const char* name, std::uint64_t v) {
    if (v == 0) return;
    if (!out.empty()) out += ' ';
    out += name;
    out += '=';
    out += std::to_string(v);
  };
  add("transient_slowdowns", transient_slowdowns);
  add("jittered", jittered_messages);
  add("corrupted", corrupted_deliveries);
  add("duplicated", duplicated_messages);
  add("reordered", reordered_messages);
  add("memory", memory_faults);
  add("crashes", crashes);
  return out.empty() ? "clean" : out;
}

FaultCounters& FaultCounters::operator+=(const FaultCounters& rhs) {
  transient_slowdowns += rhs.transient_slowdowns;
  jittered_messages += rhs.jittered_messages;
  corrupted_deliveries += rhs.corrupted_deliveries;
  duplicated_messages += rhs.duplicated_messages;
  reordered_messages += rhs.reordered_messages;
  memory_faults += rhs.memory_faults;
  crashes += rhs.crashes;
  return *this;
}

FaultModel::FaultModel(FaultConfig cfg, int nranks)
    : cfg_(std::move(cfg)), nranks_(nranks) {
  if (nranks <= 0) throw std::invalid_argument("FaultModel: nranks must be > 0");
  if (cfg_.max_retries < 0)
    throw std::invalid_argument("FaultModel: max_retries must be >= 0");
  enabled_ = cfg_.any();
  message_faults_ = cfg_.any_message_faults();
  compute_faults_ = cfg_.any_compute_faults();
  crash_faults_ = cfg_.any_crash_faults();
  for (const int r : cfg_.straggler_ranks)
    if (r < 0 || r >= nranks)
      throw std::invalid_argument("FaultModel: straggler rank out of range");
  for (const auto& cp : cfg_.crash_schedule) {
    if (cp.rank < 0 || cp.rank >= nranks)
      throw std::invalid_argument("FaultModel: crash rank out of range");
    if (cp.vtime < 0.0)
      throw std::invalid_argument("FaultModel: crash vtime must be >= 0");
  }
  if (cfg_.crash_lease_seconds < 0.0)
    throw std::invalid_argument("FaultModel: crash lease must be >= 0");
  streams_.resize(static_cast<std::size_t>(nranks));
  reset();
}

void FaultModel::reset() {
  // Split the master seed into independent per-rank streams so a rank's
  // draw sequence depends only on its own event order, not on interleaving.
  SplitMix64 split(cfg_.seed);
  for (int r = 0; r < nranks_; ++r) {
    auto& s = streams_[static_cast<std::size_t>(r)];
    s.rng.reseed(split.next());
    s.counters = FaultCounters{};
    s.straggler = false;
    s.crash_at = std::numeric_limits<double>::infinity();
  }
  for (const int r : cfg_.straggler_ranks)
    streams_[static_cast<std::size_t>(r)].straggler = true;
  // Fail-stop times are fixed up front — a crash point is a property of the
  // run, not of the execution order that reaches it.
  if (cfg_.crash_prob > 0.0 && cfg_.crash_vtime_max > 0.0) {
    for (int r = 0; r < nranks_; ++r) {
      auto& s = streams_[static_cast<std::size_t>(r)];
      if (s.rng.uniform() < cfg_.crash_prob)
        s.crash_at = s.rng.uniform(0.0, cfg_.crash_vtime_max);
    }
  }
  for (const auto& cp : cfg_.crash_schedule) {
    auto& s = streams_[static_cast<std::size_t>(cp.rank)];
    if (cp.vtime < s.crash_at) s.crash_at = cp.vtime;
  }
}

double FaultModel::crash_time(int rank) const {
  if (!crash_faults_) return std::numeric_limits<double>::infinity();
  return streams_[static_cast<std::size_t>(rank)].crash_at;
}

void FaultModel::count_crash(int rank) { ++stream(rank).counters.crashes; }

FaultModel::Stream& FaultModel::stream(int rank) {
  return streams_[static_cast<std::size_t>(rank)];
}

double FaultModel::compute_factor(int rank) {
  auto& s = stream(rank);
  double factor = 1.0;
  if (s.straggler) factor *= cfg_.straggler_factor;
  if (cfg_.transient_slow_prob > 0.0 &&
      s.rng.uniform() < cfg_.transient_slow_prob) {
    factor *= cfg_.transient_slow_factor;
    ++s.counters.transient_slowdowns;
  }
  return factor;
}

double FaultModel::latency_jitter(int rank) {
  if (cfg_.latency_jitter_prob <= 0.0) return 0.0;
  auto& s = stream(rank);
  if (s.rng.uniform() >= cfg_.latency_jitter_prob) return 0.0;
  ++s.counters.jittered_messages;
  return s.rng.uniform(0.0, cfg_.latency_jitter_max_seconds);
}

bool FaultModel::should_corrupt_delivery(int rank) {
  if (cfg_.corrupt_prob <= 0.0) return false;
  auto& s = stream(rank);
  if (s.rng.uniform() >= cfg_.corrupt_prob) return false;
  ++s.counters.corrupted_deliveries;
  return true;
}

bool FaultModel::should_duplicate(int rank) {
  if (cfg_.duplicate_prob <= 0.0) return false;
  auto& s = stream(rank);
  if (s.rng.uniform() >= cfg_.duplicate_prob) return false;
  ++s.counters.duplicated_messages;
  return true;
}

bool FaultModel::should_reorder(int rank) {
  if (cfg_.reorder_prob <= 0.0) return false;
  auto& s = stream(rank);
  if (s.rng.uniform() >= cfg_.reorder_prob) return false;
  ++s.counters.reordered_messages;
  return true;
}

bool FaultModel::should_memory_fault(int rank) {
  if (cfg_.memory_fault_prob <= 0.0) return false;
  auto& s = stream(rank);
  if (s.rng.uniform() >= cfg_.memory_fault_prob) return false;
  ++s.counters.memory_faults;
  return true;
}

void FaultModel::flip_random_bit(int rank, std::byte* bytes, std::size_t n) {
  if (n == 0) return;
  auto& s = stream(rank);
  const std::uint64_t bit = s.rng.below(static_cast<std::uint64_t>(n) * 8);
  bytes[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
}

std::uint64_t FaultModel::draw_below(int rank, std::uint64_t n) {
  return stream(rank).rng.below(n);
}

const FaultCounters& FaultModel::counters(int rank) const {
  return streams_[static_cast<std::size_t>(rank)].counters;
}

FaultCounters FaultModel::total_counters() const {
  FaultCounters t;
  for (const auto& s : streams_) t += s.counters;
  return t;
}

std::uint64_t fnv1a(const std::byte* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace picpar::sim
