#include "sim/comm.hpp"

#include <cstring>

namespace picpar::sim {

namespace {

// Serialized record stream used by the binomial allgatherv: a sequence of
// (origin: u64, length: u64, payload bytes) records.
void append_record(std::vector<std::byte>& buf, std::uint64_t origin,
                   const std::byte* data, std::uint64_t len) {
  const std::size_t base = buf.size();
  buf.resize(base + 16 + len);
  std::memcpy(buf.data() + base, &origin, 8);
  std::memcpy(buf.data() + base + 8, &len, 8);
  if (len) std::memcpy(buf.data() + base + 16, data, len);
}

}  // namespace

std::vector<std::vector<std::byte>> Comm::allgatherv_bytes(
    std::vector<std::byte> mine) {
  const int p = size();
  std::vector<std::vector<std::byte>> blocks(static_cast<std::size_t>(p));
  if (p == 1) {
    blocks[0] = std::move(mine);
    return blocks;
  }
  CollectiveScope scope(*this);

  // Binomial-tree gather of records to group rank 0 (all ranks below are
  // group indices; send/recv translate to physical ranks).
  const int gr = rank();
  std::vector<std::byte> acc;
  append_record(acc, static_cast<std::uint64_t>(gr), mine.data(),
                mine.size());
  constexpr int kTagGather = -450;
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((gr & mask) != 0) {
      send_bytes(gr & ~mask, kTagGather, std::move(acc));
      acc.clear();
      break;
    }
    const int partner = gr | mask;
    if (partner < p) {
      Message m = recv_msg(partner, kTagGather);
      acc.insert(acc.end(), m.payload.begin(), m.payload.end());
    }
  }

  // Rank 0 parses and reorders records, then broadcasts the flat stream.
  if (gr == 0) {
    std::size_t pos = 0;
    std::vector<std::byte> ordered;
    std::vector<std::vector<std::byte>> parsed(static_cast<std::size_t>(p));
    while (pos < acc.size()) {
      std::uint64_t origin = 0, len = 0;
      std::memcpy(&origin, acc.data() + pos, 8);
      std::memcpy(&len, acc.data() + pos + 8, 8);
      pos += 16;
      auto& b = parsed[static_cast<std::size_t>(origin)];
      b.assign(acc.begin() + static_cast<long>(pos),
               acc.begin() + static_cast<long>(pos + len));
      pos += len;
    }
    acc.clear();
    for (int r = 0; r < p; ++r) {
      const auto& b = parsed[static_cast<std::size_t>(r)];
      append_record(acc, static_cast<std::uint64_t>(r), b.data(), b.size());
    }
  }

  // Binomial broadcast of the ordered stream from rank 0, then parse.
  {
    constexpr int kTagCat = -460;
    int mask = 1;
    while (mask < p) {
      if (gr & mask) {
        Message m = recv_msg(gr - mask, kTagCat);
        acc = std::move(m.payload);
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (gr + mask < p) {
        std::vector<std::byte> copy = acc;
        send_bytes(gr + mask, kTagCat, std::move(copy));
      }
      mask >>= 1;
    }
  }

  std::size_t pos = 0;
  while (pos < acc.size()) {
    std::uint64_t origin = 0, len = 0;
    std::memcpy(&origin, acc.data() + pos, 8);
    std::memcpy(&len, acc.data() + pos + 8, 8);
    pos += 16;
    blocks[static_cast<std::size_t>(origin)].assign(
        acc.begin() + static_cast<long>(pos),
        acc.begin() + static_cast<long>(pos + len));
    pos += len;
  }
  return blocks;
}

void Comm::barrier() {
  const int p = size();
  if (p == 1) return;
  CollectiveScope scope(*this);
  // Dissemination barrier: ceil(log2 p) rounds; in round k, group rank r
  // signals (r + 2^k) mod p and waits for (r - 2^k) mod p.
  const int gr = rank();
  for (int dist = 1; dist < p; dist <<= 1) {
    const int to = (gr + dist) % p;
    const int from = (gr - dist % p + p) % p;
    send_value<std::uint8_t>(to, kTagBarrier - dist, 1);
    (void)recv_value<std::uint8_t>(from, kTagBarrier - dist);
  }
}

}  // namespace picpar::sim
