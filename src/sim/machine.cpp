#include "sim/machine.hpp"

#include <algorithm>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <sstream>
#include <thread>

#include "sim/comm.hpp"

namespace picpar::sim {

double RunResult::makespan() const {
  double m = 0.0;
  for (const auto& r : ranks) m = std::max(m, r.clock);
  return m;
}

double RunResult::max_compute() const {
  double m = 0.0;
  for (const auto& r : ranks) m = std::max(m, r.stats.total().compute_seconds);
  return m;
}

LinkStats RankReport::transport_total() const {
  LinkStats t;
  for (const auto& l : links) {
    t.retries += l.retries;
    t.dup_discards += l.dup_discards;
    t.corruptions_detected += l.corruptions_detected;
  }
  return t;
}

LinkStats RunResult::transport_total() const {
  LinkStats t;
  for (const auto& r : ranks) {
    const LinkStats rt = r.transport_total();
    t.retries += rt.retries;
    t.dup_discards += rt.dup_discards;
    t.corruptions_detected += rt.corruptions_detected;
  }
  return t;
}

FaultCounters RunResult::faults_total() const {
  FaultCounters t;
  for (const auto& r : ranks) t += r.faults;
  return t;
}

struct Machine::Sync {
  std::mutex mutex;
  /// Main-thread wakeup (run completion / deadlock detection).
  std::condition_variable cv;
  /// One condition variable per rank so a handoff wakes exactly the target
  /// rank instead of broadcasting to all p parked threads — at p=1024+ a
  /// notify_all per handoff is a thundering herd of p-1 futile wakeups.
  std::unique_ptr<std::condition_variable[]> rank_cvs;
  std::vector<std::thread> threads;
};

Machine::Machine(int nranks, CostModel cost)
    : nranks_(nranks), cost_(cost), sync_(std::make_unique<Sync>()) {
  if (nranks <= 0) throw std::invalid_argument("Machine: nranks must be > 0");
  sync_->rank_cvs = std::make_unique<std::condition_variable[]>(
      static_cast<std::size_t>(nranks));
}

Machine::Machine(int nranks, CostModel cost, const FaultConfig& faults)
    : Machine(nranks, cost) {
  set_fault_model(faults);
}

Machine::~Machine() = default;

bool Machine::match(const Message& m, int src, int tag) const {
  return (src == kAnySource || m.src == src) &&
         (tag == kAnyTag || m.tag == tag);
}

// ---------------------------------------------------------------------------
// Deterministic matching layer.
//
// A receive never takes "the first message the mailbox scan happens to
// meet" — it takes the candidate with the minimum (arrival, src, seq, dup)
// key, where the per-source representative is that source's flow head (the
// lowest (seq, dup) matching message, which keeps per-link FIFO even when
// arrival jitter reorders timestamps). The key is a schedule-independent
// total order: it depends only on message contents, never on when threads
// physically enqueued them. This is what lets the parallel engine run
// ranks on real cores and still produce bit-identical results to the
// sequential reference scheduler.
// ---------------------------------------------------------------------------

Machine::Candidate Machine::find_candidate(int rank, int src, int tag) {
  auto& rs = ranks_[static_cast<std::size_t>(rank)];
  const bool dedup =
      faults_.message_faults() && faults_.config().duplicate_prob > 0.0;
  for (;;) {
    // Flow heads of the sources actually present in the mailbox, sorted by
    // source rank — O(distinct senders) instead of an O(p) dense sweep.
    scratch_heads_.clear();
    for (int pos = 0; pos < static_cast<int>(rs.mailbox.size()); ++pos) {
      const Message& m = rs.mailbox[static_cast<std::size_t>(pos)];
      if (!match(m, src, tag)) continue;
      const auto it = std::lower_bound(
          scratch_heads_.begin(), scratch_heads_.end(), m.src,
          [](const std::pair<int, int>& e, int s) { return e.first < s; });
      if (it == scratch_heads_.end() || it->first != m.src) {
        scratch_heads_.insert(it, {m.src, pos});
        continue;
      }
      const Message& h = rs.mailbox[static_cast<std::size_t>(it->second)];
      if (m.seq < h.seq || (m.seq == h.seq && !m.dup && h.dup))
        it->second = pos;
    }
    Candidate best;
    for (const auto& [s, head] : scratch_heads_) {
      const Message& h = rs.mailbox[static_cast<std::size_t>(head)];
      // Sources ascend, so on an arrival tie the lower source rank wins.
      if (best.pos >= 0 && h.arrival >= best.arrival) continue;
      best.pos = head;
      best.arrival = h.arrival;
      best.src = s;
      best.seq = h.seq;
      best.dup = h.dup;
    }
    if (best.pos < 0 || !dedup) return best;
    auto& seen = rs.seen_seq.ref(best.src);
    if (seen.find(best.seq) == seen.end()) return best;
    // Duplicate redelivery of an already-consumed message: the transport
    // silently drops it and matching restarts.
    link_stats(rs, best.src).dup_discards += 1;
    rs.mailbox.erase(rs.mailbox.begin() + best.pos);
  }
}

bool Machine::commit_safe(int rank, int src_pattern,
                          const Candidate& c) const {
  // Source-pinned receives are fixed by link FIFO: any future message from
  // that source carries a higher sequence number, so the candidate can
  // never be displaced.
  if (src_pattern != kAnySource) return true;
  // Wildcard-source: conservative lower-bound-timestamp rule. Any message
  // a live rank r could still send arrives no earlier than clock_r + tau
  // (message_cost >= tau, jitter >= 0), with key (arrival, r). The
  // candidate (a*, s*) commits only when no such future key can undercut
  // it. Clocks are monotone, so a stale clock read only delays the commit,
  // never mis-orders it.
  for (const auto& rs : ranks_) {
    if (rs.id == rank || rs.id == c.src || rs.done) continue;
    const double lb = rs.clock.load() + cost_.tau;
    if (lb > c.arrival) continue;
    if (lb == c.arrival && rs.id > c.src) continue;
    return false;
  }
  return true;
}

bool Machine::recv_deliverable(int rank) {
  auto& rs = ranks_[static_cast<std::size_t>(rank)];
  const Candidate c = find_candidate(rank, rs.want_src, rs.want_tag);
  if (c.pos < 0) return false;
  return force_commit_rank_ == rank || commit_safe(rank, rs.want_src, c);
}

int Machine::stall_pick() {
  // Quiescent state: every live rank is parked in a receive and nothing is
  // safe. No send can happen until some receive commits, so the messages
  // the safety rule was waiting on can never materialize — commit the
  // globally minimal candidate key. The state itself is deterministic (it
  // is reached by the same commit sequence in every schedule), so the
  // choice is too. No candidate anywhere = true deadlock, exactly the
  // sequential scheduler's deadlock set.
  int best_rank = -1;
  Candidate best;
  for (auto& rs : ranks_) {
    if (rs.done || !rs.waiting) continue;
    const Candidate c = find_candidate(rs.id, rs.want_src, rs.want_tag);
    if (c.pos < 0) continue;
    const bool wins =
        best_rank < 0 || c.arrival < best.arrival ||
        (c.arrival == best.arrival &&
         (c.src < best.src ||
          (c.src == best.src &&
           (c.seq < best.seq ||
            (c.seq == best.seq && (c.dup ? 1 : 0) < (best.dup ? 1 : 0))))));
    if (wins) {
      best = c;
      best_rank = rs.id;
    }
  }
  return best_rank;
}

bool Machine::runnable(RankState& rs) {
  if (rs.done) return false;
  if (rs.in_membership) return rs.membership_ready;
  if (!rs.waiting) return true;
  if (fail_recv_rank_ == rs.id) return true;
  return recv_deliverable(rs.id);
}

int Machine::pick_next(int from) {
  for (int step = 1; step <= nranks_; ++step) {
    const int cand = (from + step) % nranks_;
    if (runnable(ranks_[static_cast<std::size_t>(cand)])) return cand;
  }
  return -1;
}

std::vector<BlockedInfo> Machine::blocked_ranks() const {
  std::vector<BlockedInfo> blocked;
  for (const auto& rs : ranks_) {
    if (rs.done) continue;
    BlockedInfo bi{rs.id, rs.want_src, rs.want_tag, rs.mailbox.size(), false};
    if (rs.want_src >= 0 && rs.want_src < nranks_)
      bi.want_src_crashed =
          ranks_[static_cast<std::size_t>(rs.want_src)].crashed;
    blocked.push_back(bi);
  }
  return blocked;
}

std::string Machine::deadlock_report() const {
  // Emit the wait graph: each blocked rank, what it wants, and the state of
  // the rank it is waiting on (done ranks can never satisfy a recv — the
  // most common deadlock cause). Fail-stopped ranks are named explicitly:
  // waiting on one is a peer failure, not part of a wait cycle.
  std::ostringstream os;
  os << "simulated machine deadlock: all live ranks blocked in recv\n";
  for (const auto& rs : ranks_)
    if (rs.crashed)
      os << "  rank " << rs.id << " CRASHED (fail-stop) at t=" << rs.crash_vtime
         << " and will never send again\n";
  for (const auto& rs : ranks_) {
    if (rs.done) continue;
    os << "  rank " << rs.id << " waiting for (src=" << rs.want_src
       << ", tag=" << rs.want_tag << "), mailbox holds " << rs.mailbox.size()
       << " message(s)";
    if (rs.want_src >= 0 && rs.want_src < nranks_) {
      const auto& peer = ranks_[static_cast<std::size_t>(rs.want_src)];
      if (peer.crashed)
        os << "; rank " << rs.want_src << " crashed at t=" << peer.crash_vtime
           << " — peer failure, not a wait cycle";
      else if (peer.done)
        os << "; rank " << rs.want_src << " already finished";
      else if (peer.waiting)
        os << "; rank " << rs.want_src << " is itself blocked on (src="
           << peer.want_src << ", tag=" << peer.want_tag << ")";
    }
    os << "\n";
  }
  return os.str();
}

void Machine::yield_from(int rank) {
  // Caller holds no lock; acquire, transfer control, and wait to be
  // rescheduled. Only the active rank ever calls this.
  std::unique_lock<std::mutex> lk(sync_->mutex);
  int next = pick_next(rank);
  if (next == -1 && live_ > 0) {
    // Global stall: nobody is runnable under the commit-safety rule. Force
    // the globally minimal candidate (see stall_pick); then run the
    // fail-stop ladder — elect the lowest blocked rank that has not yet
    // acknowledged every crash (it wakes into PeerFailedError), else
    // complete a full membership barrier. Only after all three steps fail
    // is the stall a true deadlock.
    const int forced = stall_pick();
    if (forced >= 0) {
      force_commit_rank_ = forced;
      next = forced;
    } else {
      const int victim = pick_failure_victim();
      if (victim >= 0) {
        fail_recv_rank_ = victim;
        next = victim;
      } else if (try_complete_membership()) {
        next = pick_next(rank);
      }
    }
  }
  if (next == -1) {
    if (live_ > 0) {
      // Everyone (including us, who must be waiting or done) is blocked.
      // Snapshot the wait graph on the *first* detection only: ranks
      // unwinding afterwards re-enter here (their final yield re-detects
      // the same deadlock) and must not clobber the original picture.
      if (!deadlocked_) {
        deadlocked_ = true;
        deadlock_report_str_ = deadlock_report();
        deadlock_blocked_ = blocked_ranks();
      }
      current_ = -1;
      sync_->cv.notify_all();
      for (int i = 0; i < nranks_; ++i) sync_->rank_cvs[i].notify_all();
      // Park forever; run() will detect deadlock and unwind via exception
      // propagated from the main thread. We still need to terminate this
      // thread: treat deadlock as fatal for the rank.
      throw DeadlockError("rank " + std::to_string(rank) +
                          " participated in a deadlock");
    }
    current_ = -1;  // all done; wake the main thread
    sync_->cv.notify_all();
    return;
  }
  current_ = next;
  // Targeted handoff: wake only the rank that now owns execution.
  sync_->rank_cvs[next].notify_one();
  if (ranks_[rank].done) return;  // finished ranks exit without re-waiting
  sync_->rank_cvs[rank].wait(
      lk, [&] { return current_ == rank || deadlocked_; });
  if (deadlocked_ && current_ != rank)
    throw DeadlockError("rank " + std::to_string(rank) +
                        " unwound due to deadlock");
}

int Machine::build_send(int src, int dst, int tag,
                        std::vector<std::byte> payload, Message out[2],
                        double* new_clock, bool* reorder_first) {
  // Everything here touches only sender-owned state (clock arithmetic,
  // stats, per-destination sequence counters, the sender's fault stream,
  // per-rank observer state), so the parallel engine runs it outside the
  // mailbox lock. The caller publishes *new_clock only after enqueueing:
  // a concurrent lower-bound read must not see the post-charge clock while
  // the message it bounds is still in flight.
  auto& s = ranks_[static_cast<std::size_t>(src)];
  if (strict_tags_ && tag < 0 && s.collective_depth == 0)
    throw std::invalid_argument(
        "send: tag " + std::to_string(tag) +
        " is in the reserved (negative) collective tag space; user traffic "
        "must use tags >= 0");
  const auto bytes = payload.size();
  const double cost = cost_.message_cost(bytes);
  const double clock = s.clock.load() + cost;
  *new_clock = clock;
  *reorder_first = false;
  auto& pc = s.stats.phase(s.phase);
  pc.msgs_sent += 1;
  pc.bytes_sent += bytes;
  pc.comm_seconds += cost;

  Message m;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  m.arrival = clock;
  m.sent_phase = s.phase;
  m.epoch = s.epoch;
  m.payload = std::move(payload);

  // The link sequence number orders a link's traffic for deterministic
  // matching, so it is assigned on every send, faults or not. Assigned
  // before the observer fires so observers can key on (src, dst, seq).
  m.seq = s.next_seq.ref(dst)++;

  if (observer_) {
    SendEvent ev;
    ev.src = src;
    ev.dst = dst;
    ev.tag = tag;
    ev.bytes = bytes;
    ev.phase = s.phase;
    ev.collective_depth = s.collective_depth;
    ev.vtime = clock;
    // Stamped before any fault perturbation so a duplicated delivery
    // carries the same send event (same vector clock).
    observer_->on_send(m, ev);
  }

  if (!faults_.message_faults()) {
    out[0] = std::move(m);
    return 1;
  }

  // ---- faulty-fabric path: envelope the payload, then perturb ----
  m.checksum = fnv1a(m.payload.data(), m.payload.size());
  m.arrival += faults_.latency_jitter(src);

  const bool duplicate = faults_.should_duplicate(src);
  // The reorder draw is kept for stream compatibility and counters; under
  // key-based matching the physical queue position is inert — observable
  // reordering comes from jittered arrival timestamps instead.
  *reorder_first = faults_.should_reorder(src);
  if (duplicate) {
    Message copy = m;
    copy.dup = true;
    copy.arrival += faults_.latency_jitter(src);
    out[0] = std::move(m);
    out[1] = std::move(copy);
    return 2;
  }
  out[0] = std::move(m);
  return 1;
}

void Machine::enqueue_messages(Message out[2], int n, bool reorder_first) {
  auto& dstbox = ranks_[static_cast<std::size_t>(out[0].dst)].mailbox;
  // Cross-flow overtake of the youngest queued message of a different
  // (src, tag) flow — kept for physical-order fidelity (iprobe, reports);
  // matching itself is position-independent.
  if (reorder_first && !dstbox.empty() &&
      (dstbox.back().src != out[0].src || dstbox.back().tag != out[0].tag)) {
    dstbox.insert(dstbox.end() - 1, std::move(out[0]));
  } else {
    dstbox.push_back(std::move(out[0]));
  }
  if (n > 1) dstbox.push_back(std::move(out[1]));
}

void Machine::do_send(int src, int dst, int tag,
                      std::vector<std::byte> payload) {
  if (dst < 0 || dst >= nranks_)
    throw std::out_of_range("send: bad destination rank " +
                            std::to_string(dst));
  check_crash(src);
  if (prt_) {
    prt_->send(*this, src, dst, tag, std::move(payload));
    return;
  }
  Message out[2];
  double new_clock = 0.0;
  bool reorder_first = false;
  const int n =
      build_send(src, dst, tag, std::move(payload), out, &new_clock,
                 &reorder_first);
  enqueue_messages(out, n, reorder_first);
  ranks_[static_cast<std::size_t>(src)].clock = new_clock;
  // The receiver (if parked on a matching recv) becomes runnable; the
  // sequential scheduler re-evaluates predicates on the next yield.
}

LinkStats& Machine::link_stats(RankState& rs, int src) {
  return rs.links.ref(src);
}

/// Receiver-side recovery of a delivery the fault model corrupted on the
/// wire: prove detection (flip a real bit, watch the FNV-1a checksum
/// mismatch), then model a NACK on the control channel (kTagRetransmit)
/// plus a retransmission from the sender's NIC buffer, with exponential
/// backoff in virtual time. The sender's *program* is never interrupted —
/// the wire copy is retransmitted below it, so the whole round-trip is
/// charged to the receiver as added latency. Throws TransportError once
/// the retry budget is exhausted.
void Machine::recover_corruption(int rank, const Message& m) {
  auto& rs = ranks_[rank];
  const int max_retries = faults_.config().max_retries;
  static constexpr std::size_t kNackBytes = 16;  // seq + checksum echo
  int attempt = 0;
  std::vector<std::byte> tainted;
  while (faults_.should_corrupt_delivery(rank)) {
    tainted = m.payload;
    faults_.flip_random_bit(rank, tainted.data(), tainted.size());
    if (!tainted.empty() &&
        fnv1a(tainted.data(), tainted.size()) == m.checksum) {
      // Checksum collision: a single flipped bit always changes FNV-1a, so
      // this is unreachable; guard anyway rather than loop on a bad model.
      break;
    }
    ++attempt;
    auto& ls = link_stats(rs, m.src);
    ls.corruptions_detected += 1;
    if (attempt > max_retries)
      throw TransportError(
          "transport: message src=" + std::to_string(m.src) +
          " dst=" + std::to_string(m.dst) + " tag=" + std::to_string(m.tag) +
          " seq=" + std::to_string(m.seq) + " still corrupt after " +
          std::to_string(max_retries) + " retransmissions");
    ls.retries += 1;
    // NACK out, fresh copy back, doubling the wait each attempt.
    const double backoff =
        (cost_.message_cost(kNackBytes) + cost_.message_cost(m.bytes())) *
        static_cast<double>(1ULL << std::min(attempt - 1, 20));
    // The backoff advances the clock here; the caller's arrival-to-delivery
    // delta picks it up as comm time, so only traffic is counted directly.
    rs.clock += backoff;
    auto& pc = rs.stats.phase(rs.phase);
    pc.msgs_sent += 1;
    pc.bytes_sent += kNackBytes;
    pc.msgs_recv += 1;
    pc.bytes_recv += m.bytes();
    // iter slot carries the source rank so traces can attribute the retry
    // to a link; value is the virtual-time cost of this round-trip.
    note_mark(rank, "transport.retry", m.src, backoff);
  }
}

Message Machine::commit_recv(int rank, const Candidate& c, int src, int tag,
                             bool fp_payload) {
  auto& rs = ranks_[static_cast<std::size_t>(rank)];
  const bool mf = faults_.message_faults();
  if (mf && faults_.config().duplicate_prob > 0.0)
    rs.seen_seq.ref(c.src).insert(c.seq);
  auto it = rs.mailbox.begin() + c.pos;
  Message m = std::move(*it);
  rs.mailbox.erase(it);
  const double before = rs.clock;
  rs.clock = std::max<double>(rs.clock, m.arrival);
  if (cost_.recv_copy_mu > 0.0)
    rs.clock += cost_.recv_copy_mu * static_cast<double>(m.bytes());
  if (mf && faults_.config().corrupt_prob > 0.0) recover_corruption(rank, m);
  auto& pc = rs.stats.phase(rs.phase);
  pc.msgs_recv += 1;
  pc.bytes_recv += m.bytes();
  pc.comm_seconds += rs.clock - before;
  rs.waiting = false;
  if (observer_) {
    RecvEvent ev;
    ev.rank = rank;
    ev.want_src = src;
    ev.want_tag = tag;
    ev.fp_payload = fp_payload;
    ev.order_insensitive = rs.unordered_depth > 0;
    ev.phase = rs.phase;
    ev.collective_depth = rs.collective_depth;
    ev.vtime = rs.clock;
    // The matched message is already out of the mailbox: what is left
    // are the still-pending messages (race candidates among them).
    observer_->on_recv(m, ev, rs.mailbox);
  }
  return m;
}

Message Machine::do_recv(int rank, int src, int tag, bool fp_payload) {
  auto& rs = ranks_[static_cast<std::size_t>(rank)];
  if (strict_tags_ && tag != kAnyTag && tag < 0 && rs.collective_depth == 0)
    throw std::invalid_argument(
        "recv: explicit tag " + std::to_string(tag) +
        " is in the reserved (negative) collective tag space; user receives "
        "must use tags >= 0 or kAnyTag");
  check_crash(rank);
  if (prt_) return prt_->recv(*this, rank, src, tag, fp_payload);
  for (;;) {
    if (fail_recv_rank_ == rank) {
      fail_recv_rank_ = -1;
      throw_peer_failure(rank);
    }
    const Candidate c = find_candidate(rank, src, tag);
    if (c.pos >= 0 &&
        (force_commit_rank_ == rank || commit_safe(rank, src, c))) {
      if (force_commit_rank_ == rank) force_commit_rank_ = -1;
      return commit_recv(rank, c, src, tag, fp_payload);
    }
    rs.waiting = true;
    rs.want_src = src;
    rs.want_tag = tag;
    yield_from(rank);
    rs.waiting = false;
  }
}

bool Machine::do_iprobe(int rank, int src, int tag) {
  if (prt_) return prt_->iprobe(*this, rank, src, tag);
  for (const auto& m : ranks_[static_cast<std::size_t>(rank)].mailbox)
    if (match(m, src, tag)) return true;
  return false;
}

void Machine::charge(int rank, double seconds, bool is_compute) {
  auto& rs = ranks_[rank];
  if (is_compute && faults_.compute_faults())
    seconds *= faults_.compute_factor(rank);
  rs.clock += seconds;
  auto& pc = rs.stats.phase(rs.phase);
  if (is_compute)
    pc.compute_seconds += seconds;
  else
    pc.comm_seconds += seconds;
  // Compute boundaries are fail-stop points too: the stats above stay
  // booked — a real node burns the cycles before it dies.
  check_crash(rank);
}

// ---------------------------------------------------------------------------
// Fail-stop crash machinery. Crash points are pre-drawn per rank (FaultModel)
// and compared against the rank's own clock at rank-local boundaries, so the
// set of crashes reached by any quiescent state is a per-rank property of the
// program — identical under sequential and parallel execution. All bookkeeping
// below runs under the owning engine's serialization (handoff lock / engine
// mutex) or touches only rank-owned state.
// ---------------------------------------------------------------------------

void Machine::check_crash(int rank) {
  if (!faults_.crash_faults()) return;
  auto& rs = ranks_[static_cast<std::size_t>(rank)];
  if (rs.crashed) return;
  const double now = rs.clock.load();
  if (now < faults_.crash_time(rank)) return;
  faults_.count_crash(rank);
  note_mark(rank, "fault.crash", -1, now);
  throw RankCrashed(rank, now);
}

void Machine::record_crash(int rank, double vtime) {
  auto& rs = ranks_[static_cast<std::size_t>(rank)];
  rs.crashed = true;
  rs.crash_vtime = vtime;
  ++crashed_count_;
  if (fail_recv_rank_ == rank) fail_recv_rank_ = -1;
  if (force_commit_rank_ == rank) force_commit_rank_ = -1;
}

int Machine::pick_failure_victim() const {
  if (crashed_count_ == 0) return -1;
  for (const auto& rs : ranks_) {
    if (rs.done || !rs.waiting) continue;
    for (const auto& peer : ranks_) {
      if (!peer.crashed) continue;
      if (!rs.acked_peer.find(peer.id)) return rs.id;
    }
  }
  return -1;
}

void Machine::throw_peer_failure(int rank) {
  auto& rs = ranks_[static_cast<std::size_t>(rank)];
  const double lease = faults_.config().crash_lease_seconds;
  std::vector<CrashRecord> fresh;
  double bound = rs.clock.load();
  for (const auto& peer : ranks_) {
    if (!peer.crashed || rs.acked_peer.find(peer.id)) continue;
    rs.acked_peer.ref(peer.id) = 1;
    fresh.push_back({peer.id, peer.crash_vtime});
    bound = std::max(bound, peer.crash_vtime + lease);
  }
  // Detection costs virtual time: the survivor sits out the dead peer's
  // lease before it may declare the failure, like a heartbeat timeout.
  const double before = rs.clock.load();
  rs.clock = bound;
  rs.stats.phase(rs.phase).comm_seconds += bound - before;
  rs.waiting = false;
  note_mark(rank, "fault.crash_detected", -1,
            static_cast<double>(fresh.size()));
  std::ostringstream os;
  os << "rank " << rank << " detected fail-stop of peer(s):";
  for (const auto& f : fresh)
    os << " rank " << f.rank << " (crashed at t=" << f.vtime << ")";
  throw PeerFailedError(os.str(), std::move(fresh), rank);
}

bool Machine::try_complete_membership() {
  bool any = false;
  for (const auto& rs : ranks_) {
    if (rs.done) continue;
    // A ready-but-not-yet-woken member is *leaving* the barrier, not in it;
    // counting it would let a quiescent stall build a second view before
    // every survivor consumed the first.
    if (!rs.in_membership || rs.membership_ready) return false;
    any = true;
  }
  if (!any) return false;

  MembershipView v;
  v.epoch = ++epoch_;
  const double lease = faults_.config().crash_lease_seconds;
  double agreed = 0.0;
  if (view_reported_.size() != static_cast<std::size_t>(nranks_))
    view_reported_.assign(static_cast<std::size_t>(nranks_), 0);
  for (const auto& rs : ranks_) {
    if (rs.crashed && !view_reported_[static_cast<std::size_t>(rs.id)]) {
      view_reported_[static_cast<std::size_t>(rs.id)] = 1;
      v.failed.push_back({rs.id, rs.crash_vtime});
      agreed = std::max(agreed, rs.crash_vtime + lease);
    }
    if (!rs.done) {
      v.survivors.push_back(rs.id);
      agreed = std::max(agreed, rs.clock.load());
    }
  }
  // Deterministic agreement cost: two binomial sweeps (propose + confirm)
  // of small control messages over the survivor group.
  static constexpr std::size_t kAgreeBytes = 16;
  int rounds = 0;
  while ((1 << rounds) < static_cast<int>(v.survivors.size())) ++rounds;
  v.vtime = agreed + 2.0 * rounds * cost_.message_cost(kAgreeBytes);

  for (auto& rs : ranks_) {
    if (rs.done) continue;
    auto& pc = rs.stats.phase(rs.phase);
    pc.comm_seconds += v.vtime - rs.clock.load();
    rs.clock = v.vtime;
    rs.epoch = v.epoch;
    for (const auto& peer : ranks_) {
      if (!peer.crashed) continue;
      rs.acked_peer.ref(peer.id) = 1;
      // Membership-epoch purge of dead-peer transport state: a crashed rank
      // never sends again and can never receive, so the dedup set and the
      // sequence counter indexed by it are dead weight. Before the tables
      // went sparse these slots (sized to the *initial* world) survived
      // every shrink; now the entries are dropped outright, so post-crash
      // state is indexed by live peers only.
      rs.seen_seq.erase(peer.id);
      rs.next_seq.erase(peer.id);
    }
    // Purge pre-agreement traffic: messages stamped with an older epoch can
    // never be matched again (their senders' epoch has moved on, or died).
    auto& box = rs.mailbox;
    for (auto it = box.begin(); it != box.end();)
      it = (it->epoch < v.epoch) ? box.erase(it) : std::next(it);
    rs.membership_ready = true;
    // Every survivor resumes at the same agreed time in the same epoch; the
    // mark fires at quiescence, so observer buffers are safe to touch.
    note_mark(rs.id, "membership.agree", v.epoch,
              static_cast<double>(v.survivors.size()));
  }
  pending_view_ = std::move(v);
  return true;
}

MembershipView Machine::do_agree(int rank) {
  check_crash(rank);
  if (prt_) return prt_->agree(*this, rank);
  auto& rs = ranks_[static_cast<std::size_t>(rank)];
  rs.in_membership = true;
  while (!rs.membership_ready) yield_from(rank);
  rs.in_membership = false;
  rs.membership_ready = false;
  return pending_view_;
}

void Machine::rank_main(int rank, const std::function<void(Comm&)>& program) {
  {
    std::unique_lock<std::mutex> lk(sync_->mutex);
    sync_->rank_cvs[rank].wait(
        lk, [&] { return current_ == rank || deadlocked_; });
    if (deadlocked_) {
      ranks_[rank].done = true;
      --live_;
      return;
    }
  }
  bool did_crash = false;
  double crash_vt = 0.0;
  try {
    Comm comm(this, rank);
    program(comm);
  } catch (const RankCrashed& c) {
    // Fail-stop: the rank simply stops. Not an error — survivors detect it
    // through the lease machinery and may recover.
    did_crash = true;
    crash_vt = c.vtime();
  } catch (const DeadlockError&) {
    // Already recorded globally; just unwind.
  } catch (...) {
    ranks_[rank].error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lk(sync_->mutex);
    if (did_crash) record_crash(rank, crash_vt);
    ranks_[rank].done = true;
    --live_;
  }
  try {
    yield_from(rank);
  } catch (const DeadlockError&) {
    // This rank is already done; other ranks' deadlock is reported by run().
  }
}

void Machine::reset_run_state() {
  ranks_.assign(static_cast<std::size_t>(nranks_), RankState{});
  for (int i = 0; i < nranks_; ++i)
    ranks_[static_cast<std::size_t>(i)].id = i;
  if (observer_) observer_->on_run_start(nranks_);
  faults_.reset();  // identical fault streams on every run of this Machine
  live_ = nranks_;
  deadlocked_ = false;
  current_ = -1;
  force_commit_rank_ = -1;
  fail_recv_rank_ = -1;
  epoch_ = 0;
  crashed_count_ = 0;
  pending_view_ = MembershipView{};
  view_reported_.assign(static_cast<std::size_t>(nranks_), 0);
  deadlock_report_str_.clear();
  deadlock_blocked_.clear();
}

RunResult Machine::collect_results() {
  for (const auto& rs : ranks_)
    if (rs.error) std::rethrow_exception(rs.error);

  if (observer_) {
    std::vector<const std::deque<Message>*> boxes;
    std::vector<double> clocks;
    boxes.reserve(ranks_.size());
    clocks.reserve(ranks_.size());
    for (const auto& rs : ranks_) {
      boxes.push_back(&rs.mailbox);
      clocks.push_back(rs.clock.load());
    }
    observer_->on_run_end(boxes, clocks);
  }

  RunResult result;
  result.ranks.reserve(ranks_.size());
  for (const auto& rs : ranks_) {
    RankReport rep;
    rep.rank = rs.id;
    rep.clock = rs.clock;
    rep.stats = rs.stats;
    if (faults_.enabled()) rep.faults = faults_.counters(rs.id);
    // The report keeps its dense per-source shape (indexed by world rank,
    // serialized and compared slot-by-slot downstream); only the live
    // machine state is sparse. Materialized here, at collection time.
    if (!rs.links.empty()) {
      rep.links.assign(static_cast<std::size_t>(nranks_), LinkStats{});
      for (const auto& e : rs.links)
        rep.links[static_cast<std::size_t>(e.rank)] = e.value;
    }
    rep.crashed = rs.crashed;
    rep.crash_vtime = rs.crash_vtime;
    if (rs.crashed) result.crashes.push_back({rs.id, rs.crash_vtime});
    result.ranks.push_back(std::move(rep));
  }
  result.epochs = epoch_;
  return result;
}

std::size_t Machine::rank_transport_bytes(int rank) const {
  const auto& rs = ranks_[static_cast<std::size_t>(rank)];
  // Size-based (live entries, not capacity): a deterministic function of
  // the rank's consumed/sent message history, so the value is identical
  // across execution modes at the same program point — safe to export as a
  // metric that must stay bit-identical between sequential and parallel.
  using NextSeqMap = util::SparseRankMap<std::uint64_t>;
  using SeenMap = util::SparseRankMap<std::unordered_set<std::uint64_t>>;
  using LinkMap = util::SparseRankMap<LinkStats>;
  using AckMap = util::SparseRankMap<char>;
  std::size_t b = rs.next_seq.size() * sizeof(NextSeqMap::Entry) +
                  rs.seen_seq.size() * sizeof(SeenMap::Entry) +
                  rs.links.size() * sizeof(LinkMap::Entry) +
                  rs.acked_peer.size() * sizeof(AckMap::Entry);
  for (const auto& e : rs.seen_seq) {
    // Nodes + bucket array of the dedup set (libstdc++ layout estimate).
    b += e.value.size() * (sizeof(std::uint64_t) + 2 * sizeof(void*)) +
         e.value.bucket_count() * sizeof(void*);
  }
  return b;
}

std::size_t Machine::rank_transport_peers(int rank) const {
  const auto& rs = ranks_[static_cast<std::size_t>(rank)];
  // Union of the peers present in any of the four transport maps; each map
  // iterates in ascending rank order, so a 4-way ascending merge counts
  // distinct peers without any allocation.
  std::size_t n = 0;
  auto a = rs.next_seq.begin();
  auto b = rs.seen_seq.begin();
  auto c = rs.links.begin();
  auto d = rs.acked_peer.begin();
  constexpr int kEnd = std::numeric_limits<int>::max();
  for (;;) {
    const int ra = a != rs.next_seq.end() ? a->rank : kEnd;
    const int rb = b != rs.seen_seq.end() ? b->rank : kEnd;
    const int rc = c != rs.links.end() ? c->rank : kEnd;
    const int rd = d != rs.acked_peer.end() ? d->rank : kEnd;
    const int m = std::min(std::min(ra, rb), std::min(rc, rd));
    if (m == kEnd) return n;
    ++n;
    if (ra == m) ++a;
    if (rb == m) ++b;
    if (rc == m) ++c;
    if (rd == m) ++d;
  }
}

RunResult Machine::run(const std::function<void(Comm&)>& program) {
  if (exec_mode_ == ExecMode::kParallel) {
    if (!parallel_runner_)
      throw std::logic_error(
          "Machine: parallel mode requested but no engine installed; link "
          "picpar_runtime and call runtime::use_parallel(machine)");
    return parallel_runner_(*this, program);
  }
  return run_sequential(program);
}

RunResult Machine::run_sequential(const std::function<void(Comm&)>& program) {
  reset_run_state();

  sync_->threads.clear();
  sync_->threads.reserve(static_cast<std::size_t>(nranks_));
  for (int i = 0; i < nranks_; ++i)
    sync_->threads.emplace_back([this, i, &program] { rank_main(i, program); });

  {
    std::unique_lock<std::mutex> lk(sync_->mutex);
    current_ = 0;
    sync_->rank_cvs[0].notify_one();
    sync_->cv.wait(lk, [&] { return live_ == 0 || deadlocked_; });
    if (deadlocked_) {
      // Let every parked rank unwind so threads can be joined.
      for (int i = 0; i < nranks_; ++i) sync_->rank_cvs[i].notify_all();
      lk.unlock();
      for (auto& t : sync_->threads) t.join();
      sync_->threads.clear();
      throw DeadlockError(deadlock_report_str_,
                          std::move(deadlock_blocked_));
    }
  }
  for (auto& t : sync_->threads) t.join();
  sync_->threads.clear();

  return collect_results();
}

}  // namespace picpar::sim
