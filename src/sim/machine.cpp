#include "sim/machine.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>

#include "sim/comm.hpp"

namespace picpar::sim {

double RunResult::makespan() const {
  double m = 0.0;
  for (const auto& r : ranks) m = std::max(m, r.clock);
  return m;
}

double RunResult::max_compute() const {
  double m = 0.0;
  for (const auto& r : ranks) m = std::max(m, r.stats.total().compute_seconds);
  return m;
}

LinkStats RankReport::transport_total() const {
  LinkStats t;
  for (const auto& l : links) {
    t.retries += l.retries;
    t.dup_discards += l.dup_discards;
    t.corruptions_detected += l.corruptions_detected;
  }
  return t;
}

LinkStats RunResult::transport_total() const {
  LinkStats t;
  for (const auto& r : ranks) {
    const LinkStats rt = r.transport_total();
    t.retries += rt.retries;
    t.dup_discards += rt.dup_discards;
    t.corruptions_detected += rt.corruptions_detected;
  }
  return t;
}

FaultCounters RunResult::faults_total() const {
  FaultCounters t;
  for (const auto& r : ranks) t += r.faults;
  return t;
}

struct Machine::Sync {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::thread> threads;
};

Machine::Machine(int nranks, CostModel cost)
    : nranks_(nranks), cost_(cost), sync_(std::make_unique<Sync>()) {
  if (nranks <= 0) throw std::invalid_argument("Machine: nranks must be > 0");
}

Machine::Machine(int nranks, CostModel cost, const FaultConfig& faults)
    : Machine(nranks, cost) {
  set_fault_model(faults);
}

Machine::~Machine() = default;

bool Machine::match(const Message& m, int src, int tag) const {
  return (src == kAnySource || m.src == src) &&
         (tag == kAnyTag || m.tag == tag);
}

bool Machine::runnable(const RankState& rs) const {
  if (rs.done) return false;
  if (!rs.waiting) return true;
  for (const auto& m : rs.mailbox)
    if (match(m, rs.want_src, rs.want_tag)) return true;
  return false;
}

int Machine::pick_next(int from) const {
  for (int step = 1; step <= nranks_; ++step) {
    const int cand = (from + step) % nranks_;
    if (runnable(ranks_[cand])) return cand;
  }
  return -1;
}

std::vector<BlockedInfo> Machine::blocked_ranks() const {
  std::vector<BlockedInfo> blocked;
  for (const auto& rs : ranks_) {
    if (rs.done) continue;
    blocked.push_back({rs.id, rs.want_src, rs.want_tag, rs.mailbox.size()});
  }
  return blocked;
}

std::string Machine::deadlock_report() const {
  // Emit the wait graph: each blocked rank, what it wants, and the state of
  // the rank it is waiting on (done ranks can never satisfy a recv — the
  // most common deadlock cause).
  std::ostringstream os;
  os << "simulated machine deadlock: all live ranks blocked in recv\n";
  for (const auto& rs : ranks_) {
    if (rs.done) continue;
    os << "  rank " << rs.id << " waiting for (src=" << rs.want_src
       << ", tag=" << rs.want_tag << "), mailbox holds " << rs.mailbox.size()
       << " message(s)";
    if (rs.want_src >= 0 && rs.want_src < nranks_) {
      const auto& peer = ranks_[static_cast<std::size_t>(rs.want_src)];
      if (peer.done)
        os << "; rank " << rs.want_src << " already finished";
      else if (peer.waiting)
        os << "; rank " << rs.want_src << " is itself blocked on (src="
           << peer.want_src << ", tag=" << peer.want_tag << ")";
    }
    os << "\n";
  }
  return os.str();
}

void Machine::yield_from(int rank) {
  // Caller holds no lock; acquire, transfer control, and wait to be
  // rescheduled. Only the active rank ever calls this.
  std::unique_lock<std::mutex> lk(sync_->mutex);
  const int next = pick_next(rank);
  if (next == -1) {
    if (live_ > 0) {
      // Everyone (including us, who must be waiting or done) is blocked.
      // Snapshot the wait graph on the *first* detection only: ranks
      // unwinding afterwards re-enter here (their final yield re-detects
      // the same deadlock) and must not clobber the original picture.
      if (!deadlocked_) {
        deadlocked_ = true;
        deadlock_report_str_ = deadlock_report();
        deadlock_blocked_ = blocked_ranks();
      }
      current_ = -1;
      sync_->cv.notify_all();
      // Park forever; run() will detect deadlock and unwind via exception
      // propagated from the main thread. We still need to terminate this
      // thread: treat deadlock as fatal for the rank.
      throw DeadlockError("rank " + std::to_string(rank) +
                          " participated in a deadlock");
    }
    current_ = -1;  // all done; wake the main thread
    sync_->cv.notify_all();
    return;
  }
  current_ = next;
  sync_->cv.notify_all();
  if (ranks_[rank].done) return;  // finished ranks exit without re-waiting
  sync_->cv.wait(lk, [&] { return current_ == rank || deadlocked_; });
  if (deadlocked_ && current_ != rank)
    throw DeadlockError("rank " + std::to_string(rank) +
                        " unwound due to deadlock");
}

void Machine::do_send(int src, int dst, int tag,
                      std::vector<std::byte> payload) {
  if (dst < 0 || dst >= nranks_)
    throw std::out_of_range("send: bad destination rank " +
                            std::to_string(dst));
  auto& s = ranks_[src];
  if (strict_tags_ && tag < 0 && s.collective_depth == 0)
    throw std::invalid_argument(
        "send: tag " + std::to_string(tag) +
        " is in the reserved (negative) collective tag space; user traffic "
        "must use tags >= 0");
  const auto bytes = payload.size();
  const double cost = cost_.message_cost(bytes);
  s.clock += cost;
  auto& pc = s.stats.phase(s.phase);
  pc.msgs_sent += 1;
  pc.bytes_sent += bytes;
  pc.comm_seconds += cost;

  Message m;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  m.arrival = s.clock;
  m.sent_phase = s.phase;
  m.payload = std::move(payload);

  if (observer_) {
    SendEvent ev;
    ev.src = src;
    ev.dst = dst;
    ev.tag = tag;
    ev.bytes = bytes;
    ev.phase = s.phase;
    ev.collective_depth = s.collective_depth;
    ev.vtime = s.clock;
    // Stamped before any fault perturbation so a duplicated delivery
    // carries the same send event (same vector clock).
    observer_->on_send(m, ev);
  }

  auto& dstbox = ranks_[dst].mailbox;
  if (!faults_.message_faults()) {
    dstbox.push_back(std::move(m));
    // The receiver (if parked on a matching recv) becomes runnable; the
    // scheduler re-evaluates predicates on the next yield, so nothing else
    // to do here.
    return;
  }

  // ---- faulty-fabric path: envelope the payload, then perturb ----
  if (s.next_seq.empty())
    s.next_seq.assign(static_cast<std::size_t>(nranks_), 0);
  m.seq = s.next_seq[static_cast<std::size_t>(dst)]++;
  m.checksum = fnv1a(m.payload.data(), m.payload.size());
  m.arrival += faults_.latency_jitter(src);

  const bool duplicate = faults_.should_duplicate(src);
  // Cross-flow reordering only: the new message may overtake the youngest
  // queued message of a *different* (src, tag) flow. Per-flow FIFO holds,
  // like per-channel ordering on a real fabric, so tag-selective matching
  // absorbs the disorder.
  if (faults_.should_reorder(src) && !dstbox.empty() &&
      (dstbox.back().src != m.src || dstbox.back().tag != m.tag)) {
    dstbox.insert(dstbox.end() - 1, m);
  } else {
    dstbox.push_back(m);
  }
  if (duplicate) {
    Message copy = std::move(m);
    copy.arrival += faults_.latency_jitter(src);
    dstbox.push_back(std::move(copy));
  }
}

LinkStats& Machine::link_stats(RankState& rs, int src) {
  if (rs.links.empty())
    rs.links.assign(static_cast<std::size_t>(nranks_), LinkStats{});
  return rs.links[static_cast<std::size_t>(src)];
}

/// Receiver-side recovery of a delivery the fault model corrupted on the
/// wire: prove detection (flip a real bit, watch the FNV-1a checksum
/// mismatch), then model a NACK on the control channel (kTagRetransmit)
/// plus a retransmission from the sender's NIC buffer, with exponential
/// backoff in virtual time. The sender's *program* is never interrupted —
/// the wire copy is retransmitted below it, so the whole round-trip is
/// charged to the receiver as added latency. Throws TransportError once
/// the retry budget is exhausted.
void Machine::recover_corruption(int rank, const Message& m) {
  auto& rs = ranks_[rank];
  const int max_retries = faults_.config().max_retries;
  static constexpr std::size_t kNackBytes = 16;  // seq + checksum echo
  int attempt = 0;
  std::vector<std::byte> tainted;
  while (faults_.should_corrupt_delivery(rank)) {
    tainted = m.payload;
    faults_.flip_random_bit(rank, tainted.data(), tainted.size());
    if (!tainted.empty() &&
        fnv1a(tainted.data(), tainted.size()) == m.checksum) {
      // Checksum collision: a single flipped bit always changes FNV-1a, so
      // this is unreachable; guard anyway rather than loop on a bad model.
      break;
    }
    ++attempt;
    auto& ls = link_stats(rs, m.src);
    ls.corruptions_detected += 1;
    if (attempt > max_retries)
      throw TransportError(
          "transport: message src=" + std::to_string(m.src) +
          " dst=" + std::to_string(m.dst) + " tag=" + std::to_string(m.tag) +
          " seq=" + std::to_string(m.seq) + " still corrupt after " +
          std::to_string(max_retries) + " retransmissions");
    ls.retries += 1;
    // NACK out, fresh copy back, doubling the wait each attempt.
    const double backoff =
        (cost_.message_cost(kNackBytes) + cost_.message_cost(m.bytes())) *
        static_cast<double>(1ULL << std::min(attempt - 1, 20));
    // The backoff advances the clock here; the caller's arrival-to-delivery
    // delta picks it up as comm time, so only traffic is counted directly.
    rs.clock += backoff;
    auto& pc = rs.stats.phase(rs.phase);
    pc.msgs_sent += 1;
    pc.bytes_sent += kNackBytes;
    pc.msgs_recv += 1;
    pc.bytes_recv += m.bytes();
  }
}

Message Machine::do_recv(int rank, int src, int tag, bool fp_payload) {
  auto& rs = ranks_[rank];
  if (strict_tags_ && tag != kAnyTag && tag < 0 && rs.collective_depth == 0)
    throw std::invalid_argument(
        "recv: explicit tag " + std::to_string(tag) +
        " is in the reserved (negative) collective tag space; user receives "
        "must use tags >= 0 or kAnyTag");
  const bool mf = faults_.message_faults();
  const bool dedup = mf && faults_.config().duplicate_prob > 0.0;
  for (;;) {
    for (auto it = rs.mailbox.begin(); it != rs.mailbox.end();) {
      if (!match(*it, src, tag)) {
        ++it;
        continue;
      }
      if (dedup) {
        if (rs.seen_seq.empty())
          rs.seen_seq.resize(static_cast<std::size_t>(nranks_));
        auto& seen = rs.seen_seq[static_cast<std::size_t>(it->src)];
        if (!seen.insert(it->seq).second) {
          // Duplicate delivery: the transport silently drops it.
          link_stats(rs, it->src).dup_discards += 1;
          it = rs.mailbox.erase(it);
          continue;
        }
      }
      Message m = std::move(*it);
      rs.mailbox.erase(it);
      const double before = rs.clock;
      rs.clock = std::max(rs.clock, m.arrival);
      if (cost_.recv_copy_mu > 0.0)
        rs.clock += cost_.recv_copy_mu * static_cast<double>(m.bytes());
      if (mf && faults_.config().corrupt_prob > 0.0)
        recover_corruption(rank, m);
      auto& pc = rs.stats.phase(rs.phase);
      pc.msgs_recv += 1;
      pc.bytes_recv += m.bytes();
      pc.comm_seconds += rs.clock - before;
      rs.waiting = false;
      if (observer_) {
        RecvEvent ev;
        ev.rank = rank;
        ev.want_src = src;
        ev.want_tag = tag;
        ev.fp_payload = fp_payload;
        ev.order_insensitive = rs.unordered_depth > 0;
        ev.phase = rs.phase;
        ev.collective_depth = rs.collective_depth;
        ev.vtime = rs.clock;
        // The matched message is already out of the mailbox: what is left
        // are the still-pending messages (race candidates among them).
        observer_->on_recv(m, ev, rs.mailbox);
      }
      return m;
    }
    rs.waiting = true;
    rs.want_src = src;
    rs.want_tag = tag;
    yield_from(rank);
    rs.waiting = false;
  }
}

bool Machine::do_iprobe(int rank, int src, int tag) const {
  for (const auto& m : ranks_[rank].mailbox)
    if (match(m, src, tag)) return true;
  return false;
}

void Machine::charge(int rank, double seconds, bool is_compute) {
  auto& rs = ranks_[rank];
  if (is_compute && faults_.compute_faults())
    seconds *= faults_.compute_factor(rank);
  rs.clock += seconds;
  auto& pc = rs.stats.phase(rs.phase);
  if (is_compute)
    pc.compute_seconds += seconds;
  else
    pc.comm_seconds += seconds;
}

void Machine::rank_main(int rank, const std::function<void(Comm&)>& program) {
  {
    std::unique_lock<std::mutex> lk(sync_->mutex);
    sync_->cv.wait(lk, [&] { return current_ == rank || deadlocked_; });
    if (deadlocked_) {
      ranks_[rank].done = true;
      --live_;
      return;
    }
  }
  try {
    Comm comm(this, rank);
    program(comm);
  } catch (const DeadlockError&) {
    // Already recorded globally; just unwind.
  } catch (...) {
    ranks_[rank].error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lk(sync_->mutex);
    ranks_[rank].done = true;
    --live_;
  }
  try {
    yield_from(rank);
  } catch (const DeadlockError&) {
    // This rank is already done; other ranks' deadlock is reported by run().
  }
}

RunResult Machine::run(const std::function<void(Comm&)>& program) {
  ranks_.assign(static_cast<std::size_t>(nranks_), RankState{});
  for (int i = 0; i < nranks_; ++i) ranks_[i].id = i;
  if (observer_) observer_->on_run_start(nranks_);
  faults_.reset();  // identical fault streams on every run of this Machine
  live_ = nranks_;
  deadlocked_ = false;
  current_ = -1;
  deadlock_report_str_.clear();
  deadlock_blocked_.clear();

  sync_->threads.clear();
  sync_->threads.reserve(static_cast<std::size_t>(nranks_));
  for (int i = 0; i < nranks_; ++i)
    sync_->threads.emplace_back([this, i, &program] { rank_main(i, program); });

  {
    std::unique_lock<std::mutex> lk(sync_->mutex);
    current_ = 0;
    sync_->cv.notify_all();
    sync_->cv.wait(lk, [&] { return live_ == 0 || deadlocked_; });
    if (deadlocked_) {
      // Let every parked rank unwind so threads can be joined.
      sync_->cv.notify_all();
      lk.unlock();
      for (auto& t : sync_->threads) t.join();
      sync_->threads.clear();
      throw DeadlockError(deadlock_report_str_,
                          std::move(deadlock_blocked_));
    }
  }
  for (auto& t : sync_->threads) t.join();
  sync_->threads.clear();

  for (const auto& rs : ranks_)
    if (rs.error) std::rethrow_exception(rs.error);

  RunResult result;
  result.ranks.reserve(ranks_.size());
  for (const auto& rs : ranks_) {
    RankReport rep;
    rep.rank = rs.id;
    rep.clock = rs.clock;
    rep.stats = rs.stats;
    if (faults_.enabled()) rep.faults = faults_.counters(rs.id);
    rep.links = rs.links;
    result.ranks.push_back(std::move(rep));
  }
  return result;
}

}  // namespace picpar::sim
