#include "sim/machine.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>

#include "sim/comm.hpp"

namespace picpar::sim {

double RunResult::makespan() const {
  double m = 0.0;
  for (const auto& r : ranks) m = std::max(m, r.clock);
  return m;
}

double RunResult::max_compute() const {
  double m = 0.0;
  for (const auto& r : ranks) m = std::max(m, r.stats.total().compute_seconds);
  return m;
}

struct Machine::Sync {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::thread> threads;
};

Machine::Machine(int nranks, CostModel cost)
    : nranks_(nranks), cost_(cost), sync_(std::make_unique<Sync>()) {
  if (nranks <= 0) throw std::invalid_argument("Machine: nranks must be > 0");
}

Machine::~Machine() = default;

bool Machine::match(const Message& m, int src, int tag) const {
  return (src == kAnySource || m.src == src) &&
         (tag == kAnyTag || m.tag == tag);
}

bool Machine::runnable(const RankState& rs) const {
  if (rs.done) return false;
  if (!rs.waiting) return true;
  for (const auto& m : rs.mailbox)
    if (match(m, rs.want_src, rs.want_tag)) return true;
  return false;
}

int Machine::pick_next(int from) const {
  for (int step = 1; step <= nranks_; ++step) {
    const int cand = (from + step) % nranks_;
    if (runnable(ranks_[cand])) return cand;
  }
  return -1;
}

std::string Machine::deadlock_report() const {
  std::ostringstream os;
  os << "simulated machine deadlock: all live ranks blocked in recv\n";
  for (const auto& rs : ranks_) {
    if (rs.done) continue;
    os << "  rank " << rs.id << " waiting for (src=" << rs.want_src
       << ", tag=" << rs.want_tag << "), mailbox holds " << rs.mailbox.size()
       << " message(s)\n";
  }
  return os.str();
}

void Machine::yield_from(int rank) {
  // Caller holds no lock; acquire, transfer control, and wait to be
  // rescheduled. Only the active rank ever calls this.
  std::unique_lock<std::mutex> lk(sync_->mutex);
  const int next = pick_next(rank);
  if (next == -1) {
    if (live_ > 0) {
      // Everyone (including us, who must be waiting or done) is blocked.
      deadlocked_ = true;
      current_ = -1;
      sync_->cv.notify_all();
      // Park forever; run() will detect deadlock and unwind via exception
      // propagated from the main thread. We still need to terminate this
      // thread: treat deadlock as fatal for the rank.
      throw DeadlockError("rank " + std::to_string(rank) +
                          " participated in a deadlock");
    }
    current_ = -1;  // all done; wake the main thread
    sync_->cv.notify_all();
    return;
  }
  current_ = next;
  sync_->cv.notify_all();
  if (ranks_[rank].done) return;  // finished ranks exit without re-waiting
  sync_->cv.wait(lk, [&] { return current_ == rank || deadlocked_; });
  if (deadlocked_ && current_ != rank)
    throw DeadlockError("rank " + std::to_string(rank) +
                        " unwound due to deadlock");
}

void Machine::do_send(int src, int dst, int tag,
                      std::vector<std::byte> payload) {
  if (dst < 0 || dst >= nranks_)
    throw std::out_of_range("send: bad destination rank " +
                            std::to_string(dst));
  auto& s = ranks_[src];
  const auto bytes = payload.size();
  const double cost = cost_.message_cost(bytes);
  s.clock += cost;
  auto& pc = s.stats.phase(s.phase);
  pc.msgs_sent += 1;
  pc.bytes_sent += bytes;
  pc.comm_seconds += cost;

  Message m;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  m.arrival = s.clock;
  m.payload = std::move(payload);
  ranks_[dst].mailbox.push_back(std::move(m));
  // The receiver (if parked on a matching recv) becomes runnable; the
  // scheduler re-evaluates predicates on the next yield, so nothing else
  // to do here.
}

Message Machine::do_recv(int rank, int src, int tag) {
  auto& rs = ranks_[rank];
  for (;;) {
    for (auto it = rs.mailbox.begin(); it != rs.mailbox.end(); ++it) {
      if (!match(*it, src, tag)) continue;
      Message m = std::move(*it);
      rs.mailbox.erase(it);
      const double before = rs.clock;
      rs.clock = std::max(rs.clock, m.arrival);
      if (cost_.recv_copy_mu > 0.0)
        rs.clock += cost_.recv_copy_mu * static_cast<double>(m.bytes());
      auto& pc = rs.stats.phase(rs.phase);
      pc.msgs_recv += 1;
      pc.bytes_recv += m.bytes();
      pc.comm_seconds += rs.clock - before;
      rs.waiting = false;
      return m;
    }
    rs.waiting = true;
    rs.want_src = src;
    rs.want_tag = tag;
    yield_from(rank);
    rs.waiting = false;
  }
}

bool Machine::do_iprobe(int rank, int src, int tag) const {
  for (const auto& m : ranks_[rank].mailbox)
    if (match(m, src, tag)) return true;
  return false;
}

void Machine::charge(int rank, double seconds, bool is_compute) {
  auto& rs = ranks_[rank];
  rs.clock += seconds;
  auto& pc = rs.stats.phase(rs.phase);
  if (is_compute)
    pc.compute_seconds += seconds;
  else
    pc.comm_seconds += seconds;
}

void Machine::rank_main(int rank, const std::function<void(Comm&)>& program) {
  {
    std::unique_lock<std::mutex> lk(sync_->mutex);
    sync_->cv.wait(lk, [&] { return current_ == rank || deadlocked_; });
    if (deadlocked_) {
      ranks_[rank].done = true;
      --live_;
      return;
    }
  }
  try {
    Comm comm(this, rank);
    program(comm);
  } catch (const DeadlockError&) {
    // Already recorded globally; just unwind.
  } catch (...) {
    ranks_[rank].error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lk(sync_->mutex);
    ranks_[rank].done = true;
    --live_;
  }
  try {
    yield_from(rank);
  } catch (const DeadlockError&) {
    // This rank is already done; other ranks' deadlock is reported by run().
  }
}

RunResult Machine::run(const std::function<void(Comm&)>& program) {
  ranks_.assign(static_cast<std::size_t>(nranks_), RankState{});
  for (int i = 0; i < nranks_; ++i) ranks_[i].id = i;
  live_ = nranks_;
  deadlocked_ = false;
  current_ = -1;

  sync_->threads.clear();
  sync_->threads.reserve(static_cast<std::size_t>(nranks_));
  for (int i = 0; i < nranks_; ++i)
    sync_->threads.emplace_back([this, i, &program] { rank_main(i, program); });

  {
    std::unique_lock<std::mutex> lk(sync_->mutex);
    current_ = 0;
    sync_->cv.notify_all();
    sync_->cv.wait(lk, [&] { return live_ == 0 || deadlocked_; });
    if (deadlocked_) {
      const std::string report = deadlock_report();
      // Let every parked rank unwind so threads can be joined.
      sync_->cv.notify_all();
      lk.unlock();
      for (auto& t : sync_->threads) t.join();
      sync_->threads.clear();
      throw DeadlockError(report);
    }
  }
  for (auto& t : sync_->threads) t.join();
  sync_->threads.clear();

  for (const auto& rs : ranks_)
    if (rs.error) std::rethrow_exception(rs.error);

  RunResult result;
  result.ranks.reserve(ranks_.size());
  for (const auto& rs : ranks_) {
    RankReport rep;
    rep.rank = rs.id;
    rep.clock = rs.clock;
    rep.stats = rs.stats;
    result.ranks.push_back(std::move(rep));
  }
  return result;
}

}  // namespace picpar::sim
