// Point-to-point message representation inside the simulated machine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/comm_stats.hpp"

namespace picpar::sim {

/// Wildcards for Comm::recv matching.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
  int src = 0;
  int dst = 0;
  int tag = 0;
  /// Virtual time at which the message is available at the receiver.
  double arrival = 0.0;
  /// Transport envelope: per-(src, dst)-link sequence number and FNV-1a
  /// payload checksum. The sequence number is always assigned (deterministic
  /// matching orders a link's traffic by it); the checksum is only computed
  /// when a fault model with message faults is active. Envelope fields ride
  /// as struct metadata, so they never change the modeled byte counts or
  /// costs.
  std::uint64_t seq = 0;
  std::uint64_t checksum = 0;
  /// True for the redelivered copy of a duplicated message (fault model).
  /// The copy shares `seq` with the original; matching breaks the tie in
  /// favor of the original so dedup behavior is schedule-independent.
  bool dup = false;
  /// Sender's phase when the message was posted; the analysis layer checks
  /// it against the receiver's phase at delivery (metadata, never costed).
  Phase sent_phase = Phase::kOther;
  /// Membership epoch the sender executed in when posting (metadata, never
  /// costed). Survivor mailboxes are purged of pre-agreement epochs after a
  /// membership change, and the analyzer never pairs receives across epochs.
  int epoch = 0;
  /// Sender's vector clock at the send event, stamped by an installed
  /// MachineObserver (see sim/observer.hpp); empty when none is attached.
  /// The send event is identified by (src, vclock[src]).
  std::vector<std::uint64_t> vclock;
  std::vector<std::byte> payload;

  std::size_t bytes() const { return payload.size(); }
};

}  // namespace picpar::sim
