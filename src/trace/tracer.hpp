// Deterministic tracer for the simulated machine.
//
// A Tracer is a sim::MachineObserver that records, per rank: phase spans
// (virtual-time intervals between Comm::set_phase changes), message
// send/receive records for flow reconstruction, and named instants
// (Comm::mark). Like the analyzer, it obeys the mode-independence rule:
// every callback touches only the fired rank's buffer, and all cross-rank
// work — closing the final spans at the ranks' final clocks, matching
// sends to receives into flows, building the redistribution timeline,
// populating the metrics registry — is deferred to on_run_end, the
// quiescence point, and merged in rank order. The per-rank event sequences
// and virtual times are schedule-independent, so everything derived from
// them (TraceData minus wall-time fields, RedistTimeline, MetricsSnapshot)
// is byte-identical between sequential and parallel execution.
//
// Wall-clock times are recorded alongside the virtual spans but are
// excluded from every exporter by default; they exist for humans looking
// at one run, not for comparisons.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/observer.hpp"
#include "trace/metrics.hpp"

namespace picpar::trace {

// Mark names emitted by the PIC driver (src/pic) and the transport layer.
// The tracer folds `pic.*` marks into the redistribution timeline; every
// mark also appears verbatim in TraceData::marks.
inline constexpr const char* kMarkIter = "pic.iter";            ///< rank 0, value = loop seconds
inline constexpr const char* kMarkParticles = "pic.particles";  ///< every rank, value = local count
inline constexpr const char* kMarkRedistDecision = "pic.redist.decision";
inline constexpr const char* kMarkRedistDone = "pic.redist.done";  ///< value = redist seconds
inline constexpr const char* kMarkRedistSent = "pic.redist.sent";  ///< every rank, value = particles sent
inline constexpr const char* kMarkGhostEntries =
    "pic.ghost_entries";  ///< every rank, value = distinct ghost nodes
inline constexpr const char* kMarkViolation = "pic.violation";  ///< value = validation mask
inline constexpr const char* kMarkRecovered = "pic.recovered";  ///< value = recovery seconds
inline constexpr const char* kMarkInit = "pic.init";  ///< iter = -1, value = init seconds
inline constexpr const char* kMarkTransportRetry = "transport.retry";
// Fail-stop recovery marks. The first three are emitted by the machine
// itself (sim/machine.cpp uses the string literals; keep them in sync):
// fault.crash at the crashing rank's last instant, fault.crash_detected at
// the survivor that first times out the dead peer's lease (value = newly
// detected peers), membership.agree on every survivor when the shrunken
// view commits (iter = epoch, value = survivor count). The pic.* marks are
// emitted by run_pic during recovery orchestration.
inline constexpr const char* kMarkCrash = "fault.crash";
inline constexpr const char* kMarkCrashDetected = "fault.crash_detected";
inline constexpr const char* kMarkMembership = "membership.agree";
inline constexpr const char* kMarkCrashRecovered =
    "pic.crash_recovered";  ///< rank 0, iter = resume iter, value = MTTR s
inline constexpr const char* kMarkCrashLost =
    "pic.crash_lost";  ///< rank 0, value = particles lost to the crash
inline constexpr const char* kMarkCrashRestored =
    "pic.crash_restored";  ///< rank 0, value = particles restored from ckpt
inline constexpr const char* kMarkMemPeak =
    "mem.peak_bytes";  ///< every rank, value = peak ghost+sort bytes
// Per-subsystem memory-budget breakdown (every rank, per-run peak bytes).
// All three are deterministic functions of the rank's event history, so the
// derived gauges stay byte-identical across execution modes.
inline constexpr const char* kMarkMemMachine =
    "mem.machine_bytes";  ///< sparse per-peer transport tables
inline constexpr const char* kMarkMemExchange =
    "mem.exchange_bytes";  ///< ghost tables + staged exchange messages
inline constexpr const char* kMarkMemSort =
    "mem.sort_bytes";  ///< partitioner sort buckets + bounds

/// One contiguous interval a rank spent in one phase. Virtual times are
/// deterministic; w0/w1 are wall-clock microseconds since run start and are
/// schedule-dependent.
struct Span {
  int rank = 0;
  sim::Phase phase = sim::Phase::kOther;
  double t0 = 0.0;
  double t1 = 0.0;
  double w0 = 0.0;
  double w1 = 0.0;
};

/// One matched message: send on (src, seq) link order, receive at t_recv.
struct Flow {
  int src = 0;
  int dst = 0;
  int tag = 0;
  std::uint64_t seq = 0;
  std::size_t bytes = 0;
  sim::Phase send_phase = sim::Phase::kOther;
  sim::Phase recv_phase = sim::Phase::kOther;
  double t_send = 0.0;
  double t_recv = 0.0;
  bool collective = false;
};

/// One named instant (Comm::mark or transport event), copied out of the
/// MarkEvent.
struct Mark {
  int rank = 0;
  std::string name;
  sim::Phase phase = sim::Phase::kOther;
  double vtime = 0.0;
  std::int64_t iter = 0;
  double value = 0.0;
};

/// Everything the tracer knows after one run, merged in rank order.
struct TraceData {
  int nranks = 0;
  std::vector<Span> spans;  ///< rank-major, time order within a rank
  std::vector<Flow> flows;  ///< receiver-major, receive order
  std::vector<Mark> marks;  ///< rank-major, emit order
  std::vector<double> final_clocks;
  std::uint64_t dropped_sends = 0;  ///< send records lost to the cap
  std::uint64_t dropped_recvs = 0;
  std::uint64_t dropped_marks = 0;
  std::uint64_t unreceived_msgs = 0;  ///< left in mailboxes at quiescence
};

/// One PIC iteration reconstructed from `pic.*` marks: the data behind the
/// paper's Figs 11-17 (per-rank particle counts, loop time, redistribution
/// cost and volume).
struct IterSample {
  std::int64_t iter = 0;
  double vtime = 0.0;         ///< rank-0 clock at the iteration boundary
  double loop_seconds = 0.0;  ///< global loop time (paper's t_i)
  bool redistributed = false;
  double redist_seconds = 0.0;
  std::uint64_t moved = 0;  ///< particles exchanged in redistribution
  bool violation = false;
  bool recovered = false;
  std::vector<std::uint64_t> particles;  ///< per-rank counts after the iter
};

struct RedistTimeline {
  int nranks = 0;
  std::vector<IterSample> iters;

  /// Degree of imbalance max/mean for one sample; 0 with no particles.
  static double imbalance(const IterSample& s);

  /// CSV: iter,vtime,loop_seconds,redistributed,redist_seconds,moved,
  /// violation,recovered,imbalance,p0..p{n-1} — one row per iteration.
  std::string to_csv() const;

  /// Load counterpart to to_csv(), so cached sweep results rehydrate
  /// without re-simulation. The imbalance column is derived from the
  /// per-rank counts and is recomputed, not stored. Strict: input must be
  /// to_csv() output; throws std::runtime_error otherwise. Round trip is
  /// byte-exact: from_csv(t.to_csv()).to_csv() == t.to_csv().
  static RedistTimeline from_csv(std::string_view text);
};

class Tracer final : public sim::MachineObserver {
public:
  struct Options {
    /// Record send/recv events and reconstruct message flows. Off: only
    /// spans and marks are traced (and per-phase traffic counters vanish
    /// from the metrics).
    bool flows = true;
    /// Per-rank caps; once hit, later records are counted as dropped, not
    /// stored. Drops are a suffix of each rank's stream, so flow matching
    /// on the recorded prefix stays exact.
    std::size_t max_sends_per_rank = std::size_t{1} << 18;
    std::size_t max_recvs_per_rank = std::size_t{1} << 18;
    std::size_t max_marks_per_rank = std::size_t{1} << 16;
  };

  Tracer() = default;
  explicit Tracer(const Options& opt) : opt_(opt) {}

  void on_run_start(int nranks) override;
  void on_send(sim::Message& m, const sim::SendEvent& e) override;
  void on_recv(const sim::Message& m, const sim::RecvEvent& e,
               const std::deque<sim::Message>& mailbox) override;
  void on_phase(const sim::PhaseEvent& e) override;
  void on_mark(const sim::MarkEvent& e) override;
  void on_run_end(
      const std::vector<const std::deque<sim::Message>*>& mailboxes,
      const std::vector<double>& final_clocks) override;

  // ---- results (valid after a completed run; reset by the next run) ----
  const TraceData& data() const { return data_; }
  const RedistTimeline& timeline() const { return timeline_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  MetricsRegistry& metrics() { return metrics_; }
  /// Observer callbacks fired during the run (sends + receives + phase
  /// changes + marks), before any cap.
  std::uint64_t events() const { return events_; }

private:
  struct SendRec {
    int dst = 0;
    int tag = 0;
    std::uint64_t seq = 0;
    std::size_t bytes = 0;
    sim::Phase phase = sim::Phase::kOther;
    double vtime = 0.0;
    bool collective = false;
  };
  struct RecvRec {
    int src = 0;
    std::uint64_t seq = 0;
    sim::Phase phase = sim::Phase::kOther;
    double vtime = 0.0;
  };
  struct MarkRec {
    std::string name;
    sim::Phase phase = sim::Phase::kOther;
    double vtime = 0.0;
    std::int64_t iter = 0;
    double value = 0.0;
  };
  /// Rank-private buffer: callbacks for rank r touch only bufs_[r].
  struct RankBuf {
    std::vector<Span> spans;  ///< closed spans
    sim::Phase cur_phase = sim::Phase::kOther;
    double cur_t0 = 0.0;
    double cur_w0 = 0.0;
    std::vector<SendRec> sends;
    std::vector<RecvRec> recvs;
    std::vector<MarkRec> marks;
    std::uint64_t dropped_sends = 0;
    std::uint64_t dropped_recvs = 0;
    std::uint64_t dropped_marks = 0;
    std::uint64_t events = 0;
  };

  /// Wall microseconds since on_run_start, via the project's one sanctioned
  /// wall-clock source (util::wall_clock; see wall-clock-in-sim in
  /// DESIGN.md section 12). Used only for the human-facing w0/w1 span
  /// fields, which every exporter excludes by default.
  double wall_us() const;

  void build_flows();
  void build_timeline();
  void build_metrics();

  Options opt_;
  int nranks_ = 0;
  std::vector<RankBuf> bufs_;
  std::uint64_t wall_base_ns_ = 0;  ///< util::wall_clock() at run start

  TraceData data_;
  RedistTimeline timeline_;
  MetricsRegistry metrics_;
  std::uint64_t events_ = 0;
};

/// Value of PICPAR_TRACE (Chrome-trace output path) when tracing is
/// enabled by environment, else nullptr. "" and "0" mean disabled, like
/// every other PICPAR_* opt-in.
const char* trace_env_path();
/// Same for PICPAR_TRACE_METRICS (metrics JSON output path).
const char* trace_metrics_env_path();

}  // namespace picpar::trace
