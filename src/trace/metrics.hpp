// Deterministic metrics: counters, gauges, and fixed-log2-bucket
// histograms.
//
// The registry is a plain map keyed by metric name; snapshots iterate it in
// sorted order and format numbers with std::to_chars (shortest round-trip),
// so two runs that observe the same values produce byte-identical JSON/CSV
// regardless of insertion order, locale, or host. Histograms use 65 fixed
// power-of-two buckets (bucket 0 holds values <= 1, bucket k holds
// (2^(k-1), 2^k] for k = 1..64), so the bucket layout never depends on the
// data and every bucket's "le_2^k" label is an exact inclusive bound.
//
// Not thread-safe: the tracer only touches its registry at run start and at
// the run-end quiescence point, where the machine guarantees a single
// caller.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace picpar::trace {

/// Number of log2 histogram buckets: values <= 1, then one bucket
/// (2^(k-1), 2^k] per k = 1..64.
inline constexpr std::size_t kHistogramBuckets = 65;

struct Histogram {
  std::uint64_t count = 0;
  double sum = 0.0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;  ///< size kHistogramBuckets once used

  void observe(std::uint64_t value);
};

/// One immutable, sorted view of a registry, with deterministic exporters.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram>> histograms;

  /// Pretty-printed JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{...}}; one metric per line, keys sorted. Histogram
  /// buckets appear as {"le_2^k": count} for non-empty buckets only.
  std::string to_json() const;

  /// CSV with header "type,name,value,sum,min,max"; counters and gauges
  /// fill only `value`, histogram rows carry count/sum/min/max, and each
  /// non-empty bucket adds a "bucket,<name>/le_2^k,<count>" row.
  std::string to_csv() const;

  /// Load counterparts to the exporters above, so cached sweep results
  /// rehydrate without re-simulation (DESIGN.md §13). Strict: the input
  /// must be in the exporters' own deterministic format; anything else
  /// throws std::runtime_error. The round trip is byte-exact:
  /// from_json(s.to_json()).to_json() == s.to_json(), likewise for CSV.
  static MetricsSnapshot from_json(std::string_view text);
  static MetricsSnapshot from_csv(std::string_view text);
};

class MetricsRegistry {
public:
  /// Increment a counter (created at 0 on first use).
  void add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  /// Set a gauge to an absolute value.
  void set(const std::string& name, double value) { gauges_[name] = value; }
  /// Record one sample into a log2-bucket histogram.
  void observe(const std::string& name, std::uint64_t value) {
    histograms_[name].observe(value);
  }

  void clear() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }
  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  MetricsSnapshot snapshot() const;

private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

namespace detail {
/// Append a number formatted with std::to_chars: shortest representation
/// that round-trips, identical on every host. Shared by every trace
/// exporter so all files obey one formatting rule.
void append_num(std::string& out, double v);
void append_num(std::string& out, std::uint64_t v);
void append_num(std::string& out, std::int64_t v);
}  // namespace detail

}  // namespace picpar::trace
