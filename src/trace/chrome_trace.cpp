#include "trace/chrome_trace.hpp"

#include <fstream>
#include <stdexcept>

#include "sim/comm_stats.hpp"

namespace picpar::trace {

namespace {

using detail::append_num;

void append_i64(std::string& out, std::int64_t v) { append_num(out, v); }

void append_common(std::string& out, const char* name, const char* cat,
                   const char* ph, int tid, double ts_us) {
  out += "{\"name\":\"";
  out += name;
  out += "\",\"cat\":\"";
  out += cat;
  out += "\",\"ph\":\"";
  out += ph;
  out += "\",\"pid\":0,\"tid\":";
  append_i64(out, tid);
  out += ",\"ts\":";
  append_num(out, ts_us);
}

/// Global-scope instants render as full-height markers; rank-local events
/// stay on their thread track.
bool global_scope(const std::string& name) {
  return name.rfind("pic.redist", 0) == 0 || name == kMarkViolation ||
         name == kMarkRecovered;
}

}  // namespace

std::string to_chrome_json(const TraceData& data,
                           const ChromeTraceOptions& opt,
                           const RedistTimeline* timeline) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto next = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  next();
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"picpar virtual time\"}}";
  for (int r = 0; r < data.nranks; ++r) {
    next();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    append_i64(out, r);
    out += ",\"args\":{\"name\":\"rank ";
    append_i64(out, r);
    out += "\"}}";
    next();
    out += "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    append_i64(out, r);
    out += ",\"args\":{\"sort_index\":";
    append_i64(out, r);
    out += "}}";
  }

  for (const Span& s : data.spans) {
    next();
    append_common(out, sim::phase_name(s.phase), "phase", "X", s.rank,
                  s.t0 * 1e6);
    out += ",\"dur\":";
    append_num(out, (s.t1 - s.t0) * 1e6);
    if (opt.include_wall) {
      out += ",\"args\":{\"wall_us\":";
      append_num(out, s.w0);
      out += ",\"wall_dur_us\":";
      append_num(out, s.w1 - s.w0);
      out += '}';
    }
    out += '}';
  }

  if (opt.flows) {
    for (const Flow& f : data.flows) {
      // Flow ids are strings so they never collide with JSON number
      // precision; (src, dst, seq) is unique per run.
      next();
      append_common(out, "msg", "flow", "s", f.src, f.t_send * 1e6);
      out += ",\"id\":\"f";
      append_i64(out, f.src);
      out += '.';
      append_i64(out, f.dst);
      out += '.';
      append_num(out, f.seq);
      out += "\",\"args\":{\"tag\":";
      append_i64(out, f.tag);
      out += ",\"bytes\":";
      append_num(out, static_cast<std::uint64_t>(f.bytes));
      out += ",\"collective\":";
      out += f.collective ? "true" : "false";
      out += "}}";
      next();
      append_common(out, "msg", "flow", "f", f.dst, f.t_recv * 1e6);
      out += ",\"bp\":\"e\",\"id\":\"f";
      append_i64(out, f.src);
      out += '.';
      append_i64(out, f.dst);
      out += '.';
      append_num(out, f.seq);
      out += "\"}";
    }
  }

  for (const Mark& m : data.marks) {
    next();
    append_common(out, m.name.c_str(), "mark", "i", m.rank, m.vtime * 1e6);
    out += ",\"s\":\"";
    out += global_scope(m.name) ? 'g' : 't';
    out += "\",\"args\":{\"iter\":";
    append_i64(out, m.iter);
    out += ",\"value\":";
    append_num(out, m.value);
    out += "}}";
  }

  if (opt.counters && timeline) {
    for (const IterSample& s : timeline->iters) {
      for (int r = 0; r < timeline->nranks; ++r) {
        next();
        out += "{\"name\":\"particles[r";
        append_i64(out, r);
        out += "]\",\"cat\":\"counter\",\"ph\":\"C\",\"pid\":0,\"ts\":";
        append_num(out, s.vtime * 1e6);
        out += ",\"args\":{\"n\":";
        append_num(out, s.particles[static_cast<std::size_t>(r)]);
        out += "}}";
      }
      next();
      out += "{\"name\":\"imbalance\",\"cat\":\"counter\",\"ph\":\"C\","
             "\"pid\":0,\"ts\":";
      append_num(out, s.vtime * 1e6);
      out += ",\"args\":{\"max_over_mean\":";
      append_num(out, RedistTimeline::imbalance(s));
      out += "}}";
    }
  }

  out += "\n]}\n";
  return out;
}

void write_chrome_trace(const std::string& path, const TraceData& data,
                        const ChromeTraceOptions& opt,
                        const RedistTimeline* timeline) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("trace: cannot open " + path);
  const std::string json = to_chrome_json(data, opt, timeline);
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!f) throw std::runtime_error("trace: write failed for " + path);
}

}  // namespace picpar::trace
