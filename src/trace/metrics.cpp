#include "trace/metrics.hpp"

#include <bit>
#include <charconv>

namespace picpar::trace {

namespace detail {

void append_num(std::string& out, double v) {
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, r.ptr);
}

void append_num(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, r.ptr);
}

void append_num(std::string& out, std::int64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, r.ptr);
}

}  // namespace detail

using detail::append_num;

void Histogram::observe(std::uint64_t value) {
  if (buckets.empty()) buckets.assign(kHistogramBuckets, 0);
  if (count == 0) {
    min = value;
    max = value;
  } else {
    if (value < min) min = value;
    if (value > max) max = value;
  }
  count += 1;
  sum += static_cast<double>(value);
  // Bucket k holds (2^(k-1), 2^k] so the "le_2^k" label is exact; bucket 0
  // holds {0, 1}. bit_width(value) would misplace every exact power of two
  // by one bucket (2^k has bit width k+1), hence the value-1 form.
  const std::size_t idx =
      value <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(value - 1));
  buckets[idx] += 1;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  s.counters.assign(counters_.begin(), counters_.end());
  s.gauges.assign(gauges_.begin(), gauges_.end());
  s.histograms.assign(histograms_.begin(), histograms_.end());
  return s;
}

namespace {

void append_quoted(std::string& out, const std::string& name) {
  out += '"';
  out += name;  // metric names are [A-Za-z0-9._/^-]; nothing to escape
  out += '"';
}

void append_histogram_json(std::string& out, const Histogram& h) {
  out += "{\"count\":";
  append_num(out, h.count);
  out += ",\"sum\":";
  append_num(out, h.sum);
  out += ",\"min\":";
  append_num(out, h.min);
  out += ",\"max\":";
  append_num(out, h.max);
  out += ",\"buckets\":{";
  bool first = true;
  for (std::size_t k = 0; k < h.buckets.size(); ++k) {
    if (h.buckets[k] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += "\"le_2^";
    append_num(out, static_cast<std::uint64_t>(k));
    out += "\":";
    append_num(out, h.buckets[k]);
  }
  out += "}}";
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_quoted(out, counters[i].first);
    out += ": ";
    append_num(out, counters[i].second);
  }
  out += "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_quoted(out, gauges[i].first);
    out += ": ";
    append_num(out, gauges[i].second);
  }
  out += "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_quoted(out, histograms[i].first);
    out += ": ";
    append_histogram_json(out, histograms[i].second);
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsSnapshot::to_csv() const {
  std::string out = "type,name,value,sum,min,max\n";
  for (const auto& [name, v] : counters) {
    out += "counter,";
    out += name;
    out += ',';
    append_num(out, v);
    out += ",,,\n";
  }
  for (const auto& [name, v] : gauges) {
    out += "gauge,";
    out += name;
    out += ',';
    append_num(out, v);
    out += ",,,\n";
  }
  for (const auto& [name, h] : histograms) {
    out += "histogram,";
    out += name;
    out += ',';
    append_num(out, h.count);
    out += ',';
    append_num(out, h.sum);
    out += ',';
    append_num(out, h.min);
    out += ',';
    append_num(out, h.max);
    out += '\n';
    for (std::size_t k = 0; k < h.buckets.size(); ++k) {
      if (h.buckets[k] == 0) continue;
      out += "bucket,";
      out += name;
      out += "/le_2^";
      append_num(out, static_cast<std::uint64_t>(k));
      out += ',';
      append_num(out, h.buckets[k]);
      out += ",,,\n";
    }
  }
  return out;
}

}  // namespace picpar::trace
