#include "trace/metrics.hpp"

#include <bit>
#include <charconv>
#include <stdexcept>
#include <utility>

namespace picpar::trace {

namespace detail {

void append_num(std::string& out, double v) {
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, r.ptr);
}

void append_num(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, r.ptr);
}

void append_num(std::string& out, std::int64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, r.ptr);
}

}  // namespace detail

using detail::append_num;

void Histogram::observe(std::uint64_t value) {
  if (buckets.empty()) buckets.assign(kHistogramBuckets, 0);
  if (count == 0) {
    min = value;
    max = value;
  } else {
    if (value < min) min = value;
    if (value > max) max = value;
  }
  count += 1;
  sum += static_cast<double>(value);
  // Bucket k holds (2^(k-1), 2^k] so the "le_2^k" label is exact; bucket 0
  // holds {0, 1}. bit_width(value) would misplace every exact power of two
  // by one bucket (2^k has bit width k+1), hence the value-1 form.
  const std::size_t idx =
      value <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(value - 1));
  buckets[idx] += 1;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  s.counters.assign(counters_.begin(), counters_.end());
  s.gauges.assign(gauges_.begin(), gauges_.end());
  s.histograms.assign(histograms_.begin(), histograms_.end());
  return s;
}

namespace {

void append_quoted(std::string& out, const std::string& name) {
  out += '"';
  out += name;  // metric names are [A-Za-z0-9._/^-]; nothing to escape
  out += '"';
}

void append_histogram_json(std::string& out, const Histogram& h) {
  out += "{\"count\":";
  append_num(out, h.count);
  out += ",\"sum\":";
  append_num(out, h.sum);
  out += ",\"min\":";
  append_num(out, h.min);
  out += ",\"max\":";
  append_num(out, h.max);
  out += ",\"buckets\":{";
  bool first = true;
  for (std::size_t k = 0; k < h.buckets.size(); ++k) {
    if (h.buckets[k] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += "\"le_2^";
    append_num(out, static_cast<std::uint64_t>(k));
    out += "\":";
    append_num(out, h.buckets[k]);
  }
  out += "}}";
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_quoted(out, counters[i].first);
    out += ": ";
    append_num(out, counters[i].second);
  }
  out += "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_quoted(out, gauges[i].first);
    out += ": ";
    append_num(out, gauges[i].second);
  }
  out += "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_quoted(out, histograms[i].first);
    out += ": ";
    append_histogram_json(out, histograms[i].second);
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsSnapshot::to_csv() const {
  std::string out = "type,name,value,sum,min,max\n";
  for (const auto& [name, v] : counters) {
    out += "counter,";
    out += name;
    out += ',';
    append_num(out, v);
    out += ",,,\n";
  }
  for (const auto& [name, v] : gauges) {
    out += "gauge,";
    out += name;
    out += ',';
    append_num(out, v);
    out += ",,,\n";
  }
  for (const auto& [name, h] : histograms) {
    out += "histogram,";
    out += name;
    out += ',';
    append_num(out, h.count);
    out += ',';
    append_num(out, h.sum);
    out += ',';
    append_num(out, h.min);
    out += ',';
    append_num(out, h.max);
    out += '\n';
    for (std::size_t k = 0; k < h.buckets.size(); ++k) {
      if (h.buckets[k] == 0) continue;
      out += "bucket,";
      out += name;
      out += "/le_2^";
      append_num(out, static_cast<std::uint64_t>(k));
      out += ',';
      append_num(out, h.buckets[k]);
      out += ",,,\n";
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Loaders — the strict inverses of the exporters above. They only accept the
// exporters' own deterministic output (fixed indentation, fixed key order),
// which keeps them simple and makes any hand-edited or torn input an error
// rather than a silent partial parse.

namespace {

[[noreturn]] void load_fail(const char* what) {
  throw std::runtime_error(std::string("MetricsSnapshot: malformed input: ") +
                           what);
}

/// Newline-separated cursor over the input text.
struct Lines {
  std::string_view text;
  std::size_t pos = 0;

  bool done() const { return pos >= text.size(); }
  std::string_view next() {
    if (done()) load_fail("unexpected end of input");
    const auto nl = text.find('\n', pos);
    if (nl == std::string_view::npos) load_fail("unterminated line");
    std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  }
};

std::uint64_t parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  const auto r = std::from_chars(s.data(), s.data() + s.size(), v);
  if (r.ec != std::errc{} || r.ptr != s.data() + s.size())
    load_fail("bad unsigned integer");
  return v;
}

double parse_dbl(std::string_view s) {
  double v = 0.0;
  const auto r = std::from_chars(s.data(), s.data() + s.size(), v);
  if (r.ec != std::errc{} || r.ptr != s.data() + s.size())
    load_fail("bad number");
  return v;
}

/// In-line cursor for the single-line histogram JSON object.
struct Scan {
  std::string_view s;
  std::size_t pos = 0;

  void expect(std::string_view lit) {
    if (s.substr(pos, lit.size()) != lit) load_fail("unexpected token");
    pos += lit.size();
  }
  bool peek(char c) const { return pos < s.size() && s[pos] == c; }
  /// Consume up to (not including) the first delimiter in `delims`.
  std::string_view until(std::string_view delims) {
    const auto end = s.find_first_of(delims, pos);
    if (end == std::string_view::npos) load_fail("unterminated value");
    std::string_view v = s.substr(pos, end - pos);
    pos = end;
    return v;
  }
};

Histogram parse_histogram_json(std::string_view v) {
  Histogram h;
  Scan sc{v};
  sc.expect("{\"count\":");
  h.count = parse_u64(sc.until(","));
  sc.expect(",\"sum\":");
  h.sum = parse_dbl(sc.until(","));
  sc.expect(",\"min\":");
  h.min = parse_u64(sc.until(","));
  sc.expect(",\"max\":");
  h.max = parse_u64(sc.until(","));
  sc.expect(",\"buckets\":{");
  if (!sc.peek('}')) h.buckets.assign(kHistogramBuckets, 0);
  while (!sc.peek('}')) {
    sc.expect("\"le_2^");
    const auto k = parse_u64(sc.until("\""));
    if (k >= kHistogramBuckets) load_fail("bucket index out of range");
    sc.expect("\":");
    h.buckets[static_cast<std::size_t>(k)] = parse_u64(sc.until(",}"));
    if (sc.peek(',')) sc.expect(",");
  }
  sc.expect("}}");
  if (sc.pos != v.size()) load_fail("trailing histogram bytes");
  return h;
}

/// One `    "name": value` JSON section entry; returns false on the
/// section-closing line (which is passed in `close`).
bool parse_entry(std::string_view line, std::string_view close,
                 std::string& name, std::string_view& value) {
  if (line == close) return false;
  Scan sc{line};
  sc.expect("    \"");
  name = std::string(sc.until("\""));
  sc.expect("\": ");
  value = line.substr(sc.pos);
  if (!value.empty() && value.back() == ',') value.remove_suffix(1);
  if (value.empty()) load_fail("empty value");
  return true;
}

/// Split a CSV row into exactly `n` fields (metric names contain no commas
/// or quotes, so plain splitting is exact).
void split_csv(std::string_view line, std::string_view* fields,
               std::size_t n) {
  std::size_t start = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool last = i + 1 == n;
    const auto end = last ? line.size() : line.find(',', start);
    if (end == std::string_view::npos) load_fail("too few CSV fields");
    fields[i] = line.substr(start, end - start);
    start = end + 1;
  }
  if (n > 0 && fields[n - 1].find(',') != std::string_view::npos)
    load_fail("too many CSV fields");
}

}  // namespace

MetricsSnapshot MetricsSnapshot::from_json(std::string_view text) {
  MetricsSnapshot s;
  Lines in{text};
  if (in.next() != "{") load_fail("missing opening brace");
  if (in.next() != "  \"counters\": {") load_fail("missing counters section");
  std::string name;
  std::string_view value;
  while (parse_entry(in.next(), "  },", name, value))
    s.counters.emplace_back(name, parse_u64(value));
  if (in.next() != "  \"gauges\": {") load_fail("missing gauges section");
  while (parse_entry(in.next(), "  },", name, value))
    s.gauges.emplace_back(name, parse_dbl(value));
  if (in.next() != "  \"histograms\": {")
    load_fail("missing histograms section");
  while (parse_entry(in.next(), "  }", name, value))
    s.histograms.emplace_back(name, parse_histogram_json(value));
  if (in.next() != "}") load_fail("missing closing brace");
  if (!in.done()) load_fail("trailing bytes");
  return s;
}

MetricsSnapshot MetricsSnapshot::from_csv(std::string_view text) {
  MetricsSnapshot s;
  Lines in{text};
  if (in.next() != "type,name,value,sum,min,max") load_fail("missing header");
  while (!in.done()) {
    std::string_view f[6];
    split_csv(in.next(), f, 6);
    if (f[0] == "counter") {
      s.counters.emplace_back(std::string(f[1]), parse_u64(f[2]));
    } else if (f[0] == "gauge") {
      s.gauges.emplace_back(std::string(f[1]), parse_dbl(f[2]));
    } else if (f[0] == "histogram") {
      Histogram h;
      h.count = parse_u64(f[2]);
      h.sum = parse_dbl(f[3]);
      h.min = parse_u64(f[4]);
      h.max = parse_u64(f[5]);
      s.histograms.emplace_back(std::string(f[1]), std::move(h));
    } else if (f[0] == "bucket") {
      if (s.histograms.empty()) load_fail("bucket row before histogram row");
      auto& [hname, h] = s.histograms.back();
      const auto sep = f[1].rfind("/le_2^");
      if (sep == std::string_view::npos || f[1].substr(0, sep) != hname)
        load_fail("bucket row names a different histogram");
      const auto k = parse_u64(f[1].substr(sep + 6));
      if (k >= kHistogramBuckets) load_fail("bucket index out of range");
      if (h.buckets.empty()) h.buckets.assign(kHistogramBuckets, 0);
      h.buckets[static_cast<std::size_t>(k)] = parse_u64(f[2]);
    } else {
      load_fail("unknown row type");
    }
  }
  return s;
}

}  // namespace picpar::trace
