#include "trace/tracer.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/env.hpp"
#include "util/sparse_rank.hpp"
#include "util/wall_clock.hpp"

namespace picpar::trace {

using detail::append_num;

double Tracer::wall_us() const {
  return static_cast<double>(util::wall_clock() - wall_base_ns_) * 1e-3;
}

void Tracer::on_run_start(int nranks) {
  nranks_ = nranks;
  bufs_.assign(static_cast<std::size_t>(nranks), RankBuf{});
  wall_base_ns_ = util::wall_clock();
  data_ = TraceData{};
  timeline_ = RedistTimeline{};
  metrics_.clear();
  events_ = 0;
}

void Tracer::on_send(sim::Message& m, const sim::SendEvent& e) {
  RankBuf& b = bufs_[static_cast<std::size_t>(e.src)];
  b.events += 1;
  if (!opt_.flows) return;
  if (b.sends.size() >= opt_.max_sends_per_rank) {
    b.dropped_sends += 1;
    return;
  }
  SendRec rec;
  rec.dst = e.dst;
  rec.tag = e.tag;
  rec.seq = m.seq;
  rec.bytes = e.bytes;
  rec.phase = e.phase;
  rec.vtime = e.vtime;
  rec.collective = e.collective_depth > 0;
  b.sends.push_back(rec);
}

void Tracer::on_recv(const sim::Message& m, const sim::RecvEvent& e,
                     const std::deque<sim::Message>& mailbox) {
  // The mailbox snapshot is schedule-dependent under the parallel engine;
  // nothing recorded here may derive from it.
  (void)mailbox;
  RankBuf& b = bufs_[static_cast<std::size_t>(e.rank)];
  b.events += 1;
  if (!opt_.flows) return;
  if (b.recvs.size() >= opt_.max_recvs_per_rank) {
    b.dropped_recvs += 1;
    return;
  }
  RecvRec rec;
  rec.src = m.src;
  rec.seq = m.seq;
  rec.phase = e.phase;
  rec.vtime = e.vtime;
  b.recvs.push_back(rec);
}

void Tracer::on_phase(const sim::PhaseEvent& e) {
  RankBuf& b = bufs_[static_cast<std::size_t>(e.rank)];
  b.events += 1;
  const double w = wall_us();
  Span s;
  s.rank = e.rank;
  s.phase = b.cur_phase;
  s.t0 = b.cur_t0;
  s.t1 = e.vtime;
  s.w0 = b.cur_w0;
  s.w1 = w;
  b.spans.push_back(s);
  b.cur_phase = e.to;
  b.cur_t0 = e.vtime;
  b.cur_w0 = w;
}

void Tracer::on_mark(const sim::MarkEvent& e) {
  RankBuf& b = bufs_[static_cast<std::size_t>(e.rank)];
  b.events += 1;
  if (b.marks.size() >= opt_.max_marks_per_rank) {
    b.dropped_marks += 1;
    return;
  }
  MarkRec rec;
  rec.name = e.name;
  rec.phase = e.phase;
  rec.vtime = e.vtime;
  rec.iter = e.iter;
  rec.value = e.value;
  b.marks.push_back(std::move(rec));
}

void Tracer::on_run_end(
    const std::vector<const std::deque<sim::Message>*>& mailboxes,
    const std::vector<double>& final_clocks) {
  // Quiescence: all ranks done, per-rank buffers stable. Merge in rank
  // order so every derived artifact is schedule-independent.
  const double w_end = wall_us();
  data_ = TraceData{};
  data_.nranks = nranks_;
  data_.final_clocks = final_clocks;

  for (int r = 0; r < nranks_; ++r) {
    RankBuf& b = bufs_[static_cast<std::size_t>(r)];
    Span tail;
    tail.rank = r;
    tail.phase = b.cur_phase;
    tail.t0 = b.cur_t0;
    tail.t1 = final_clocks[static_cast<std::size_t>(r)];
    tail.w0 = b.cur_w0;
    tail.w1 = w_end;
    b.spans.push_back(tail);
    data_.spans.insert(data_.spans.end(), b.spans.begin(), b.spans.end());

    for (auto& m : b.marks) {
      Mark out;
      out.rank = r;
      out.name = std::move(m.name);
      out.phase = m.phase;
      out.vtime = m.vtime;
      out.iter = m.iter;
      out.value = m.value;
      data_.marks.push_back(std::move(out));
    }
    data_.dropped_sends += b.dropped_sends;
    data_.dropped_recvs += b.dropped_recvs;
    data_.dropped_marks += b.dropped_marks;
    events_ += b.events;
  }
  for (const auto* box : mailboxes)
    data_.unreceived_msgs += box->size();

  build_flows();
  build_timeline();
  build_metrics();

  bufs_.clear();
}

void Tracer::build_flows() {
  if (!opt_.flows) return;
  // A link's sends are recorded in seq order (per-link seqs are dense and
  // a rank's drops are a suffix of its stream), so index == seq. Links are
  // sparse in the destinations a sender actually touched — a neighbor-local
  // workload at p ranks touches O(neighbors) peers, so a dense p x p table
  // here would be the tracer's own O(p^2) blowup.
  std::vector<util::SparseRankMap<std::vector<const SendRec*>>> by_src(
      static_cast<std::size_t>(nranks_));
  for (int s = 0; s < nranks_; ++s)
    for (const SendRec& rec : bufs_[static_cast<std::size_t>(s)].sends)
      by_src[static_cast<std::size_t>(s)].ref(rec.dst).push_back(&rec);
  for (int r = 0; r < nranks_; ++r) {
    for (const RecvRec& rec : bufs_[static_cast<std::size_t>(r)].recvs) {
      const auto* link = by_src[static_cast<std::size_t>(rec.src)].find(r);
      if (!link || rec.seq >= link->size())
        continue;  // send record was dropped
      const SendRec& send = *(*link)[rec.seq];
      Flow f;
      f.src = rec.src;
      f.dst = r;
      f.tag = send.tag;
      f.seq = rec.seq;
      f.bytes = send.bytes;
      f.send_phase = send.phase;
      f.recv_phase = rec.phase;
      f.t_send = send.vtime;
      f.t_recv = rec.vtime;
      f.collective = send.collective;
      data_.flows.push_back(f);
    }
  }
}

void Tracer::build_timeline() {
  timeline_ = RedistTimeline{};
  timeline_.nranks = nranks_;
  auto sample = [&](std::int64_t iter) -> IterSample& {
    const auto want = static_cast<std::size_t>(iter) + 1;
    if (timeline_.iters.size() < want) {
      const std::size_t from = timeline_.iters.size();
      timeline_.iters.resize(want);
      for (std::size_t i = from; i < want; ++i) {
        timeline_.iters[i].iter = static_cast<std::int64_t>(i);
        timeline_.iters[i].particles.assign(
            static_cast<std::size_t>(nranks_), 0);
      }
    }
    return timeline_.iters[static_cast<std::size_t>(iter)];
  };
  for (const Mark& m : data_.marks) {
    if (m.iter < 0 || m.name.rfind("pic.", 0) != 0) continue;
    IterSample& s = sample(m.iter);
    if (m.name == kMarkIter) {
      s.vtime = m.vtime;
      s.loop_seconds = m.value;
    } else if (m.name == kMarkParticles) {
      s.particles[static_cast<std::size_t>(m.rank)] =
          static_cast<std::uint64_t>(m.value);
    } else if (m.name == kMarkRedistDone) {
      s.redistributed = true;
      s.redist_seconds = m.value;
    } else if (m.name == kMarkRedistSent) {
      s.moved += static_cast<std::uint64_t>(m.value);
    } else if (m.name == kMarkViolation) {
      s.violation = true;
    } else if (m.name == kMarkRecovered) {
      s.recovered = true;
    }
  }
}

void Tracer::build_metrics() {
  for (const Span& s : data_.spans) {
    const double us = (s.t1 - s.t0) * 1e6;
    metrics_.observe(std::string("phase.") + sim::phase_name(s.phase) +
                         ".span_us",
                     static_cast<std::uint64_t>(std::llround(us)));
  }
  if (opt_.flows) {
    for (int r = 0; r < nranks_; ++r) {
      for (const SendRec& rec : bufs_[static_cast<std::size_t>(r)].sends) {
        const std::string p = sim::phase_name(rec.phase);
        metrics_.add("phase." + p + ".msgs_sent");
        metrics_.add("phase." + p + ".bytes_sent", rec.bytes);
        metrics_.observe("msg.bytes", rec.bytes);
      }
    }
    for (const Flow& f : data_.flows) {
      const std::string p = sim::phase_name(f.recv_phase);
      metrics_.add("phase." + p + ".msgs_recv");
      metrics_.add("phase." + p + ".bytes_recv", f.bytes);
    }
  }
  // Fail-stop recovery accounting. Every key below is folded only when the
  // corresponding marks exist, so a crash-free run's metrics snapshot is
  // byte-identical to one produced before crash support existed.
  std::uint64_t crashes = 0, detections = 0, epochs = 0;
  double mttr = 0.0, lost = 0.0, restored = 0.0, recoveries = 0.0;
  double mem_peak = 0.0;
  double mem_machine = 0.0, mem_exchange = 0.0, mem_sort = 0.0;
  for (const Mark& m : data_.marks) {
    if (m.name == kMarkTransportRetry) metrics_.add("transport.retries");
    // Ghost-table size distribution: one observation per rank per
    // iteration, the scatter hot path's working-set histogram (§10).
    if (m.name == kMarkGhostEntries)
      metrics_.observe("pic.ghost_entries",
                       static_cast<std::uint64_t>(m.value));
    if (m.name == kMarkCrash) ++crashes;
    if (m.name == kMarkCrashDetected) ++detections;
    if (m.name == kMarkMembership)
      epochs = std::max(epochs, static_cast<std::uint64_t>(m.iter));
    if (m.name == kMarkCrashRecovered) {
      recoveries += 1.0;
      mttr += m.value;
    }
    if (m.name == kMarkCrashLost) lost += m.value;
    if (m.name == kMarkCrashRestored) restored += m.value;
    if (m.name == kMarkMemPeak) mem_peak = std::max(mem_peak, m.value);
    if (m.name == kMarkMemMachine)
      mem_machine = std::max(mem_machine, m.value);
    if (m.name == kMarkMemExchange)
      mem_exchange = std::max(mem_exchange, m.value);
    if (m.name == kMarkMemSort) mem_sort = std::max(mem_sort, m.value);
  }
  if (crashes > 0) metrics_.add("fault.crashes", crashes);
  if (detections > 0) metrics_.add("fault.crash_detections", detections);
  if (epochs > 0) metrics_.set("fault.membership_epochs",
                               static_cast<double>(epochs));
  if (recoveries > 0.0) {
    metrics_.set("recovery.count", recoveries);
    metrics_.set("recovery.mttr_seconds_total", mttr);
    metrics_.set("recovery.lost_particles", lost);
    metrics_.set("recovery.restored_particles", restored);
  }
  if (mem_peak > 0.0) metrics_.set("mem.peak_bytes", mem_peak);
  // Per-subsystem memory budget: gauge = max over ranks of each rank's
  // per-run peak, same folding rule as mem.peak_bytes. Absent from runs
  // whose driver predates the breakdown, so old snapshots stay identical.
  if (mem_machine > 0.0) metrics_.set("mem.machine_bytes", mem_machine);
  if (mem_exchange > 0.0) metrics_.set("mem.exchange_bytes", mem_exchange);
  if (mem_sort > 0.0) metrics_.set("mem.sort_bytes", mem_sort);

  metrics_.add("trace.spans", data_.spans.size());
  metrics_.add("trace.flows", data_.flows.size());
  metrics_.add("trace.marks", data_.marks.size());
  metrics_.add("trace.events", events_);
  metrics_.add("trace.dropped_sends", data_.dropped_sends);
  metrics_.add("trace.dropped_recvs", data_.dropped_recvs);
  metrics_.add("trace.dropped_marks", data_.dropped_marks);
  metrics_.add("trace.unreceived_msgs", data_.unreceived_msgs);

  double makespan = 0.0;
  for (double c : data_.final_clocks) makespan = std::max(makespan, c);
  metrics_.set("run.makespan_seconds", makespan);
  metrics_.set("run.ranks", static_cast<double>(nranks_));

  if (!timeline_.iters.empty()) {
    metrics_.add("pic.iterations", timeline_.iters.size());
    std::uint64_t redists = 0, moved = 0;
    double imb_max = 0.0;
    for (const IterSample& s : timeline_.iters) {
      if (s.redistributed) redists += 1;
      moved += s.moved;
      imb_max = std::max(imb_max, RedistTimeline::imbalance(s));
    }
    metrics_.add("pic.redistributions", redists);
    metrics_.add("pic.particles_moved", moved);
    metrics_.set("pic.imbalance_max", imb_max);
  }
}

double RedistTimeline::imbalance(const IterSample& s) {
  if (s.particles.empty()) return 0.0;
  std::uint64_t total = 0, mx = 0;
  for (std::uint64_t p : s.particles) {
    total += p;
    mx = std::max(mx, p);
  }
  if (total == 0) return 0.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(s.particles.size());
  return static_cast<double>(mx) / mean;
}

std::string RedistTimeline::to_csv() const {
  std::string out =
      "iter,vtime,loop_seconds,redistributed,redist_seconds,moved,"
      "violation,recovered,imbalance";
  for (int r = 0; r < nranks; ++r) {
    out += ",p";
    append_num(out, static_cast<std::int64_t>(r));
  }
  out += '\n';
  for (const IterSample& s : iters) {
    append_num(out, s.iter);
    out += ',';
    append_num(out, s.vtime);
    out += ',';
    append_num(out, s.loop_seconds);
    out += ',';
    out += s.redistributed ? '1' : '0';
    out += ',';
    append_num(out, s.redist_seconds);
    out += ',';
    append_num(out, s.moved);
    out += ',';
    out += s.violation ? '1' : '0';
    out += ',';
    out += s.recovered ? '1' : '0';
    out += ',';
    append_num(out, imbalance(s));
    for (std::uint64_t p : s.particles) {
      out += ',';
      append_num(out, p);
    }
    out += '\n';
  }
  return out;
}

namespace {

[[noreturn]] void timeline_fail(const char* what) {
  throw std::runtime_error(
      std::string("RedistTimeline: malformed input: ") + what);
}

template <typename T>
T timeline_num(std::string_view s) {
  T v{};
  const auto r = std::from_chars(s.data(), s.data() + s.size(), v);
  if (r.ec != std::errc{} || r.ptr != s.data() + s.size())
    timeline_fail("bad number");
  return v;
}

bool timeline_bool(std::string_view s) {
  if (s == "1") return true;
  if (s == "0") return false;
  timeline_fail("bad flag");
}

}  // namespace

RedistTimeline RedistTimeline::from_csv(std::string_view text) {
  constexpr std::string_view kHeader =
      "iter,vtime,loop_seconds,redistributed,redist_seconds,moved,"
      "violation,recovered,imbalance";
  RedistTimeline t;
  std::size_t pos = text.find('\n');
  if (pos == std::string_view::npos ||
      text.substr(0, kHeader.size()) != kHeader)
    timeline_fail("missing header");
  // The per-rank count columns ",p0,p1,..." fix nranks.
  std::string_view cols = text.substr(kHeader.size(), pos - kHeader.size());
  while (!cols.empty()) {
    if (cols.substr(0, 2) != ",p") timeline_fail("bad particle column");
    cols.remove_prefix(2);
    const auto end = cols.find(',');
    (void)timeline_num<std::uint64_t>(cols.substr(0, end));
    cols = end == std::string_view::npos ? std::string_view{}
                                         : cols.substr(end);
    ++t.nranks;
  }
  ++pos;
  const std::size_t nfields = 9 + static_cast<std::size_t>(t.nranks);
  std::vector<std::string_view> f(nfields);
  while (pos < text.size()) {
    const auto nl = text.find('\n', pos);
    if (nl == std::string_view::npos) timeline_fail("unterminated row");
    std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    std::size_t start = 0;
    for (std::size_t i = 0; i < nfields; ++i) {
      const bool last = i + 1 == nfields;
      const auto end = last ? line.size() : line.find(',', start);
      if (end == std::string_view::npos) timeline_fail("too few fields");
      f[i] = line.substr(start, end - start);
      start = end + 1;
    }
    if (f[nfields - 1].find(',') != std::string_view::npos)
      timeline_fail("too many fields");
    IterSample s;
    s.iter = timeline_num<std::int64_t>(f[0]);
    s.vtime = timeline_num<double>(f[1]);
    s.loop_seconds = timeline_num<double>(f[2]);
    s.redistributed = timeline_bool(f[3]);
    s.redist_seconds = timeline_num<double>(f[4]);
    s.moved = timeline_num<std::uint64_t>(f[5]);
    s.violation = timeline_bool(f[6]);
    s.recovered = timeline_bool(f[7]);
    (void)timeline_num<double>(f[8]);  // imbalance: derived, recomputed
    s.particles.reserve(static_cast<std::size_t>(t.nranks));
    for (std::size_t i = 9; i < nfields; ++i)
      s.particles.push_back(timeline_num<std::uint64_t>(f[i]));
    t.iters.push_back(std::move(s));
  }
  return t;
}

const char* trace_env_path() { return env_path("PICPAR_TRACE"); }
const char* trace_metrics_env_path() {
  return env_path("PICPAR_TRACE_METRICS");
}

}  // namespace picpar::trace
