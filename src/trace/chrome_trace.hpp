// Chrome-trace-event exporter (the JSON object format Perfetto and
// chrome://tracing load directly).
//
// Layout: one process (pid 0, "picpar virtual time"), one thread track per
// rank. Phase spans become complete ("X") events with ts/dur in virtual
// microseconds; message flows become "s"/"f" flow-event pairs bound to the
// enclosing spans; marks become instant ("i") events (global scope for
// pic.redist.*/pic.violation/pic.recovered, thread scope otherwise); the
// redistribution timeline adds per-rank particle counters and a
// degree-of-imbalance counter ("C" events).
//
// Determinism: everything written is derived from virtual time and
// formatted via std::to_chars, one event per line — with
// include_wall = false (the default) the output is byte-identical between
// sequential and parallel execution of the same program.
#pragma once

#include <string>

#include "trace/tracer.hpp"

namespace picpar::trace {

struct ChromeTraceOptions {
  /// Attach wall-clock args to span events. Wall times are
  /// schedule-dependent; leave off for comparable traces.
  bool include_wall = false;
  /// Emit send->recv flow events.
  bool flows = true;
  /// Emit counter tracks from the redistribution timeline.
  bool counters = true;
};

/// Render the trace as a Chrome-trace JSON string. `timeline` (optional)
/// supplies the counter tracks.
std::string to_chrome_json(const TraceData& data,
                           const ChromeTraceOptions& opt = {},
                           const RedistTimeline* timeline = nullptr);

/// Write to_chrome_json output to `path`; throws std::runtime_error when
/// the file cannot be written.
void write_chrome_trace(const std::string& path, const TraceData& data,
                        const ChromeTraceOptions& opt = {},
                        const RedistTimeline* timeline = nullptr);

}  // namespace picpar::trace
