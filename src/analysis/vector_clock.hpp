// Vector clocks over simulated ranks — the partial order underneath the
// happens-before analyzer.
//
// Component r counts the events rank r has executed. An event is a send,
// a completed receive, or anything else the tracker chooses to tick. The
// clock of a send rides on the message; a receive merges it into the
// receiver's clock, which is exactly Mattern/Fidge vector time: event a
// happens-before event b iff clock(a) < clock(b) component-wise (with at
// least one strict), and two events are concurrent iff their clocks are
// incomparable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace picpar::analysis {

class VectorClock {
public:
  VectorClock() = default;
  explicit VectorClock(int nranks)
      : c_(static_cast<std::size_t>(nranks), 0) {}
  explicit VectorClock(std::vector<std::uint64_t> components)
      : c_(std::move(components)) {}

  int size() const { return static_cast<int>(c_.size()); }
  bool empty() const { return c_.empty(); }
  std::uint64_t operator[](int rank) const {
    return c_[static_cast<std::size_t>(rank)];
  }
  const std::vector<std::uint64_t>& components() const { return c_; }

  /// Advance this rank's own component (call on every local event).
  void tick(int rank) { ++c_[static_cast<std::size_t>(rank)]; }

  /// Component-wise max with another clock (call on message receipt,
  /// before the receive event's own tick).
  void merge(const VectorClock& other);
  void merge(const std::vector<std::uint64_t>& other);

  /// True iff this clock's event happens-before other's (strictly).
  bool happens_before(const VectorClock& other) const;

  /// True iff neither happens-before the other: the events are concurrent
  /// (could be observed in either order).
  bool concurrent(const VectorClock& other) const {
    return !happens_before(other) && !other.happens_before(*this) &&
           c_ != other.c_;
  }

  /// FNV-1a over the components — the DAG-fingerprint building block.
  std::uint64_t hash() const;

  /// "[3 0 7 1]" — for finding provenance strings.
  std::string str() const;

private:
  std::vector<std::uint64_t> c_;
};

}  // namespace picpar::analysis
