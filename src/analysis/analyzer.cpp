#include "analysis/analyzer.hpp"

#include <sstream>

namespace picpar::analysis {

using sim::kAnySource;
using sim::kAnyTag;
using sim::Message;
using sim::Phase;

const char* finding_kind_name(FindingKind k) {
  switch (k) {
    case FindingKind::kMessageRace: return "message-race";
    case FindingKind::kTagViolation: return "tag-violation";
    case FindingKind::kPhaseMismatch: return "phase-mismatch";
    case FindingKind::kReductionOrder: return "reduction-order";
  }
  return "?";
}

namespace {

bool matches(int want_src, int want_tag, int src, int tag) {
  return (want_src == kAnySource || src == want_src) &&
         (want_tag == kAnyTag || tag == want_tag);
}

}  // namespace

void Analyzer::on_run_start(int nranks) {
  nranks_ = nranks;
  clocks_.assign(static_cast<std::size_t>(nranks), VectorClock(nranks));
  history_.assign(static_cast<std::size_t>(nranks), {});
  rank_fp_.assign(static_cast<std::size_t>(nranks), 0xcbf29ce484222325ULL);
  events_ = 0;
  // Findings survive on purpose: a Machine may run several programs and the
  // caller reads accumulated findings at the end (clear_findings() resets).
}

void Analyzer::mix(int rank, std::uint64_t value) {
  auto& h = rank_fp_[static_cast<std::size_t>(rank)];
  for (int b = 0; b < 8; ++b) {
    h ^= (value >> (8 * b)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
}

std::uint64_t Analyzer::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto fp : rank_fp_) {
    for (int b = 0; b < 8; ++b) {
      h ^= (fp >> (8 * b)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

std::uint64_t Analyzer::total() const {
  std::uint64_t t = 0;
  for (const auto c : counts_) t += c;
  return t;
}

void Analyzer::clear_findings() {
  findings_.clear();
  finding_keys_.clear();
  for (auto& c : counts_) c = 0;
}

void Analyzer::add_finding(Finding f) {
  ++counts_[static_cast<int>(f.kind)];
  std::ostringstream key;
  key << static_cast<int>(f.kind) << ':' << f.rank << ':' << f.src << ':'
      << f.other_src << ':' << f.tag << ':' << static_cast<int>(f.phase)
      << ':' << static_cast<int>(f.other_phase);
  if (!finding_keys_.insert(key.str()).second) return;  // repeat of a known site
  if (findings_.size() >= opt_.max_findings) return;
  findings_.push_back(std::move(f));
}

void Analyzer::on_send(Message& m, const sim::SendEvent& e) {
  auto& clk = clocks_[static_cast<std::size_t>(e.src)];
  clk.tick(e.src);
  m.vclock = clk.components();

  ++events_;
  mix(e.src, 0xA11CE5EDULL);
  mix(e.src, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.dst))
              << 32) |
                 static_cast<std::uint32_t>(e.tag));
  mix(e.src, static_cast<std::uint64_t>(e.bytes));
  mix(e.src, static_cast<std::uint64_t>(static_cast<int>(e.phase)));
  mix(e.src, clk.hash());

  // (b) Tag-space violation: user traffic on a reserved negative tag.
  if (e.collective_depth == 0 && e.tag < 0) {
    Finding f;
    f.kind = FindingKind::kTagViolation;
    f.rank = e.src;
    f.src = e.src;
    f.tag = e.tag;
    f.phase = e.phase;
    f.vtime = e.vtime;
    f.clocks = clk.str();
    std::ostringstream os;
    os << "user send " << e.src << " -> " << e.dst << " uses reserved tag "
       << e.tag << " (phase " << sim::phase_name(e.phase)
       << "); it can match collective-internal receives";
    f.detail = os.str();
    add_finding(std::move(f));
  }

  // (a) Send-side race check: this send is concurrent with an already
  // completed wildcard receive it could have matched — the match could have
  // gone either way depending on timing.
  for (const auto& w : history_[static_cast<std::size_t>(e.dst)]) {
    if (!matches(w.want_src, w.want_tag, e.src, e.tag)) continue;
    if (w.matched_src == e.src && w.matched_tag == e.tag)
      continue;  // same flow: per-flow FIFO fixes the order
    if (w.completion.happens_before(clk)) continue;  // properly ordered
    Finding f;
    f.kind = w.fp ? FindingKind::kReductionOrder : FindingKind::kMessageRace;
    f.rank = e.dst;
    f.src = w.matched_src;
    f.other_src = e.src;
    f.tag = e.tag;
    f.phase = w.phase;
    f.vtime = e.vtime;
    f.clocks = "recv " + w.completion.str() + " vs send " + clk.str();
    std::ostringstream os;
    os << "send " << e.src << " -> " << e.dst << " tag " << e.tag
       << " is concurrent with a completed wildcard receive (want src="
       << w.want_src << ", tag=" << w.want_tag << ") that matched src="
       << w.matched_src << " tag=" << w.matched_tag
       << "; either message could have matched first";
    if (w.fp)
      os << " — floating-point operand order is not happens-before-fixed";
    f.detail = os.str();
    add_finding(std::move(f));
  }
}

void Analyzer::on_recv(const Message& m, const sim::RecvEvent& e,
                       const std::deque<Message>& mailbox) {
  auto& clk = clocks_[static_cast<std::size_t>(e.rank)];
  if (!m.vclock.empty()) clk.merge(m.vclock);
  clk.tick(e.rank);

  ++events_;
  mix(e.rank, 0x5ECE15EDULL);
  mix(e.rank, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.src))
               << 32) |
                  static_cast<std::uint32_t>(m.tag));
  mix(e.rank, static_cast<std::uint64_t>(m.bytes()));
  mix(e.rank, static_cast<std::uint64_t>(static_cast<int>(e.phase)));
  mix(e.rank, clk.hash());

  // (c) Phase attribution: sender charged this traffic to one phase, the
  // receiver is accounting it under another.
  if (m.sent_phase != e.phase) {
    Finding f;
    f.kind = FindingKind::kPhaseMismatch;
    f.rank = e.rank;
    f.src = m.src;
    f.tag = m.tag;
    f.phase = e.phase;
    f.other_phase = m.sent_phase;
    f.vtime = e.vtime;
    f.clocks = clk.str();
    std::ostringstream os;
    os << "message " << m.src << " -> " << e.rank << " tag " << m.tag
       << " sent in phase " << sim::phase_name(m.sent_phase)
       << " but received in phase " << sim::phase_name(e.phase)
       << "; per-phase traffic books disagree";
    f.detail = os.str();
    add_finding(std::move(f));
  }

  const bool user_code = e.collective_depth == 0;

  // (b) Tag space on the receive side, user code only.
  if (user_code && m.tag < 0) {
    Finding f;
    f.kind = FindingKind::kTagViolation;
    f.rank = e.rank;
    f.src = m.src;
    f.tag = m.tag;
    f.phase = e.phase;
    f.vtime = e.vtime;
    f.clocks = clk.str();
    std::ostringstream os;
    os << "user receive on rank " << e.rank << " (want src=" << e.want_src
       << ", tag=" << e.want_tag << ") matched reserved-tag " << m.tag
       << " traffic from " << m.src << " — collective message stolen";
    f.detail = os.str();
    add_finding(std::move(f));
  } else if (user_code && e.want_tag == kAnyTag) {
    // A wildcard-tag user receive with reserved-tag traffic still pending:
    // the next such receive can steal it.
    for (const auto& pm : mailbox) {
      if (pm.tag >= 0 ||
          !(e.want_src == kAnySource || pm.src == e.want_src))
        continue;
      Finding f;
      f.kind = FindingKind::kTagViolation;
      f.rank = e.rank;
      f.src = pm.src;
      f.tag = pm.tag;
      f.phase = e.phase;
      f.vtime = e.vtime;
      f.clocks = clk.str();
      std::ostringstream os;
      os << "wildcard-tag user receive on rank " << e.rank
         << " posted while reserved-tag " << pm.tag << " traffic from "
         << pm.src << " is pending — it can steal collective traffic";
      f.detail = os.str();
      add_finding(std::move(f));
      break;
    }
  }

  // (a)/(d) Receive-side race check: another pending message, causally
  // concurrent with the matched one, also matches the posted pattern.
  const bool wildcard = e.want_src == kAnySource || e.want_tag == kAnyTag;
  const bool race_eligible =
      wildcard && user_code && !e.order_insensitive && !m.vclock.empty();
  if (race_eligible) {
    const VectorClock a(m.vclock);
    for (const auto& pm : mailbox) {
      if (!matches(e.want_src, e.want_tag, pm.src, pm.tag)) continue;
      if (pm.src == m.src && pm.tag == m.tag) continue;  // same FIFO flow
      if (pm.vclock.empty()) continue;
      const VectorClock b(pm.vclock);
      if (!a.concurrent(b)) continue;
      Finding f;
      f.kind = e.fp_payload ? FindingKind::kReductionOrder
                            : FindingKind::kMessageRace;
      f.rank = e.rank;
      f.src = m.src;
      f.other_src = pm.src;
      f.tag = m.tag;
      f.phase = e.phase;
      f.vtime = e.vtime;
      f.clocks = "matched " + a.str() + " vs pending " + b.str();
      std::ostringstream os;
      os << "wildcard receive on rank " << e.rank << " (want src="
         << e.want_src << ", tag=" << e.want_tag << ") matched src=" << m.src
         << " tag=" << m.tag << " while concurrent src=" << pm.src << " tag="
         << pm.tag << " was pending; either order is possible";
      if (e.fp_payload)
        os << " — floating-point operand order is not happens-before-fixed";
      f.detail = os.str();
      add_finding(std::move(f));
    }
  }

  // Remember race-eligible wildcard receives for the send-side check; a
  // concurrent message may only be sent after this receive completed.
  if (wildcard && user_code && !e.order_insensitive) {
    auto& h = history_[static_cast<std::size_t>(e.rank)];
    if (h.size() >= opt_.recv_history) h.pop_front();
    CompletedRecv w;
    w.want_src = e.want_src;
    w.want_tag = e.want_tag;
    w.matched_src = m.src;
    w.matched_tag = m.tag;
    w.fp = e.fp_payload;
    w.phase = e.phase;
    w.vtime = e.vtime;
    w.completion = clk;
    h.push_back(std::move(w));
  }
}

std::string Analyzer::report() const {
  std::ostringstream os;
  os << "happens-before analysis: " << events_ << " events, " << total()
     << " finding(s)";
  for (int k = 0; k < kNumFindingKinds; ++k)
    if (counts_[k] > 0)
      os << "; " << finding_kind_name(static_cast<FindingKind>(k)) << ": "
         << counts_[k];
  os << '\n';
  for (const auto& f : findings_) {
    os << "  [" << finding_kind_name(f.kind) << "] rank " << f.rank << " @ t="
       << f.vtime << ": " << f.detail << " (clocks " << f.clocks << ")\n";
  }
  if (total() > findings_.size())
    os << "  (" << (total() - findings_.size())
       << " further detection(s) deduplicated or past the cap)\n";
  return os.str();
}

}  // namespace picpar::analysis
