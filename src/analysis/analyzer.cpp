#include "analysis/analyzer.hpp"

#include <algorithm>
#include <sstream>

namespace picpar::analysis {

using sim::kAnySource;
using sim::kAnyTag;
using sim::Message;
using sim::Phase;

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

bool matches(int want_src, int want_tag, int src, int tag) {
  return (want_src == kAnySource || src == want_src) &&
         (want_tag == kAnyTag || tag == want_tag);
}

}  // namespace

const char* finding_kind_name(FindingKind k) {
  switch (k) {
    case FindingKind::kMessageRace: return "message-race";
    case FindingKind::kTagViolation: return "tag-violation";
    case FindingKind::kPhaseMismatch: return "phase-mismatch";
    case FindingKind::kReductionOrder: return "reduction-order";
  }
  return "?";
}

void Analyzer::on_run_start(int nranks) {
  nranks_ = nranks;
  clocks_.assign(static_cast<std::size_t>(nranks), VectorClock(nranks));
  rank_.assign(static_cast<std::size_t>(nranks), RankBuffer{});
  for (auto& rb : rank_) rb.fp = kFnvOffset;
  events_ = 0;
  any_consume_overflow_ = false;
  // Findings survive on purpose: a Machine may run several programs and the
  // caller reads accumulated findings at the end (clear_findings() resets).
}

void Analyzer::mix(int rank, std::uint64_t value) {
  auto& h = rank_[static_cast<std::size_t>(rank)].fp;
  for (int b = 0; b < 8; ++b) {
    h ^= (value >> (8 * b)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
}

std::uint64_t Analyzer::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  for (const auto& rb : rank_) {
    for (int b = 0; b < 8; ++b) {
      h ^= (rb.fp >> (8 * b)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

std::uint64_t Analyzer::total() const {
  std::uint64_t t = 0;
  for (const auto c : counts_) t += c;
  return t;
}

void Analyzer::clear_findings() {
  findings_.clear();
  finding_keys_.clear();
  for (auto& c : counts_) c = 0;
}

void Analyzer::add_finding(Finding f) {
  ++counts_[static_cast<int>(f.kind)];
  std::ostringstream key;
  key << static_cast<int>(f.kind) << ':' << f.rank << ':' << f.src << ':'
      << f.other_src << ':' << f.tag << ':' << static_cast<int>(f.phase)
      << ':' << static_cast<int>(f.other_phase);
  if (!finding_keys_.insert(key.str()).second) return;  // repeat of a known site
  if (findings_.size() >= opt_.max_findings) return;
  findings_.push_back(std::move(f));
}

void Analyzer::on_send(Message& m, const sim::SendEvent& e) {
  // Runs on the sender's thread with no lock held (the parallel engine
  // calls build_send outside its mutex): only rank e.src state may be
  // touched here. Cross-rank checks are deferred to on_run_end.
  auto& clk = clocks_[static_cast<std::size_t>(e.src)];
  clk.tick(e.src);
  m.vclock = clk.components();

  auto& buf = rank_[static_cast<std::size_t>(e.src)];
  ++buf.events;
  mix(e.src, 0xA11CE5EDULL);
  mix(e.src, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.dst))
              << 32) |
                 static_cast<std::uint32_t>(e.tag));
  mix(e.src, static_cast<std::uint64_t>(e.bytes));
  mix(e.src, static_cast<std::uint64_t>(static_cast<int>(e.phase)));
  mix(e.src, clk.hash());

  // Tag-space violation: user traffic on a reserved negative tag.
  if (e.collective_depth == 0 && e.tag < 0) {
    Finding f;
    f.kind = FindingKind::kTagViolation;
    f.rank = e.src;
    f.src = e.src;
    f.tag = e.tag;
    f.phase = e.phase;
    f.vtime = e.vtime;
    f.clocks = clk.str();
    std::ostringstream os;
    os << "user send " << e.src << " -> " << e.dst << " uses reserved tag "
       << e.tag << " (phase " << sim::phase_name(e.phase)
       << "); it can match collective-internal receives";
    f.detail = os.str();
    buf.online.push_back(std::move(f));
  }
}

void Analyzer::on_recv(const Message& m, const sim::RecvEvent& e,
                       const std::deque<Message>& mailbox) {
  // The mailbox snapshot is wall-clock-schedule-dependent under the
  // parallel engine (sends from running ranks enqueue at arbitrary real
  // times), so no finding may be derived from it; race candidates come
  // from the consume log + final mailboxes at on_run_end instead.
  (void)mailbox;
  auto& clk = clocks_[static_cast<std::size_t>(e.rank)];
  if (!m.vclock.empty()) clk.merge(m.vclock);
  clk.tick(e.rank);

  auto& buf = rank_[static_cast<std::size_t>(e.rank)];
  ++buf.events;
  mix(e.rank, 0x5ECE15EDULL);
  mix(e.rank, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.src))
               << 32) |
                  static_cast<std::uint32_t>(m.tag));
  mix(e.rank, static_cast<std::uint64_t>(m.bytes()));
  mix(e.rank, static_cast<std::uint64_t>(static_cast<int>(e.phase)));
  mix(e.rank, clk.hash());

  // Phase attribution: sender charged this traffic to one phase, the
  // receiver is accounting it under another.
  if (m.sent_phase != e.phase) {
    Finding f;
    f.kind = FindingKind::kPhaseMismatch;
    f.rank = e.rank;
    f.src = m.src;
    f.tag = m.tag;
    f.phase = e.phase;
    f.other_phase = m.sent_phase;
    f.vtime = e.vtime;
    f.clocks = clk.str();
    std::ostringstream os;
    os << "message " << m.src << " -> " << e.rank << " tag " << m.tag
       << " sent in phase " << sim::phase_name(m.sent_phase)
       << " but received in phase " << sim::phase_name(e.phase)
       << "; per-phase traffic books disagree";
    f.detail = os.str();
    buf.online.push_back(std::move(f));
  }

  const bool user_code = e.collective_depth == 0;

  // Tag space on the receive side, user code only.
  if (user_code && m.tag < 0) {
    Finding f;
    f.kind = FindingKind::kTagViolation;
    f.rank = e.rank;
    f.src = m.src;
    f.tag = m.tag;
    f.phase = e.phase;
    f.vtime = e.vtime;
    f.clocks = clk.str();
    std::ostringstream os;
    os << "user receive on rank " << e.rank << " (want src=" << e.want_src
       << ", tag=" << e.want_tag << ") matched reserved-tag " << m.tag
       << " traffic from " << m.src << " — collective message stolen";
    f.detail = os.str();
    buf.online.push_back(std::move(f));
  }

  // Consume log: every delivery after the first remembered receive is a
  // potential deferred-check candidate for the receives before it.
  const std::uint64_t idx = buf.consume_count++;
  if (buf.gate_open) {
    if (buf.consumed.size() < opt_.consume_log)
      buf.consumed.push_back(Consumed{idx, m.src, m.tag, m.epoch, m.vclock});
    else
      buf.consume_overflow = true;
  }

  // Remember receives that need the deferred checks. The gate opens at the
  // first one: earlier deliveries can never be candidates (candidates are
  // consumed strictly after the receive that races with them).
  const bool wildcard = e.want_src == kAnySource || e.want_tag == kAnyTag;
  const bool race_check = wildcard && user_code && !e.order_insensitive;
  const bool reserved_check =
      user_code && e.want_tag == kAnyTag && m.tag >= 0;
  if ((race_check || reserved_check) &&
      buf.recvs.size() < opt_.recv_history) {
    buf.gate_open = true;
    PendingRecv w;
    w.consume_index = idx;
    w.want_src = e.want_src;
    w.want_tag = e.want_tag;
    w.matched_src = m.src;
    w.matched_tag = m.tag;
    w.fp = e.fp_payload;
    w.race_check = race_check;
    w.reserved_check = reserved_check;
    w.epoch = m.epoch;
    w.phase = e.phase;
    w.vtime = e.vtime;
    w.matched_vc = m.vclock;
    w.completion = clk;
    buf.recvs.push_back(std::move(w));
  }
}

void Analyzer::run_deferred_checks(int rank,
                                   const std::deque<Message>& leftover) {
  auto& buf = rank_[static_cast<std::size_t>(rank)];
  if (buf.recvs.empty()) return;

  // Never-consumed messages are candidates too. Their physical queue order
  // is schedule-dependent, but the *set* is not: sort by the machine's
  // deterministic matching key so the merge is mode-independent.
  std::vector<const Message*> rest;
  rest.reserve(leftover.size());
  for (const auto& pm : leftover) rest.push_back(&pm);
  std::sort(rest.begin(), rest.end(), [](const Message* a, const Message* b) {
    if (a->arrival != b->arrival) return a->arrival < b->arrival;
    if (a->src != b->src) return a->src < b->src;
    if (a->seq != b->seq) return a->seq < b->seq;
    return static_cast<int>(a->dup) < static_cast<int>(b->dup);
  });

  for (const auto& w : buf.recvs) {
    bool reserved_done = !w.reserved_check;
    const VectorClock matched(w.matched_vc);
    // Candidates, in deterministic order: messages consumed after this
    // receive, then the sorted leftovers.
    const auto consider = [&](int src, int tag, int epoch,
                              const std::vector<std::uint64_t>& vc) {
      // Traffic from a different membership epoch can never have raced with
      // this receive: the machine purges pre-agreement messages at the
      // epoch boundary and crashed senders stop sending, so cross-epoch
      // pairs are ordered by the membership barrier itself. Without this
      // filter a shrink-to-survivors recovery would report false races
      // between a rank's pre-crash traffic and post-recovery receives.
      if (epoch != w.epoch) return;
      if (w.race_check && matches(w.want_src, w.want_tag, src, tag) &&
          !(src == w.matched_src && tag == w.matched_tag) && !vc.empty()) {
        const VectorClock b(vc);
        if (!w.matched_vc.empty() && matched.concurrent(b)) {
          Finding f;
          f.kind = w.fp ? FindingKind::kReductionOrder
                        : FindingKind::kMessageRace;
          f.rank = rank;
          f.src = w.matched_src;
          f.other_src = src;
          f.tag = w.matched_tag;
          f.phase = w.phase;
          f.vtime = w.vtime;
          f.clocks = "matched " + matched.str() + " vs pending " + b.str();
          std::ostringstream os;
          os << "wildcard receive on rank " << rank << " (want src="
             << w.want_src << ", tag=" << w.want_tag << ") matched src="
             << w.matched_src << " tag=" << w.matched_tag
             << " while concurrent src=" << src << " tag=" << tag
             << " was pending; either order is possible";
          if (w.fp)
            os << " — floating-point operand order is not "
                  "happens-before-fixed";
          f.detail = os.str();
          add_finding(std::move(f));
        } else if (w.completion.concurrent(b)) {
          // The send is concurrent with the *completion* of the receive
          // (it may have happened after the match, wall-clock-wise): the
          // match could still have gone either way.
          Finding f;
          f.kind = w.fp ? FindingKind::kReductionOrder
                        : FindingKind::kMessageRace;
          f.rank = rank;
          f.src = w.matched_src;
          f.other_src = src;
          f.tag = tag;
          f.phase = w.phase;
          f.vtime = w.vtime;
          f.clocks = "recv " + w.completion.str() + " vs send " + b.str();
          std::ostringstream os;
          os << "send " << src << " -> " << rank << " tag " << tag
             << " is concurrent with a completed wildcard receive (want src="
             << w.want_src << ", tag=" << w.want_tag << ") that matched src="
             << w.matched_src << " tag=" << w.matched_tag
             << "; either message could have matched first";
          if (w.fp)
            os << " — floating-point operand order is not "
                  "happens-before-fixed";
          f.detail = os.str();
          add_finding(std::move(f));
        }
      }
      if (!reserved_done && tag < 0 &&
          (w.want_src == kAnySource || src == w.want_src)) {
        // Causally-later reserved traffic (e.g. a collective the receiver
        // itself entered afterwards) cannot have been pending at the
        // receive; only unordered reserved traffic is stealable.
        const VectorClock b(vc);
        if (vc.empty() || !w.completion.happens_before(b)) {
          reserved_done = true;
          Finding f;
          f.kind = FindingKind::kTagViolation;
          f.rank = rank;
          f.src = src;
          f.tag = tag;
          f.phase = w.phase;
          f.vtime = w.vtime;
          f.clocks = w.completion.str();
          std::ostringstream os;
          os << "wildcard-tag user receive on rank " << rank
             << " posted while reserved-tag " << tag << " traffic from "
             << src << " is pending — it can steal collective traffic";
          f.detail = os.str();
          add_finding(std::move(f));
        }
      }
    };

    for (const auto& c : buf.consumed) {
      if (c.index <= w.consume_index) continue;
      consider(c.src, c.tag, c.epoch, c.vclock);
    }
    for (const Message* pm : rest)
      consider(pm->src, pm->tag, pm->epoch, pm->vclock);
  }
}

void Analyzer::on_run_end(
    const std::vector<const std::deque<Message>*>& mailboxes,
    const std::vector<double>& final_clocks) {
  (void)final_clocks;  // fingerprints cover clocks via event vtimes already
  // Quiescence: every rank is done, per-rank buffers are stable, and the
  // final mailboxes hold the never-consumed messages. Merge in rank order
  // so findings, counts, and the report are deterministic — and identical
  // between the sequential and parallel engines.
  events_ = 0;
  static const std::deque<Message> kEmpty;
  for (int r = 0; r < nranks_; ++r) {
    auto& buf = rank_[static_cast<std::size_t>(r)];
    events_ += buf.events;
    any_consume_overflow_ = any_consume_overflow_ || buf.consume_overflow;
    for (auto& f : buf.online) add_finding(std::move(f));
    buf.online.clear();
    const std::deque<Message>* box =
        static_cast<std::size_t>(r) < mailboxes.size()
            ? mailboxes[static_cast<std::size_t>(r)]
            : &kEmpty;
    run_deferred_checks(r, box ? *box : kEmpty);
  }
}

std::string Analyzer::report() const {
  std::ostringstream os;
  os << "happens-before analysis: " << events_ << " events, " << total()
     << " finding(s)";
  for (int k = 0; k < kNumFindingKinds; ++k)
    if (counts_[k] > 0)
      os << "; " << finding_kind_name(static_cast<FindingKind>(k)) << ": "
         << counts_[k];
  os << '\n';
  for (const auto& f : findings_) {
    os << "  [" << finding_kind_name(f.kind) << "] rank " << f.rank << " @ t="
       << f.vtime << ": " << f.detail << " (clocks " << f.clocks << ")\n";
  }
  if (total() > findings_.size())
    os << "  (" << (total() - findings_.size())
       << " further detection(s) deduplicated or past the cap)\n";
  if (any_consume_overflow_)
    os << "  (consume log capped at " << opt_.consume_log
       << " messages/rank; some deferred checks were skipped)\n";
  return os.str();
}

std::size_t Analyzer::rank_memory_bytes(int rank) const {
  const auto idx = static_cast<std::size_t>(rank);
  if (idx >= rank_.size()) return 0;
  const RankBuffer& rb = rank_[idx];
  // Capacities, not sizes — this is what the rank's budget pays for.
  std::size_t bytes =
      clocks_[idx].components().capacity() * sizeof(std::uint64_t);
  bytes += rb.online.capacity() * sizeof(Finding);
  for (const Finding& f : rb.online)
    bytes += f.clocks.capacity() + f.detail.capacity();
  bytes += rb.recvs.capacity() * sizeof(PendingRecv);
  for (const PendingRecv& r : rb.recvs)
    bytes += r.matched_vc.capacity() * sizeof(std::uint64_t) +
             r.completion.components().capacity() * sizeof(std::uint64_t);
  bytes += rb.consumed.capacity() * sizeof(Consumed);
  for (const Consumed& c : rb.consumed)
    bytes += c.vclock.capacity() * sizeof(std::uint64_t);
  return bytes;
}

std::size_t Analyzer::memory_bytes() const {
  std::size_t bytes = 0;
  for (int r = 0; r < nranks_; ++r) bytes += rank_memory_bytes(r);
  bytes += findings_.capacity() * sizeof(Finding);
  for (const Finding& f : findings_)
    bytes += f.clocks.capacity() + f.detail.capacity();
  return bytes;
}

}  // namespace picpar::analysis
