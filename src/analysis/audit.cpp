#include "analysis/audit.hpp"

#include <sstream>

#include "sim/comm.hpp"
#include "util/env.hpp"

namespace picpar::analysis {

std::string AuditResult::summary() const {
  std::ostringstream os;
  os << "determinism audit: " << (deterministic() ? "PASS" : "FAIL")
     << " (fingerprints " << std::hex << fingerprint_first << " / "
     << fingerprint_second << std::dec << ", events " << events_first << " / "
     << events_second << ", findings " << findings << ")";
  return os.str();
}

AuditResult audit_determinism(
    sim::Machine& machine,
    const std::function<void(sim::Comm&)>& program,
    const std::function<void()>& between_runs,
    Analyzer::Options options) {
  sim::MachineObserver* previous = machine.observer();
  AuditResult out;
  Analyzer analyzer(options);
  machine.set_observer(&analyzer);
  try {
    machine.run(program);
    out.fingerprint_first = analyzer.fingerprint();
    out.events_first = analyzer.events();
    if (between_runs) between_runs();
    machine.run(program);
    out.fingerprint_second = analyzer.fingerprint();
    out.events_second = analyzer.events();
    out.findings = analyzer.total();
  } catch (...) {
    machine.set_observer(previous);
    throw;
  }
  machine.set_observer(previous);
  return out;
}

bool analyzer_env_enabled() { return env_enabled("PICPAR_ANALYZE"); }

}  // namespace picpar::analysis
