#include "analysis/vector_clock.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace picpar::analysis {

void VectorClock::merge(const VectorClock& other) { merge(other.c_); }

void VectorClock::merge(const std::vector<std::uint64_t>& other) {
  if (other.size() != c_.size())
    throw std::invalid_argument("VectorClock::merge: size mismatch");
  for (std::size_t i = 0; i < c_.size(); ++i)
    c_[i] = std::max(c_[i], other[i]);
}

bool VectorClock::happens_before(const VectorClock& other) const {
  if (other.c_.size() != c_.size())
    throw std::invalid_argument("VectorClock::happens_before: size mismatch");
  bool strict = false;
  for (std::size_t i = 0; i < c_.size(); ++i) {
    if (c_[i] > other.c_[i]) return false;
    if (c_[i] < other.c_[i]) strict = true;
  }
  return strict;
}

std::uint64_t VectorClock::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto v : c_) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

std::string VectorClock::str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < c_.size(); ++i) {
    if (i) os << ' ';
    os << c_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace picpar::analysis
