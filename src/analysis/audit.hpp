// Two-run determinism audit and environment opt-in for the analyzer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "analysis/analyzer.hpp"
#include "sim/machine.hpp"

namespace picpar::sim {
class Comm;
}

namespace picpar::analysis {

/// Result of running the same program twice under the analyzer.
struct AuditResult {
  std::uint64_t fingerprint_first = 0;
  std::uint64_t fingerprint_second = 0;
  std::uint64_t events_first = 0;
  std::uint64_t events_second = 0;
  /// Findings accumulated over both runs.
  std::uint64_t findings = 0;
  bool deterministic() const {
    return fingerprint_first == fingerprint_second &&
           events_first == events_second;
  }
  std::string summary() const;
};

/// Run `program` twice on `machine` under a fresh Analyzer and compare the
/// happens-before DAG fingerprints. A deterministic seeded program produces
/// identical virtual executions, so any divergence means hidden state
/// (iteration over pointer-keyed containers, uninitialized reads, leaked
/// state between runs) is steering communication. The machine's previous
/// observer is restored on exit. The program must be re-runnable: if it
/// writes external state (accumulates into captured buffers), the caller
/// resets that state via `between_runs`.
AuditResult audit_determinism(
    sim::Machine& machine,
    const std::function<void(sim::Comm&)>& program,
    const std::function<void()>& between_runs = nullptr,
    Analyzer::Options options = {});

/// True when the PICPAR_ANALYZE environment variable opts runs into the
/// analyzer (set and not "0"). Drivers (run_pic) honor it so any existing
/// workload can be audited without a rebuild.
bool analyzer_env_enabled();

}  // namespace picpar::analysis
