// Happens-before message-race and determinism analyzer for sim::Machine.
//
// Installed as a MachineObserver (opt-in; see Machine::set_observer), the
// analyzer maintains one vector clock per rank, stamps every outgoing
// message with the sender's clock, and merges clocks on receive. On top of
// that partial order it detects, with full provenance:
//
//   * message races      — a wildcard receive that two causally concurrent
//                          sends could have matched in either order;
//   * tag-space violations — user traffic on reserved negative tags, or
//                          user receives that match (or could next match)
//                          pending collective traffic;
//   * phase-attribution errors — a message charged to one PIC phase by the
//                          sender and a different phase by the receiver;
//   * reduction-order sensitivity — the floating-point flavor of a message
//                          race: operand arrival order into an accumulation
//                          is not fixed by happens-before.
//
// It also folds every event into a per-rank FNV fingerprint of the
// happens-before DAG; two runs of a deterministic program produce the same
// fingerprint (see analysis/audit.hpp for the two-run audit).
//
// Execution-mode independence: the analyzer works identically under the
// sequential reference scheduler and the parallel engine (src/runtime).
// Every callback touches only the state of the rank it fires on — on_send
// runs on the sender's thread outside any engine lock, so nothing in it may
// look across ranks — and all cross-rank analysis (race detection against
// later-consumed or never-consumed messages) is deferred to on_run_end,
// the quiescence point, where per-rank buffers are merged in rank order.
// Because the per-rank event sequences, vector clocks, and leftover message
// sets are schedule-independent (the machine's deterministic matching layer
// guarantees this), the merged findings, counts, report text, and
// fingerprint are byte-identical across modes.
//
// Receives completed inside Comm collectives are exempt from race findings:
// the collective library's wildcard receives (all_to_many) key their
// results by source rank, which makes delivery order immaterial — they are
// verified library internals, like an MPI implementation's own protocol
// traffic. User code with the same property can say so via
// Comm::OrderInsensitive.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/vector_clock.hpp"
#include "sim/observer.hpp"

namespace picpar::analysis {

enum class FindingKind : int {
  kMessageRace = 0,
  kTagViolation,
  kPhaseMismatch,
  kReductionOrder,
};

inline constexpr int kNumFindingKinds = 4;

const char* finding_kind_name(FindingKind k);

/// One detected defect, with provenance.
struct Finding {
  FindingKind kind = FindingKind::kMessageRace;
  int rank = 0;       ///< rank at which the defect was detected
  int src = -1;       ///< sender involved (first sender for races)
  int other_src = -1; ///< second concurrent sender for races
  int tag = 0;
  sim::Phase phase = sim::Phase::kOther;        ///< phase at detection
  sim::Phase other_phase = sim::Phase::kOther;  ///< sender phase (mismatch)
  double vtime = 0.0;                           ///< virtual detection time
  std::string clocks;  ///< vector clocks of the events involved
  std::string detail;  ///< human-readable one-line description
};

class Analyzer final : public sim::MachineObserver {
public:
  struct Options {
    /// Stored findings are deduplicated by (kind, ranks, tag, phase) and
    /// capped here; detections past the cap still count in counts().
    std::size_t max_findings = 64;
    /// Wildcard receives remembered per rank per run for the deferred race
    /// checks; receives past the cap are not analyzed (counts unaffected).
    std::size_t recv_history = 512;
    /// Consumed messages remembered per rank per run for the deferred
    /// checks. Logging only starts at the first remembered receive, so
    /// programs without race-eligible receives (e.g. the PIC pipeline,
    /// whose wildcard receives are collective-internal or annotated
    /// order-insensitive) log nothing at all.
    std::size_t consume_log = 65536;
  };

  Analyzer() : Analyzer(Options{}) {}
  explicit Analyzer(Options opt) : opt_(opt) {}

  // ---- MachineObserver ----
  void on_run_start(int nranks) override;
  void on_send(sim::Message& m, const sim::SendEvent& e) override;
  void on_recv(const sim::Message& m, const sim::RecvEvent& e,
               const std::deque<sim::Message>& mailbox) override;
  void on_run_end(
      const std::vector<const std::deque<sim::Message>*>& mailboxes,
      const std::vector<double>& final_clocks) override;

  // ---- results (read after the run; finalized in on_run_end) ----
  /// Stored (deduplicated, capped) findings, in deterministic merge order:
  /// by rank, online detections before deferred ones. Findings accumulate
  /// across runs of the same Machine; see clear_findings().
  const std::vector<Finding>& findings() const { return findings_; }
  /// Total detections of one kind, including deduplicated repeats.
  std::uint64_t count(FindingKind k) const {
    return counts_[static_cast<int>(k)];
  }
  /// Total detections of all kinds.
  std::uint64_t total() const;
  void clear_findings();

  /// Happens-before DAG fingerprint of the last run: an FNV fold of every
  /// event (kind, endpoints, tag, bytes, phase, clock) in per-rank order.
  /// Deterministic program => stable fingerprint.
  std::uint64_t fingerprint() const;
  /// Events observed in the last run.
  std::uint64_t events() const { return events_; }

  /// Multi-line human-readable report of counts and stored findings.
  std::string report() const;

  /// Resident bytes of one rank's analyzer state: its vector clock (O(p)
  /// by design — the happens-before partial order needs one component per
  /// rank; the analyzer is opt-in diagnostics, not part of the production
  /// footprint), remembered receives, consume log, and online findings.
  std::size_t rank_memory_bytes(int rank) const;
  /// Sum of rank_memory_bytes over all ranks plus the merged findings.
  std::size_t memory_bytes() const;

private:
  /// A remembered wildcard receive awaiting the deferred (run-end) checks.
  struct PendingRecv {
    std::uint64_t consume_index = 0;  ///< rank-local consume order position
    int want_src = 0;
    int want_tag = 0;
    int matched_src = 0;
    int matched_tag = 0;
    bool fp = false;
    bool race_check = false;      ///< eligible for race / reduction-order
    bool reserved_check = false;  ///< wildcard-tag pending-reserved check
    int epoch = 0;                ///< membership epoch of the matched message
    sim::Phase phase = sim::Phase::kOther;
    double vtime = 0.0;
    std::vector<std::uint64_t> matched_vc;  ///< matched message's send clock
    VectorClock completion;                 ///< receiver clock at completion
  };

  /// A message consumed on a rank after its first remembered receive.
  struct Consumed {
    std::uint64_t index = 0;
    int src = 0;
    int tag = 0;
    int epoch = 0;  ///< membership epoch the message was sent in
    std::vector<std::uint64_t> vclock;
  };

  /// Everything one rank's callbacks may write. Callbacks on rank r touch
  /// only rank_[r] (and clocks_[r]) — the invariant that makes the
  /// analyzer safe under the parallel engine with no locking of its own.
  struct RankBuffer {
    std::uint64_t fp = 0;
    std::uint64_t events = 0;
    std::uint64_t consume_count = 0;  ///< total messages consumed so far
    bool gate_open = false;           ///< consume logging active
    bool consume_overflow = false;
    std::vector<Finding> online;  ///< rank-local detections, program order
    std::vector<PendingRecv> recvs;
    std::vector<Consumed> consumed;
  };

  void add_finding(Finding f);
  void mix(int rank, std::uint64_t value);
  void run_deferred_checks(int rank, const std::deque<sim::Message>& leftover);

  Options opt_;
  int nranks_ = 0;
  std::vector<VectorClock> clocks_;  ///< per rank
  std::vector<RankBuffer> rank_;     ///< per rank
  std::uint64_t events_ = 0;
  bool any_consume_overflow_ = false;
  std::vector<Finding> findings_;
  /// Dedup keys for findings_ — membership-only (insert/contains, never
  /// iterated), so hash order cannot reach the report; findings_ itself
  /// carries the deterministic order.
  // picpar-lint: allow(unordered-iteration-escape) membership-only set
  std::unordered_set<std::string> finding_keys_;
  std::uint64_t counts_[kNumFindingKinds] = {0, 0, 0, 0};
};

}  // namespace picpar::analysis
