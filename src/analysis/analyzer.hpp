// Happens-before message-race and determinism analyzer for sim::Machine.
//
// Installed as a MachineObserver (opt-in; see Machine::set_observer), the
// analyzer maintains one vector clock per rank, stamps every outgoing
// message with the sender's clock, and merges clocks on receive. On top of
// that partial order it detects, with full provenance:
//
//   * message races      — a wildcard receive that two causally concurrent
//                          sends could have matched in either order;
//   * tag-space violations — user traffic on reserved negative tags, or
//                          user receives that match (or could next match)
//                          pending collective traffic;
//   * phase-attribution errors — a message charged to one PIC phase by the
//                          sender and a different phase by the receiver;
//   * reduction-order sensitivity — the floating-point flavor of a message
//                          race: operand arrival order into an accumulation
//                          is not fixed by happens-before.
//
// It also folds every event into a per-rank FNV fingerprint of the
// happens-before DAG; two runs of a deterministic program produce the same
// fingerprint (see analysis/audit.hpp for the two-run audit).
//
// Receives completed inside Comm collectives are exempt from race findings:
// the collective library's wildcard receives (all_to_many) key their
// results by source rank, which makes delivery order immaterial — they are
// verified library internals, like an MPI implementation's own protocol
// traffic. User code with the same property can say so via
// Comm::OrderInsensitive.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/vector_clock.hpp"
#include "sim/observer.hpp"

namespace picpar::analysis {

enum class FindingKind : int {
  kMessageRace = 0,
  kTagViolation,
  kPhaseMismatch,
  kReductionOrder,
};

inline constexpr int kNumFindingKinds = 4;

const char* finding_kind_name(FindingKind k);

/// One detected defect, with provenance.
struct Finding {
  FindingKind kind = FindingKind::kMessageRace;
  int rank = 0;       ///< rank at which the defect was detected
  int src = -1;       ///< sender involved (first sender for races)
  int other_src = -1; ///< second concurrent sender for races
  int tag = 0;
  sim::Phase phase = sim::Phase::kOther;        ///< phase at detection
  sim::Phase other_phase = sim::Phase::kOther;  ///< sender phase (mismatch)
  double vtime = 0.0;                           ///< virtual detection time
  std::string clocks;  ///< vector clocks of the events involved
  std::string detail;  ///< human-readable one-line description
};

class Analyzer final : public sim::MachineObserver {
public:
  struct Options {
    /// Stored findings are deduplicated by (kind, ranks, tag, phase) and
    /// capped here; detections past the cap still count in counts().
    std::size_t max_findings = 64;
    /// Completed wildcard receives remembered per rank for the send-side
    /// race check (a racy send can arrive after its receive completed).
    std::size_t recv_history = 512;
  };

  Analyzer() : Analyzer(Options{}) {}
  explicit Analyzer(Options opt) : opt_(opt) {}

  // ---- MachineObserver ----
  void on_run_start(int nranks) override;
  void on_send(sim::Message& m, const sim::SendEvent& e) override;
  void on_recv(const sim::Message& m, const sim::RecvEvent& e,
               const std::deque<sim::Message>& mailbox) override;

  // ---- results ----
  /// Stored (deduplicated, capped) findings, in detection order. Findings
  /// accumulate across runs of the same Machine; see clear_findings().
  const std::vector<Finding>& findings() const { return findings_; }
  /// Total detections of one kind, including deduplicated repeats.
  std::uint64_t count(FindingKind k) const {
    return counts_[static_cast<int>(k)];
  }
  /// Total detections of all kinds.
  std::uint64_t total() const;
  void clear_findings();

  /// Happens-before DAG fingerprint of the last (or current) run: an FNV
  /// fold of every event (kind, endpoints, tag, bytes, phase, clock) in
  /// per-rank order. Deterministic program => stable fingerprint.
  std::uint64_t fingerprint() const;
  /// Events observed in the last (or current) run.
  std::uint64_t events() const { return events_; }

  /// Multi-line human-readable report of counts and stored findings.
  std::string report() const;

private:
  struct CompletedRecv {
    int want_src = 0;
    int want_tag = 0;
    int matched_src = 0;
    int matched_tag = 0;
    bool fp = false;
    sim::Phase phase = sim::Phase::kOther;
    double vtime = 0.0;
    VectorClock completion;  ///< receiver clock at completion
  };

  void add_finding(Finding f);
  void mix(int rank, std::uint64_t value);

  Options opt_;
  int nranks_ = 0;
  std::vector<VectorClock> clocks_;            ///< per rank
  std::vector<std::deque<CompletedRecv>> history_;  ///< per rank, bounded
  std::vector<std::uint64_t> rank_fp_;         ///< per-rank event fold
  std::uint64_t events_ = 0;
  std::vector<Finding> findings_;
  std::unordered_set<std::string> finding_keys_;
  std::uint64_t counts_[kNumFindingKinds] = {0, 0, 0, 0};
};

}  // namespace picpar::analysis
