// Per-rank view of a partitioned mesh: owned nodes, stencil ghosts, the
// local index map, and a precomputed halo-exchange plan.
//
// Local indexing convention: owned nodes occupy [0, owned()), in ascending
// global-id order; ghost nodes occupy [owned(), owned() + ghosts()), grouped
// by owner rank and ascending global id within each group. Field arrays are
// plain std::vector<double> of size total().
//
// The halo plan is computed *without communication*: the partition is
// globally known, so both sides of every exchange derive identical, equally
// ordered send/receive lists (rank B's send list to A is exactly the set of
// B-owned nodes adjacent to A-owned nodes, sorted by global id).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "mesh/partition.hpp"
#include "sim/comm.hpp"

namespace picpar::mesh {

inline constexpr std::uint32_t kNoLocal =
    std::numeric_limits<std::uint32_t>::max();

class LocalGrid {
public:
  LocalGrid(const GridPartition& part, int rank);

  const GridDesc& grid() const { return part_->grid(); }
  const GridPartition& partition() const { return *part_; }
  int rank() const { return rank_; }

  std::size_t owned() const { return owned_; }
  std::size_t ghosts() const { return ghost_gids_.size(); }
  std::size_t total() const { return owned_ + ghosts(); }

  /// Global id of local node l (owned or ghost).
  std::uint64_t gid_of(std::size_t l) const { return gids_[l]; }

  /// Local index of global node, or kNoLocal if neither owned nor ghost.
  std::uint32_t local_of(std::uint64_t gid) const {
    return local_[static_cast<std::size_t>(gid)];
  }

  bool owns(std::uint64_t gid) const {
    const auto l = local_of(gid);
    return l != kNoLocal && l < owned_;
  }

  /// Stencil neighbors (periodic E/W/N/S) of owned node l as local indices.
  std::uint32_t east(std::size_t l) const { return stencil_[4 * l + 0]; }
  std::uint32_t west(std::size_t l) const { return stencil_[4 * l + 1]; }
  std::uint32_t north(std::size_t l) const { return stencil_[4 * l + 2]; }
  std::uint32_t south(std::size_t l) const { return stencil_[4 * l + 3]; }

  struct HaloPeer {
    int rank = 0;
    std::vector<std::uint32_t> send;  ///< owned local indices to pack
    std::vector<std::uint32_t> recv;  ///< ghost local indices to fill
  };
  const std::vector<HaloPeer>& halo_peers() const { return peers_; }

  /// Exchange ghost values of the given fields (each sized total()).
  /// One message per neighbor rank carrying all fields back-to-back —
  /// communication coalescing per Section 3.2.
  void halo_exchange(sim::Comm& comm,
                     std::vector<std::vector<double>*> fields) const;

  /// Convenience: allocate a zeroed field of size total().
  std::vector<double> make_field() const {
    return std::vector<double>(total(), 0.0);
  }

private:
  const GridPartition* part_;
  int rank_;
  std::size_t owned_ = 0;
  std::vector<std::uint64_t> gids_;        // local -> global (owned + ghosts)
  std::vector<std::uint64_t> ghost_gids_;  // ghost part of gids_
  std::vector<std::uint32_t> local_;       // global -> local (direct table)
  std::vector<std::uint32_t> stencil_;     // 4 per owned node
  std::vector<HaloPeer> peers_;
};

}  // namespace picpar::mesh
