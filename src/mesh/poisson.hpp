// Electrostatic field solve: Jacobi iteration for the periodic Poisson
// problem  laplacian(phi) = -rho, then E = -grad(phi).
//
// Used by the electrostatic simulation mode and by examples (two-stream
// instability); also exercises the same halo machinery as the Maxwell
// solver with a different communication-to-computation ratio.
#pragma once

#include "mesh/fields.hpp"
#include "sim/comm.hpp"

namespace picpar::mesh {

struct PoissonResult {
  int iterations = 0;
  double residual = 0.0;  ///< max |laplacian(phi) + rho| over owned nodes
};

class PoissonSolver {
public:
  /// max_iters bounds work per solve; tol is the stopping residual
  /// (max-norm, checked with a global allreduce every `check_every` iters).
  PoissonSolver(const LocalGrid& lg, int max_iters = 200, double tol = 1e-6,
                int check_every = 10);

  /// Solve into phi (sized total()); rho must hold the charge density on
  /// owned nodes. The mean of rho is removed internally (periodic
  /// compatibility condition).
  PoissonResult solve(sim::Comm& comm, const std::vector<double>& rho,
                      std::vector<double>& phi) const;

  /// E = -grad(phi) on owned nodes (phi ghosts must be fresh — solve()
  /// leaves them fresh).
  void gradient(const std::vector<double>& phi, std::vector<double>& ex,
                std::vector<double>& ey) const;

private:
  const LocalGrid* lg_;
  int max_iters_;
  double tol_;
  int check_every_;
};

}  // namespace picpar::mesh
