// Electromagnetic field state over a LocalGrid.
//
// Normalized units: c = eps0 = mu0 = 1. All arrays are sized
// LocalGrid::total() (owned + ghost entries); ghosts are refreshed by halo
// exchange before any stencil use.
#pragma once

#include <vector>

#include "mesh/local_grid.hpp"

namespace picpar::mesh {

struct FieldState {
  explicit FieldState(const LocalGrid& lg)
      : ex(lg.make_field()),
        ey(lg.make_field()),
        ez(lg.make_field()),
        bx(lg.make_field()),
        by(lg.make_field()),
        bz(lg.make_field()),
        jx(lg.make_field()),
        jy(lg.make_field()),
        jz(lg.make_field()),
        rho(lg.make_field()) {}

  std::vector<double> ex, ey, ez;
  std::vector<double> bx, by, bz;
  std::vector<double> jx, jy, jz;
  std::vector<double> rho;

  void clear_sources() {
    std::fill(jx.begin(), jx.end(), 0.0);
    std::fill(jy.begin(), jy.end(), 0.0);
    std::fill(jz.begin(), jz.end(), 0.0);
    std::fill(rho.begin(), rho.end(), 0.0);
  }

  /// Field energy over owned nodes: 0.5 * (E^2 + B^2) * cell_area.
  double energy(const LocalGrid& lg) const;
};

}  // namespace picpar::mesh
