// Assignment of mesh nodes (== cells) to ranks.
//
// Two families, both BLOCK in the sense of the paper (each rank owns one
// contiguous run of some 1-D ordering of the cells):
//   * block(px, py): classic 2-D Cartesian blocks;
//   * curve(c): cells sorted by a space-filling-curve index and cut into
//     equal runs (Fig 10) — sub-blocks follow the curve through the mesh.
//
// The partition is global, read-only and identical on every rank, so a
// single instance is shared by all simulated ranks.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mesh/grid.hpp"
#include "sfc/curve.hpp"

namespace picpar::mesh {

class GridPartition {
public:
  /// Classic 2-D block decomposition on a px-by-py rank grid
  /// (px * py == nranks).
  static GridPartition block(const GridDesc& grid, int px, int py);

  /// Choose a near-square rank grid automatically.
  static GridPartition block_auto(const GridDesc& grid, int nranks);

  /// Fig 10: order cells along `curve`, split into nranks equal runs.
  static GridPartition curve(const GridDesc& grid, int nranks,
                             const sfc::Curve& curve);

  const GridDesc& grid() const { return grid_; }
  int nranks() const { return nranks_; }
  const std::string& method() const { return method_; }

  int owner(std::uint64_t node_id) const {
    return owner_[static_cast<std::size_t>(node_id)];
  }
  std::span<const std::uint64_t> nodes_of(int rank) const {
    return nodes_[static_cast<std::size_t>(rank)];
  }
  std::size_t count_of(int rank) const {
    return nodes_[static_cast<std::size_t>(rank)].size();
  }

  /// Max/mean node count over ranks (1.0 == perfectly balanced).
  double imbalance() const;

private:
  GridPartition(const GridDesc& grid, int nranks, std::string method);
  void finalize();  ///< build nodes_ from owner_

  GridDesc grid_;
  int nranks_ = 0;
  std::string method_;
  std::vector<int> owner_;                       // node id -> rank
  std::vector<std::vector<std::uint64_t>> nodes_;  // rank -> sorted node ids
};

}  // namespace picpar::mesh
