// Explicit finite-difference Maxwell solver on the partitioned mesh
// (the paper's "field solve" phase: each grid point needs data from its
// four neighboring grid points).
//
// Colocated leapfrog scheme in 2-D (d/dz == 0), full six components (2d3v):
//   B^{n+1/2} = B^n     - dt/2 * curl E^n
//   E^{n+1}   = E^n     + dt   * (curl B^{n+1/2} - J)
//   B^{n+1}   = B^{n+1/2} - dt/2 * curl E^{n+1}
// with central differences over the periodic 4-neighborhood. Requires
// dt <= cfl * min(dx, dy) / sqrt(2).
#pragma once

#include "mesh/fields.hpp"
#include "sim/comm.hpp"

namespace picpar::mesh {

class MaxwellSolver {
public:
  MaxwellSolver(const LocalGrid& lg, double dt);

  /// Advance fields one step; performs the halo exchanges it needs.
  /// J (and rho) must already hold this step's sources on owned nodes.
  void step(sim::Comm& comm, FieldState& f) const;

  double dt() const { return dt_; }

  /// Largest stable time step for this grid.
  static double max_dt(const GridDesc& g);

private:
  void curl_e(const FieldState& f, std::vector<double>& cx,
              std::vector<double>& cy, std::vector<double>& cz) const;
  void curl_b(const FieldState& f, std::vector<double>& cx,
              std::vector<double>& cy, std::vector<double>& cz) const;

  const LocalGrid* lg_;
  double dt_;
  double inv2dx_;
  double inv2dy_;
};

}  // namespace picpar::mesh
