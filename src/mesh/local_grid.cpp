#include "mesh/local_grid.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace picpar::mesh {

namespace {
constexpr int kHaloTag = 100;
}

LocalGrid::LocalGrid(const GridPartition& part, int rank)
    : part_(&part), rank_(rank) {
  const GridDesc& g = part.grid();
  const auto mine = part.nodes_of(rank);
  owned_ = mine.size();
  gids_.assign(mine.begin(), mine.end());

  local_.assign(static_cast<std::size_t>(g.nodes()), kNoLocal);
  for (std::size_t l = 0; l < owned_; ++l)
    local_[static_cast<std::size_t>(gids_[l])] = static_cast<std::uint32_t>(l);

  // Discover ghosts: stencil neighbors of owned nodes not owned by us,
  // grouped by owner then gid so both exchange sides agree on ordering.
  std::map<int, std::vector<std::uint64_t>> ghosts_by_owner;
  auto consider = [&](std::uint64_t nb) {
    const int o = part.owner(nb);
    if (o == rank_) return;
    ghosts_by_owner[o].push_back(nb);
  };
  for (std::size_t l = 0; l < owned_; ++l) {
    const std::uint64_t id = gids_[l];
    consider(g.east(id));
    consider(g.west(id));
    consider(g.north(id));
    consider(g.south(id));
  }
  for (auto& [owner, list] : ghosts_by_owner) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  for (auto& [owner, list] : ghosts_by_owner) {
    HaloPeer peer;
    peer.rank = owner;
    for (const auto gid : list) {
      const auto l = static_cast<std::uint32_t>(gids_.size());
      gids_.push_back(gid);
      ghost_gids_.push_back(gid);
      local_[static_cast<std::size_t>(gid)] = l;
      peer.recv.push_back(l);
    }
    peers_.push_back(std::move(peer));
  }

  // Send lists: my owned nodes adjacent to nodes owned by each peer —
  // exactly the peer's ghost list from us, in the same (gid-sorted) order.
  std::map<int, std::vector<std::uint64_t>> sends_by_peer;
  for (std::size_t l = 0; l < owned_; ++l) {
    const std::uint64_t id = gids_[l];
    const std::uint64_t nbrs[4] = {g.east(id), g.west(id), g.north(id),
                                   g.south(id)};
    for (const auto nb : nbrs) {
      const int o = part.owner(nb);
      if (o != rank_) sends_by_peer[o].push_back(id);
    }
  }
  for (auto& [peer_rank, list] : sends_by_peer) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    auto it = std::find_if(peers_.begin(), peers_.end(),
                           [r = peer_rank](const HaloPeer& p) { return p.rank == r; });
    if (it == peers_.end()) {
      // Possible in principle with exotic partitions (we border them but
      // own none of their stencil needs is impossible on a symmetric
      // 4-stencil, so this indicates a bug).
      throw std::logic_error("LocalGrid: asymmetric halo peer set");
    }
    it->send.reserve(list.size());
    for (const auto gid : list)
      it->send.push_back(local_[static_cast<std::size_t>(gid)]);
  }

  // Stencil map for owned nodes.
  stencil_.resize(4 * owned_);
  for (std::size_t l = 0; l < owned_; ++l) {
    const std::uint64_t id = gids_[l];
    stencil_[4 * l + 0] = local_[static_cast<std::size_t>(g.east(id))];
    stencil_[4 * l + 1] = local_[static_cast<std::size_t>(g.west(id))];
    stencil_[4 * l + 2] = local_[static_cast<std::size_t>(g.north(id))];
    stencil_[4 * l + 3] = local_[static_cast<std::size_t>(g.south(id))];
  }
}

void LocalGrid::halo_exchange(sim::Comm& comm,
                              std::vector<std::vector<double>*> fields) const {
  const std::size_t nf = fields.size();
  for (const auto* f : fields)
    if (f->size() != total())
      throw std::invalid_argument("halo_exchange: field has wrong size");

  // Post all sends first (buffered), then receive; exact-source matching
  // keeps streams separate.
  for (const auto& peer : peers_) {
    if (peer.send.empty()) continue;
    std::vector<double> buf;
    buf.reserve(peer.send.size() * nf);
    for (const auto* f : fields)
      for (const auto l : peer.send) buf.push_back((*f)[l]);
    comm.send(peer.rank, kHaloTag, buf);
  }
  for (const auto& peer : peers_) {
    if (peer.recv.empty()) continue;
    auto buf = comm.recv<double>(peer.rank, kHaloTag);
    if (buf.size() != peer.recv.size() * nf)
      throw std::runtime_error("halo_exchange: bad message length");
    std::size_t pos = 0;
    for (auto* f : fields)
      for (const auto l : peer.recv) (*f)[l] = buf[pos++];
  }
}

}  // namespace picpar::mesh
