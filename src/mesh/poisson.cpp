#include "mesh/poisson.hpp"

#include <cmath>
#include <stdexcept>

namespace picpar::mesh {

PoissonSolver::PoissonSolver(const LocalGrid& lg, int max_iters, double tol,
                             int check_every)
    : lg_(&lg), max_iters_(max_iters), tol_(tol), check_every_(check_every) {
  if (max_iters <= 0)
    throw std::invalid_argument("PoissonSolver: max_iters must be > 0");
  if (check_every <= 0)
    throw std::invalid_argument("PoissonSolver: check_every must be > 0");
}

PoissonResult PoissonSolver::solve(sim::Comm& comm,
                                   const std::vector<double>& rho,
                                   std::vector<double>& phi) const {
  const auto& lg = *lg_;
  const double dx2 = lg.grid().dx() * lg.grid().dx();
  const double dy2 = lg.grid().dy() * lg.grid().dy();
  const double denom = 2.0 * (dx2 + dy2);

  // Periodic Poisson needs zero-mean source; subtract the global mean.
  // picpar-lint: allow(float-reduction-order) fixed local-index sum
  double local_sum = 0.0;
  for (std::size_t l = 0; l < lg.owned(); ++l) local_sum += rho[l];
  const double mean = comm.allreduce_sum(local_sum) /
                      static_cast<double>(lg.grid().nodes());

  if (phi.size() != lg.total()) phi.assign(lg.total(), 0.0);
  auto next = lg.make_field();

  PoissonResult res;
  for (int it = 0; it < max_iters_; ++it) {
    lg.halo_exchange(comm, {&phi});
    double local_res = 0.0;
    const bool check = ((it + 1) % check_every_ == 0) || it + 1 == max_iters_;
    for (std::size_t l = 0; l < lg.owned(); ++l) {
      const auto e = lg.east(l), w = lg.west(l), n = lg.north(l),
                 s = lg.south(l);
      const double src = rho[l] - mean;
      next[l] = ((phi[e] + phi[w]) * dy2 + (phi[n] + phi[s]) * dx2 +
                 src * dx2 * dy2) /
                denom;
      if (check) {
        const double lap = (phi[e] - 2.0 * phi[l] + phi[w]) / dx2 +
                           (phi[n] - 2.0 * phi[l] + phi[s]) / dy2;
        local_res = std::max(local_res, std::abs(lap + src));
      }
    }
    std::swap(phi, next);
    res.iterations = it + 1;
    if (check) {
      res.residual = comm.allreduce_max(local_res);
      if (res.residual < tol_) break;
    }
  }
  lg.halo_exchange(comm, {&phi});
  return res;
}

void PoissonSolver::gradient(const std::vector<double>& phi,
                             std::vector<double>& ex,
                             std::vector<double>& ey) const {
  const auto& lg = *lg_;
  const double inv2dx = 0.5 / lg.grid().dx();
  const double inv2dy = 0.5 / lg.grid().dy();
  for (std::size_t l = 0; l < lg.owned(); ++l) {
    const auto e = lg.east(l), w = lg.west(l), n = lg.north(l), s = lg.south(l);
    ex[l] = -(phi[e] - phi[w]) * inv2dx;
    ey[l] = -(phi[n] - phi[s]) * inv2dy;
  }
}

}  // namespace picpar::mesh
