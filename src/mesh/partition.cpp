#include "mesh/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/stats.hpp"

namespace picpar::mesh {

GridPartition::GridPartition(const GridDesc& grid, int nranks,
                             std::string method)
    : grid_(grid), nranks_(nranks), method_(std::move(method)) {
  if (nranks <= 0)
    throw std::invalid_argument("GridPartition: nranks must be > 0");
  owner_.assign(static_cast<std::size_t>(grid.nodes()), 0);
}

void GridPartition::finalize() {
  nodes_.assign(static_cast<std::size_t>(nranks_), {});
  for (std::uint64_t id = 0; id < grid_.nodes(); ++id)
    nodes_[static_cast<std::size_t>(owner_[static_cast<std::size_t>(id)])]
        .push_back(id);
}

GridPartition GridPartition::block(const GridDesc& grid, int px, int py) {
  if (px <= 0 || py <= 0)
    throw std::invalid_argument("GridPartition::block: px, py must be > 0");
  GridPartition p(grid, px * py, "block");
  // Node (x, y) goes to block (bx, by) with near-equal block extents.
  for (std::uint64_t id = 0; id < grid.nodes(); ++id) {
    const auto x = grid.node_x(id);
    const auto y = grid.node_y(id);
    const auto bx = static_cast<int>(
        static_cast<std::uint64_t>(x) * static_cast<std::uint64_t>(px) / grid.nx);
    const auto by = static_cast<int>(
        static_cast<std::uint64_t>(y) * static_cast<std::uint64_t>(py) / grid.ny);
    p.owner_[static_cast<std::size_t>(id)] = by * px + bx;
  }
  p.finalize();
  return p;
}

GridPartition GridPartition::block_auto(const GridDesc& grid, int nranks) {
  // Pick the factorization px * py == nranks closest to the grid's aspect.
  int best_px = 1;
  double best_score = -1.0;
  for (int px = 1; px <= nranks; ++px) {
    if (nranks % px != 0) continue;
    const int py = nranks / px;
    const double block_w = static_cast<double>(grid.nx) / px;
    const double block_h = static_cast<double>(grid.ny) / py;
    const double aspect = block_w > block_h ? block_w / block_h : block_h / block_w;
    const double score = 1.0 / aspect;  // closer to square is better
    if (score > best_score) {
      best_score = score;
      best_px = px;
    }
  }
  return block(grid, best_px, nranks / best_px);
}

GridPartition GridPartition::curve(const GridDesc& grid, int nranks,
                                   const sfc::Curve& curve) {
  if (curve.nx() != grid.nx || curve.ny() != grid.ny)
    throw std::invalid_argument("GridPartition::curve: curve/grid dims differ");
  GridPartition p(grid, nranks, "curve:" + curve.name());
  const std::uint64_t n = grid.nodes();
  std::vector<std::uint64_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  std::vector<std::uint64_t> keys(n);
  for (std::uint64_t id = 0; id < n; ++id)
    keys[id] = curve.index(grid.node_x(id), grid.node_y(id));
  std::sort(ids.begin(), ids.end(), [&](std::uint64_t a, std::uint64_t b) {
    return keys[a] < keys[b];
  });
  for (std::uint64_t pos = 0; pos < n; ++pos) {
    const auto rank =
        static_cast<int>(pos * static_cast<std::uint64_t>(nranks) / n);
    p.owner_[static_cast<std::size_t>(ids[pos])] = rank;
  }
  p.finalize();
  return p;
}

double GridPartition::imbalance() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r)
    counts[static_cast<std::size_t>(r)] = count_of(r);
  return imbalance_counts(counts).factor();
}

}  // namespace picpar::mesh
