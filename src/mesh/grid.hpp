// Global computational mesh descriptor.
//
// The mesh is a regular nx-by-ny grid of cells over a periodic physical
// domain [0, lx) x [0, ly). Grid points (field nodes) sit at cell corners;
// with periodic boundaries node (i, j) identifies with (i mod nx, j mod ny),
// so there are exactly nx*ny distinct nodes and node id == cell id of the
// cell whose lower-left corner it is.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace picpar::mesh {

struct GridDesc {
  std::uint32_t nx = 0;  ///< cells in x
  std::uint32_t ny = 0;  ///< cells in y
  double lx = 1.0;       ///< physical width
  double ly = 1.0;       ///< physical height

  GridDesc() = default;
  GridDesc(std::uint32_t nx_, std::uint32_t ny_, double lx_ = 0.0,
           double ly_ = 0.0)
      : nx(nx_), ny(ny_), lx(lx_), ly(ly_) {
    if (nx == 0 || ny == 0)
      throw std::invalid_argument("GridDesc: dims must be > 0");
    // Default physical size: unit cells.
    if (lx <= 0.0) lx = static_cast<double>(nx);
    if (ly <= 0.0) ly = static_cast<double>(ny);
  }

  std::uint64_t nodes() const {
    return static_cast<std::uint64_t>(nx) * ny;
  }
  std::uint64_t cells() const { return nodes(); }

  double dx() const { return lx / static_cast<double>(nx); }
  double dy() const { return ly / static_cast<double>(ny); }

  std::uint64_t node_id(std::uint32_t ix, std::uint32_t iy) const {
    return static_cast<std::uint64_t>(iy) * nx + ix;
  }
  std::uint32_t node_x(std::uint64_t id) const {
    return static_cast<std::uint32_t>(id % nx);
  }
  std::uint32_t node_y(std::uint64_t id) const {
    return static_cast<std::uint32_t>(id / nx);
  }

  /// Periodic neighbor node ids.
  std::uint64_t east(std::uint64_t id) const {
    const auto x = node_x(id), y = node_y(id);
    return node_id((x + 1) % nx, y);
  }
  std::uint64_t west(std::uint64_t id) const {
    const auto x = node_x(id), y = node_y(id);
    return node_id((x + nx - 1) % nx, y);
  }
  std::uint64_t north(std::uint64_t id) const {
    const auto x = node_x(id), y = node_y(id);
    return node_id(x, (y + 1) % ny);
  }
  std::uint64_t south(std::uint64_t id) const {
    const auto x = node_x(id), y = node_y(id);
    return node_id(x, (y + ny - 1) % ny);
  }

  /// Wrap a physical position into the periodic domain.
  double wrap_x(double x) const {
    x -= lx * static_cast<double>(static_cast<long long>(x / lx));
    if (x < 0.0) x += lx;
    if (x >= lx) x -= lx;
    return x;
  }
  double wrap_y(double y) const {
    y -= ly * static_cast<double>(static_cast<long long>(y / ly));
    if (y < 0.0) y += ly;
    if (y >= ly) y -= ly;
    return y;
  }

  /// Cell containing wrapped position (x, y).
  std::uint64_t cell_of(double x, double y) const {
    auto cx = static_cast<std::uint32_t>(x / dx());
    auto cy = static_cast<std::uint32_t>(y / dy());
    if (cx >= nx) cx = nx - 1;  // guards x == lx after rounding
    if (cy >= ny) cy = ny - 1;
    return node_id(cx, cy);
  }
};

}  // namespace picpar::mesh
