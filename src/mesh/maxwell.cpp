#include "mesh/maxwell.hpp"

#include <cmath>
#include <stdexcept>

namespace picpar::mesh {

double FieldState::energy(const LocalGrid& lg) const {
  const double cell = lg.grid().dx() * lg.grid().dy();
  // picpar-lint: allow(float-reduction-order) fixed local-index sum
  double e = 0.0;
  for (std::size_t l = 0; l < lg.owned(); ++l) {
    e += ex[l] * ex[l] + ey[l] * ey[l] + ez[l] * ez[l];
    e += bx[l] * bx[l] + by[l] * by[l] + bz[l] * bz[l];
  }
  return 0.5 * e * cell;
}

MaxwellSolver::MaxwellSolver(const LocalGrid& lg, double dt)
    : lg_(&lg),
      dt_(dt),
      inv2dx_(0.5 / lg.grid().dx()),
      inv2dy_(0.5 / lg.grid().dy()) {
  if (dt <= 0.0) throw std::invalid_argument("MaxwellSolver: dt must be > 0");
  if (dt > max_dt(lg.grid()))
    throw std::invalid_argument("MaxwellSolver: dt violates CFL limit");
}

double MaxwellSolver::max_dt(const GridDesc& g) {
  return 0.9 * std::min(g.dx(), g.dy()) / std::sqrt(2.0);
}

// 2-D (d/dz = 0) curls with central differences. Only owned entries of the
// outputs are written; inputs must have fresh ghosts.
void MaxwellSolver::curl_e(const FieldState& f, std::vector<double>& cx,
                           std::vector<double>& cy,
                           std::vector<double>& cz) const {
  const auto& lg = *lg_;
  for (std::size_t l = 0; l < lg.owned(); ++l) {
    const auto e = lg.east(l), w = lg.west(l), n = lg.north(l), s = lg.south(l);
    const double dez_dy = (f.ez[n] - f.ez[s]) * inv2dy_;
    const double dez_dx = (f.ez[e] - f.ez[w]) * inv2dx_;
    const double dey_dx = (f.ey[e] - f.ey[w]) * inv2dx_;
    const double dex_dy = (f.ex[n] - f.ex[s]) * inv2dy_;
    cx[l] = dez_dy;
    cy[l] = -dez_dx;
    cz[l] = dey_dx - dex_dy;
  }
}

void MaxwellSolver::curl_b(const FieldState& f, std::vector<double>& cx,
                           std::vector<double>& cy,
                           std::vector<double>& cz) const {
  const auto& lg = *lg_;
  for (std::size_t l = 0; l < lg.owned(); ++l) {
    const auto e = lg.east(l), w = lg.west(l), n = lg.north(l), s = lg.south(l);
    const double dbz_dy = (f.bz[n] - f.bz[s]) * inv2dy_;
    const double dbz_dx = (f.bz[e] - f.bz[w]) * inv2dx_;
    const double dby_dx = (f.by[e] - f.by[w]) * inv2dx_;
    const double dbx_dy = (f.bx[n] - f.bx[s]) * inv2dy_;
    cx[l] = dbz_dy;
    cy[l] = -dbz_dx;
    cz[l] = dby_dx - dbx_dy;
  }
}

void MaxwellSolver::step(sim::Comm& comm, FieldState& f) const {
  const auto& lg = *lg_;
  auto cx = lg.make_field();
  auto cy = lg.make_field();
  auto cz = lg.make_field();

  lg.halo_exchange(comm, {&f.ex, &f.ey, &f.ez});
  curl_e(f, cx, cy, cz);
  for (std::size_t l = 0; l < lg.owned(); ++l) {
    f.bx[l] -= 0.5 * dt_ * cx[l];
    f.by[l] -= 0.5 * dt_ * cy[l];
    f.bz[l] -= 0.5 * dt_ * cz[l];
  }

  lg.halo_exchange(comm, {&f.bx, &f.by, &f.bz});
  curl_b(f, cx, cy, cz);
  for (std::size_t l = 0; l < lg.owned(); ++l) {
    f.ex[l] += dt_ * (cx[l] - f.jx[l]);
    f.ey[l] += dt_ * (cy[l] - f.jy[l]);
    f.ez[l] += dt_ * (cz[l] - f.jz[l]);
  }

  lg.halo_exchange(comm, {&f.ex, &f.ey, &f.ez});
  curl_e(f, cx, cy, cz);
  for (std::size_t l = 0; l < lg.owned(); ++l) {
    f.bx[l] -= 0.5 * dt_ * cx[l];
    f.by[l] -= 0.5 * dt_ * cy[l];
    f.bz[l] -= 0.5 * dt_ * cz[l];
  }
}

}  // namespace picpar::mesh
