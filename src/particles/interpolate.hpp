// Cloud-in-cell (linear) interpolation between particles and the four
// vertex grid points of their cell — the weight computation shared by the
// scatter and gather phases (paper Fig 3).
#pragma once

#include <cstdint>

#include "mesh/grid.hpp"

namespace picpar::particles {

/// The 4 vertex node ids of a particle's cell plus its bilinear weights.
struct CicStencil {
  std::uint64_t node[4];
  double weight[4];
};

/// Compute the CIC stencil for wrapped position (x, y). Weight order:
/// (x0,y0), (x1,y0), (x0,y1), (x1,y1).
inline CicStencil cic_stencil(const mesh::GridDesc& g, double x, double y) {
  const double gx = x / g.dx();
  const double gy = y / g.dy();
  auto cx = static_cast<std::uint32_t>(gx);
  auto cy = static_cast<std::uint32_t>(gy);
  if (cx >= g.nx) cx = g.nx - 1;
  if (cy >= g.ny) cy = g.ny - 1;
  const double fx = gx - static_cast<double>(cx);
  const double fy = gy - static_cast<double>(cy);
  const std::uint32_t cx1 = (cx + 1) % g.nx;
  const std::uint32_t cy1 = (cy + 1) % g.ny;

  CicStencil s;
  s.node[0] = g.node_id(cx, cy);
  s.node[1] = g.node_id(cx1, cy);
  s.node[2] = g.node_id(cx, cy1);
  s.node[3] = g.node_id(cx1, cy1);
  s.weight[0] = (1.0 - fx) * (1.0 - fy);
  s.weight[1] = fx * (1.0 - fy);
  s.weight[2] = (1.0 - fx) * fy;
  s.weight[3] = fx * fy;
  return s;
}

}  // namespace picpar::particles
