// Particle pushers (the paper's "push phase").
//
// The primary pusher is the relativistic Boris rotation, the standard
// second-order scheme for electromagnetic PIC; a non-relativistic leapfrog
// is provided for electrostatic runs and tests.
#pragma once

#include "mesh/grid.hpp"
#include "particles/particle_array.hpp"

namespace picpar::particles {

/// Fields interpolated at a particle location.
struct LocalFields {
  double ex = 0.0, ey = 0.0, ez = 0.0;
  double bx = 0.0, by = 0.0, bz = 0.0;
};

/// Relativistic Boris push of momentum u by fields over dt
/// (charge q, mass m; c = 1). Returns the updated momentum.
void boris_kick(double q, double m, double dt, const LocalFields& f,
                double& ux, double& uy, double& uz);

/// Advance position of particle i by its velocity u/gamma over dt, with
/// periodic wrapping, and refresh nothing else.
void advance_position(const mesh::GridDesc& g, ParticleArray& p,
                      std::size_t i, double dt);

/// Advance position with an absorbing boundary in x and periodic wrapping
/// in y (open-ended beam scenarios: particles stream in at one edge and
/// leave at the other). Returns false when the particle left the domain in
/// x — the caller removes (absorbs) it; its position is left unchanged.
bool advance_position_absorb_x(const mesh::GridDesc& g, ParticleArray& p,
                               std::size_t i, double dt);

/// Non-relativistic leapfrog kick (E only) for electrostatic runs.
void leapfrog_kick(double q, double m, double dt, double ex, double ey,
                   double& ux, double& uy);

}  // namespace picpar::particles
