// Structure-of-arrays particle storage.
//
// A ParticleArray holds one or more species: per-particle position, momentum
// (u = gamma * v, c = 1) and the sort key. Charge and mass are per-species
// constants held in a small species table.
//
// Species-in-key encoding: with S = nspecies(), a particle's key is
//   key = cell_curve_index * S + species_id
// so keys of the same cell stay adjacent along the curve while the species
// id rides in the low bits (key % S). For S == 1 the encoding degenerates to
// the plain curve index — single-species keys, records and message bytes are
// numerically identical to the pre-multi-species layout, which keeps every
// legacy run bit-identical. ParticleRec stays the 48-byte packed POD used
// when particles travel between ranks; no per-record species field is needed
// because the key carries it.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace picpar::particles {

struct ParticleRec {
  double x = 0.0, y = 0.0;
  double ux = 0.0, uy = 0.0, uz = 0.0;
  std::uint64_t key = 0;
};
static_assert(sizeof(ParticleRec) == 48);

/// Per-species constants (charge sign included in `charge`).
struct Species {
  double charge = -1.0;
  double mass = 1.0;
};

class ParticleArray {
public:
  ParticleArray(double charge, double mass) : species_{{charge, mass}} {
    if (mass <= 0.0) throw std::invalid_argument("ParticleArray: mass <= 0");
  }

  explicit ParticleArray(std::vector<Species> species)
      : species_(std::move(species)) {
    if (species_.empty())
      throw std::invalid_argument("ParticleArray: empty species table");
    for (const auto& s : species_)
      if (s.mass <= 0.0)
        throw std::invalid_argument("ParticleArray: mass <= 0");
  }

  /// Species-0 constants (the only species of a legacy array).
  double charge() const { return species_[0].charge; }
  double mass() const { return species_[0].mass; }

  const std::vector<Species>& species() const { return species_; }
  std::size_t nspecies() const { return species_.size(); }

  /// Key stride of the species-in-key encoding (== nspecies()).
  std::uint64_t key_stride() const {
    return static_cast<std::uint64_t>(species_.size());
  }

  /// Species id of particle i, decoded from its key.
  std::uint64_t species_of(std::size_t i) const {
    return species_.size() == 1 ? 0 : key[i] % key_stride();
  }

  /// Per-particle charge/mass through the species table. For a
  /// single-species array these return exactly charge()/mass(), so mixed
  /// call sites stay bit-identical to the scalar path.
  double charge_of(std::size_t i) const {
    return species_[static_cast<std::size_t>(species_of(i))].charge;
  }
  double mass_of(std::size_t i) const {
    return species_[static_cast<std::size_t>(species_of(i))].mass;
  }

  std::size_t size() const { return x.size(); }
  bool empty() const { return x.empty(); }

  void reserve(std::size_t n) {
    x.reserve(n);
    y.reserve(n);
    ux.reserve(n);
    uy.reserve(n);
    uz.reserve(n);
    key.reserve(n);
  }

  void push_back(const ParticleRec& p) {
    x.push_back(p.x);
    y.push_back(p.y);
    ux.push_back(p.ux);
    uy.push_back(p.uy);
    uz.push_back(p.uz);
    key.push_back(p.key);
  }

  ParticleRec rec(std::size_t i) const {
    return {x[i], y[i], ux[i], uy[i], uz[i], key[i]};
  }

  void set(std::size_t i, const ParticleRec& p) {
    x[i] = p.x;
    y[i] = p.y;
    ux[i] = p.ux;
    uy[i] = p.uy;
    uz[i] = p.uz;
    key[i] = p.key;
  }

  void clear() {
    x.clear();
    y.clear();
    ux.clear();
    uy.clear();
    uz.clear();
    key.clear();
  }

  /// Remove element i by swapping the last element into its place.
  void swap_remove(std::size_t i) {
    const std::size_t last = size() - 1;
    if (i != last) set(i, rec(last));
    x.pop_back();
    y.pop_back();
    ux.pop_back();
    uy.pop_back();
    uz.pop_back();
    key.pop_back();
  }

  /// Drop every element at index >= n, preserving the order of the rest
  /// (order-preserving removal: compact survivors with set(), then
  /// truncate — unlike swap_remove this keeps the key sort).
  void truncate(std::size_t n) {
    if (n >= size()) return;
    x.resize(n);
    y.resize(n);
    ux.resize(n);
    uy.resize(n);
    uz.resize(n);
    key.resize(n);
  }

  /// Reorder all arrays by `perm` (perm[i] = old index of new element i).
  void apply_permutation(const std::vector<std::uint32_t>& perm);

  /// Relativistic gamma of particle i.
  double gamma(std::size_t i) const;

  /// Total kinetic energy: sum m (gamma - 1), per-particle species mass.
  double kinetic_energy() const;

  std::vector<double> x, y;
  std::vector<double> ux, uy, uz;
  std::vector<std::uint64_t> key;

private:
  std::vector<Species> species_;
};

}  // namespace picpar::particles
