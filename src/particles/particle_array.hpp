// Structure-of-arrays particle storage.
//
// A ParticleArray holds one species: per-particle position, momentum
// (u = gamma * v, c = 1) and the sort key (space-filling-curve index of the
// enclosing cell, Section 5.1). Charge and mass are per-species constants.
// ParticleRec is the packed POD used when particles travel between ranks.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace picpar::particles {

struct ParticleRec {
  double x = 0.0, y = 0.0;
  double ux = 0.0, uy = 0.0, uz = 0.0;
  std::uint64_t key = 0;
};
static_assert(sizeof(ParticleRec) == 48);

class ParticleArray {
public:
  ParticleArray(double charge, double mass) : charge_(charge), mass_(mass) {
    if (mass <= 0.0) throw std::invalid_argument("ParticleArray: mass <= 0");
  }

  double charge() const { return charge_; }
  double mass() const { return mass_; }

  std::size_t size() const { return x.size(); }
  bool empty() const { return x.empty(); }

  void reserve(std::size_t n) {
    x.reserve(n);
    y.reserve(n);
    ux.reserve(n);
    uy.reserve(n);
    uz.reserve(n);
    key.reserve(n);
  }

  void push_back(const ParticleRec& p) {
    x.push_back(p.x);
    y.push_back(p.y);
    ux.push_back(p.ux);
    uy.push_back(p.uy);
    uz.push_back(p.uz);
    key.push_back(p.key);
  }

  ParticleRec rec(std::size_t i) const {
    return {x[i], y[i], ux[i], uy[i], uz[i], key[i]};
  }

  void set(std::size_t i, const ParticleRec& p) {
    x[i] = p.x;
    y[i] = p.y;
    ux[i] = p.ux;
    uy[i] = p.uy;
    uz[i] = p.uz;
    key[i] = p.key;
  }

  void clear() {
    x.clear();
    y.clear();
    ux.clear();
    uy.clear();
    uz.clear();
    key.clear();
  }

  /// Remove element i by swapping the last element into its place.
  void swap_remove(std::size_t i) {
    const std::size_t last = size() - 1;
    if (i != last) set(i, rec(last));
    x.pop_back();
    y.pop_back();
    ux.pop_back();
    uy.pop_back();
    uz.pop_back();
    key.pop_back();
  }

  /// Reorder all arrays by `perm` (perm[i] = old index of new element i).
  void apply_permutation(const std::vector<std::uint32_t>& perm);

  /// Relativistic gamma of particle i.
  double gamma(std::size_t i) const;

  /// Total kinetic energy: sum m (gamma - 1).
  double kinetic_energy() const;

  std::vector<double> x, y;
  std::vector<double> ux, uy, uz;
  std::vector<std::uint64_t> key;

private:
  double charge_;
  double mass_;
};

}  // namespace picpar::particles
