#include "particles/particle_array.hpp"

#include <cmath>

namespace picpar::particles {

void ParticleArray::apply_permutation(const std::vector<std::uint32_t>& perm) {
  if (perm.size() != size())
    throw std::invalid_argument("apply_permutation: size mismatch");
  auto permute = [&](auto& v) {
    auto tmp = v;
    for (std::size_t i = 0; i < perm.size(); ++i) v[i] = tmp[perm[i]];
  };
  permute(x);
  permute(y);
  permute(ux);
  permute(uy);
  permute(uz);
  permute(key);
}

double ParticleArray::gamma(std::size_t i) const {
  return std::sqrt(1.0 + ux[i] * ux[i] + uy[i] * uy[i] + uz[i] * uz[i]);
}

double ParticleArray::kinetic_energy() const {
  // picpar-lint: allow(float-reduction-order) local-index-order sum
  double e = 0.0;
  if (species_.size() == 1) {
    const double m = species_[0].mass;
    for (std::size_t i = 0; i < size(); ++i) e += m * (gamma(i) - 1.0);
  } else {
    for (std::size_t i = 0; i < size(); ++i)
      e += mass_of(i) * (gamma(i) - 1.0);
  }
  return e;
}

}  // namespace picpar::particles
