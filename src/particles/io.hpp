// Binary particle checkpointing.
//
// Long PIC campaigns on the CM-5 era machines (and today) run in windows;
// checkpoint/restart of the particle population is the minimal persistence
// a production code needs. Format (v3): little-endian, fixed 40-byte header
// (magic, version, count, species-0 charge/mass), a species table
// (u32 nspecies + per-species charge/mass), count ParticleRec records, a
// one-byte-per-record species column (cross-checked against the key's
// species-in-key encoding at load), then a CRC-32 (IEEE) trailer over
// everything before it so silent corruption is detected at load time.
// v2 files (single species, no species block/column) and v1 files (v2
// without the trailer) still load.
#pragma once

#include <string>

#include "particles/particle_array.hpp"

namespace picpar::particles {

/// Write the array (species constants + every particle) to `path`.
/// Throws std::runtime_error on I/O failure.
void save_particles(const std::string& path, const ParticleArray& p);

/// Read an array written by save_particles. Throws std::runtime_error on
/// I/O failure, bad magic, version mismatch, truncated payload or checksum
/// mismatch (v2 files).
ParticleArray load_particles(const std::string& path);

}  // namespace picpar::particles
