// Initial particle distributions.
//
// The paper evaluates two cases: particles uniform over the domain, and a
// highly irregular distribution "concentrated in the center of the domain"
// (Fig 15). Both get a thermal velocity spread plus an optional bulk drift;
// the drift makes the Lagrangian particle subdomains wander away from their
// mesh subdomains over time, which is exactly the effect the redistribution
// machinery (Figs 16-20) responds to.
#pragma once

#include <cstdint>
#include <string>

#include "mesh/grid.hpp"
#include "particles/particle_array.hpp"
#include "util/rng.hpp"

namespace picpar::particles {

struct InitParams {
  std::uint64_t total = 0;       ///< global particle count
  double vth = 0.05;             ///< thermal spread of u per component
  double drift_ux = 0.0;         ///< bulk drift, x
  double drift_uy = 0.0;         ///< bulk drift, y
  double sigma_fraction = 0.08;  ///< gaussian: sigma as a fraction of domain
  /// Target plasma frequency of the mean density; sets the macro-particle
  /// charge magnitude so the field solve stays resolved (omega_p * dt must
  /// be well below 2). <= 0 keeps the charge passed to generate().
  double omega_p = 0.2;
  std::uint64_t seed = 12345;
};

enum class Distribution { kUniform, kGaussian, kTwoStream, kRing };

const char* distribution_name(Distribution d);
Distribution parse_distribution(const std::string& name);

/// Macro-particle charge magnitude that realizes plasma frequency omega_p
/// at mean density total/(lx*ly):  q = omega_p * sqrt(m * lx * ly / total).
double macro_charge(const mesh::GridDesc& grid, std::uint64_t total,
                    double mass, double omega_p);

/// Generate the global particle population deterministically (identical on
/// every rank for a given seed). The caller partitions the result. When
/// params.omega_p > 0 the species charge is set to
/// -macro_charge(grid, total, mass, omega_p), overriding `charge`.
ParticleArray generate(Distribution dist, const mesh::GridDesc& grid,
                       const InitParams& params, double charge = -1.0,
                       double mass = 1.0);

}  // namespace picpar::particles
