#include "particles/init.hpp"

#include <cmath>
#include <stdexcept>

namespace picpar::particles {

const char* distribution_name(Distribution d) {
  switch (d) {
    case Distribution::kUniform: return "uniform";
    case Distribution::kGaussian: return "gaussian";
    case Distribution::kTwoStream: return "two_stream";
    case Distribution::kRing: return "ring";
  }
  return "?";
}

Distribution parse_distribution(const std::string& name) {
  if (name == "uniform") return Distribution::kUniform;
  if (name == "gaussian" || name == "irregular") return Distribution::kGaussian;
  if (name == "two_stream") return Distribution::kTwoStream;
  if (name == "ring") return Distribution::kRing;
  throw std::invalid_argument("unknown distribution: " + name);
}

double macro_charge(const mesh::GridDesc& grid, std::uint64_t total,
                    double mass, double omega_p) {
  if (total == 0) throw std::invalid_argument("macro_charge: total == 0");
  return omega_p * std::sqrt(mass * grid.lx * grid.ly /
                             static_cast<double>(total));
}

ParticleArray generate(Distribution dist, const mesh::GridDesc& grid,
                       const InitParams& params, double charge, double mass) {
  if (params.omega_p > 0.0)
    charge = -macro_charge(grid, params.total, mass, params.omega_p);
  ParticleArray p(charge, mass);
  p.reserve(params.total);
  Rng rng(params.seed);

  const double cx = 0.5 * grid.lx;
  const double cy = 0.5 * grid.ly;
  const double sigma_x = params.sigma_fraction * grid.lx;
  const double sigma_y = params.sigma_fraction * grid.ly;

  for (std::uint64_t i = 0; i < params.total; ++i) {
    ParticleRec r;
    switch (dist) {
      case Distribution::kUniform:
        r.x = rng.uniform(0.0, grid.lx);
        r.y = rng.uniform(0.0, grid.ly);
        break;
      case Distribution::kGaussian:
        // Center-concentrated blob (the paper's "irregular" case, Fig 15);
        // wrap tails periodically so density stays integrable.
        r.x = grid.wrap_x(rng.normal(cx, sigma_x));
        r.y = grid.wrap_y(rng.normal(cy, sigma_y));
        break;
      case Distribution::kTwoStream:
        r.x = rng.uniform(0.0, grid.lx);
        r.y = rng.uniform(0.0, grid.ly);
        break;
      case Distribution::kRing: {
        const double radius = 0.25 * std::min(grid.lx, grid.ly) *
                              (1.0 + 0.2 * rng.normal());
        const double theta = rng.uniform(0.0, 2.0 * M_PI);
        r.x = grid.wrap_x(cx + radius * std::cos(theta));
        r.y = grid.wrap_y(cy + radius * std::sin(theta));
        break;
      }
    }
    r.ux = params.drift_ux + params.vth * rng.normal();
    r.uy = params.drift_uy + params.vth * rng.normal();
    r.uz = params.vth * rng.normal();
    if (dist == Distribution::kTwoStream) {
      // Counter-streaming beams split by parity.
      const double beam = (i % 2 == 0) ? 1.0 : -1.0;
      r.ux += beam * 0.2;
    }
    p.push_back(r);
  }
  return p;
}

}  // namespace picpar::particles
