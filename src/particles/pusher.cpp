#include "particles/pusher.hpp"

#include <cmath>

namespace picpar::particles {

void boris_kick(double q, double m, double dt, const LocalFields& f,
                double& ux, double& uy, double& uz) {
  const double qmdt2 = 0.5 * q * dt / m;

  // Half electric acceleration.
  double umx = ux + qmdt2 * f.ex;
  double umy = uy + qmdt2 * f.ey;
  double umz = uz + qmdt2 * f.ez;

  // Magnetic rotation at the mid-step gamma.
  const double gamma = std::sqrt(1.0 + umx * umx + umy * umy + umz * umz);
  const double tx = qmdt2 * f.bx / gamma;
  const double ty = qmdt2 * f.by / gamma;
  const double tz = qmdt2 * f.bz / gamma;
  const double t2 = tx * tx + ty * ty + tz * tz;
  const double sx = 2.0 * tx / (1.0 + t2);
  const double sy = 2.0 * ty / (1.0 + t2);
  const double sz = 2.0 * tz / (1.0 + t2);

  const double upx = umx + (umy * tz - umz * ty);
  const double upy = umy + (umz * tx - umx * tz);
  const double upz = umz + (umx * ty - umy * tx);

  umx += upy * sz - upz * sy;
  umy += upz * sx - upx * sz;
  umz += upx * sy - upy * sx;

  // Second half electric acceleration.
  ux = umx + qmdt2 * f.ex;
  uy = umy + qmdt2 * f.ey;
  uz = umz + qmdt2 * f.ez;
}

void advance_position(const mesh::GridDesc& g, ParticleArray& p,
                      std::size_t i, double dt) {
  const double gamma = p.gamma(i);
  p.x[i] = g.wrap_x(p.x[i] + dt * p.ux[i] / gamma);
  p.y[i] = g.wrap_y(p.y[i] + dt * p.uy[i] / gamma);
}

bool advance_position_absorb_x(const mesh::GridDesc& g, ParticleArray& p,
                               std::size_t i, double dt) {
  const double gamma = p.gamma(i);
  const double nx = p.x[i] + dt * p.ux[i] / gamma;
  if (nx < 0.0 || nx >= g.lx) return false;
  p.x[i] = nx;
  p.y[i] = g.wrap_y(p.y[i] + dt * p.uy[i] / gamma);
  return true;
}

void leapfrog_kick(double q, double m, double dt, double ex, double ey,
                   double& ux, double& uy) {
  const double qmdt = q * dt / m;
  ux += qmdt * ex;
  uy += qmdt * ey;
}

}  // namespace picpar::particles
