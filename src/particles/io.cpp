#include "particles/io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace picpar::particles {

namespace {

constexpr std::uint64_t kMagic = 0x70696370617274ULL;  // "picpart"
constexpr std::uint32_t kVersion = 3;
constexpr std::uint32_t kVersionSingleSpecies = 2;
constexpr std::uint32_t kVersionNoCrc = 1;
/// Species ids are stored as one byte per record, so the table is capped.
constexpr std::uint32_t kMaxSpecies = 256;

struct Header {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t reserved = 0;
  std::uint64_t count = 0;
  double charge = 0.0;
  double mass = 0.0;
};
static_assert(sizeof(Header) == 40);

/// v3 per-species constants, after the header: u32 nspecies, then one of
/// these per species. The header's charge/mass mirror species 0 so a v3
/// file degrades readably for tools that only understand the fixed header.
struct SpeciesRec {
  double charge = 0.0;
  double mass = 0.0;
};
static_assert(sizeof(SpeciesRec) == 16);

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
const std::array<std::uint32_t, 256>& crc32_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t n) {
  const auto& table = crc32_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  return crc;
}

std::uint32_t crc32_finish(std::uint32_t crc) { return crc ^ 0xFFFFFFFFu; }
constexpr std::uint32_t kCrcInit = 0xFFFFFFFFu;

}  // namespace

void save_particles(const std::string& path, const ParticleArray& p) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("save_particles: cannot open " + path);

  Header h;
  h.count = p.size();
  h.charge = p.charge();
  h.mass = p.mass();

  const auto nspecies = static_cast<std::uint32_t>(p.nspecies());
  if (nspecies > kMaxSpecies)
    throw std::runtime_error("save_particles: too many species");
  std::vector<SpeciesRec> species;
  species.reserve(nspecies);
  for (const auto& s : p.species()) species.push_back({s.charge, s.mass});

  std::vector<ParticleRec> recs;
  recs.reserve(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) recs.push_back(p.rec(i));

  // Species column: redundant with key % nspecies by construction, stored
  // explicitly so the loader can cross-check the key encoding (a corrupted
  // key that survives the CRC window cannot silently swap species).
  std::vector<std::uint8_t> column(p.size());
  for (std::size_t i = 0; i < p.size(); ++i)
    column[i] = static_cast<std::uint8_t>(p.species_of(i));

  std::uint32_t crc = kCrcInit;
  const auto put = [&](const void* data, std::size_t n) {
    if (n == 0) return;
    f.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(n));
    crc = crc32_update(crc, data, n);
  };
  put(&h, sizeof(h));
  put(&nspecies, sizeof(nspecies));
  put(species.data(), species.size() * sizeof(SpeciesRec));
  put(recs.data(), recs.size() * sizeof(ParticleRec));
  put(column.data(), column.size());

  const std::uint32_t trailer = crc32_finish(crc);
  f.write(reinterpret_cast<const char*>(&trailer), sizeof(trailer));
  if (!f) throw std::runtime_error("save_particles: write failed for " + path);
}

ParticleArray load_particles(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_particles: cannot open " + path);

  Header h;
  f.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!f || h.magic != kMagic)
    throw std::runtime_error("load_particles: bad magic in " + path);
  if (h.version != kVersion && h.version != kVersionSingleSpecies &&
      h.version != kVersionNoCrc)
    throw std::runtime_error("load_particles: unsupported version " +
                             std::to_string(h.version));

  f.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(f.tellg());
  f.seekg(static_cast<std::streamoff>(sizeof(Header)));

  std::uint32_t crc = kCrcInit;
  crc = crc32_update(crc, &h, sizeof(h));
  const auto get = [&](void* data, std::size_t n, const char* what) {
    if (n == 0) return;
    f.read(reinterpret_cast<char*>(data), static_cast<std::streamsize>(n));
    if (!f)
      throw std::runtime_error(std::string("load_particles: truncated ") +
                               what + " in " + path);
    crc = crc32_update(crc, data, n);
  };

  std::uint32_t nspecies = 1;
  std::vector<Species> species;
  std::uint64_t payload = file_size - sizeof(Header);
  if (h.version >= kVersion) {
    get(&nspecies, sizeof(nspecies), "species count");
    if (nspecies == 0 || nspecies > kMaxSpecies)
      throw std::runtime_error("load_particles: bad species count " +
                               std::to_string(nspecies) + " in " + path);
    // Validate the species table against the remaining bytes before
    // allocating anything driven by file contents.
    payload -= sizeof(nspecies);
    if (std::uint64_t{nspecies} * sizeof(SpeciesRec) > payload)
      throw std::runtime_error("load_particles: species table exceeds file "
                               "size in " + path);
    std::vector<SpeciesRec> raw(nspecies);
    get(raw.data(), raw.size() * sizeof(SpeciesRec), "species table");
    payload -= std::uint64_t{nspecies} * sizeof(SpeciesRec);
    species.reserve(nspecies);
    for (const auto& s : raw) species.push_back({s.charge, s.mass});
  } else {
    species.push_back({h.charge, h.mass});
  }

  // Validate the claimed record count against the actual file size before
  // allocating anything: a corrupt count field must be rejected here, not
  // turned into a multi-gigabyte allocation the read can never fill. v3
  // records cost an extra species-column byte each.
  const std::uint64_t per_rec =
      sizeof(ParticleRec) + (h.version >= kVersion ? 1 : 0);
  if (h.count > payload / per_rec)
    throw std::runtime_error("load_particles: record count " +
                             std::to_string(h.count) +
                             " exceeds file size in " + path);

  std::vector<ParticleRec> recs(h.count);
  get(recs.data(), recs.size() * sizeof(ParticleRec), "records");

  std::vector<std::uint8_t> column;
  if (h.version >= kVersion) {
    column.resize(h.count);
    get(column.data(), column.size(), "species column");
  }

  if (h.version >= kVersionSingleSpecies) {
    std::uint32_t stored = 0;
    f.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    if (!f)
      throw std::runtime_error("load_particles: missing checksum in " + path);
    if (crc32_finish(crc) != stored)
      throw std::runtime_error("load_particles: checksum mismatch in " + path);
  }

  ParticleArray p(std::move(species));
  p.reserve(h.count);
  const std::uint64_t stride = p.key_stride();
  for (std::size_t i = 0; i < recs.size(); ++i) {
    if (h.version >= kVersion && column[i] != recs[i].key % stride)
      throw std::runtime_error(
          "load_particles: species column disagrees with key encoding in " +
          path);
    p.push_back(recs[i]);
  }
  return p;
}

}  // namespace picpar::particles
