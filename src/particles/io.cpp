#include "particles/io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace picpar::particles {

namespace {

constexpr std::uint64_t kMagic = 0x70696370617274ULL;  // "picpart"
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kVersionNoCrc = 1;

struct Header {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t reserved = 0;
  std::uint64_t count = 0;
  double charge = 0.0;
  double mass = 0.0;
};
static_assert(sizeof(Header) == 40);

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
const std::array<std::uint32_t, 256>& crc32_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t n) {
  const auto& table = crc32_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  return crc;
}

std::uint32_t crc32_finish(std::uint32_t crc) { return crc ^ 0xFFFFFFFFu; }
constexpr std::uint32_t kCrcInit = 0xFFFFFFFFu;

}  // namespace

void save_particles(const std::string& path, const ParticleArray& p) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("save_particles: cannot open " + path);

  Header h;
  h.count = p.size();
  h.charge = p.charge();
  h.mass = p.mass();
  f.write(reinterpret_cast<const char*>(&h), sizeof(h));

  std::vector<ParticleRec> recs;
  recs.reserve(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) recs.push_back(p.rec(i));
  if (!recs.empty())
    f.write(reinterpret_cast<const char*>(recs.data()),
            static_cast<std::streamsize>(recs.size() * sizeof(ParticleRec)));

  // v2 trailer: CRC-32 over header + records, so a bit flip anywhere in the
  // file (not just a short read) is detected at load time.
  std::uint32_t crc = crc32_update(kCrcInit, &h, sizeof(h));
  if (!recs.empty())
    crc = crc32_update(crc, recs.data(), recs.size() * sizeof(ParticleRec));
  crc = crc32_finish(crc);
  f.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  if (!f) throw std::runtime_error("save_particles: write failed for " + path);
}

ParticleArray load_particles(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_particles: cannot open " + path);

  Header h;
  f.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!f || h.magic != kMagic)
    throw std::runtime_error("load_particles: bad magic in " + path);
  if (h.version != kVersion && h.version != kVersionNoCrc)
    throw std::runtime_error("load_particles: unsupported version " +
                             std::to_string(h.version));

  // Validate the claimed record count against the actual file size before
  // allocating anything: a corrupt count field must be rejected here, not
  // turned into a multi-gigabyte allocation the read can never fill.
  f.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(f.tellg());
  f.seekg(static_cast<std::streamoff>(sizeof(Header)));
  const std::uint64_t payload = file_size - sizeof(Header);
  if (h.count > payload / sizeof(ParticleRec))
    throw std::runtime_error("load_particles: record count " +
                             std::to_string(h.count) +
                             " exceeds file size in " + path);

  ParticleArray p(h.charge, h.mass);
  p.reserve(h.count);
  std::vector<ParticleRec> recs(h.count);
  if (h.count > 0) {
    f.read(reinterpret_cast<char*>(recs.data()),
           static_cast<std::streamsize>(h.count * sizeof(ParticleRec)));
    if (!f) throw std::runtime_error("load_particles: truncated " + path);
  }
  if (h.version >= kVersion) {
    std::uint32_t stored = 0;
    f.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    if (!f)
      throw std::runtime_error("load_particles: missing checksum in " + path);
    std::uint32_t crc = crc32_update(kCrcInit, &h, sizeof(h));
    if (h.count > 0)
      crc = crc32_update(crc, recs.data(), recs.size() * sizeof(ParticleRec));
    if (crc32_finish(crc) != stored)
      throw std::runtime_error("load_particles: checksum mismatch in " + path);
  }
  for (const auto& r : recs) p.push_back(r);
  return p;
}

}  // namespace particles
