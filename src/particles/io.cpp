#include "particles/io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace picpar::particles {

namespace {

constexpr std::uint64_t kMagic = 0x70696370617274ULL;  // "picpart"
constexpr std::uint32_t kVersion = 1;

struct Header {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t reserved = 0;
  std::uint64_t count = 0;
  double charge = 0.0;
  double mass = 0.0;
};
static_assert(sizeof(Header) == 40);

}  // namespace

void save_particles(const std::string& path, const ParticleArray& p) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("save_particles: cannot open " + path);

  Header h;
  h.count = p.size();
  h.charge = p.charge();
  h.mass = p.mass();
  f.write(reinterpret_cast<const char*>(&h), sizeof(h));

  std::vector<ParticleRec> recs;
  recs.reserve(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) recs.push_back(p.rec(i));
  if (!recs.empty())
    f.write(reinterpret_cast<const char*>(recs.data()),
            static_cast<std::streamsize>(recs.size() * sizeof(ParticleRec)));
  if (!f) throw std::runtime_error("save_particles: write failed for " + path);
}

ParticleArray load_particles(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_particles: cannot open " + path);

  Header h;
  f.read(reinterpret_cast<char*>(&h), sizeof(h));
  if (!f || h.magic != kMagic)
    throw std::runtime_error("load_particles: bad magic in " + path);
  if (h.version != kVersion)
    throw std::runtime_error("load_particles: unsupported version " +
                             std::to_string(h.version));

  ParticleArray p(h.charge, h.mass);
  p.reserve(h.count);
  std::vector<ParticleRec> recs(h.count);
  if (h.count > 0) {
    f.read(reinterpret_cast<char*>(recs.data()),
           static_cast<std::streamsize>(h.count * sizeof(ParticleRec)));
    if (!f) throw std::runtime_error("load_particles: truncated " + path);
  }
  for (const auto& r : recs) p.push_back(r);
  return p;
}

}  // namespace particles
