// Parallel execution engine for sim::Machine: ranks run concurrently on
// real cores, bounded by a worker-slot pool, between communication points.
//
// All nondeterminism is squeezed out at the Machine's matching layer — a
// receive commits the pending message with minimum (arrival, src, seq)
// key, and a conservative lower-bound-timestamp rule (null-message style,
// keyed on CostModel latency) decides when a wildcard receive may safely
// commit. The engine therefore only decides *when* work happens, never
// *what* the result is: a parallel run is bit-identical to the sequential
// reference scheduler, RankReport for RankReport.
//
// Synchronization model:
//   * one OS thread per rank, but at most `workers` threads execute
//     program code at a time (execution slots = the bounded worker pool;
//     the slot wait queue is the ready queue);
//   * one engine mutex guards mailboxes, park/wake state, and commit
//     decisions; compute charges run outside it (rank-owned state, atomic
//     virtual clocks);
//   * blocked receives park on their own progress predicate (candidate
//     deliverable, force-committed, or deadlock) and re-evaluate it on
//     every state change (enqueue, commit, park, finish);
//   * when every live rank is parked and nothing is safely deliverable,
//     the last parker resolves the stall under the mutex — no racing a
//     worker that is about to enqueue a send — by force-committing the
//     globally minimal candidate, or declaring deadlock when no candidate
//     exists (the same deadlock set as the sequential scheduler).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/comm.hpp"
#include "sim/machine.hpp"

namespace picpar::runtime {

struct ParallelConfig {
  /// Max ranks executing concurrently; 0 = host hardware concurrency.
  int workers = 0;
};

class ParallelEngine final : public sim::ParallelRuntimeHooks {
public:
  explicit ParallelEngine(ParallelConfig cfg = {}) : cfg_(cfg) {}

  /// Run one program to completion in parallel mode. One engine instance
  /// drives one run (Machine::run creates a fresh one per call through the
  /// installed runner).
  sim::RunResult run(sim::Machine& m,
                     const std::function<void(sim::Comm&)>& program);

  // ---- sim::ParallelRuntimeHooks ----
  void send(sim::Machine& m, int src, int dst, int tag,
            std::vector<std::byte> payload) override;
  sim::Message recv(sim::Machine& m, int rank, int src, int tag,
                    bool fp_payload) override;
  bool iprobe(sim::Machine& m, int rank, int src, int tag) override;
  sim::MembershipView agree(sim::Machine& m, int rank) override;

private:
  void rank_thread(sim::Machine& m, int rank,
                   const std::function<void(sim::Comm&)>& program);
  /// Park the calling rank until it can make progress — its candidate is
  /// deliverable or it was force-committed — or deadlock is declared
  /// (which throws sim::DeadlockError). Releases the caller's execution
  /// slot while parked and re-acquires it before returning.
  void park_for_progress(std::unique_lock<std::mutex>& lk, sim::Machine& m,
                         int rank);
  /// If every live rank is parked, decide progress under the lock: wake
  /// deliverable receivers, else force the global-min candidate, else
  /// declare deadlock.
  void resolve_if_quiescent(sim::Machine& m);
  void acquire_slot(std::unique_lock<std::mutex>& lk);
  void release_slot();

  ParallelConfig cfg_;
  std::mutex mu_;
  std::condition_variable cv_;       ///< progress wakeups for parked ranks
  std::condition_variable slot_cv_;  ///< execution-slot handoff
  int slots_free_ = 0;
  int parked_ = 0;    ///< ranks blocked in a receive
  int finished_ = 0;  ///< ranks whose program returned or unwound
  int nranks_ = 0;
  /// Whether each rank currently holds an execution slot (a rank unwinding
  /// from a deadlock parked first, so it must not release a second time).
  std::vector<char> holds_slot_;
  std::vector<std::thread> threads_;
};

/// True when the PICPAR_PARALLEL environment variable selects parallel
/// execution (set and not "0").
bool parallel_env_enabled();

/// Execution-slot count resolved from config and PICPAR_WORKERS (which
/// overrides cfg.workers when set); 0 falls back to hardware concurrency.
int resolve_workers(const ParallelConfig& cfg);

/// Install the parallel engine on a machine and switch it to parallel
/// mode. Each Machine::run then executes on a fresh engine instance.
void use_parallel(sim::Machine& m, ParallelConfig cfg = {});

/// Apply an execution mode: parallel installs the engine, sequential just
/// sets the mode (the reference scheduler needs no engine).
void configure(sim::Machine& m, sim::ExecMode mode, ParallelConfig cfg = {});

/// Configure from the environment (PICPAR_PARALLEL / PICPAR_WORKERS);
/// returns true when parallel mode was selected.
bool configure_from_env(sim::Machine& m);

}  // namespace picpar::runtime
