#include "runtime/parallel_engine.hpp"

#include <stdexcept>

#include "util/env.hpp"

namespace picpar::runtime {

int resolve_workers(const ParallelConfig& cfg) {
  int workers = cfg.workers;
  const int env = env_int("PICPAR_WORKERS", 0);
  if (env > 0) workers = env;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 1;
  }
  return workers;
}

bool parallel_env_enabled() { return env_enabled("PICPAR_PARALLEL"); }

sim::RunResult ParallelEngine::run(
    sim::Machine& m, const std::function<void(sim::Comm&)>& program) {
  m.reset_run_state();
  nranks_ = m.nranks_;
  slots_free_ = resolve_workers(cfg_);
  parked_ = 0;
  finished_ = 0;
  holds_slot_.assign(static_cast<std::size_t>(nranks_), 0);

  m.prt_ = this;
  threads_.clear();
  threads_.reserve(static_cast<std::size_t>(nranks_));
  for (int i = 0; i < nranks_; ++i)
    threads_.emplace_back([this, &m, i, &program] {
      rank_thread(m, i, program);
    });
  for (auto& t : threads_) t.join();
  threads_.clear();
  m.prt_ = nullptr;

  if (m.deadlocked_)
    throw sim::DeadlockError(m.deadlock_report_str_,
                             std::move(m.deadlock_blocked_));
  return m.collect_results();
}

void ParallelEngine::rank_thread(
    sim::Machine& m, int rank,
    const std::function<void(sim::Comm&)>& program) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    acquire_slot(lk);
    holds_slot_[static_cast<std::size_t>(rank)] = 1;
  }
  bool did_crash = false;
  double crash_vt = 0.0;
  try {
    sim::Comm comm(&m, rank);
    program(comm);
  } catch (const sim::RankCrashed& c) {
    // Fail-stop: the thread retires quietly. The crash is recorded under
    // the engine mutex below, *before* the rank counts as finished, so any
    // quiescent stall that observes this rank as done also observes its
    // crash — the same invariant the sequential scheduler keeps.
    did_crash = true;
    crash_vt = c.vtime();
  } catch (const sim::DeadlockError&) {
    // Recorded globally at detection; this rank just unwinds. Its slot was
    // released when it parked (the throw comes out of park_for_progress
    // before the slot is re-acquired).
  } catch (...) {
    m.ranks_[static_cast<std::size_t>(rank)].error = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (did_crash) m.record_crash(rank, crash_vt);
    m.ranks_[static_cast<std::size_t>(rank)].done = true;
    --m.live_;
    ++finished_;
    if (holds_slot_[static_cast<std::size_t>(rank)]) {
      holds_slot_[static_cast<std::size_t>(rank)] = 0;
      release_slot();
    }
    resolve_if_quiescent(m);
    cv_.notify_all();  // one fewer rank bounds commit_safe; re-evaluate
  }
}

void ParallelEngine::send(sim::Machine& m, int src, int dst, int tag,
                          std::vector<std::byte> payload) {
  // The sender-side half (clock charge, stats, envelope, observer, fault
  // draws) touches only rank-owned state, so it runs outside the engine
  // mutex; the destination-mailbox insert and the clock publication take
  // the lock. Ordering matters twice over: the advanced clock must land
  // after the enqueue (a lower-bound read must never see the post-charge
  // clock while the message it bounds is still in flight) and before the
  // notify (a parked rank re-evaluating commit_safe on this wakeup must
  // see the new bound, or it would sleep through its only notification).
  sim::Message out[2];
  double new_clock = 0.0;
  bool reorder_first = false;
  const int n = m.build_send(src, dst, tag, std::move(payload), out,
                             &new_clock, &reorder_first);
  {
    std::lock_guard<std::mutex> lk(mu_);
    m.enqueue_messages(out, n, reorder_first);
    m.ranks_[static_cast<std::size_t>(src)].clock = new_clock;
    cv_.notify_all();
  }
}

sim::Message ParallelEngine::recv(sim::Machine& m, int rank, int src, int tag,
                                  bool fp_payload) {
  auto& rs = m.ranks_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (m.fail_recv_rank_ == rank) {
      m.fail_recv_rank_ = -1;
      m.throw_peer_failure(rank);  // throws PeerFailedError; lk unlocks
    }
    const auto c = m.find_candidate(rank, src, tag);
    if (c.pos >= 0 &&
        (m.force_commit_rank_ == rank || m.commit_safe(rank, src, c))) {
      if (m.force_commit_rank_ == rank) m.force_commit_rank_ = -1;
      sim::Message msg = m.commit_recv(rank, c, src, tag, fp_payload);
      cv_.notify_all();  // receiver clock advanced; bounds may have loosened
      return msg;
    }
    rs.waiting = true;
    rs.want_src = src;
    rs.want_tag = tag;
    park_for_progress(lk, m, rank);
    rs.waiting = false;
  }
}

bool ParallelEngine::iprobe(sim::Machine& m, int rank, int src, int tag) {
  // Physical mailbox scan, like the sequential engine. Deterministic only
  // when the probed message is causally sequenced before the probe (see
  // DESIGN.md); the lock makes it thread-safe, not order-independent.
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& msg : m.ranks_[static_cast<std::size_t>(rank)].mailbox)
    if (m.match(msg, src, tag)) return true;
  return false;
}

void ParallelEngine::park_for_progress(std::unique_lock<std::mutex>& lk,
                                       sim::Machine& m, int rank) {
  ++parked_;
  holds_slot_[static_cast<std::size_t>(rank)] = 0;
  release_slot();
  resolve_if_quiescent(m);
  // Wait on this rank's own progress condition, not a global "something
  // changed" generation counter. The distinction is load-bearing: with a
  // broadcast counter, a wakeup that is not progress for *this* rank makes
  // the predicate true at wait entry, so the waiter cycles without ever
  // releasing the mutex and starves the rank the wakeup was actually for.
  // Here a non-deliverable rank's predicate stays false — it blocks and
  // releases the mutex — and every true predicate leads to a commit, a
  // forced commit, or a deadlock unwind: all finite progress.
  cv_.wait(lk, [&] {
    return m.deadlocked_ || m.force_commit_rank_ == rank ||
           m.fail_recv_rank_ == rank || m.recv_deliverable(rank);
  });
  --parked_;
  if (m.deadlocked_)
    throw sim::DeadlockError("rank " + std::to_string(rank) +
                             " unwound due to deadlock");
  acquire_slot(lk);
  holds_slot_[static_cast<std::size_t>(rank)] = 1;
}

sim::MembershipView ParallelEngine::agree(sim::Machine& m, int rank) {
  // Mirrors the sequential do_agree: park in the membership barrier
  // (counted as parked for quiescence), wait for the barrier to complete
  // at a stall resolution, then consume the agreed view.
  auto& rs = m.ranks_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lk(mu_);
  rs.in_membership = true;
  ++parked_;
  holds_slot_[static_cast<std::size_t>(rank)] = 0;
  release_slot();
  resolve_if_quiescent(m);
  cv_.wait(lk, [&] { return rs.membership_ready || m.deadlocked_; });
  --parked_;
  if (m.deadlocked_)
    throw sim::DeadlockError("rank " + std::to_string(rank) +
                             " unwound due to deadlock");
  acquire_slot(lk);
  holds_slot_[static_cast<std::size_t>(rank)] = 1;
  rs.in_membership = false;
  rs.membership_ready = false;
  return m.pending_view_;
}

void ParallelEngine::resolve_if_quiescent(sim::Machine& m) {
  // Called with mu_ held whenever a rank parks or finishes. Quiescence —
  // every rank parked or finished — is the only state where the stall rule
  // may fire: no worker can be about to enqueue a send, because enqueues
  // happen under this mutex and every thread is accounted for. This is
  // what makes deadlock detection race-free under the parallel scheduler.
  if (parked_ + finished_ < nranks_) return;
  if (m.live_ <= 0) return;  // normal completion; nothing to decide
  // A previous resolution may still be pending consumption (the designated
  // rank has been notified but not yet woken): renotify and stand down —
  // re-running the ladder would double-resolve the same stall.
  if (m.force_commit_rank_ >= 0 || m.fail_recv_rank_ >= 0) {
    cv_.notify_all();
    return;
  }
  for (auto& rs : m.ranks_) {
    if (!rs.done && rs.in_membership && rs.membership_ready) {
      cv_.notify_all();
      return;
    }
  }
  // A parked rank may already be deliverable without having been notified:
  // clock charges advance rank-owned clocks outside the engine lock, so the
  // bound that unblocks a peer may only become decisive when the charging
  // rank next parks — i.e. exactly here. Renotify and let that rank's own
  // wait predicate pick it up; everyone else re-blocks.
  for (auto& rs : m.ranks_) {
    if (rs.done || !rs.waiting) continue;
    if (m.recv_deliverable(rs.id)) {
      cv_.notify_all();
      return;
    }
  }
  // Same resolution ladder as the sequential scheduler's yield_from:
  // force-commit the global-min candidate, else elect a peer-failure
  // victim, else complete a full membership barrier, else deadlock.
  const int forced = m.stall_pick();
  if (forced >= 0) {
    m.force_commit_rank_ = forced;
  } else if (const int victim = m.pick_failure_victim(); victim >= 0) {
    m.fail_recv_rank_ = victim;
  } else if (m.try_complete_membership()) {
    // Members are marked ready; the notify below wakes them.
  } else if (!m.deadlocked_) {
    m.deadlocked_ = true;
    m.deadlock_report_str_ = m.deadlock_report();
    m.deadlock_blocked_ = m.blocked_ranks();
  }
  cv_.notify_all();
}

void ParallelEngine::acquire_slot(std::unique_lock<std::mutex>& lk) {
  slot_cv_.wait(lk, [&] { return slots_free_ > 0; });
  --slots_free_;
}

void ParallelEngine::release_slot() {
  ++slots_free_;
  slot_cv_.notify_one();
}

void use_parallel(sim::Machine& m, ParallelConfig cfg) {
  m.set_parallel_runner(
      [cfg](sim::Machine& mm,
            const std::function<void(sim::Comm&)>& program) -> sim::RunResult {
        ParallelEngine engine(cfg);
        return engine.run(mm, program);
      });
  m.set_exec_mode(sim::ExecMode::kParallel);
}

void configure(sim::Machine& m, sim::ExecMode mode, ParallelConfig cfg) {
  if (mode == sim::ExecMode::kParallel) {
    use_parallel(m, cfg);
  } else {
    m.set_exec_mode(sim::ExecMode::kSequential);
  }
}

bool configure_from_env(sim::Machine& m) {
  if (!parallel_env_enabled()) return false;
  use_parallel(m, ParallelConfig{});
  return true;
}

}  // namespace picpar::runtime
