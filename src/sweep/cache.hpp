// On-disk content-addressed cache of simulation results.
//
// Entries are keyed by PicParams::fingerprint(): one file
// `<fingerprint>.entry` per configuration, holding the canonical parameter
// text (provenance — the pre-image of the key, so a cache directory is
// self-describing) and the serialized PicResult. Layout:
//
//   picpar-cache v1\n
//   fingerprint=<16 hex>\n
//   params:<nbytes>\n<canonical params bytes>\n
//   result:<nbytes>\n<serialized result bytes>\n
//   seal=<16 hex>\n
//
// Torn-write safety uses the checkpoint store's valid-flag idiom
// (DESIGN.md §11) adapted to files: the `seal` line — FNV-1a over every
// byte before it — is written last, so a crash mid-write leaves an entry
// the loader rejects; and the entry is assembled in a per-process uniquely
// named temp file that is atomically rename()d into place, so two sweep
// processes sharing one directory never read each other's half-written
// bytes. A load that fails any check (missing seal, checksum mismatch,
// malformed result) reports kCorrupt and the caller recomputes — corruption
// costs a simulation, never a crash.
//
// No wall-clock calls anywhere (the determinism lint bans them outside
// src/trace); eviction orders entries by filesystem mtime, with the
// filename as a deterministic tie-break.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pic/result.hpp"

namespace picpar::sweep {

enum class CacheLoad {
  kHit,      ///< entry present, sealed, and parsed
  kMiss,     ///< no entry for this fingerprint
  kCorrupt,  ///< entry present but torn/corrupt — treat as a miss
};

class ResultCache {
public:
  /// Opens (and creates if needed) the cache directory. Throws
  /// std::runtime_error when the directory cannot be created.
  explicit ResultCache(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Look up one fingerprint; fills `out` only on kHit.
  CacheLoad load(const std::string& fingerprint, pic::PicResult& out) const;

  /// Persist one result under its fingerprint (atomic replace; last writer
  /// wins, which is safe because entries with equal fingerprints describe
  /// the same deterministic result). Returns false on I/O failure — a
  /// store failure degrades the cache, never the sweep.
  bool store(const std::string& fingerprint, const std::string& canonical,
             const pic::PicResult& result) const;

  /// Stored canonical-params provenance for an entry ("" on miss/corrupt).
  std::string params_text(const std::string& fingerprint) const;

  /// Number of committed entries.
  std::size_t entries() const;

  /// Evict oldest entries (mtime order, filename tie-break) until at most
  /// `max_entries` remain. Returns the number evicted.
  std::size_t trim(std::size_t max_entries) const;

  /// Fingerprints of all committed entries, sorted (diagnostics/tests).
  std::vector<std::string> fingerprints() const;

private:
  std::string entry_path(const std::string& fingerprint) const;
  bool read_entry(const std::string& fingerprint, std::string& params,
                  std::string& result) const;

  std::string dir_;
};

}  // namespace picpar::sweep
