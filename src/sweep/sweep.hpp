// Concurrent sweep driver with content-addressed result caching.
//
// run_sweep() takes an ordered list of jobs (label + PicParams), collapses
// duplicates by PicParams::fingerprint(), serves what it can from an
// on-disk ResultCache, schedules the remaining simulations across host
// cores with run_indexed, persists fresh results back to the cache, and
// returns one Outcome per submitted job in submission order. Because
// run_pic is deterministic, the merged output is byte-identical whatever
// the worker count, and a warm-cache rerun performs zero simulations.
//
// The merge layer renders a sweep as one comparison table (ascii / CSV /
// JSON) over virtual-time metrics only, so cold and warm runs of the same
// grid produce byte-identical files; cache-hit provenance is a separate
// CSV (provenance_csv) precisely so it never perturbs the comparison
// artifacts.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pic/config.hpp"
#include "pic/result.hpp"

namespace picpar::sweep {

/// One sweep job: a row label for the merged outputs plus its full config.
struct Job {
  std::string label;
  pic::PicParams params;
};

/// Where an outcome's result came from.
enum class Source {
  kSimulated,  ///< cache miss (or no cache): run_pic executed
  kCache,      ///< served from a sealed cache entry
  kDedup,      ///< same fingerprint as an earlier job in this sweep
};

const char* source_name(Source s);

struct Outcome {
  std::string label;
  std::string fingerprint;
  Source source = Source::kSimulated;
  /// A cache entry existed but failed its seal or parse; the result below
  /// was recomputed and the entry rewritten.
  bool corrupt_replaced = false;
  pic::PicParams params;
  pic::PicResult result;
};

struct SweepOptions {
  /// Worker threads for cache-miss simulations (1 = serial, 0 = host
  /// hardware concurrency). Never affects output bytes.
  int jobs = 1;
  /// Cache directory ("" = uncached: every unique config simulates).
  std::string cache_dir;
  /// Evict oldest entries past this count after the sweep (0 = unlimited).
  std::size_t max_entries = 0;
};

struct SweepStats {
  std::size_t jobs = 0;       ///< submitted
  std::size_t unique = 0;     ///< distinct fingerprints
  std::size_t hits = 0;       ///< unique configs served from cache
  std::size_t simulated = 0;  ///< unique configs that ran run_pic
  std::size_t corrupt = 0;    ///< cache entries rejected and recomputed
  std::size_t evicted = 0;    ///< entries trimmed by max_entries
};

struct SweepReport {
  std::vector<Outcome> outcomes;  ///< one per job, submission order
  SweepStats stats;
};

/// Run the sweep. Exceptions from run_pic propagate (lowest job index
/// first); cache I/O failures never throw — they degrade to simulation.
SweepReport run_sweep(const std::vector<Job>& jobs, const SweepOptions& opt);

/// Deterministic comparison artifacts over the sweep's virtual-time
/// metrics (one row per job, submission order). No provenance, no wall
/// clock: cold and warm runs of one grid emit identical bytes.
std::string comparison_csv(const SweepReport& report);
std::string comparison_json(const SweepReport& report);
std::string comparison_table(const SweepReport& report);

/// Per-job cache provenance (label, fingerprint, source, corrupt_replaced)
/// — the part of a sweep that legitimately differs between cold and warm
/// runs, kept out of the comparison artifacts above.
std::string provenance_csv(const SweepReport& report);

}  // namespace picpar::sweep
