#include "sweep/pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace picpar::sweep {

void run_indexed(int workers, std::size_t n,
                 const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 1;
  }
  workers = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(workers), n));

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) task(i);
    return;
  }

  // First-thrown-by-index wins, so failure reporting does not depend on
  // scheduling; later tasks are skipped once anything has thrown.
  std::mutex mu;
  std::exception_ptr first_error;
  std::size_t first_error_index = n;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w)
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n || failed.load()) return;
        try {
          task(i);
        } catch (...) {
          std::lock_guard<std::mutex> lk(mu);
          if (!first_error || i < first_error_index) {
            first_error = std::current_exception();
            first_error_index = i;
          }
          failed.store(true);
        }
      }
    });
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace picpar::sweep
