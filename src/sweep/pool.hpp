// Bounded worker pool for host-level job fan-out.
//
// This is *host* parallelism over independent simulations (sim-level
// sharding), not the simulated machine's parallelism: each task typically
// calls pic::run_pic, whose determinism contract makes results independent
// of which worker runs it and when. Callers therefore get deterministic
// output by indexing results, never by completion order. Shared by the
// sweep driver (src/sweep/sweep.cpp) and the benches' run_jobs.
#pragma once

#include <cstddef>
#include <functional>

namespace picpar::sweep {

/// Run task(0) .. task(n-1) on up to `workers` threads (<= 0 = host
/// hardware concurrency; clamped to n). Tasks must be independent; any
/// ordering requirement belongs in the caller's result handling, indexed by
/// task id. If tasks throw, every task still gets started or skipped as a
/// unit, all workers drain, and the lowest-indexed exception is rethrown.
void run_indexed(int workers, std::size_t n,
                 const std::function<void(std::size_t)>& task);

}  // namespace picpar::sweep
