#include "sweep/cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "pic/result_io.hpp"
#include "sim/faults.hpp"
#include "trace/metrics.hpp"

namespace picpar::sweep {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kMagic = "picpar-cache v1";
constexpr std::string_view kEntrySuffix = ".entry";

std::string hex64(std::uint64_t h) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 0; i < 16; ++i)
    s[static_cast<std::size_t>(i)] =
        digits[(h >> (60 - 4 * i)) & 0xf];
  return s;
}

std::uint64_t hash_bytes(std::string_view s) {
  return sim::fnv1a(reinterpret_cast<const std::byte*>(s.data()), s.size());
}

bool valid_fingerprint(const std::string& fp) {
  if (fp.size() != 16) return false;
  for (const char c : fp)
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  return true;
}

/// "key:<n>\n<raw bytes>\n" block reader shared by params/result sections.
bool read_block(std::string_view text, std::size_t& pos,
                std::string_view key, std::string& out) {
  const auto nl = text.find('\n', pos);
  if (nl == std::string_view::npos) return false;
  std::string_view line = text.substr(pos, nl - pos);
  if (line.substr(0, key.size()) != key || line.size() == key.size() ||
      line[key.size()] != ':')
    return false;
  std::uint64_t n = 0;
  for (const char c : line.substr(key.size() + 1)) {
    if (c < '0' || c > '9') return false;
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  pos = nl + 1;
  if (text.size() - pos < n + 1) return false;
  out.assign(text.substr(pos, static_cast<std::size_t>(n)));
  pos += static_cast<std::size_t>(n);
  if (text[pos] != '\n') return false;
  ++pos;
  return true;
}

}  // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_))
    throw std::runtime_error("ResultCache: cannot create directory " + dir_);
}

std::string ResultCache::entry_path(const std::string& fingerprint) const {
  return (fs::path(dir_) / (fingerprint + std::string(kEntrySuffix)))
      .string();
}

bool ResultCache::read_entry(const std::string& fingerprint,
                             std::string& params, std::string& result) const {
  if (!valid_fingerprint(fingerprint)) return false;
  std::ifstream f(entry_path(fingerprint), std::ios::binary);
  if (!f) return false;
  std::ostringstream buf;
  buf << f.rdbuf();
  if (!f.good() && !f.eof()) return false;
  const std::string text = std::move(buf).str();

  // The seal is the last line: "seal=<16 hex>\n" over every prior byte.
  constexpr std::string_view kSeal = "seal=";
  if (text.size() < kSeal.size() + 17 || text.back() != '\n') return false;
  const std::size_t seal_pos = text.rfind(kSeal, text.size() - 18);
  if (seal_pos == std::string::npos ||
      (seal_pos != 0 && text[seal_pos - 1] != '\n'))
    return false;
  const std::string_view sealed(text.data(), seal_pos);
  const std::string_view sealhex(text.data() + seal_pos + kSeal.size(), 16);
  if (text.size() != seal_pos + kSeal.size() + 17) return false;
  if (hex64(hash_bytes(sealed)) != sealhex) return false;

  // Sealed body: magic, fingerprint echo, params block, result block.
  std::size_t pos = 0;
  auto nl = sealed.find('\n');
  if (nl == std::string_view::npos || sealed.substr(0, nl) != kMagic)
    return false;
  pos = nl + 1;
  nl = sealed.find('\n', pos);
  if (nl == std::string_view::npos ||
      sealed.substr(pos, nl - pos) != "fingerprint=" + fingerprint)
    return false;
  pos = nl + 1;
  if (!read_block(sealed, pos, "params", params)) return false;
  if (!read_block(sealed, pos, "result", result)) return false;
  return pos == sealed.size();
}

CacheLoad ResultCache::load(const std::string& fingerprint,
                            pic::PicResult& out) const {
  std::error_code ec;
  if (!fs::exists(entry_path(fingerprint), ec)) return CacheLoad::kMiss;
  std::string params, result;
  if (!read_entry(fingerprint, params, result)) return CacheLoad::kCorrupt;
  try {
    out = pic::parse_result(result);
  } catch (const std::runtime_error&) {
    return CacheLoad::kCorrupt;
  }
  return CacheLoad::kHit;
}

bool ResultCache::store(const std::string& fingerprint,
                        const std::string& canonical,
                        const pic::PicResult& result) const {
  if (!valid_fingerprint(fingerprint)) return false;
  std::string body;
  const std::string payload = pic::serialize_result(result);
  body.reserve(canonical.size() + payload.size() + 128);
  body += kMagic;
  body += "\nfingerprint=";
  body += fingerprint;
  body += "\nparams:";
  trace::detail::append_num(body, static_cast<std::uint64_t>(canonical.size()));
  body += '\n';
  body += canonical;
  body += "\nresult:";
  trace::detail::append_num(body, static_cast<std::uint64_t>(payload.size()));
  body += '\n';
  body += payload;
  body += '\n';
  const std::string seal = hex64(hash_bytes(body));
  body += "seal=";
  body += seal;
  body += '\n';

  // Unique-per-writer temp name, then atomic rename: concurrent sweep
  // processes sharing the directory each publish whole entries or nothing.
  static std::atomic<unsigned> g_counter{0};
  const std::string tmp =
      entry_path(fingerprint) + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(g_counter.fetch_add(1));
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    f << body;
    f.flush();
    if (!f.good()) {
      f.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, entry_path(fingerprint), ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

std::string ResultCache::params_text(const std::string& fingerprint) const {
  std::string params, result;
  if (!read_entry(fingerprint, params, result)) return {};
  return params;
}

std::vector<std::string> ResultCache::fingerprints() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() == 16 + kEntrySuffix.size() &&
        name.substr(16) == kEntrySuffix &&
        valid_fingerprint(name.substr(0, 16)))
      out.push_back(name.substr(0, 16));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t ResultCache::entries() const { return fingerprints().size(); }

std::size_t ResultCache::trim(std::size_t max_entries) const {
  struct Entry {
    fs::file_time_type mtime;
    std::string name;
  };
  std::vector<Entry> all;
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() != 16 + kEntrySuffix.size() ||
        name.substr(16) != kEntrySuffix || !valid_fingerprint(name.substr(0, 16)))
      continue;
    std::error_code mec;
    const auto mtime = fs::last_write_time(it->path(), mec);
    if (mec) continue;
    all.push_back(Entry{mtime, name});
  }
  if (all.size() <= max_entries) return 0;
  std::sort(all.begin(), all.end(), [](const Entry& a, const Entry& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.name < b.name;
  });
  const std::size_t evict = all.size() - max_entries;
  std::size_t removed = 0;
  for (std::size_t i = 0; i < evict; ++i) {
    std::error_code rec;
    if (fs::remove(fs::path(dir_) / all[i].name, rec) && !rec) ++removed;
  }
  return removed;
}

}  // namespace picpar::sweep
