#include "sweep/sweep.hpp"

#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "particles/init.hpp"
#include "pic/simulation.hpp"
#include "sfc/curve.hpp"
#include "sweep/cache.hpp"
#include "sweep/pool.hpp"
#include "trace/metrics.hpp"
#include "util/table.hpp"

namespace picpar::sweep {

const char* source_name(Source s) {
  switch (s) {
    case Source::kSimulated: return "simulated";
    case Source::kCache: return "cache";
    case Source::kDedup: return "dedup";
  }
  return "?";
}

SweepReport run_sweep(const std::vector<Job>& jobs, const SweepOptions& opt) {
  SweepReport report;
  report.stats.jobs = jobs.size();
  report.outcomes.resize(jobs.size());

  std::optional<ResultCache> cache;
  if (!opt.cache_dir.empty()) cache.emplace(opt.cache_dir);

  // Collapse to unique fingerprints, keeping first-submission order.
  struct Unique {
    std::string fingerprint;
    std::string canonical;
    std::size_t first_job = 0;
    Source source = Source::kSimulated;
    bool corrupt_replaced = false;
    pic::PicResult result;
  };
  std::vector<Unique> unique;
  std::map<std::string, std::size_t> index;  // fingerprint -> unique slot
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    auto& out = report.outcomes[j];
    out.label = jobs[j].label;
    out.params = jobs[j].params;
    out.fingerprint = jobs[j].params.fingerprint();
    if (index.emplace(out.fingerprint, unique.size()).second) {
      Unique u;
      u.fingerprint = out.fingerprint;
      u.canonical = jobs[j].params.canonical();
      u.first_job = j;
      unique.push_back(std::move(u));
    }
  }
  report.stats.unique = unique.size();

  // Serial cache probe: misses (and torn entries) fall through to compute.
  std::vector<std::size_t> misses;
  for (std::size_t u = 0; u < unique.size(); ++u) {
    if (cache) {
      switch (cache->load(unique[u].fingerprint, unique[u].result)) {
        case CacheLoad::kHit:
          unique[u].source = Source::kCache;
          ++report.stats.hits;
          continue;
        case CacheLoad::kCorrupt:
          unique[u].corrupt_replaced = true;
          ++report.stats.corrupt;
          break;
        case CacheLoad::kMiss:
          break;
      }
    }
    misses.push_back(u);
  }

  // Fan the misses out over host cores; results land in their slots, so
  // completion order never shows in the report.
  report.stats.simulated = misses.size();
  run_indexed(opt.jobs, misses.size(), [&](std::size_t m) {
    Unique& u = unique[misses[m]];
    u.result = pic::run_pic(jobs[u.first_job].params);
  });

  // Persist fresh results serially in submission order: deterministic
  // entry mtimes keep trim()'s eviction order reproducible.
  if (cache) {
    for (const std::size_t m : misses)
      cache->store(unique[m].fingerprint, unique[m].canonical,
                   unique[m].result);
    if (opt.max_entries > 0)
      report.stats.evicted = cache->trim(opt.max_entries);
  }

  // Fill every job's outcome; later duplicates share the unique result.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    auto& out = report.outcomes[j];
    const Unique& u = unique[index.at(out.fingerprint)];
    out.source = u.first_job == j ? u.source : Source::kDedup;
    out.corrupt_replaced = u.first_job == j && u.corrupt_replaced;
    out.result = u.result;
  }
  return report;
}

namespace {

using trace::detail::append_num;

/// The comparison columns: virtual-time metrics only (see sweep.hpp).
struct Column {
  const char* name;
  std::string (*value)(const Outcome& o);
};

std::string str_u64(std::uint64_t v) {
  std::string s;
  append_num(s, v);
  return s;
}

std::string str_dbl(double v) {
  std::string s;
  append_num(s, v);
  return s;
}

const Column kColumns[] = {
    {"label", [](const Outcome& o) { return o.label; }},
    {"fingerprint", [](const Outcome& o) { return o.fingerprint; }},
    {"policy",
     [](const Outcome& o) {
       // Grid-spec syntax: decision half plus the balancer half when it is
       // not the default Lagrangian scheme ("sar+eulerian").
       const auto& bal = o.params.partitioner.balancer;
       if (bal.empty() || bal == "lagrange") return o.params.policy;
       return o.params.policy + "+" + bal;
     }},
    {"scenario",
     [](const Outcome& o) {
       // Scenario-library runs carry their name; legacy runs are named by
       // the distribution the dist field selects.
       if (!o.params.scenario.empty()) return o.params.scenario;
       return std::string(particles::distribution_name(o.params.dist));
     }},
    {"curve",
     [](const Outcome& o) {
       return std::string(sfc::curve_kind_name(o.params.curve));
     }},
    {"ranks",
     [](const Outcome& o) { return std::to_string(o.params.nranks); }},
    {"particles",
     [](const Outcome& o) { return str_u64(o.params.init.total); }},
    {"iterations",
     [](const Outcome& o) { return std::to_string(o.params.iterations); }},
    {"total_s",
     [](const Outcome& o) { return str_dbl(o.result.total_seconds); }},
    {"compute_s",
     [](const Outcome& o) { return str_dbl(o.result.compute_seconds); }},
    {"overhead_s",
     [](const Outcome& o) { return str_dbl(o.result.overhead_seconds()); }},
    {"redistributions",
     [](const Outcome& o) { return std::to_string(o.result.redistributions); }},
    {"redist_s",
     [](const Outcome& o) { return str_dbl(o.result.redist_seconds_total); }},
    {"recoveries",
     [](const Outcome& o) { return std::to_string(o.result.recoveries); }},
    {"crashes",
     [](const Outcome& o) { return std::to_string(o.result.crash_count); }},
    {"final_ranks",
     [](const Outcome& o) { return std::to_string(o.result.final_ranks); }},
    {"final_particles",
     [](const Outcome& o) { return str_u64(o.result.final_particles); }},
    {"field_energy",
     [](const Outcome& o) { return str_dbl(o.result.field_energy); }},
    {"kinetic_energy",
     [](const Outcome& o) { return str_dbl(o.result.kinetic_energy); }},
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string comparison_csv(const SweepReport& report) {
  std::string out;
  bool first = true;
  for (const auto& col : kColumns) {
    if (!first) out += ',';
    out += col.name;
    first = false;
  }
  out += '\n';
  for (const auto& o : report.outcomes) {
    first = true;
    for (const auto& col : kColumns) {
      if (!first) out += ',';
      out += col.value(o);
      first = false;
    }
    out += '\n';
  }
  return out;
}

std::string comparison_json(const SweepReport& report) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const auto& o = report.outcomes[i];
    out += "  {";
    bool first = true;
    for (const auto& col : kColumns) {
      if (!first) out += ", ";
      out += '"';
      out += col.name;
      out += "\": \"";
      out += json_escape(col.value(o));
      out += '"';
      first = false;
    }
    out += '}';
    if (i + 1 < report.outcomes.size()) out += ',';
    out += '\n';
  }
  out += "]\n";
  return out;
}

std::string comparison_table(const SweepReport& report) {
  std::vector<std::string> header;
  for (const auto& col : kColumns) header.emplace_back(col.name);
  Table t(header);
  for (const auto& o : report.outcomes) {
    t.row();
    for (const auto& col : kColumns) t.add(col.value(o));
  }
  return t.ascii();
}

std::string provenance_csv(const SweepReport& report) {
  std::string out = "label,fingerprint,source,corrupt_replaced\n";
  for (const auto& o : report.outcomes) {
    out += o.label;
    out += ',';
    out += o.fingerprint;
    out += ',';
    out += source_name(o.source);
    out += ',';
    out += o.corrupt_replaced ? '1' : '0';
    out += '\n';
  }
  return out;
}

}  // namespace picpar::sweep
