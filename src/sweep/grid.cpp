#include "sweep/grid.hpp"

#include <charconv>
#include <stdexcept>
#include <utility>

#include "core/balancer.hpp"
#include "core/policy.hpp"
#include "particles/init.hpp"
#include "scenario/scenario.hpp"
#include "sfc/curve.hpp"

namespace picpar::sweep {

namespace {

[[noreturn]] void grid_fail(const std::string& what) {
  throw std::runtime_error("sweep grid: " + what);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

std::vector<std::string> split_values(std::string_view rhs,
                                      const std::string& key) {
  std::vector<std::string> out;
  while (true) {
    const auto comma = rhs.find(',');
    const std::string_view v = trim(rhs.substr(0, comma));
    if (v.empty()) grid_fail("empty value in axis '" + key + "'");
    out.emplace_back(v);
    if (comma == std::string_view::npos) break;
    rhs.remove_prefix(comma + 1);
  }
  return out;
}

template <typename T>
T parse_int(const std::string& text, const std::string& key) {
  T v{};
  const auto [p, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || p != text.data() + text.size())
    grid_fail("axis '" + key + "': not a number: '" + text + "'");
  return v;
}

template <typename T>
std::vector<T> parse_ints(const std::vector<std::string>& vals,
                          const std::string& key) {
  std::vector<T> out;
  out.reserve(vals.size());
  for (const auto& v : vals) out.push_back(parse_int<T>(v, key));
  return out;
}

}  // namespace

SweepGrid parse_grid(std::string_view text) {
  SweepGrid g;
  std::vector<std::string> seen;
  std::size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const auto nl = text.find('\n');
    const std::string_view raw = text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos)
      grid_fail("line " + std::to_string(line_no) + ": expected 'key = values'");
    const std::string key(trim(line.substr(0, eq)));
    for (const auto& s : seen)
      if (s == key)
        grid_fail("line " + std::to_string(line_no) + ": duplicate axis '" +
                  key + "'");
    seen.push_back(key);
    const auto vals = split_values(line.substr(eq + 1), key);
    if (key == "scenario") g.scenario = vals;
    else if (key == "mesh") g.mesh = vals;
    else if (key == "particles") g.particles = parse_ints<std::uint64_t>(vals, key);
    else if (key == "ranks") g.ranks = parse_ints<int>(vals, key);
    else if (key == "curve") g.curve = vals;
    else if (key == "policy") g.policy = vals;
    else if (key == "seed") g.seed = parse_ints<std::uint64_t>(vals, key);
    else if (key == "iterations") g.iterations = parse_ints<int>(vals, key);
    else
      grid_fail("line " + std::to_string(line_no) + ": unknown axis '" + key +
                "'");
  }
  return g;
}

namespace {

std::pair<std::uint32_t, std::uint32_t> parse_mesh(const std::string& m) {
  const auto x = m.find('x');
  if (x == std::string::npos || x == 0 || x + 1 == m.size())
    grid_fail("mesh '" + m + "' is not 'NXxNY'");
  return {parse_int<std::uint32_t>(m.substr(0, x), "mesh"),
          parse_int<std::uint32_t>(m.substr(x + 1), "mesh")};
}

/// The paper's Section 6 base setup, matching bench::paper_params so bench
/// sweeps and grid-file sweeps share cache entries for equal grid points.
pic::PicParams paper_base(std::uint32_t nx, std::uint32_t ny) {
  pic::PicParams p;
  p.grid = mesh::GridDesc(nx, ny);
  p.init.vth = 0.05;
  p.init.drift_ux = 0.12;
  p.init.drift_uy = 0.07;
  p.curve = sfc::CurveKind::kHilbert;
  p.grid_decomp = pic::GridDecomp::kCurve;
  p.solver = pic::FieldSolveKind::kMaxwell;
  p.machine = sim::CostModel::cm5();
  return p;
}

/// Scenario axis. Legacy distribution names (uniform, two_stream, gaussian,
/// irregular, ring) keep the pre-scenario path — `dist` set, `scenario`
/// empty — so grid points written before the scenario library expand to the
/// exact same PicParams (and cache identity) as before. "irregular_beam" is
/// the library's name for the same gaussian blob and maps onto it. The
/// remaining library scenarios (weibel, beam_into_plasma, moving_hotspot)
/// select the scenario path; `dist` is ignored for them.
void apply_scenario(pic::PicParams& p, const std::string& name) {
  if (name == "irregular_beam") {
    p.dist = particles::Distribution::kGaussian;
    return;
  }
  try {
    p.dist = particles::parse_distribution(name);
    return;
  } catch (const std::invalid_argument&) {
    // Not a distribution name; fall through to the scenario registry.
  }
  if (scenario::find_scenario(name) == nullptr)
    throw std::invalid_argument("unknown scenario: " + name);
  p.scenario = name;
}

/// Policy axis: "decision" or "decision+balancer" (e.g. "sar+eulerian").
/// The decision half picks *when* redistribution fires (core::make_policy);
/// the optional balancer half picks *where* the rank bounds land
/// (core::make_balancer), defaulting to the paper's Lagrangian scheme.
void apply_policy(pic::PicParams& p, const std::string& spec) {
  const auto plus = spec.find('+');
  const std::string decision = spec.substr(0, plus);
  core::make_policy(decision);  // validate the spec early
  p.policy = decision;
  if (plus != std::string::npos) {
    const std::string balancer = spec.substr(plus + 1);
    core::make_balancer(balancer);  // validate the spec early
    p.partitioner.balancer = balancer;
  }
}

}  // namespace

std::vector<GridJob> expand_grid(const SweepGrid& grid) {
  std::vector<GridJob> jobs;
  jobs.reserve(grid.scenario.size() * grid.mesh.size() *
               grid.particles.size() * grid.ranks.size() * grid.curve.size() *
               grid.policy.size() * grid.seed.size() *
               grid.iterations.size());
  for (const auto& scenario : grid.scenario)
    for (const auto& mesh_spec : grid.mesh)
      for (const auto particles : grid.particles)
        for (const auto ranks : grid.ranks)
          for (const auto& curve : grid.curve)
            for (const auto& policy : grid.policy)
              for (const auto seed : grid.seed)
                for (const auto iterations : grid.iterations) {
                  const auto [nx, ny] = parse_mesh(mesh_spec);
                  if (ranks <= 0) grid_fail("ranks must be positive");
                  if (particles == 0) grid_fail("particles must be positive");
                  if (iterations <= 0) grid_fail("iterations must be positive");
                  GridJob j;
                  j.params = paper_base(nx, ny);
                  try {
                    apply_scenario(j.params, scenario);
                    j.params.curve = sfc::parse_curve_kind(curve);
                    apply_policy(j.params, policy);
                  } catch (const std::exception& e) {
                    grid_fail(e.what());
                  }
                  j.params.nranks = ranks;
                  j.params.init.total = particles;
                  j.params.init.seed = seed;
                  j.params.iterations = iterations;
                  j.label = scenario + "/" + mesh_spec + "/p" +
                            std::to_string(particles) + "/r" +
                            std::to_string(ranks) + "/" + curve + "/" +
                            policy + "/s" + std::to_string(seed) + "/i" +
                            std::to_string(iterations);
                  jobs.push_back(std::move(j));
                }
  return jobs;
}

}  // namespace picpar::sweep
