// Declarative parameter grids for the sweep driver.
//
// A grid file is a flat INI-ish text: one `key = v1, v2, ...` line per
// axis, `#` comments and blank lines ignored. Axes cross-multiply; a file
// with 2 policies, 3 rank counts and 2 seeds expands to 12 jobs. Axes left
// out keep a single default value, so the smallest useful grid is one line.
//
//   # Fig 16-style comparison
//   mesh       = 64x32, 128x64
//   particles  = 20000
//   scenario   = uniform, irregular_beam, weibel
//   policy     = static, periodic:10, sar+eulerian
//   curve      = hilbert
//   ranks      = 16, 32
//   seed       = 1
//   iterations = 60
//
// Expansion is deterministic: axes iterate in the fixed order below
// (scenario outermost, iterations innermost), each axis in file order, so
// the same file always yields the same job list in the same order.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "pic/config.hpp"

namespace picpar::sweep {

/// One parsed grid: every axis non-empty (defaults applied at parse time).
struct SweepGrid {
  /// Distribution names (uniform, irregular, ...) or scenario-library
  /// names (weibel, beam_into_plasma, moving_hotspot); see src/scenario.
  std::vector<std::string> scenario{"uniform"};
  std::vector<std::string> mesh{"128x64"};    ///< "NXxNY" grid sizes
  std::vector<std::uint64_t> particles{20000};
  std::vector<int> ranks{32};
  std::vector<std::string> curve{"hilbert"};  ///< space-filling curves
  /// Redistribution specs: "decision" or "decision+balancer"
  /// (e.g. "sar", "periodic:10+sfcweight:2"); see core/balancer.hpp.
  std::vector<std::string> policy{"sar"};
  std::vector<std::uint64_t> seed{1};
  std::vector<int> iterations{60};
};

/// One expanded grid point: a human-readable label plus the full config.
struct GridJob {
  std::string label;  ///< "scenario/mesh/pN/rN/curve/policy/sN/iN"
  pic::PicParams params;
};

/// Parse grid-file text. Throws std::runtime_error naming the offending
/// line for unknown keys, duplicate keys, empty value lists, or malformed
/// numbers.
SweepGrid parse_grid(std::string_view text);

/// Cross-multiply the axes into concrete jobs on the paper's experimental
/// base configuration (Section 6 setup: drifting plasma, curve
/// decomposition, Maxwell solver, CM-5 cost preset). Throws
/// std::runtime_error for values no axis accepts (bad scenario, curve, or
/// policy spec, zero ranks, mesh not "NXxNY").
std::vector<GridJob> expand_grid(const SweepGrid& grid);

}  // namespace picpar::sweep
