// The paper's Section 4 analytic time model.
//
// For the direct Lagrangian method with a distributed mesh, the paper
// bounds each phase of one iteration (two-dimensional case):
//
//   T_scatter <= 4 n/p T_scomp + (p-1) tau + u l_grid mu
//   T_fields   =   m/p T_fcomp + 4 tau + 4 sqrt(m/p) l_grid mu
//   T_gather  <= 4 n/p T_gcomp + (p-1) tau + 2 u l_grid mu
//   T_push     =   n/p T_push
//
// with u = min(m/p, 4 n/p) the ghost-point bound. These closed forms let a
// user size a machine before running anything; the bench
// bench_section4_model checks the simulator against them.
#pragma once

#include "pic/config.hpp"

namespace picpar::pic {

struct PhaseBounds {
  double scatter = 0.0;
  double field_solve = 0.0;
  double gather = 0.0;
  double push = 0.0;

  double iteration() const { return scatter + field_solve + gather + push; }
};

struct ModelInputs {
  std::uint64_t particles = 0;   ///< n
  std::uint64_t grid_points = 0; ///< m
  int nranks = 1;                ///< p
  double l_grid = 8.0;           ///< bytes per grid-point value
  PhaseCosts costs{};            ///< per-op constants (units of delta)
  sim::CostModel machine = sim::CostModel::cm5();
};

/// Ghost-point upper bound u = min(m/p, 4 n/p).
double ghost_point_bound(const ModelInputs& in);

/// Per-iteration upper bounds for each phase (seconds of virtual time).
PhaseBounds phase_bounds(const ModelInputs& in);

/// Predicted best-case iteration time when particle and mesh subdomains
/// are perfectly aligned: communication drops to the subdomain boundary,
/// u_aligned ~ 4 sqrt(m/p) (one ghost ring), messages to a handful of
/// neighbors instead of p-1.
PhaseBounds aligned_phase_estimate(const ModelInputs& in, int neighbors = 8);

/// Convenience: fill ModelInputs from a PicParams.
ModelInputs model_inputs(const PicParams& params);

}  // namespace picpar::pic
