#include "pic/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "analysis/analyzer.hpp"
#include "analysis/audit.hpp"
#include "core/indexing.hpp"
#include "core/invariants.hpp"
#include "core/policy.hpp"
#include "mesh/local_grid.hpp"
#include "mesh/maxwell.hpp"
#include "mesh/poisson.hpp"
#include "particles/interpolate.hpp"
#include "particles/pusher.hpp"
#include "runtime/parallel_engine.hpp"
#include "scenario/scenario.hpp"
#include "sfc/index_cache.hpp"
#include "sim/comm.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/tracer.hpp"
#include "util/env.hpp"

namespace picpar::pic {

using core::GhostExchange;
using core::ParticlePartitioner;
using mesh::FieldState;
using mesh::GridPartition;
using mesh::LocalGrid;
using particles::ParticleArray;
using sim::Comm;
using sim::Phase;

GridDecomp parse_grid_decomp(const std::string& name) {
  if (name == "block") return GridDecomp::kBlock;
  if (name == "curve") return GridDecomp::kCurve;
  throw std::invalid_argument("unknown grid decomposition: " + name);
}

FieldSolveKind parse_solver(const std::string& name) {
  if (name == "maxwell") return FieldSolveKind::kMaxwell;
  if (name == "poisson") return FieldSolveKind::kPoisson;
  if (name == "none") return FieldSolveKind::kNone;
  throw std::invalid_argument("unknown solver: " + name);
}

std::vector<sim::CrashPoint> parse_crash_schedule(const std::string& spec) {
  std::vector<sim::CrashPoint> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t at = entry.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= entry.size())
      throw std::invalid_argument("crash schedule entry '" + entry +
                                  "' is not rank@vtime");
    std::size_t used = 0;
    sim::CrashPoint cp;
    cp.rank = std::stoi(entry.substr(0, at), &used);
    if (used != at)
      throw std::invalid_argument("crash schedule rank '" + entry +
                                  "' is not an integer");
    const std::string tstr = entry.substr(at + 1);
    cp.vtime = std::stod(tstr, &used);
    if (used != tstr.size())
      throw std::invalid_argument("crash schedule vtime '" + entry +
                                  "' is not a number");
    if (cp.rank < 0 || cp.vtime < 0.0)
      throw std::invalid_argument("crash schedule entry '" + entry +
                                  "' must be nonnegative");
    out.push_back(cp);
  }
  return out;
}

void apply_crash_env(sim::FaultConfig& cfg) {
  if (const char* s = std::getenv("PICPAR_CRASH_RANKS"); s && *s) {
    const auto sched = parse_crash_schedule(s);
    cfg.crash_schedule.insert(cfg.crash_schedule.end(), sched.begin(),
                              sched.end());
  }
  if (const char* s = std::getenv("PICPAR_CRASH_PROB"); s && *s)
    cfg.crash_prob = std::stod(s);
  if (const char* s = std::getenv("PICPAR_CRASH_MAX_T"); s && *s)
    cfg.crash_vtime_max = std::stod(s);
  if (const char* s = std::getenv("PICPAR_CRASH_LEASE"); s && *s)
    cfg.crash_lease_seconds = std::stod(s);
}

namespace {

/// Per-rank, per-iteration raw measurements; merged after the run.
struct LocalIter {
  double clock_end = 0.0;
  double clock_pre_redist = 0.0;
  double loop_seconds_global = 0.0;
  std::uint64_t scatter_sent_bytes = 0;
  std::uint64_t scatter_recv_bytes = 0;
  std::uint64_t scatter_sent_msgs = 0;
  std::uint64_t scatter_recv_msgs = 0;
  std::uint64_t ghost_entries = 0;
  bool redistributed = false;
  double redist_seconds_global = 0.0;
  std::uint64_t redist_sent = 0;
  std::uint32_t violation_mask = 0;
  bool recovered = false;
  bool crash_recovered = false;
  std::uint64_t injected = 0;  ///< injector particles kept by this rank
  std::uint64_t absorbed = 0;  ///< lost through an open boundary
};

struct RankOutput {
  std::vector<LocalIter> iters;
  double clock_after_init = 0.0;
  double init_seconds_global = 0.0;
  double field_energy = 0.0;
  double kinetic_energy = 0.0;
  double total_charge = 0.0;
  std::uint64_t final_particles = 0;
  int recoveries = 0;
  int crash_recoveries = 0;
  double mttr_total = 0.0;
  std::uint64_t crash_lost = 0;
  std::uint64_t crash_restored = 0;
  std::vector<EnergySample> energy;  // filled by group rank 0 only
  // Per-rank memory budget (peaks over the run), for the PICPAR_MEM_REPORT
  // CSV. Host-side only: deliberately NOT part of PicResult, so the cached
  // sweep serialization format is untouched.
  std::size_t mem_machine_bytes = 0;  ///< sparse transport tables
  std::size_t mem_exchange_bytes = 0;  ///< ghost tables + staged messages
  std::size_t mem_sort_bytes = 0;      ///< partitioner sort scratch
  std::size_t mem_peak_bytes = 0;      ///< legacy ghost+sort peak
  std::size_t transport_peers = 0;     ///< distinct peers with transport state
};

/// Everything a rank's subdomain view depends on the group size: grid
/// partition, local grid, fields, solvers, partitioner, ghost tables.
/// Rebuilt in place (std::optional::emplace) whenever membership changes —
/// the members reference their siblings, so the object is never moved.
struct Domain {
  GridPartition part;
  LocalGrid lg;
  FieldState f;
  mesh::MaxwellSolver maxwell;
  mesh::PoissonSolver poisson;
  std::vector<double> phi;
  ParticlePartitioner partitioner;
  GhostExchange ghosts;

  Domain(const PicParams& params, const mesh::GridDesc& grid,
         const sfc::Curve& curve, double dt, int p, int grank)
      : part(params.grid_decomp == GridDecomp::kBlock
                 ? GridPartition::block_auto(grid, p)
                 : GridPartition::curve(grid, p, curve)),
        lg(part, grank),
        f(lg),
        maxwell(lg, dt),
        poisson(lg),
        phi(lg.make_field()),
        partitioner(curve, grid, params.partitioner),
        ghosts(lg, params.dedup) {}
};

/// One subdomain's particles in the shared checkpoint store. `valid` is the
/// torn-write seal: it is cleared before the shard contents are rewritten
/// and set only after the write (and its charged virtual time) completed,
/// so a rank that crashes mid-checkpoint leaves a shard the loader rejects.
struct CkptShard {
  int owner_world = -1;
  bool valid = false;
  std::vector<particles::ParticleRec> recs;
};

struct CkptBuffer {
  int seq = -2;   ///< checkpoint sequence number (-2 = never used)
  int iter = -1;  ///< iteration after which it was taken (-1 = baseline)
  int nshards = 0;
  std::vector<CkptShard> shards;  ///< indexed by group rank at take time
};

/// Host-shared, subdomain-addressed particle checkpoints (stands in for
/// shared stable storage). Double-buffered by sequence parity so a write in
/// progress never clobbers the last committed checkpoint. The commit record
/// is collective: a checkpoint counts as committed only once the barrier
/// after the shard seals completes — otherwise survivors could agree on a
/// sequence number whose crashed writer left a missing or torn shard.
struct CheckpointStore {
  std::mutex mu;  ///< ranks write concurrently under the parallel engine
  int committed_seq = -1;
  CkptBuffer buf[2];

  void reset() {
    committed_seq = -1;
    buf[0] = CkptBuffer{};
    buf[1] = CkptBuffer{};
  }
};

/// One bit flipped in one random field of one random particle — the host
/// memory corruption the transport checksums cannot see. Drawn from the
/// fault model's per-rank stream so runs stay reproducible.
void inject_memory_fault(sim::FaultModel& fm, int rank, ParticleArray& p) {
  if (p.empty()) return;
  const auto i = static_cast<std::size_t>(fm.draw_below(rank, p.size()));
  const auto field = fm.draw_below(rank, 6);
  double* fields[5] = {&p.x[i], &p.y[i], &p.ux[i], &p.uy[i], &p.uz[i]};
  if (field < 5) {
    auto* target = reinterpret_cast<std::byte*>(fields[field]);
    fm.flip_random_bit(rank, target, sizeof(double));
  } else {
    auto* target = reinterpret_cast<std::byte*>(&p.key[i]);
    fm.flip_random_bit(rank, target, sizeof(std::uint64_t));
  }
}

/// Last-resort repair when a violation is detected but rollback is
/// unavailable (no checkpoint, or the recovery budget is spent): clamp the
/// state back to validity so the run degrades instead of feeding corrupt
/// positions into the next scatter (whose float-to-int casts assume a
/// wrapped domain). Momenta are zeroed only when non-finite; positions are
/// re-wrapped, with values too large to wrap meaningfully reset to origin.
void scrub_particles(const sfc::IndexCache& keys, const mesh::GridDesc& grid,
                     ParticleArray& p) {
  const std::uint64_t stride = p.key_stride();
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (!std::isfinite(p.ux[i])) p.ux[i] = 0.0;
    if (!std::isfinite(p.uy[i])) p.uy[i] = 0.0;
    if (!std::isfinite(p.uz[i])) p.uz[i] = 0.0;
    double x = p.x[i], y = p.y[i];
    if (!std::isfinite(x) || std::abs(x) > 64.0 * grid.lx) x = 0.0;
    if (!std::isfinite(y) || std::abs(y) > 64.0 * grid.ly) y = 0.0;
    p.x[i] = grid.wrap_x(x);
    p.y[i] = grid.wrap_y(y);
    // Preserve the species-in-key low bits; a corrupted key may carry a
    // bogus species, which the modulo wraps back into range.
    p.key[i] = stride == 1
                   ? core::key_of(keys, grid, p.x[i], p.y[i])
                   : core::encode_key(keys, grid, p.x[i], p.y[i], stride,
                                      p.key[i] % stride);
  }
}

}  // namespace

PicResult run_pic(const PicParams& params) {
  if (params.init.total == 0)
    throw std::invalid_argument("run_pic: init.total must be > 0");
  if (params.iterations < 0)
    throw std::invalid_argument("run_pic: iterations must be >= 0");

  const mesh::GridDesc grid = params.grid;
  const auto curve = sfc::make_curve(params.curve, grid.nx, grid.ny);
  // Cell -> curve-index table, evaluated once and shared read-only by all
  // rank threads; replaces per-particle curve evaluations on the push and
  // scrub paths (DESIGN.md §10).
  const sfc::IndexCache key_cache(*curve, grid.nx, grid.ny);

  // Scenario resolution: empty name keeps the legacy path (dist-selected
  // loadout, every hook disabled — byte-identical to builds without the
  // scenario subsystem). Unknown names throw before any work happens.
  const scenario::Scenario* sc =
      params.scenario.empty() ? nullptr
                              : &scenario::get_scenario(params.scenario);
  const bool inject_on = sc != nullptr && sc->injector.enabled;
  const bool absorb_x =
      sc != nullptr && sc->boundary == scenario::Boundary::kAbsorbX;
  const bool driver_on = sc != nullptr && sc->driver.enabled;
  const bool seed_on = sc != nullptr && sc->field_seed.enabled;

  // The global particle population; every rank slices it identically.
  const ParticleArray global =
      sc != nullptr ? sc->loadout(grid, params.init)
                    : particles::generate(params.dist, grid, params.init);
  const double dt =
      params.dt > 0.0 ? params.dt : mesh::MaxwellSolver::max_dt(grid);

  const double delta = params.machine.delta;
  const PhaseCosts& pc = params.costs;
  const double inv_cell = 1.0 / (grid.dx() * grid.dy());

  // Fail-stop crash configuration: params plus the PICPAR_CRASH_* overrides.
  // Env entries aimed at ranks this run does not have are dropped so one
  // schedule can serve sweeps over different rank counts.
  sim::FaultConfig faults = params.faults;
  apply_crash_env(faults);
  faults.crash_schedule.erase(
      std::remove_if(faults.crash_schedule.begin(),
                     faults.crash_schedule.end(),
                     [&](const sim::CrashPoint& cp) {
                       return cp.rank >= params.nranks;
                     }),
      faults.crash_schedule.end());
  const bool crash_mode = faults.any_crash_faults();

  std::vector<RankOutput> outputs(static_cast<std::size_t>(params.nranks));
  CheckpointStore store;

  auto program = [&](Comm& comm) {
    // The world rank is this thread's permanent identity: it indexes host
    // outputs and the fault streams. comm.rank()/comm.size() are group
    // coordinates that shrink after a recovery, so they are re-read after
    // every membership change instead of being cached up front.
    const int world = comm.world_rank();
    auto& out = outputs[static_cast<std::size_t>(world)];
    out.iters.reserve(static_cast<std::size_t>(params.iterations));

    const ValidationParams& vp = params.validate;
    core::InvariantChecker checker(*curve, grid, vp.invariants);

    std::optional<Domain> dom;
    std::unique_ptr<core::RedistributionPolicy> policy;
    ParticleArray mine(global.species());
    ParticleArray ckpt(global.species());
    bool ckpt_valid = false;
    int ckpt_seq = -1;  ///< last committed sequence this rank knows about
    int recoveries = 0;
    int energy_owner_world = 0;  ///< world rank of the current group rank 0
    double pending_crash_vtime = std::numeric_limits<double>::infinity();
    bool just_recovered = false;
    std::size_t mem_peak = 0;
    // Per-subsystem peaks behind the mem.* budget breakdown: transport
    // tables inside the machine, ghost-exchange tables, sort scratch. All
    // three are deterministic functions of the rank's history, so the marks
    // (and the per-rank CSV they feed) are mode-independent.
    std::size_t mem_machine = 0;
    std::size_t mem_exchange = 0;
    std::size_t mem_sort = 0;

    // Take a checkpoint of `mine` as of completed iteration `iter_done`
    // (-1 = post-init baseline). The in-memory copy serves single-rank
    // violation rollback exactly as before crash support existed; the
    // shared-store shard write (crash mode only) additionally makes the
    // subdomain restorable by any survivor.
    const auto take_checkpoint = [&](Comm& c, int iter_done) {
      ckpt = mine;
      ckpt_valid = true;
      c.charge_ops(static_cast<std::uint64_t>(
          static_cast<double>(mine.size()) * vp.checkpoint_ops_per_particle));
      if (!crash_mode) return;
      const int seq = ckpt_seq + 1;
      const int p = c.size();
      const int grank = c.rank();
      {
        std::lock_guard<std::mutex> lk(store.mu);
        auto& b = store.buf[seq & 1];
        if (b.seq != seq) {
          b.seq = seq;
          b.iter = iter_done;
          b.nshards = p;
          b.shards.assign(static_cast<std::size_t>(p), CkptShard{});
        }
        auto& sh = b.shards[static_cast<std::size_t>(grank)];
        sh.valid = false;
        sh.owner_world = world;
        sh.recs.clear();
        sh.recs.reserve(mine.size());
        for (std::size_t i = 0; i < mine.size(); ++i)
          sh.recs.push_back(mine.rec(i));
      }
      // Serialization cost — and a fail-stop point: a crash here leaves the
      // shard unsealed (valid == false), the torn write the loader rejects.
      c.charge_ops(static_cast<std::uint64_t>(mine.size()));
      {
        std::lock_guard<std::mutex> lk(store.mu);
        store.buf[seq & 1].shards[static_cast<std::size_t>(grank)].valid =
            true;
      }
      // Commit is collective. Without this barrier, survivors could all be
      // past their own seals while the crashed rank was still mid-write:
      // they would agree on `seq` as restorable even though one shard is
      // torn. Completing the barrier proves every shard was sealed first.
      c.barrier();
      {
        std::lock_guard<std::mutex> lk(store.mu);
        if (store.committed_seq < seq) store.committed_seq = seq;
      }
      ckpt_seq = seq;
    };

    // (Re)initialize the domain for the current group and slice + balance
    // the initial population. Runs at start and again if a crash precedes
    // the first committed checkpoint.
    const auto do_init = [&](Comm& c) {
      const int rank = c.rank();
      const int p = c.size();
      dom.emplace(params, grid, *curve, dt, p, rank);
      if (seed_on) scenario::apply_field_seed(sc->field_seed, grid, dom->lg, dom->f);
      policy = core::make_policy(params.policy);
      out.iters.clear();

      // Initial slice: equal contiguous blocks of the generated population.
      mine.clear();
      {
        const auto total = static_cast<std::uint64_t>(global.size());
        const std::uint64_t b = static_cast<std::uint64_t>(rank) * total /
                                static_cast<std::uint64_t>(p);
        const std::uint64_t e = static_cast<std::uint64_t>(rank + 1) * total /
                                static_cast<std::uint64_t>(p);
        mine.reserve(static_cast<std::size_t>(e - b));
        for (std::uint64_t i = b; i < e; ++i)
          mine.push_back(global.rec(static_cast<std::size_t>(i)));
      }

      // Initial distribution (full sample sort + balance).
      c.set_phase(Phase::kRedistribute);
      const double t0 = c.clock();
      dom->partitioner.assign_keys(c, mine);
      dom->partitioner.distribute(c, mine);
      c.set_phase(Phase::kOther);
      out.init_seconds_global = c.allreduce_max(c.clock() - t0);
      policy->notify_redistribution(-1, out.init_seconds_global);
      out.clock_after_init = c.clock();
      if (rank == 0) c.mark(trace::kMarkInit, -1, out.init_seconds_global);

      if (vp.check_every > 0)
        checker.set_reference_count(c.allreduce_sum<std::uint64_t>(
            static_cast<std::uint64_t>(mine.size())));
      ckpt_valid = false;
      // Baseline checkpoint: the freshly balanced initial state. Crash mode
      // always keeps one so a failure is never unrecoverable.
      if (vp.checkpoint_every > 0 || crash_mode) take_checkpoint(c, -1);
    };

    // Shrink-to-survivors recovery after a PeerFailedError. Returns the
    // iteration to resume at, or -1 when no committed checkpoint exists and
    // the caller must re-run do_init on the shrunken group.
    const auto do_recover = [&](Comm& c) -> int {
      c.set_phase(Phase::kRedistribute);
      const sim::MembershipView view = c.agree_on_membership();
      for (const auto& cr : view.failed)
        pending_crash_vtime = std::min(pending_crash_vtime, cr.vtime);
      const int rank = c.rank();
      const int p = c.size();

      // Survivors threw from different program points; align the shared
      // recovery counters before using them.
      recoveries = c.allreduce_max(recoveries);
      int rseq = -1, rit = -1;
      {
        std::lock_guard<std::mutex> lk(store.mu);
        rseq = store.committed_seq;
        if (rseq >= 0) rit = store.buf[rseq & 1].iter;
      }
      rseq = c.allreduce_min(rseq);
      rit = c.allreduce_min(rit);
      ckpt_seq = rseq;

      dom.emplace(params, grid, *curve, dt, p, rank);
      if (seed_on) scenario::apply_field_seed(sc->field_seed, grid, dom->lg, dom->f);
      policy = core::make_policy(params.policy);
      ckpt_valid = false;
      energy_owner_world = view.survivors.empty() ? world : view.survivors[0];

      if (rseq < 0) {
        // Crash before the first committed checkpoint: restart from the
        // initial conditions on the shrunken group. Nothing is restored —
        // the initial population is regenerated deterministically.
        out.energy.clear();
        const double t_done = c.allreduce_max(c.clock());
        const double mttr = t_done - pending_crash_vtime;
        pending_crash_vtime = std::numeric_limits<double>::infinity();
        ++out.crash_recoveries;
        out.mttr_total += mttr;
        if (rank == 0) comm.mark(trace::kMarkCrashRecovered, 0, mttr);
        c.set_phase(Phase::kOther);
        just_recovered = true;
        return -1;
      }

      // Reload every committed shard round-robin across survivors. Shards
      // are addressed by subdomain, not by rank: a dead owner's particles
      // are restored by whichever survivor the round-robin assigns them to.
      std::uint64_t lost = 0;
      mine.clear();
      {
        std::lock_guard<std::mutex> lk(store.mu);
        const auto& b = store.buf[rseq & 1];
        for (int s = 0; s < b.nshards; ++s) {
          const auto& sh = b.shards[static_cast<std::size_t>(s)];
          if (!sh.valid)
            throw std::runtime_error(
                "checkpoint: committed shard is torn (seq " +
                std::to_string(rseq) + ", subdomain " + std::to_string(s) +
                ")");
          if (!std::binary_search(view.survivors.begin(),
                                  view.survivors.end(), sh.owner_world))
            lost += static_cast<std::uint64_t>(sh.recs.size());
          if (s % p == rank) {
            mine.reserve(mine.size() + sh.recs.size());
            for (const auto& r : sh.recs) mine.push_back(r);
          }
        }
      }
      c.charge_ops(static_cast<std::uint64_t>(
          static_cast<double>(mine.size()) * vp.checkpoint_ops_per_particle));

      // Re-partition the restored population over the surviving group.
      dom->partitioner.assign_keys(c, mine);
      dom->partitioner.distribute(c, mine);
      if (vp.check_every > 0)
        checker.set_reference_count(c.allreduce_sum<std::uint64_t>(
            static_cast<std::uint64_t>(mine.size())));

      // Iterations after the checkpoint are re-run: truncate this rank's
      // history back to the restore point.
      const int resume = rit + 1;
      if (out.iters.size() > static_cast<std::size_t>(resume))
        out.iters.resize(static_cast<std::size_t>(resume));
      if (rank == 0) {
        // Energy-history ownership follows group rank 0. If the previous
        // owner died, adopt its (completed, pre-checkpoint) samples — it is
        // done, so its output is stable and safe to read.
        if (energy_owner_world != world && out.energy.empty())
          out.energy = outputs[static_cast<std::size_t>(energy_owner_world)]
                           .energy;
        while (!out.energy.empty() && out.energy.back().iter > rit)
          out.energy.pop_back();
      } else {
        out.energy.clear();
      }
      energy_owner_world = view.survivors[0];

      const double t_done = c.allreduce_max(c.clock());
      const double mttr = t_done - pending_crash_vtime;
      pending_crash_vtime = std::numeric_limits<double>::infinity();
      ++out.crash_recoveries;
      out.mttr_total += mttr;
      out.crash_lost += lost;
      out.crash_restored += lost;
      if (rank == 0) {
        c.mark(trace::kMarkCrashRecovered, resume, mttr);
        c.mark(trace::kMarkCrashLost, resume, static_cast<double>(lost));
        c.mark(trace::kMarkCrashRestored, resume, static_cast<double>(lost));
      }
      c.set_phase(Phase::kOther);
      // Fresh post-recovery baseline so a later crash cannot rewind past
      // this membership change.
      take_checkpoint(c, rit);
      just_recovered = true;
      return resume;
    };

    const auto do_iter = [&](Comm& c, int iter) {
      const int rank = c.rank();
      const double q = mine.charge();
      const double m = mine.mass();
      const bool multi = mine.nspecies() > 1;
      LocalGrid& lg = dom->lg;
      FieldState& f = dom->f;
      GhostExchange& ghosts = dom->ghosts;

      LocalIter rec;
      rec.crash_recovered = just_recovered;
      just_recovered = false;
      const double t_iter_start = c.clock();

      // ---- Boundary injection ----
      // Every rank derives the identical batch from (seed, iteration) — no
      // communication — and keeps the particles whose key lands in its
      // partition range. Appending unsorted is fine: the array legitimately
      // unsorts between redistributions as the push updates keys in place.
      if (inject_on) {
        const auto batch =
            scenario::injector_batch(*sc, grid, params.init, iter);
        const std::uint64_t stride = mine.key_stride();
        for (const auto& src : batch) {
          auto r = src;
          r.key = stride == 1
                      ? core::key_of(key_cache, grid, r.x, r.y)
                      : core::encode_key(key_cache, grid, r.x, r.y, stride,
                                         r.key);
          if (dom->partitioner.owner_of(r.key) == rank) {
            mine.push_back(r);
            ++rec.injected;
          }
        }
        c.charge_ops(batch.size());
        // The emitted count is globally known (= batch size), so the
        // conservation reference grows without a collective.
        if (vp.check_every > 0)
          checker.set_reference_count(checker.reference_count() +
                                      batch.size());
      }

      // ---- Scatter phase ----
      c.set_phase(Phase::kScatter);
      const auto stats_before = c.stats();
      ghosts.begin_iteration();
      f.clear_sources();
      const std::size_t n = mine.size();
      // Per-cell stencil-destination memo (DESIGN.md §10): particles are
      // kept sorted along the curve, so consecutive particles usually share
      // a cell. Resolve the four vertex destinations (owned local index or
      // ghost slot index) once per cell run instead of per particle. Slot
      // *indices* are memoized, not pointers — the ghost table reallocates
      // as it grows. Identical lookup order on first touch keeps the ghost
      // entry order, and therefore all messages, byte-identical.
      std::uint64_t memo_cell = ~std::uint64_t{0};
      bool memo_owned[4] = {false, false, false, false};
      std::uint32_t memo_idx[4] = {0, 0, 0, 0};
      for (std::size_t i = 0; i < n; ++i) {
        const auto st = particles::cic_stencil(grid, mine.x[i], mine.y[i]);
        if (st.node[0] != memo_cell) {
          memo_cell = st.node[0];
          for (int k = 0; k < 4; ++k) {
            const auto l = lg.local_of(st.node[k]);
            if (l != mesh::kNoLocal && l < lg.owned()) {
              memo_owned[k] = true;
              memo_idx[k] = l;
            } else {
              memo_owned[k] = false;
              memo_idx[k] = ghosts.deposit_slot_index(st.node[k]);
            }
          }
        }
        const double gamma = mine.gamma(i);
        // Single-species arithmetic is exactly the legacy expression (the
        // hoisted q), so stride-1 runs stay bit-identical.
        const double qv = (multi ? mine.charge_of(i) : q) * inv_cell;
        const double jx = qv * mine.ux[i] / gamma;
        const double jy = qv * mine.uy[i] / gamma;
        const double jz = qv * mine.uz[i] / gamma;
        for (int k = 0; k < 4; ++k) {
          const double w = st.weight[k];
          if (memo_owned[k]) {
            const auto l = memo_idx[k];
            f.jx[l] += w * jx;
            f.jy[l] += w * jy;
            f.jz[l] += w * jz;
            f.rho[l] += w * qv;
          } else {
            double* slot = ghosts.deposit_data(memo_idx[k]);
            slot[0] += w * jx;
            slot[1] += w * jy;
            slot[2] += w * jz;
            slot[3] += w * qv;
          }
        }
      }
      c.charge(static_cast<double>(4 * n) * pc.scatter_per_vertex * delta);
      rec.ghost_entries = ghosts.entries();
      c.mark(trace::kMarkGhostEntries, iter,
             static_cast<double>(rec.ghost_entries));
      ghosts.flush_scatter(c, f);
      {
        const auto d = c.stats().diff(stats_before).phase(Phase::kScatter);
        rec.scatter_sent_bytes = d.bytes_sent;
        rec.scatter_recv_bytes = d.bytes_recv;
        rec.scatter_sent_msgs = d.msgs_sent;
        rec.scatter_recv_msgs = d.msgs_recv;
      }

      // ---- Field solve phase ----
      c.set_phase(Phase::kFieldSolve);
      switch (params.solver) {
        case FieldSolveKind::kMaxwell:
          dom->maxwell.step(c, f);
          c.charge(static_cast<double>(lg.owned()) * pc.field_per_node *
                   delta);
          break;
        case FieldSolveKind::kPoisson: {
          const auto pr = dom->poisson.solve(c, f.rho, dom->phi);
          dom->poisson.gradient(dom->phi, f.ex, f.ey);
          c.charge(static_cast<double>(lg.owned()) * 0.25 *
                   pc.field_per_node * delta *
                   static_cast<double>(pr.iterations) / 10.0);
          break;
        }
        case FieldSolveKind::kNone:
          break;
      }

      // ---- Gather phase ----
      c.set_phase(Phase::kGather);
      ghosts.fetch_fields(c, f);
      // Same per-cell memo as the scatter loop; positions are unchanged
      // since scatter, so every vertex is either owned or already has a
      // ghost slot from the deposit pass.
      memo_cell = ~std::uint64_t{0};
      for (std::size_t i = 0; i < n; ++i) {
        const auto st = particles::cic_stencil(grid, mine.x[i], mine.y[i]);
        if (st.node[0] != memo_cell) {
          memo_cell = st.node[0];
          for (int k = 0; k < 4; ++k) {
            const auto l = lg.local_of(st.node[k]);
            if (l != mesh::kNoLocal && l < lg.owned()) {
              memo_owned[k] = true;
              memo_idx[k] = l;
            } else {
              memo_owned[k] = false;
              memo_idx[k] = ghosts.slot_of(st.node[k]);
            }
          }
        }
        // picpar-lint: allow(float-reduction-order) fixed 4-point stencil
        particles::LocalFields lf;
        for (int k = 0; k < 4; ++k) {
          const double w = st.weight[k];
          if (memo_owned[k]) {
            const auto l = memo_idx[k];
            lf.ex += w * f.ex[l];
            lf.ey += w * f.ey[l];
            lf.ez += w * f.ez[l];
            lf.bx += w * f.bx[l];
            lf.by += w * f.by[l];
            lf.bz += w * f.bz[l];
          } else {
            const double* s = ghosts.field_data(memo_idx[k]);
            lf.ex += w * s[0];
            lf.ey += w * s[1];
            lf.ez += w * s[2];
            lf.bx += w * s[3];
            lf.by += w * s[4];
            lf.bz += w * s[5];
          }
        }
        // Scenario driver: analytic E contribution, a pure function of
        // (virtual time, position). Branch-gated so legacy runs never touch
        // the interpolated values (even += 0.0 could flip a -0.0).
        if (driver_on) {
          const auto dv = scenario::driver_field(
              sc->driver, grid, static_cast<double>(iter) * dt, mine.x[i],
              mine.y[i]);
          lf.ex += dv.ex;
          lf.ey += dv.ey;
        }
        const double qi = multi ? mine.charge_of(i) : q;
        const double mi = multi ? mine.mass_of(i) : m;
        particles::boris_kick(qi, mi, dt, lf, mine.ux[i], mine.uy[i],
                              mine.uz[i]);
      }
      c.charge(static_cast<double>(4 * n) * pc.gather_per_vertex * delta);

      // ---- Push phase ----
      c.set_phase(Phase::kPush);
      {
        const std::uint64_t stride = mine.key_stride();
        if (!absorb_x && stride == 1) {
          // Legacy loop, kept verbatim for bit-identity.
          for (std::size_t i = 0; i < n; ++i) {
            particles::advance_position(grid, mine, i, dt);
            mine.key[i] = core::key_of(key_cache, grid, mine.x[i], mine.y[i]);
          }
        } else {
          // Species-aware push with optional open x boundary. Absorbed
          // particles are compacted out with a write index, preserving the
          // relative order of the survivors (swap_remove would scramble the
          // curve order the incremental sort relies on).
          std::size_t w = 0;
          for (std::size_t i = 0; i < n; ++i) {
            if (absorb_x) {
              if (!particles::advance_position_absorb_x(grid, mine, i, dt)) {
                ++rec.absorbed;
                continue;
              }
            } else {
              particles::advance_position(grid, mine, i, dt);
            }
            const std::uint64_t key =
                stride == 1
                    ? core::key_of(key_cache, grid, mine.x[i], mine.y[i])
                    : core::encode_key(key_cache, grid, mine.x[i], mine.y[i],
                                       stride, mine.key[i] % stride);
            if (w != i) mine.set(w, mine.rec(i));
            mine.key[w] = key;
            ++w;
          }
          if (w != n) mine.truncate(w);
        }
      }
      c.charge(static_cast<double>(n) * pc.push_per_particle * delta);
      // Absorption shrinks the conservation reference; the lost count is
      // agreed collectively (scenario runs only — the legacy path never
      // executes this).
      if (absorb_x && vp.check_every > 0) {
        const auto lost = c.allreduce_sum<std::uint64_t>(rec.absorbed);
        checker.set_reference_count(checker.reference_count() - lost);
      }

      // Host-memory corruption the transport checksums cannot see: flip a
      // bit in local particle state. Detection is the checker's job. Fault
      // streams are keyed by world rank — a rank keeps its stream identity
      // across membership changes.
      if (params.faults.memory_fault_prob > 0.0) {
        auto& fm = c.fault_model();
        if (fm.should_memory_fault(world))
          inject_memory_fault(fm, world, mine);
      }

      // ---- Iteration timing and redistribution decision ----
      c.set_phase(Phase::kOther);
      rec.loop_seconds_global = c.allreduce_max(c.clock() - t_iter_start);
      rec.clock_pre_redist = c.clock();

      if (policy->should_redistribute(iter, rec.loop_seconds_global)) {
        if (rank == 0)
          c.mark(trace::kMarkRedistDecision, iter, rec.loop_seconds_global);
        c.set_phase(Phase::kRedistribute);
        const double tr = c.clock();
        const auto rrep = dom->partitioner.redistribute(c, mine);
        c.set_phase(Phase::kOther);
        rec.redist_seconds_global = c.allreduce_max(c.clock() - tr);
        policy->notify_redistribution(iter, rec.redist_seconds_global);
        rec.redistributed = true;
        rec.redist_sent = rrep.sent_particles;
        c.mark(trace::kMarkRedistSent, iter,
               static_cast<double>(rrep.sent_particles));
        if (rank == 0)
          c.mark(trace::kMarkRedistDone, iter, rec.redist_seconds_global);
      }

      // ---- Invariant check, rollback, checkpoint refresh ----
      const ValidationParams& vp2 = params.validate;
      bool checked_bad = false;
      if (vp2.check_every > 0 && (iter + 1) % vp2.check_every == 0) {
        double local_energy = -1.0;
        if (vp2.invariants.energy_factor > 0.0)
          local_energy = f.energy(lg) + mine.kinetic_energy();
        const auto report = checker.check(
            c, mine, iter,
            rec.redistributed ? &dom->partitioner.rank_upper_bounds()
                              : nullptr,
            local_energy);
        rec.violation_mask = report.mask;
        checked_bad = !report.ok();
        if (checked_bad && rank == 0)
          c.mark(trace::kMarkViolation, iter,
                 static_cast<double>(report.mask));
        if (checked_bad && ckpt_valid && recoveries < vp2.max_recoveries) {
          // Every rank saw the same OR-combined mask, so all of them take
          // this branch together: restore the last good checkpoint and
          // force a full redistribution to re-enter a balanced state.
          c.set_phase(Phase::kRedistribute);
          const double tr = c.clock();
          mine = ckpt;
          c.charge_ops(static_cast<std::uint64_t>(
              static_cast<double>(mine.size()) *
              vp2.checkpoint_ops_per_particle));
          dom->partitioner.assign_keys(c, mine);
          dom->partitioner.distribute(c, mine);
          // Rollback rewinds injections/absorptions since the checkpoint;
          // re-anchor the conservation reference to the restored state.
          if (inject_on || absorb_x)
            checker.set_reference_count(c.allreduce_sum<std::uint64_t>(
                static_cast<std::uint64_t>(mine.size())));
          c.set_phase(Phase::kOther);
          const double cost = c.allreduce_max(c.clock() - tr);
          policy->notify_redistribution(iter, cost);
          rec.recovered = true;
          rec.redistributed = true;
          rec.redist_seconds_global += cost;
          ++recoveries;
          if (rank == 0) c.mark(trace::kMarkRecovered, iter, cost);
        } else if (checked_bad) {
          // Rollback unavailable: repair in place so the run continues in a
          // degraded but well-defined state.
          scrub_particles(key_cache, grid, mine);
          c.charge_ops(static_cast<std::uint64_t>(mine.size()));
        }
      }
      if (vp2.checkpoint_every > 0 &&
          (iter + 1) % vp2.checkpoint_every == 0) {
        // With checks enabled, only refresh on an iteration whose check
        // just passed — a rollback target must never itself be corrupt.
        const bool checked_ok =
            vp2.check_every > 0 && (iter + 1) % vp2.check_every == 0 &&
            !checked_bad && !rec.recovered;
        if (vp2.check_every == 0 || checked_ok) take_checkpoint(c, iter);
      }
      // Per-iteration trace samples (free without an observer): local
      // particle count on every rank, global loop time on group rank 0.
      c.mark(trace::kMarkParticles, iter, static_cast<double>(mine.size()));
      if (rank == 0) c.mark(trace::kMarkIter, iter, rec.loop_seconds_global);
      rec.clock_end = c.clock();
      out.iters.push_back(rec);

      // Memory-budget gauge: peak resident bytes pinned by the ghost
      // tables and the sort/redistribution scratch on this rank.
      mem_peak = std::max(
          mem_peak, ghosts.memory_bytes() + dom->partitioner.scratch_bytes());
      mem_machine = std::max(mem_machine, c.memory_bytes());
      mem_exchange = std::max(mem_exchange, ghosts.memory_bytes());
      mem_sort = std::max(mem_sort, dom->partitioner.scratch_bytes());

      if (params.sample_energy_every > 0 &&
          (iter + 1) % params.sample_energy_every == 0) {
        const double fe = c.allreduce_sum(f.energy(lg));
        const double ke = c.allreduce_sum(mine.kinetic_energy());
        if (rank == 0) out.energy.push_back({iter, fe, ke});
      }
    };

    // ---- Main loop with fail-stop recovery ----
    // A crash surfaces on survivors as PeerFailedError thrown from whatever
    // communication they were blocked in. Recovery itself may be interrupted
    // by further crashes (a cascade); the loop simply re-enters do_recover,
    // whose membership agreement folds in the newly failed ranks.
    bool initialized = false;
    bool need_recover = false;
    int iter = 0;
    for (;;) {
      try {
        if (need_recover) {
          const int resume = do_recover(comm);
          need_recover = false;
          if (resume < 0) {
            initialized = false;
          } else {
            iter = resume;
          }
        }
        if (!initialized) {
          do_init(comm);
          initialized = true;
          iter = 0;
        }
        while (iter < params.iterations) {
          do_iter(comm, iter);
          ++iter;
        }
        break;
      } catch (const sim::PeerFailedError&) {
        need_recover = true;
      }
    }

    out.final_particles = static_cast<std::uint64_t>(mine.size());
    out.recoveries = recoveries;

    // Final physics diagnostics (local sums; merged by the aggregator).
    out.field_energy = dom->f.energy(dom->lg);
    out.kinetic_energy = mine.kinetic_energy();
    // picpar-lint: allow(float-reduction-order) fixed local-index sum
    double charge_sum = 0.0;
    for (std::size_t l = 0; l < dom->lg.owned(); ++l)
      charge_sum += dom->f.rho[l];
    out.total_charge = charge_sum * grid.dx() * grid.dy();
    if (mem_peak > 0)
      comm.mark(trace::kMarkMemPeak, -1, static_cast<double>(mem_peak));
    if (mem_machine > 0)
      comm.mark(trace::kMarkMemMachine, -1, static_cast<double>(mem_machine));
    if (mem_exchange > 0)
      comm.mark(trace::kMarkMemExchange, -1,
                static_cast<double>(mem_exchange));
    if (mem_sort > 0)
      comm.mark(trace::kMarkMemSort, -1, static_cast<double>(mem_sort));
    out.mem_machine_bytes = mem_machine;
    out.mem_exchange_bytes = mem_exchange;
    out.mem_sort_bytes = mem_sort;
    out.mem_peak_bytes = mem_peak;
    out.transport_peers = comm.transport_peers();
  };

  sim::Machine machine(params.nranks, params.machine, faults);

  // ---- execution engine (default: sequential reference scheduler) ----
  if (params.exec.parallel || runtime::parallel_env_enabled())
    runtime::use_parallel(machine,
                          runtime::ParallelConfig{params.exec.workers});

  // ---- opt-in happens-before analysis (zero cost when off) ----
  const bool analyze_on = params.analyze.enabled ||
                          params.analyze.audit_determinism ||
                          analysis::analyzer_env_enabled();
  analysis::Analyzer::Options aopt;
  aopt.max_findings =
      static_cast<std::size_t>(std::max(0, params.analyze.max_findings));
  analysis::Analyzer analyzer(aopt);

  // ---- opt-in deterministic tracing (zero cost when off) ----
  TraceParams tp = params.trace;
  if (tp.path.empty())
    if (const char* p = trace::trace_env_path()) tp.path = p;
  if (tp.metrics_path.empty())
    if (const char* p = trace::trace_metrics_env_path()) tp.metrics_path = p;
  const bool trace_on = tp.on();
  trace::Tracer::Options topt;
  topt.flows = tp.flows;
  trace::Tracer tracer(topt);

  sim::ObserverChain observers;
  if (analyze_on) observers.add(&analyzer);
  if (trace_on) observers.add(&tracer);
  if (!observers.empty()) machine.set_observer(&observers);

  int audit_state = -1;
  sim::RunResult run;
  if (analyze_on && params.analyze.audit_determinism) {
    // First run establishes the happens-before DAG fingerprint; the second
    // must reproduce it exactly. Per-rank outputs and the checkpoint store
    // are host-side state the program accumulates into, so they reset
    // between runs.
    machine.run(program);
    const auto fp1 = analyzer.fingerprint();
    const auto ev1 = analyzer.events();
    for (auto& o : outputs) o = RankOutput{};
    store.reset();
    run = machine.run(program);
    audit_state =
        (fp1 == analyzer.fingerprint() && ev1 == analyzer.events()) ? 1 : 0;
  } else {
    run = machine.run(program);
  }

  // ---- Aggregate ----
  PicResult result;
  result.machine = std::move(run);
  result.total_seconds = result.machine.makespan();
  result.compute_seconds = result.machine.max_compute();

  // Survivor bookkeeping: crashed ranks' outputs stop mid-run and describe
  // rolled-back state, so only survivors feed the aggregates. The first
  // survivor is the final group rank 0 — the reference for global values.
  std::vector<char> alive(static_cast<std::size_t>(params.nranks), 1);
  for (const auto& cr : result.machine.crashes)
    alive[static_cast<std::size_t>(cr.rank)] = 0;
  int first_survivor = -1;
  for (int r = 0; r < params.nranks; ++r)
    if (alive[static_cast<std::size_t>(r)]) {
      first_survivor = r;
      break;
    }
  result.crash_count = static_cast<int>(result.machine.crashes.size());
  result.final_ranks = params.nranks - result.crash_count;

  const RankOutput* ref =
      first_survivor >= 0
          ? &outputs[static_cast<std::size_t>(first_survivor)]
          : nullptr;
  result.initial_distribution_seconds = ref ? ref->init_seconds_global : 0.0;

  double prev_end = 0.0;
  for (int r = 0; r < params.nranks; ++r)
    if (alive[static_cast<std::size_t>(r)])
      prev_end = std::max(prev_end,
                          outputs[static_cast<std::size_t>(r)]
                              .clock_after_init);

  result.iters.resize(static_cast<std::size_t>(params.iterations));
  for (int i = 0; i < params.iterations; ++i) {
    auto& rec = result.iters[static_cast<std::size_t>(i)];
    rec.iter = i;
    double end = 0.0;
    for (int r = 0; r < params.nranks; ++r) {
      if (!alive[static_cast<std::size_t>(r)]) continue;
      const auto& o = outputs[static_cast<std::size_t>(r)];
      if (static_cast<std::size_t>(i) >= o.iters.size()) continue;
      const auto& li = o.iters[static_cast<std::size_t>(i)];
      end = std::max(end, li.clock_end);
      rec.scatter_max_sent_bytes =
          std::max(rec.scatter_max_sent_bytes, li.scatter_sent_bytes);
      rec.scatter_max_recv_bytes =
          std::max(rec.scatter_max_recv_bytes, li.scatter_recv_bytes);
      rec.scatter_max_sent_msgs =
          std::max(rec.scatter_max_sent_msgs, li.scatter_sent_msgs);
      rec.scatter_max_recv_msgs =
          std::max(rec.scatter_max_recv_msgs, li.scatter_recv_msgs);
      rec.max_ghost_entries =
          std::max(rec.max_ghost_entries, li.ghost_entries);
      rec.redistributed = rec.redistributed || li.redistributed;
      rec.redist_seconds =
          std::max(rec.redist_seconds, li.redist_seconds_global);
      rec.redist_particles_moved += li.redist_sent;
      rec.violation_mask |= li.violation_mask;
      rec.recovered = rec.recovered || li.recovered;
      rec.crash_recovered = rec.crash_recovered || li.crash_recovered;
      // Each injected particle is kept by exactly one rank (owner_of is a
      // function of the key), so summing per-rank counts gives the global
      // emitted/absorbed totals.
      result.emitted_particles += li.injected;
      result.absorbed_particles += li.absorbed;
    }
    if (ref && static_cast<std::size_t>(i) < ref->iters.size())
      rec.loop_seconds =
          ref->iters[static_cast<std::size_t>(i)].loop_seconds_global;
    rec.exec_seconds = end - prev_end;
    prev_end = end;
    if (rec.redistributed) {
      ++result.redistributions;
      // picpar-lint: allow(float-reduction-order) iteration-order sum
      result.redist_seconds_total += rec.redist_seconds;
    }
    if (rec.violation_mask != 0) ++result.violation_iterations;
  }

  result.initial_particles = static_cast<std::uint64_t>(global.size());
  result.recoveries = ref ? ref->recoveries : 0;
  result.crash_recoveries = ref ? ref->crash_recoveries : 0;
  result.mttr_seconds_total = ref ? ref->mttr_total : 0.0;
  result.crash_lost_particles = ref ? ref->crash_lost : 0;
  result.crash_restored_particles = ref ? ref->crash_restored : 0;

  std::uint64_t final_max = 0;
  for (int r = 0; r < params.nranks; ++r) {
    if (!alive[static_cast<std::size_t>(r)]) continue;
    const auto& o = outputs[static_cast<std::size_t>(r)];
    result.final_particles += o.final_particles;
    final_max = std::max(final_max, o.final_particles);
    // Rank-order merge of per-rank partials (deterministic by design).
    // picpar-lint: allow(float-reduction-order) rank-order merge
    result.field_energy += o.field_energy;
    // picpar-lint: allow(float-reduction-order) rank-order merge
    result.kinetic_energy += o.kinetic_energy;
    // picpar-lint: allow(float-reduction-order) rank-order merge
    result.total_charge += o.total_charge;
  }
  if (result.final_ranks > 0 && result.final_particles > 0)
    result.final_imbalance =
        static_cast<double>(final_max) /
        (static_cast<double>(result.final_particles) /
         static_cast<double>(result.final_ranks));
  if (ref)
    result.energy_history =
        std::move(outputs[static_cast<std::size_t>(first_survivor)].energy);

  if (analyze_on) {
    result.analysis_findings =
        static_cast<std::int64_t>(analyzer.total());
    if (result.analysis_findings > 0) result.analysis_report = analyzer.report();
    result.hb_fingerprint = analyzer.fingerprint();
    result.determinism_audit = audit_state;
  }

  if (trace_on) {
    result.traced = true;
    result.trace_events = tracer.events();
    result.phase_wall_us.assign(static_cast<std::size_t>(sim::kNumPhases),
                                0.0);
    for (const auto& s : tracer.data().spans)
      result.phase_wall_us[static_cast<std::size_t>(s.phase)] += s.w1 - s.w0;
    // The analyzer's own footprint (vector clocks are O(p) per rank by
    // design — opt-in diagnostics) joins the mem.* breakdown only when both
    // observers ran; folded here, before the snapshot, because the tracer
    // cannot see the analyzer.
    if (analyze_on)
      tracer.metrics().set("mem.analyzer_bytes",
                           static_cast<double>(analyzer.memory_bytes()));
    const trace::MetricsSnapshot snap = tracer.metrics().snapshot();
    result.metrics_json = snap.to_json();
    result.metrics_csv = snap.to_csv();
    result.timeline_csv = tracer.timeline().to_csv();
    if (!tp.path.empty() || !tp.metrics_path.empty()) {
      trace::ChromeTraceOptions copt;
      copt.include_wall = tp.include_wall;
      copt.flows = tp.flows;
      // Concurrent run_pic calls (e.g. a bench's --jobs pool) may target
      // the same file; serialize so each write is whole.
      static std::mutex g_trace_write_mutex;
      std::lock_guard<std::mutex> lk(g_trace_write_mutex);
      if (!tp.path.empty())
        trace::write_chrome_trace(tp.path, tracer.data(), copt,
                                  &tracer.timeline());
      if (!tp.metrics_path.empty()) {
        std::ofstream f(tp.metrics_path, std::ios::binary | std::ios::trunc);
        if (!f)
          throw std::runtime_error("trace: cannot open " + tp.metrics_path);
        f << result.metrics_json;
      }
    }
  }

  // ---- Per-rank memory-budget report (opt-in via PICPAR_MEM_REPORT) ----
  // One CSV row per world rank: the peak per-subsystem bytes gathered at
  // the end of the program lambda. Every value is a size-based function of
  // the rank's deterministic history, so two runs of the same program —
  // sequential or parallel — write byte-identical files; the large-p CI
  // job relies on that with a straight cmp. Crashed ranks never reach the
  // end of the lambda and report zeros, flagged by alive=0.
  if (const char* mr = env_path("PICPAR_MEM_REPORT")) {
    std::ofstream f(mr, std::ios::binary | std::ios::trunc);
    if (!f)
      throw std::runtime_error("mem report: cannot open " + std::string(mr));
    f << "rank,alive,machine_bytes,exchange_bytes,sort_bytes,peak_bytes,"
         "transport_peers\n";
    for (int r = 0; r < params.nranks; ++r) {
      const auto& o = outputs[static_cast<std::size_t>(r)];
      f << r << ',' << static_cast<int>(alive[static_cast<std::size_t>(r)])
        << ',' << o.mem_machine_bytes << ',' << o.mem_exchange_bytes << ','
        << o.mem_sort_bytes << ',' << o.mem_peak_bytes << ','
        << o.transport_peers << '\n';
    }
  }
  return result;
}

}  // namespace picpar::pic
