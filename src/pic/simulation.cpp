#include "pic/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "analysis/analyzer.hpp"
#include "analysis/audit.hpp"
#include "core/indexing.hpp"
#include "core/invariants.hpp"
#include "core/policy.hpp"
#include "mesh/local_grid.hpp"
#include "mesh/maxwell.hpp"
#include "mesh/poisson.hpp"
#include "particles/interpolate.hpp"
#include "particles/pusher.hpp"
#include "runtime/parallel_engine.hpp"
#include "sfc/index_cache.hpp"
#include "sim/comm.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/tracer.hpp"

namespace picpar::pic {

using core::GhostExchange;
using core::ParticlePartitioner;
using mesh::FieldState;
using mesh::GridPartition;
using mesh::LocalGrid;
using particles::ParticleArray;
using sim::Comm;
using sim::Phase;

GridDecomp parse_grid_decomp(const std::string& name) {
  if (name == "block") return GridDecomp::kBlock;
  if (name == "curve") return GridDecomp::kCurve;
  throw std::invalid_argument("unknown grid decomposition: " + name);
}

FieldSolveKind parse_solver(const std::string& name) {
  if (name == "maxwell") return FieldSolveKind::kMaxwell;
  if (name == "poisson") return FieldSolveKind::kPoisson;
  if (name == "none") return FieldSolveKind::kNone;
  throw std::invalid_argument("unknown solver: " + name);
}

namespace {

/// Per-rank, per-iteration raw measurements; merged after the run.
struct LocalIter {
  double clock_end = 0.0;
  double clock_pre_redist = 0.0;
  double loop_seconds_global = 0.0;
  std::uint64_t scatter_sent_bytes = 0;
  std::uint64_t scatter_recv_bytes = 0;
  std::uint64_t scatter_sent_msgs = 0;
  std::uint64_t scatter_recv_msgs = 0;
  std::uint64_t ghost_entries = 0;
  bool redistributed = false;
  double redist_seconds_global = 0.0;
  std::uint64_t redist_sent = 0;
  std::uint32_t violation_mask = 0;
  bool recovered = false;
};

struct RankOutput {
  std::vector<LocalIter> iters;
  double clock_after_init = 0.0;
  double init_seconds_global = 0.0;
  double field_energy = 0.0;
  double kinetic_energy = 0.0;
  double total_charge = 0.0;
  std::uint64_t final_particles = 0;
  int recoveries = 0;
  std::vector<EnergySample> energy;  // filled by rank 0 only
};

/// One bit flipped in one random field of one random particle — the host
/// memory corruption the transport checksums cannot see. Drawn from the
/// fault model's per-rank stream so runs stay reproducible.
void inject_memory_fault(sim::FaultModel& fm, int rank, ParticleArray& p) {
  if (p.empty()) return;
  const auto i = static_cast<std::size_t>(fm.draw_below(rank, p.size()));
  const auto field = fm.draw_below(rank, 6);
  double* fields[5] = {&p.x[i], &p.y[i], &p.ux[i], &p.uy[i], &p.uz[i]};
  if (field < 5) {
    auto* target = reinterpret_cast<std::byte*>(fields[field]);
    fm.flip_random_bit(rank, target, sizeof(double));
  } else {
    auto* target = reinterpret_cast<std::byte*>(&p.key[i]);
    fm.flip_random_bit(rank, target, sizeof(std::uint64_t));
  }
}

/// Last-resort repair when a violation is detected but rollback is
/// unavailable (no checkpoint, or the recovery budget is spent): clamp the
/// state back to validity so the run degrades instead of feeding corrupt
/// positions into the next scatter (whose float-to-int casts assume a
/// wrapped domain). Momenta are zeroed only when non-finite; positions are
/// re-wrapped, with values too large to wrap meaningfully reset to origin.
void scrub_particles(const sfc::IndexCache& keys, const mesh::GridDesc& grid,
                     ParticleArray& p) {
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (!std::isfinite(p.ux[i])) p.ux[i] = 0.0;
    if (!std::isfinite(p.uy[i])) p.uy[i] = 0.0;
    if (!std::isfinite(p.uz[i])) p.uz[i] = 0.0;
    double x = p.x[i], y = p.y[i];
    if (!std::isfinite(x) || std::abs(x) > 64.0 * grid.lx) x = 0.0;
    if (!std::isfinite(y) || std::abs(y) > 64.0 * grid.ly) y = 0.0;
    p.x[i] = grid.wrap_x(x);
    p.y[i] = grid.wrap_y(y);
    p.key[i] = core::key_of(keys, grid, p.x[i], p.y[i]);
  }
}

}  // namespace

PicResult run_pic(const PicParams& params) {
  if (params.init.total == 0)
    throw std::invalid_argument("run_pic: init.total must be > 0");
  if (params.iterations < 0)
    throw std::invalid_argument("run_pic: iterations must be >= 0");

  const mesh::GridDesc grid = params.grid;
  const auto curve = sfc::make_curve(params.curve, grid.nx, grid.ny);
  // Cell -> curve-index table, evaluated once and shared read-only by all
  // rank threads; replaces per-particle curve evaluations on the push and
  // scrub paths (DESIGN.md §10).
  const sfc::IndexCache key_cache(*curve, grid.nx, grid.ny);
  const GridPartition part =
      params.grid_decomp == GridDecomp::kBlock
          ? GridPartition::block_auto(grid, params.nranks)
          : GridPartition::curve(grid, params.nranks, *curve);

  // The global particle population; every rank slices it identically.
  const ParticleArray global =
      particles::generate(params.dist, grid, params.init);
  const double dt =
      params.dt > 0.0 ? params.dt : mesh::MaxwellSolver::max_dt(grid);

  const double delta = params.machine.delta;
  const PhaseCosts& pc = params.costs;
  const double inv_cell = 1.0 / (grid.dx() * grid.dy());

  std::vector<RankOutput> outputs(static_cast<std::size_t>(params.nranks));

  auto program = [&](Comm& comm) {
    const int rank = comm.rank();
    const int p = comm.size();
    auto& out = outputs[static_cast<std::size_t>(rank)];
    out.iters.reserve(static_cast<std::size_t>(params.iterations));

    LocalGrid lg(part, rank);
    FieldState f(lg);
    mesh::MaxwellSolver maxwell(lg, dt);
    mesh::PoissonSolver poisson(lg);
    auto phi = lg.make_field();
    ParticlePartitioner partitioner(*curve, grid, params.partitioner);
    GhostExchange ghosts(lg, params.dedup);
    const auto policy = core::make_policy(params.policy);

    // Initial slice: equal contiguous blocks of the generated population.
    ParticleArray mine(global.charge(), global.mass());
    {
      const auto total = static_cast<std::uint64_t>(global.size());
      const std::uint64_t b =
          static_cast<std::uint64_t>(rank) * total / static_cast<std::uint64_t>(p);
      const std::uint64_t e = static_cast<std::uint64_t>(rank + 1) * total /
                              static_cast<std::uint64_t>(p);
      mine.reserve(static_cast<std::size_t>(e - b));
      for (std::uint64_t i = b; i < e; ++i)
        mine.push_back(global.rec(static_cast<std::size_t>(i)));
    }

    // Initial distribution (full sample sort + balance).
    comm.set_phase(Phase::kRedistribute);
    const double t0 = comm.clock();
    partitioner.assign_keys(comm, mine);
    partitioner.distribute(comm, mine);
    comm.set_phase(Phase::kOther);
    out.init_seconds_global = comm.allreduce_max(comm.clock() - t0);
    policy->notify_redistribution(-1, out.init_seconds_global);
    out.clock_after_init = comm.clock();
    if (rank == 0) comm.mark(trace::kMarkInit, -1, out.init_seconds_global);

    const double q = mine.charge();
    const double m = mine.mass();

    // ---- validation / recovery state ----
    const ValidationParams& vp = params.validate;
    core::InvariantChecker checker(*curve, grid, vp.invariants);
    if (vp.check_every > 0)
      checker.set_reference_count(comm.allreduce_sum<std::uint64_t>(
          static_cast<std::uint64_t>(mine.size())));
    ParticleArray ckpt(global.charge(), global.mass());
    bool ckpt_valid = false;
    int recoveries = 0;
    const auto take_checkpoint = [&] {
      ckpt = mine;
      ckpt_valid = true;
      comm.charge_ops(static_cast<std::uint64_t>(
          static_cast<double>(mine.size()) * vp.checkpoint_ops_per_particle));
    };
    // Baseline checkpoint: the freshly balanced initial state.
    if (vp.checkpoint_every > 0) take_checkpoint();

    for (int iter = 0; iter < params.iterations; ++iter) {
      LocalIter rec;
      const double t_iter_start = comm.clock();

      // ---- Scatter phase ----
      comm.set_phase(Phase::kScatter);
      const auto stats_before = comm.stats();
      ghosts.begin_iteration();
      f.clear_sources();
      const std::size_t n = mine.size();
      // Per-cell stencil-destination memo (DESIGN.md §10): particles are
      // kept sorted along the curve, so consecutive particles usually share
      // a cell. Resolve the four vertex destinations (owned local index or
      // ghost slot index) once per cell run instead of per particle. Slot
      // *indices* are memoized, not pointers — the ghost table reallocates
      // as it grows. Identical lookup order on first touch keeps the ghost
      // entry order, and therefore all messages, byte-identical.
      std::uint64_t memo_cell = ~std::uint64_t{0};
      bool memo_owned[4] = {false, false, false, false};
      std::uint32_t memo_idx[4] = {0, 0, 0, 0};
      for (std::size_t i = 0; i < n; ++i) {
        const auto st = particles::cic_stencil(grid, mine.x[i], mine.y[i]);
        if (st.node[0] != memo_cell) {
          memo_cell = st.node[0];
          for (int k = 0; k < 4; ++k) {
            const auto l = lg.local_of(st.node[k]);
            if (l != mesh::kNoLocal && l < lg.owned()) {
              memo_owned[k] = true;
              memo_idx[k] = l;
            } else {
              memo_owned[k] = false;
              memo_idx[k] = ghosts.deposit_slot_index(st.node[k]);
            }
          }
        }
        const double gamma = mine.gamma(i);
        const double qv = q * inv_cell;
        const double jx = qv * mine.ux[i] / gamma;
        const double jy = qv * mine.uy[i] / gamma;
        const double jz = qv * mine.uz[i] / gamma;
        for (int k = 0; k < 4; ++k) {
          const double w = st.weight[k];
          if (memo_owned[k]) {
            const auto l = memo_idx[k];
            f.jx[l] += w * jx;
            f.jy[l] += w * jy;
            f.jz[l] += w * jz;
            f.rho[l] += w * qv;
          } else {
            double* slot = ghosts.deposit_data(memo_idx[k]);
            slot[0] += w * jx;
            slot[1] += w * jy;
            slot[2] += w * jz;
            slot[3] += w * qv;
          }
        }
      }
      comm.charge(static_cast<double>(4 * n) * pc.scatter_per_vertex * delta);
      rec.ghost_entries = ghosts.entries();
      comm.mark(trace::kMarkGhostEntries, iter,
                static_cast<double>(rec.ghost_entries));
      ghosts.flush_scatter(comm, f);
      {
        const auto d = comm.stats().diff(stats_before).phase(Phase::kScatter);
        rec.scatter_sent_bytes = d.bytes_sent;
        rec.scatter_recv_bytes = d.bytes_recv;
        rec.scatter_sent_msgs = d.msgs_sent;
        rec.scatter_recv_msgs = d.msgs_recv;
      }

      // ---- Field solve phase ----
      comm.set_phase(Phase::kFieldSolve);
      switch (params.solver) {
        case FieldSolveKind::kMaxwell:
          maxwell.step(comm, f);
          comm.charge(static_cast<double>(lg.owned()) * pc.field_per_node *
                      delta);
          break;
        case FieldSolveKind::kPoisson: {
          const auto pr = poisson.solve(comm, f.rho, phi);
          poisson.gradient(phi, f.ex, f.ey);
          comm.charge(static_cast<double>(lg.owned()) * 0.25 *
                      pc.field_per_node * delta *
                      static_cast<double>(pr.iterations) / 10.0);
          break;
        }
        case FieldSolveKind::kNone:
          break;
      }

      // ---- Gather phase ----
      comm.set_phase(Phase::kGather);
      ghosts.fetch_fields(comm, f);
      // Same per-cell memo as the scatter loop; positions are unchanged
      // since scatter, so every vertex is either owned or already has a
      // ghost slot from the deposit pass.
      memo_cell = ~std::uint64_t{0};
      for (std::size_t i = 0; i < n; ++i) {
        const auto st = particles::cic_stencil(grid, mine.x[i], mine.y[i]);
        if (st.node[0] != memo_cell) {
          memo_cell = st.node[0];
          for (int k = 0; k < 4; ++k) {
            const auto l = lg.local_of(st.node[k]);
            if (l != mesh::kNoLocal && l < lg.owned()) {
              memo_owned[k] = true;
              memo_idx[k] = l;
            } else {
              memo_owned[k] = false;
              memo_idx[k] = ghosts.slot_of(st.node[k]);
            }
          }
        }
        particles::LocalFields lf;
        for (int k = 0; k < 4; ++k) {
          const double w = st.weight[k];
          if (memo_owned[k]) {
            const auto l = memo_idx[k];
            lf.ex += w * f.ex[l];
            lf.ey += w * f.ey[l];
            lf.ez += w * f.ez[l];
            lf.bx += w * f.bx[l];
            lf.by += w * f.by[l];
            lf.bz += w * f.bz[l];
          } else {
            const double* s = ghosts.field_data(memo_idx[k]);
            lf.ex += w * s[0];
            lf.ey += w * s[1];
            lf.ez += w * s[2];
            lf.bx += w * s[3];
            lf.by += w * s[4];
            lf.bz += w * s[5];
          }
        }
        particles::boris_kick(q, m, dt, lf, mine.ux[i], mine.uy[i],
                              mine.uz[i]);
      }
      comm.charge(static_cast<double>(4 * n) * pc.gather_per_vertex * delta);

      // ---- Push phase ----
      comm.set_phase(Phase::kPush);
      for (std::size_t i = 0; i < n; ++i) {
        particles::advance_position(grid, mine, i, dt);
        mine.key[i] = core::key_of(key_cache, grid, mine.x[i], mine.y[i]);
      }
      comm.charge(static_cast<double>(n) * pc.push_per_particle * delta);

      // Host-memory corruption the transport checksums cannot see: flip a
      // bit in local particle state. Detection is the checker's job.
      if (params.faults.memory_fault_prob > 0.0) {
        auto& fm = comm.fault_model();
        if (fm.should_memory_fault(rank)) inject_memory_fault(fm, rank, mine);
      }

      // ---- Iteration timing and redistribution decision ----
      comm.set_phase(Phase::kOther);
      rec.loop_seconds_global =
          comm.allreduce_max(comm.clock() - t_iter_start);
      rec.clock_pre_redist = comm.clock();

      if (policy->should_redistribute(iter, rec.loop_seconds_global)) {
        if (rank == 0)
          comm.mark(trace::kMarkRedistDecision, iter,
                    rec.loop_seconds_global);
        comm.set_phase(Phase::kRedistribute);
        const double tr = comm.clock();
        const auto rrep = partitioner.redistribute(comm, mine);
        comm.set_phase(Phase::kOther);
        rec.redist_seconds_global = comm.allreduce_max(comm.clock() - tr);
        policy->notify_redistribution(iter, rec.redist_seconds_global);
        rec.redistributed = true;
        rec.redist_sent = rrep.sent_particles;
        comm.mark(trace::kMarkRedistSent, iter,
                  static_cast<double>(rrep.sent_particles));
        if (rank == 0)
          comm.mark(trace::kMarkRedistDone, iter, rec.redist_seconds_global);
      }

      // ---- Invariant check, rollback, checkpoint refresh ----
      bool checked_bad = false;
      if (vp.check_every > 0 && (iter + 1) % vp.check_every == 0) {
        double local_energy = -1.0;
        if (vp.invariants.energy_factor > 0.0)
          local_energy = f.energy(lg) + mine.kinetic_energy();
        const auto report = checker.check(
            comm, mine, iter,
            rec.redistributed ? &partitioner.rank_upper_bounds() : nullptr,
            local_energy);
        rec.violation_mask = report.mask;
        checked_bad = !report.ok();
        if (checked_bad && rank == 0)
          comm.mark(trace::kMarkViolation, iter,
                    static_cast<double>(report.mask));
        if (checked_bad && ckpt_valid && recoveries < vp.max_recoveries) {
          // Every rank saw the same OR-combined mask, so all of them take
          // this branch together: restore the last good checkpoint and
          // force a full redistribution to re-enter a balanced state.
          comm.set_phase(Phase::kRedistribute);
          const double tr = comm.clock();
          mine = ckpt;
          comm.charge_ops(static_cast<std::uint64_t>(
              static_cast<double>(mine.size()) *
              vp.checkpoint_ops_per_particle));
          partitioner.assign_keys(comm, mine);
          partitioner.distribute(comm, mine);
          comm.set_phase(Phase::kOther);
          const double cost = comm.allreduce_max(comm.clock() - tr);
          policy->notify_redistribution(iter, cost);
          rec.recovered = true;
          rec.redistributed = true;
          rec.redist_seconds_global += cost;
          ++recoveries;
          if (rank == 0) comm.mark(trace::kMarkRecovered, iter, cost);
        } else if (checked_bad) {
          // Rollback unavailable: repair in place so the run continues in a
          // degraded but well-defined state.
          scrub_particles(key_cache, grid, mine);
          comm.charge_ops(static_cast<std::uint64_t>(mine.size()));
        }
      }
      if (vp.checkpoint_every > 0 && (iter + 1) % vp.checkpoint_every == 0) {
        // With checks enabled, only refresh on an iteration whose check
        // just passed — a rollback target must never itself be corrupt.
        const bool checked_ok =
            vp.check_every > 0 && (iter + 1) % vp.check_every == 0 &&
            !checked_bad && !rec.recovered;
        if (vp.check_every == 0 || checked_ok) take_checkpoint();
      }
      // Per-iteration trace samples (free without an observer): local
      // particle count on every rank, global loop time on rank 0.
      comm.mark(trace::kMarkParticles, iter,
                static_cast<double>(mine.size()));
      if (rank == 0)
        comm.mark(trace::kMarkIter, iter, rec.loop_seconds_global);
      rec.clock_end = comm.clock();
      out.iters.push_back(rec);

      if (params.sample_energy_every > 0 &&
          (iter + 1) % params.sample_energy_every == 0) {
        const double fe = comm.allreduce_sum(f.energy(lg));
        const double ke = comm.allreduce_sum(mine.kinetic_energy());
        if (rank == 0) out.energy.push_back({iter, fe, ke});
      }
    }

    out.final_particles = static_cast<std::uint64_t>(mine.size());
    out.recoveries = recoveries;

    // Final physics diagnostics (local sums; merged by the aggregator).
    out.field_energy = f.energy(lg);
    out.kinetic_energy = mine.kinetic_energy();
    double charge_sum = 0.0;
    for (std::size_t l = 0; l < lg.owned(); ++l) charge_sum += f.rho[l];
    out.total_charge = charge_sum * grid.dx() * grid.dy();
  };

  sim::Machine machine(params.nranks, params.machine, params.faults);

  // ---- execution engine (default: sequential reference scheduler) ----
  if (params.exec.parallel || runtime::parallel_env_enabled())
    runtime::use_parallel(machine,
                          runtime::ParallelConfig{params.exec.workers});

  // ---- opt-in happens-before analysis (zero cost when off) ----
  const bool analyze_on = params.analyze.enabled ||
                          params.analyze.audit_determinism ||
                          analysis::analyzer_env_enabled();
  analysis::Analyzer::Options aopt;
  aopt.max_findings =
      static_cast<std::size_t>(std::max(0, params.analyze.max_findings));
  analysis::Analyzer analyzer(aopt);

  // ---- opt-in deterministic tracing (zero cost when off) ----
  TraceParams tp = params.trace;
  if (tp.path.empty())
    if (const char* p = trace::trace_env_path()) tp.path = p;
  if (tp.metrics_path.empty())
    if (const char* p = trace::trace_metrics_env_path()) tp.metrics_path = p;
  const bool trace_on = tp.on();
  trace::Tracer::Options topt;
  topt.flows = tp.flows;
  trace::Tracer tracer(topt);

  sim::ObserverChain observers;
  if (analyze_on) observers.add(&analyzer);
  if (trace_on) observers.add(&tracer);
  if (!observers.empty()) machine.set_observer(&observers);

  int audit_state = -1;
  sim::RunResult run;
  if (analyze_on && params.analyze.audit_determinism) {
    // First run establishes the happens-before DAG fingerprint; the second
    // must reproduce it exactly. Per-rank outputs are host-side state the
    // program accumulates into, so they reset between runs.
    machine.run(program);
    const auto fp1 = analyzer.fingerprint();
    const auto ev1 = analyzer.events();
    for (auto& o : outputs) o = RankOutput{};
    run = machine.run(program);
    audit_state =
        (fp1 == analyzer.fingerprint() && ev1 == analyzer.events()) ? 1 : 0;
  } else {
    run = machine.run(program);
  }

  // ---- Aggregate ----
  PicResult result;
  result.machine = std::move(run);
  result.total_seconds = result.machine.makespan();
  result.compute_seconds = result.machine.max_compute();
  result.initial_distribution_seconds =
      outputs.empty() ? 0.0 : outputs[0].init_seconds_global;

  double prev_end = 0.0;
  for (const auto& o : outputs)
    prev_end = std::max(prev_end, o.clock_after_init);

  result.iters.resize(static_cast<std::size_t>(params.iterations));
  for (int i = 0; i < params.iterations; ++i) {
    auto& rec = result.iters[static_cast<std::size_t>(i)];
    rec.iter = i;
    double end = 0.0, pre = 0.0;
    for (const auto& o : outputs) {
      const auto& li = o.iters[static_cast<std::size_t>(i)];
      end = std::max(end, li.clock_end);
      pre = std::max(pre, li.clock_pre_redist);
      rec.scatter_max_sent_bytes =
          std::max(rec.scatter_max_sent_bytes, li.scatter_sent_bytes);
      rec.scatter_max_recv_bytes =
          std::max(rec.scatter_max_recv_bytes, li.scatter_recv_bytes);
      rec.scatter_max_sent_msgs =
          std::max(rec.scatter_max_sent_msgs, li.scatter_sent_msgs);
      rec.scatter_max_recv_msgs =
          std::max(rec.scatter_max_recv_msgs, li.scatter_recv_msgs);
      rec.max_ghost_entries = std::max(rec.max_ghost_entries, li.ghost_entries);
      rec.redistributed = rec.redistributed || li.redistributed;
      rec.redist_seconds = std::max(rec.redist_seconds, li.redist_seconds_global);
      rec.redist_particles_moved += li.redist_sent;
      rec.violation_mask |= li.violation_mask;
      rec.recovered = rec.recovered || li.recovered;
    }
    const auto& li0 = outputs[0].iters[static_cast<std::size_t>(i)];
    rec.loop_seconds = li0.loop_seconds_global;
    rec.exec_seconds = end - prev_end;
    prev_end = end;
    if (rec.redistributed) {
      ++result.redistributions;
      result.redist_seconds_total += rec.redist_seconds;
    }
    if (rec.violation_mask != 0) ++result.violation_iterations;
    (void)pre;
  }

  result.initial_particles = static_cast<std::uint64_t>(global.size());
  result.recoveries = outputs.empty() ? 0 : outputs[0].recoveries;
  for (const auto& o : outputs) result.final_particles += o.final_particles;

  for (const auto& o : outputs) {
    result.field_energy += o.field_energy;
    result.kinetic_energy += o.kinetic_energy;
    result.total_charge += o.total_charge;
  }
  result.energy_history = std::move(outputs[0].energy);

  if (analyze_on) {
    result.analysis_findings =
        static_cast<std::int64_t>(analyzer.total());
    if (result.analysis_findings > 0) result.analysis_report = analyzer.report();
    result.hb_fingerprint = analyzer.fingerprint();
    result.determinism_audit = audit_state;
  }

  if (trace_on) {
    result.traced = true;
    result.trace_events = tracer.events();
    result.phase_wall_us.assign(static_cast<std::size_t>(sim::kNumPhases),
                                0.0);
    for (const auto& s : tracer.data().spans)
      result.phase_wall_us[static_cast<std::size_t>(s.phase)] += s.w1 - s.w0;
    const trace::MetricsSnapshot snap = tracer.metrics().snapshot();
    result.metrics_json = snap.to_json();
    result.metrics_csv = snap.to_csv();
    result.timeline_csv = tracer.timeline().to_csv();
    if (!tp.path.empty() || !tp.metrics_path.empty()) {
      trace::ChromeTraceOptions copt;
      copt.include_wall = tp.include_wall;
      copt.flows = tp.flows;
      // Concurrent run_pic calls (e.g. a bench's --jobs pool) may target
      // the same file; serialize so each write is whole.
      static std::mutex g_trace_write_mutex;
      std::lock_guard<std::mutex> lk(g_trace_write_mutex);
      if (!tp.path.empty())
        trace::write_chrome_trace(tp.path, tracer.data(), copt,
                                  &tracer.timeline());
      if (!tp.metrics_path.empty()) {
        std::ofstream f(tp.metrics_path, std::ios::binary | std::ios::trunc);
        if (!f)
          throw std::runtime_error("trace: cannot open " + tp.metrics_path);
        f << result.metrics_json;
      }
    }
  }
  return result;
}

}  // namespace picpar::pic
