// Baseline: direct Eulerian method on grid partitioning (Gledhill & Storey,
// Section 3 of the paper).
//
// The mesh is partitioned (block or curve) and every particle lives on the
// rank that owns its cell; after each push, particles that crossed into
// another rank's subdomain migrate there. Communication is local and small
// (boundary vertices + migrants), but nothing balances the particle load:
// with an irregular distribution a few ranks hold most particles and the
// per-iteration time is set by the most loaded rank — the load-imbalance
// column of Table 1.
#pragma once

#include "pic/config.hpp"
#include "pic/result.hpp"

namespace picpar::pic {

/// Run the Eulerian grid-partitioning baseline. policy/partitioner fields
/// of `params` are ignored (assignment follows the grid, always).
PicResult run_eulerian(const PicParams& params);

/// Per-rank particle counts after Eulerian assignment of the initial
/// population — used by the Table 1 bench to quantify load imbalance
/// without running a simulation.
std::vector<std::size_t> eulerian_particle_counts(const PicParams& params);

}  // namespace picpar::pic
