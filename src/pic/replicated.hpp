// Baseline: Lubeck & Faber's replicated-grid direct Lagrangian PIC
// (Section 3 of the paper).
//
// Every rank holds the FULL mesh. The scatter phase deposits locally and
// then element-wise global-sums the source arrays over all ranks; the field
// solve is split into row chunks and a global concatenation broadcasts the
// results. Gather and push are purely local. Efficient on small machines;
// the global operations on the full mesh dominate as p grows — the
// behaviour the paper cites as the motivation for distributed meshes.
#pragma once

#include "pic/config.hpp"
#include "pic/result.hpp"

namespace picpar::pic {

/// Run the replicated-grid baseline. Uses grid, nranks, dist, init, solver
/// (kMaxwell/kNone), iterations, dt, costs and machine from `params`;
/// partitioning/policy fields are ignored (particles stay on their initial
/// rank forever, grid is replicated).
PicResult run_replicated(const PicParams& params);

}  // namespace picpar::pic
