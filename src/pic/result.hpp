// Per-iteration and aggregate results of a PIC run — the quantities the
// paper's tables and figures report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace picpar::pic {

struct IterRecord {
  int iter = 0;
  /// Virtual time the whole machine spent on this iteration (max-rank
  /// clock advance), including any redistribution triggered after it.
  double exec_seconds = 0.0;
  /// Same, excluding the redistribution — the value the SAR policy sees.
  double loop_seconds = 0.0;

  // Scatter-phase traffic maxima over ranks (Figs 18-19).
  std::uint64_t scatter_max_sent_bytes = 0;
  std::uint64_t scatter_max_recv_bytes = 0;
  std::uint64_t scatter_max_sent_msgs = 0;
  std::uint64_t scatter_max_recv_msgs = 0;

  /// Max over ranks of distinct ghost grid points this iteration.
  std::uint64_t max_ghost_entries = 0;

  bool redistributed = false;
  double redist_seconds = 0.0;        ///< global (max-rank) cost
  std::uint64_t redist_particles_moved = 0;  ///< summed over ranks

  /// OR of core::Invariant bits that fired this iteration (0 = clean).
  std::uint32_t violation_mask = 0;
  /// True when a violation triggered rollback to the last checkpoint plus
  /// a forced full redistribution.
  bool recovered = false;
  /// True when this is the first iteration executed after a fail-stop
  /// shrink-to-survivors recovery (the run resumed here from checkpoint).
  bool crash_recovered = false;
};

struct EnergySample {
  int iter = 0;
  double field = 0.0;
  double kinetic = 0.0;
};

struct PicResult {
  std::vector<IterRecord> iters;

  /// Populated when PicParams::sample_energy_every > 0.
  std::vector<EnergySample> energy_history;

  double total_seconds = 0.0;    ///< virtual makespan of the whole run
  double compute_seconds = 0.0;  ///< max-rank charged computation
  double overhead_seconds() const { return total_seconds - compute_seconds; }

  int redistributions = 0;
  double redist_seconds_total = 0.0;
  double initial_distribution_seconds = 0.0;

  // Robustness diagnostics (populated when validation/faults are enabled).
  int recoveries = 0;                 ///< rollback + forced redistribution
  int violation_iterations = 0;       ///< iterations with any violation
  std::uint64_t initial_particles = 0;
  std::uint64_t final_particles = 0;  ///< summed over surviving ranks at end

  // Boundary bookkeeping (populated by scenarios with an injector and/or
  // an absorbing boundary; zero on the legacy periodic path). Conservation
  // under injection: initial + emitted - absorbed == final (faults off).
  std::uint64_t emitted_particles = 0;   ///< injected over the whole run
  std::uint64_t absorbed_particles = 0;  ///< lost through open boundaries

  // Fail-stop crash recovery (populated when crash faults are enabled;
  // see sim::FaultConfig crash_schedule / crash_prob and PICPAR_CRASH_*).
  int crash_count = 0;        ///< ranks lost to fail-stop crashes
  int crash_recoveries = 0;   ///< completed shrink-to-survivors recoveries
  int final_ranks = 0;        ///< surviving ranks at run end
  double mttr_seconds_total = 0.0;  ///< summed virtual crash-to-resume time
  std::uint64_t crash_lost_particles = 0;      ///< in dead ranks' subdomains
  std::uint64_t crash_restored_particles = 0;  ///< reloaded from checkpoint
  /// Max-over-survivors / mean final particle count (1.0 = balanced).
  double final_imbalance = 0.0;

  // Happens-before analysis (populated when PicParams::analyze or
  // PICPAR_ANALYZE enables the analyzer; see src/analysis).
  std::int64_t analysis_findings = -1;  ///< -1 = analyzer not attached
  std::string analysis_report;          ///< empty when clean or not attached
  std::uint64_t hb_fingerprint = 0;     ///< happens-before DAG fingerprint
  int determinism_audit = -1;           ///< -1 not run, 0 failed, 1 passed

  // Deterministic tracing (populated when PicParams::trace or PICPAR_TRACE
  // enables the tracer; see src/trace). The exported strings contain only
  // virtual-time quantities, so they are byte-identical between sequential
  // and parallel execution.
  bool traced = false;
  std::uint64_t trace_events = 0;   ///< observer callbacks during the run
  std::string metrics_json;         ///< MetricsSnapshot::to_json()
  std::string metrics_csv;          ///< MetricsSnapshot::to_csv()
  std::string timeline_csv;         ///< RedistTimeline::to_csv() (Figs 11-17)
  /// Host wall-clock microseconds spent inside each sim::Phase, summed over
  /// ranks (indexed by sim::Phase; empty when tracing is off). Unlike the
  /// exports above this is schedule-dependent — it measures the real
  /// machine, not the simulated one — so it never participates in
  /// byte-identity checks. Used by perf-guard benches (DESIGN.md §10).
  std::vector<double> phase_wall_us;

  // Physics diagnostics at the end of the run (summed over ranks).
  double field_energy = 0.0;
  double kinetic_energy = 0.0;
  double total_charge = 0.0;

  sim::RunResult machine;  ///< full per-rank clocks and phase counters

  /// Mean per-iteration execution time.
  double mean_iter_seconds() const {
    if (iters.empty()) return 0.0;
    // picpar-lint: allow(float-reduction-order) iteration-order sum
    double s = 0.0;
    for (const auto& it : iters) s += it.exec_seconds;
    return s / static_cast<double>(iters.size());
  }
};

}  // namespace picpar::pic
