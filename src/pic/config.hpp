// Configuration for a parallel PIC run.
#pragma once

#include <cstdint>
#include <string>

#include "core/ghost_exchange.hpp"
#include "core/invariants.hpp"
#include "core/partitioner.hpp"
#include "mesh/grid.hpp"
#include "particles/init.hpp"
#include "sfc/curve.hpp"
#include "sim/cost_model.hpp"
#include "sim/faults.hpp"

namespace picpar::pic {

/// How mesh grid points are assigned to ranks.
enum class GridDecomp {
  kBlock,  ///< classic 2-D Cartesian blocks
  kCurve,  ///< runs of the same space-filling curve (Fig 10)
};

/// Which field solver runs in the field-solve phase.
enum class FieldSolveKind {
  kMaxwell,  ///< full electromagnetic FDTD (the paper's case)
  kPoisson,  ///< electrostatic Jacobi solve
  kNone,     ///< skip (kinematics-only runs, benches that isolate comm)
};

GridDecomp parse_grid_decomp(const std::string& name);
FieldSolveKind parse_solver(const std::string& name);

/// Per-phase computation constants in units of the machine's delta,
/// mirroring the paper's T_scomp / T_fcomp / T_gcomp / T_push (Section 4).
/// Defaults are calibrated so the cm5 cost preset lands in the range of
/// Table 2 (a few hundred ms per iteration at 1K particles/rank).
struct PhaseCosts {
  double scatter_per_vertex = 60.0;   ///< T_scomp, per particle-vertex
  double field_per_node = 120.0;      ///< T_fcomp, per grid point per solve
  double gather_per_vertex = 70.0;    ///< T_gcomp, per particle-vertex
  double push_per_particle = 90.0;    ///< T_push, per particle
};

/// Runtime validation and checkpoint-based recovery. Everything defaults
/// to off: a default-configured run performs no extra collectives and no
/// state copies, so results are bit-identical to a build without this
/// subsystem.
struct ValidationParams {
  /// Run the invariant checker every k iterations (0 = off). Use 1 when
  /// memory faults are active so corruption is caught (and rolled back or
  /// scrubbed) before it feeds the next scatter.
  int check_every = 0;
  /// Keep an in-memory particle checkpoint every k iterations (0 = off).
  /// A baseline checkpoint is always taken right after the initial
  /// distribution when enabled. Checkpoints are only refreshed on
  /// iterations whose invariant check passed (when checks are on), so a
  /// rollback target is never itself corrupt.
  int checkpoint_every = 0;
  /// Give up after this many rollbacks (violations are still recorded).
  int max_recoveries = 8;
  /// Invariant tolerances; see core/invariants.hpp.
  core::InvariantConfig invariants{};
  /// Abstract ops charged per particle copied into a checkpoint.
  double checkpoint_ops_per_particle = 2.0;

  bool enabled() const { return check_every > 0 || checkpoint_every > 0; }
};

/// Opt-in happens-before analysis (src/analysis). Everything defaults to
/// off: no observer is attached and runs are bit-identical to a build
/// without the analysis layer. The PICPAR_ANALYZE environment variable
/// (set, not "0") also enables the analyzer for any run without a rebuild.
struct AnalysisParams {
  /// Attach the race/tag/phase analyzer to the simulated machine.
  bool enabled = false;
  /// Run the whole program twice and compare happens-before DAG
  /// fingerprints (doubles the run; implies `enabled`).
  bool audit_determinism = false;
  /// Cap on stored findings (detections keep counting past it).
  int max_findings = 64;
};

/// Opt-in deterministic tracing (src/trace). Everything defaults to off:
/// no observer is attached and runs are bit-identical to a build without
/// the trace layer. The PICPAR_TRACE=<path> environment variable (non-empty,
/// not "0") also enables tracing for any run without a rebuild, writing a
/// Chrome-trace JSON to <path>; PICPAR_TRACE_METRICS=<path> writes the
/// metrics JSON. Exported virtual-time artifacts are byte-identical between
/// sequential and parallel execution.
struct TraceParams {
  /// Attach the tracer to the simulated machine.
  bool enabled = false;
  /// Chrome-trace JSON output path ("" = keep in PicResult only).
  std::string path;
  /// Metrics JSON output path ("" = keep in PicResult only).
  std::string metrics_path;
  /// Record message send->recv flow events (and per-phase traffic metrics).
  bool flows = true;
  /// Attach wall-clock args to exported spans (schedule-dependent; breaks
  /// byte-identity between runs, so off by default).
  bool include_wall = false;

  bool on() const { return enabled || !path.empty() || !metrics_path.empty(); }
};

/// Execution engine selection for the simulated machine. Sequential is
/// the reference scheduler; parallel runs ranks concurrently on real cores
/// through src/runtime with bit-identical results (the PICPAR_PARALLEL
/// environment variable — set, not "0" — also selects it without a
/// rebuild, and PICPAR_WORKERS overrides the worker count).
struct ExecParams {
  bool parallel = false;
  /// Max ranks executing concurrently; 0 = host hardware concurrency.
  int workers = 0;
};

struct PicParams {
  mesh::GridDesc grid{128, 64};
  int nranks = 32;

  particles::Distribution dist = particles::Distribution::kUniform;
  particles::InitParams init{};  ///< init.total must be set

  /// Scenario name from the scenario library (src/scenario) — selects the
  /// loadout, species table, field seed, driver, boundary and injector as a
  /// bundle. Empty (the default) keeps the legacy path: `dist` chooses the
  /// loadout and every hook stays disabled, byte-identical to builds
  /// without the scenario subsystem. When set, `dist` is ignored.
  std::string scenario;

  sfc::CurveKind curve = sfc::CurveKind::kHilbert;
  GridDecomp grid_decomp = GridDecomp::kCurve;
  FieldSolveKind solver = FieldSolveKind::kMaxwell;

  int iterations = 200;
  double dt = 0.0;  ///< 0 = automatic CFL-limited step

  /// Redistribution policy spec: "static", "periodic:K", or "sar".
  std::string policy = "sar";

  core::DedupPolicy dedup = core::DedupPolicy::kDirect;
  core::PartitionerConfig partitioner{};
  PhaseCosts costs{};
  sim::CostModel machine = sim::CostModel::cm5();

  /// Fault injection (sim::FaultConfig; default: no faults). Memory faults
  /// (faults.memory_fault_prob) flip one bit of a random particle field on
  /// the drawing rank once per iteration — pair them with `validate` so
  /// the invariant checker can catch what checksums cannot.
  sim::FaultConfig faults{};
  /// Invariant validation + checkpoint/rollback recovery (default: off).
  ValidationParams validate{};
  /// Happens-before analysis and determinism audit (default: off).
  AnalysisParams analyze{};
  /// Deterministic tracing and metrics (default: off).
  TraceParams trace{};
  /// Execution engine (default: sequential reference scheduler).
  ExecParams exec{};

  /// Record global field/kinetic energy every k iterations (0 = off).
  /// Sampling performs an extra allreduce, so it adds (real) virtual time;
  /// leave it off for timing experiments.
  int sample_energy_every = 0;

  /// Canonical serialization of every semantically meaningful field: one
  /// "key=value" line per field in a fixed order, doubles in std::to_chars
  /// shortest round-trip form, prefixed by a format-version salt. Two configurations
  /// produce the same bytes iff run_pic would produce the same PicResult
  /// content, so the text is the identity the sweep result cache keys on.
  /// Environment overrides that change run semantics (PICPAR_CRASH_*,
  /// PICPAR_ANALYZE, PICPAR_TRACE*) are folded in; `exec` and the
  /// PICPAR_PARALLEL/PICPAR_WORKERS variables are deliberately excluded —
  /// the parallel engine is bit-identical to the sequential scheduler, so
  /// execution mode never changes the result. Trace output *paths* are
  /// likewise excluded (they name sinks, not semantics); whether tracing is
  /// on is included. See fingerprint.cpp and DESIGN.md §13.
  std::string canonical() const;

  /// FNV-1a 64-bit hash of canonical(), as 16 lowercase hex digits — the
  /// content address of this configuration's result.
  std::string fingerprint() const;
};

}  // namespace picpar::pic
